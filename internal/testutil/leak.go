// Package testutil holds test helpers shared across the service-layer
// suites (edaserver, simfarm, eda/client): the goroutine-leak checks
// every resilience test ends with.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckNoGoroutineLeak polls until the goroutine count settles back to
// the baseline (scheduling and netpoll teardown need a beat), dumping
// all stacks when it never does. Capture the baseline with
// runtime.NumGoroutine() before starting the servers or pools under
// test and call this after shutting them down.
func CheckNoGoroutineLeak(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d at baseline, %d after shutdown\n%s", baseline, now, buf[:n])
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// GoroutineGuard captures the current goroutine count and registers a
// cleanup asserting the count has returned to it by the end of the
// test. Register it before any other cleanup that tears down the
// system under test — cleanups run last-registered-first, so the guard
// then checks after teardown completes.
func GoroutineGuard(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() { CheckNoGoroutineLeak(t, before) })
}
