package vrank

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/verilog"
)

// wideProblem models the wide-output blind spot: the bench captures the
// DUT's 128-bit result into a two-word memory and checks only the low
// half, so nothing about the high half ever reaches $display output.
func wideProblem() *benchset.Problem {
	return &benchset.Problem{
		ID:        "widecap",
		Spec:      "128-bit constant source, split across lo/hi 64-bit outputs",
		TopModule: "wsrc",
		TBHeader: `
module tb;
  wire [63:0] lo, hi;
  wsrc dut(.lo(lo), .hi(hi));
  reg [63:0] cap [0:1];
`,
		TBBlocks: []string{`
  initial begin
    #1;
    cap[0] = lo;
    cap[1] = hi;
    $check_eq(lo, 64'h0123456789abcdef);
`},
		TBFooter: `
    $finish;
  end
endmodule
`,
	}
}

func wideCandidate(hiNibble string) string {
	return `
module wsrc(output [63:0] lo, output [63:0] hi);
  assign lo = 64'h0123456789abcdef;
  assign hi = 64'h` + hiNibble + `000000000000000;
endmodule`
}

// TestWideOutputsSplitClusters is the clustering-level regression for the
// Final-signals fidelity fix: two candidates that differ only in the
// upper word of a 128-bit capture — bits that never appear in $display
// output — must produce distinct signatures, not one merged cluster.
func TestWideOutputsSplitClusters(t *testing.T) {
	p := wideProblem()
	candA := wideCandidate("1") // hi = 64'h1000...
	candB := wideCandidate("9") // hi = 64'h9000...

	sigs, err := Signatures(context.Background(), p, []string{candA, candB}, verilog.SimOptions{}, 1)
	if err != nil {
		t.Fatalf("Signatures: %v", err)
	}
	if sigs[0] == "" || sigs[1] == "" {
		t.Fatalf("candidate failed to simulate: %q %q", sigs[0], sigs[1])
	}
	// The printed portion is identical — only the invisible wide capture
	// differs. Without FinalMem in the fingerprint these cluster together.
	outA := sigs[0][:strings.Index(sigs[0]+"\nFINAL:", "\nFINAL:")]
	outB := sigs[1][:strings.Index(sigs[1]+"\nFINAL:", "\nFINAL:")]
	if outA != outB {
		t.Fatalf("test premise broken: display outputs differ:\n%q\n%q", outA, outB)
	}
	if sigs[0] == sigs[1] {
		t.Fatalf("candidates differing only in wide output cluster together:\n%s", sigs[0])
	}
	if !strings.Contains(sigs[0], "tb.cap=") {
		t.Errorf("fingerprint missing the wide capture signal:\n%s", sigs[0])
	}
}

// TestFingerprintExcludesDUTInternals guards the other direction: two
// behaviorally identical candidates whose *internal* wiring differs (the
// normal variance across LLM samples) must still share one signature.
func TestFingerprintExcludesDUTInternals(t *testing.T) {
	p := wideProblem()
	direct := wideCandidate("1")
	internal := `
module wsrc(output [63:0] lo, output [63:0] hi);
  wire [63:0] stage_a = 64'h0123456789abcdef;
  wire [63:0] stage_b = 64'h1000000000000000;
  assign lo = stage_a;
  assign hi = stage_b;
endmodule`

	sigs, err := Signatures(context.Background(), p, []string{direct, internal}, verilog.SimOptions{}, 1)
	if err != nil {
		t.Fatalf("Signatures: %v", err)
	}
	if sigs[0] != sigs[1] {
		t.Fatalf("internal naming split a behaviorally identical cluster:\n%q\nvs\n%q", sigs[0], sigs[1])
	}
}
