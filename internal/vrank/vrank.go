// Package vrank implements VRank-style self-consistency ranking (paper
// §II): generate k Verilog candidates, simulate each on oracle-free
// stimuli, cluster candidates by their output signatures, and pick a
// representative of the largest cluster. The intuition: correct programs
// agree with each other; each buggy program fails in its own way.
package vrank

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"llm4eda/internal/benchset"
	"llm4eda/internal/core"
	"llm4eda/internal/llm"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/verilog"
)

// Options parameterize ranking.
type Options struct {
	// RunSpec carries the shared execution envelope; Workers bounds the
	// signature and oracle batch simulations.
	core.RunSpec
	Model llm.Model
	// K is the candidate count (default 5).
	K int
	// Temperature for sampling diversity (default 0.9).
	Temperature float64
	Sim         verilog.SimOptions
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 5
	}
	if o.Temperature == 0 {
		o.Temperature = 0.9
	}
	return o
}

// Result reports one ranking run.
type Result struct {
	Sources []string
	// Signatures are the oracle-free output fingerprints per candidate
	// ("" for non-compiling candidates).
	Signatures []string
	// Clusters lists candidate indices grouped by identical signature,
	// largest first.
	Clusters [][]int
	// Chosen is the selected candidate index (-1 if nothing simulated).
	Chosen int
	// ChosenPasses / FirstPasses compare self-consistency selection with
	// the naive take-the-first-sample baseline on the real testbench.
	ChosenPasses bool
	FirstPasses  bool
	// AnyPasses reports whether an oracle could have found a passing
	// candidate among the k samples (the pass@k ceiling).
	AnyPasses bool
}

// benchTop is the top module name of every benchset testbench (they all
// declare `module tb;`). Simulation jobs and the benchFinals hierarchy
// filter key off the same constant so a future rename cannot silently
// stop benchFinals from matching anything.
const benchTop = "tb"

// StimulusBench rewrites a self-checking testbench into an oracle-free
// stimulus bench: every $check_eq(actual, expected) becomes a $display of
// both values. Because the expected value is a constant, it is identical
// across candidates and adds no oracle information to the signature.
func StimulusBench(tb string) string {
	sbMu.Lock()
	if sb, ok := sbCache[tb]; ok {
		sbMu.Unlock()
		return sb
	}
	sbMu.Unlock()
	sb := strings.ReplaceAll(tb, "$check_eq(", `$display("SIG %b %b", `)
	sbMu.Lock()
	if len(sbCache) < sbCacheCap {
		sbCache[tb] = sb
	}
	sbMu.Unlock()
	return sb
}

// sbCache memoizes testbench -> stimulus-bench rewrites: every batch of
// every ranking round re-derives the same handful of benches. The cap
// only exists so arbitrary caller-supplied benches cannot grow the memo
// without bound (every other cache in the repo is bounded too); the
// benchset suite fits with room to spare.
var (
	sbMu    sync.Mutex
	sbCache = map[string]string{}
)

const sbCacheCap = 128

// Signature simulates a candidate on the stimulus bench and returns its
// output fingerprint ("" when the candidate does not compile).
func Signature(p *benchset.Problem, source string, sim verilog.SimOptions) string {
	sigs, _ := Signatures(context.Background(), p, []string{source}, sim, 1)
	return sigs[0]
}

// Fingerprint builds the clustering signature of one stimulus-bench run:
// the printed output, runtime/timeout markers, and the final values of
// the bench's own top-level signals. Including bench-level finals is the
// wide-output fidelity fix — capture state the bench never $displays
// (memories, >64-bit buses split into words, reported via
// SimResult.FinalMem) still distinguishes candidates that differ only
// there. Candidate-internal signals (hierarchy below the bench, whose
// names vary freely across LLM samples) are excluded so naming noise
// cannot split clusters.
func Fingerprint(res *verilog.SimResult) string {
	fs := benchFinals(res)
	var b strings.Builder
	b.Grow(len(res.Output) + len(fs) + 32)
	b.WriteString(res.Output)
	if res.RuntimeErr != nil {
		b.WriteString("\nRT:")
		b.WriteString(res.RuntimeErr.Error())
	}
	if res.TimedOut {
		b.WriteString("\nTIMEOUT")
	}
	if fs != "" {
		b.WriteString("\nFINAL:\n")
		b.WriteString(fs)
	}
	return b.String()
}

// benchFinals renders the final values of signals declared directly in
// the stimulus bench ("tb.<name>" with no deeper hierarchy), sorted.
func benchFinals(res *verilog.SimResult) string {
	return verilog.FormatSignalsFunc(res, func(n string) bool {
		rest, ok := strings.CutPrefix(n, benchTop+".")
		return ok && !strings.Contains(rest, ".")
	})
}

// Signatures fingerprints a whole candidate batch against the shared
// stimulus bench through the simfarm engine: the bench is compiled once,
// duplicate candidates are simulated once, and independent candidates run
// concurrently (workers <= 0 selects GOMAXPROCS). Output order matches
// the input and is bit-identical to calling Signature in a serial loop.
// A cancelled ctx aborts the batch within one job and returns ctx.Err().
func Signatures(ctx context.Context, p *benchset.Problem, sources []string, sim verilog.SimOptions, workers int) ([]string, error) {
	sb := StimulusBench(p.Testbench())
	jobs := make([]simfarm.Job, len(sources))
	for i, src := range sources {
		jobs[i] = simfarm.Job{DUT: src, TB: sb, Top: benchTop, Opts: sim}
	}
	results, err := simfarm.RunManyCtx(ctx, jobs, workers)
	out := make([]string, len(sources))
	// Duplicate candidates share one cached *SimResult; render each
	// distinct result once instead of once per duplicate.
	rendered := make(map[*verilog.SimResult]string, len(results))
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		fp, ok := rendered[r.Res]
		if !ok {
			fp = Fingerprint(r.Res)
			rendered[r.Res] = fp
		}
		out[i] = fp
	}
	return out, err
}

// Rank runs the full VRank flow on one problem. ctx is checked between
// model calls and cancels the signature/oracle batches within one
// simulation; sampled candidates and cluster picks stream to the
// context's event sink.
func Rank(ctx context.Context, p *benchset.Problem, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Model == nil {
		return nil, fmt.Errorf("vrank: Options.Model is required")
	}
	sink := core.SinkOf(ctx)
	res := &Result{Chosen: -1}

	sink.Emit(core.Event{Kind: core.EventPhaseStart, Framework: "vrank", Phase: "sampling", Total: opts.K, Detail: p.ID})
	for k := 0; k < opts.K; k++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		resp, err := opts.Model.Generate(llm.Request{
			System:      llm.SystemVerilogDesigner,
			Prompt:      llm.BuildDesignPrompt(p.Spec),
			Task:        llm.VerilogGen{ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty},
			Temperature: opts.Temperature,
		})
		if err != nil {
			return nil, fmt.Errorf("vrank: generation failed: %w", err)
		}
		res.Sources = append(res.Sources, resp.Text)
		sink.Emit(core.Event{
			Kind: core.EventLLMCall, Framework: "vrank", Phase: "code generation",
			Seq: k + 1, Total: opts.K, TokensIn: resp.TokensIn, TokensOut: resp.TokensOut,
		})
	}
	sink.Emit(core.Event{Kind: core.EventPhaseEnd, Framework: "vrank", Phase: "sampling", Total: opts.K, OK: true, Detail: p.ID})

	// One stimulus-bench compile, k candidate signatures in parallel.
	var err error
	res.Signatures, err = Signatures(ctx, p, res.Sources, opts.Sim, opts.Workers)
	if err != nil {
		return res, err
	}

	// Cluster by identical signature (compiling candidates only).
	bySig := map[string][]int{}
	for i, sig := range res.Signatures {
		if sig == "" {
			continue
		}
		bySig[sig] = append(bySig[sig], i)
	}
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		a, b := bySig[sigs[i]], bySig[sigs[j]]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a[0] < b[0] // deterministic tie-break: earliest candidate
	})
	for _, sig := range sigs {
		res.Clusters = append(res.Clusters, bySig[sig])
	}
	if len(res.Clusters) > 0 {
		res.Chosen = res.Clusters[0][0]
	}

	// Score every candidate against the real (oracle) testbench in one
	// batch: the bench compiles once and duplicate candidates simulate
	// once, where the serial path re-ran the chosen and first candidates
	// from scratch.
	tb := p.Testbench()
	oracleJobs := make([]simfarm.Job, len(res.Sources))
	for i, src := range res.Sources {
		oracleJobs[i] = simfarm.Job{DUT: src, TB: tb, Top: benchTop, Opts: opts.Sim}
	}
	oracle, err := simfarm.RunManyCtx(ctx, oracleJobs, opts.Workers)
	if err != nil {
		return res, err
	}
	if res.Chosen >= 0 {
		res.ChosenPasses = oracle[res.Chosen].Passed()
	}
	if len(oracle) > 0 {
		res.FirstPasses = oracle[0].Passed()
	}
	for _, r := range oracle {
		if r.Passed() {
			res.AnyPasses = true
			break
		}
	}
	sink.Emit(core.Event{
		Kind: core.EventCandidate, Framework: "vrank", Phase: "selection",
		Seq: res.Chosen + 1, Total: len(res.Sources), OK: res.ChosenPasses,
		Detail: fmt.Sprintf("%d clusters; chosen candidate passes=%v", len(res.Clusters), res.ChosenPasses),
	})
	return res, nil
}
