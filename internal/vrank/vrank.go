// Package vrank implements VRank-style self-consistency ranking (paper
// §II): generate k Verilog candidates, simulate each on oracle-free
// stimuli, cluster candidates by their output signatures, and pick a
// representative of the largest cluster. The intuition: correct programs
// agree with each other; each buggy program fails in its own way.
package vrank

import (
	"fmt"
	"sort"
	"strings"

	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/verilog"
)

// Options parameterize ranking.
type Options struct {
	Model llm.Model
	// K is the candidate count (default 5).
	K int
	// Temperature for sampling diversity (default 0.9).
	Temperature float64
	Sim         verilog.SimOptions
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 5
	}
	if o.Temperature == 0 {
		o.Temperature = 0.9
	}
	return o
}

// Result reports one ranking run.
type Result struct {
	Sources []string
	// Signatures are the oracle-free output fingerprints per candidate
	// ("" for non-compiling candidates).
	Signatures []string
	// Clusters lists candidate indices grouped by identical signature,
	// largest first.
	Clusters [][]int
	// Chosen is the selected candidate index (-1 if nothing simulated).
	Chosen int
	// ChosenPasses / FirstPasses compare self-consistency selection with
	// the naive take-the-first-sample baseline on the real testbench.
	ChosenPasses bool
	FirstPasses  bool
	// AnyPasses reports whether an oracle could have found a passing
	// candidate among the k samples (the pass@k ceiling).
	AnyPasses bool
}

// StimulusBench rewrites a self-checking testbench into an oracle-free
// stimulus bench: every $check_eq(actual, expected) becomes a $display of
// both values. Because the expected value is a constant, it is identical
// across candidates and adds no oracle information to the signature.
func StimulusBench(tb string) string {
	return strings.ReplaceAll(tb, "$check_eq(", `$display("SIG %b %b", `)
}

// Signature simulates a candidate on the stimulus bench and returns its
// output fingerprint ("" when the candidate does not compile).
func Signature(p *benchset.Problem, source string, sim verilog.SimOptions) string {
	return Signatures(p, []string{source}, sim)[0]
}

// Signatures fingerprints a whole candidate batch against the shared
// stimulus bench through the simfarm engine: the bench is compiled once,
// duplicate candidates are simulated once, and independent candidates run
// concurrently. Output order matches the input and is bit-identical to
// calling Signature in a serial loop.
func Signatures(p *benchset.Problem, sources []string, sim verilog.SimOptions) []string {
	sb := StimulusBench(p.Testbench())
	jobs := make([]simfarm.Job, len(sources))
	for i, src := range sources {
		jobs[i] = simfarm.Job{DUT: src, TB: sb, Top: "tb", Opts: sim}
	}
	out := make([]string, len(sources))
	for i, r := range simfarm.RunMany(jobs, 0) {
		if r.Err != nil {
			continue
		}
		sig := r.Res.Output
		if r.Res.RuntimeErr != nil {
			sig += "\nRT:" + r.Res.RuntimeErr.Error()
		}
		if r.Res.TimedOut {
			sig += "\nTIMEOUT"
		}
		out[i] = sig
	}
	return out
}

// Rank runs the full VRank flow on one problem.
func Rank(p *benchset.Problem, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Model == nil {
		return nil, fmt.Errorf("vrank: Options.Model is required")
	}
	res := &Result{Chosen: -1}

	for k := 0; k < opts.K; k++ {
		resp, err := opts.Model.Generate(llm.Request{
			System:      llm.SystemVerilogDesigner,
			Prompt:      llm.BuildDesignPrompt(p.Spec),
			Task:        llm.VerilogGen{ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty},
			Temperature: opts.Temperature,
		})
		if err != nil {
			return nil, fmt.Errorf("vrank: generation failed: %w", err)
		}
		res.Sources = append(res.Sources, resp.Text)
	}
	// One stimulus-bench compile, k candidate signatures in parallel.
	res.Signatures = Signatures(p, res.Sources, opts.Sim)

	// Cluster by identical signature (compiling candidates only).
	bySig := map[string][]int{}
	for i, sig := range res.Signatures {
		if sig == "" {
			continue
		}
		bySig[sig] = append(bySig[sig], i)
	}
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		a, b := bySig[sigs[i]], bySig[sigs[j]]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a[0] < b[0] // deterministic tie-break: earliest candidate
	})
	for _, sig := range sigs {
		res.Clusters = append(res.Clusters, bySig[sig])
	}
	if len(res.Clusters) > 0 {
		res.Chosen = res.Clusters[0][0]
	}

	// Score every candidate against the real (oracle) testbench in one
	// batch: the bench compiles once and duplicate candidates simulate
	// once, where the serial path re-ran the chosen and first candidates
	// from scratch.
	tb := p.Testbench()
	oracleJobs := make([]simfarm.Job, len(res.Sources))
	for i, src := range res.Sources {
		oracleJobs[i] = simfarm.Job{DUT: src, TB: tb, Top: "tb", Opts: opts.Sim}
	}
	oracle := simfarm.RunMany(oracleJobs, 0)
	if res.Chosen >= 0 {
		res.ChosenPasses = oracle[res.Chosen].Passed()
	}
	if len(oracle) > 0 {
		res.FirstPasses = oracle[0].Passed()
	}
	for _, r := range oracle {
		if r.Passed() {
			res.AnyPasses = true
			break
		}
	}
	return res, nil
}
