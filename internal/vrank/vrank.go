// Package vrank implements VRank-style self-consistency ranking (paper
// §II): generate k Verilog candidates, simulate each on oracle-free
// stimuli, cluster candidates by their output signatures, and pick a
// representative of the largest cluster. The intuition: correct programs
// agree with each other; each buggy program fails in its own way.
package vrank

import (
	"fmt"
	"sort"
	"strings"

	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/verilog"
)

// Options parameterize ranking.
type Options struct {
	Model llm.Model
	// K is the candidate count (default 5).
	K int
	// Temperature for sampling diversity (default 0.9).
	Temperature float64
	Sim         verilog.SimOptions
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 5
	}
	if o.Temperature == 0 {
		o.Temperature = 0.9
	}
	return o
}

// Result reports one ranking run.
type Result struct {
	Sources []string
	// Signatures are the oracle-free output fingerprints per candidate
	// ("" for non-compiling candidates).
	Signatures []string
	// Clusters lists candidate indices grouped by identical signature,
	// largest first.
	Clusters [][]int
	// Chosen is the selected candidate index (-1 if nothing simulated).
	Chosen int
	// ChosenPasses / FirstPasses compare self-consistency selection with
	// the naive take-the-first-sample baseline on the real testbench.
	ChosenPasses bool
	FirstPasses  bool
	// AnyPasses reports whether an oracle could have found a passing
	// candidate among the k samples (the pass@k ceiling).
	AnyPasses bool
}

// StimulusBench rewrites a self-checking testbench into an oracle-free
// stimulus bench: every $check_eq(actual, expected) becomes a $display of
// both values. Because the expected value is a constant, it is identical
// across candidates and adds no oracle information to the signature.
func StimulusBench(tb string) string {
	return strings.ReplaceAll(tb, "$check_eq(", `$display("SIG %b %b", `)
}

// Signature simulates a candidate on the stimulus bench and returns its
// output fingerprint ("" when the candidate does not compile).
func Signature(p *benchset.Problem, source string, sim verilog.SimOptions) string {
	res, err := verilog.RunTestbench(source, StimulusBench(p.Testbench()), "tb", sim)
	if err != nil {
		return ""
	}
	sig := res.Output
	if res.RuntimeErr != nil {
		sig += "\nRT:" + res.RuntimeErr.Error()
	}
	if res.TimedOut {
		sig += "\nTIMEOUT"
	}
	return sig
}

// Rank runs the full VRank flow on one problem.
func Rank(p *benchset.Problem, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Model == nil {
		return nil, fmt.Errorf("vrank: Options.Model is required")
	}
	res := &Result{Chosen: -1}

	for k := 0; k < opts.K; k++ {
		resp, err := opts.Model.Generate(llm.Request{
			System:      llm.SystemVerilogDesigner,
			Prompt:      llm.BuildDesignPrompt(p.Spec),
			Task:        llm.VerilogGen{ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty},
			Temperature: opts.Temperature,
		})
		if err != nil {
			return nil, fmt.Errorf("vrank: generation failed: %w", err)
		}
		res.Sources = append(res.Sources, resp.Text)
		res.Signatures = append(res.Signatures, Signature(p, resp.Text, opts.Sim))
	}

	// Cluster by identical signature (compiling candidates only).
	bySig := map[string][]int{}
	for i, sig := range res.Signatures {
		if sig == "" {
			continue
		}
		bySig[sig] = append(bySig[sig], i)
	}
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		a, b := bySig[sigs[i]], bySig[sigs[j]]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a[0] < b[0] // deterministic tie-break: earliest candidate
	})
	for _, sig := range sigs {
		res.Clusters = append(res.Clusters, bySig[sig])
	}
	if len(res.Clusters) > 0 {
		res.Chosen = res.Clusters[0][0]
	}

	// Score against the real (oracle) testbench.
	passes := func(src string) bool {
		r, err := verilog.RunTestbench(src, p.Testbench(), "tb", opts.Sim)
		return err == nil && r.Passed()
	}
	if res.Chosen >= 0 {
		res.ChosenPasses = passes(res.Sources[res.Chosen])
	}
	if len(res.Sources) > 0 {
		res.FirstPasses = passes(res.Sources[0])
	}
	for _, src := range res.Sources {
		if passes(src) {
			res.AnyPasses = true
			break
		}
	}
	return res, nil
}
