package vrank

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/verilog"
)

func TestStimulusBenchHasNoChecks(t *testing.T) {
	p := benchset.ByID("adder4")
	sb := StimulusBench(p.Testbench())
	if strings.Contains(sb, "$check_eq") {
		t.Error("stimulus bench still self-checking")
	}
	if !strings.Contains(sb, "SIG") {
		t.Error("stimulus bench emits no signature")
	}
	// It must still simulate cleanly on the reference.
	res, err := verilog.RunTestbench(p.Reference, sb, "tb", verilog.SimOptions{})
	if err != nil || res.RuntimeErr != nil || !res.Finished {
		t.Fatalf("stimulus bench broken: %v %v", err, res)
	}
}

func TestSignatureSeparatesGoodFromBad(t *testing.T) {
	p := benchset.ByID("adder4")
	good := Signature(p, p.Reference, verilog.SimOptions{})
	bad := Signature(p, strings.Replace(p.Reference, "a + b + cin", "a - b + cin", 1), verilog.SimOptions{})
	if good == "" || bad == "" {
		t.Fatal("signatures empty")
	}
	if good == bad {
		t.Error("buggy design has identical signature")
	}
	if Signature(p, "module adder4(; endmodule", verilog.SimOptions{}) != "" {
		t.Error("non-compiling candidate should have empty signature")
	}
}

func TestRankPicksMajorityCluster(t *testing.T) {
	p := benchset.ByID("alu8")
	res, err := Rank(context.Background(), p, Options{Model: llm.NewSimModel(llm.TierLarge, 4), K: 7})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if res.Chosen < 0 {
		t.Fatal("nothing chosen")
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	// Largest cluster first.
	for i := 1; i < len(res.Clusters); i++ {
		if len(res.Clusters[i]) > len(res.Clusters[0]) {
			t.Errorf("clusters not sorted by size")
		}
	}
}

func TestSelfConsistencyBeatsFirstSample(t *testing.T) {
	// Aggregated over problems and seeds, choosing the largest cluster
	// should pass at least as often as taking the first sample.
	chosenWins, firstWins := 0, 0
	for _, pid := range []string{"alu8", "mux4", "enc8to3", "barrel8", "satadd8"} {
		p := benchset.ByID(pid)
		for seed := uint64(0); seed < 4; seed++ {
			res, err := Rank(context.Background(), p, Options{Model: llm.NewSimModel(llm.TierMedium, seed*31+1), K: 7})
			if err != nil {
				t.Fatalf("Rank: %v", err)
			}
			if res.ChosenPasses {
				chosenWins++
			}
			if res.FirstPasses {
				firstWins++
			}
		}
	}
	if chosenWins < firstWins {
		t.Errorf("self-consistency %d < first-sample %d", chosenWins, firstWins)
	}
	if chosenWins == 0 {
		t.Error("self-consistency never passed")
	}
}
