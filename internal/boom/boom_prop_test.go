package boom

import (
	"testing"
	"testing/quick"

	"llm4eda/internal/chdl"
	"llm4eda/internal/isa"
)

// TestTimingInvariantsProperty checks structural invariants of the timing
// model across randomized programs: IPC never exceeds the commit width,
// the cycle count is at least insts/commitWidth, mispredicts never exceed
// branches, and cache misses never exceed accesses.
func TestTimingInvariantsProperty(t *testing.T) {
	render := func(mulW, addW, trips uint8) string {
		src := `
int main() {
    int a = 1;
    int b = 2;
    int c = 3;
    for (int r = 0; r < ` + itoa(int(trips)%200+20) + `; r++) {
        a = a * ` + itoa(int(mulW)%97+3) + ` + r;
        b = (b ^ r) + ` + itoa(int(addW)) + `;
        c = c + (a & 255);
    }
    return a + b + c;
}`
		return src
	}
	check := func(mulW, addW, trips uint8) bool {
		prog, err := chdl.ParseC(render(mulW, addW, trips))
		if err != nil {
			return false
		}
		compiled, err := isa.Compile(prog, "main")
		if err != nil {
			return false
		}
		res := Run(compiled, RunOptions{MaxInsts: 100_000})
		if res.Trap != nil {
			return false
		}
		cfg := DefaultConfig()
		if res.IPC > float64(cfg.CommitWidth)+1e-9 {
			return false
		}
		if res.Cycles*uint64(cfg.CommitWidth) < res.Insts {
			return false
		}
		if res.Mispredicts > res.Branches {
			return false
		}
		if res.CacheMisses > res.CacheAccess {
			return false
		}
		return res.PowerW > DefaultEnergy().StaticW
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestMorePowerMoreWork: for the same program shape, more iterations must
// not change average power much (power is an intensity, not a total), while
// energy grows with work.
func TestPowerIsIntensityNotTotal(t *testing.T) {
	build := func(trips int) *isa.Program {
		src := `
int main() {
    int a = 1;
    for (int r = 0; r < ` + itoa(trips) + `; r++) {
        a = a * 31 + r;
    }
    return a;
}`
		prog, err := chdl.ParseC(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		compiled, err := isa.Compile(prog, "main")
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return compiled
	}
	short := Run(build(500), RunOptions{})
	long := Run(build(5000), RunOptions{})
	if long.EnergyJ <= short.EnergyJ {
		t.Errorf("energy did not grow with work: %g <= %g", long.EnergyJ, short.EnergyJ)
	}
	ratio := long.PowerW / short.PowerW
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("power drifted with run length: %.3f vs %.3f", short.PowerW, long.PowerW)
	}
}
