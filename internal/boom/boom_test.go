package boom

import (
	"errors"
	"testing"

	"llm4eda/internal/chdl"
	"llm4eda/internal/isa"
)

func compileAndRun(t *testing.T, src string, opts RunOptions) *Result {
	t.Helper()
	cprog, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("ParseC: %v", err)
	}
	p, err := isa.Compile(cprog, "main")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return Run(p, opts)
}

func TestFunctionalCorrectness(t *testing.T) {
	src := `
int main() {
    int acc = 0;
    for (int i = 1; i <= 100; i++) acc += i;
    return acc;
}`
	res := compileAndRun(t, src, RunOptions{})
	if !res.Halted || res.Trap != nil {
		t.Fatalf("halted=%v trap=%v", res.Halted, res.Trap)
	}
	if res.ReturnValue != 5050 {
		t.Errorf("return = %d, want 5050", res.ReturnValue)
	}
	if res.Cycles == 0 || res.Insts == 0 {
		t.Errorf("no timing recorded: %+v", res)
	}
}

func TestPowerInCalibratedBand(t *testing.T) {
	// A realistic mixed kernel should land in the paper's 4.2-5.7 W band.
	src := `
int main() {
    int a[256];
    int acc = 1;
    for (int i = 0; i < 256; i++) a[i] = i * 2654435761;
    for (int r = 0; r < 200; r++) {
        for (int i = 0; i < 256; i++) {
            acc += a[i] * (i | 1);
            acc ^= acc >> 3;
        }
    }
    return acc;
}`
	res := compileAndRun(t, src, RunOptions{})
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	if res.PowerW < 4.2 || res.PowerW > 6.2 {
		t.Errorf("power %.3f W outside calibration band [4.2, 6.2]", res.PowerW)
	}
}

func TestIdleLoopLowerPowerThanDenseCode(t *testing.T) {
	// Serial dependence chain with divisions: low IPC, low power.
	idle := `
int main() {
    int x = 1000000;
    for (int i = 0; i < 30000; i++) x = x / 3 + 1;
    return x;
}`
	// Independent ALU/MUL mix: high IPC, high power.
	dense := `
int main() {
    int a = 1, b = 2, c = 3, d = 4;
    for (int i = 0; i < 30000; i++) {
        a = a * 17 + i;
        b = b ^ (i << 2);
        c = c + (i | 5);
        d = d - (i & 31);
    }
    return a + b + c + d;
}`
	ri := compileAndRun(t, idle, RunOptions{})
	rd := compileAndRun(t, dense, RunOptions{})
	if ri.Trap != nil || rd.Trap != nil {
		t.Fatalf("traps: %v %v", ri.Trap, rd.Trap)
	}
	if ri.PowerW >= rd.PowerW {
		t.Errorf("idle power %.3f >= dense power %.3f; landscape inverted", ri.PowerW, rd.PowerW)
	}
	if rd.IPC <= ri.IPC {
		t.Errorf("dense IPC %.2f <= idle IPC %.2f", rd.IPC, ri.IPC)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	src := `
int main() {
    int acc = 0;
    for (int i = 0; i < 10000; i++) acc += i;
    return acc;
}`
	res := compileAndRun(t, src, RunOptions{})
	if res.Branches == 0 {
		t.Fatal("no branches recorded")
	}
	rate := float64(res.Mispredicts) / float64(res.Branches)
	if rate > 0.05 {
		t.Errorf("loop mispredict rate %.3f too high; gshare not learning", rate)
	}
}

func TestRandomBranchesMispredict(t *testing.T) {
	// Data-dependent unpredictable branches: mispredict rate well above
	// the loop case.
	src := `
int main() {
    int x = 123456789;
    int acc = 0;
    for (int i = 0; i < 20000; i++) {
        x = x * 1103515245 + 12345;
        if ((x >> 16) & 1) acc += 3;
        else acc -= 1;
    }
    return acc;
}`
	res := compileAndRun(t, src, RunOptions{})
	rate := float64(res.Mispredicts) / float64(res.Branches)
	if rate < 0.15 {
		t.Errorf("random-branch mispredict rate %.3f suspiciously low", rate)
	}
}

func TestCacheMissesOnLargeStride(t *testing.T) {
	small := `
int main() {
    int a[64];
    int acc = 0;
    for (int r = 0; r < 500; r++)
        for (int i = 0; i < 64; i++) acc += a[i];
    return acc;
}`
	// Large working set exceeding L1 capacity: misses dominate.
	large := `
int big[16384];
int main() {
    int acc = 0;
    for (int r = 0; r < 2; r++)
        for (int i = 0; i < 16384; i++) acc += big[i];
    return acc;
}`
	rs := compileAndRun(t, small, RunOptions{})
	rl := compileAndRun(t, large, RunOptions{})
	if rs.Trap != nil || rl.Trap != nil {
		t.Fatalf("traps: %v %v", rs.Trap, rl.Trap)
	}
	smallRate := float64(rs.CacheMisses) / float64(rs.CacheAccess+1)
	largeRate := float64(rl.CacheMisses) / float64(rl.CacheAccess+1)
	if largeRate <= smallRate {
		t.Errorf("large-stride miss rate %.3f <= small %.3f", largeRate, smallRate)
	}
}

func TestTrapOnBadAccessScoresAsTrap(t *testing.T) {
	src := `
int huge[1];
int main() {
    int acc = 0;
    for (int i = 0; i < 10; i++) acc += huge[i * 1000000000];
    return acc;
}`
	res := compileAndRun(t, src, RunOptions{})
	if res.Trap == nil || !errors.Is(res.Trap, ErrTrap) {
		t.Errorf("expected trap, got %+v", res)
	}
}

func TestMaxInstsTimeout(t *testing.T) {
	src := `int main() { int x = 0; while (1) { x++; } return x; }`
	res := compileAndRun(t, src, RunOptions{MaxInsts: 10000})
	if !res.TimedOut || res.Halted {
		t.Errorf("expected timeout, got %+v", res)
	}
}

func TestDivHeavyCodeSlowerThanALU(t *testing.T) {
	div := `
int main() {
    int x = 1 << 30;
    for (int i = 0; i < 5000; i++) x = x / 3 + 1000000;
    return x;
}`
	alu := `
int main() {
    int x = 1 << 30;
    for (int i = 0; i < 5000; i++) x = (x >> 2) + 1000000;
    return x;
}`
	rdv := compileAndRun(t, div, RunOptions{})
	ral := compileAndRun(t, alu, RunOptions{})
	if rdv.IPC >= ral.IPC {
		t.Errorf("div IPC %.2f >= alu IPC %.2f; unpipelined divider not modeled", rdv.IPC, ral.IPC)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
int main() {
    int acc = 0;
    for (int i = 0; i < 1000; i++) acc = acc * 31 + i;
    return acc;
}`
	a := compileAndRun(t, src, RunOptions{})
	b := compileAndRun(t, src, RunOptions{})
	if a.Cycles != b.Cycles || a.PowerW != b.PowerW || a.ReturnValue != b.ReturnValue {
		t.Errorf("nondeterministic results: %+v vs %+v", a, b)
	}
}
