// Package boom implements the superscalar out-of-order RISC-V processor
// model that substitutes for the paper's BOOM-on-FPGA power measurement
// rig (§V). It executes isa programs functionally and, in the same pass,
// runs an interval-style out-of-order timing model: register dataflow,
// functional-unit contention, a gshare branch predictor, an L1D cache and
// a reorder-buffer window. Per-class activity counters feed a calibrated
// energy model, so every run yields the watts figure the SLT optimization
// loop maximizes.
//
// The substitution preserves what the case study needs: an optimization
// landscape where dense, port-saturating, well-predicted code scores high
// and stalling or trivial code scores low, with absolute values in the
// 4.2-5.7 W band the paper reports.
package boom

import (
	"errors"
	"fmt"

	"llm4eda/internal/isa"
)

// Config parameterizes the core. The default mirrors a MediumBoom-class
// configuration on an FPGA.
type Config struct {
	FetchWidth  int
	CommitWidth int
	ROBSize     int

	NumALU int
	NumMul int
	NumDiv int
	NumMem int

	ALULat int
	MulLat int
	DivLat int // unpipelined

	BPredBits         int // gshare history/table bits
	MispredictPenalty int

	L1Sets      int
	L1Ways      int
	L1LineWords int
	HitLat      int
	MissLat     int

	MemWords int
	FreqMHz  float64
}

// DefaultConfig returns the MediumBoom-on-FPGA-like configuration used
// throughout the reproduction.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        4,
		CommitWidth:       4,
		ROBSize:           96,
		NumALU:            3,
		NumMul:            1,
		NumDiv:            1,
		NumMem:            2,
		ALULat:            1,
		MulLat:            3,
		DivLat:            16,
		BPredBits:         12,
		MispredictPenalty: 9,
		L1Sets:            64,
		L1Ways:            4,
		L1LineWords:       8,
		HitLat:            2,
		MissLat:           24,
		MemWords:          1 << 20,
		FreqMHz:           75,
	}
}

// EnergyModel holds per-event energies in nanojoules plus static power.
// The constants are calibrated so that realistic C snippets land in the
// paper's 4.2-5.7 W band at the default 75 MHz.
type EnergyModel struct {
	StaticW     float64
	FetchNJ     float64 // per instruction fetched/decoded
	ALUNJ       float64
	MulNJ       float64
	DivNJ       float64 // per busy cycle
	LoadNJ      float64
	StoreNJ     float64
	BranchNJ    float64
	MissNJ      float64 // extra per cache miss
	MispredNJ   float64 // pipeline refill energy
	IdleCycleNJ float64 // clock-tree energy per cycle
}

// DefaultEnergy returns the calibrated energy model.
func DefaultEnergy() EnergyModel {
	return EnergyModel{
		StaticW:     4.00,
		FetchNJ:     1.5,
		ALUNJ:       2.6,
		MulNJ:       9.5,
		DivNJ:       3.0,
		LoadNJ:      6.5,
		StoreNJ:     7.0,
		BranchNJ:    2.7,
		MissNJ:      18.0,
		MispredNJ:   13.0,
		IdleCycleNJ: 1.0,
	}
}

// RunOptions bound one program execution.
type RunOptions struct {
	// MaxInsts bounds retired instructions (default 1_000_000).
	MaxInsts uint64
	Config   Config
	Energy   EnergyModel
}

func (o RunOptions) withDefaults() RunOptions {
	if o.MaxInsts == 0 {
		o.MaxInsts = 1_000_000
	}
	if o.Config.FetchWidth == 0 {
		o.Config = DefaultConfig()
	}
	if o.Energy.StaticW == 0 {
		o.Energy = DefaultEnergy()
	}
	return o
}

// Result reports functional and microarchitectural outcomes of one run.
type Result struct {
	// ReturnValue is a0 at halt.
	ReturnValue int32
	Halted      bool
	// TimedOut is true when MaxInsts was exhausted before HALT.
	TimedOut bool
	// Trap holds a fatal execution error (bad memory access, bad PC).
	Trap error

	Insts  uint64
	Cycles uint64
	IPC    float64

	ClassCounts map[isa.FUClass]uint64
	Branches    uint64
	Mispredicts uint64
	CacheAccess uint64
	CacheMisses uint64

	// PowerW is the modeled average power over the run.
	PowerW  float64
	EnergyJ float64
	// RuntimeS is modeled wall-clock time of the run at the core frequency.
	RuntimeS float64
}

// String summarizes the run for logs.
func (r *Result) String() string {
	return fmt.Sprintf("insts=%d cycles=%d ipc=%.2f power=%.3fW branches=%d mispred=%d dmiss=%d",
		r.Insts, r.Cycles, r.IPC, r.PowerW, r.Branches, r.Mispredicts, r.CacheMisses)
}

// ErrTrap wraps fatal execution faults ("unwanted exceptions" in the
// paper's scoring: the snippet scores zero).
var ErrTrap = errors.New("boom: execution trap")

// Run executes the program to HALT (or the instruction bound) and returns
// timing, activity and power results.
func Run(p *isa.Program, opts RunOptions) *Result {
	opts = opts.withDefaults()
	cfg := opts.Config
	m := newMachine(p, cfg)
	res := &Result{ClassCounts: map[isa.FUClass]uint64{}}

	for res.Insts < opts.MaxInsts {
		inst, trap := m.fetch()
		if trap != nil {
			res.Trap = trap
			break
		}
		rec, halt, trap := m.exec(inst)
		if trap != nil {
			res.Trap = trap
			break
		}
		if halt {
			res.Halted = true
			res.ReturnValue = m.regs[isa.RegA0]
			break
		}
		res.Insts++
		res.ClassCounts[rec.class]++
		m.timeInstruction(rec)
		if rec.class == isa.FUBranch && rec.conditional {
			res.Branches++
			if rec.mispredicted {
				res.Mispredicts++
			}
		}
		if rec.class == isa.FULoad || rec.class == isa.FUStore {
			res.CacheAccess++
			if rec.cacheMiss {
				res.CacheMisses++
			}
		}
	}
	if !res.Halted && res.Trap == nil {
		res.TimedOut = true
	}

	res.Cycles = m.lastRetire
	if res.Cycles == 0 {
		res.Cycles = 1
	}
	res.IPC = float64(res.Insts) / float64(res.Cycles)
	applyPower(res, opts)
	return res
}

// applyPower folds activity counters into watts.
func applyPower(res *Result, opts RunOptions) {
	e := opts.Energy
	nj := float64(res.Insts) * e.FetchNJ
	nj += float64(res.ClassCounts[isa.FUALU]) * e.ALUNJ
	nj += float64(res.ClassCounts[isa.FUMul]) * e.MulNJ
	nj += float64(res.ClassCounts[isa.FUDiv]) * float64(opts.Config.DivLat) * e.DivNJ
	nj += float64(res.ClassCounts[isa.FULoad]) * e.LoadNJ
	nj += float64(res.ClassCounts[isa.FUStore]) * e.StoreNJ
	nj += float64(res.ClassCounts[isa.FUBranch]) * e.BranchNJ
	nj += float64(res.CacheMisses) * e.MissNJ
	nj += float64(res.Mispredicts) * e.MispredNJ
	nj += float64(res.Cycles) * e.IdleCycleNJ

	seconds := float64(res.Cycles) / (opts.Config.FreqMHz * 1e6)
	if seconds <= 0 {
		seconds = 1e-9
	}
	res.RuntimeS = seconds
	res.EnergyJ = nj * 1e-9
	res.PowerW = e.StaticW + res.EnergyJ/seconds
}

// --- machine state --------------------------------------------------------

// instRec carries what the timing model needs about one retired instruction.
type instRec struct {
	class        isa.FUClass
	rs1, rs2, rd int
	memAddr      int32
	conditional  bool
	mispredicted bool
	cacheMiss    bool
	isLoad       bool
	isStore      bool
}

type machine struct {
	prog *isa.Program
	cfg  Config
	regs [32]int32
	mem  []int32
	pc   int

	// timing state
	regReady     [32]uint64
	fuFree       map[isa.FUClass][]uint64
	retireRing   []uint64 // retire cycles of the last ROBSize insts
	ringPos      int
	fetchCycle   uint64
	fetchInGroup int
	lastRetire   uint64
	retireAt     uint64
	retiredHere  int

	// branch predictor (gshare)
	ghr   uint32
	bpred []uint8

	// L1D
	tags [][]int32 // [set][way] tag, -1 invalid
	lru  [][]uint64
	tick uint64

	// store-to-load timing
	storeReady map[int32]uint64
}

func newMachine(p *isa.Program, cfg Config) *machine {
	m := &machine{
		prog:       p,
		cfg:        cfg,
		mem:        make([]int32, cfg.MemWords),
		pc:         p.Start,
		fuFree:     map[isa.FUClass][]uint64{},
		retireRing: make([]uint64, cfg.ROBSize),
		bpred:      make([]uint8, 1<<uint(cfg.BPredBits)),
		storeReady: map[int32]uint64{},
	}
	m.regs[isa.RegSP] = int32(cfg.MemWords - 1)
	m.regs[isa.RegGP] = 0
	m.fuFree[isa.FUALU] = make([]uint64, cfg.NumALU)
	m.fuFree[isa.FUBranch] = make([]uint64, cfg.NumALU) // branches share ALU ports
	m.fuFree[isa.FUMul] = make([]uint64, cfg.NumMul)
	m.fuFree[isa.FUDiv] = make([]uint64, cfg.NumDiv)
	m.fuFree[isa.FULoad] = make([]uint64, cfg.NumMem)
	m.fuFree[isa.FUStore] = make([]uint64, cfg.NumMem)
	m.tags = make([][]int32, cfg.L1Sets)
	m.lru = make([][]uint64, cfg.L1Sets)
	for i := range m.tags {
		m.tags[i] = make([]int32, cfg.L1Ways)
		m.lru[i] = make([]uint64, cfg.L1Ways)
		for w := range m.tags[i] {
			m.tags[i][w] = -1
		}
	}
	return m
}

func (m *machine) fetch() (isa.Inst, error) {
	if m.pc < 0 || m.pc >= len(m.prog.Insts) {
		return isa.Inst{}, fmt.Errorf("%w: pc %d out of range", ErrTrap, m.pc)
	}
	return m.prog.Insts[m.pc], nil
}

// cacheAccess updates the L1D state and reports whether it missed.
func (m *machine) cacheAccess(addr int32) bool {
	m.tick++
	line := int(addr) / m.cfg.L1LineWords
	set := line % m.cfg.L1Sets
	tag := int32(line / m.cfg.L1Sets)
	ways := m.tags[set]
	for w, t := range ways {
		if t == tag {
			m.lru[set][w] = m.tick
			return false
		}
	}
	// miss: replace LRU
	victim := 0
	for w := 1; w < len(ways); w++ {
		if m.lru[set][w] < m.lru[set][victim] {
			victim = w
		}
	}
	m.tags[set][victim] = tag
	m.lru[set][victim] = m.tick
	return true
}

// predictBranch consults gshare and updates it with the outcome.
func (m *machine) predictBranch(pc int, taken bool) bool {
	mask := uint32(len(m.bpred) - 1)
	idx := (uint32(pc) ^ m.ghr) & mask
	ctr := m.bpred[idx]
	predicted := ctr >= 2
	if taken {
		if ctr < 3 {
			m.bpred[idx] = ctr + 1
		}
	} else if ctr > 0 {
		m.bpred[idx] = ctr - 1
	}
	m.ghr = (m.ghr << 1) | boolBit(taken)
	return predicted == taken
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// exec functionally executes one instruction, advancing pc, and returns
// the record for the timing model.
func (m *machine) exec(in isa.Inst) (instRec, bool, error) {
	rec := instRec{class: in.Op.Class(), rs1: in.Rs1, rs2: in.Rs2, rd: in.Rd}
	r := &m.regs
	rd := func(v int32) {
		if in.Rd != 0 {
			r[in.Rd] = v
		}
	}
	next := m.pc + 1
	switch in.Op {
	case isa.OpHalt:
		return rec, true, nil
	case isa.OpAdd:
		rd(r[in.Rs1] + r[in.Rs2])
	case isa.OpSub:
		rd(r[in.Rs1] - r[in.Rs2])
	case isa.OpAnd:
		rd(r[in.Rs1] & r[in.Rs2])
	case isa.OpOr:
		rd(r[in.Rs1] | r[in.Rs2])
	case isa.OpXor:
		rd(r[in.Rs1] ^ r[in.Rs2])
	case isa.OpSll:
		rd(r[in.Rs1] << (uint32(r[in.Rs2]) & 31))
	case isa.OpSrl:
		rd(int32(uint32(r[in.Rs1]) >> (uint32(r[in.Rs2]) & 31)))
	case isa.OpSra:
		rd(r[in.Rs1] >> (uint32(r[in.Rs2]) & 31))
	case isa.OpSlt:
		rd(boolReg(r[in.Rs1] < r[in.Rs2]))
	case isa.OpSltu:
		rd(boolReg(uint32(r[in.Rs1]) < uint32(r[in.Rs2])))
	case isa.OpMul:
		rd(int32(int64(r[in.Rs1]) * int64(r[in.Rs2])))
	case isa.OpMulh:
		rd(int32((int64(r[in.Rs1]) * int64(r[in.Rs2])) >> 32))
	case isa.OpDiv:
		// RISC-V: division by zero yields -1, overflow yields dividend.
		a, b := r[in.Rs1], r[in.Rs2]
		switch {
		case b == 0:
			rd(-1)
		case a == -1<<31 && b == -1:
			rd(a)
		default:
			rd(a / b)
		}
	case isa.OpRem:
		a, b := r[in.Rs1], r[in.Rs2]
		switch {
		case b == 0:
			rd(a)
		case a == -1<<31 && b == -1:
			rd(0)
		default:
			rd(a % b)
		}
	case isa.OpAddi:
		rd(r[in.Rs1] + int32(in.Imm))
	case isa.OpAndi:
		rd(r[in.Rs1] & int32(in.Imm))
	case isa.OpOri:
		rd(r[in.Rs1] | int32(in.Imm))
	case isa.OpXori:
		rd(r[in.Rs1] ^ int32(in.Imm))
	case isa.OpSlli:
		rd(r[in.Rs1] << (uint32(in.Imm) & 31))
	case isa.OpSrli:
		rd(int32(uint32(r[in.Rs1]) >> (uint32(in.Imm) & 31)))
	case isa.OpSrai:
		rd(r[in.Rs1] >> (uint32(in.Imm) & 31))
	case isa.OpSlti:
		rd(boolReg(r[in.Rs1] < int32(in.Imm)))
	case isa.OpLui:
		rd(int32(in.Imm) << 12)
	case isa.OpLw:
		addr := r[in.Rs1] + int32(in.Imm)
		if addr < 0 || int(addr) >= len(m.mem) {
			return rec, false, fmt.Errorf("%w: load address %d out of range at pc %d", ErrTrap, addr, m.pc)
		}
		rec.memAddr = addr
		rec.isLoad = true
		rec.cacheMiss = m.cacheAccess(addr)
		rd(m.mem[addr])
	case isa.OpSw:
		addr := r[in.Rs1] + int32(in.Imm)
		if addr < 0 || int(addr) >= len(m.mem) {
			return rec, false, fmt.Errorf("%w: store address %d out of range at pc %d", ErrTrap, addr, m.pc)
		}
		rec.memAddr = addr
		rec.isStore = true
		rec.cacheMiss = m.cacheAccess(addr)
		m.mem[addr] = m.regs[in.Rs2]
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		taken := false
		a, b := r[in.Rs1], r[in.Rs2]
		switch in.Op {
		case isa.OpBeq:
			taken = a == b
		case isa.OpBne:
			taken = a != b
		case isa.OpBlt:
			taken = a < b
		case isa.OpBge:
			taken = a >= b
		case isa.OpBltu:
			taken = uint32(a) < uint32(b)
		case isa.OpBgeu:
			taken = uint32(a) >= uint32(b)
		}
		rec.conditional = true
		rec.mispredicted = !m.predictBranch(m.pc, taken)
		if taken {
			next = int(in.Imm)
		}
	case isa.OpJal:
		rd(int32(m.pc + 1))
		next = int(in.Imm)
	case isa.OpJalr:
		t := int(r[in.Rs1]) + int(in.Imm)
		rd(int32(m.pc + 1))
		next = t
	default:
		return rec, false, fmt.Errorf("%w: illegal opcode %v at pc %d", ErrTrap, in.Op, m.pc)
	}
	m.pc = next
	return rec, false, nil
}

func boolReg(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// timeInstruction advances the interval timing model by one instruction.
func (m *machine) timeInstruction(rec instRec) {
	cfg := m.cfg

	// Fetch bandwidth: FetchWidth instructions per cycle.
	m.fetchInGroup++
	if m.fetchInGroup >= cfg.FetchWidth {
		m.fetchInGroup = 0
		m.fetchCycle++
	}
	dispatch := m.fetchCycle

	// ROB window: cannot dispatch until the slot from ROBSize ago retired.
	if old := m.retireRing[m.ringPos]; old > dispatch {
		dispatch = old
		// Fetch stalls along with dispatch backpressure.
		m.fetchCycle = old
	}

	// Source readiness.
	ready := dispatch
	if t := m.regReady[rec.rs1]; t > ready {
		ready = t
	}
	if t := m.regReady[rec.rs2]; t > ready {
		ready = t
	}
	if rec.isLoad {
		if t, ok := m.storeReady[rec.memAddr]; ok && t > ready {
			ready = t
		}
	}

	// FU arbitration: earliest-free unit of the class.
	units := m.fuFree[rec.class]
	best := 0
	for u := 1; u < len(units); u++ {
		if units[u] < units[best] {
			best = u
		}
	}
	issue := ready
	if units[best] > issue {
		issue = units[best]
	}

	lat := uint64(cfg.ALULat)
	occupancy := uint64(1) // pipelined units accept one op per cycle
	switch rec.class {
	case isa.FUMul:
		lat = uint64(cfg.MulLat)
	case isa.FUDiv:
		lat = uint64(cfg.DivLat)
		occupancy = uint64(cfg.DivLat) // unpipelined
	case isa.FULoad, isa.FUStore:
		if rec.cacheMiss {
			lat = uint64(cfg.MissLat)
		} else {
			lat = uint64(cfg.HitLat)
		}
	}
	units[best] = issue + occupancy
	complete := issue + lat

	if rec.rd != 0 {
		m.regReady[rec.rd] = complete
	}
	if rec.isStore {
		m.storeReady[rec.memAddr] = complete
		if len(m.storeReady) > 1<<16 {
			m.storeReady = map[int32]uint64{} // bound the forwarding table
		}
	}

	// Branch resolution: mispredicts refill the frontend.
	if rec.mispredicted {
		redirect := complete + uint64(cfg.MispredictPenalty)
		if redirect > m.fetchCycle {
			m.fetchCycle = redirect
			m.fetchInGroup = 0
		}
	}

	// In-order retire with CommitWidth per cycle.
	retire := complete
	if retire < m.retireAt {
		retire = m.retireAt
	}
	if retire == m.retireAt {
		m.retiredHere++
		if m.retiredHere >= cfg.CommitWidth {
			retire++
			m.retiredHere = 0
		}
	} else {
		m.retiredHere = 1
	}
	m.retireAt = retire
	m.retireRing[m.ringPos] = retire
	m.ringPos = (m.ringPos + 1) % cfg.ROBSize
	if retire > m.lastRetire {
		m.lastRetire = retire
	}
}
