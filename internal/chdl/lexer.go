package chdl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies C tokens.
type tokKind int

const (
	tEOF tokKind = iota + 1
	tIdent
	tNumber
	tString
	tChar
	tPunct
	tPragma // whole "#pragma ..." line
)

type tok struct {
	kind tokKind
	text string
	line int
	col  int
}

// LexError is a positioned lexical error.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("C lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

var cPunct = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
}

type cLexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *cLexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *cLexer) peekAt(n int) byte {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *cLexer) adv() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// lexC tokenizes C source. Preprocessor lines other than #pragma are
// skipped (the subset has no macro expansion; #include is irrelevant
// because all builtins are recognized by name).
func lexC(src string) ([]tok, error) {
	l := &cLexer{src: src, line: 1, col: 1}
	var toks []tok
	for {
		// Skip whitespace and comments.
		for l.pos < len(l.src) {
			c := l.peek()
			if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
				l.adv()
				continue
			}
			if c == '/' && l.peekAt(1) == '/' {
				for l.pos < len(l.src) && l.peek() != '\n' {
					l.adv()
				}
				continue
			}
			if c == '/' && l.peekAt(1) == '*' {
				line, col := l.line, l.col
				l.adv()
				l.adv()
				closed := false
				for l.pos < len(l.src) {
					if l.peek() == '*' && l.peekAt(1) == '/' {
						l.adv()
						l.adv()
						closed = true
						break
					}
					l.adv()
				}
				if !closed {
					return nil, &LexError{line, col, "unterminated block comment"}
				}
				continue
			}
			break
		}
		if l.pos >= len(l.src) {
			toks = append(toks, tok{kind: tEOF, line: l.line, col: l.col})
			return toks, nil
		}

		line, col := l.line, l.col
		c := l.peek()
		switch {
		case c == '#':
			start := l.pos
			for l.pos < len(l.src) && l.peek() != '\n' {
				// Handle line continuations inside directives.
				if l.peek() == '\\' && l.peekAt(1) == '\n' {
					l.adv()
					l.adv()
					continue
				}
				l.adv()
			}
			text := strings.TrimSpace(l.src[start:l.pos])
			if strings.HasPrefix(text, "#pragma") {
				toks = append(toks, tok{kind: tPragma, text: strings.TrimSpace(text[len("#pragma"):]), line: line, col: col})
			}
			// #include/#define/#ifdef... skipped.

		case c == '_' || unicode.IsLetter(rune(c)):
			start := l.pos
			for l.pos < len(l.src) {
				ch := l.peek()
				if ch == '_' || unicode.IsLetter(rune(ch)) || unicode.IsDigit(rune(ch)) {
					l.adv()
					continue
				}
				break
			}
			toks = append(toks, tok{kind: tIdent, text: l.src[start:l.pos], line: line, col: col})

		case unicode.IsDigit(rune(c)):
			start := l.pos
			isHex := false
			if c == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
				isHex = true
				l.adv()
				l.adv()
			}
			for l.pos < len(l.src) {
				ch := l.peek()
				if unicode.IsDigit(rune(ch)) || (isHex && isHexDigit(ch)) || ch == '.' {
					l.adv()
					continue
				}
				break
			}
			// Integer suffixes.
			for l.pos < len(l.src) && (l.peek() == 'u' || l.peek() == 'U' || l.peek() == 'l' || l.peek() == 'L') {
				l.adv()
			}
			toks = append(toks, tok{kind: tNumber, text: l.src[start:l.pos], line: line, col: col})

		case c == '"':
			l.adv()
			var b strings.Builder
			for l.pos < len(l.src) && l.peek() != '"' {
				ch := l.adv()
				if ch == '\\' && l.pos < len(l.src) {
					b.WriteByte(unescape(l.adv()))
					continue
				}
				b.WriteByte(ch)
			}
			if l.pos >= len(l.src) {
				return nil, &LexError{line, col, "unterminated string literal"}
			}
			l.adv()
			toks = append(toks, tok{kind: tString, text: b.String(), line: line, col: col})

		case c == '\'':
			l.adv()
			if l.pos >= len(l.src) {
				return nil, &LexError{line, col, "unterminated character literal"}
			}
			ch := l.adv()
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return nil, &LexError{line, col, "unterminated character literal"}
				}
				ch = unescape(l.adv())
			}
			if l.pos >= len(l.src) || l.adv() != '\'' {
				return nil, &LexError{line, col, "unterminated character literal"}
			}
			toks = append(toks, tok{kind: tChar, text: string(ch), line: line, col: col})

		default:
			matched := ""
			rest := l.src[l.pos:]
			for _, p := range cPunct {
				if strings.HasPrefix(rest, p) {
					matched = p
					break
				}
			}
			if matched == "" {
				return nil, &LexError{line, col, fmt.Sprintf("unexpected character %q", c)}
			}
			for range matched {
				l.adv()
			}
			toks = append(toks, tok{kind: tPunct, text: matched, line: line, col: col})
		}
	}
}

func isHexDigit(c byte) bool {
	return unicode.IsDigit(rune(c)) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return c
	}
}

// parseCInt parses an integer literal (decimal or 0x hex, suffixes
// stripped). Floats are truncated: the subset flags them elsewhere.
func parseCInt(text string) (int64, error) {
	t := strings.TrimRight(text, "uUlL")
	if dot := strings.IndexByte(t, '.'); dot >= 0 {
		t = t[:dot]
		if t == "" {
			t = "0"
		}
	}
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		v, err := strconv.ParseUint(t[2:], 16, 64)
		return int64(v), err
	}
	v, err := strconv.ParseInt(t, 10, 64)
	return v, err
}
