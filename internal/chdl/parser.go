package chdl

import (
	"fmt"
	"strings"
)

// ParseError is a positioned C syntax error.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("C syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

var typeKeywords = map[string]bool{
	"int": true, "unsigned": true, "long": true, "char": true, "void": true,
	"bool": true, "float": true, "double": true, "short": true, "signed": true,
	"const": true, "static": true, "inline": true, "size_t": true, "uint32_t": true,
	"int32_t": true, "uint64_t": true, "int64_t": true, "uint8_t": true, "int8_t": true,
	"uint16_t": true, "int16_t": true,
}

type cParser struct {
	toks []tok
	pos  int
}

// ParseC parses a C translation unit in the supported subset.
func ParseC(src string) (*Program, error) {
	toks, err := lexC(src)
	if err != nil {
		return nil, err
	}
	p := &cParser{toks: toks}
	prog := &Program{Source: src}
	for !p.atEOF() {
		if p.cur().kind == tPragma {
			prog.Pragmas = append(prog.Pragmas, parsePragma(p.next()))
			continue
		}
		if !p.atTypeStart() {
			return nil, p.errf("expected declaration, got %q", p.cur().text)
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.cur()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.at("(") {
			fn, err := p.parseFuncRest(typ, name, nameTok.line)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		decls, err := p.parseVarRest(typ, name, nameTok.line)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, decls...)
	}
	if len(prog.Funcs) == 0 {
		return nil, &ParseError{1, 1, "no function definitions in translation unit"}
	}
	return prog, nil
}

func (p *cParser) cur() tok    { return p.toks[p.pos] }
func (p *cParser) atEOF() bool { return p.cur().kind == tEOF }

func (p *cParser) next() tok {
	t := p.cur()
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *cParser) at(s string) bool {
	t := p.cur()
	return (t.kind == tPunct || t.kind == tIdent) && t.text == s
}

func (p *cParser) accept(s string) bool {
	if p.at(s) {
		p.next()
		return true
	}
	return false
}

func (p *cParser) expect(s string) error {
	if !p.accept(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *cParser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *cParser) errf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{t.line, t.col, fmt.Sprintf(format, args...)}
}

func (p *cParser) atTypeStart() bool {
	t := p.cur()
	return t.kind == tIdent && typeKeywords[t.text]
}

// parseType parses a type specifier plus pointer stars.
func (p *cParser) parseType() (*Type, error) {
	for p.accept("const") || p.accept("static") || p.accept("inline") || p.accept("signed") {
	}
	t := p.cur()
	if t.kind != tIdent {
		return nil, p.errf("expected type, got %q", t.text)
	}
	var base *Type
	switch t.text {
	case "int", "int32_t", "short", "int16_t", "int8_t":
		p.next()
		base = &Type{Kind: KindInt}
	case "unsigned", "size_t", "uint32_t", "uint16_t", "uint8_t":
		p.next()
		p.accept("int")
		p.accept("long") // "unsigned long"
		if t.text == "unsigned" {
			base = &Type{Kind: KindUInt}
		} else {
			base = &Type{Kind: KindUInt}
		}
	case "long", "int64_t":
		p.next()
		p.accept("long")
		p.accept("int")
		base = &Type{Kind: KindLong}
	case "uint64_t":
		p.next()
		base = &Type{Kind: KindULong}
	case "char":
		p.next()
		base = &Type{Kind: KindChar}
	case "bool":
		p.next()
		base = &Type{Kind: KindBool}
	case "void":
		p.next()
		base = &Type{Kind: KindVoid}
	case "float", "double":
		p.next()
		base = &Type{Kind: KindFloat}
	default:
		return nil, p.errf("unknown type %q", t.text)
	}
	for p.accept("*") {
		p.accept("const")
		base = &Type{Kind: KindPtr, Elem: base}
	}
	return base, nil
}

// parseFuncRest parses a function after "type name".
func (p *cParser) parseFuncRest(ret *Type, name string, line int) (*FuncDecl, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name, Ret: ret, Line: line}
	if !p.at(")") && !(p.at("void") && p.toks[p.pos+1].text == ")") {
		for {
			typ, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pl := p.cur().line
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typ, err = p.parseArraySuffix(typ)
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, &VarDecl{Name: pname, Type: typ, Line: pl})
			if !p.accept(",") {
				break
			}
		}
	} else {
		p.accept("void")
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	// Function-scope pragmas appear right after the opening brace; the
	// statement parser attaches those to the body, and we lift
	// leading ones onto the function.
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	for len(body.Stmts) > 0 {
		ps, ok := body.Stmts[0].(*PragmaStmt)
		if !ok {
			break
		}
		fn.Pragmas = append(fn.Pragmas, ps.P)
		body.Stmts = body.Stmts[1:]
	}
	fn.Body = body
	return fn, nil
}

// parseArraySuffix parses zero or more [N] suffixes.
func (p *cParser) parseArraySuffix(base *Type) (*Type, error) {
	var dims []int
	for p.accept("[") {
		if p.accept("]") {
			dims = append(dims, -1)
			continue
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n := -1
		if lit, ok := e.(*IntLit); ok {
			n = int(lit.Val)
		}
		dims = append(dims, n)
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		base = &Type{Kind: KindArray, Elem: base, ArrayLen: dims[i]}
	}
	return base, nil
}

// parseVarRest parses the remainder of a variable declaration list after
// "type name".
func (p *cParser) parseVarRest(typ *Type, name string, line int) ([]*VarDecl, error) {
	var out []*VarDecl
	for {
		vt, err := p.parseArraySuffix(typ)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Name: name, Type: vt, Line: line}
		if p.accept("=") {
			if p.at("{") {
				p.next()
				for !p.at("}") {
					e, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					d.InitList = append(d.InitList, e)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect("}"); err != nil {
					return nil, err
				}
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				d.Init = e
			}
		}
		out = append(out, d)
		if !p.accept(",") {
			break
		}
		// Next declarator may carry its own stars.
		nt := typ
		for p.accept("*") {
			nt = &Type{Kind: KindPtr, Elem: nt}
		}
		line = p.cur().line
		name, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, _ = nt, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return out, nil
}

// parsePragma splits "#pragma HLS pipeline II=1" into structured form.
func parsePragma(t tok) *Pragma {
	pr := &Pragma{Raw: t.text, Args: map[string]string{}, Line: t.line}
	fields := strings.Fields(t.text)
	if len(fields) == 0 {
		return pr
	}
	i := 0
	if strings.EqualFold(fields[0], "HLS") {
		i = 1
	}
	if i < len(fields) {
		pr.Directive = strings.ToLower(fields[i])
		i++
	}
	for ; i < len(fields); i++ {
		kv := strings.SplitN(fields[i], "=", 2)
		key := strings.ToLower(kv[0])
		if len(kv) == 2 {
			pr.Args[key] = kv[1]
		} else {
			pr.Args[key] = ""
		}
	}
	return pr
}

// --- statements ---------------------------------------------------------

func (p *cParser) parseBlock() (*BlockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for !p.at("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next()
	return blk, nil
}

func (p *cParser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tPragma:
		pr := parsePragma(p.next())
		// Attach loop pragmas to the following loop statement.
		if p.at("for") || p.at("while") {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			switch loop := s.(type) {
			case *ForStmt:
				loop.Pragmas = append(loop.Pragmas, pr)
			case *WhileStmt:
				loop.Pragmas = append(loop.Pragmas, pr)
			}
			return s, nil
		}
		return &PragmaStmt{P: pr}, nil

	case p.at("{"):
		return p.parseBlock()

	case p.at("if"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: t.line}
		if p.accept("else") {
			st.Else, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return st, nil

	case p.at("for"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Line: t.line}
		if !p.at(";") {
			if p.atTypeStart() {
				ds, err := p.parseDeclStmt()
				if err != nil {
					return nil, err
				}
				st.Init = ds
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Init = &ExprStmt{X: e, Line: t.line}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.next()
		}
		if !p.at(";") {
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = c
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.at(")") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Post = e
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		st.Pragmas = append(st.Pragmas, liftLeadingPragmas(body)...)
		return st, nil

	case p.at("while"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pragmas: liftLeadingPragmas(body), Line: t.line}, nil

	case p.at("do"):
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DoStmt{Body: body, Cond: cond, Line: t.line}, nil

	case p.at("return"):
		p.next()
		st := &ReturnStmt{Line: t.line}
		if !p.at(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = e
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return st, nil

	case p.at("break"):
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil

	case p.at("continue"):
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil

	case p.at(";"):
		p.next()
		return &BlockStmt{}, nil

	case p.atTypeStart():
		return p.parseDeclStmt()

	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, Line: t.line}, nil
	}
}

// parseDeclStmt parses "type declarator[, declarator]* ;".
func (p *cParser) parseDeclStmt() (*DeclStmt, error) {
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	line := p.cur().line
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	decls, err := p.parseVarRest(typ, name, line)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Decls: decls}, nil
}

// --- expressions ---------------------------------------------------------

// parseExpr parses a full expression including comma-free assignment.
func (p *cParser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true, "&=": true, "|=": true, "^=": true,
}

func (p *cParser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tPunct && assignOps[t.text] {
		p.next()
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: t.text, LHS: lhs, RHS: rhs, Line: t.line}, nil
	}
	return lhs, nil
}

func (p *cParser) parseCond() (Expr, error) {
	cond, err := p.parseBin(0)
	if err != nil {
		return nil, err
	}
	if p.at("?") {
		line := p.cur().line
		p.next()
		then, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		els, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		return &CondExpr{Cond: cond, Then: then, Else: els, Line: line}, nil
	}
	return cond, nil
}

var cPrec = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *cParser) parseBin(level int) (Expr, error) {
	if level >= len(cPrec) {
		return p.parseUnary()
	}
	lhs, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := ""
		if t.kind == tPunct {
			for _, op := range cPrec[level] {
				if t.text == op {
					matched = op
					break
				}
			}
		}
		if matched == "" {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: matched, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *cParser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct {
		switch t.text {
		case "-", "!", "~", "*", "&", "+":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.text == "+" {
				return x, nil
			}
			return &UnExpr{Op: t.text, X: x, Line: t.line}, nil
		case "++", "--":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnExpr{Op: t.text, X: x, Line: t.line}, nil
		case "(":
			// Cast or parenthesized expression.
			save := p.pos
			p.next()
			if p.atTypeStart() {
				typ, err := p.parseType()
				if err == nil && p.at(")") {
					p.next()
					x, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &CastExpr{To: typ, X: x, Line: t.line}, nil
				}
			}
			p.pos = save
		}
	}
	if t.kind == tIdent && t.text == "sizeof" {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var typ *Type
		if p.atTypeStart() {
			var err error
			typ, err = p.parseType()
			if err != nil {
				return nil, err
			}
		} else {
			// sizeof(expr): consume the expression, treat as int.
			if _, err := p.parseExpr(); err != nil {
				return nil, err
			}
			typ = &Type{Kind: KindInt}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &SizeofExpr{To: typ, Line: t.line}, nil
	}
	return p.parsePostfixC()
}

func (p *cParser) parsePostfixC() (Expr, error) {
	e, err := p.parsePrimaryC()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.at("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{X: e, Idx: idx, Line: t.line}
		case p.at("++"), p.at("--"):
			p.next()
			e = &PostfixExpr{Op: t.text, X: e, Line: t.line}
		default:
			return e, nil
		}
	}
}

func (p *cParser) parsePrimaryC() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tNumber:
		p.next()
		v, err := parseCInt(t.text)
		if err != nil {
			return nil, &ParseError{t.line, t.col, fmt.Sprintf("bad number %q", t.text)}
		}
		return &IntLit{Val: v, Line: t.line}, nil
	case tChar:
		p.next()
		return &IntLit{Val: int64(t.text[0]), Line: t.line}, nil
	case tString:
		p.next()
		return &StrLit{Val: t.text, Line: t.line}, nil
	case tIdent:
		p.next()
		if p.at("(") {
			p.next()
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.at(")") {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		switch t.text {
		case "true":
			return &IntLit{Val: 1, Line: t.line}, nil
		case "false", "NULL", "nullptr":
			return &IntLit{Val: 0, Line: t.line}, nil
		}
		return &VarRef{Name: t.text, Line: t.line}, nil
	default:
		if p.at("(") {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected token %q in expression", t.text)
	}
}

// liftLeadingPragmas removes leading PragmaStmt nodes from a loop body and
// returns them; Vitis-style loop pragmas appear as the first statements
// inside the loop braces.
func liftLeadingPragmas(body Stmt) []*Pragma {
	blk, ok := body.(*BlockStmt)
	if !ok {
		return nil
	}
	var out []*Pragma
	for len(blk.Stmts) > 0 {
		ps, ok := blk.Stmts[0].(*PragmaStmt)
		if !ok {
			break
		}
		out = append(out, ps.P)
		blk.Stmts = blk.Stmts[1:]
	}
	return out
}
