package chdl

import (
	"errors"
	"fmt"
	"strings"
)

// RuntimeError is a positioned C execution error.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("C runtime error at line %d: %s", e.Line, e.Msg)
}

// ErrStepLimit reports that execution exceeded the configured step budget.
var ErrStepLimit = errors.New("chdl: step limit exceeded")

// Buffer is a heap or stack allocation: a run of integer cells. The subset
// models memory at cell granularity (sizeof(T) == 1 for every T), which
// keeps malloc/pointer programs executable without byte-level layout.
type Buffer struct {
	data  []int64
	freed bool
}

// Len returns the number of cells.
func (b *Buffer) Len() int { return len(b.data) }

// RtVal is a runtime value: either a scalar integer or a pointer
// (buffer + offset).
type RtVal struct {
	I     int64
	Buf   *Buffer
	Off   int
	IsPtr bool
}

// IntVal wraps a scalar.
func IntVal(v int64) RtVal { return RtVal{I: v} }

// varSlot is variable storage; scalars occupy a one-cell buffer so that
// "&x" is always addressable.
type varSlot struct {
	buf *Buffer
	typ *Type
	ptr RtVal // for pointer-typed variables: the pointer value itself
}

// InterpOptions bound an execution.
type InterpOptions struct {
	// MaxSteps bounds executed statements+expressions (default 20_000_000).
	MaxSteps int64
	// Seed seeds rand().
	Seed int64
}

// Interp executes a parsed program. One Interp may run many calls; globals
// persist between calls.
type Interp struct {
	prog     *Program
	opts     InterpOptions
	globals  map[string]*varSlot
	out      strings.Builder
	steps    int64
	rngState int64
	depth    int
	// Trace, when non-nil, receives (line, varName, value) triples for
	// instrumented variables; the discrepancy tester's spectra monitoring
	// hooks in here.
	Trace func(line int, name string, v int64)
	// TraceVars selects which variables to trace (nil = none).
	TraceVars map[string]bool
	// TraceAll traces every variable regardless of TraceVars — the
	// cross-level debugger's statement-level C trace (internal/xdebug).
	TraceAll bool
	// BranchCount records taken-branch counts by line for spectra.
	BranchCount map[int]int64
}

const maxCallDepth = 256

// NewInterp prepares an interpreter and initializes globals.
func NewInterp(prog *Program, opts InterpOptions) (*Interp, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 20_000_000
	}
	in := &Interp{
		prog:        prog,
		opts:        opts,
		globals:     map[string]*varSlot{},
		rngState:    opts.Seed*6364136223846793005 + 1442695040888963407,
		BranchCount: map[int]int64{},
	}
	fr := &frame{in: in}
	fr.push()
	for _, g := range prog.Globals {
		if err := fr.declare(g); err != nil {
			return nil, err
		}
	}
	// Promote the frame's scope into globals.
	for name, slot := range fr.scopes[0] {
		in.globals[name] = slot
	}
	return in, nil
}

// Output returns everything printf produced so far.
func (in *Interp) Output() string { return in.out.String() }

// Steps returns the number of steps consumed so far.
func (in *Interp) Steps() int64 { return in.steps }

// Call invokes a function by name with scalar/pointer arguments.
func (in *Interp) Call(name string, args ...RtVal) (RtVal, error) {
	fn := in.prog.FindFunc(name)
	if fn == nil {
		return RtVal{}, &RuntimeError{Msg: fmt.Sprintf("undefined function %q", name)}
	}
	if len(args) != len(fn.Params) {
		return RtVal{}, &RuntimeError{Line: fn.Line,
			Msg: fmt.Sprintf("%s expects %d arguments, got %d", name, len(fn.Params), len(args))}
	}
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > maxCallDepth {
		return RtVal{}, &RuntimeError{Line: fn.Line, Msg: fmt.Sprintf("call depth exceeds %d (runaway recursion?)", maxCallDepth)}
	}
	fr := &frame{in: in}
	fr.push()
	for i, prm := range fn.Params {
		slot := &varSlot{typ: prm.Type}
		switch prm.Type.Kind {
		case KindPtr, KindArray:
			slot.ptr = args[i]
		default:
			slot.buf = &Buffer{data: []int64{truncType(args[i].I, prm.Type)}}
		}
		fr.scopes[len(fr.scopes)-1][prm.Name] = slot
	}
	ctrl, err := fr.exec(fn.Body)
	if err != nil {
		return RtVal{}, err
	}
	if ctrl == ctrlReturn {
		return fr.ret, nil
	}
	return RtVal{}, nil
}

// CallInts invokes a function with integer arguments and returns its
// integer result; the common case for kernels.
func (in *Interp) CallInts(name string, args ...int64) (int64, error) {
	vals := make([]RtVal, len(args))
	for i, a := range args {
		vals[i] = IntVal(a)
	}
	r, err := in.Call(name, vals...)
	return r.I, err
}

// NewBuffer allocates an argument buffer (for array parameters).
func NewBuffer(vals []int64) RtVal {
	data := make([]int64, len(vals))
	copy(data, vals)
	return RtVal{Buf: &Buffer{data: data}, IsPtr: true}
}

// BufferData returns a copy of a pointer value's underlying cells.
func BufferData(v RtVal) []int64 {
	if v.Buf == nil {
		return nil
	}
	out := make([]int64, len(v.Buf.data))
	copy(out, v.Buf.data)
	return out
}

// --- frames and control flow --------------------------------------------

type ctrlKind int

const (
	ctrlNone ctrlKind = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type frame struct {
	in     *Interp
	scopes []map[string]*varSlot
	ret    RtVal
}

func (fr *frame) push() { fr.scopes = append(fr.scopes, map[string]*varSlot{}) }
func (fr *frame) pop()  { fr.scopes = fr.scopes[:len(fr.scopes)-1] }

func (fr *frame) lookup(name string) (*varSlot, bool) {
	for i := len(fr.scopes) - 1; i >= 0; i-- {
		if s, ok := fr.scopes[i][name]; ok {
			return s, true
		}
	}
	s, ok := fr.in.globals[name]
	return s, ok
}

func (fr *frame) step(line int) error {
	fr.in.steps++
	if fr.in.steps > fr.in.opts.MaxSteps {
		return fmt.Errorf("%w at line %d", ErrStepLimit, line)
	}
	return nil
}

// truncType wraps a 64-bit value to the storage semantics of a C type.
func truncType(v int64, t *Type) int64 {
	switch t.Kind {
	case KindChar:
		return int64(int8(v))
	case KindBool:
		if v != 0 {
			return 1
		}
		return 0
	case KindInt, KindFloat:
		return int64(int32(v))
	case KindUInt:
		return int64(uint32(v))
	default:
		return v
	}
}

// declare creates storage for one variable declaration.
func (fr *frame) declare(d *VarDecl) error {
	slot := &varSlot{typ: d.Type}
	cur := fr.scopes[len(fr.scopes)-1]
	switch d.Type.Kind {
	case KindArray:
		n := d.Type.ArrayLen
		if n < 0 {
			if len(d.InitList) > 0 {
				n = len(d.InitList)
			} else {
				return &RuntimeError{Line: d.Line, Msg: fmt.Sprintf("array %q has no static length", d.Name)}
			}
		}
		total := n
		for e := d.Type.Elem; e != nil && e.Kind == KindArray; e = e.Elem {
			if e.ArrayLen < 0 {
				return &RuntimeError{Line: d.Line, Msg: fmt.Sprintf("array %q has no static length", d.Name)}
			}
			total *= e.ArrayLen
		}
		buf := &Buffer{data: make([]int64, total)}
		slot.ptr = RtVal{Buf: buf, IsPtr: true}
		for i, e := range d.InitList {
			if i >= total {
				break
			}
			v, err := fr.eval(e)
			if err != nil {
				return err
			}
			buf.data[i] = v.I
		}
	case KindPtr:
		if d.Init != nil {
			v, err := fr.eval(d.Init)
			if err != nil {
				return err
			}
			slot.ptr = v
		}
	default:
		var init int64
		if d.Init != nil {
			v, err := fr.eval(d.Init)
			if err != nil {
				return err
			}
			if v.IsPtr {
				return &RuntimeError{Line: d.Line, Msg: fmt.Sprintf("pointer assigned to scalar %q", d.Name)}
			}
			init = v.I
		}
		slot.buf = &Buffer{data: []int64{truncType(init, d.Type)}}
	}
	cur[d.Name] = slot
	return nil
}

// exec runs one statement.
func (fr *frame) exec(st Stmt) (ctrlKind, error) {
	switch n := st.(type) {
	case nil:
		return ctrlNone, nil

	case *BlockStmt:
		fr.push()
		defer fr.pop()
		for _, s := range n.Stmts {
			c, err := fr.exec(s)
			if err != nil || c != ctrlNone {
				return c, err
			}
		}
		return ctrlNone, nil

	case *DeclStmt:
		for _, d := range n.Decls {
			if err := fr.step(d.Line); err != nil {
				return ctrlNone, err
			}
			if err := fr.declare(d); err != nil {
				return ctrlNone, err
			}
			if fr.in.Trace != nil && (fr.in.TraceAll || fr.in.TraceVars[d.Name]) {
				if s, ok := fr.lookup(d.Name); ok && s.buf != nil {
					fr.in.Trace(d.Line, d.Name, s.buf.data[0])
				}
			}
		}
		return ctrlNone, nil

	case *ExprStmt:
		if err := fr.step(n.Line); err != nil {
			return ctrlNone, err
		}
		_, err := fr.eval(n.X)
		return ctrlNone, err

	case *IfStmt:
		if err := fr.step(n.Line); err != nil {
			return ctrlNone, err
		}
		c, err := fr.eval(n.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if truthy(c) {
			fr.in.BranchCount[n.Line]++
			return fr.exec(n.Then)
		}
		if n.Else != nil {
			return fr.exec(n.Else)
		}
		return ctrlNone, nil

	case *ForStmt:
		fr.push()
		defer fr.pop()
		if n.Init != nil {
			if c, err := fr.exec(n.Init); err != nil || c == ctrlReturn {
				return c, err
			}
		}
		for {
			if err := fr.step(n.Line); err != nil {
				return ctrlNone, err
			}
			if n.Cond != nil {
				c, err := fr.eval(n.Cond)
				if err != nil {
					return ctrlNone, err
				}
				if !truthy(c) {
					return ctrlNone, nil
				}
			}
			fr.in.BranchCount[n.Line]++
			c, err := fr.exec(n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlReturn {
				return c, nil
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if n.Post != nil {
				if _, err := fr.eval(n.Post); err != nil {
					return ctrlNone, err
				}
			}
		}

	case *WhileStmt:
		for {
			if err := fr.step(n.Line); err != nil {
				return ctrlNone, err
			}
			c, err := fr.eval(n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(c) {
				return ctrlNone, nil
			}
			fr.in.BranchCount[n.Line]++
			k, err := fr.exec(n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if k == ctrlReturn {
				return k, nil
			}
			if k == ctrlBreak {
				return ctrlNone, nil
			}
		}

	case *DoStmt:
		for {
			if err := fr.step(n.Line); err != nil {
				return ctrlNone, err
			}
			k, err := fr.exec(n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if k == ctrlReturn {
				return k, nil
			}
			if k == ctrlBreak {
				return ctrlNone, nil
			}
			c, err := fr.eval(n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(c) {
				return ctrlNone, nil
			}
		}

	case *ReturnStmt:
		if err := fr.step(n.Line); err != nil {
			return ctrlNone, err
		}
		if n.X != nil {
			v, err := fr.eval(n.X)
			if err != nil {
				return ctrlNone, err
			}
			fr.ret = v
		}
		return ctrlReturn, nil

	case *BreakStmt:
		return ctrlBreak, nil
	case *ContinueStmt:
		return ctrlContinue, nil
	case *PragmaStmt:
		return ctrlNone, nil

	default:
		return ctrlNone, &RuntimeError{Msg: fmt.Sprintf("unsupported statement %T", st)}
	}
}

func truthy(v RtVal) bool {
	if v.IsPtr {
		return v.Buf != nil
	}
	return v.I != 0
}

// --- expression evaluation ----------------------------------------------

// lvalue locates the storage cell an expression designates.
func (fr *frame) lvalue(ex Expr) (*Buffer, int, *Type, error) {
	switch n := ex.(type) {
	case *VarRef:
		slot, ok := fr.lookup(n.Name)
		if !ok {
			return nil, 0, nil, &RuntimeError{Line: n.Line, Msg: fmt.Sprintf("undefined variable %q", n.Name)}
		}
		switch slot.typ.Kind {
		case KindPtr, KindArray:
			return nil, 0, nil, &RuntimeError{Line: n.Line, Msg: fmt.Sprintf("%q is a pointer; assign through an index or use plain assignment", n.Name)}
		default:
			return slot.buf, 0, slot.typ, nil
		}

	case *IndexExpr:
		base, err := fr.eval(n.X)
		if err != nil {
			return nil, 0, nil, err
		}
		if !base.IsPtr || base.Buf == nil {
			return nil, 0, nil, &RuntimeError{Line: n.Line, Msg: "indexing a non-pointer value"}
		}
		idx, err := fr.eval(n.Idx)
		if err != nil {
			return nil, 0, nil, err
		}
		off := base.Off + int(idx.I)
		if base.Buf.freed {
			return nil, 0, nil, &RuntimeError{Line: n.Line, Msg: "use after free"}
		}
		if off < 0 || off >= len(base.Buf.data) {
			return nil, 0, nil, &RuntimeError{Line: n.Line, Msg: fmt.Sprintf("index %d out of bounds (length %d)", off, len(base.Buf.data))}
		}
		return base.Buf, off, elemTypeOf(n.X, fr), nil

	case *UnExpr:
		if n.Op == "*" {
			ptr, err := fr.eval(n.X)
			if err != nil {
				return nil, 0, nil, err
			}
			if !ptr.IsPtr || ptr.Buf == nil {
				return nil, 0, nil, &RuntimeError{Line: n.Line, Msg: "dereferencing a non-pointer value"}
			}
			if ptr.Buf.freed {
				return nil, 0, nil, &RuntimeError{Line: n.Line, Msg: "use after free"}
			}
			if ptr.Off < 0 || ptr.Off >= len(ptr.Buf.data) {
				return nil, 0, nil, &RuntimeError{Line: n.Line, Msg: "pointer dereference out of bounds"}
			}
			return ptr.Buf, ptr.Off, nil, nil
		}
	}
	return nil, 0, nil, &RuntimeError{Msg: fmt.Sprintf("expression %T is not assignable", ex)}
}

// elemTypeOf gives the element type of an indexed expression when it can
// be determined statically (for store truncation); nil otherwise.
func elemTypeOf(ex Expr, fr *frame) *Type {
	if vr, ok := ex.(*VarRef); ok {
		if slot, found := fr.lookup(vr.Name); found && slot.typ.Elem != nil {
			return slot.typ.Elem
		}
	}
	return nil
}

// assignTo stores a value into an lvalue, applying type truncation and
// firing instrumentation hooks.
func (fr *frame) assignTo(lhs Expr, v RtVal, line int) (RtVal, error) {
	// Pointer variable assignment replaces the pointer value.
	if vr, ok := lhs.(*VarRef); ok {
		if slot, found := fr.lookup(vr.Name); found && (slot.typ.Kind == KindPtr || slot.typ.Kind == KindArray) {
			slot.ptr = v
			return v, nil
		}
	}
	buf, off, typ, err := fr.lvalue(lhs)
	if err != nil {
		return RtVal{}, err
	}
	if v.IsPtr {
		return RtVal{}, &RuntimeError{Line: line, Msg: "storing a pointer into a scalar cell"}
	}
	stored := v.I
	if typ != nil {
		stored = truncType(stored, typ)
	}
	buf.data[off] = stored
	if fr.in.Trace != nil {
		if vr, ok := lhs.(*VarRef); ok && (fr.in.TraceAll || fr.in.TraceVars[vr.Name]) {
			fr.in.Trace(line, vr.Name, stored)
		} else if ix, ok := lhs.(*IndexExpr); ok {
			if vr, ok := ix.X.(*VarRef); ok && (fr.in.TraceAll || fr.in.TraceVars[vr.Name]) {
				fr.in.Trace(line, vr.Name, stored)
			}
		}
	}
	return RtVal{I: stored}, nil
}

var compoundBase = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"<<=": "<<", ">>=": ">>", "&=": "&", "|=": "|", "^=": "^",
}

// eval computes an expression value.
func (fr *frame) eval(ex Expr) (RtVal, error) {
	if err := fr.step(0); err != nil {
		return RtVal{}, err
	}
	switch n := ex.(type) {
	case *IntLit:
		return IntVal(n.Val), nil

	case *StrLit:
		// Strings become cell buffers (one char per cell, NUL-terminated).
		data := make([]int64, len(n.Val)+1)
		for i := 0; i < len(n.Val); i++ {
			data[i] = int64(n.Val[i])
		}
		return RtVal{Buf: &Buffer{data: data}, IsPtr: true}, nil

	case *VarRef:
		slot, ok := fr.lookup(n.Name)
		if !ok {
			return RtVal{}, &RuntimeError{Line: n.Line, Msg: fmt.Sprintf("undefined variable %q", n.Name)}
		}
		if slot.typ.Kind == KindPtr || slot.typ.Kind == KindArray {
			return slot.ptr, nil
		}
		return IntVal(slot.buf.data[0]), nil

	case *AssignExpr:
		if n.Op == "=" {
			v, err := fr.eval(n.RHS)
			if err != nil {
				return RtVal{}, err
			}
			return fr.assignTo(n.LHS, v, n.Line)
		}
		cur, err := fr.eval(n.LHS)
		if err != nil {
			return RtVal{}, err
		}
		rhs, err := fr.eval(n.RHS)
		if err != nil {
			return RtVal{}, err
		}
		if cur.IsPtr { // p += k
			if n.Op != "+=" && n.Op != "-=" {
				return RtVal{}, &RuntimeError{Line: n.Line, Msg: "unsupported pointer compound assignment"}
			}
			delta := int(rhs.I)
			if n.Op == "-=" {
				delta = -delta
			}
			nv := RtVal{Buf: cur.Buf, Off: cur.Off + delta, IsPtr: true}
			return fr.assignTo(n.LHS, nv, n.Line)
		}
		res, err := applyCBinary(compoundBase[n.Op], cur, rhs, n.Line)
		if err != nil {
			return RtVal{}, err
		}
		return fr.assignTo(n.LHS, res, n.Line)

	case *BinExpr:
		// Short-circuit logicals first.
		if n.Op == "&&" || n.Op == "||" {
			x, err := fr.eval(n.X)
			if err != nil {
				return RtVal{}, err
			}
			if n.Op == "&&" && !truthy(x) {
				return IntVal(0), nil
			}
			if n.Op == "||" && truthy(x) {
				return IntVal(1), nil
			}
			y, err := fr.eval(n.Y)
			if err != nil {
				return RtVal{}, err
			}
			if truthy(y) {
				return IntVal(1), nil
			}
			return IntVal(0), nil
		}
		x, err := fr.eval(n.X)
		if err != nil {
			return RtVal{}, err
		}
		y, err := fr.eval(n.Y)
		if err != nil {
			return RtVal{}, err
		}
		return applyCBinary(n.Op, x, y, n.Line)

	case *UnExpr:
		switch n.Op {
		case "*":
			buf, off, _, err := fr.lvalue(n)
			if err != nil {
				return RtVal{}, err
			}
			return IntVal(buf.data[off]), nil
		case "&":
			switch target := n.X.(type) {
			case *VarRef:
				slot, ok := fr.lookup(target.Name)
				if !ok {
					return RtVal{}, &RuntimeError{Line: n.Line, Msg: fmt.Sprintf("undefined variable %q", target.Name)}
				}
				if slot.typ.Kind == KindPtr || slot.typ.Kind == KindArray {
					return slot.ptr, nil
				}
				return RtVal{Buf: slot.buf, IsPtr: true}, nil
			case *IndexExpr:
				buf, off, _, err := fr.lvalue(target)
				if err != nil {
					return RtVal{}, err
				}
				return RtVal{Buf: buf, Off: off, IsPtr: true}, nil
			default:
				return RtVal{}, &RuntimeError{Line: n.Line, Msg: "unsupported address-of target"}
			}
		case "++", "--":
			cur, err := fr.eval(n.X)
			if err != nil {
				return RtVal{}, err
			}
			if cur.IsPtr {
				d := 1
				if n.Op == "--" {
					d = -1
				}
				nv := RtVal{Buf: cur.Buf, Off: cur.Off + d, IsPtr: true}
				return fr.assignTo(n.X, nv, n.Line)
			}
			d := int64(1)
			if n.Op == "--" {
				d = -1
			}
			return fr.assignTo(n.X, IntVal(cur.I+d), n.Line)
		}
		x, err := fr.eval(n.X)
		if err != nil {
			return RtVal{}, err
		}
		switch n.Op {
		case "-":
			return IntVal(-x.I), nil
		case "!":
			if truthy(x) {
				return IntVal(0), nil
			}
			return IntVal(1), nil
		case "~":
			return IntVal(^x.I), nil
		default:
			return RtVal{}, &RuntimeError{Line: n.Line, Msg: fmt.Sprintf("unsupported unary %q", n.Op)}
		}

	case *PostfixExpr:
		cur, err := fr.eval(n.X)
		if err != nil {
			return RtVal{}, err
		}
		if cur.IsPtr {
			d := 1
			if n.Op == "--" {
				d = -1
			}
			if _, err := fr.assignTo(n.X, RtVal{Buf: cur.Buf, Off: cur.Off + d, IsPtr: true}, n.Line); err != nil {
				return RtVal{}, err
			}
			return cur, nil
		}
		d := int64(1)
		if n.Op == "--" {
			d = -1
		}
		if _, err := fr.assignTo(n.X, IntVal(cur.I+d), n.Line); err != nil {
			return RtVal{}, err
		}
		return cur, nil

	case *CondExpr:
		c, err := fr.eval(n.Cond)
		if err != nil {
			return RtVal{}, err
		}
		if truthy(c) {
			return fr.eval(n.Then)
		}
		return fr.eval(n.Else)

	case *IndexExpr:
		buf, off, _, err := fr.lvalue(n)
		if err != nil {
			return RtVal{}, err
		}
		return IntVal(buf.data[off]), nil

	case *CallExpr:
		return fr.call(n)

	case *CastExpr:
		v, err := fr.eval(n.X)
		if err != nil {
			return RtVal{}, err
		}
		if n.To.Kind == KindPtr {
			return v, nil // pointer casts are free at cell granularity
		}
		if v.IsPtr {
			return RtVal{}, &RuntimeError{Line: n.Line, Msg: "casting a pointer to a scalar"}
		}
		return IntVal(truncType(v.I, n.To)), nil

	case *SizeofExpr:
		// Cell-granular memory model: every type occupies one cell.
		return IntVal(1), nil

	default:
		return RtVal{}, &RuntimeError{Msg: fmt.Sprintf("unsupported expression %T", ex)}
	}
}

// applyCBinary evaluates arithmetic/comparison on 64-bit values with C
// truncate-toward-zero division. Pointer comparisons compare offsets.
func applyCBinary(op string, x, y RtVal, line int) (RtVal, error) {
	if x.IsPtr || y.IsPtr {
		switch op {
		case "+":
			if x.IsPtr && !y.IsPtr {
				return RtVal{Buf: x.Buf, Off: x.Off + int(y.I), IsPtr: true}, nil
			}
			if y.IsPtr && !x.IsPtr {
				return RtVal{Buf: y.Buf, Off: y.Off + int(x.I), IsPtr: true}, nil
			}
		case "-":
			if x.IsPtr && y.IsPtr {
				return IntVal(int64(x.Off - y.Off)), nil
			}
			if x.IsPtr {
				return RtVal{Buf: x.Buf, Off: x.Off - int(y.I), IsPtr: true}, nil
			}
		case "==", "!=", "<", "<=", ">", ">=":
			xo, yo := int64(x.Off), int64(y.Off)
			if x.Buf != y.Buf {
				xo, yo = 0, 1 // distinct allocations: unequal, stable order
			}
			return cmpInt(op, xo, yo), nil
		}
		return RtVal{}, &RuntimeError{Line: line, Msg: fmt.Sprintf("unsupported pointer operation %q", op)}
	}
	a, b := x.I, y.I
	switch op {
	case "+":
		return IntVal(a + b), nil
	case "-":
		return IntVal(a - b), nil
	case "*":
		return IntVal(a * b), nil
	case "/":
		if b == 0 {
			return RtVal{}, &RuntimeError{Line: line, Msg: "division by zero"}
		}
		if a == int64(-1)<<63 && b == -1 {
			return IntVal(a), nil
		}
		return IntVal(a / b), nil
	case "%":
		if b == 0 {
			return RtVal{}, &RuntimeError{Line: line, Msg: "modulo by zero"}
		}
		if a == int64(-1)<<63 && b == -1 {
			return IntVal(0), nil
		}
		return IntVal(a % b), nil
	case "&":
		return IntVal(a & b), nil
	case "|":
		return IntVal(a | b), nil
	case "^":
		return IntVal(a ^ b), nil
	case "<<":
		return IntVal(a << (uint64(b) & 63)), nil
	case ">>":
		return IntVal(a >> (uint64(b) & 63)), nil
	case "==", "!=", "<", "<=", ">", ">=":
		return cmpInt(op, a, b), nil
	default:
		return RtVal{}, &RuntimeError{Line: line, Msg: fmt.Sprintf("unsupported operator %q", op)}
	}
}

func cmpInt(op string, a, b int64) RtVal {
	var ok bool
	switch op {
	case "==":
		ok = a == b
	case "!=":
		ok = a != b
	case "<":
		ok = a < b
	case "<=":
		ok = a <= b
	case ">":
		ok = a > b
	case ">=":
		ok = a >= b
	}
	if ok {
		return IntVal(1)
	}
	return IntVal(0)
}

// --- builtins -------------------------------------------------------------

func (fr *frame) call(n *CallExpr) (RtVal, error) {
	in := fr.in
	evalArgs := func() ([]RtVal, error) {
		out := make([]RtVal, len(n.Args))
		for i, a := range n.Args {
			v, err := fr.eval(a)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	switch n.Name {
	case "malloc", "calloc":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		cells := int64(0)
		if len(args) >= 1 {
			cells = args[0].I
		}
		if n.Name == "calloc" && len(args) == 2 {
			cells = args[0].I * args[1].I
		}
		if cells < 0 || cells > 1<<24 {
			return RtVal{}, &RuntimeError{Line: n.Line, Msg: fmt.Sprintf("malloc of %d cells rejected", cells)}
		}
		return RtVal{Buf: &Buffer{data: make([]int64, cells)}, IsPtr: true}, nil

	case "free":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		if len(args) == 1 && args[0].Buf != nil {
			if args[0].Buf.freed {
				return RtVal{}, &RuntimeError{Line: n.Line, Msg: "double free"}
			}
			args[0].Buf.freed = true
		}
		return RtVal{}, nil

	case "printf":
		return fr.printf(n)

	case "putchar":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		if len(args) == 1 && in.out.Len() < maxCOutput {
			in.out.WriteByte(byte(args[0].I))
		}
		return IntVal(1), nil

	case "puts":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		if len(args) == 1 && args[0].Buf != nil && in.out.Len() < maxCOutput {
			in.out.WriteString(cString(args[0]))
			in.out.WriteByte('\n')
		}
		return IntVal(1), nil

	case "memset":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		if len(args) == 3 && args[0].Buf != nil {
			b := args[0]
			for i := 0; i < int(args[2].I) && b.Off+i < len(b.Buf.data); i++ {
				b.Buf.data[b.Off+i] = args[1].I
			}
		}
		return args[0], nil

	case "memcpy":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		if len(args) == 3 && args[0].Buf != nil && args[1].Buf != nil {
			dst, src := args[0], args[1]
			for i := 0; i < int(args[2].I); i++ {
				if dst.Off+i >= len(dst.Buf.data) || src.Off+i >= len(src.Buf.data) {
					break
				}
				dst.Buf.data[dst.Off+i] = src.Buf.data[src.Off+i]
			}
		}
		return args[0], nil

	case "abs", "labs":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		v := args[0].I
		if v < 0 {
			v = -v
		}
		return IntVal(v), nil

	case "rand":
		in.rngState = in.rngState*6364136223846793005 + 1442695040888963407
		return IntVal((in.rngState >> 33) & 0x7FFFFFFF), nil

	case "srand":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		if len(args) == 1 {
			in.rngState = args[0].I
		}
		return RtVal{}, nil

	case "assert":
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		if len(args) == 1 && !truthy(args[0]) {
			return RtVal{}, &RuntimeError{Line: n.Line, Msg: "assertion failed"}
		}
		return RtVal{}, nil

	case "exit":
		return RtVal{}, &RuntimeError{Line: n.Line, Msg: "exit() called"}

	default:
		fn := in.prog.FindFunc(n.Name)
		if fn == nil {
			return RtVal{}, &RuntimeError{Line: n.Line, Msg: fmt.Sprintf("call to undefined function %q", n.Name)}
		}
		args, err := evalArgs()
		if err != nil {
			return RtVal{}, err
		}
		return in.Call(n.Name, args...)
	}
}

const maxCOutput = 1 << 20

// cString reads a NUL-terminated cell string.
func cString(v RtVal) string {
	var b strings.Builder
	for i := v.Off; i < len(v.Buf.data); i++ {
		c := v.Buf.data[i]
		if c == 0 {
			break
		}
		b.WriteByte(byte(c))
	}
	return b.String()
}

// printf implements the %d/%u/%x/%c/%s/%ld/%lu/%% verbs.
func (fr *frame) printf(n *CallExpr) (RtVal, error) {
	if len(n.Args) == 0 {
		return IntVal(0), nil
	}
	fmtv, err := fr.eval(n.Args[0])
	if err != nil {
		return RtVal{}, err
	}
	if !fmtv.IsPtr {
		return RtVal{}, &RuntimeError{Line: n.Line, Msg: "printf format must be a string"}
	}
	format := cString(fmtv)
	var args []RtVal
	for _, a := range n.Args[1:] {
		v, err := fr.eval(a)
		if err != nil {
			return RtVal{}, err
		}
		args = append(args, v)
	}
	var b strings.Builder
	ai := 0
	nextArg := func() RtVal {
		if ai < len(args) {
			v := args[ai]
			ai++
			return v
		}
		return RtVal{}
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		// Skip flags/width and length modifiers.
		for i < len(format) && (format[i] == '-' || format[i] == '0' || format[i] == ' ' ||
			(format[i] >= '0' && format[i] <= '9') || format[i] == 'l' || format[i] == 'z' || format[i] == '.') {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case 'd', 'i':
			fmt.Fprintf(&b, "%d", nextArg().I)
		case 'u':
			fmt.Fprintf(&b, "%d", uint64(nextArg().I))
		case 'x':
			fmt.Fprintf(&b, "%x", uint64(nextArg().I))
		case 'c':
			b.WriteByte(byte(nextArg().I))
		case 's':
			v := nextArg()
			if v.IsPtr && v.Buf != nil {
				b.WriteString(cString(v))
			}
		case 'f', 'g':
			fmt.Fprintf(&b, "%d.0", nextArg().I)
		case 'p':
			fmt.Fprintf(&b, "ptr+%d", nextArg().Off)
		case '%':
			b.WriteByte('%')
		default:
			b.WriteByte('%')
			b.WriteByte(format[i])
		}
	}
	if fr.in.out.Len() < maxCOutput {
		fr.in.out.WriteString(b.String())
	}
	return IntVal(int64(b.Len())), nil
}
