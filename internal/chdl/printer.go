package chdl

import (
	"fmt"
	"strings"
)

// PrintProgram renders an AST back to compilable C source. The repair
// framework parses a broken kernel, transforms the AST, and re-emits it
// through this printer, mirroring how an LLM returns a full rewritten file.
func PrintProgram(p *Program) string {
	var b strings.Builder
	for _, pr := range p.Pragmas {
		fmt.Fprintf(&b, "#pragma %s\n", pr.Raw)
	}
	for _, g := range p.Globals {
		b.WriteString(printDecl(g))
		b.WriteString(";\n")
	}
	for i, fn := range p.Funcs {
		if i > 0 || len(p.Globals) > 0 {
			b.WriteByte('\n')
		}
		printFunc(&b, fn)
	}
	return b.String()
}

func printFunc(b *strings.Builder, fn *FuncDecl) {
	fmt.Fprintf(b, "%s %s(", typeName(fn.Ret), fn.Name)
	for i, prm := range fn.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(printParam(prm))
	}
	b.WriteString(") {\n")
	for _, pr := range fn.Pragmas {
		fmt.Fprintf(b, "#pragma %s\n", pr.Raw)
	}
	for _, st := range fn.Body.Stmts {
		printStmt(b, st, 1)
	}
	b.WriteString("}\n")
}

// typeName renders the base (non-array) part of a type.
func typeName(t *Type) string {
	if t == nil {
		return "int"
	}
	switch t.Kind {
	case KindArray:
		return typeName(t.Elem)
	case KindPtr:
		return typeName(t.Elem) + "*"
	default:
		return t.String()
	}
}

// arraySuffix renders the [N] suffixes of a type.
func arraySuffix(t *Type) string {
	s := ""
	for t != nil && t.Kind == KindArray {
		if t.ArrayLen >= 0 {
			s += fmt.Sprintf("[%d]", t.ArrayLen)
		} else {
			s += "[]"
		}
		t = t.Elem
	}
	return s
}

func printParam(d *VarDecl) string {
	return fmt.Sprintf("%s %s%s", typeName(d.Type), d.Name, arraySuffix(d.Type))
}

func printDecl(d *VarDecl) string {
	s := fmt.Sprintf("%s %s%s", typeName(d.Type), d.Name, arraySuffix(d.Type))
	if d.Init != nil {
		s += " = " + ExprString(d.Init)
	}
	if len(d.InitList) > 0 {
		parts := make([]string, len(d.InitList))
		for i, e := range d.InitList {
			parts[i] = ExprString(e)
		}
		s += " = {" + strings.Join(parts, ", ") + "}"
	}
	return s
}

func printStmt(b *strings.Builder, st Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	switch n := st.(type) {
	case nil:
	case *BlockStmt:
		fmt.Fprintf(b, "%s{\n", ind)
		for _, s := range n.Stmts {
			printStmt(b, s, depth+1)
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case *DeclStmt:
		for _, d := range n.Decls {
			fmt.Fprintf(b, "%s%s;\n", ind, printDecl(d))
		}
	case *ExprStmt:
		fmt.Fprintf(b, "%s%s;\n", ind, ExprString(n.X))
	case *IfStmt:
		fmt.Fprintf(b, "%sif (%s)\n", ind, ExprString(n.Cond))
		printNested(b, n.Then, depth)
		if n.Else != nil {
			fmt.Fprintf(b, "%selse\n", ind)
			printNested(b, n.Else, depth)
		}
	case *ForStmt:
		init, cond, post := "", "", ""
		if n.Init != nil {
			var ib strings.Builder
			printStmt(&ib, n.Init, 0)
			init = strings.TrimSuffix(strings.TrimSpace(ib.String()), ";")
		}
		if n.Cond != nil {
			cond = ExprString(n.Cond)
		}
		if n.Post != nil {
			post = ExprString(n.Post)
		}
		fmt.Fprintf(b, "%sfor (%s; %s; %s) {\n", ind, init, cond, post)
		for _, pr := range n.Pragmas {
			fmt.Fprintf(b, "#pragma %s\n", pr.Raw)
		}
		printBody(b, n.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", ind)
	case *WhileStmt:
		fmt.Fprintf(b, "%swhile (%s) {\n", ind, ExprString(n.Cond))
		for _, pr := range n.Pragmas {
			fmt.Fprintf(b, "#pragma %s\n", pr.Raw)
		}
		printBody(b, n.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", ind)
	case *DoStmt:
		fmt.Fprintf(b, "%sdo {\n", ind)
		printBody(b, n.Body, depth+1)
		fmt.Fprintf(b, "%s} while (%s);\n", ind, ExprString(n.Cond))
	case *ReturnStmt:
		if n.X != nil {
			fmt.Fprintf(b, "%sreturn %s;\n", ind, ExprString(n.X))
		} else {
			fmt.Fprintf(b, "%sreturn;\n", ind)
		}
	case *BreakStmt:
		fmt.Fprintf(b, "%sbreak;\n", ind)
	case *ContinueStmt:
		fmt.Fprintf(b, "%scontinue;\n", ind)
	case *PragmaStmt:
		fmt.Fprintf(b, "#pragma %s\n", n.P.Raw)
	}
}

// printNested prints a statement as the body of if/else, bracing bare
// statements for readability.
func printNested(b *strings.Builder, st Stmt, depth int) {
	if _, ok := st.(*BlockStmt); ok {
		printStmt(b, st, depth)
		return
	}
	ind := strings.Repeat("    ", depth)
	fmt.Fprintf(b, "%s{\n", ind)
	printStmt(b, st, depth+1)
	fmt.Fprintf(b, "%s}\n", ind)
}

// printBody flattens a block body (the braces were already printed).
func printBody(b *strings.Builder, st Stmt, depth int) {
	if blk, ok := st.(*BlockStmt); ok {
		for _, s := range blk.Stmts {
			printStmt(b, s, depth)
		}
		return
	}
	printStmt(b, st, depth)
}

// ExprString renders an expression with full parenthesization of
// sub-operations (safe, if verbose).
func ExprString(e Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return fmt.Sprintf("%d", n.Val)
	case *StrLit:
		return fmt.Sprintf("%q", n.Val)
	case *VarRef:
		return n.Name
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(n.X), n.Op, ExprString(n.Y))
	case *UnExpr:
		return fmt.Sprintf("%s(%s)", n.Op, ExprString(n.X))
	case *PostfixExpr:
		return fmt.Sprintf("%s%s", ExprString(n.X), n.Op)
	case *AssignExpr:
		return fmt.Sprintf("%s %s %s", ExprString(n.LHS), n.Op, ExprString(n.RHS))
	case *CondExpr:
		return fmt.Sprintf("(%s ? %s : %s)", ExprString(n.Cond), ExprString(n.Then), ExprString(n.Else))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ExprString(n.X), ExprString(n.Idx))
	case *CallExpr:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", n.Name, strings.Join(args, ", "))
	case *CastExpr:
		return fmt.Sprintf("(%s)(%s)", n.To, ExprString(n.X))
	case *SizeofExpr:
		return fmt.Sprintf("sizeof(%s)", n.To)
	default:
		return fmt.Sprintf("/*?%T*/", e)
	}
}
