// Package chdl implements the C-subset frontend and interpreter that plays
// the role of the software toolchain in the reproduction: it parses the
// C/C++ kernels the HLS case studies operate on, executes them ("CPU
// execution" in Fig. 2/3 of the paper), and exposes the syntactic analyses
// (malloc, pointers, recursion, unbounded loops) that the HLS-repair
// framework's preprocessing stage needs.
//
// The subset covers integer C: int/unsigned/long/char scalars, fixed and
// dynamic arrays, pointers, functions with recursion, the full statement
// repertoire (if/for/while/do/return/break/continue), compound assignment,
// and the builtins malloc/free/printf/memset/abs. HLS pragmas
// (#pragma HLS ...) are parsed and attached to the AST.
package chdl

import "fmt"

// TypeKind enumerates the subset's type constructors.
type TypeKind int

// Type kinds.
const (
	KindInt TypeKind = iota + 1
	KindUInt
	KindLong
	KindULong
	KindChar
	KindBool
	KindVoid
	KindPtr
	KindArray
	KindFloat // parsed and flagged; the HLS subset rejects it
)

// Type is a C type. Integer kinds carry width/signedness; Ptr and Array
// carry an element type.
type Type struct {
	Kind     TypeKind
	Elem     *Type
	ArrayLen int // -1 when the length is not a compile-time constant
}

// Width returns the bit width of an integer kind (0 otherwise).
func (t *Type) Width() int {
	switch t.Kind {
	case KindChar, KindBool:
		return 8
	case KindInt, KindUInt, KindFloat:
		return 32
	case KindLong, KindULong:
		return 64
	default:
		return 0
	}
}

// Signed reports whether the integer kind is signed.
func (t *Type) Signed() bool {
	switch t.Kind {
	case KindInt, KindLong, KindChar, KindFloat:
		return true
	default:
		return false
	}
}

// IsInteger reports whether the type is a scalar integer.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case KindInt, KindUInt, KindLong, KindULong, KindChar, KindBool:
		return true
	default:
		return false
	}
}

// String renders the type in C syntax.
func (t *Type) String() string {
	switch t.Kind {
	case KindInt:
		return "int"
	case KindUInt:
		return "unsigned"
	case KindLong:
		return "long"
	case KindULong:
		return "unsigned long"
	case KindChar:
		return "char"
	case KindBool:
		return "bool"
	case KindVoid:
		return "void"
	case KindFloat:
		return "float"
	case KindPtr:
		return t.Elem.String() + "*"
	case KindArray:
		if t.ArrayLen >= 0 {
			return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
		}
		return t.Elem.String() + "[]"
	default:
		return fmt.Sprintf("type(%d)", int(t.Kind))
	}
}

// Pragma is one "#pragma HLS ..." directive with parsed key/values.
type Pragma struct {
	// Raw is the full directive text after "#pragma".
	Raw string
	// Directive is the first word after HLS (pipeline, unroll, ...).
	Directive string
	// Args holds key=value options (value "" for bare flags).
	Args map[string]string
	Line int
}

// Program is a parsed translation unit.
type Program struct {
	Funcs   []*FuncDecl
	Globals []*VarDecl
	// Pragmas collects file-scope pragmas (function/loop pragmas are
	// attached to their statements).
	Pragmas []*Pragma
	// Source preserves the original text for diagnostics and repair.
	Source string
}

// FindFunc returns the function with the given name, or nil.
func (p *Program) FindFunc(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name    string
	Ret     *Type
	Params  []*VarDecl
	Body    *BlockStmt
	Pragmas []*Pragma
	Line    int
}

// VarDecl declares one variable (parameter, local or global).
type VarDecl struct {
	Name string
	Type *Type
	Init Expr // may be nil
	// InitList holds aggregate initializers: int a[3] = {1,2,3}.
	InitList []Expr
	Line     int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
}

// DeclStmt wraps local variable declarations.
type DeclStmt struct {
	Decls []*VarDecl
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Line int
}

// ForStmt is for(init; cond; post) body. Init may be a DeclStmt or
// ExprStmt; any of the three header slots may be nil.
type ForStmt struct {
	Init    Stmt
	Cond    Expr
	Post    Expr
	Body    Stmt
	Pragmas []*Pragma
	Line    int
}

// WhileStmt is while(cond) body.
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	Pragmas []*Pragma
	Line    int
}

// DoStmt is do body while(cond).
type DoStmt struct {
	Body Stmt
	Cond Expr
	Line int
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	X    Expr // may be nil
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the next loop iteration.
type ContinueStmt struct{ Line int }

// PragmaStmt is a pragma that appears in statement position and could not
// be attached to a following loop.
type PragmaStmt struct{ P *Pragma }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*DoStmt) stmt()       {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*PragmaStmt) stmt()   {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val  int64
	Line int
}

// StrLit is a string literal (printf formats, char arrays).
type StrLit struct {
	Val  string
	Line int
}

// VarRef references a variable.
type VarRef struct {
	Name string
	Line int
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string
	X, Y Expr
	Line int
}

// UnExpr is a unary operation: - ! ~ * & ++ -- (prefix).
type UnExpr struct {
	Op   string
	X    Expr
	Line int
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op   string // "++" or "--"
	X    Expr
	Line int
}

// AssignExpr is an assignment or compound assignment.
type AssignExpr struct {
	Op   string // "=", "+=", ...
	LHS  Expr
	RHS  Expr
	Line int
}

// CondExpr is cond ? a : b.
type CondExpr struct {
	Cond, Then, Else Expr
	Line             int
}

// IndexExpr is a[i].
type IndexExpr struct {
	X, Idx Expr
	Line   int
}

// CallExpr is f(args...). Builtins (malloc, printf, ...) are calls too.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// CastExpr is (type)x.
type CastExpr struct {
	To   *Type
	X    Expr
	Line int
}

// SizeofExpr is sizeof(type) or sizeof(expr); the subset resolves it to
// the byte size of the named type.
type SizeofExpr struct {
	To   *Type
	Line int
}

func (*IntLit) exprNode()      {}
func (*StrLit) exprNode()      {}
func (*VarRef) exprNode()      {}
func (*BinExpr) exprNode()     {}
func (*UnExpr) exprNode()      {}
func (*PostfixExpr) exprNode() {}
func (*AssignExpr) exprNode()  {}
func (*CondExpr) exprNode()    {}
func (*IndexExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*CastExpr) exprNode()    {}
func (*SizeofExpr) exprNode()  {}
