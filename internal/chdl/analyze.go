package chdl

import (
	"fmt"
	"sort"
)

// IssueKind classifies an HLS incompatibility or risk found in C source.
// These are the "actual errors" the HLS tool reports in stage 1 of the
// paper's Fig. 2 repair flow, plus the "potential errors" an LLM pass
// flags on top.
type IssueKind int

// Issue kinds ordered roughly by severity.
const (
	IssueDynamicMemory IssueKind = iota + 1 // malloc/calloc/free
	IssueRecursion                          // direct or mutual recursion
	IssueUnboundedLoop                      // while/do loop with no static bound
	IssuePointerArith                       // raw pointer arithmetic
	IssueVLA                                // variable-length array
	IssueFloatingPoint                      // float/double in the integer subset
	IssueIO                                 // printf/puts inside a kernel
	IssuePointerParam                       // pointer parameter (interface risk)
	IssueMissingPragma                      // optimization opportunity (advisory)
)

var issueNames = map[IssueKind]string{
	IssueDynamicMemory: "dynamic-memory",
	IssueRecursion:     "recursion",
	IssueUnboundedLoop: "unbounded-loop",
	IssuePointerArith:  "pointer-arithmetic",
	IssueVLA:           "variable-length-array",
	IssueFloatingPoint: "floating-point",
	IssueIO:            "io-in-kernel",
	IssuePointerParam:  "pointer-parameter",
	IssueMissingPragma: "missing-pragma",
}

// String returns the canonical kind name.
func (k IssueKind) String() string {
	if n, ok := issueNames[k]; ok {
		return n
	}
	return fmt.Sprintf("issue(%d)", int(k))
}

// Blocking reports whether the issue prevents HLS synthesis outright (as
// opposed to an advisory finding).
func (k IssueKind) Blocking() bool {
	switch k {
	case IssueDynamicMemory, IssueRecursion, IssueVLA, IssueFloatingPoint, IssueUnboundedLoop:
		return true
	default:
		return false
	}
}

// Issue is one finding with its location and explanation.
type Issue struct {
	Kind   IssueKind
	Line   int
	Func   string
	Detail string
}

// String renders the issue the way the HLS frontend prints it.
func (i Issue) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", i.Func, i.Line, i.Kind, i.Detail)
}

// Analyze scans a program for HLS incompatibilities. The result is sorted
// by (function, line) and is deterministic.
func Analyze(prog *Program) []Issue {
	var issues []Issue
	callGraph := map[string][]string{}

	for _, fn := range prog.Funcs {
		a := &analyzer{fn: fn, calls: map[string]bool{}}
		a.scanStmt(fn.Body)
		issues = append(issues, a.issues...)
		for callee := range a.calls {
			callGraph[fn.Name] = append(callGraph[fn.Name], callee)
		}
		for _, prm := range fn.Params {
			if prm.Type.Kind == KindPtr {
				issues = append(issues, Issue{
					Kind: IssuePointerParam, Line: fn.Line, Func: fn.Name,
					Detail: fmt.Sprintf("parameter %q is a raw pointer; prefer a sized array interface", prm.Name),
				})
			}
			if prm.Type.Kind == KindFloat || (prm.Type.Elem != nil && prm.Type.Elem.Kind == KindFloat) {
				issues = append(issues, Issue{
					Kind: IssueFloatingPoint, Line: fn.Line, Func: fn.Name,
					Detail: fmt.Sprintf("parameter %q uses floating point; convert to fixed point", prm.Name),
				})
			}
		}
	}

	// Recursion: any cycle through the call graph that touches a defined
	// function.
	for _, fn := range prog.Funcs {
		if cyclic(callGraph, fn.Name, fn.Name, map[string]bool{}) {
			issues = append(issues, Issue{
				Kind: IssueRecursion, Line: fn.Line, Func: fn.Name,
				Detail: fmt.Sprintf("function %q is (mutually) recursive; hardware needs an iterative form", fn.Name),
			})
		}
	}

	sort.Slice(issues, func(i, j int) bool {
		if issues[i].Func != issues[j].Func {
			return issues[i].Func < issues[j].Func
		}
		if issues[i].Line != issues[j].Line {
			return issues[i].Line < issues[j].Line
		}
		return issues[i].Kind < issues[j].Kind
	})
	return issues
}

// cyclic reports whether target is reachable from cur through the call graph.
func cyclic(g map[string][]string, start, cur string, seen map[string]bool) bool {
	for _, next := range g[cur] {
		if next == start {
			return true
		}
		if seen[next] {
			continue
		}
		seen[next] = true
		if cyclic(g, start, next, seen) {
			return true
		}
	}
	return false
}

type analyzer struct {
	fn     *FuncDecl
	issues []Issue
	calls  map[string]bool
}

func (a *analyzer) add(kind IssueKind, line int, format string, args ...any) {
	a.issues = append(a.issues, Issue{Kind: kind, Line: line, Func: a.fn.Name, Detail: fmt.Sprintf(format, args...)})
}

func (a *analyzer) scanStmt(st Stmt) {
	switch n := st.(type) {
	case nil:
	case *BlockStmt:
		for _, s := range n.Stmts {
			a.scanStmt(s)
		}
	case *DeclStmt:
		for _, d := range n.Decls {
			a.scanDecl(d)
		}
	case *ExprStmt:
		a.scanExpr(n.X)
	case *IfStmt:
		a.scanExpr(n.Cond)
		a.scanStmt(n.Then)
		a.scanStmt(n.Else)
	case *ForStmt:
		if n.Init != nil {
			a.scanStmt(n.Init)
		}
		if !staticForBound(n) {
			// Variable-bound for loops synthesize (with conservative
			// latency); flag them as an advisory tripcount finding, the
			// way Vitis-class tools warn rather than reject.
			a.add(IssueMissingPragma, n.Line, "for loop bound is not a compile-time constant; add a loop_tripcount pragma")
		}
		a.scanExpr(n.Cond)
		a.scanExpr(n.Post)
		a.scanStmt(n.Body)
	case *WhileStmt:
		a.add(IssueUnboundedLoop, n.Line, "while loop has no static trip count; rewrite as a bounded for loop")
		a.scanExpr(n.Cond)
		a.scanStmt(n.Body)
	case *DoStmt:
		a.add(IssueUnboundedLoop, n.Line, "do/while loop has no static trip count; rewrite as a bounded for loop")
		a.scanExpr(n.Cond)
		a.scanStmt(n.Body)
	case *ReturnStmt:
		a.scanExpr(n.X)
	}
}

func (a *analyzer) scanDecl(d *VarDecl) {
	t := d.Type
	if t.Kind == KindFloat || (t.Elem != nil && t.Elem.Kind == KindFloat) {
		a.add(IssueFloatingPoint, d.Line, "variable %q uses floating point; convert to fixed point", d.Name)
	}
	if t.Kind == KindArray && t.ArrayLen < 0 && len(d.InitList) == 0 {
		a.add(IssueVLA, d.Line, "array %q has a non-constant length; size it statically", d.Name)
	}
	a.scanExpr(d.Init)
	for _, e := range d.InitList {
		a.scanExpr(e)
	}
}

func (a *analyzer) scanExpr(ex Expr) {
	switch n := ex.(type) {
	case nil:
	case *CallExpr:
		switch n.Name {
		case "malloc", "calloc", "realloc":
			a.add(IssueDynamicMemory, n.Line, "%s allocates unbounded memory; replace with a static array", n.Name)
		case "free":
			a.add(IssueDynamicMemory, n.Line, "free releases heap memory; hardware has no heap")
		case "printf", "puts", "putchar":
			a.add(IssueIO, n.Line, "%s performs I/O inside the kernel; move it to the testbench", n.Name)
		default:
			a.calls[n.Name] = true
		}
		for _, arg := range n.Args {
			a.scanExpr(arg)
		}
	case *BinExpr:
		a.scanExpr(n.X)
		a.scanExpr(n.Y)
	case *UnExpr:
		if n.Op == "*" || n.Op == "&" {
			a.add(IssuePointerArith, n.Line, "raw pointer %s; use array indexing instead", map[string]string{"*": "dereference", "&": "address-of"}[n.Op])
		}
		a.scanExpr(n.X)
	case *PostfixExpr:
		a.scanExpr(n.X)
	case *AssignExpr:
		a.scanExpr(n.LHS)
		a.scanExpr(n.RHS)
	case *CondExpr:
		a.scanExpr(n.Cond)
		a.scanExpr(n.Then)
		a.scanExpr(n.Else)
	case *IndexExpr:
		a.scanExpr(n.X)
		a.scanExpr(n.Idx)
	case *CastExpr:
		if n.To.Kind == KindFloat {
			a.add(IssueFloatingPoint, n.Line, "cast to floating point; convert to fixed point")
		}
		a.scanExpr(n.X)
	}
}

// staticForBound recognizes the canonical bounded loop shape
// "for (i = C0; i <op> C1; i±=C2)" (declarations included).
func staticForBound(n *ForStmt) bool {
	cond, ok := n.Cond.(*BinExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case "<", "<=", ">", ">=", "!=":
	default:
		return false
	}
	if _, isLit := cond.Y.(*IntLit); !isLit {
		// Allow a variable bound only when it is a parameter-free literal;
		// anything else is flagged (the repair framework will bound it).
		return false
	}
	if _, isVar := cond.X.(*VarRef); !isVar {
		return false
	}
	return n.Post != nil
}
