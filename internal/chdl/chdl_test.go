package chdl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := ParseC(src)
	if err != nil {
		t.Fatalf("ParseC: %v", err)
	}
	return p
}

func run(t *testing.T, src, fn string, args ...int64) int64 {
	t.Helper()
	prog := mustParse(t, src)
	in, err := NewInterp(prog, InterpOptions{})
	if err != nil {
		t.Fatalf("NewInterp: %v", err)
	}
	v, err := in.CallInts(fn, args...)
	if err != nil {
		t.Fatalf("CallInts(%s): %v", fn, err)
	}
	return v
}

func TestParseAndRunArithmetic(t *testing.T) {
	src := `
int compute(int a, int b) {
    int s = a * 3 + b / 2 - 1;
    s <<= 1;
    s |= 1;
    return s;
}`
	if got := run(t, src, "compute", 5, 8); got != ((5*3+8/2-1)<<1)|1 {
		t.Errorf("compute = %d", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int collatz_steps(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
        if (steps > 1000) break;
    }
    return steps;
}`
	if got := run(t, src, "collatz_steps", 27); got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
}

func TestForLoopAndArrays(t *testing.T) {
	src := `
int sum_squares(int n) {
    int acc[64];
    for (int i = 0; i < n; i++) acc[i] = i * i;
    int total = 0;
    for (int i = 0; i < n; i++) total += acc[i];
    return total;
}`
	if got := run(t, src, "sum_squares", 10); got != 285 {
		t.Errorf("sum_squares(10) = %d, want 285", got)
	}
}

func TestRecursionFibonacci(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n-1) + fib(n-2);
}`
	if got := run(t, src, "fib", 15); got != 610 {
		t.Errorf("fib(15) = %d", got)
	}
}

func TestMallocPointerProgram(t *testing.T) {
	src := `
int sum_dyn(int n) {
    int *buf = (int*)malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) buf[i] = i + 1;
    int total = 0;
    int *p = buf;
    for (int i = 0; i < n; i++) { total += *p; p++; }
    free(buf);
    return total;
}`
	if got := run(t, src, "sum_dyn", 10); got != 55 {
		t.Errorf("sum_dyn = %d, want 55", got)
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	src := `
int uaf() {
    int *p = (int*)malloc(4);
    free(p);
    return p[0];
}`
	prog := mustParse(t, src)
	in, err := NewInterp(prog, InterpOptions{})
	if err != nil {
		t.Fatalf("NewInterp: %v", err)
	}
	if _, err := in.CallInts("uaf"); err == nil || !strings.Contains(err.Error(), "use after free") {
		t.Errorf("expected use-after-free, got %v", err)
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	src := `
int oob() {
    int a[4];
    return a[10];
}`
	prog := mustParse(t, src)
	in, _ := NewInterp(prog, InterpOptions{})
	if _, err := in.CallInts("oob"); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("expected bounds error, got %v", err)
	}
}

func TestIntWraparound(t *testing.T) {
	src := `
int wrap() {
    int x = 2147483647;
    x = x + 1;
    return x;
}`
	if got := run(t, src, "wrap"); got != -2147483648 {
		t.Errorf("int overflow wraps to %d, want -2147483648", got)
	}
}

func TestCharTruncation(t *testing.T) {
	src := `
int trunc_char() {
    char c = 200;
    return c;
}`
	if got := run(t, src, "trunc_char"); got != -56 {
		t.Errorf("char 200 = %d, want -56", got)
	}
}

func TestPrintfOutput(t *testing.T) {
	src := `
int report(int a) {
    printf("value=%d hex=%x char=%c %s\n", a, a, 65, "ok");
    return 0;
}`
	prog := mustParse(t, src)
	in, _ := NewInterp(prog, InterpOptions{})
	if _, err := in.CallInts("report", 42); err != nil {
		t.Fatalf("report: %v", err)
	}
	if got := in.Output(); got != "value=42 hex=2a char=A ok\n" {
		t.Errorf("printf output = %q", got)
	}
}

func TestGlobalsPersistAcrossCalls(t *testing.T) {
	src := `
int counter = 0;
int bump() { counter += 1; return counter; }`
	prog := mustParse(t, src)
	in, _ := NewInterp(prog, InterpOptions{})
	for want := int64(1); want <= 3; want++ {
		got, err := in.CallInts("bump")
		if err != nil {
			t.Fatalf("bump: %v", err)
		}
		if got != want {
			t.Errorf("bump #%d = %d", want, got)
		}
	}
}

func TestStepLimitStopsInfiniteLoop(t *testing.T) {
	src := `int spin() { while (1) { } return 0; }`
	prog := mustParse(t, src)
	in, _ := NewInterp(prog, InterpOptions{MaxSteps: 10_000})
	_, err := in.CallInts("spin")
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("expected ErrStepLimit, got %v", err)
	}
}

func TestArrayParameterSharing(t *testing.T) {
	src := `
void doubler(int a[], int n) {
    for (int i = 0; i < n; i++) a[i] *= 2;
}`
	prog := mustParse(t, src)
	in, _ := NewInterp(prog, InterpOptions{})
	buf := NewBuffer([]int64{1, 2, 3, 4})
	if _, err := in.Call("doubler", buf, IntVal(4)); err != nil {
		t.Fatalf("doubler: %v", err)
	}
	got := BufferData(buf)
	for i, want := range []int64{2, 4, 6, 8} {
		if got[i] != want {
			t.Errorf("a[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestTernaryAndLogicalShortCircuit(t *testing.T) {
	src := `
int guard(int x) {
    // Division only evaluated when x != 0: short-circuit required.
    return (x != 0 && 100 / x > 5) ? 1 : 0;
}`
	if got := run(t, src, "guard", 0); got != 0 {
		t.Errorf("guard(0) = %d", got)
	}
	if got := run(t, src, "guard", 10); got != 1 {
		t.Errorf("guard(10) = %d", got)
	}
}

func TestPragmaParsing(t *testing.T) {
	src := `
int kernel(int a[], int n) {
#pragma HLS pipeline II=2
    int acc = 0;
    for (int i = 0; i < 64; i++) {
#pragma HLS unroll factor=4
        acc += a[i % n];
    }
    return acc;
}`
	prog := mustParse(t, src)
	fn := prog.FindFunc("kernel")
	if fn == nil {
		t.Fatal("kernel not found")
	}
	if len(fn.Pragmas) != 1 || fn.Pragmas[0].Directive != "pipeline" || fn.Pragmas[0].Args["ii"] != "2" {
		t.Errorf("function pragmas = %+v", fn.Pragmas)
	}
	var loop *ForStmt
	for _, st := range fn.Body.Stmts {
		if f, ok := st.(*ForStmt); ok {
			loop = f
		}
	}
	if loop == nil || len(loop.Pragmas) != 1 || loop.Pragmas[0].Directive != "unroll" || loop.Pragmas[0].Args["factor"] != "4" {
		t.Errorf("loop pragmas missing: %+v", loop)
	}
}

func TestAnalyzeFindsIncompatibilities(t *testing.T) {
	src := `
int helper(int n) {
    if (n <= 0) return 0;
    return helper(n - 1) + 1;
}
int kernel(int *data, int n) {
    int *buf = (int*)malloc(n * sizeof(int));
    float scale = 2;
    while (n > 0) { n--; }
    printf("%d", n);
    free(buf);
    return helper(n);
}`
	prog := mustParse(t, src)
	issues := Analyze(prog)
	kinds := map[IssueKind]int{}
	for _, is := range issues {
		kinds[is.Kind]++
	}
	for _, want := range []IssueKind{IssueDynamicMemory, IssueRecursion, IssueUnboundedLoop, IssueFloatingPoint, IssueIO, IssuePointerParam} {
		if kinds[want] == 0 {
			t.Errorf("Analyze missed %s; got %v", want, issues)
		}
	}
}

func TestAnalyzeCleanKernel(t *testing.T) {
	src := `
int dot(int a[16], int b[16]) {
    int acc = 0;
    for (int i = 0; i < 16; i++) acc += a[i] * b[i];
    return acc;
}`
	prog := mustParse(t, src)
	for _, is := range Analyze(prog) {
		if is.Kind.Blocking() {
			t.Errorf("clean kernel flagged: %v", is)
		}
	}
}

func TestParseErrorsC(t *testing.T) {
	cases := []string{
		"int f( { return 0; }",
		"int f() { return 0 }",
		"int f() { int x = ; }",
		"",
	}
	for _, src := range cases {
		if _, err := ParseC(src); err == nil {
			t.Errorf("ParseC(%q) succeeded, want error", src)
		}
	}
}

func TestInterpreterMatchesGoSemanticsQuick(t *testing.T) {
	src := `
long mix(long a, long b) {
    long x = a ^ (b << 3);
    x = x + a * 7 - (b & 1023);
    if (x < 0) x = -x;
    return x % 1000003;
}`
	prog := mustParse(t, src)
	ref := func(a, b int64) int64 {
		x := a ^ (b << 3)
		x = x + a*7 - (b & 1023)
		if x < 0 {
			x = -x
		}
		if x == int64(-1)<<63 { // |minint| stays negative in C and Go alike
			return x % 1000003
		}
		return x % 1000003
	}
	check := func(a, b int32) bool {
		in, err := NewInterp(prog, InterpOptions{})
		if err != nil {
			return false
		}
		got, err := in.CallInts("mix", int64(a), int64(b))
		if err != nil {
			return false
		}
		return got == ref(int64(a), int64(b))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceHooks(t *testing.T) {
	src := `
int accumulate(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) acc = acc + i;
    return acc;
}`
	prog := mustParse(t, src)
	in, _ := NewInterp(prog, InterpOptions{})
	var samples []int64
	in.TraceVars = map[string]bool{"acc": true}
	in.Trace = func(line int, name string, v int64) {
		samples = append(samples, v)
	}
	if _, err := in.CallInts("accumulate", 5); err != nil {
		t.Fatalf("accumulate: %v", err)
	}
	// acc is written at declaration and then 5 times: 0,0,1,3,6,10.
	if len(samples) < 5 || samples[len(samples)-1] != 10 {
		t.Errorf("trace samples = %v", samples)
	}
	if in.BranchCount[4] != 5 {
		t.Errorf("loop branch count = %v", in.BranchCount)
	}
}

func TestDoWhileAndPostfix(t *testing.T) {
	src := `
int countdown(int n) {
    int ticks = 0;
    do {
        ticks++;
        n--;
    } while (n > 0);
    return ticks;
}`
	if got := run(t, src, "countdown", 5); got != 5 {
		t.Errorf("countdown(5) = %d", got)
	}
	if got := run(t, src, "countdown", 0); got != 1 { // do/while runs once
		t.Errorf("countdown(0) = %d", got)
	}
}

func TestMemsetMemcpy(t *testing.T) {
	src := `
int blit(int n) {
    int src[16], dst[16];
    memset(src, 7, 16);
    memcpy(dst, src, n);
    int total = 0;
    for (int i = 0; i < 16; i++) total += dst[i];
    return total;
}`
	if got := run(t, src, "blit", 8); got != 56 {
		t.Errorf("blit = %d, want 56", got)
	}
}

func TestGlobalArrayInitList(t *testing.T) {
	src := `
int lut[4] = {10, 20, 30, 40};
int pick(int i) { return lut[i]; }`
	if got := run(t, src, "pick", 2); got != 30 {
		t.Errorf("pick(2) = %d", got)
	}
}
