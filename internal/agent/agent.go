// Package agent implements the intelligent EDA agent the paper's Fig. 6
// envisions (and the Fig. 1 flow instantiates): a single orchestrator
// that drives a design from natural-language specification through HDL
// generation, testbench generation, simulation, feedback-driven debugging,
// logic synthesis and PPA optimization, producing a unified multi-stage
// report. Every stage is delegated to the corresponding substrate: the
// same code paths the individual case studies exercise.
package agent

import (
	"context"
	"fmt"
	"strings"
	"time"

	"llm4eda/internal/autochip"
	"llm4eda/internal/benchset"
	"llm4eda/internal/core"
	"llm4eda/internal/llm"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/synth"
	"llm4eda/internal/verilog"
)

// Config parameterizes the agent.
type Config struct {
	// RunSpec carries the shared execution envelope; Workers bounds the
	// embedded AutoChip stage's candidate batches.
	core.RunSpec
	Model llm.Model
	// MaxDebugRounds bounds the simulate-debug loop (default 5).
	MaxDebugRounds int
	// UseModelTestbench makes the agent verify with its own generated
	// testbench first (the risky mode the paper critiques); the reference
	// bench is always used for final signoff.
	UseModelTestbench bool
	// SynthOptions configures logic synthesis.
	SynthOptions synth.Options
	Sim          verilog.SimOptions
}

func (c Config) withDefaults() Config {
	if c.MaxDebugRounds == 0 {
		c.MaxDebugRounds = 5
	}
	return c
}

// Agent orchestrates the full flow.
type Agent struct {
	cfg Config
}

// New builds an agent.
func New(cfg Config) (*Agent, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("agent: Config.Model is required")
	}
	return &Agent{cfg: cfg.withDefaults()}, nil
}

// RunProblem drives one benchmark problem through the full flow and
// returns the unified report. ctx is checked between flow stages (and
// inside the embedded AutoChip loop); every completed stage streams to
// the context's event sink.
func (a *Agent) RunProblem(ctx context.Context, p *benchset.Problem) (*core.Report, error) {
	cfg := a.cfg
	sink := core.SinkOf(ctx)
	report := &core.Report{
		Design: core.Design{Name: p.ID, Language: core.LangNaturalLanguage, Source: p.Spec},
	}
	stage := func(s core.Stage, task, detail string, ok bool, start time.Time) {
		report.Append(core.StageRecord{
			Stage: s, Task: task, Detail: detail, OK: ok, Duration: time.Since(start),
		})
		sink.Emit(core.Event{
			Kind: core.EventPhaseEnd, Framework: "agent", Phase: s.String(),
			Seq: len(report.Stages), OK: ok, Detail: task + " — " + detail,
		})
	}

	// Stage 1: specification (already given; the agent restates scope).
	t0 := time.Now()
	stage(core.StageSpecification, "specification optimization",
		fmt.Sprintf("spec for %q (difficulty %d)", p.ID, p.Difficulty), true, t0)

	// Stage 2: HDL generation with EDA feedback (AutoChip engine).
	t0 = time.Now()
	genRes, err := autochip.Run(ctx, p, autochip.Options{
		RunSpec: cfg.RunSpec, Model: cfg.Model, K: 2, Depth: cfg.MaxDebugRounds, Sim: cfg.Sim,
	})
	if err != nil {
		return nil, fmt.Errorf("agent: generation failed: %w", err)
	}
	design := genRes.Best.Source
	stage(core.StageHDLGeneration, "code generation",
		fmt.Sprintf("%d candidates over %d rounds", genRes.TotalCandidates, genRes.Rounds),
		genRes.Solved, t0)
	report.Design = core.Design{Name: p.ID, Language: core.LangVerilog, Source: design, TopModule: p.TopModule}

	// Stage 3: testbench generation.
	t0 = time.Now()
	tb := p.Testbench()
	tbDetail := "reference testbench"
	if cfg.UseModelTestbench {
		resp, err := cfg.Model.Generate(llm.Request{
			System: llm.SystemVerilogDesigner,
			Prompt: llm.BuildTestbenchPrompt(p.Spec, design),
			Task: llm.TestbenchGen{
				ProblemID: p.ID, Spec: p.Spec,
				Header: p.TBHeader, VectorBlocks: p.TBBlocks, Footer: p.TBFooter,
			},
		})
		if err == nil {
			tb = resp.Text
			tbDetail = fmt.Sprintf("model-generated testbench (%d checks vs %d reference)",
				strings.Count(tb, "$check_eq"), p.Checks())
		}
	}
	stage(core.StageTestbench, "testbench generation", tbDetail, true, t0)

	// Stage 4: simulation. The design was just scored by the AutoChip
	// stage, so the farm serves the compile (and often the whole run)
	// from cache.
	t0 = time.Now()
	simRes, err := simfarm.RunTestbench(design, tb, "tb", cfg.Sim)
	simOK := err == nil && simRes != nil && simRes.Passed()
	detail := "simulation failed to compile"
	if err == nil {
		detail = fmt.Sprintf("%d/%d checks pass", simRes.Checks-simRes.Failures, simRes.Checks)
	}
	stage(core.StageSimulation, "design verification", detail, simOK, t0)

	// Stage 5: debugging (only when needed): one more feedback round
	// against the reference bench.
	if err := ctx.Err(); err != nil {
		return report, err
	}
	if !simOK {
		t0 = time.Now()
		fixed := autochip.Evaluate(p, design, cfg.Sim)
		resp, err := cfg.Model.Generate(llm.Request{
			System: llm.SystemVerilogDesigner,
			Prompt: llm.BuildFeedbackPrompt(p.Spec, design, fixed.Feedback),
			Task: llm.VerilogGen{
				ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference,
				Difficulty: p.Difficulty, PrevAttempt: design, Feedback: fixed.Feedback,
			},
		})
		if err == nil {
			cand := autochip.Evaluate(p, resp.Text, cfg.Sim)
			if cand.Verdict.PassFraction() >= fixed.Verdict.PassFraction() {
				design = resp.Text
				report.Design.Source = design
			}
			stage(core.StageDebugging, "bug detection and correction",
				fmt.Sprintf("pass fraction %.2f -> %.2f",
					fixed.Verdict.PassFraction(), cand.Verdict.PassFraction()),
				cand.Verdict.Pass(), t0)
		} else {
			stage(core.StageDebugging, "bug detection and correction", err.Error(), false, t0)
		}
	}

	// Final signoff with the reference bench.
	final := autochip.Evaluate(p, design, cfg.Sim)
	report.Verdict = final.Verdict

	// Stage 6: logic synthesis.
	if err := ctx.Err(); err != nil {
		return report, err
	}
	t0 = time.Now()
	sr, err := synth.SynthesizeRTL(design, p.TopModule, cfg.SynthOptions)
	if err != nil {
		stage(core.StageSynthesis, "logic synthesis", err.Error(), false, t0)
		return report, nil
	}
	stage(core.StageSynthesis, "logic synthesis", sr.String(), true, t0)
	report.Final = sr.PPA()

	// Stage 7: PPA optimization: LLM rewrite, kept only when it verifies
	// and improves area.
	t0 = time.Now()
	resp, err := cfg.Model.Generate(llm.Request{
		System: llm.SystemVerilogDesigner,
		Prompt: llm.BuildSynthHintPrompt(design),
		Task:   llm.SynthRewrite{RTL: design},
	})
	if err == nil && resp.Text != design {
		cand := autochip.Evaluate(p, resp.Text, cfg.Sim)
		if cand.Verdict.Pass() || cand.Verdict.PassFraction() >= final.Verdict.PassFraction() {
			if sr2, err := synth.SynthesizeRTL(resp.Text, p.TopModule, cfg.SynthOptions); err == nil && sr2.Gates < sr.Gates {
				report.Design.Source = resp.Text
				report.Final = sr2.PPA()
				stage(core.StagePPAOptimization, "ppa optimization",
					fmt.Sprintf("area %.0f -> %.0f gates", sr.Gates, sr2.Gates), true, t0)
				return report, nil
			}
		}
	}
	stage(core.StagePPAOptimization, "ppa optimization", "no profitable rewrite found", true, t0)
	return report, nil
}

// RunSuite drives a set of problems and returns per-problem reports. ctx
// cancellation stops between problems (and mid-flow inside each).
func (a *Agent) RunSuite(ctx context.Context, problems []*benchset.Problem) ([]*core.Report, error) {
	reports := make([]*core.Report, 0, len(problems))
	for _, p := range problems {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		r, err := a.RunProblem(ctx, p)
		if r != nil {
			// A cancelled flow still returns its completed stages; keep
			// the partial report with the error.
			reports = append(reports, r)
		}
		if err != nil {
			return reports, fmt.Errorf("agent: %s: %w", p.ID, err)
		}
	}
	return reports, nil
}
