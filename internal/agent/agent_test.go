package agent

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/core"
	"llm4eda/internal/llm"
)

func TestAgentFullFlowOnEasyProblem(t *testing.T) {
	a, err := New(Config{Model: llm.NewSimModel(llm.TierFrontier, 1)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	report, err := a.RunProblem(context.Background(), benchset.ByID("adder4"))
	if err != nil {
		t.Fatalf("RunProblem: %v", err)
	}
	if !report.Verdict.Pass() {
		t.Fatalf("final design does not pass: %v", report.Verdict)
	}
	if report.Final.AreaGates <= 0 {
		t.Errorf("no synthesis result: %+v", report.Final)
	}
	// All mandatory stages present.
	var stages []string
	for _, s := range report.Stages {
		stages = append(stages, s.Stage.String())
	}
	joined := strings.Join(stages, ",")
	for _, want := range []core.Stage{core.StageSpecification, core.StageHDLGeneration,
		core.StageTestbench, core.StageSimulation, core.StageSynthesis, core.StagePPAOptimization} {
		if !strings.Contains(joined, want.String()) {
			t.Errorf("missing stage %s in %v", want, stages)
		}
	}
	if r := report.Render(); !strings.Contains(r, "design adder4") {
		t.Errorf("render broken: %s", r)
	}
}

func TestAgentModelTestbenchMode(t *testing.T) {
	a, err := New(Config{
		Model:             llm.NewSimModel(llm.TierMedium, 9),
		UseModelTestbench: true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	report, err := a.RunProblem(context.Background(), benchset.ByID("mux2"))
	if err != nil {
		t.Fatalf("RunProblem: %v", err)
	}
	found := false
	for _, s := range report.Stages {
		if s.Stage == core.StageTestbench && strings.Contains(s.Detail, "model-generated") {
			found = true
		}
	}
	if !found {
		t.Errorf("model testbench mode not reflected in report: %+v", report.Stages)
	}
}

func TestAgentRunSuite(t *testing.T) {
	a, err := New(Config{Model: llm.NewSimModel(llm.TierFrontier, 3)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	problems := []*benchset.Problem{benchset.ByID("not1"), benchset.ByID("and4"), benchset.ByID("gray4")}
	reports, err := a.RunSuite(context.Background(), problems)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	pass := 0
	for _, r := range reports {
		if r.Verdict.Pass() {
			pass++
		}
	}
	if pass < 2 {
		t.Errorf("frontier agent passed only %d/3 easy designs", pass)
	}
}

func TestNewRequiresModel(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for missing model")
	}
}
