// Package slt implements the paper's §V case study: LLM-driven generation
// of System-Level Test programs that maximize the power consumption of a
// superscalar out-of-order RISC-V processor. The loop follows Fig. 5
// exactly: a candidate pool seeded with handwritten examples, prompt
// construction from n randomly picked pool examples (SCoT), score
// evaluation on the processor model (zero for snippets that do not compile
// or trap), pool insertion under a Levenshtein diversity pressure, and a
// simulated-annealing-style temperature adaptation driven by the score and
// the new snippet's distance to the pool.
package slt

import (
	"context"
	"fmt"

	"llm4eda/internal/boom"
	"llm4eda/internal/chdl"
	"llm4eda/internal/core"
	"llm4eda/internal/isa"
	"llm4eda/internal/llm"
	"llm4eda/internal/rag"
	"llm4eda/internal/simfarm"
)

// Config parameterizes one optimization run.
type Config struct {
	// RunSpec carries the shared execution envelope; Seed fixes the pool
	// sampling stream and Workers bounds the seed-scoring batch.
	core.RunSpec
	Model llm.Model
	// UseSCoT selects structured chain-of-thought prompting.
	UseSCoT bool
	// AdaptiveTemp enables the temperature-adaptation mechanism; when
	// false, FixedTemp is used throughout (ablation E8).
	AdaptiveTemp bool
	FixedTemp    float64
	// DiversityPressure enables the Levenshtein pool filter (ablation E8).
	DiversityPressure bool
	// PoolSize bounds the candidate pool (default 12).
	PoolSize int
	// ExamplesPerPrompt is n in the paper (default 3).
	ExamplesPerPrompt int
	// MaxEvals is the snippet budget (the wall-clock stand-in; the paper's
	// 24 h run produced 2021 snippets).
	MaxEvals int
	// Boom configures the processor model.
	Boom boom.RunOptions
}

func (c Config) withDefaults() Config {
	if c.PoolSize == 0 {
		c.PoolSize = 12
	}
	if c.ExamplesPerPrompt == 0 {
		c.ExamplesPerPrompt = 3
	}
	if c.MaxEvals == 0 {
		c.MaxEvals = 200
	}
	if c.FixedTemp == 0 {
		c.FixedTemp = 0.7
	}
	return c
}

// Snippet is one scored candidate.
type Snippet struct {
	Source string
	Score  float64 // watts; 0 for invalid snippets
}

// Result reports a full run.
type Result struct {
	Best Snippet
	Pool []Snippet
	// Trajectory records best-so-far watts after each evaluation.
	Trajectory []float64
	Evals      int
	// CompileFails counts zero-score snippets (compile error or trap).
	CompileFails int
	// FinalTemp is the temperature at loop exit.
	FinalTemp float64
}

// Score compiles and runs one C snippet on the processor model, returning
// watts. Snippets that do not compile or trap ("unwanted exceptions" in
// the paper) score zero; a snippet still running when the measurement
// window (MaxInsts) closes is measured over the window, exactly like a
// fixed-duration power measurement on the FPGA rig.
func Score(source string, opts boom.RunOptions) (float64, *boom.Result) {
	prog, err := chdl.ParseC(source)
	if err != nil {
		return 0, nil
	}
	compiled, err := isa.Compile(prog, "main")
	if err != nil {
		return 0, nil
	}
	res := boom.Run(compiled, opts)
	if res.Trap != nil {
		return 0, res
	}
	return res.PowerW, res
}

// ScoreBatch evaluates a candidate batch on the processor model through
// the simfarm worker pool (workers <= 0 selects GOMAXPROCS). Each snippet
// compiles and runs independently, so the returned scores are in input
// order and identical to a serial Score loop.
func ScoreBatch(sources []string, opts boom.RunOptions, workers int) []float64 {
	scores, _ := ScoreBatchCtx(context.Background(), sources, opts, workers)
	return scores
}

// ScoreBatchCtx is ScoreBatch under a context: cancellation stops new
// snippet evaluations within one in-flight run and returns ctx.Err();
// unevaluated slots stay zero.
func ScoreBatchCtx(ctx context.Context, sources []string, opts boom.RunOptions, workers int) ([]float64, error) {
	scores := make([]float64, len(sources))
	err := simfarm.MapCtx(ctx, len(sources), workers, func(i int) {
		scores[i], _ = Score(sources[i], opts)
	})
	return scores, err
}

// SeedExamples returns the handwritten starter programs the paper's loop
// begins from.
func SeedExamples() []string {
	return []string{
		`// genome o=4000 c=1 m=0 a=6 b=0 u=1
int arr[64];
int main() {
    for (int i = 0; i < 64; i++) arr[i] = i * 2654435761;
    int acc0 = 1;
    int x = 123456789;
    for (int r = 0; r < 4000; r++) {
        acc0 = ((acc0 + r) ^ (acc0 << 3)) - (r | 1);
    }
    int out = x;
    out += acc0;
    return out;
}
`,
		`// genome o=5000 c=2 m=1,2 a=8 b=1 u=1
int arr[256];
int main() {
    for (int i = 0; i < 256; i++) arr[i] = i * 2654435761;
    int acc0 = 1;
    int acc1 = 2;
    int x = 123456789;
    for (int r = 0; r < 5000; r++) {
        acc0 = acc0 * 2654435761 + r;
        acc1 += arr[(r + 17) & 255];
        arr[(r + 31) & 255] = acc1;
    }
    int out = x;
    out += acc0;
    out += acc1;
    return out;
}
`,
		`// genome o=3000 c=1 m=3,5 a=6 b=2 u=1
int arr[64];
int main() {
    for (int i = 0; i < 64; i++) arr[i] = i * 2654435761;
    int acc0 = 1;
    int x = 123456789;
    for (int r = 0; r < 3000; r++) {
        acc0 = acc0 / ((r & 7) + 3) + 1000;
        x = x * 1103515245 + 12345;
        if ((x >> 16) & 1) { acc0 += 13; } else { acc0 -= 7; }
    }
    int out = x;
    out += acc0;
    return out;
}
`,
		`// genome o=6000 c=2 m=4,0 a=10 b=0 u=2
int arr[1024];
int main() {
    for (int i = 0; i < 1024; i++) arr[i] = i * 2654435761;
    int acc0 = 1;
    int acc1 = 2;
    int x = 123456789;
    for (int r = 0; r < 6000; r++) {
        acc0 ^= acc0 >> 5;
        acc0 += acc0 << 2;
        acc1 = ((acc1 + r) ^ (acc1 << 3)) - (r | 1);
        acc0 = ((acc0 + r) ^ (acc0 << 3)) - (r | 1);
        acc1 ^= acc1 >> 5;
        acc1 += acc1 << 2;
    }
    int out = x;
    out += acc0;
    out += acc1;
    return out;
}
`,
	}
}

// Run executes the optimization loop. ctx is checked between snippet
// evaluations (the loop's natural round boundary); each scored snippet
// and model call streams to the context's event sink.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		return nil, fmt.Errorf("slt: Config.Model is required")
	}
	sink := core.SinkOf(ctx)
	r := newRNG(cfg.Seed)
	res := &Result{}

	// Seed the pool with the handwritten examples, scored as one batch on
	// the processor model; the fold below keeps the serial ordering.
	seeds := SeedExamples()
	seedScores, err := ScoreBatchCtx(ctx, seeds, cfg.Boom, cfg.Workers)
	if err != nil {
		return res, err // cancelled while scoring the seed pool
	}
	for i, score := range seedScores {
		res.Pool = append(res.Pool, Snippet{Source: seeds[i], Score: score})
		if score > res.Best.Score {
			res.Best = Snippet{Source: seeds[i], Score: score}
		}
	}

	temp := cfg.FixedTemp
	const tempMin, tempMax = 0.1, 1.3

	for eval := 0; eval < cfg.MaxEvals; eval++ {
		if err := ctx.Err(); err != nil {
			res.FinalTemp = temp
			return res, err
		}
		// Prompt generation: n randomly picked examples from the pool.
		n := cfg.ExamplesPerPrompt
		if n > len(res.Pool) {
			n = len(res.Pool)
		}
		perm := r.perm(len(res.Pool))
		examples := make([]llm.SLTExample, 0, n)
		for _, idx := range perm[:n] {
			examples = append(examples, llm.SLTExample{Source: res.Pool[idx].Source, Score: res.Pool[idx].Score})
		}

		resp, err := cfg.Model.Generate(llm.Request{
			System:      llm.SystemSLT,
			Prompt:      llm.BuildSCoTPrompt(examples),
			Task:        llm.SLTGen{Examples: examples, UseSCoT: cfg.UseSCoT},
			Temperature: temp,
		})
		if err != nil {
			return nil, fmt.Errorf("slt: generation failed: %w", err)
		}
		sink.Emit(core.Event{
			Kind: core.EventLLMCall, Framework: "slt", Phase: "snippet generation",
			Seq: eval + 1, Total: cfg.MaxEvals, TokensIn: resp.TokensIn, TokensOut: resp.TokensOut,
		})
		score, _ := Score(resp.Text, cfg.Boom)
		res.Evals++
		if score == 0 {
			res.CompileFails++
		}
		if score > res.Best.Score {
			res.Best = Snippet{Source: resp.Text, Score: score}
		}
		res.Trajectory = append(res.Trajectory, res.Best.Score)
		sink.Emit(core.Event{
			Kind: core.EventCandidate, Framework: "slt", Phase: "power scoring",
			Seq: eval + 1, Total: cfg.MaxEvals, Score: score, OK: score > 0,
			Detail: fmt.Sprintf("best so far %.3f W", res.Best.Score),
		})

		// Pool update with diversity pressure.
		minDist := 1.0
		for _, sn := range res.Pool {
			if d := rag.NormalizedLevenshtein(resp.Text, sn.Source); d < minDist {
				minDist = d
			}
		}
		accept := score > 0
		if cfg.DiversityPressure && minDist < 0.05 && score <= poolMin(res.Pool) {
			accept = false // near-duplicate that does not improve anything
		}
		if accept {
			res.Pool = insertSnippet(res.Pool, Snippet{Source: resp.Text, Score: score}, cfg.PoolSize)
		}

		// Temperature adaptation (simulated-annealing flavored): good
		// scores cool the search toward exploitation; near-duplicates
		// heat it toward exploration.
		if cfg.AdaptiveTemp {
			mean := poolMean(res.Pool)
			switch {
			case score > mean && score > 0:
				temp -= 0.08
			case score == 0:
				temp += 0.05
			default:
				temp += 0.02
			}
			if minDist < 0.05 {
				temp += 0.12 // pool converging: force diversity
			}
			if temp < tempMin {
				temp = tempMin
			}
			if temp > tempMax {
				temp = tempMax
			}
		}
	}
	res.FinalTemp = temp
	return res, nil
}

func poolMean(pool []Snippet) float64 {
	if len(pool) == 0 {
		return 0
	}
	var s float64
	for _, sn := range pool {
		s += sn.Score
	}
	return s / float64(len(pool))
}

func poolMin(pool []Snippet) float64 {
	if len(pool) == 0 {
		return 0
	}
	m := pool[0].Score
	for _, sn := range pool[1:] {
		if sn.Score < m {
			m = sn.Score
		}
	}
	return m
}

// insertSnippet keeps the pool sorted by score, capped at size.
func insertSnippet(pool []Snippet, sn Snippet, size int) []Snippet {
	pool = append(pool, sn)
	// Insertion sort step (pool is small).
	for i := len(pool) - 1; i > 0 && pool[i].Score > pool[i-1].Score; i-- {
		pool[i], pool[i-1] = pool[i-1], pool[i]
	}
	if len(pool) > size {
		pool = pool[:size]
	}
	return pool
}

type rngT struct{ state uint64 }

func newRNG(seed uint64) *rngT {
	if seed == 0 {
		seed = 0xA5A5A5A55A5A5A5A
	}
	return &rngT{state: seed}
}

func (r *rngT) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *rngT) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// perm returns a deterministic pseudo-random permutation of [0, n).
func (r *rngT) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
