package slt

import (
	"context"
	"testing"

	"llm4eda/internal/boom"
	"llm4eda/internal/core"
	"llm4eda/internal/gp"
	"llm4eda/internal/llm"
)

// fastBoom keeps unit-test evaluations quick.
func fastBoom() boom.RunOptions {
	return boom.RunOptions{MaxInsts: 300_000}
}

func TestSeedExamplesScoreInBand(t *testing.T) {
	for i, src := range SeedExamples() {
		score, res := Score(src, fastBoom())
		if score < 4.0 || score > 6.2 {
			t.Errorf("seed %d scores %.3f W (res=%v), outside plausible band", i, score, res)
		}
	}
}

func TestScoreZeroForBrokenSnippet(t *testing.T) {
	if s, _ := Score("int main() { return", fastBoom()); s != 0 {
		t.Errorf("broken snippet scored %.3f", s)
	}
	// A trapping snippet ("unwanted exception") scores zero.
	trap := `
int tiny[1];
int main() { return tiny[1000000000]; }`
	if s, _ := Score(trap, fastBoom()); s != 0 {
		t.Errorf("trapping snippet scored %.3f", s)
	}
	// A non-halting snippet is measured over the window: a valid but
	// low-power score (an empty spin loop keeps most units idle).
	spin, _ := Score("int main() { int x = 0; while (1) { x++; } return x; }", fastBoom())
	if spin <= 4.0 || spin >= 5.2 {
		t.Errorf("spin loop scored %.3f W, want a low in-band value", spin)
	}
}

func TestRunImprovesOverSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale optimization loop")
	}
	cfg := Config{
		Model:             llm.NewSimModel(llm.TierLarge, 11),
		UseSCoT:           true,
		AdaptiveTemp:      true,
		DiversityPressure: true,
		MaxEvals:          60,
		Boom:              fastBoom(),
		RunSpec:           core.RunSpec{Seed: 5},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Evals != 60 {
		t.Errorf("evals = %d", res.Evals)
	}
	seedBest := 0.0
	for _, src := range SeedExamples() {
		if s, _ := Score(src, fastBoom()); s > seedBest {
			seedBest = s
		}
	}
	if res.Best.Score <= seedBest {
		t.Errorf("loop never improved: best %.3f <= seed best %.3f", res.Best.Score, seedBest)
	}
	// Trajectory is monotone non-decreasing by construction.
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i] < res.Trajectory[i-1] {
			t.Fatalf("trajectory decreases at %d", i)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{
		Model:        llm.NewSimModel(llm.TierLarge, 3),
		UseSCoT:      true,
		AdaptiveTemp: true,
		MaxEvals:     20,
		Boom:         fastBoom(),
		RunSpec:      core.RunSpec{Seed: 9},
	}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Model = llm.NewSimModel(llm.TierLarge, 3) // fresh model, same seed
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Best.Score != b.Best.Score || a.CompileFails != b.CompileFails {
		t.Errorf("nondeterministic: %.4f/%d vs %.4f/%d",
			a.Best.Score, a.CompileFails, b.Best.Score, b.CompileFails)
	}
}

func TestSCoTReducesCompileFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale A/B loop comparison")
	}
	fails := func(scot bool) int {
		cfg := Config{
			Model:    llm.NewSimModel(llm.TierSmall, 17),
			UseSCoT:  scot,
			MaxEvals: 60,
			Boom:     boom.RunOptions{MaxInsts: 50_000},
			RunSpec:  core.RunSpec{Seed: 17},
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.CompileFails
	}
	with := fails(true)
	without := fails(false)
	if with >= without {
		t.Errorf("SCoT compile failures %d >= plain %d", with, without)
	}
}

// TestGPBeatsLLMWithLongerBudget is the paper's §V headline: the LLM loop
// saturates while GP, given a ~1.6x budget (39 h vs 24 h), finds a
// strictly higher-power snippet.
func TestGPBeatsLLMWithLongerBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("long comparison")
	}
	bopts := fastBoom()
	llmRes, err := Run(context.Background(), Config{
		Model:             llm.NewSimModel(llm.TierLarge, 42),
		UseSCoT:           true,
		AdaptiveTemp:      true,
		DiversityPressure: true,
		MaxEvals:          120,
		Boom:              bopts,
		RunSpec:           core.RunSpec{Seed: 42},
	})
	if err != nil {
		t.Fatalf("llm run: %v", err)
	}
	gpRes, _ := gp.Run(context.Background(), gp.Config{RunSpec: core.RunSpec{Seed: 42}, MaxEvals: 200, Boom: bopts})
	if gpRes.Best.Score <= llmRes.Best.Score {
		t.Errorf("GP best %.3f W <= LLM best %.3f W; paper's §V ordering lost",
			gpRes.Best.Score, llmRes.Best.Score)
	}
	t.Logf("LLM best %.3f W, GP best %.3f W, gap %.3f W",
		llmRes.Best.Score, gpRes.Best.Score, gpRes.Best.Score-llmRes.Best.Score)
}
