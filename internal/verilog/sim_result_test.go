package verilog

import (
	"strings"
	"testing"
)

// Coverage for SimResult fidelity: multi-word signals in the final
// snapshot (the VRank wide-output clustering fix) and the EndTime
// contract on MaxTime timeouts.

// wideDUT models a 128-bit result as a two-word array (the subset stores
// wide buses as word arrays); hi is the upper 64 bits.
func wideDUT(hi uint64) string {
	return `
module tb;
  reg [63:0] wide [0:1];
  reg [7:0] narrow;
  initial begin
    narrow = 8'h5A;
    wide[0] = 64'h0123456789abcdef;
    wide[1] = 64'h` + strings.ToLower(strings.TrimPrefix(hexU64(hi), "0x")) + `;
    #1 $finish;
  end
endmodule`
}

func hexU64(v uint64) string {
	const digits = "0123456789abcdef"
	buf := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xF]
		v >>= 4
	}
	return "0x" + string(buf)
}

func TestFinalIncludesMultiWordSignals(t *testing.T) {
	res, err := CompileAndRun(wideDUT(0xdeadbeefcafef00d), "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	got, ok := res.FinalMem["tb.wide"]
	if !ok {
		t.Fatalf("multi-word signal missing from FinalMem: %v", res.FinalMem)
	}
	want := "2x64'hdeadbeefcafef00d_0123456789abcdef"
	if got != want {
		t.Errorf("tb.wide = %q, want %q", got, want)
	}
	if _, ok := res.Final["tb.narrow"]; !ok {
		t.Errorf("single-word signal missing from Final")
	}
	listing := FormatSignals(res, "tb.")
	if !strings.Contains(listing, "tb.wide="+want) {
		t.Errorf("FormatSignals omits the wide signal:\n%s", listing)
	}
	if !strings.Contains(listing, "tb.narrow=") {
		t.Errorf("FormatSignals omits the narrow signal:\n%s", listing)
	}
}

// TestWideOutputsDistinguishCandidates is the VRank regression: two
// candidates whose outputs differ only in the upper word of a 128-bit
// value must produce distinct final-signal listings, or self-consistency
// clustering lumps them into one cluster.
func TestWideOutputsDistinguishCandidates(t *testing.T) {
	sigOf := func(hi uint64) string {
		res, err := CompileAndRun(wideDUT(hi), "tb", SimOptions{})
		if err != nil {
			t.Fatalf("CompileAndRun: %v", err)
		}
		return FormatSignals(res, "tb.")
	}
	a := sigOf(0x0000000000000001)
	b := sigOf(0x8000000000000001)
	if a == b {
		t.Fatalf("candidates differing only in wide bits cluster together:\n%s", a)
	}
}

func TestUnwrittenMemoryRendersAllX(t *testing.T) {
	src := `
module tb;
  reg [7:0] mem [0:2];
  initial #1 $finish;
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if got, want := res.FinalMem["tb.mem"], "3x8'hxx_xx_xx"; got != want {
		t.Errorf("tb.mem = %q, want %q", got, want)
	}
}

// TestTimeoutEndTimeReportsBound pins the EndTime contract: when the
// MaxTime horizon fires, the result reports the bound itself, not the
// last timestep that completed before it.
func TestTimeoutEndTimeReportsBound(t *testing.T) {
	src := `
module tb;
  reg clk;
  always #7 clk = ~clk;
  initial clk = 0;
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{MaxTime: 100})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.TimedOut {
		t.Fatalf("expected timeout: %+v", res)
	}
	if res.EndTime != 100 {
		t.Errorf("EndTime = %d, want the MaxTime bound 100", res.EndTime)
	}
}
