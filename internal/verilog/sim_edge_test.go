package verilog

import (
	"strings"
	"testing"
	"testing/quick"
)

// Additional edge-case coverage for the simulator: casez wildcards,
// repeat/forever, $random determinism, positional connections, parameter
// expressions, and scheduler corner cases.

func TestCasezWildcardMatching(t *testing.T) {
	src := `
module pri(input [3:0] a, output reg [1:0] y);
  always @(*) begin
    casez (a)
      4'b1zzz: y = 2'd3;
      4'b01zz: y = 2'd2;
      4'b001z: y = 2'd1;
      default: y = 2'd0;
    endcase
  end
endmodule
module tb;
  reg [3:0] a;
  wire [1:0] y;
  pri dut(.a(a), .y(y));
  initial begin
    a = 4'b1010; #1 $check_eq(y, 2'd3);
    a = 4'b0111; #1 $check_eq(y, 2'd2);
    a = 4'b0011; #1 $check_eq(y, 2'd1);
    a = 4'b0001; #1 $check_eq(y, 2'd0);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("casez: %s", res.Output)
	}
}

func TestRepeatStatement(t *testing.T) {
	src := `
module tb;
  reg [7:0] n;
  initial begin
    n = 0;
    repeat (12) n = n + 1;
    $check_eq(n, 8'd12);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("repeat: err=%v out=%s", err, res.Output)
	}
}

func TestForeverWithDelay(t *testing.T) {
	src := `
module tb;
  reg clk;
  reg [7:0] edges;
  initial begin
    clk = 0;
    forever #5 clk = ~clk;
  end
  always @(posedge clk) edges <= edges + 1;
  initial begin
    edges = 0;
    #52;
    $check_eq(edges, 8'd5);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("forever: err=%v out=%s", err, res.Output)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	src := `
module tb;
  reg [31:0] r;
  initial begin
    r = $random;
    $display("R=%d", r);
    $finish;
  end
endmodule`
	get := func(seed uint64) string {
		res, err := CompileAndRun(src, "tb", SimOptions{Seed: seed})
		if err != nil {
			t.Fatalf("CompileAndRun: %v", err)
		}
		return res.Output
	}
	if get(1) != get(1) {
		t.Error("same seed differs")
	}
	if get(1) == get(2) {
		t.Error("different seeds agree")
	}
}

func TestPositionalConnectionsAndParams(t *testing.T) {
	src := `
module add #(parameter W = 4, parameter BIAS = 0) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
  assign y = a + b + BIAS;
endmodule
module tb;
  reg [7:0] a, b;
  wire [7:0] y;
  add #(8, 3) dut(a, b, y);
  initial begin
    a = 10; b = 20;
    #1 $check_eq(y, 8'd33);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("positional: err=%v out=%s", err, res.Output)
	}
}

func TestLocalparamExpression(t *testing.T) {
	src := `
module tb;
  localparam N = 4;
  localparam FULL = (1 << N) - 1;
  reg [7:0] v;
  initial begin
    v = FULL;
    $check_eq(v, 8'd15);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("localparam: err=%v out=%s", err, res.Output)
	}
}

func TestDanglingOutputPort(t *testing.T) {
	// Unconnected outputs are legal and must not crash.
	src := `
module m(input a, output y, output z);
  assign y = a;
  assign z = ~a;
endmodule
module tb;
  reg a;
  wire y;
  m dut(.a(a), .y(y), .z());
  initial begin
    a = 1; #1 $check_eq(y, 1'b1);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("dangling: err=%v out=%s", err, res.Output)
	}
}

func TestZeroDelayRoundsUp(t *testing.T) {
	src := `
module tb;
  reg x;
  initial begin
    x = 0;
    #0 x = 1;
    $check_eq(x, 1'b1);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("zero delay: err=%v out=%s", err, res.Output)
	}
}

func TestMultiBitEdgeUsesLSB(t *testing.T) {
	// Edge detection on multi-bit signals follows the LSB.
	src := `
module tb;
  reg [3:0] bus;
  reg [7:0] hits;
  always @(posedge bus) hits <= hits + 1;
  initial begin
    hits = 0; bus = 0;
    #1 bus = 4'b0001;
    #1 bus = 4'b0010;
    #1 bus = 4'b0011;
    #1;
    $check_eq(hits, 8'd2);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("multibit edge: err=%v out=%s", err, res.Output)
	}
}

func TestValueFormatRadix(t *testing.T) {
	v := NewValue(0xA5, 8)
	if v.FormatRadix('h') != "a5" || v.FormatRadix('d') != "165" || v.FormatRadix('b') != "10100101" {
		t.Errorf("format: %s %s %s", v.FormatRadix('h'), v.FormatRadix('d'), v.FormatRadix('b'))
	}
	x := AllX(4)
	if x.FormatRadix('d') != "x" || x.FormatRadix('b') != "xxxx" {
		t.Errorf("x format: %s %s", x.FormatRadix('d'), x.FormatRadix('b'))
	}
}

func TestShiftValuePropertiesQuick(t *testing.T) {
	// (a << k) >> k recovers the low bits that survived the left shift.
	prop := func(a uint64, kRaw uint8) bool {
		const w = 32
		k := uint64(kRaw % 16)
		va := NewValue(a, w)
		vk := NewValue(k, 8)
		back := Shr(Shl(va, vk, w), vk, w)
		want := (a << k & maskFor(w)) >> k
		return back.Uint() == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDisplayWriteNoNewline(t *testing.T) {
	src := `
module tb;
  initial begin
    $write("a");
    $write("b");
    $display("c");
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !strings.Contains(res.Output, "abc\n") {
		t.Errorf("write/display: %q", res.Output)
	}
}

func TestNestedMemoriesAndPartSelectWrite(t *testing.T) {
	src := `
module tb;
  reg [15:0] word;
  initial begin
    word = 16'h0000;
    word[7:0] = 8'hCD;
    word[15:8] = 8'hAB;
    $check_eq(word, 16'hABCD);
    word[3:0] = 4'h7;
    $check_eq(word, 16'hABC7);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("part-select write: err=%v out=%s", err, res.Output)
	}
}

func TestOutOfRangeMemoryWriteIgnored(t *testing.T) {
	// mem[i-1] with i==0 wraps to index 0xFFFFFFFF in 32-bit integer
	// arithmetic — a huge index (>= 2^31) that must be dropped like any
	// other out-of-range write, not truncated back into range (the int32
	// cast in the old guard wrapped it to -1 and panicked the kernel).
	src := `
module tb;
  reg [7:0] mem [0:15];
  integer i;
  initial begin
    mem[0] = 8'h11;
    i = 0;
    mem[i-1] = 8'hAA;
    mem[i-1] <= 8'hBB;
    mem[32'h80000000] = 8'hCC;
    #1 $check_eq(mem[0], 8'h11);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil || !res.Passed() {
		t.Fatalf("out-of-range memory write: err=%v out=%s", err, res.Output)
	}
}

func TestReplicationHugeCountErrors(t *testing.T) {
	// A replication count whose k*width product overflows int must fail
	// with a runtime diagnostic, not spin a 2^58-iteration loop (nor, as
	// the seed did, attempt a makeslice of that length).
	src := `
module tb;
  reg [63:0] v;
  reg [63:0] y;
  initial begin
    v = 64'd1;
    y = {64'h0400000000000000{v}};
    $check_eq(y, 64'd0);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if res.RuntimeErr == nil {
		t.Fatalf("huge replication count did not error; output:\n%s", res.Output)
	}
}

func TestWatcherListsStayBounded(t *testing.T) {
	// rst_n changes once and then holds; every clock cycle re-arms the
	// always block's wait against it. Without the arm-time sweep each
	// re-arm leaked one stale ref into rst_n's watcher list (pruning only
	// happens when a signal changes), growing it by one per cycle.
	src := `
module tb;
  reg clk, rst_n;
  reg [7:0] q;
  integer i;
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 8'd0;
    else q <= q + 8'd1;
  initial begin
    clk = 0; rst_n = 0;
    #1 rst_n = 1;
    for (i = 0; i < 4000; i = i + 1)
      #1 clk = ~clk;
    $check_eq(q, 8'd208);
    $finish;
  end
endmodule`
	cd, err := Compile(src, "tb")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s := NewSimulator(cd.Design, SimOptions{})
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("run failed: rtErr=%v out=%s", res.RuntimeErr, res.Output)
	}
	for id, l := range s.watchers {
		if len(l) > 64 {
			t.Errorf("signal %s watcher list grew to %d refs",
				cd.Design.Signals[id].Name, len(l))
		}
	}
}

func TestLexerInvalidByteIsParseError(t *testing.T) {
	// A 0xFF byte (invalid UTF-8, plausible in LLM-generated source) must
	// surface as a parse error; the byte-indexed operator table used to
	// slice singleOps[0xFF:0x00] and panic.
	if _, err := Parse("module m; \xff endmodule"); err == nil {
		t.Fatal("expected parse error for 0xFF input byte, got nil")
	}
}
