package verilog

import "fmt"

// This file is the Tier A/B superinstruction synthesizer: finish-time
// compilation of hot straight-line bytecode regions into single Go
// closure chains, dispatched by one opSuper opcode (vm.go). Each block
// gets a general variant — an exact replica of the vmRun case
// semantics, including statement-budget charging, the $random draw
// order and every diagnostic text — and, where the analysis proves it
// sound, a two-state variant whose arithmetic and comparison closures
// skip the per-dispatch Unknown-mask branch (Tier B). Closures capture
// only instruction operands and the program's immutable pools, never
// simulator or design state, so programs stay shareable across
// concurrent Simulators and across designs (the bound-body memo pins
// signal shapes; store offsets are still resolved per-run through
// s.design.wordOffset, exactly like the switch cases).

// superFn is one compiled instruction closure. A returned error is
// already line-wrapped (or is errBudget, raw), matching vmRun's fail().
type superFn func(s *Simulator, regs []Value, r *runner, ev *evaluator) error

// superBlock is one synthesized basic-block superinstruction. The
// closures run as a flat slice loop (not a chained call stack), so the
// dispatch cost per covered instruction is one indirect call.
type superBlock struct {
	fns []superFn // general variant (always present)
	two []superFn // two-state variant; nil when the analysis proved nothing
	// gate lists the signals whose loads the two-state analysis relied
	// on: the specialized variant runs only when every gate signal is
	// latched two-state and currently X-free (twoStateGate).
	gate []SignalID
	end  int32 // pc after the block
	n    int32 // live instructions covered (dispatch accounting)
	// head preserves the original first instruction that the opSuper
	// install overwrites. When a commit probe is attached (probe.go) the
	// dispatch loop re-executes the block from this head through the
	// generic switch — interior slots are left in place by synthesis —
	// so every store keeps its exact statement-line attribution.
	head Instr
}

// superFail wraps a diagnostic with the raising instruction's statement
// line in process context, exactly like vmRun's fail().
func superFail(r *runner, line int32, err error) error {
	if r != nil {
		return fmt.Errorf("line %d: %w", line, err)
	}
	return err
}

// twoStateGate decides the Tier B dispatch: every gate signal must be
// latched proven-two-state (the monotone pre-filter) and currently
// X-free (the fall-back check — a latched signal can still return to X,
// e.g. through a division by zero, and then the general variant runs).
func (s *Simulator) twoStateGate(sb *superBlock) bool {
	wo := s.design.wordOffset
	for _, g := range sb.gate {
		if !s.twoState[g] || s.store[wo[g]].Unknown != 0 {
			return false
		}
	}
	return true
}

// superMinLive is the minimum number of live instructions worth a
// closure block. Only hot code fuses at all: loop bodies, always bodies
// and continuous-assign programs (see the loopDepth seeding in
// lowerProcess/lowerContAssign), which all re-run repeatedly. Depth-0
// straight-line code in an initial body executes once per simulation,
// so synthesizing closures for it would cost compile time and
// allocation for no runtime return — fuseBlocks skips it entirely.
// (The threshold also keeps the small continuous-assign programs
// classifyCAFast pattern-matches — 3 to 5 slots, at most 2 live value
// ops before the terminal store — out of reach.)
const superMinLive = 3

// superEligible marks opcodes a block may contain: straight-line value,
// store and system ops. Branches, suspension points, program
// terminators, fallbacks and error ops stay on the generic dispatch —
// so a block has exactly one entry (its head) and one exit (its end),
// and every suspension resume pc in the program lands outside block
// interiors (a resume is pc+1 of an ineligible op, a marked branch
// target, or pc 0).
var superEligible = [256]bool{
	opStep: true, opConst: true, opLoadSig: true, opLoadMem: true,
	opTime: true, opRandom: true, opClog2: true,
	opNot: true, opNeg: true, opLogNot: true, opRedAnd: true,
	opRedOr: true, opRedXor: true, opRedNand: true, opRedNor: true,
	opRedXnor: true,
	opAdd:     true, opSub: true, opMul: true, opDiv: true, opMod: true,
	opAnd: true, opOr: true, opXor: true, opXnor: true, opNand: true,
	opNor: true, opShl: true, opShr: true,
	opEq: true, opNe: true, opCaseEq: true, opCaseNe: true,
	opLt: true, opGt: true, opLe: true, opGe: true,
	opLogAnd: true, opLogOr: true,
	opAddK: true, opSubK: true, opMulK: true, opAndK: true, opOrK: true,
	opXorK: true, opShlK: true, opShrK: true,
	opEqK: true, opNeK: true, opLtK: true, opGtK: true, opLeK: true,
	opGeK:     true,
	opTernEnd: true, opConcatZero: true, opConcatAcc: true,
	opRepCheck: true, opReplicate: true,
	opBitSel: true, opBitSelK: true, opPartSelK: true, opPartSel: true,
	opStoreSig: true, opStoreSigNB: true, opStoreMem: true,
	opStoreMemNB: true, opStoreBit: true, opStoreBitNB: true,
	opStorePartK: true, opStorePartKNB: true, opStorePart: true,
	opStorePartNB: true, opSlice: true, opRepeatInit: true,
	opDisplay: true, opCheck: true, opCheckEq: true,
	opStepConst: true, opStepLoadSig: true, opLoadSig2: true,
	opLoadSigBitK: true, opStepConstStore: true, opStepCopy: true,
	opStepCopyNB: true,
}

// arrayStride is the code-array distance to the next live slot after a
// live instruction at rest: fused opcodes leave their dead partner
// slots in place (see fusePairs), so walking by stride visits exactly
// the live positions.
func arrayStride(op OpCode) int {
	switch op {
	case opStepConst, opStepLoadSig, opLoadSig2, opStoreSigEnd,
		opLoadSigBitK, opBrCmpK:
		return 2
	case opStepConstStore, opStepCopy, opStepCopyNB:
		return 3
	}
	return 1
}

// fuseBlocks is the Tier A pass: after the peephole and the exact-size
// code copy, it discovers maximal straight-line runs of eligible
// instructions whose interiors are free of branch targets, and fuses
// each long-enough run into one closure chain, replacing the head slot
// with opSuper. Interior slots stay in place (dead — opSuper jumps to
// the block end), so no pc moves. Runs a branch target truncated below
// the threshold are counted in nFuseSkip, like the peephole's skips.
func (lw *lowerer) fuseBlocks() {
	code := lw.prog.code
	if len(code) < superMinLive+1 {
		return
	}
	lw.markScratch = resizeBools(lw.markScratch, len(code)+1)
	isTarget := lw.markScratch
	mark := func(t int32) {
		if t >= 0 && int(t) < len(isTarget) {
			isTarget[t] = true
		}
	}
	// Dead slots are scanned too: a stale branch in a fused pair's dead
	// slot marks a target its live fusion also encodes — a harmless,
	// conservative duplicate.
	for i := range code {
		switch code[i].Op {
		case opJump:
			mark(code[i].A)
		case opBranchFalse, opBranchTrue, opWaitArm, opRepeatLoop:
			mark(code[i].B)
		case opTernBranch, opTernMid, opCaseBr, opBrCmpK:
			mark(code[i].C)
		}
	}
	i := 0
	for i < len(code) {
		op := code[i].Op
		if !superEligible[op] {
			i += arrayStride(op)
			continue
		}
		start := i
		live := 0
		truncated := false
		j := i
		for j < len(code) {
			if j > start && isTarget[j] {
				truncated = true
				break
			}
			if !superEligible[code[j].Op] {
				break
			}
			live++
			j += arrayStride(code[j].Op)
		}
		if hot := lw.depths[start] > 0; hot && live >= superMinLive {
			lw.synthBlock(start, j, live)
		} else if hot && truncated && live >= 2 {
			lw.prog.nFuseSkip++
		}
		i = j
	}
}

// synthBlock compiles the live instructions of code[start:end] into a
// superBlock and installs the opSuper head.
func (lw *lowerer) synthBlock(start, end, live int) {
	prog := lw.prog
	code := prog.code
	pcs := lw.pcScratch[:0]
	for i := start; i < end; i += arrayStride(code[i].Op) {
		pcs = append(pcs, i)
	}
	lw.pcScratch = pcs
	maxStack := int32(lw.maxStack)
	// Allocation-free pre-scan: a fused block only beats the dispatch
	// switch when at least one statement template compresses a whole
	// assign into a single call. A block of purely per-op closures is
	// strictly slower than the switch (same work, plus an indirect call
	// per op), so those runs are left as ordinary bytecode.
	nt := 0
	for k := 0; k < len(pcs); {
		if _, used := matchTemplate(code, pcs[k:], maxStack); used > 0 {
			nt++
			k += used
		} else {
			k++
		}
	}
	if nt == 0 {
		return
	}
	var spec []bool
	var gate []SignalID
	anySpec := false
	if enableTwoState {
		spec, gate, anySpec = lw.analyzeTwoState(pcs)
	}
	// The closure emitter walks the live instructions with a statement-
	// template matcher in front: whole assign statements (charge + loads
	// + operator + store) collapse into one closure, so dispatching a
	// fused statement costs a single indirect call instead of one per
	// instruction. Instructions no template covers fall back to one
	// closure each, an exact transcription of their vmRun case.
	fns := make([]superFn, 0, len(pcs))
	var two []superFn
	if anySpec {
		two = make([]superFn, 0, len(pcs))
	}
	for k := 0; k < len(pcs); {
		if fn, sp, specIdx, used := genTemplate(prog, code, pcs[k:], maxStack); used > 0 {
			fns = append(fns, fn)
			if anySpec {
				if sp != nil && spec[k+specIdx] {
					two = append(two, sp)
				} else {
					two = append(two, fn)
				}
			}
			k += used
			continue
		}
		g := genInstr(prog, code[pcs[k]])
		fns = append(fns, g)
		if anySpec {
			if spec[k] {
				two = append(two, genSpec(prog, code[pcs[k]]))
			} else {
				two = append(two, g)
			}
		}
		k++
	}
	sb := superBlock{fns: fns, end: int32(end), n: int32(live), head: code[start]}
	if anySpec {
		sb.two, sb.gate = two, gate
	}
	prog.super = append(prog.super, sb)
	prog.nSuper++
	code[start] = Instr{Op: opSuper, A: int32(len(prog.super) - 1), Line: code[start].Line}
}

// vmBinaryOp/vmUnaryOp classify the operator opcodes the statement
// templates accept (reg-reg binaries, K-binaries, and the pure unary
// set — everything vmBinary/vmUnary implement).
func vmBinaryOp(op OpCode) bool {
	return op >= opAdd && op <= opLogOr
}

func vmBinaryKOp(op OpCode) bool {
	return op >= opAddK && op <= opGeK
}

func vmUnaryOp(op OpCode) bool {
	return op >= opNot && op <= opRedXnor
}

// specBinary is vmBinary with the operand Unknown-mask branches removed:
// callers guarantee (via the two-state gate and the proven-dataflow
// analysis) that both operands are X-free. Division still checks the
// zero divisor — that X source is a value property, not a mask property.
func specBinary(op OpCode, x, y Value) Value {
	switch op {
	case opAdd, opAddK:
		w := max(x.Width, y.Width)
		if w < 64 {
			w++
		}
		return NewValue(x.Bits+y.Bits, w)
	case opSub, opSubK:
		return NewValue(x.Bits-y.Bits, max(x.Width, y.Width))
	case opMul, opMulK:
		w := x.Width + y.Width
		if w > 64 {
			w = 64
		}
		return NewValue(x.Bits*y.Bits, w)
	case opDiv:
		w := max(x.Width, y.Width)
		if y.Bits == 0 {
			return AllX(w)
		}
		return NewValue(x.Bits/y.Bits, w)
	case opMod:
		w := max(x.Width, y.Width)
		if y.Bits == 0 {
			return AllX(w)
		}
		return NewValue(x.Bits%y.Bits, w)
	case opEq, opEqK:
		return cmpBool(x.Bits == y.Bits)
	case opNe, opNeK:
		return cmpBool(x.Bits != y.Bits)
	case opLt, opLtK:
		return cmpBool(x.Bits < y.Bits)
	case opGt, opGtK:
		return cmpBool(y.Bits < x.Bits)
	case opLe, opLeK:
		return cmpBool(!(y.Bits < x.Bits))
	case opGe, opGeK:
		return cmpBool(!(x.Bits < y.Bits))
	}
	return vmBinary(op, x, y) // mask-free ops share the general body
}

// Statement-template kinds recognized by matchTemplate.
const (
	tmplNone = iota
	tmplTU   // opStepLoadSig · unary · store
	tmplTK   // opStepLoadSig · binary-K · store
	tmplTB   // opStepLoadSig · opLoadSig · binary · store
)

// matchTemplate checks whether the head of the remaining live
// instructions is one whole fused-assign statement, without allocating
// anything. Used both by the pre-scan that decides if a run is worth
// fusing at all and by genTemplate to pick the closure shape.
func matchTemplate(code []Instr, pcs []int, maxStack int32) (kind, used int) {
	if len(pcs) < 3 {
		return tmplNone, 0
	}
	i0 := code[pcs[0]]
	if i0.Op != opStepLoadSig || i0.A >= maxStack {
		return tmplNone, 0
	}
	if len(pcs) >= 4 {
		i1, i2, i3 := code[pcs[1]], code[pcs[2]], code[pcs[3]]
		if i1.Op == opLoadSig && i1.A < maxStack &&
			vmBinaryOp(i2.Op) && i2.A == i0.A && i2.B == i1.A &&
			(i3.Op == opStoreSig || i3.Op == opStoreSigNB) && i3.A == i2.A {
			return tmplTB, 4
		}
	}
	i1, i2 := code[pcs[1]], code[pcs[2]]
	if i1.A != i0.A || (i2.Op != opStoreSig && i2.Op != opStoreSigNB) || i2.A != i1.A {
		return tmplNone, 0
	}
	switch {
	case vmUnaryOp(i1.Op):
		return tmplTU, 3
	case vmBinaryKOp(i1.Op):
		return tmplTK, 3
	}
	return tmplNone, 0
}

// genTemplate matches one whole fused-assign statement at the head of
// the remaining live instructions and compiles it to a single closure:
//
//	TU: opStepLoadSig x · unary       · opStoreSig[NB] dst   (3 ops)
//	TK: opStepLoadSig x · binary-K    · opStoreSig[NB] dst   (3 ops)
//	TB: opStepLoadSig x · opLoadSig y · binary · store dst   (4 ops)
//
// These are the post-peephole shapes of `dst (<)= x`, `dst (<)= x op k`
// and `dst (<)= x op y` — the bulk of always-body statements. The
// closure reads the operand signals directly from the store and skips
// the intermediate register writes; that is sound because the matched
// registers are expression-stack slots (guarded < maxStack), which the
// lowering's stack discipline always writes before reading in any later
// statement. specIdx names the operator position in the analysis order;
// the caller swaps in the returned spec closure when the two-state pass
// proved that operator (sp is nil when no specialization exists).
func genTemplate(prog *Program, code []Instr, pcs []int, maxStack int32) (fn, sp superFn, specIdx, used int) {
	kind, n := matchTemplate(code, pcs, maxStack)
	if kind == tmplNone {
		return nil, nil, 0, 0
	}
	used = n
	i0 := code[pcs[0]]
	x := i0.B

	// TB: second load, reg-reg binary, store.
	if kind == tmplTB {
		i1, i2, i3 := code[pcs[1]], code[pcs[2]], code[pcs[3]]
		{
			y, op := i1.B, i2.Op
			dst := SignalID(i3.B)
			w := int(i3.C)
			m := maskFor(w)
			nb := i3.Op == opStoreSigNB
			fn = func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
				s.steps++
				if s.steps > s.opts.MaxSteps {
					return errBudget
				}
				wo := s.design.wordOffset
				v := vmBinary(op, s.store[wo[x]], s.store[wo[y]]).Resize(w)
				if nb {
					s.nba = append(s.nba, nbaUpdate{sig: dst, mask: m, value: v})
				} else {
					s.commitFull(dst, wo[dst], v)
				}
				return nil
			}
			sp = func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
				s.steps++
				if s.steps > s.opts.MaxSteps {
					return errBudget
				}
				wo := s.design.wordOffset
				v := specBinary(op, s.store[wo[x]], s.store[wo[y]]).Resize(w)
				if nb {
					s.nba = append(s.nba, nbaUpdate{sig: dst, mask: m, value: v})
				} else {
					s.commitFull(dst, wo[dst], v)
				}
				return nil
			}
			return fn, sp, 2, 4
		}
	}

	// TU / TK: unary or binary-with-constant, then store.
	i1, i2 := code[pcs[1]], code[pcs[2]]
	dst := SignalID(i2.B)
	w := int(i2.C)
	m := maskFor(w)
	nb := i2.Op == opStoreSigNB
	if kind == tmplTU {
		op := i1.Op
		fn = func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			wo := s.design.wordOffset
			v := vmUnary(op, s.store[wo[x]]).Resize(w)
			if nb {
				s.nba = append(s.nba, nbaUpdate{sig: dst, mask: m, value: v})
			} else {
				s.commitFull(dst, wo[dst], v)
			}
			return nil
		}
		return fn, nil, 0, used
	}
	{ // tmplTK
		op := i1.Op
		k := prog.consts[i1.B]
		fn = func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			wo := s.design.wordOffset
			v := vmBinary(op, s.store[wo[x]], k).Resize(w)
			if nb {
				s.nba = append(s.nba, nbaUpdate{sig: dst, mask: m, value: v})
			} else {
				s.commitFull(dst, wo[dst], v)
			}
			return nil
		}
		sp = func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			wo := s.design.wordOffset
			v := specBinary(op, s.store[wo[x]], k).Resize(w)
			if nb {
				s.nba = append(s.nba, nbaUpdate{sig: dst, mask: m, value: v})
			} else {
				s.commitFull(dst, wo[dst], v)
			}
			return nil
		}
		return fn, sp, 1, used
	}
}

// analyzeTwoState runs the proven-two-state dataflow over a block's
// live instructions. A register is proven when its value provably has
// an empty Unknown mask given that every gate signal is X-free at block
// entry; an instruction is specialized (spec[k]) when it is one of the
// arithmetic/comparison ops whose vmRun case branches on the operand
// Unknown masks and all its inputs are proven. Soundness notes:
//   - Signal loads are proven (and gated) only before the first
//     blocking store in the block: a blocking store triggers the
//     propagation wave, which may rewrite any other signal — possibly
//     to X — behind the entry-time gate check.
//   - Ops that can introduce X from two-state inputs (division by
//     zero, out-of-range selects, memory reads) leave their outputs
//     unproven; their closures are the general ones either way.
//   - The gate is checked per dispatch, so the monotone latch never
//     needs clearing: a gated signal that returned to X simply fails
//     the live Unknown check and the block falls back to the general
//     variant.
func (lw *lowerer) analyzeTwoState(pcs []int) (spec []bool, gate []SignalID, any bool) {
	prog := lw.prog
	code := prog.code
	lw.deadScratch = resizeBools(lw.deadScratch, prog.numRegs)
	proven := lw.deadScratch
	lw.specScratch = resizeBools(lw.specScratch, len(pcs))
	spec = lw.specScratch
	stored := false // a blocking store has executed
	addGate := func(sig int32) {
		id := SignalID(sig)
		for _, g := range gate {
			if g == id {
				return
			}
		}
		gate = append(gate, id)
	}
	kKnown := func(b int32) bool { return prog.consts[b].Unknown == 0 }
	for k, pc := range pcs {
		ins := &code[pc]
		switch ins.Op {
		case opStep, opDisplay, opCheck, opCheckEq, opRepCheck:
			// No register outputs.
		case opConst:
			proven[ins.A] = kKnown(ins.B)
		case opStepConst:
			proven[ins.A] = kKnown(ins.B)
		case opLoadSig, opStepLoadSig:
			proven[ins.A] = !stored
			if !stored {
				addGate(ins.B)
			}
		case opLoadSig2:
			proven[ins.A] = !stored
			proven[ins.C] = !stored
			if !stored {
				addGate(ins.B)
				addGate(ins.D)
			}
		case opLoadSigBitK:
			// The signal width is pinned by the bound-body memo's
			// scope-equality, so the range check resolves statically.
			w := lw.d.Signals[ins.B].Width
			in := int(ins.C) >= 0 && int(ins.C) < w
			proven[ins.A] = in && !stored
			if in && !stored {
				addGate(ins.B)
			}
		case opLoadMem, opBitSel, opBitSelK, opTernEnd:
			proven[ins.A] = false
		case opTime, opRandom, opConcatZero:
			proven[ins.A] = true
		case opClog2:
			// in-place: proven iff input proven
		case opNot, opNeg, opLogNot, opRedAnd, opRedOr, opRedXor,
			opRedNand, opRedNor, opRedXnor:
			// in-place unary: known input -> known output
		case opAdd, opSub, opMul, opEq, opNe, opLt, opGt, opLe, opGe:
			ok := proven[ins.A] && proven[ins.B]
			spec[k] = ok
			proven[ins.A] = ok
		case opDiv, opMod:
			spec[k] = proven[ins.A] && proven[ins.B]
			proven[ins.A] = false // division by zero yields X
		case opAnd, opOr, opXor, opXnor, opNand, opNor, opShl, opShr,
			opLogAnd, opLogOr:
			proven[ins.A] = proven[ins.A] && proven[ins.B]
		case opCaseEq, opCaseNe:
			proven[ins.A] = true // === never yields X
		case opAddK, opSubK, opMulK, opEqK, opNeK, opLtK, opGtK,
			opLeK, opGeK:
			ok := proven[ins.A] && kKnown(ins.B)
			spec[k] = ok
			proven[ins.A] = ok
		case opAndK, opOrK, opXorK, opShlK, opShrK:
			proven[ins.A] = proven[ins.A] && kKnown(ins.B)
		case opConcatAcc:
			proven[ins.A] = proven[ins.A] && proven[ins.B]
		case opReplicate:
			proven[ins.A] = proven[ins.B] && proven[ins.C]
		case opPartSelK:
			// in-place shift+mask: provenness preserved
		case opPartSel:
			proven[ins.A] = proven[ins.A] && proven[ins.B] && proven[ins.C]
		case opSlice:
			proven[ins.A] = proven[ins.B]
		case opRepeatInit:
			proven[ins.B] = true // counter slot holds bits only
		case opStoreSig, opStoreMem, opStoreBit, opStorePartK,
			opStorePart, opStepConstStore, opStepCopy:
			stored = true // the wave may rewrite any signal behind the gate
		case opStoreSigNB, opStoreMemNB, opStoreBitNB, opStorePartKNB,
			opStorePartNB, opStepCopyNB:
			// NBA stores defer: the store is untouched until the NBA
			// region, so later loads in this block are unaffected.
		}
		any = any || spec[k]
	}
	if !any {
		return nil, nil, false
	}
	return spec, gate, true
}

// genInstr compiles one instruction into its general closure — an exact
// replica of the corresponding vmRun case. Keep the bodies in sync with
// vm.go (the fused-vs-unfused property test cross-checks them).
func genInstr(prog *Program, ins Instr) superFn {
	a, b, c, d, line := ins.A, ins.B, ins.C, ins.D, ins.Line
	switch ins.Op {
	case opStep:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			return nil
		}
	case opConst:
		k := prog.consts[b]
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = k
			return nil
		}
	case opLoadSig:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = s.store[s.design.wordOffset[b]]
			return nil
		}
	case opLoadMem:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			sig := s.design.Signals[b]
			idx := regs[c]
			if !idx.IsFullyKnown() {
				regs[a] = AllX(sig.Width)
			} else if w := int(idx.Uint()); w < 0 || w >= sig.Words {
				regs[a] = AllX(sig.Width)
			} else {
				regs[a] = s.words(sig.ID)[w]
			}
			return nil
		}
	case opTime:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = NewValue(s.now, 64)
			return nil
		}
	case opRandom:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = NewValue(s.random()&0xFFFFFFFF, 32)
			return nil
		}
	case opClog2:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			v := regs[a]
			if !v.IsFullyKnown() {
				regs[a] = AllX(32)
			} else {
				x := v.Uint()
				n := 0
				for n < 64 && (uint64(1)<<uint(n)) < x {
					n++
				}
				regs[a] = NewValue(uint64(n), 32)
			}
			return nil
		}

	// --- unary ----------------------------------------------------------
	case opNot:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x := regs[a]
			regs[a] = Not(x, x.Width)
			return nil
		}
	case opNeg:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x := regs[a]
			regs[a] = Sub(NewValue(0, x.Width), x, x.Width)
			return nil
		}
	case opLogNot, opRedAnd, opRedOr, opRedXor, opRedNand, opRedNor, opRedXnor:
		op := ins.Op
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = vmUnary(op, regs[a])
			return nil
		}

	// --- binary ---------------------------------------------------------
	case opAdd, opSub, opMul, opDiv, opMod, opAnd, opOr, opXor, opXnor,
		opNand, opNor, opShl, opShr, opEq, opNe, opCaseEq, opCaseNe,
		opLt, opGt, opLe, opGe, opLogAnd, opLogOr:
		op := ins.Op
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = vmBinary(op, regs[a], regs[b])
			return nil
		}
	case opAddK, opSubK, opMulK, opAndK, opOrK, opXorK, opShlK, opShrK,
		opEqK, opNeK, opLtK, opGtK, opLeK, opGeK:
		op := ins.Op
		k := prog.consts[b]
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = vmBinary(op, regs[a], k)
			return nil
		}

	// --- compound expressions -------------------------------------------
	case opTernEnd:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			if regs[b].Bits == 2 {
				regs[a] = AllX(max(regs[a].Width, regs[c].Width))
			} else {
				regs[a] = regs[c]
			}
			return nil
		}
	case opConcatZero:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = Value{}
			return nil
		}
	case opConcatAcc:
		cc := prog.fbExprs[c].(*Concat)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			v := regs[b]
			out := regs[a]
			if out.Width+v.Width > 64 {
				return superFail(r, line, fmt.Errorf("verilog: concatenation width %d exceeds 64", concatWidth(ev, cc)))
			}
			m := maskFor(v.Width)
			out.Bits = out.Bits<<uint(v.Width) | v.Bits&m
			out.Unknown = out.Unknown<<uint(v.Width) | v.Unknown&m
			out.Width += v.Width
			regs[a] = out
			return nil
		}
	case opRepCheck:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			if !regs[a].IsFullyKnown() {
				return superFail(r, line, fmt.Errorf("replication count is unknown"))
			}
			return nil
		}
	case opReplicate:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			cnt := regs[b]
			x := regs[c]
			k := int(cnt.Uint())
			if k <= 0 || x.Width <= 0 || k > 64/x.Width {
				return superFail(r, line, fmt.Errorf("replication {%d{...}} of width %d unsupported", k, x.Width))
			}
			m := maskFor(x.Width)
			var out Value
			for i := 0; i < k; i++ {
				out.Bits = out.Bits<<uint(x.Width) | x.Bits&m
				out.Unknown = out.Unknown<<uint(x.Width) | x.Unknown&m
				out.Width += x.Width
			}
			regs[a] = out
			return nil
		}
	case opBitSel:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x, idx := regs[a], regs[b]
			if !idx.IsFullyKnown() {
				regs[a] = AllX(1)
			} else if i := int(idx.Uint()); i < 0 || i >= x.Width {
				regs[a] = AllX(1)
			} else {
				regs[a] = x.Bit(i)
			}
			return nil
		}
	case opBitSelK:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x := regs[a]
			if i := int(c); i < 0 || i >= x.Width {
				regs[a] = AllX(1)
			} else {
				regs[a] = x.Bit(i)
			}
			return nil
		}
	case opPartSelK:
		w := int(d)
		m := maskFor(w)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x := regs[a]
			regs[a] = Value{
				Bits:    (x.Bits >> uint(c)) & m,
				Unknown: (x.Unknown >> uint(c)) & m,
				Width:   w,
			}
			return nil
		}
	case opPartSel:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			msbV, lsbV := regs[b], regs[c]
			if !msbV.IsFullyKnown() || !lsbV.IsFullyKnown() {
				return superFail(r, line, fmt.Errorf("part-select bounds are unknown at line %d", d))
			}
			msb, lsb := int(msbV.Uint()), int(lsbV.Uint())
			if msb < lsb || msb-lsb+1 > 64 {
				return superFail(r, line, fmt.Errorf("bad part-select [%d:%d] at line %d", msb, lsb, d))
			}
			x := regs[a]
			w := msb - lsb + 1
			m := maskFor(w)
			regs[a] = Value{
				Bits:    (x.Bits >> uint(lsb)) & m,
				Unknown: (x.Unknown >> uint(lsb)) & m,
				Width:   w,
			}
			return nil
		}

	// --- stores ---------------------------------------------------------
	case opStoreSig:
		sig := SignalID(b)
		w := int(c)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.commitFull(sig, s.design.wordOffset[sig], regs[a].Resize(w))
			return nil
		}
	case opStoreSigNB:
		sig := SignalID(b)
		w := int(c)
		m := maskFor(w)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.nba = append(s.nba, nbaUpdate{sig: sig, mask: m, value: regs[a].Resize(w)})
			return nil
		}
	case opStoreMem, opStoreMemNB:
		nb := ins.Op == opStoreMemNB
		sig := SignalID(b)
		w := int(d)
		m := maskFor(w)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			idx := regs[c]
			if idx.IsFullyKnown() {
				i := int(idx.Uint())
				v := regs[a].Resize(w)
				if nb {
					s.nba = append(s.nba, nbaUpdate{sig: sig, word: i, mask: m, value: v})
				} else {
					s.commitWrite(sig, i, m, v)
				}
			}
			return nil
		}
	case opStoreBit, opStoreBitNB:
		nb := ins.Op == opStoreBitNB
		sig := SignalID(b)
		w := int(d)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			idx := regs[c]
			if idx.IsFullyKnown() {
				i := int(idx.Uint())
				if i >= 0 && i < w {
					v := regs[a]
					shifted := Value{Bits: (v.Bits & 1) << uint(i), Unknown: (v.Unknown & 1) << uint(i), Width: w}
					if nb {
						s.nba = append(s.nba, nbaUpdate{sig: sig, mask: uint64(1) << uint(i), value: shifted})
					} else {
						s.commitWrite(sig, 0, uint64(1)<<uint(i), shifted)
					}
				}
			}
			return nil
		}
	case opStorePartK, opStorePartKNB:
		nb := ins.Op == opStorePartKNB
		lsb, w := int(c), int(d)
		m := maskFor(w)
		mask := m << uint(lsb)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			sig := s.design.Signals[b]
			v := regs[a]
			shifted := Value{
				Bits:    (v.Bits & m) << uint(lsb),
				Unknown: (v.Unknown & m) << uint(lsb),
				Width:   sig.Width,
			}
			if nb {
				s.nba = append(s.nba, nbaUpdate{sig: sig.ID, mask: mask, value: shifted})
			} else {
				s.commitWrite(sig.ID, 0, mask, shifted)
			}
			return nil
		}
	case opStorePart, opStorePartNB:
		nb := ins.Op == opStorePartNB
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			msb, lsb := int(regs[c].Uint()), int(regs[d].Uint())
			sig := s.design.Signals[b]
			if msb < lsb || lsb < 0 || msb >= sig.Width {
				return superFail(r, line, fmt.Errorf("part-select [%d:%d] out of range for %q", msb, lsb, sig.Name))
			}
			w := msb - lsb + 1
			v := regs[a]
			mask := maskFor(w) << uint(lsb)
			shifted := Value{
				Bits:    (v.Bits & maskFor(w)) << uint(lsb),
				Unknown: (v.Unknown & maskFor(w)) << uint(lsb),
				Width:   sig.Width,
			}
			if nb {
				s.nba = append(s.nba, nbaUpdate{sig: sig.ID, mask: mask, value: shifted})
			} else {
				s.commitWrite(sig.ID, 0, mask, shifted)
			}
			return nil
		}
	case opSlice:
		w := int(d)
		m := maskFor(w)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			src := regs[b]
			regs[a] = Value{
				Bits:    (src.Bits >> uint(c)) & m,
				Unknown: (src.Unknown >> uint(c)) & m,
				Width:   w,
			}
			return nil
		}
	case opRepeatInit:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			cnt := regs[a]
			if !cnt.IsFullyKnown() {
				return superFail(r, line, fmt.Errorf("repeat count is unknown"))
			}
			regs[b] = Value{Bits: cnt.Uint()}
			return nil
		}

	// --- system tasks ---------------------------------------------------
	case opDisplay:
		dd := &prog.disp[a]
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			r.renderDisplay(dd, regs)
			return nil
		}
	case opCheck:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.checks++
			if !regs[a].IsTrue() {
				s.failures++
				if s.out.Len() < maxSimOutput {
					buf := appendCheckFailed(r.scratch[:0], s.now, line)
					buf = append(buf, '\n')
					s.out.Write(buf)
					r.scratch = buf[:0]
				}
			}
			return nil
		}
	case opCheckEq:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x, y := regs[a], regs[b]
			s.checks++
			w := max(x.Width, y.Width)
			ra, rb := x.Resize(w), y.Resize(w)
			if !ra.Equal(rb) {
				s.failures++
				if s.out.Len() < maxSimOutput {
					buf := appendCheckFailed(r.scratch[:0], s.now, line)
					buf = append(buf, ": got "...)
					buf = ra.appendString(buf)
					buf = append(buf, ", want "...)
					buf = rb.appendString(buf)
					buf = append(buf, '\n')
					s.out.Write(buf)
					r.scratch = buf[:0]
				}
			}
			return nil
		}

	// --- peephole fusions -----------------------------------------------
	case opStepConst:
		k := prog.consts[b]
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			regs[a] = k
			return nil
		}
	case opStepLoadSig:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			regs[a] = s.store[s.design.wordOffset[b]]
			return nil
		}
	case opLoadSig2:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			wo := s.design.wordOffset
			regs[a] = s.store[wo[b]]
			regs[c] = s.store[wo[d]]
			return nil
		}
	case opLoadSigBitK:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x := s.store[s.design.wordOffset[b]]
			if i := int(c); i < 0 || i >= x.Width {
				regs[a] = AllX(1)
			} else {
				regs[a] = x.Bit(i)
			}
			return nil
		}
	case opStepConstStore:
		sig := SignalID(b)
		k := prog.consts[a]
		w := int(c)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			s.commitFull(sig, s.design.wordOffset[sig], k.Resize(w))
			return nil
		}
	case opStepCopy:
		src := SignalID(a)
		sig := SignalID(b)
		w := int(c)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			v := s.store[s.design.wordOffset[src]]
			s.commitFull(sig, s.design.wordOffset[sig], v.Resize(w))
			return nil
		}
	case opStepCopyNB:
		src := SignalID(a)
		sig := SignalID(b)
		w := int(c)
		m := maskFor(w)
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return errBudget
			}
			v := s.store[s.design.wordOffset[src]]
			s.nba = append(s.nba, nbaUpdate{sig: sig, mask: m, value: v.Resize(w)})
			return nil
		}
	}
	// Unreachable: superEligible and this switch cover the same set.
	panic(fmt.Sprintf("verilog: no closure generator for opcode %d", ins.Op))
}

// genSpec compiles the Tier B specialized closure for an instruction
// the analysis proved two-state: identical arithmetic with the operand
// Unknown-mask branch removed. Only the ops analyzeTwoState marks spec
// reach here.
func genSpec(prog *Program, ins Instr) superFn {
	a, b := ins.A, ins.B
	op := ins.Op
	var k Value
	switch op {
	case opAddK, opSubK, opMulK, opEqK, opNeK, opLtK, opGtK, opLeK, opGeK:
		k = prog.consts[b]
	}
	switch op {
	case opAdd, opAddK:
		if op == opAdd {
			return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
				x, y := regs[a], regs[b]
				w := max(x.Width, y.Width)
				if w < 64 {
					w++
				}
				regs[a] = NewValue(x.Bits+y.Bits, w)
				return nil
			}
		}
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x := regs[a]
			w := max(x.Width, k.Width)
			if w < 64 {
				w++
			}
			regs[a] = NewValue(x.Bits+k.Bits, w)
			return nil
		}
	case opSub, opSubK:
		if op == opSub {
			return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
				x, y := regs[a], regs[b]
				regs[a] = NewValue(x.Bits-y.Bits, max(x.Width, y.Width))
				return nil
			}
		}
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x := regs[a]
			regs[a] = NewValue(x.Bits-k.Bits, max(x.Width, k.Width))
			return nil
		}
	case opMul, opMulK:
		if op == opMul {
			return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
				x, y := regs[a], regs[b]
				w := x.Width + y.Width
				if w > 64 {
					w = 64
				}
				regs[a] = NewValue(x.Bits*y.Bits, w)
				return nil
			}
		}
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x := regs[a]
			w := x.Width + k.Width
			if w > 64 {
				w = 64
			}
			regs[a] = NewValue(x.Bits*k.Bits, w)
			return nil
		}
	case opDiv:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x, y := regs[a], regs[b]
			w := max(x.Width, y.Width)
			if y.Bits == 0 {
				regs[a] = AllX(w)
			} else {
				regs[a] = NewValue(x.Bits/y.Bits, w)
			}
			return nil
		}
	case opMod:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			x, y := regs[a], regs[b]
			w := max(x.Width, y.Width)
			if y.Bits == 0 {
				regs[a] = AllX(w)
			} else {
				regs[a] = NewValue(x.Bits%y.Bits, w)
			}
			return nil
		}
	case opEq:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(regs[a].Bits == regs[b].Bits)
			return nil
		}
	case opNe:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(regs[a].Bits != regs[b].Bits)
			return nil
		}
	case opLt:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(regs[a].Bits < regs[b].Bits)
			return nil
		}
	case opGt:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(regs[b].Bits < regs[a].Bits)
			return nil
		}
	case opLe:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(!(regs[b].Bits < regs[a].Bits))
			return nil
		}
	case opGe:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(!(regs[a].Bits < regs[b].Bits))
			return nil
		}
	case opEqK:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(regs[a].Bits == k.Bits)
			return nil
		}
	case opNeK:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(regs[a].Bits != k.Bits)
			return nil
		}
	case opLtK:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(regs[a].Bits < k.Bits)
			return nil
		}
	case opGtK:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(k.Bits < regs[a].Bits)
			return nil
		}
	case opLeK:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(!(k.Bits < regs[a].Bits))
			return nil
		}
	case opGeK:
		return func(s *Simulator, regs []Value, r *runner, ev *evaluator) error {
			regs[a] = cmpBool(!(regs[a].Bits < k.Bits))
			return nil
		}
	}
	panic(fmt.Sprintf("verilog: no specialized generator for opcode %d", op))
}
