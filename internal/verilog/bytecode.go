package verilog

import (
	"fmt"
	"sync"
)

// This file is the compile side of the bytecode execution engine: it
// lowers every bound process body (statements and expressions) and every
// continuous assignment into a flat []Instr program over a register-based
// VM (vm.go). The lowering runs once per design at the end of
// elaboration, so the AST becomes a compile-time-only structure on the
// hot path — the simulator executes integer opcodes whose operands
// (SignalIDs, register slots, constant-pool indices, branch targets) were
// all resolved here.
//
// Semantics are pinned to the PR 3 tree-walking kernel bit-for-bit (the
// golden fixture suite in testdata/kernel_golden.json): the lowering
// reproduces its statement-budget charging points (one opStep per
// statement entry, exactly where the old runner charged a continuation
// push), its evaluation and side-effect order (a $random inside an
// untaken ternary branch still never draws), and its diagnostics
// byte-for-byte. Constructs that are rare and semantically fiddly
// (concat lvalues with dynamically-sized parts, $error/$fatal whose
// argument failures are swallowed into a placeholder message) lower to
// fallback opcodes that run the retained tree evaluator for that one
// statement, so the VM never approximates.

// OpCode selects one VM instruction.
type OpCode uint8

// The instruction set. Operand conventions are noted per opcode; A..D
// are int32 operands, Line is the enclosing statement's source line used
// to wrap runtime diagnostics ("line %d: %w") exactly like the tree
// kernel did.
const (
	opInvalid OpCode = iota

	// -- control flow ---------------------------------------------------
	opStep        // charge one statement against the shared step budget
	opJump        // pc = A
	opBranchFalse // if !regs[A].IsTrue() { pc = B }
	opBranchTrue  // if regs[A].IsTrue() { pc = B }
	opEnd         // program complete (initial body / continuous assign)
	opAlwaysWait  // always body complete: re-arm process sensitivity, pc=0
	opFinish      // $finish / $stop
	opError       // raise errs[B]; A==1 means final (never line-wrapped)
	opCaseBr      // if caseMatch(regs[A], regs[B], casez=D!=0) { pc = C }

	// -- loads ----------------------------------------------------------
	opConst   // regs[A] = consts[B]
	opLoadSig // regs[A] = current value of single-word signal B
	opLoadMem // regs[A] = word regs[C] of memory B (AllX when bad index)
	opTime    // regs[A] = $time (64-bit)
	opRandom  // regs[A] = $random (32-bit), advances the RNG
	opClog2   // regs[A] = $clog2(regs[A])

	// -- unary: regs[A] = op(regs[A]) ------------------------------------
	opNot
	opNeg
	opLogNot
	opRedAnd
	opRedOr
	opRedXor
	opRedNand
	opRedNor
	opRedXnor

	// -- binary: regs[A] = regs[A] op regs[B] ----------------------------
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opAnd
	opOr
	opXor
	opXnor
	opNand
	opNor
	opShl
	opShr
	opEq
	opNe
	opCaseEq
	opCaseNe
	opLt
	opGt
	opLe
	opGe
	opLogAnd
	opLogOr

	// -- binary with constant RHS: regs[A] = regs[A] op consts[B] --------
	// Testbench arithmetic is dominated by literal right operands
	// (i + 1, i < 1000, x & 8'hF); fusing the constant into the operator
	// saves a dispatch and a register round-trip per operation.
	opAddK
	opSubK
	opMulK
	opAndK
	opOrK
	opXorK
	opShlK
	opShrK
	opEqK
	opNeK
	opLtK
	opGtK
	opLeK
	opGeK

	// -- compound expressions -------------------------------------------
	opTernBranch // mode(regs[A]) -> slot B (0/1/2); if mode==0 { pc = C }
	opTernMid    // if slot B == 1 { pc = C } (then-value already in A)
	opTernEnd    // regs[A] = slot B == 2 ? AllX(max widths of A, C) : regs[C]
	opConcatZero // regs[A] = empty accumulator
	opConcatAcc  // regs[A] = regs[A] << width(regs[B]) | regs[B]; fbExprs[C] diagnoses overflow
	opRepCheck   // regs[A] (a replication count) must be fully known
	opReplicate  // regs[A] = {regs[B]{regs[C]}}
	opBitSel     // regs[A] = regs[A] bit-selected by regs[B]
	opBitSelK    // regs[A] = bit C of regs[A] (constant index)
	opPartSelK   // regs[A] = regs[A][C+D-1 : C] (constant bounds, width D)
	opPartSel    // regs[A] = regs[A][regs[B]:regs[C]], D = expr line

	// -- stores (NB variants defer to the non-blocking region) -----------
	opStoreSig // signal B (width C) = regs[A]
	opStoreSigNB
	opStoreMem // memory B word regs[C] (width D) = regs[A]
	opStoreMemNB
	opStoreBit // signal B (width D) bit regs[C] = regs[A]
	opStoreBitNB
	opStorePartK // signal B [C+D-1 : C] (width D) = regs[A]
	opStorePartKNB
	opStorePart // signal B [regs[C]:regs[D]] = regs[A]
	opStorePartNB
	opSlice // regs[A] = width-D slice of regs[B] >> C (concat lvalue split)

	// -- suspension points and loops ------------------------------------
	opDelay      // suspend for regs[A] time units; resume at pc+1
	opWaitEvent  // arm sens[A]; resume at pc+1
	opWaitArm    // arm sens[A]; resume at B (re-test a wait() condition)
	opRepeatInit // slot B = repeat count regs[A] (must be fully known)
	opRepeatLoop // if slot A == 0 { pc = B } else { slot A--; pc++ }

	// -- system tasks ----------------------------------------------------
	opDisplay // render disp[A] from registers into the sim output
	opCheck   // $check(regs[A]) at Line
	opCheckEq // $check_eq(regs[A], regs[B]) at Line

	// -- exact-semantics fallbacks ---------------------------------------
	opFallbackStmt // tree-execute fbStmts[A] (Assign or SysCall)
	opFallbackExpr // regs[A] = tree-eval of fbExprs[B]

	// -- peephole fusions (finish-time; see fusePairs) -------------------
	// Each replaces an adjacent pair without shifting pcs: the fused op
	// performs both effects and advances past its dead partner slot.
	opStepConst   // opStep + opConst
	opStepLoadSig // opStep + opLoadSig
	opLoadSig2    // opLoadSig A<-B + opLoadSig C<-D
	opStoreSigEnd // opStoreSig + opEnd (continuous-assign tail)
	opBrCmpK      // cmp-with-const (kind D) + opBranchFalse to C
	opLoadSigBitK // opLoadSig + opBitSelK: regs[A] = bit C of signal B

	// Second-order fusions (pass 2; advance pc by 3 — their own fused
	// pair slot plus the store slot):
	opStepConstStore // opStepConst + opStoreSig: charge; signal B (width C) = consts[A]
	opStepCopy       // opStepLoadSig + opStoreSig: charge; signal B (width C) = signal A
	opStepCopyNB     // opStepLoadSig + opStoreSigNB

	// -- Tier A superinstructions (finish-time; see super.go) ------------
	opSuper // run closure chain super[A]; on success pc = super[A].end
)

// cmp kinds for opBrCmpK (stored in D).
const (
	cmpLt = iota
	cmpGt
	cmpLe
	cmpGe
	cmpEq
	cmpNe
)

// Instr is one VM instruction. Operand meaning is per-opcode (see the
// OpCode table); Line carries the enclosing statement's source line so
// runtime diagnostics wrap identically to the tree kernel.
type Instr struct {
	Op         OpCode
	A, B, C, D int32
	Line       int32
}

// dispSeg is one segment of a compiled $display: a literal byte run
// (reg < 0, verb 0), the enclosing process name (%m, verb 'm'), or a
// value register rendered under a verb ('d', 'h', 'b', 'o', 'c').
type dispSeg struct {
	lit  string
	reg  int32
	verb byte
}

// dispDesc is a fully compiled $display/$write/$strobe/$monitor call:
// the format string was parsed once at lowering, so the runtime only
// renders registers and copies literals.
type dispDesc struct {
	segs  []dispSeg
	noEOL bool // $write: no trailing newline
}

// Program is the executable form of one process body or continuous
// assignment: flat code plus the pools its instructions index into.
// Programs are immutable after lowering and safe to share across
// concurrent Simulators (and, via the bound-body memo, across designs
// that bind a body identically).
type Program struct {
	code    []Instr
	consts  []Value
	errs    []error
	sens    [][]resolvedSens
	disp    []dispDesc
	fbStmts []Stmt
	fbExprs []Expr

	// numRegs is the register-file size the program needs: the deepest
	// expression-stack slot plus every persistent slot (repeat counters,
	// ternary mode cells).
	numRegs int
	// hasTiming records whether the body contains a delay/event/wait —
	// the activation-time legality check for sensitivity-free always
	// blocks, precomputed here instead of re-walking the AST per run.
	hasTiming bool

	// super is the Tier A closure pool: each opSuper instruction indexes
	// one synthesized basic-block closure chain (see super.go). Closures
	// capture only the program's immutable pools and instruction
	// operands — never simulator or design state — so programs stay
	// shareable across concurrent Simulators and across designs.
	super []superBlock
	// nSuper/nFuseSkip are static fusion stats for VMStats: blocks
	// synthesized, and fusion candidates dropped at branch-target
	// boundaries (previously silent truncation).
	nSuper    int32
	nFuseSkip int32
}

// slotRef marks an operand that holds a persistent-slot index and must
// be rebased past the expression stack once its final size is known.
type slotRef struct {
	pc    int
	field uint8 // 'A' or 'B'
}

// lowerer builds one Program. Its scratch buffers (code, consts, slots)
// are pooled and reused across lowerings — finish() copies exact-size
// slices into the Program — so batch compiles of many candidate designs
// do not churn the allocator with slice-growth garbage.
type lowerer struct {
	d    *Design
	sc   scope
	prog *Program

	code   []Instr // scratch; trimmed into prog.code by finish
	consts []Value // scratch; deduplicated linearly, trimmed by finish

	// Display-lowering scratch: literal segments intern into litIntern
	// (testbenches repeat the same few literals thousands of times) and
	// segment lists build in segScratch before one exact-size copy.
	litIntern  map[string]string
	segScratch []dispSeg

	maxStack int
	nslots   int
	slots    []slotRef

	// depths records the static loop depth of each emitted instruction
	// (parallel to code; fusePairs rewrites in place, so positions never
	// shift). fuseBlocks uses it as the profile guide: code inside loops
	// — or in an always body, which re-runs per wake — is hot and fuses
	// at a lower block-length threshold.
	depths    []int8
	loopDepth int8

	// markScratch/deadScratch are pooled bool buffers for the fusion
	// passes (branch-target marks and dead-slot flags).
	markScratch []bool
	deadScratch []bool
	// pcScratch/specScratch are pooled buffers for superinstruction
	// synthesis (fuseBlocks): live pc collection and the per-instruction
	// two-state specialization verdicts.
	pcScratch   []int
	specScratch []bool

	// line is the source line of the statement currently being lowered;
	// expression-level error ops inherit it so runtime wrapping matches
	// the tree kernel's per-statement "line %d: %w".
	line int32

	// procedural is true for process bodies (reg-only write legality)
	// and false for continuous assignments.
	procedural bool
}

// lowererPool recycles lowerer scratch across programs and designs.
var lowererPool = sync.Pool{New: func() any { return &lowerer{} }}

// getLowerer readies a pooled lowerer for one program.
func getLowerer(d *Design, sc scope, procedural bool) *lowerer {
	lw := lowererPool.Get().(*lowerer)
	lw.d, lw.sc, lw.procedural = d, sc, procedural
	lw.prog = &Program{}
	lw.code = lw.code[:0]
	lw.consts = lw.consts[:0]
	lw.slots = lw.slots[:0]
	lw.depths = lw.depths[:0]
	lw.maxStack, lw.nslots, lw.line, lw.loopDepth = 0, 0, 0, 0
	if lw.litIntern == nil {
		lw.litIntern = map[string]string{}
	}
	return lw
}

// internLit returns a canonical string for a literal byte run.
func (lw *lowerer) internLit(b []byte) string {
	if s, ok := lw.litIntern[string(b)]; ok {
		return s
	}
	s := string(b)
	lw.litIntern[s] = s
	return s
}

// putLowerer returns scratch to the pool; the built Program keeps no
// reference to it. The literal-intern memo survives across programs so
// the handful of ubiquitous literals stay warm, but it resets once it
// grows past a bound — candidate sources can carry arbitrarily many
// distinct format strings, and a pooled map must not retain them all.
func putLowerer(lw *lowerer) {
	if len(lw.litIntern) > 256 {
		lw.litIntern = map[string]string{}
	}
	lw.d, lw.sc, lw.prog = nil, nil, nil
	lowererPool.Put(lw)
}

// lowerProcess lowers a bound process body into a Program. kind/star/
// hasSens describe the owning process flavor, which fixes the program
// tail: initial bodies end, sensitivity-driven always bodies re-arm
// (opAlwaysWait), and timing-controlled always bodies jump back to their
// first budget charge.
func lowerProcess(body Stmt, sc scope, d *Design, kind procKind, star bool, hasSens bool) *Program {
	lw := getLowerer(d, sc, true)
	defer putLowerer(lw)
	lw.prog.hasTiming = containsTiming(body)
	if kind != procInitial {
		// An always body re-runs on every wake: its whole code is hot,
		// so block fusion uses the in-loop threshold (see fuseBlocks).
		lw.loopDepth = 1
	}
	lw.stmt(body)
	switch {
	case kind == procInitial:
		lw.emit(opEnd, 0, 0, 0, 0, 0)
	case star || hasSens:
		lw.emit(opAlwaysWait, 0, 0, 0, 0, 0)
	default:
		lw.emit(opJump, 0, 0, 0, 0, 0)
	}
	lw.finish()
	return lw.prog
}

// lowerContAssign lowers one continuous assignment (RHS evaluation plus
// the wire-legality store) into a Program with no statement charges. It
// returns nil for the rare shapes whose tree semantics are cheaper to
// keep than to replicate (concat lvalues with dynamically-sized parts);
// the simulator then falls back to the retained tree evaluator.
func lowerContAssign(ca *contAssign, d *Design) *Program {
	lw := getLowerer(d, ca.scope, false)
	defer putLowerer(lw)
	if cc, ok := ca.lhs.(*Concat); ok && !lw.staticConcatLHS(cc) {
		return nil
	}
	// A continuous assign re-runs on every input change: hot, like an
	// always body, for block-fusion purposes.
	lw.loopDepth = 1
	lw.expr(ca.rhs, 0)
	lw.write(ca.lhs, 0, false, int32(ca.line))
	lw.emit(opEnd, 0, 0, 0, 0, 0)
	lw.finish()
	return lw.prog
}

// finish rebases persistent-slot operands past the expression stack and
// copies the scratch buffers into exact-size program slices.
func (lw *lowerer) finish() {
	for _, ref := range lw.slots {
		ins := &lw.code[ref.pc]
		switch ref.field {
		case 'A':
			ins.A += int32(lw.maxStack)
		case 'B':
			ins.B += int32(lw.maxStack)
		}
	}
	lw.fusePairs()
	lw.prog.code = append(make([]Instr, 0, len(lw.code)), lw.code...)
	if len(lw.consts) > 0 {
		lw.prog.consts = append(make([]Value, 0, len(lw.consts)), lw.consts...)
	}
	lw.prog.numRegs = lw.maxStack + lw.nslots
	if enableSuper {
		lw.fuseBlocks()
	}
}

// resizeBools readies a pooled bool buffer of length n, cleared.
func resizeBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// brCmpKinds maps a constant-RHS comparison opcode to its opBrCmpK kind.
var brCmpKinds = map[OpCode]int32{
	opLtK: cmpLt, opGtK: cmpGt, opLeK: cmpLe, opGeK: cmpGe,
	opEqK: cmpEq, opNeK: cmpNe,
}

// fusePairs is the finish-time peephole: it rewrites the hottest
// adjacent instruction pairs into single fused opcodes. The second slot
// of a fused pair stays in place (so no branch target moves) but is
// never executed — the fused op advances the pc by two. A pair is only
// fused when its second slot is not a branch target; suspension resumes
// (always pc+1 of the suspending op, or an explicit operand) can only
// enter at pair starts, so they need no special casing.
func (lw *lowerer) fusePairs() {
	if !enableFusion {
		return
	}
	code := lw.code
	if len(code) < 2 {
		return
	}
	lw.markScratch = resizeBools(lw.markScratch, len(code)+1)
	isTarget := lw.markScratch
	mark := func(t int32) {
		if t >= 0 && int(t) < len(isTarget) {
			isTarget[t] = true
		}
	}
	for i := range code {
		switch code[i].Op {
		case opJump:
			mark(code[i].A)
		case opBranchFalse, opBranchTrue, opWaitArm, opRepeatLoop:
			mark(code[i].B)
		case opTernBranch, opTernMid, opCaseBr:
			mark(code[i].C)
		}
	}
	lw.deadScratch = resizeBools(lw.deadScratch, len(code))
	dead := lw.deadScratch
	for i := 0; i+1 < len(code); i++ {
		if isTarget[i+1] {
			if pairFusible(&code[i], &code[i+1]) {
				lw.prog.nFuseSkip++
			}
			continue
		}
		a, b := &code[i], &code[i+1]
		switch {
		case a.Op == opStep && b.Op == opConst:
			*a = Instr{Op: opStepConst, A: b.A, B: b.B, Line: a.Line}
			dead[i+1] = true
			i++
		case a.Op == opStep && b.Op == opLoadSig:
			*a = Instr{Op: opStepLoadSig, A: b.A, B: b.B, Line: a.Line}
			dead[i+1] = true
			i++
		case a.Op == opLoadSig && b.Op == opLoadSig:
			*a = Instr{Op: opLoadSig2, A: a.A, B: a.B, C: b.A, D: b.B, Line: a.Line}
			dead[i+1] = true
			i++
		case a.Op == opLoadSig && b.Op == opBitSelK && b.A == a.A:
			*a = Instr{Op: opLoadSigBitK, A: a.A, B: a.B, C: b.C, Line: a.Line}
			dead[i+1] = true
			i++
		case a.Op == opStoreSig && b.Op == opEnd:
			a.Op = opStoreSigEnd
			dead[i+1] = true
			i++
		default:
			if kind, ok := brCmpKinds[a.Op]; ok && b.Op == opBranchFalse && b.A == a.A {
				// The comparison's register is dead past the branch in
				// every lowering that emits this shape (condition regs
				// are scratch), so the fused op skips the write.
				*a = Instr{Op: opBrCmpK, A: a.A, B: a.B, C: b.B, D: kind, Line: a.Line}
				dead[i+1] = true
				i++
			}
		}
	}
	// Pass 2: whole-statement fusions over the live sequence — a fused
	// statement head (pc stride 2) followed by its store (one more live
	// slot, not a branch target). The RHS register is dead past the
	// store by construction, so the fused op never materializes it.
	for i := 0; i+2 < len(code); i++ {
		if dead[i] || dead[i+2] {
			continue
		}
		if isTarget[i+1] || isTarget[i+2] {
			if stmtFusible(&code[i], &code[i+2]) {
				lw.prog.nFuseSkip++
			}
			continue
		}
		a, b := &code[i], &code[i+2]
		switch {
		case a.Op == opStepConst && b.Op == opStoreSig && b.A == a.A:
			*a = Instr{Op: opStepConstStore, A: a.B, B: b.B, C: b.C, Line: a.Line}
			dead[i+2] = true
		case a.Op == opStepLoadSig && b.Op == opStoreSig && b.A == a.A:
			*a = Instr{Op: opStepCopy, A: a.B, B: b.B, C: b.C, Line: a.Line}
			dead[i+2] = true
		case a.Op == opStepLoadSig && b.Op == opStoreSigNB && b.A == a.A:
			*a = Instr{Op: opStepCopyNB, A: a.B, B: b.B, C: b.C, Line: a.Line}
			dead[i+2] = true
		}
	}
}

// pairFusible reports whether a pass-1 pair pattern matches — used only
// to count candidates a branch target blocked (VMStats.FuseSkipped).
// Keep the conditions in sync with the fusePairs pass-1 switch.
func pairFusible(a, b *Instr) bool {
	switch {
	case a.Op == opStep && (b.Op == opConst || b.Op == opLoadSig):
		return true
	case a.Op == opLoadSig && (b.Op == opLoadSig || b.Op == opBitSelK && b.A == a.A):
		return true
	case a.Op == opStoreSig && b.Op == opEnd:
		return true
	}
	if _, ok := brCmpKinds[a.Op]; ok {
		return b.Op == opBranchFalse && b.A == a.A
	}
	return false
}

// stmtFusible is pairFusible's pass-2 counterpart.
func stmtFusible(a, b *Instr) bool {
	switch a.Op {
	case opStepConst:
		return b.Op == opStoreSig && b.A == a.A
	case opStepLoadSig:
		return (b.Op == opStoreSig || b.Op == opStoreSigNB) && b.A == a.A
	}
	return false
}

func (lw *lowerer) emit(op OpCode, a, b, c, d, line int32) int {
	lw.code = append(lw.code, Instr{Op: op, A: a, B: b, C: c, D: d, Line: line})
	lw.depths = append(lw.depths, lw.loopDepth)
	return len(lw.code) - 1
}

func (lw *lowerer) here() int { return len(lw.code) }

// use records that the expression stack reaches slot dst.
func (lw *lowerer) use(dst int32) {
	if int(dst)+1 > lw.maxStack {
		lw.maxStack = int(dst) + 1
	}
}

// newSlot allocates one persistent register slot (loop counter, ternary
// mode cell), stores its index into the given operand, and records the
// operand for rebasing.
func (lw *lowerer) newSlot(pc int, field uint8) int32 {
	s := int32(lw.nslots)
	lw.nslots++
	lw.refSlot(pc, field, s)
	return s
}

// refSlot stores an already-allocated slot index into an operand and
// records it for rebasing.
func (lw *lowerer) refSlot(pc int, field uint8, s int32) {
	switch field {
	case 'A':
		lw.code[pc].A = s
	case 'B':
		lw.code[pc].B = s
	}
	lw.slots = append(lw.slots, slotRef{pc: pc, field: field})
}

// constant interns v into the constant pool. Pools are small (a handful
// of literals per statement-rich body), so a linear scan beats a map —
// no per-program map allocation, no hashing.
func (lw *lowerer) constant(v Value) int32 {
	for i, c := range lw.consts {
		if c == v {
			return int32(i)
		}
	}
	lw.consts = append(lw.consts, v)
	return int32(len(lw.consts) - 1)
}

// emitErr emits a raw error instruction: the VM wraps it with the
// enclosing statement's line at raise time ("line %d: %w"), exactly the
// wrap the tree kernel applied.
func (lw *lowerer) emitErr(format string, args ...any) {
	lw.prog.errs = append(lw.prog.errs, fmt.Errorf(format, args...))
	lw.emit(opError, 0, int32(len(lw.prog.errs)-1), 0, 0, lw.line)
}

// emitErrFinal emits a pre-formatted diagnostic that must not be
// wrapped again (it already carries its position, or never had one).
func (lw *lowerer) emitErrFinal(format string, args ...any) {
	lw.prog.errs = append(lw.prog.errs, fmt.Errorf(format, args...))
	lw.emit(opError, 1, int32(len(lw.prog.errs)-1), 0, 0, lw.line)
}

// fallbackStmt emits an exact-semantics tree execution of one statement.
func (lw *lowerer) fallbackStmt(st Stmt) {
	lw.prog.fbStmts = append(lw.prog.fbStmts, st)
	lw.emit(opFallbackStmt, int32(len(lw.prog.fbStmts)-1), 0, 0, 0, lw.line)
}

// --- statement lowering --------------------------------------------------

// stmt lowers one statement. Every lowered statement begins with an
// opStep so the shared statement budget is charged at exactly the points
// the tree kernel charged its continuation-stack pushes.
func (lw *lowerer) stmt(st Stmt) {
	switch n := st.(type) {
	case nil, *NullStmt:
		lw.emit(opStep, 0, 0, 0, 0, 0)

	case *Block:
		lw.emit(opStep, 0, 0, 0, 0, 0)
		for _, c := range n.Stmts {
			lw.stmt(c)
		}

	case *Assign:
		lw.line = int32(n.Line)
		lw.emit(opStep, 0, 0, 0, 0, lw.line)
		// Concat lvalues with dynamically-sized parts re-evaluate their
		// part widths twice in the tree kernel (lvalueWidth, then write);
		// keep that exact — including the double side effects it implies —
		// by running the whole statement through the tree path.
		if cc, ok := n.LHS.(*Concat); ok && !lw.staticConcatLHS(cc) {
			lw.fallbackStmt(n)
			return
		}
		lw.expr(n.RHS, 0)
		lw.write(n.LHS, 0, n.NonBlocking, lw.line)

	case *IfStmt:
		lw.line = int32(n.Line)
		line := lw.line
		lw.emit(opStep, 0, 0, 0, 0, line)
		lw.expr(n.Cond, 0)
		br := lw.emit(opBranchFalse, 0, 0, 0, 0, line)
		lw.stmt(n.Then)
		if n.Else == nil {
			lw.code[br].B = int32(lw.here())
			return
		}
		j := lw.emit(opJump, 0, 0, 0, 0, line)
		lw.code[br].B = int32(lw.here())
		lw.stmt(n.Else)
		lw.code[j].A = int32(lw.here())

	case *CaseStmt:
		lw.lowerCase(n)

	case *ForStmt:
		line := int32(n.Line)
		lw.emit(opStep, 0, 0, 0, 0, line)
		lw.stmt(n.Init)
		lw.line = line
		lw.loopDepth++ // test, body and step all re-run per iteration
		test := lw.here()
		lw.expr(n.Cond, 0)
		br := lw.emit(opBranchFalse, 0, 0, 0, 0, line)
		lw.stmt(n.Body)
		lw.stmt(n.Step)
		lw.emit(opJump, int32(test), 0, 0, 0, line)
		lw.loopDepth--
		lw.code[br].B = int32(lw.here())

	case *WhileStmt:
		lw.line = int32(n.Line)
		line := lw.line
		lw.emit(opStep, 0, 0, 0, 0, line)
		lw.loopDepth++
		test := lw.here()
		lw.expr(n.Cond, 0)
		br := lw.emit(opBranchFalse, 0, 0, 0, 0, line)
		lw.stmt(n.Body)
		lw.line = line
		lw.emit(opJump, int32(test), 0, 0, 0, line)
		lw.loopDepth--
		lw.code[br].B = int32(lw.here())

	case *RepeatStmt:
		lw.line = int32(n.Line)
		line := lw.line
		lw.emit(opStep, 0, 0, 0, 0, line)
		lw.expr(n.Count, 0)
		init := lw.emit(opRepeatInit, 0, 0, 0, 0, line)
		slot := lw.newSlot(init, 'B')
		lw.loopDepth++
		loop := lw.emit(opRepeatLoop, 0, 0, 0, 0, line)
		lw.refSlot(loop, 'A', slot)
		lw.stmt(n.Body)
		lw.emit(opJump, int32(loop), 0, 0, 0, line)
		lw.loopDepth--
		lw.code[loop].B = int32(lw.here())

	case *ForeverStmt:
		lw.line = int32(n.Line)
		line := lw.line
		lw.emit(opStep, 0, 0, 0, 0, line)
		if !containsTiming(n.Body) {
			lw.emitErrFinal("line %d: forever loop without timing control", n.Line)
			return
		}
		lw.loopDepth++
		top := lw.here()
		lw.stmt(n.Body)
		lw.emit(opJump, int32(top), 0, 0, 0, line)
		lw.loopDepth--

	case *DelayStmt:
		lw.line = int32(n.Line)
		line := lw.line
		lw.emit(opStep, 0, 0, 0, 0, line)
		lw.expr(n.Amount, 0)
		lw.emit(opDelay, 0, 0, 0, 0, line)
		if n.Body != nil {
			lw.stmt(n.Body)
		}

	case *EventStmt:
		lw.line = int32(n.Line)
		line := lw.line
		lw.emit(opStep, 0, 0, 0, 0, line)
		if n.Star {
			lw.emitErrFinal("line %d: statement-level @(*) is not supported", n.Line)
			return
		}
		sens, err := resolveSensIn(lw.sc, n.Sens)
		if err != nil {
			lw.emitErr("%s", err.Error())
			return
		}
		lw.prog.sens = append(lw.prog.sens, sens)
		lw.emit(opWaitEvent, int32(len(lw.prog.sens)-1), 0, 0, 0, line)
		if n.Body != nil {
			lw.stmt(n.Body)
		}

	case *WaitStmt:
		lw.line = int32(n.Line)
		line := lw.line
		lw.emit(opStep, 0, 0, 0, 0, line)
		test := lw.here()
		lw.expr(n.Cond, 0)
		br := lw.emit(opBranchTrue, 0, 0, 0, 0, line)
		reads := readSet(n.Cond, lw.sc, nil)
		if len(reads) == 0 {
			lw.emitErr("wait condition reads no signals")
		} else {
			sens := make([]resolvedSens, 0, len(reads))
			for _, sg := range reads {
				sens = append(sens, resolvedSens{sig: sg, edge: EdgeAny})
			}
			lw.prog.sens = append(lw.prog.sens, sens)
			lw.emit(opWaitArm, int32(len(lw.prog.sens)-1), int32(test), 0, 0, line)
		}
		lw.code[br].B = int32(lw.here())

	case *SysCall:
		lw.lowerSysCall(n)

	default:
		lw.emit(opStep, 0, 0, 0, 0, 0)
		lw.emitErrFinal("unsupported statement %T", st)
	}
}

// lowerCase lowers case/casez: subject in reg 0, each non-default item's
// labels evaluated in source order into reg 1, first match jumps to its
// body. Bodies are emitted after the scan, each ending in a jump past
// the statement — the same order the tree kernel evaluated and matched.
func (lw *lowerer) lowerCase(n *CaseStmt) {
	lw.line = int32(n.Line)
	line := lw.line
	lw.emit(opStep, 0, 0, 0, 0, line)
	lw.expr(n.Subject, 0)
	casez := int32(0)
	if n.IsCasez {
		casez = 1
	}
	type arm struct {
		brs  []int // opCaseBr indices to patch to the body
		body Stmt
	}
	var arms []arm
	var deflt *CaseItem
	for i := range n.Items {
		item := &n.Items[i]
		if item.IsDefault {
			deflt = item
			continue
		}
		a := arm{body: item.Body}
		for _, le := range item.Exprs {
			lw.line = line
			lw.expr(le, 1)
			a.brs = append(a.brs, lw.emit(opCaseBr, 0, 1, 0, casez, line))
		}
		arms = append(arms, a)
	}
	// No label matched: fall through to the default body (emitted inline
	// below) or past the statement.
	fallthroughJump := lw.emit(opJump, 0, 0, 0, 0, line)
	var endJumps []int
	if deflt != nil {
		lw.code[fallthroughJump].A = int32(lw.here())
		lw.stmt(deflt.Body)
		endJumps = append(endJumps, lw.emit(opJump, 0, 0, 0, 0, line))
	} else {
		endJumps = append(endJumps, fallthroughJump)
	}
	for _, a := range arms {
		target := int32(lw.here())
		for _, br := range a.brs {
			lw.code[br].C = target
		}
		lw.stmt(a.body)
		endJumps = append(endJumps, lw.emit(opJump, 0, 0, 0, 0, line))
	}
	end := int32(lw.here())
	for _, j := range endJumps {
		lw.code[j].A = end
	}
}

// resolveSensIn binds a sensitivity list against a scope; shared by the
// lowering pass (statement-level @ controls) and runner activation.
func resolveSensIn(sc scope, items []SensItem) ([]resolvedSens, error) {
	out := make([]resolvedSens, 0, len(items))
	for _, it := range items {
		ent, ok := sc[it.Signal]
		if !ok || ent.isParam {
			return nil, fmt.Errorf("verilog: sensitivity references unknown signal %q", it.Signal)
		}
		out = append(out, resolvedSens{sig: ent.sig, edge: it.Edge})
	}
	return out, nil
}

// --- assignment lowering -------------------------------------------------

// staticConcatLHS reports whether every part of a concat lvalue has a
// compile-time-known width (signals, bit selects, memory words, constant
// part selects, and nests of those).
func (lw *lowerer) staticConcatLHS(cc *Concat) bool {
	for _, p := range cc.Parts {
		switch n := p.(type) {
		case *boundRef:
		case *Index:
			if _, ok := n.X.(*boundRef); !ok {
				return false
			}
		case *PartSelect:
			if _, ok := n.X.(*boundRef); !ok {
				return false
			}
			if _, _, ok := lw.constBounds(n); !ok {
				return false
			}
		case *Concat:
			if !lw.staticConcatLHS(n) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// constBounds extracts compile-time part-select bounds.
func (lw *lowerer) constBounds(n *PartSelect) (msb, lsb int, ok bool) {
	mv, ok1 := constOf(n.MSB)
	lv, ok2 := constOf(n.LSB)
	if !ok1 || !ok2 || !mv.IsFullyKnown() || !lv.IsFullyKnown() {
		return 0, 0, false
	}
	return int(mv.Uint()), int(lv.Uint()), true
}

// constOf returns the compile-time constant value of an expression, if
// it is one (literal or bound parameter).
func constOf(ex Expr) (Value, bool) {
	switch n := ex.(type) {
	case *Number:
		return n.Val, true
	case *boundParam:
		return n.val, true
	}
	return Value{}, false
}

// write lowers a store of regs[val] into lhs. Legality (reg vs wire) and
// structural errors are decided here; the emitted error ops sit exactly
// where the tree kernel raised them — after the RHS (and any index
// sub-expressions evaluated before the failure), so side effects match.
func (lw *lowerer) write(lhs Expr, val int32, nonBlocking bool, line int32) {
	pick := func(blocking, non OpCode) OpCode {
		if nonBlocking {
			return non
		}
		return blocking
	}
	switch n := lhs.(type) {
	case *boundRef:
		sig := lw.d.Signals[n.sig]
		if !lw.checkLegal(sig) {
			return
		}
		if sig.Words > 1 {
			lw.emitErr("memory %q assigned without an index", sig.Name)
			return
		}
		lw.emit(pick(opStoreSig, opStoreSigNB), val, int32(sig.ID), int32(sig.Width), 0, line)

	case *boundParam:
		lw.emitErr("%q is a parameter, not a signal", n.name)

	case *Ident:
		// Unresolved at bind time under the same scope the runtime would
		// use, so the runtime lookup is guaranteed to fail the same way.
		lw.emitErr("unknown identifier %q", n.Name)

	case *Index:
		ref, ok := n.X.(*boundRef)
		if !ok {
			lw.lowerBadTarget(n.X)
			return
		}
		sig := lw.d.Signals[ref.sig]
		if !lw.checkLegal(sig) {
			return
		}
		lw.expr(n.Idx, val+1)
		if sig.Words > 1 {
			lw.emit(pick(opStoreMem, opStoreMemNB), val, int32(sig.ID), val+1, int32(sig.Width), line)
			return
		}
		lw.emit(pick(opStoreBit, opStoreBitNB), val, int32(sig.ID), val+1, int32(sig.Width), line)

	case *PartSelect:
		ref, ok := n.X.(*boundRef)
		if !ok {
			lw.lowerBadTarget(n.X)
			return
		}
		sig := lw.d.Signals[ref.sig]
		if !lw.checkLegal(sig) {
			return
		}
		if msb, lsb, ok := lw.constBounds(n); ok {
			if msb < lsb || lsb < 0 || msb >= sig.Width {
				lw.emitErr("part-select [%d:%d] out of range for %q", msb, lsb, sig.Name)
				return
			}
			lw.emit(pick(opStorePartK, opStorePartKNB), val, int32(sig.ID), int32(lsb), int32(msb-lsb+1), line)
			return
		}
		lw.expr(n.MSB, val+1)
		lw.expr(n.LSB, val+2)
		lw.emit(pick(opStorePart, opStorePartNB), val, int32(sig.ID), val+1, val+2, line)

	case *Concat:
		// Static widths only (callers diverted dynamic shapes to the tree
		// path): split regs[val] MSB-first and store each slice.
		total, ok := lw.concatWidthStatic(n)
		if !ok {
			lw.emitErr("invalid lvalue %T", lhs)
			return
		}
		lw.lowerConcatStores(n, val, total, nonBlocking, line)

	default:
		lw.emitErr("invalid assignment target %T", lhs)
	}
}

// lowerBadTarget reproduces resolveSignal's diagnostics for an indexed /
// part-selected store whose base is not a plain signal.
func (lw *lowerer) lowerBadTarget(x Expr) {
	switch n := x.(type) {
	case *boundParam:
		lw.emitErr("%q is a parameter, not a signal", n.name)
	case *Ident:
		lw.emitErr("unknown identifier %q", n.Name)
	default:
		lw.emitErr("expected signal reference, got %T", x)
	}
}

// checkLegal emits the reg/wire legality diagnostic; it reports whether
// the store may proceed.
func (lw *lowerer) checkLegal(sig *Signal) bool {
	if lw.procedural && !sig.IsReg {
		lw.emitErr("procedural assignment to wire %q (declare it reg)", sig.Name)
		return false
	}
	if !lw.procedural && sig.IsReg {
		lw.emitErr("continuous assignment to reg %q (declare it wire)", sig.Name)
		return false
	}
	return true
}

// concatWidthStatic sums the static widths of a concat lvalue.
func (lw *lowerer) concatWidthStatic(cc *Concat) (int, bool) {
	total := 0
	for _, p := range cc.Parts {
		w, ok := lw.partWidthStatic(p)
		if !ok {
			return 0, false
		}
		total += w
	}
	return total, true
}

// partWidthStatic is the static width of one concat-lvalue part.
func (lw *lowerer) partWidthStatic(p Expr) (int, bool) {
	switch n := p.(type) {
	case *boundRef:
		return lw.d.Signals[n.sig].Width, true
	case *Index:
		ref, ok := n.X.(*boundRef)
		if !ok {
			return 0, false
		}
		if sig := lw.d.Signals[ref.sig]; sig.Words > 1 {
			return sig.Width, true
		}
		return 1, true
	case *PartSelect:
		msb, lsb, ok := lw.constBounds(n)
		if !ok {
			return 0, false
		}
		return msb - lsb + 1, true
	case *Concat:
		return lw.concatWidthStatic(n)
	}
	return 0, false
}

// lowerConcatStores emits the MSB-first slice/store sequence for a
// static concat lvalue.
func (lw *lowerer) lowerConcatStores(cc *Concat, val int32, total int, nonBlocking bool, line int32) {
	shift := total
	for _, p := range cc.Parts {
		w, _ := lw.partWidthStatic(p)
		shift -= w
		lw.use(val + 1)
		lw.emit(opSlice, val+1, val, int32(shift), int32(w), line)
		if sub, ok := p.(*Concat); ok {
			lw.lowerConcatStores(sub, val+1, w, nonBlocking, line)
		} else {
			lw.write(p, val+1, nonBlocking, line)
		}
	}
}

// --- system task lowering ------------------------------------------------

func (lw *lowerer) lowerSysCall(n *SysCall) {
	lw.line = int32(n.Line)
	line := lw.line
	lw.emit(opStep, 0, 0, 0, 0, line)
	switch n.Name {
	case "$display", "$write", "$strobe", "$monitor":
		lw.lowerDisplay(n)

	case "$finish", "$stop":
		lw.emit(opFinish, 0, 0, 0, 0, line)

	case "$error", "$fatal":
		// Argument evaluation failures are swallowed into a placeholder
		// message instead of killing the run; the tree path is the only
		// executor with that error topology, so keep it.
		lw.fallbackStmt(n)

	case "$check_eq":
		if len(n.Args) < 2 {
			lw.emitErrFinal("line %d: $check_eq needs (actual, expected)", n.Line)
			return
		}
		lw.expr(n.Args[0], 0)
		lw.expr(n.Args[1], 1)
		lw.emit(opCheckEq, 0, 1, 0, 0, line)

	case "$check":
		if len(n.Args) < 1 {
			lw.emitErrFinal("line %d: $check needs a condition", n.Line)
			return
		}
		lw.expr(n.Args[0], 0)
		lw.emit(opCheck, 0, 0, 0, 0, line)

	case "$dumpfile", "$dumpvars", "$timeformat", "$readmemh", "$readmemb":
		// Accepted and ignored by the subset: the opStep above is the
		// whole statement.

	default:
		lw.emitErrFinal("line %d: unsupported system task %s", n.Line, n.Name)
	}
}

// lowerDisplay compiles a $display-family call: arguments that verbs
// consume are evaluated into consecutive registers in source order, the
// format string is parsed once here, and a single opDisplay renders the
// segment list at runtime. Calls whose format/argument pairing the tree
// kernel would reject lower to the evaluations-then-error sequence it
// produced (registers evaluated up to the failing verb, then the exact
// diagnostic); arguments no verb consumes are never evaluated, exactly
// like the tree kernel's lazy nextVal.
func (lw *lowerer) lowerDisplay(n *SysCall) {
	line := lw.line
	desc := dispDesc{noEOL: n.Name == "$write"}
	lw.segScratch = lw.segScratch[:0]
	emitDesc := func() {
		if len(lw.segScratch) > 0 {
			desc.segs = append(make([]dispSeg, 0, len(lw.segScratch)), lw.segScratch...)
		}
		lw.prog.disp = append(lw.prog.disp, desc)
		lw.emit(opDisplay, int32(len(lw.prog.disp)-1), 0, 0, 0, line)
	}
	seg := func(s dispSeg) { lw.segScratch = append(lw.segScratch, s) }
	if len(n.Args) == 0 {
		emitDesc()
		return
	}
	nextReg := int32(0)
	evalArg := func(a Expr) int32 {
		r := nextReg
		lw.expr(a, r)
		nextReg++
		return r
	}

	first, isFmt := n.Args[0].(*StringLit)
	if !isFmt {
		// Space-separated decimal style.
		for i, a := range n.Args {
			if i > 0 {
				seg(dispSeg{lit: " ", reg: -1})
			}
			if sl, ok := a.(*StringLit); ok {
				seg(dispSeg{lit: sl.Text, reg: -1})
				continue
			}
			seg(dispSeg{reg: evalArg(a), verb: 'd'})
		}
		emitDesc()
		return
	}

	// Format-string style: mirror formatString's scan exactly.
	format := first.Text
	args := n.Args[1:]
	ai := 0
	var lit []byte
	flushLit := func() {
		if len(lit) > 0 {
			seg(dispSeg{lit: lw.internLit(lit), reg: -1})
			lit = lit[:0]
		}
	}
	// nextValReg mirrors nextVal: evaluate the next argument, or lower
	// the exact runtime diagnostic when the pairing is invalid. ok=false
	// means the statement already ended in an error op.
	nextValReg := func() (int32, bool) {
		if ai >= len(args) {
			lw.emitErr("format string %q has more verbs than arguments", format)
			return 0, false
		}
		a := args[ai]
		ai++
		if _, isStr := a.(*StringLit); isStr {
			lw.emitErr("string argument where value expected in %q", format)
			return 0, false
		}
		return evalArg(a), true
	}
	valSeg := func(verb byte) bool {
		r, ok := nextValReg()
		if !ok {
			return false
		}
		flushLit()
		seg(dispSeg{reg: r, verb: verb})
		return true
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			lit = append(lit, c)
			continue
		}
		i++
		if i >= len(format) {
			lit = append(lit, '%')
			break
		}
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i >= len(format) {
			break
		}
		switch f := format[i]; f {
		case '%':
			lit = append(lit, '%')
		case 'd', 'D', 't', 'T':
			if !valSeg('d') {
				return
			}
		case 'h', 'H', 'x', 'X':
			if !valSeg('h') {
				return
			}
		case 'b', 'B':
			if !valSeg('b') {
				return
			}
		case 'o', 'O':
			if !valSeg('o') {
				return
			}
		case 'c':
			if !valSeg('c') {
				return
			}
		case 's':
			if ai < len(args) {
				if sl, ok := args[ai].(*StringLit); ok {
					ai++
					lit = append(lit, sl.Text...)
					break
				}
			}
			if !valSeg('d') {
				return
			}
		case 'm':
			flushLit()
			seg(dispSeg{reg: -1, verb: 'm'})
		default:
			lit = append(lit, '%', f)
		}
	}
	flushLit()
	emitDesc()
}

// classifyCAFastAST recognizes fast continuous-assign shapes straight
// off the bound AST, before (and instead of) lowering: a plain signal
// lvalue whose RHS is a signal, a constant, one mapped operator over
// signals, or an operator with a constant right operand. Only fully
// legal shapes classify — anything that must raise a diagnostic (reg
// lvalue, memory without index, unknown name) falls through to the
// compiled/tree path so the error text and position stay exact.
func classifyCAFastAST(ca *contAssign, d *Design) (caFast, bool) {
	lhs, ok := ca.lhs.(*boundRef)
	if !ok {
		return caFast{}, false
	}
	dst := d.Signals[lhs.sig]
	if dst.Words != 1 || dst.IsReg {
		return caFast{}, false
	}
	sigOf := func(ex Expr) (SignalID, bool) {
		ref, ok := ex.(*boundRef)
		if !ok {
			return 0, false
		}
		if d.Signals[ref.sig].Words != 1 {
			return 0, false
		}
		return ref.sig, true
	}
	out := caFast{dst: dst.ID, dstWidth: dst.Width}
	switch rhs := ca.rhs.(type) {
	case *boundRef:
		src, ok := sigOf(rhs)
		if !ok {
			return caFast{}, false
		}
		out.kind, out.a = caFastCopy, src
		return out, true
	case *Number:
		out.kind, out.k = caFastConst, rhs.Val
		return out, true
	case *boundParam:
		out.kind, out.k = caFastConst, rhs.val
		return out, true
	case *Unary:
		op, ok := unaryOps[rhs.Op]
		if !ok {
			return caFast{}, false
		}
		src, ok := sigOf(rhs.X)
		if !ok {
			return caFast{}, false
		}
		out.kind, out.op, out.a = caFastUn, op, src
		return out, true
	case *Binary:
		op, ok := binaryOps[rhs.Op]
		if !ok {
			return caFast{}, false
		}
		a, ok := sigOf(rhs.X)
		if !ok {
			return caFast{}, false
		}
		if k, isConst := constOf(rhs.Y); isConst {
			out.kind, out.op, out.a, out.k = caFastBinK, op, a, k
			return out, true
		}
		b, ok := sigOf(rhs.Y)
		if !ok {
			return caFast{}, false
		}
		out.kind, out.op, out.a, out.b = caFastBin, op, a, b
		return out, true
	}
	return caFast{}, false
}

// classifyCAFast recognizes the continuous-assign program shapes the
// simulator short-circuits (see caFast). The shapes are matched on the
// post-fusion code exactly, so a recognized assign computes precisely
// what its program would have.
func classifyCAFast(p *Program) caFast {
	if p == nil {
		return caFast{}
	}
	code := p.code
	switch len(code) {
	case 3: // opLoadSig, opStoreSigEnd, dead opEnd
		if code[0].Op == opLoadSig && code[0].A == 0 && code[1].Op == opStoreSigEnd && code[1].A == 0 {
			return caFast{kind: caFastCopy, a: SignalID(code[0].B),
				dst: SignalID(code[1].B), dstWidth: int(code[1].C)}
		}
	case 4: // fused load/compute, dead slot, opStoreSigEnd, dead opEnd
		if code[0].Op == opLoadSigBitK && code[0].A == 0 && code[2].Op == opStoreSigEnd && code[2].A == 0 {
			return caFast{kind: caFastBitK, a: SignalID(code[0].B),
				k: Value{Bits: uint64(uint32(code[0].C))}, dst: SignalID(code[2].B), dstWidth: int(code[2].C)}
		}
		if code[0].Op == opLoadSig && code[0].A == 0 && code[2].Op == opStoreSigEnd && code[2].A == 0 {
			mid := code[1]
			if mid.A != 0 {
				break
			}
			if mid.Op >= opNot && mid.Op <= opRedXnor {
				return caFast{kind: caFastUn, op: mid.Op, a: SignalID(code[0].B),
					dst: SignalID(code[2].B), dstWidth: int(code[2].C)}
			}
			if mid.Op >= opAddK && mid.Op <= opGeK {
				return caFast{kind: caFastBinK, op: mid.Op, a: SignalID(code[0].B),
					k: p.consts[mid.B], dst: SignalID(code[2].B), dstWidth: int(code[2].C)}
			}
		}
	case 5: // opLoadSig2, dead, binary, opStoreSigEnd, dead opEnd
		if code[0].Op == opLoadSig2 && code[0].A == 0 && code[0].C == 1 &&
			code[2].Op >= opAdd && code[2].Op <= opLogOr && code[2].A == 0 && code[2].B == 1 &&
			code[3].Op == opStoreSigEnd && code[3].A == 0 {
			return caFast{kind: caFastBin, op: code[2].Op, a: SignalID(code[0].B),
				b: SignalID(code[0].D), dst: SignalID(code[3].B), dstWidth: int(code[3].C)}
		}
	}
	return caFast{}
}

// --- expression lowering -------------------------------------------------

// unaryOps maps operator text to opcodes.
var unaryOps = map[string]OpCode{
	"~": opNot, "!": opLogNot, "-": opNeg,
	"&": opRedAnd, "|": opRedOr, "^": opRedXor,
	"~&": opRedNand, "~|": opRedNor, "~^": opRedXnor, "^~": opRedXnor,
}

var binaryOps = map[string]OpCode{
	"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "%": opMod,
	"&": opAnd, "|": opOr, "^": opXor, "~^": opXnor, "^~": opXnor,
	"~&": opNand, "~|": opNor,
	"<<": opShl, "<<<": opShl, ">>": opShr, ">>>": opShr,
	"==": opEq, "!=": opNe, "===": opCaseEq, "!==": opCaseNe,
	"<": opLt, ">": opGt, "<=": opLe, ">=": opGe,
	"&&": opLogAnd, "||": opLogOr,
}

// constFusedOps maps a plain binary opcode to its constant-RHS variant.
var constFusedOps = map[OpCode]OpCode{
	opAdd: opAddK, opSub: opSubK, opMul: opMulK,
	opAnd: opAndK, opOr: opOrK, opXor: opXorK,
	opShl: opShlK, opShr: opShrK,
	opEq: opEqK, opNe: opNeK,
	opLt: opLtK, opGt: opGtK, opLe: opLeK, opGe: opGeK,
}

// expr lowers ex so its value lands in regs[dst]; scratch uses dst+1 and
// above, so values already parked below dst stay live.
func (lw *lowerer) expr(ex Expr, dst int32) {
	lw.use(dst)
	// Constant folding: literal/parameter operator trees evaluate once,
	// here — the new elaboration-time role of the tree evaluator's
	// arithmetic. Folding never crosses constructs with runtime effects.
	if v, ok := lw.foldConst(ex); ok {
		lw.emit(opConst, dst, lw.constant(v), 0, 0, lw.line)
		return
	}
	switch n := ex.(type) {
	case *Number:
		lw.emit(opConst, dst, lw.constant(n.Val), 0, 0, lw.line)

	case *boundParam:
		lw.emit(opConst, dst, lw.constant(n.val), 0, 0, lw.line)

	case *boundRef:
		sig := lw.d.Signals[n.sig]
		if sig.Words > 1 {
			lw.emitErr("memory %q used without an index at line %d", n.name, n.line)
			return
		}
		lw.emit(opLoadSig, dst, int32(sig.ID), 0, 0, lw.line)

	case *Ident:
		lw.emitErr("unknown identifier %q at line %d", n.Name, n.Line)

	case *StringLit:
		lw.emitErr("string literal %q used in value context", n.Text)

	case *Unary:
		op, ok := unaryOps[n.Op]
		if !ok {
			lw.emitErr("verilog: unsupported unary operator %q", n.Op)
			return
		}
		lw.expr(n.X, dst)
		lw.emit(op, dst, 0, 0, 0, lw.line)

	case *Binary:
		op, ok := binaryOps[n.Op]
		if !ok {
			lw.emitErr("verilog: unsupported binary operator %q", n.Op)
			return
		}
		lw.expr(n.X, dst)
		if kop, fusible := constFusedOps[op]; fusible {
			if y, isConst := lw.foldConst(n.Y); isConst {
				lw.emit(kop, dst, lw.constant(y), 0, 0, lw.line)
				return
			}
		}
		lw.expr(n.Y, dst+1)
		lw.emit(op, dst, dst+1, 0, 0, lw.line)

	case *Ternary:
		lw.expr(n.Cond, dst)
		br := lw.emit(opTernBranch, dst, 0, 0, 0, lw.line)
		slot := lw.newSlot(br, 'B')
		lw.expr(n.Then, dst)
		mid := lw.emit(opTernMid, dst, 0, 0, 0, lw.line)
		lw.refSlot(mid, 'B', slot)
		lw.code[br].C = int32(lw.here())
		lw.expr(n.Else, dst+1)
		end := lw.emit(opTernEnd, dst, 0, dst+1, 0, lw.line)
		lw.refSlot(end, 'B', slot)
		lw.code[mid].C = int32(lw.here())

	case *Concat:
		lw.prog.fbExprs = append(lw.prog.fbExprs, n)
		fb := int32(len(lw.prog.fbExprs) - 1)
		lw.emit(opConcatZero, dst, 0, 0, 0, lw.line)
		for _, p := range n.Parts {
			lw.expr(p, dst+1)
			lw.emit(opConcatAcc, dst, dst+1, fb, 0, lw.line)
		}

	case *Repeat:
		// The count-must-be-known diagnostic fires before the replicated
		// operand evaluates, exactly like the tree evaluator's order.
		lw.expr(n.Count, dst+1)
		lw.emit(opRepCheck, dst+1, 0, 0, 0, lw.line)
		lw.expr(n.X, dst+2)
		lw.emit(opReplicate, dst, dst+1, dst+2, 0, lw.line)

	case *Index:
		if ref, ok := n.X.(*boundRef); ok && lw.d.Signals[ref.sig].Words > 1 {
			lw.expr(n.Idx, dst)
			lw.emit(opLoadMem, dst, int32(ref.sig), dst, 0, lw.line)
			return
		}
		lw.expr(n.X, dst)
		if iv, ok := lw.foldConst(n.Idx); ok && iv.IsFullyKnown() {
			// Constant bit index — the dominant shape in bit-sliced RTL
			// (sum chains, priority encoders): one opcode, and a further
			// load fusion when X is a plain signal.
			c := int32(-1) // out of range for any width; exec yields X
			if idx := iv.Uint(); idx < 64 {
				c = int32(idx)
			}
			lw.emit(opBitSelK, dst, 0, c, 0, lw.line)
			return
		}
		lw.expr(n.Idx, dst+1)
		lw.emit(opBitSel, dst, dst+1, 0, 0, lw.line)

	case *PartSelect:
		if mv, lv, ok := lw.constBounds(n); ok {
			lw.expr(n.X, dst)
			if mv < lv || mv-lv+1 > 64 {
				lw.emitErr("bad part-select [%d:%d] at line %d", mv, lv, n.Line)
				return
			}
			lw.emit(opPartSelK, dst, 0, int32(lv), int32(mv-lv+1), lw.line)
			return
		}
		lw.expr(n.X, dst)
		lw.expr(n.MSB, dst+1)
		lw.expr(n.LSB, dst+2)
		lw.emit(opPartSel, dst, dst+1, dst+2, int32(n.Line), lw.line)

	case *SysFunc:
		switch n.Name {
		case "$time", "$stime", "$realtime":
			lw.emit(opTime, dst, 0, 0, 0, lw.line)
		case "$random", "$urandom":
			lw.emit(opRandom, dst, 0, 0, 0, lw.line)
		case "$clog2":
			if len(n.Args) != 1 {
				lw.emitErr("$clog2 takes one argument")
				return
			}
			lw.expr(n.Args[0], dst)
			lw.emit(opClog2, dst, 0, 0, 0, lw.line)
		default:
			lw.emitErr("unsupported system function %s at line %d", n.Name, n.Line)
		}

	case scopedExpr:
		// Binding dissolves these; defensively route any survivor through
		// the tree evaluator, which handles the scope switch itself.
		lw.prog.fbExprs = append(lw.prog.fbExprs, n)
		lw.emit(opFallbackExpr, dst, int32(len(lw.prog.fbExprs)-1), 0, 0, lw.line)

	default:
		lw.emitErr("unsupported expression %T", ex)
	}
}

// foldConst evaluates literal/parameter-only operator trees at compile
// time. Folding never folds a ternary (its lazy-arm and unknown-cond
// semantics are runtime behavior) and stops at anything that is not a
// pure operator over constants.
func (lw *lowerer) foldConst(ex Expr) (Value, bool) {
	switch n := ex.(type) {
	case *Unary:
		x, ok := lw.foldConst(n.X)
		if !ok {
			return Value{}, false
		}
		v, err := applyUnary(n.Op, x)
		if err != nil {
			return Value{}, false
		}
		return v, true
	case *Binary:
		x, ok := lw.foldConst(n.X)
		if !ok {
			return Value{}, false
		}
		y, ok := lw.foldConst(n.Y)
		if !ok {
			return Value{}, false
		}
		v, err := applyBinary(n.Op, x, y)
		if err != nil {
			return Value{}, false
		}
		return v, true
	default:
		return constOf(ex)
	}
}
