package verilog

import (
	"fmt"
	"strings"
	"testing"
)

// tierCSource builds a design with one wide independent combinational
// cone: a single driver signal fanning out to well over coneParMin
// specialized continuous assigns, re-driven many times by a $random
// stimulus loop so every sweep re-evaluates the whole cone.
func tierCSource(fanout int) string {
	var b strings.Builder
	b.WriteString("module tb;\n  reg [31:0] x, i;\n")
	for k := 0; k < fanout; k++ {
		fmt.Fprintf(&b, "  wire [31:0] w%d;\n", k)
	}
	for k := 0; k < fanout; k++ {
		switch k % 3 {
		case 0:
			fmt.Fprintf(&b, "  assign w%d = x ^ 32'd%d;\n", k, uint32(k)*2654435761)
		case 1:
			fmt.Fprintf(&b, "  assign w%d = x + 32'd%d;\n", k, uint32(k)*40503)
		default:
			fmt.Fprintf(&b, "  assign w%d = ~x;\n", k)
		}
	}
	b.WriteString(`  initial begin
    x = 0;
    for (i = 0; i < 50; i = i + 1) begin
      x = $random;
      #1 ;
    end
    $display("x=%h w0=%h w95=%h", x, w0, w` + fmt.Sprint(fanout-1) + `);
    $finish;
  end
endmodule
`)
	return b.String()
}

// TestTierCParallelSweepDeterminism is the Tier C contract: for any
// worker count, a seeded simulation of a parallel-swept cone is
// byte-identical to the single-worker (fully serial) evaluation —
// worker scheduling may only change wall-clock time, never results.
// Fifty seeds × worker counts {1, 4, 7} all reduce to one fingerprint
// per seed. Runs under -race in `make test-race`, so cross-goroutine
// commits are also checked for data races, not just for value equality.
func TestTierCParallelSweepDeterminism(t *testing.T) {
	const fanout = 96
	cd, err := Compile(tierCSource(fanout), "tb")
	if err != nil {
		t.Fatal(err)
	}
	// The cone must actually be marked for the parallel sweep, or the
	// workers>1 runs silently degrade to the serial path and the test
	// proves nothing.
	marked := false
	for _, ok := range cd.Design.parSweep {
		marked = marked || ok
	}
	if !marked {
		t.Fatalf("no signal marked parSweep: fan-out %d below coneParMin %d or cone not specialized", fanout, coneParMin)
	}

	oldOverride := coneWorkersOverride
	defer func() { coneWorkersOverride = oldOverride }()

	fingerprint := func(seed uint64, workers int) string {
		coneWorkersOverride = workers
		res, err := cd.Run(SimOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d workers %d: %v", seed, workers, err)
		}
		if res.RuntimeErr != nil || !res.Finished {
			t.Fatalf("seed %d workers %d: run diverged: %+v", seed, workers, res)
		}
		return res.Output + FormatSignals(res, "tb.")
	}

	for seed := uint64(0); seed < 50; seed++ {
		want := fingerprint(seed, 1)
		for _, workers := range []int{4, 7} {
			if got := fingerprint(seed, workers); got != want {
				t.Fatalf("seed %d: workers=%d diverged from serial\n want %q\n  got %q", seed, workers, got, want)
			}
		}
	}
}
