package verilog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SimOptions bound a simulation run. Zero values select defaults; the
// bounds exist so that broken LLM-generated candidates (combinational
// loops, missing $finish, runaway always blocks) terminate cleanly and
// report a diagnosable failure instead of hanging the harness.
type SimOptions struct {
	// MaxTime is the time-unit horizon (default 1_000_000).
	MaxTime uint64
	// MaxSteps bounds executed behavioral statements (default 4_000_000).
	MaxSteps uint64
	// MaxDeltas bounds delta cycles within one timestep (default 10_000).
	MaxDeltas int
	// Seed seeds $random.
	Seed uint64
}

// Normalized returns the options with every zero value replaced by its
// default — the form NewSimulator actually runs under. Cache layers key
// results on this so that zero-valued and explicitly-default options
// share one identity.
func (o SimOptions) Normalized() SimOptions { return o.withDefaults() }

func (o SimOptions) withDefaults() SimOptions {
	if o.MaxTime == 0 {
		o.MaxTime = 1_000_000
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 4_000_000
	}
	if o.MaxDeltas == 0 {
		o.MaxDeltas = 10_000
	}
	return o
}

// SimResult is the outcome of a simulation run.
type SimResult struct {
	// Output is everything printed by $display/$write.
	Output string
	// Checks and Failures count $check/$check_eq/$error outcomes.
	Checks   int
	Failures int
	// Finished is true when $finish was executed.
	Finished bool
	// TimedOut is true when MaxTime or MaxSteps was exhausted first.
	TimedOut bool
	// RuntimeErr carries a fatal runtime diagnostic (nil if clean).
	RuntimeErr error
	// EndTime is the simulation time when the run stopped.
	EndTime uint64
	// Final holds the last value of every scalar signal by name.
	Final map[string]Value
}

// Passed reports whether the run finished with all checks passing and at
// least one check executed.
func (r *SimResult) Passed() bool {
	return r.RuntimeErr == nil && r.Checks > 0 && r.Failures == 0
}

// errKilled unwinds a process goroutine that the scheduler is terminating.
var errKilled = errors.New("verilog: process killed")

// errFinish unwinds statement execution after $finish.
var errFinish = errors.New("verilog: finish requested")

// errBudget unwinds statement execution when MaxSteps is exhausted.
var errBudget = errors.New("verilog: statement budget exhausted")

// yieldKind says why a process returned control to the scheduler.
type yieldKind int

const (
	yieldDelay yieldKind = iota + 1
	yieldEvent           // waiting on sensitivity list
	yieldEnd             // process body completed (initial) — never reschedule
	yieldFinish
	yieldError
)

// resolvedSens is a sensitivity item bound to a flattened signal.
type resolvedSens struct {
	sig  SignalID
	edge EdgeKind
}

// yieldReq is the message a process sends when it relinquishes control.
type yieldReq struct {
	kind  yieldKind
	delay uint64
	sens  []resolvedSens
	err   error
}

// procState is the scheduler-side handle of one process goroutine.
type procState struct {
	proc    *process
	resume  chan bool // true = kill
	req     chan yieldReq
	done    bool
	waiting *watchEntry
}

// watchEntry is one registered sensitivity wait.
type watchEntry struct {
	ps    *procState
	sens  []resolvedSens
	fired bool
}

// nbaUpdate is a deferred non-blocking assignment.
type nbaUpdate struct {
	sig   SignalID
	word  int
	mask  uint64
	value Value // pre-shifted into position described by mask
}

// Simulator executes an elaborated design. A Simulator is single-use.
type Simulator struct {
	design *Design
	opts   SimOptions

	vals map[SignalID][]Value // word-indexed storage (len 1 for scalars)

	sigAssigns map[SignalID][]int // cont-assign indices sensitive to signal
	watchers   map[SignalID][]*watchEntry

	active   []*procState
	nba      []nbaUpdate
	timeline map[uint64][]*procState
	changed  []changeRec
	flushing bool

	now      uint64
	steps    uint64
	rngState uint64

	out      strings.Builder
	checks   int
	failures int
	finished bool
	timedOut bool
	rtErr    error

	procs []*procState
	wg    sync.WaitGroup
}

// NewSimulator prepares a simulator for one run over the design.
func NewSimulator(d *Design, opts SimOptions) *Simulator {
	opts = opts.withDefaults()
	s := &Simulator{
		design:     d,
		opts:       opts,
		vals:       make(map[SignalID][]Value, len(d.Signals)),
		sigAssigns: map[SignalID][]int{},
		watchers:   map[SignalID][]*watchEntry{},
		timeline:   map[uint64][]*procState{},
		rngState:   opts.Seed*2862933555777941757 + 3037000493,
	}
	for _, sig := range d.Signals {
		words := make([]Value, sig.Words)
		for i := range words {
			words[i] = AllX(sig.Width)
		}
		s.vals[sig.ID] = words
	}
	for i, ca := range d.assigns {
		for _, sig := range ca.reads {
			s.sigAssigns[sig] = append(s.sigAssigns[sig], i)
		}
	}
	return s
}

// Run executes the simulation to completion and returns the result. The
// returned error reports harness-level misuse only; candidate defects
// (runtime errors, timeouts, failed checks) land in the result.
func (s *Simulator) Run() (*SimResult, error) {
	// Evaluate every continuous assignment once at t=0.
	for i := range s.design.assigns {
		s.evalContAssign(i)
	}

	// Launch all processes; each waits for its first resume.
	for _, pr := range s.design.procs {
		ps := &procState{
			proc:   pr,
			resume: make(chan bool),
			req:    make(chan yieldReq),
		}
		s.procs = append(s.procs, ps)
		s.wg.Add(1)
		go s.runProcess(ps)
		s.active = append(s.active, ps)
	}

	s.mainLoop()

	// Every process goroutine is parked in block() at this point — either
	// mid-wait or after its final yield — and exits on exactly one kill.
	for _, ps := range s.procs {
		ps.resume <- true
	}
	s.wg.Wait()

	res := &SimResult{
		Output:     s.out.String(),
		Checks:     s.checks,
		Failures:   s.failures,
		Finished:   s.finished,
		TimedOut:   s.timedOut,
		RuntimeErr: s.rtErr,
		EndTime:    s.now,
		Final:      map[string]Value{},
	}
	for _, sig := range s.design.Signals {
		if sig.Words == 1 {
			res.Final[sig.Name] = s.vals[sig.ID][0]
		}
	}
	return res, nil
}

// mainLoop drives the event regions until quiescence or a stop condition.
func (s *Simulator) mainLoop() {
	for {
		// Active region: run ready processes to their next yield.
		for len(s.active) > 0 {
			if s.stopRequested() {
				return
			}
			ps := s.active[0]
			s.active = s.active[1:]
			if ps.done {
				continue
			}
			s.dispatch(ps)
			if s.stopRequested() {
				return
			}
		}
		// NBA region.
		if len(s.nba) > 0 {
			updates := s.nba
			s.nba = nil
			for _, u := range updates {
				s.commitWrite(u.sig, u.word, u.mask, u.value)
			}
			continue
		}
		// Advance time.
		next, ok := s.nextTime()
		if !ok {
			return // quiescent: no more events
		}
		if next > s.opts.MaxTime {
			s.timedOut = true
			return
		}
		s.now = next
		s.active = append(s.active, s.timeline[next]...)
		delete(s.timeline, next)
	}
}

func (s *Simulator) stopRequested() bool {
	return s.finished || s.rtErr != nil || s.timedOut
}

func (s *Simulator) nextTime() (uint64, bool) {
	var best uint64
	found := false
	for t := range s.timeline {
		if !found || t < best {
			best, found = t, true
		}
	}
	return best, found
}

// dispatch resumes a process and handles its next yield.
func (s *Simulator) dispatch(ps *procState) {
	ps.resume <- false
	req := <-ps.req
	switch req.kind {
	case yieldDelay:
		t := s.now + req.delay
		s.timeline[t] = append(s.timeline[t], ps)
	case yieldEvent:
		we := &watchEntry{ps: ps, sens: req.sens}
		ps.waiting = we
		for _, it := range req.sens {
			s.watchers[it.sig] = append(s.watchers[it.sig], we)
		}
	case yieldEnd:
		ps.done = true
	case yieldFinish:
		ps.done = true
		s.finished = true
	case yieldError:
		ps.done = true
		if errors.Is(req.err, errBudget) {
			s.timedOut = true
		} else if s.rtErr == nil {
			s.rtErr = req.err
		}
	}
}

// runProcess is the goroutine body of one behavioral process.
func (s *Simulator) runProcess(ps *procState) {
	defer s.wg.Done()
	r := &runner{sim: s, ps: ps, scope: ps.proc.scope}
	defer func() {
		if v := recover(); v != nil {
			if err, ok := v.(error); ok && errors.Is(err, errKilled) {
				return // scheduler shut us down; exit silently
			}
			panic(v) // real bug: propagate
		}
	}()

	r.block() // wait for first activation

	var err error
	switch ps.proc.kind {
	case procInitial:
		err = r.exec(ps.proc.body)
	case procAlways:
		err = r.runAlways()
	}
	switch {
	case err == nil:
		r.yield(yieldReq{kind: yieldEnd})
	case errors.Is(err, errFinish):
		r.yield(yieldReq{kind: yieldFinish})
	default:
		r.yield(yieldReq{kind: yieldError, err: err})
	}
	// After a final yield the scheduler marks us done and will send one
	// kill to unblock the goroutine.
	r.block()
}

// runner executes statements inside a process goroutine.
type runner struct {
	sim   *Simulator
	ps    *procState
	scope scope
}

// block waits for the scheduler's resume; a kill unwinds the goroutine.
func (r *runner) block() {
	if kill := <-r.ps.resume; kill {
		panic(errKilled)
	}
}

// yield hands control back to the scheduler with the given request and
// blocks until resumed.
func (r *runner) yield(req yieldReq) {
	r.ps.req <- req
	r.block()
}

// runAlways loops the always-block body with its sensitivity semantics.
func (r *runner) runAlways() error {
	pr := r.ps.proc
	switch {
	case pr.star:
		// Run once at activation, then wait on the inferred read set.
		sens := make([]resolvedSens, 0, len(pr.reads))
		seen := map[SignalID]bool{}
		for _, sig := range pr.reads {
			if !seen[sig] {
				seen[sig] = true
				sens = append(sens, resolvedSens{sig: sig, edge: EdgeAny})
			}
		}
		for {
			if err := r.exec(pr.body); err != nil {
				return err
			}
			if len(sens) == 0 {
				return fmt.Errorf("verilog: always @* block %s reads no signals", pr.name)
			}
			r.yield(yieldReq{kind: yieldEvent, sens: sens})
		}
	case len(pr.sens) > 0:
		sens, err := r.resolveSens(pr.sens)
		if err != nil {
			return err
		}
		for {
			r.yield(yieldReq{kind: yieldEvent, sens: sens})
			if err := r.exec(pr.body); err != nil {
				return err
			}
		}
	default:
		// always <body> with internal timing control.
		hasTiming := containsTiming(pr.body)
		if !hasTiming {
			return fmt.Errorf("verilog: always block %s has no sensitivity or timing control", pr.name)
		}
		for {
			if err := r.exec(pr.body); err != nil {
				return err
			}
		}
	}
}

// containsTiming reports whether a statement subtree contains a delay or
// event control (used to reject zero-delay infinite always loops).
func containsTiming(st Stmt) bool {
	switch n := st.(type) {
	case *DelayStmt, *EventStmt, *WaitStmt:
		return true
	case *Block:
		for _, c := range n.Stmts {
			if containsTiming(c) {
				return true
			}
		}
	case *IfStmt:
		return containsTiming(n.Then) || (n.Else != nil && containsTiming(n.Else))
	case *CaseStmt:
		for _, it := range n.Items {
			if containsTiming(it.Body) {
				return true
			}
		}
	case *ForStmt:
		return containsTiming(n.Body)
	case *WhileStmt:
		return containsTiming(n.Body)
	case *RepeatStmt:
		return containsTiming(n.Body)
	case *ForeverStmt:
		return containsTiming(n.Body)
	}
	return false
}

// resolveSens binds sensitivity names to signals.
func (r *runner) resolveSens(items []SensItem) ([]resolvedSens, error) {
	out := make([]resolvedSens, 0, len(items))
	for _, it := range items {
		ent, ok := r.scope[it.Signal]
		if !ok || ent.isParam {
			return nil, fmt.Errorf("verilog: sensitivity references unknown signal %q", it.Signal)
		}
		out = append(out, resolvedSens{sig: ent.sig, edge: it.Edge})
	}
	return out, nil
}

// step charges one statement against the budget.
func (r *runner) step() error {
	r.sim.steps++
	if r.sim.steps > r.sim.opts.MaxSteps {
		return errBudget
	}
	return nil
}

// --- signal storage and propagation ------------------------------------

// trit classifies a bit for edge detection: 0, 1, or unknown.
func trit(v Value) int {
	switch {
	case v.Unknown&1 == 1:
		return 2
	case v.Bits&1 == 1:
		return 1
	default:
		return 0
	}
}

// edgeMatches reports whether a transition satisfies an edge spec.
func edgeMatches(edge EdgeKind, oldV, newV Value) bool {
	switch edge {
	case EdgePos:
		o, n := trit(oldV), trit(newV)
		return (o == 0 && n != 0) || (o == 2 && n == 1)
	case EdgeNeg:
		o, n := trit(oldV), trit(newV)
		return (o == 1 && n != 1) || (o == 2 && n == 0)
	default:
		return !oldV.Equal(newV)
	}
}

// changeRec is one observed signal transition awaiting propagation.
type changeRec struct {
	sig  SignalID
	oldV Value
	newV Value
}

// commitWrite applies a masked write to a signal word and, unless a
// propagation wave is already running, drains the resulting change queue:
// waking matching event waiters and re-evaluating dependent continuous
// assignments. Propagation is iterative and bounded by MaxDeltas so that
// combinational loops become diagnostics instead of stack overflows.
func (s *Simulator) commitWrite(sig SignalID, word int, mask uint64, v Value) {
	words := s.vals[sig]
	if word < 0 || word >= len(words) {
		return // out-of-range memory write: ignored like real simulators
	}
	old := words[word]
	nw := Value{
		Bits:    (old.Bits &^ mask) | (v.Bits & mask),
		Unknown: (old.Unknown &^ mask) | (v.Unknown & mask),
		Width:   old.Width,
	}
	if nw.Equal(old) {
		return
	}
	words[word] = nw
	if word != 0 {
		return // memory word writes have no sensitivity in the subset
	}
	s.changed = append(s.changed, changeRec{sig: sig, oldV: old, newV: nw})
	if s.flushing {
		return // the outer flush loop will pick this up
	}
	s.flushing = true
	defer func() { s.flushing = false }()

	deltas := 0
	for len(s.changed) > 0 {
		c := s.changed[0]
		s.changed = s.changed[1:]
		s.wakeWatchers(c)
		for _, idx := range s.sigAssigns[c.sig] {
			deltas++
			if deltas > s.opts.MaxDeltas {
				if s.rtErr == nil {
					s.rtErr = fmt.Errorf("verilog: combinational loop detected near line %d (delta limit %d)",
						s.design.assigns[idx].line, s.opts.MaxDeltas)
				}
				s.changed = nil
				return
			}
			s.evalContAssign(idx) // may append to s.changed
		}
	}
}

// wakeWatchers moves event-waiting processes whose edge matches onto the
// active queue.
func (s *Simulator) wakeWatchers(c changeRec) {
	entries := s.watchers[c.sig]
	if len(entries) == 0 {
		return
	}
	kept := entries[:0]
	for _, we := range entries {
		if we.fired || we.ps.done {
			continue
		}
		match := false
		for _, it := range we.sens {
			if it.sig == c.sig && edgeMatches(it.edge, c.oldV, c.newV) {
				match = true
				break
			}
		}
		if match {
			we.fired = true
			we.ps.waiting = nil
			s.active = append(s.active, we.ps)
			continue
		}
		kept = append(kept, we)
	}
	s.watchers[c.sig] = kept
}

// evalContAssign recomputes one continuous assignment and writes its LHS.
func (s *Simulator) evalContAssign(idx int) {
	ca := s.design.assigns[idx]
	ev := &evaluator{sim: s, scope: ca.scope}
	rhs, err := ev.eval(ca.rhs)
	if err != nil {
		if s.rtErr == nil {
			s.rtErr = fmt.Errorf("continuous assign at line %d: %w", ca.line, err)
		}
		return
	}
	if err := ev.writeLValue(ca.lhs, rhs, false, nil); err != nil {
		if s.rtErr == nil {
			s.rtErr = fmt.Errorf("continuous assign at line %d: %w", ca.line, err)
		}
	}
}

// random returns the next $random value (xorshift64*).
func (s *Simulator) random() uint64 {
	s.rngState ^= s.rngState >> 12
	s.rngState ^= s.rngState << 25
	s.rngState ^= s.rngState >> 27
	return s.rngState * 2685821657736338717
}

// --- convenience entry points ------------------------------------------

// CompileAndRun parses, elaborates and simulates src with the given top
// module. Parse and elaboration failures come back as errors; everything
// later is reported inside the SimResult.
func CompileAndRun(src, top string, opts SimOptions) (*SimResult, error) {
	cd, err := Compile(src, top)
	if err != nil {
		return nil, err
	}
	return cd.Run(opts)
}

// RunTestbench pairs a DUT source with a testbench source and simulates
// the testbench top. It is the compatibility entry point the framework
// packages historically scored candidates through; it now routes through
// the shared compile cache (see SetTestbenchCompiler), so a DUT or bench
// the farm has already compiled is never re-parsed. Its diagnostics are
// phrased the way an EDA tool would phrase them.
func RunTestbench(dutSrc, tbSrc, tbTop string, opts SimOptions) (*SimResult, error) {
	cd, err := compileTestbench(dutSrc, tbSrc, tbTop)
	if err != nil {
		return nil, err
	}
	return cd.Run(opts)
}

// FormatSignals renders a stable listing of final signal values whose
// names match the given prefix; used by self-consistency clustering.
func FormatSignals(res *SimResult, prefix string) string {
	names := make([]string, 0, len(res.Final))
	for n := range res.Final {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%s\n", n, res.Final[n])
	}
	return b.String()
}
