package verilog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SimOptions bound a simulation run. Zero values select defaults; the
// bounds exist so that broken LLM-generated candidates (combinational
// loops, missing $finish, runaway always blocks) terminate cleanly and
// report a diagnosable failure instead of hanging the harness.
type SimOptions struct {
	// MaxTime is the time-unit horizon (default 1_000_000).
	MaxTime uint64
	// MaxSteps bounds executed behavioral statements (default 4_000_000).
	MaxSteps uint64
	// MaxDeltas bounds delta cycles within one timestep (default 10_000).
	MaxDeltas int
	// Seed seeds $random.
	Seed uint64
}

// Normalized returns the options with every zero value replaced by its
// default — the form NewSimulator actually runs under. Cache layers key
// results on this so that zero-valued and explicitly-default options
// share one identity.
func (o SimOptions) Normalized() SimOptions { return o.withDefaults() }

func (o SimOptions) withDefaults() SimOptions {
	if o.MaxTime == 0 {
		o.MaxTime = 1_000_000
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 4_000_000
	}
	if o.MaxDeltas == 0 {
		o.MaxDeltas = 10_000
	}
	return o
}

// SimResult is the outcome of a simulation run.
type SimResult struct {
	// Output is everything printed by $display/$write.
	Output string
	// Checks and Failures count $check/$check_eq/$error outcomes.
	Checks   int
	Failures int
	// Finished is true when $finish was executed.
	Finished bool
	// TimedOut is true when MaxTime or MaxSteps was exhausted first.
	TimedOut bool
	// RuntimeErr carries a fatal runtime diagnostic (nil if clean).
	RuntimeErr error
	// EndTime is the simulation time when the run stopped. When the run
	// hit the MaxTime horizon, this is the horizon itself, not the last
	// timestep that completed before it.
	EndTime uint64
	// Final holds the last value of every single-word signal by name —
	// scalars and vectors up to 64 bits.
	Final map[string]Value
	// FinalMem holds the last contents of every multi-word signal
	// (memories, and wide buses stored as word arrays) rendered as a
	// stable MSW-first hex string; see FormatWords. Keyed by name like
	// Final, so FormatSignals covers wide state too.
	FinalMem map[string]string
	// VM reports tiered-VM dispatch coverage for this run (debug
	// observability; does not affect results).
	VM VMStats
}

// Passed reports whether the run finished with all checks passing and at
// least one check executed.
func (r *SimResult) Passed() bool {
	return r.RuntimeErr == nil && r.Checks > 0 && r.Failures == 0
}

// simOutput accumulates $display output on a pooled byte buffer: the
// backing array is recycled across simulations (outBufPool), so a batch
// of thousands of runs allocates output storage once per worker instead
// of growth-doubling a fresh strings.Builder per run. take() makes the
// one exact-size string copy the result keeps.
type simOutput struct {
	b []byte
}

// outBufPool recycles simulation output buffers.
var outBufPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// valSlabPool recycles the per-run Value slab (signal store plus both
// register regions). Value contains no pointers, so pooled slabs cost
// the garbage collector nothing to retain.
var valSlabPool = sync.Pool{New: func() any { return []Value(nil) }}

func getValSlab(n int) []Value {
	s := valSlabPool.Get().([]Value)
	if cap(s) < n {
		return make([]Value, n)
	}
	return s[:n]
}

// boolSlabPool recycles the per-run bool slab (caBusy + twoState).
var boolSlabPool = sync.Pool{New: func() any { return []bool(nil) }}

func getBoolSlab(n int) []bool {
	s := boolSlabPool.Get().([]bool)
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func (o *simOutput) Len() int { return len(o.b) }

func (o *simOutput) Write(p []byte) (int, error) {
	o.b = append(o.b, p...)
	return len(p), nil
}

func (o *simOutput) WriteByte(c byte) error {
	o.b = append(o.b, c)
	return nil
}

// take returns the accumulated output as a string and returns the
// buffer to the pool; the simulator is single-use, so no writes follow.
func (o *simOutput) take() string {
	s := string(o.b)
	outBufPool.Put(o.b[:0])
	o.b = nil
	return s
}

// errFinish unwinds statement execution after $finish.
var errFinish = errors.New("verilog: finish requested")

// errBudget unwinds statement execution when MaxSteps is exhausted.
var errBudget = errors.New("verilog: statement budget exhausted")

// watchEntry is a process's reusable sensitivity-wait registration. The
// generation counter increments each time the process arms a new wait,
// so references left behind in watcher lists by earlier waits are
// recognized as stale and dropped lazily — arming a wait never allocates.
type watchEntry struct {
	r     *runner
	sens  []resolvedSens
	gen   uint64
	fired bool
}

// watchRef is one appearance of a watchEntry in a signal's watcher list,
// pinned to the arm generation that appended it.
type watchRef struct {
	w   *watchEntry
	gen uint64
}

// nbaUpdate is a deferred non-blocking assignment.
type nbaUpdate struct {
	sig   SignalID
	word  int
	mask  uint64
	value Value // pre-shifted into position described by mask
	// line is the scheduling statement's source line, carried to the NBA
	// drain so probe attribution survives the deferred commit.
	line int32
}

// timedEvent is one scheduled process resume on the event heap. seq is a
// monotonic tiebreak so that resumes scheduled for the same timestep run
// in scheduling order — the FIFO the seed kernel's per-time slices had.
type timedEvent struct {
	t   uint64
	seq uint64
	r   *runner
}

// eventHeap is a binary min-heap over (t, seq). It replaces the seed
// kernel's map[time][]process timeline, whose next-time lookup was a full
// O(n) key scan per timestep; push and pop are O(log n).
type eventHeap []timedEvent

func (h eventHeap) less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].seq < h[j].seq)
}

func (h *eventHeap) push(e timedEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() timedEvent {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = timedEvent{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// Simulator executes an elaborated design. A Simulator is single-use.
// The kernel is single-threaded and coroutine-free: behavioral processes
// are resumable interpreters (see runner in interp.go) dispatched by the
// event loop below, so a simulation spawns no goroutines at all.
type Simulator struct {
	design *Design
	opts   SimOptions

	store []Value // all signal words, one allocation (design.wordOffset)

	// caRegs/procRegs are the register regions for continuous-assign and
	// process programs: every program owns a disjoint region
	// (design.caRegOff/procRegOff), so wide multi-word operations run
	// entirely on preallocated scratch — no VM op allocates, and a
	// store's change wave re-entering another assign's program cannot
	// clobber live registers. Together with store they live on one
	// pooled slab (valSlab) recycled across simulations.
	caRegs   []Value
	procRegs []Value
	valSlab  []Value
	// caBusy guards each compiled assign's register region against
	// same-assign re-entry (see evalContAssign). It shares one pooled
	// bool slab with twoState.
	caBusy []bool
	// twoState is the per-signal "proven two-state" latch (Tier B): set
	// the first time a signal's word 0 commits with an empty Unknown
	// mask, never cleared. The latch is a monotone pre-filter only —
	// specialized superinstruction variants additionally check the live
	// Unknown masks of their inputs at entry (twoStateGate), so a signal
	// that later returns to X falls back to the general variant.
	twoState []bool
	boolSlab []bool

	// coneVals is Tier C scratch: per-assign values computed by the
	// parallel sweep workers before the deterministic commit replay.
	coneVals    []Value
	coneWorkers int

	// caEv is the resident evaluator compiled continuous assigns run
	// under; keeping it on the simulator (rather than on the stack of
	// evalContAssign) avoids one heap allocation per evaluation, since
	// superinstruction closures receive the evaluator through an
	// indirect call and escape analysis gives it up.
	caEv evaluator
	// caEvID is the scopeID currently installed in caEv (-1: none).
	// Assigns in the same instance share one scope map, so most wave
	// evaluations skip the scope pointer write (and its GC barrier).
	caEvID int32

	watchers [][]watchRef // event-waiting processes, indexed by SignalID
	// watchSweep is the per-signal list length that triggers a stale-ref
	// compaction at arm time. wakeWatchers prunes lazily, but only when a
	// signal changes — without the arm-time sweep, re-arming against a
	// never-changing signal (a held reset in @(posedge clk or negedge
	// rst_n)) grows its list by one ref per wait, without bound.
	watchSweep []int32

	active     []*runner // ready queue for the current delta
	activeHead int
	nba        []nbaUpdate
	eq         eventHeap // future process resumes, ordered by (time, seq)
	eqSeq      uint64

	changed     []changeRec // signal transitions awaiting propagation
	changedHead int
	flushing    bool

	now      uint64
	steps    uint64
	rngState uint64

	out      simOutput
	checks   int
	failures int
	finished bool
	timedOut bool
	rtErr    error

	// probe, when non-nil, observes every committed store (probe.go);
	// probeLine is the 1-based source line of the statement currently
	// committing, maintained by the store dispatch sites so commitWrite/
	// commitFull can attribute the transition without a signature change.
	probe     ProbeFunc
	probeLine int32

	// Tiered-VM dispatch accounting (see VMStats).
	nTierA   uint64 // instructions covered by general superinstructions
	nTierB   uint64 // instructions covered by two-state variants
	nGeneric uint64 // instructions dispatched by the generic switch
	nPromote uint64 // two-state latch promotions this run
}

// NewSimulator prepares a simulator for one run over the design.
func NewSimulator(d *Design, opts SimOptions) *Simulator {
	opts = opts.withDefaults()
	// One pooled slab backs all Value state. The store region is fully
	// initialized to X below; the register regions are written before
	// they are read by construction of the lowering (expression stack
	// discipline), so recycled contents are never observable.
	slab := getValSlab(d.totalWords + d.caRegTotal + d.procRegTotal)
	bools := getBoolSlab(len(d.assigns) + len(d.Signals))
	s := &Simulator{
		design:      d,
		opts:        opts,
		valSlab:     slab,
		store:       slab[:d.totalWords],
		caRegs:      slab[d.totalWords : d.totalWords+d.caRegTotal],
		procRegs:    slab[d.totalWords+d.caRegTotal:],
		boolSlab:    bools,
		caBusy:      bools[:len(d.assigns)],
		twoState:    bools[len(d.assigns):],
		coneWorkers: coneWorkerCount(),
		watchers:    make([][]watchRef, len(d.Signals)),
		watchSweep:  make([]int32, len(d.Signals)),
		rngState:    opts.Seed*2862933555777941757 + 3037000493,
	}
	s.caEv.sim = s
	s.caEvID = -1
	for i := range s.watchSweep {
		s.watchSweep[i] = watcherSweepMin
	}
	s.out.b = outBufPool.Get().([]byte)[:0] // recycled across simulations
	for _, sig := range d.Signals {
		off := int(d.wordOffset[sig.ID])
		ax := AllX(sig.Width)
		for i := 0; i < sig.Words; i++ {
			s.store[off+i] = ax
		}
	}
	return s
}

// Run executes the simulation to completion and returns the result. The
// returned error reports harness-level misuse only; candidate defects
// (runtime errors, timeouts, failed checks) land in the result.
func (s *Simulator) Run() (*SimResult, error) {
	// Evaluate every continuous assignment once at t=0.
	for i := range s.design.assigns {
		s.evalContAssign(i)
	}

	// Every process starts active at t=0, in declaration order. One slab
	// holds all runners and the pooled valSlab holds every register
	// file: per-run setup is two allocations, and no VM op allocates
	// later.
	runners := make([]runner, len(s.design.procs))
	s.active = make([]*runner, 0, 2*len(runners))
	for i, pr := range s.design.procs {
		r := &runners[i]
		r.sim, r.proc, r.scope = s, pr, pr.scope
		r.ev = evaluator{sim: s, scope: pr.scope}
		r.prog = pr.prog
		r.regs = s.procRegs[s.design.procRegOff[i]:s.design.procRegOff[i+1]]
		r.watch.r = r
		s.active = append(s.active, r)
	}

	s.mainLoop()

	res := &SimResult{
		Output:     s.out.take(),
		Checks:     s.checks,
		Failures:   s.failures,
		Finished:   s.finished,
		TimedOut:   s.timedOut,
		RuntimeErr: s.rtErr,
		EndTime:    s.now,
		Final:      make(map[string]Value, len(s.design.Signals)),
		FinalMem:   map[string]string{},
		VM: VMStats{
			SuperBlocks: int64(s.design.nSuper),
			FuseSkipped: int64(s.design.nFuseSkip),
			TierAOps:    int64(s.nTierA),
			TierBOps:    int64(s.nTierB),
			GenericOps:  int64(s.nGeneric),
			Promotions:  int64(s.nPromote),
		},
	}
	for _, sig := range s.design.Signals {
		if sig.Words == 1 {
			res.Final[sig.Name] = s.val(sig.ID)
		} else {
			res.FinalMem[sig.Name] = FormatWords(s.words(sig.ID), sig.Width)
		}
	}
	// The result holds copies of everything it needs; recycle the Value
	// slab. The Simulator is documented single-use — drop the views so a
	// misuse fails loudly instead of corrupting a later run's state.
	valSlabPool.Put(s.valSlab)
	boolSlabPool.Put(s.boolSlab)
	s.valSlab, s.store, s.caRegs, s.procRegs = nil, nil, nil, nil
	s.boolSlab, s.caBusy, s.twoState = nil, nil, nil
	return res, nil
}

// mainLoop drives the event regions until quiescence or a stop condition.
func (s *Simulator) mainLoop() {
	for {
		// Active region: resume ready processes to their next suspension.
		for s.activeHead < len(s.active) {
			if s.stopRequested() {
				return
			}
			r := s.active[s.activeHead]
			s.activeHead++
			if r.done {
				continue
			}
			s.dispatch(r)
			if s.stopRequested() {
				return
			}
		}
		s.active = s.active[:0]
		s.activeHead = 0
		// NBA region.
		if len(s.nba) > 0 {
			// commitWrite never re-enters the NBA queue (continuous
			// assigns commit blocking), so in-place iteration is safe.
			for i := range s.nba {
				u := s.nba[i]
				if s.probe != nil {
					s.probeLine = u.line
				}
				s.commitWrite(u.sig, u.word, u.mask, u.value)
			}
			s.nba = s.nba[:0]
			continue
		}
		// Advance time to the earliest scheduled resume.
		if len(s.eq) == 0 {
			return // quiescent: no more events
		}
		next := s.eq[0].t
		if next > s.opts.MaxTime {
			// The horizon fired: report the bound itself as the end time,
			// not the last timestep that happened to complete before it.
			s.timedOut = true
			s.now = s.opts.MaxTime
			return
		}
		s.now = next
		for len(s.eq) > 0 && s.eq[0].t == next {
			s.active = append(s.active, s.eq.pop().r)
		}
	}
}

func (s *Simulator) stopRequested() bool {
	return s.finished || s.rtErr != nil || s.timedOut
}

// val reads the (single-word) current value of a signal.
func (s *Simulator) val(sig SignalID) Value {
	return s.store[s.design.wordOffset[sig]]
}

// words returns the word array of a signal as a view into the store.
func (s *Simulator) words(sig SignalID) []Value {
	off := s.design.wordOffset[sig]
	return s.store[off:s.design.wordOffset[sig+1]]
}

// schedule queues a process resume at absolute time t.
func (s *Simulator) schedule(r *runner, t uint64) {
	s.eqSeq++
	s.eq.push(timedEvent{t: t, seq: s.eqSeq, r: r})
}

// dispatch resumes a process and records its outcome.
func (s *Simulator) dispatch(r *runner) {
	status, err := r.resume()
	switch status {
	case procSuspended:
		// The runner armed its own wake condition (heap entry or
		// watcher registrations); nothing to do here.
	case procEnded:
		r.done = true
	case procFinished:
		r.done = true
		s.finished = true
	case procErrored:
		r.done = true
		if errors.Is(err, errBudget) {
			s.timedOut = true
		} else if s.rtErr == nil {
			s.rtErr = err
		}
	}
}

// --- signal storage and propagation ------------------------------------

// trit classifies a bit for edge detection: 0, 1, or unknown.
func trit(v Value) int {
	switch {
	case v.Unknown&1 == 1:
		return 2
	case v.Bits&1 == 1:
		return 1
	default:
		return 0
	}
}

// edgeMatches reports whether a transition satisfies an edge spec.
func edgeMatches(edge EdgeKind, oldV, newV Value) bool {
	switch edge {
	case EdgePos:
		o, n := trit(oldV), trit(newV)
		return (o == 0 && n != 0) || (o == 2 && n == 1)
	case EdgeNeg:
		o, n := trit(oldV), trit(newV)
		return (o == 1 && n != 1) || (o == 2 && n == 0)
	default:
		return !oldV.Equal(newV)
	}
}

// changeRec is one observed signal transition awaiting propagation.
type changeRec struct {
	sig  SignalID
	oldV Value
	newV Value
}

// commitWrite applies a masked write to a signal word and, unless a
// propagation wave is already running, drains the resulting change queue:
// waking matching event waiters and re-evaluating dependent continuous
// assignments. Propagation is iterative and bounded by MaxDeltas so that
// combinational loops become diagnostics instead of stack overflows.
func (s *Simulator) commitWrite(sig SignalID, word int, mask uint64, v Value) {
	off := s.design.wordOffset[sig]
	// Compare in the int domain: a huge index (e.g. mem[i-1] with i==0,
	// which wraps to 0xFFFFFFFF) must not be truncated back into range.
	if word < 0 || word >= int(s.design.wordOffset[sig+1]-off) {
		return // out-of-range memory write: ignored like real simulators
	}
	slot := &s.store[int(off)+word]
	old := *slot
	nw := Value{
		Bits:    (old.Bits &^ mask) | (v.Bits & mask),
		Unknown: (old.Unknown &^ mask) | (v.Unknown & mask),
		Width:   old.Width,
	}
	if old.Unknown|nw.Unknown == 0 {
		// Two-state fast path: no X anywhere, equality is bit equality.
		if nw.Bits == old.Bits {
			return
		}
	} else if nw.Equal(old) {
		return
	}
	*slot = nw
	if s.probe != nil {
		s.probe(s.now, sig, word, s.probeLine, nw)
	}
	if word != 0 {
		return // memory word writes have no sensitivity in the subset
	}
	if nw.Unknown == 0 && !s.twoState[sig] {
		s.twoState[sig] = true
		s.nPromote++
	}
	if len(s.design.sigAssigns[sig]) == 0 && len(s.watchers[sig]) == 0 {
		// Unobservable transition: no continuous assign reads the signal
		// and no process is waiting on it, so queueing it would only make
		// the flush loop below skip over it. Watcher registrations cannot
		// appear between here and the drain (processes never arm waits
		// mid-write), so the skip is exact.
		return
	}
	s.changed = append(s.changed, changeRec{sig: sig, oldV: old, newV: nw})
	if s.flushing {
		return // the outer flush loop will pick this up
	}
	s.flush()
}

// commitFull is commitWrite specialized for the pervasive case: a full-
// width store to word 0 of a signal whose store offset is already known
// (off == design.wordOffset[sig]). Every non-indexed store opcode and
// every continuous-assign fast path lands here, skipping the bounds
// check and the masked merge. v must already be resized to the signal
// width (so v.Width == old.Width and v is masked).
func (s *Simulator) commitFull(sig SignalID, off int32, v Value) {
	slot := &s.store[off]
	old := *slot
	if old.Unknown|v.Unknown == 0 {
		if v.Bits == old.Bits {
			return
		}
	} else if v.Equal(old) {
		return
	}
	*slot = v
	if s.probe != nil {
		s.probe(s.now, sig, 0, s.probeLine, v)
	}
	if v.Unknown == 0 && !s.twoState[sig] {
		s.twoState[sig] = true
		s.nPromote++
	}
	if len(s.design.sigAssigns[sig]) == 0 && len(s.watchers[sig]) == 0 {
		return
	}
	s.changed = append(s.changed, changeRec{sig: sig, oldV: old, newV: v})
	if s.flushing {
		return
	}
	s.flush()
}

// flush drains the change queue: waking matching event waiters and
// re-evaluating dependent continuous assignments, in exact wave order.
// Large independent fan-out batches take the Tier C parallel sweep.
func (s *Simulator) flush() {
	s.flushing = true
	deltas := 0
	for s.changedHead < len(s.changed) {
		c := s.changed[s.changedHead]
		s.changedHead++
		s.wakeWatchers(c)
		list := s.design.sigAssigns[c.sig]
		if len(list) >= coneParMin && s.coneWorkers > 1 && s.design.parSweep[c.sig] {
			if !s.parallelSweep(list, &deltas) {
				return // delta overflow: state already reset
			}
			continue
		}
		for _, idx := range list {
			deltas++
			if deltas > s.opts.MaxDeltas {
				s.deltaOverflow(int(idx))
				return
			}
			s.evalContAssign(int(idx)) // may append to s.changed
		}
	}
	s.changed = s.changed[:0]
	s.changedHead = 0
	s.flushing = false
}

// deltaOverflow reports a combinational loop and resets the wave state.
func (s *Simulator) deltaOverflow(idx int) {
	if s.rtErr == nil {
		s.rtErr = fmt.Errorf("verilog: combinational loop detected near line %d (delta limit %d)",
			s.design.assigns[idx].line, s.opts.MaxDeltas)
	}
	s.changed = s.changed[:0]
	s.changedHead = 0
	s.flushing = false
}

// coneParMin is the fan-out batch size below which the parallel sweep
// is not worth its synchronization cost.
const coneParMin = 64

// parallelSweep evaluates one signal's dependent-assign batch on a
// bounded worker set (Tier C). Eligibility was proven at elaboration
// (design.parSweep): every assign in the batch is a specialized fast
// shape and no assign reads any batch member's destination, so the
// evaluation phase is a pure function of the pre-sweep store. Workers
// only compute values; all commits replay on the simulator goroutine
// in exact wave-list order, making the result byte-identical to the
// sequential sweep regardless of scheduling. Returns false on delta
// overflow (wave state already reset).
func (s *Simulator) parallelSweep(list []int32, deltas *int) bool {
	n := len(list)
	if cap(s.coneVals) < n {
		s.coneVals = make([]Value, n)
	}
	vals := s.coneVals[:n]
	assigns := s.design.assigns
	workers := s.coneWorkers
	if workers > n/16 {
		workers = n / 16 // keep at least 16 evaluations per worker
		if workers < 2 {
			workers = 2
		}
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f := &assigns[list[i]].fast
				vals[i] = s.caFastValue(f).Resize(f.dstWidth)
			}
		}(lo, hi)
	}
	for i := 0; i < chunk && i < n; i++ { // first chunk on this goroutine
		f := &assigns[list[i]].fast
		vals[i] = s.caFastValue(f).Resize(f.dstWidth)
	}
	wg.Wait()
	for i, idx := range list {
		*deltas++
		if *deltas > s.opts.MaxDeltas {
			s.deltaOverflow(int(idx))
			return false
		}
		f := &assigns[idx].fast
		s.commitFull(f.dst, f.dstOff, vals[i])
	}
	return true
}

// wakeWatchers moves event-waiting processes whose edge matches onto the
// active queue. Stale references (an older arm generation, an already
// fired wait, a finished process) are dropped lazily here.
func (s *Simulator) wakeWatchers(c changeRec) {
	entries := s.watchers[c.sig]
	if len(entries) == 0 {
		return
	}
	kept := entries[:0]
	for _, ref := range entries {
		w := ref.w
		if ref.gen != w.gen || w.fired || w.r.done {
			continue
		}
		match := false
		for _, it := range w.sens {
			if it.sig == c.sig && edgeMatches(it.edge, c.oldV, c.newV) {
				match = true
				break
			}
		}
		if match {
			w.fired = true
			s.active = append(s.active, w.r)
			continue
		}
		kept = append(kept, ref)
	}
	s.watchers[c.sig] = kept
}

// evalContAssign recomputes one continuous assignment and writes its
// LHS. Compiled assigns run their evaluate-and-store program on the
// pooled scratch slab; the rare uncompiled lvalue shapes keep the tree
// evaluator (identical semantics, just slower).
func (s *Simulator) evalContAssign(idx int) {
	ca := s.design.assigns[idx]
	if s.probe != nil {
		// Attribute every commit of this evaluation — fast-path, compiled
		// program and tree fallback alike — to the assign's source line.
		// (Store opcodes re-set the line, to the same value, from their
		// own debug info.)
		s.probeLine = int32(ca.line)
	}
	if f := &ca.fast; f.kind != caFastNone {
		// Specialized simple shapes (port copies, one-operator RHSes):
		// the bulk of real propagation waves, computed without entering
		// the VM dispatch loop at all. Store offsets were resolved at
		// elaboration (finalizeLayout), so no wordOffset lookups here.
		s.commitFull(f.dst, f.dstOff, s.caFastValue(f).Resize(f.dstWidth))
		return
	}
	if prog := ca.prog; prog != nil {
		regs := s.caRegs[s.design.caRegOff[idx]:s.design.caRegOff[idx+1]]
		nested := s.caBusy[idx]
		if nested {
			// Re-entered while mid-program: a multi-store assign whose
			// own first store's propagation wave (only possible outside a
			// flush, i.e. the t=0 evaluation) re-evaluates the same
			// assign. The outer frame's registers are still live, so the
			// nested run gets fresh ones — the per-entry locals the tree
			// kernel had, preserved exactly.
			regs = make([]Value, prog.numRegs)
		} else {
			s.caBusy[idx] = true
		}
		// The simulator-resident evaluator avoids a per-evaluation heap
		// allocation: passing a stack evaluator into vmRun escapes now
		// that superinstruction closures receive it through an indirect
		// call. Nested re-evaluations restore the outer scope on return.
		oldScope, oldID := s.caEv.scope, s.caEvID
		if oldID != ca.scopeID {
			s.caEv.scope, s.caEvID = ca.scope, ca.scopeID
		}
		_, err := vmRun(s, prog, regs, nil, &s.caEv, 0)
		if oldID != ca.scopeID {
			s.caEv.scope, s.caEvID = oldScope, oldID
		}
		if !nested {
			s.caBusy[idx] = false
		}
		if err != nil {
			if s.rtErr == nil {
				s.rtErr = fmt.Errorf("continuous assign at line %d: %w", ca.line, err)
			}
		}
		return
	}
	ev := &evaluator{sim: s, scope: ca.scope}
	rhs, err := ev.eval(ca.rhs)
	if err != nil {
		if s.rtErr == nil {
			s.rtErr = fmt.Errorf("continuous assign at line %d: %w", ca.line, err)
		}
		return
	}
	if err := ev.writeLValue(ca.lhs, rhs, false, nil); err != nil {
		if s.rtErr == nil {
			s.rtErr = fmt.Errorf("continuous assign at line %d: %w", ca.line, err)
		}
	}
}

// caFastValue computes one specialized continuous-assign shape from the
// current store. Pure: reads the store, touches no other simulator
// state, so Tier C workers may call it concurrently during the
// evaluation phase of a parallel sweep.
func (s *Simulator) caFastValue(f *caFast) Value {
	switch f.kind {
	case caFastCopy:
		return s.store[f.aOff]
	case caFastConst:
		return f.k
	case caFastBin:
		return vmBinary(f.op, s.store[f.aOff], s.store[f.bOff])
	case caFastBinK:
		return vmBinary(f.op, s.store[f.aOff], f.k)
	case caFastBitK:
		x := s.store[f.aOff]
		i := int(int32(f.k.Bits))
		if i < 0 || i >= x.Width {
			return AllX(1)
		}
		return x.Bit(i)
	default: // caFastUn
		return vmUnary(f.op, s.store[f.aOff])
	}
}

// random returns the next $random value (xorshift64*).
func (s *Simulator) random() uint64 {
	s.rngState ^= s.rngState >> 12
	s.rngState ^= s.rngState << 25
	s.rngState ^= s.rngState >> 27
	return s.rngState * 2685821657736338717
}

// --- convenience entry points ------------------------------------------

// CompileAndRun parses, elaborates and simulates src with the given top
// module. Parse and elaboration failures come back as errors; everything
// later is reported inside the SimResult.
func CompileAndRun(src, top string, opts SimOptions) (*SimResult, error) {
	cd, err := Compile(src, top)
	if err != nil {
		return nil, err
	}
	return cd.Run(opts)
}

// RunTestbench pairs a DUT source with a testbench source and simulates
// the testbench top. It is the compatibility entry point the framework
// packages historically scored candidates through; it now routes through
// the shared compile cache (see SetTestbenchCompiler), so a DUT or bench
// the farm has already compiled is never re-parsed. Its diagnostics are
// phrased the way an EDA tool would phrase them.
func RunTestbench(dutSrc, tbSrc, tbTop string, opts SimOptions) (*SimResult, error) {
	cd, err := compileTestbench(dutSrc, tbSrc, tbTop)
	if err != nil {
		return nil, err
	}
	return cd.Run(opts)
}

// FormatSignals renders a stable listing of final signal values whose
// names match the given prefix; used by self-consistency clustering.
// Single-word signals render in binary-literal style, multi-word signals
// (memories, wide buses) as their FormatWords hex string, so candidates
// that differ only in wide state still get distinct listings.
func FormatSignals(res *SimResult, prefix string) string {
	return FormatSignalsFunc(res, func(n string) bool {
		return strings.HasPrefix(n, prefix)
	})
}

// FormatSignalsFunc is FormatSignals with an arbitrary name filter, for
// callers whose selection is not a plain prefix (e.g. vrank keeps only
// bench-level names). Rendering is identical, so derived fingerprints
// stay in sync with the human-readable listings.
func FormatSignalsFunc(res *SimResult, keep func(name string) bool) string {
	type entry struct {
		name string
		v    Value
		mem  string
	}
	entries := make([]entry, 0, len(res.Final)+len(res.FinalMem))
	total := 0
	for n, v := range res.Final {
		if keep(n) {
			entries = append(entries, entry{name: n, v: v})
			total += len(n) + v.Width + 8
		}
	}
	for n, m := range res.FinalMem {
		if keep(n) {
			entries = append(entries, entry{name: n, mem: m})
			total += len(n) + len(m) + 2
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var b strings.Builder
	b.Grow(total)
	var scratch []byte
	for i := range entries {
		e := &entries[i]
		b.WriteString(e.name)
		b.WriteByte('=')
		if e.mem != "" {
			b.WriteString(e.mem)
		} else {
			scratch = e.v.appendString(scratch[:0])
			b.Write(scratch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
