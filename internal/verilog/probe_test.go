package verilog_test

import (
	"reflect"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/verilog"
)

// TestProbeObserverSoundness pins the probe's pure-observer contract:
// attaching a commit probe must not change a single observable outcome
// of a simulation. For every benchset problem across several seeds the
// reference DUT runs against its full testbench twice — once plain,
// once with a counting probe attached — and the two runs must agree on
// every field the kernel golden suite records. The probed run must also
// actually see commits; a probe that never fires would pass the
// equivalence check vacuously.
func TestProbeObserverSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchset sweep")
	}
	for _, p := range benchset.Suite() {
		cd, err := verilog.CompileSources("tb", p.Reference, p.Testbench())
		if err != nil {
			t.Fatalf("%s: compile: %v", p.ID, err)
		}
		for seed := uint64(1); seed <= 3; seed++ {
			plain := probeRun(t, cd, seed, false)
			probed := probeRun(t, cd, seed, true)
			if !reflect.DeepEqual(plain.run, probed.run) {
				t.Errorf("%s seed %d: probe perturbed the simulation\nplain:  %+v\nprobed: %+v",
					p.ID, seed, plain.run, probed.run)
			}
			if probed.events == 0 {
				t.Errorf("%s seed %d: probe attached but observed no commits", p.ID, seed)
			}
			if probed.lined == 0 {
				t.Errorf("%s seed %d: no probe event carried a source line", p.ID, seed)
			}
		}
	}
}

type probedRun struct {
	run    goldenRun
	events int
	lined  int
}

func probeRun(t *testing.T, cd *verilog.CompiledDesign, seed uint64, probe bool) probedRun {
	t.Helper()
	sim := verilog.NewSimulator(cd.Design, verilog.SimOptions{Seed: seed})
	var pr probedRun
	if probe {
		sim.SetProbe(func(tm uint64, sig verilog.SignalID, word int, line int32, v verilog.Value) {
			pr.events++
			if line > 0 {
				pr.lined++
			}
		})
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if res.RuntimeErr != nil {
		t.Fatalf("seed %d: runtime error %v", seed, res.RuntimeErr)
	}
	pr.run = goldenRun{
		Output:   res.Output,
		Signals:  verilog.FormatSignals(res, ""),
		EndTime:  res.EndTime,
		Checks:   res.Checks,
		Failures: res.Failures,
		Finished: res.Finished,
		TimedOut: res.TimedOut,
	}
	return pr
}
