package verilog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Property test for the bytecode engine: random expression trees must
// evaluate bit-for-bit identically on the VM and on the retained tree
// evaluator — values when both succeed, error text when both fail, and
// never one succeeding where the other fails. Trees draw 4-state leaf
// values across the full width range the subset supports (1..64 bits;
// wider state exists only as multi-word memories, which the generator
// covers through word reads), and include every operator, ternaries with
// unknown conditions, concats, replications, part selects with both
// constant and computed bounds, bit selects, memory word reads, and
// $time/$random/$clog2.

// propSignals is the signal state the generated trees read.
var propSignals = []struct {
	name  string
	width int
	words int
}{
	{"s1", 1, 1},
	{"s5", 5, 1},
	{"s8", 8, 1},
	{"s16", 16, 1},
	{"s32", 32, 1},
	{"s63", 63, 1},
	{"s64", 64, 1},
	{"mem8", 8, 16},
	{"mem64", 64, 4},
}

// propDesign elaborates a design declaring the property signals.
func propDesign(t *testing.T) *Design {
	t.Helper()
	src := `module tb;
  reg s1;
  reg [4:0] s5;
  reg [7:0] s8;
  reg [15:0] s16;
  reg [31:0] s32;
  reg [62:0] s63;
  reg [63:0] s64;
  reg [7:0] mem8 [0:15];
  reg [63:0] mem64 [0:3];
endmodule`
	cd, err := Compile(src, "tb")
	if err != nil {
		t.Fatalf("compile prop design: %v", err)
	}
	return cd.Design
}

// randValue draws a 4-state value of the given width; roughly half the
// draws are fully known.
func randValue(rng *rand.Rand, width int) Value {
	v := Value{Bits: rng.Uint64() & maskFor(width), Width: width}
	if rng.Intn(2) == 0 {
		v.Unknown = rng.Uint64() & maskFor(width)
	}
	return v
}

// exprGen builds random bound expression trees over the prop signals.
type exprGen struct {
	rng *rand.Rand
	d   *Design
}

func (g *exprGen) ref(name string) *boundRef {
	id, ok := g.d.byName["tb."+name]
	if !ok {
		panic("missing prop signal " + name)
	}
	return &boundRef{sig: id, name: name, line: 1}
}

var propUnaryOps = []string{"~", "!", "-", "&", "|", "^", "~&", "~|", "~^"}
var propBinaryOps = []string{
	"+", "-", "*", "/", "%", "&", "|", "^", "~^", "~&", "~|",
	"<<", ">>", "==", "!=", "===", "!==", "<", ">", "<=", ">=", "&&", "||",
}

func (g *exprGen) gen(depth int) Expr {
	r := g.rng
	if depth <= 0 || r.Intn(4) == 0 {
		// Leaf: a literal or a signal read.
		switch r.Intn(3) {
		case 0:
			w := 1 + r.Intn(64)
			return &Number{Val: randValue(r, w), Line: 1}
		case 1:
			sig := propSignals[r.Intn(7)] // single-word signals only
			return g.ref(sig.name)
		default:
			// Memory word read (possibly out of range or X-indexed).
			mem := propSignals[7+r.Intn(2)]
			return &Index{X: g.ref(mem.name), Idx: g.gen(0), Line: 1}
		}
	}
	switch r.Intn(10) {
	case 0:
		return &Unary{Op: propUnaryOps[r.Intn(len(propUnaryOps))], X: g.gen(depth - 1)}
	case 1, 2, 3:
		return &Binary{Op: propBinaryOps[r.Intn(len(propBinaryOps))], X: g.gen(depth - 1), Y: g.gen(depth - 1)}
	case 4:
		return &Ternary{Cond: g.gen(depth - 1), Then: g.gen(depth - 1), Else: g.gen(depth - 1)}
	case 5:
		n := 1 + g.rng.Intn(3)
		parts := make([]Expr, n)
		for i := range parts {
			parts[i] = g.gen(depth - 1)
		}
		return &Concat{Parts: parts}
	case 6:
		// Replication; counts occasionally unknown or oversized to cover
		// the diagnostic paths.
		count := Expr(&Number{Val: NewValue(uint64(1+g.rng.Intn(5)), 8), Line: 1})
		if g.rng.Intn(8) == 0 {
			count = g.gen(0)
		}
		return &Repeat{Count: count, X: g.gen(depth - 1)}
	case 7:
		// Bit select on an arbitrary expression.
		return &Index{X: g.gen(depth - 1), Idx: g.gen(depth - 1), Line: 1}
	case 8:
		// Part select: usually constant bounds, sometimes computed.
		lsb := g.rng.Intn(16)
		w := 1 + g.rng.Intn(16)
		var msbE, lsbE Expr = &Number{Val: NewValue(uint64(lsb+w-1), 32), Line: 1},
			&Number{Val: NewValue(uint64(lsb), 32), Line: 1}
		if g.rng.Intn(6) == 0 {
			msbE = g.gen(0)
		}
		if g.rng.Intn(6) == 0 {
			lsbE = g.gen(0)
		}
		return &PartSelect{X: g.gen(depth - 1), MSB: msbE, LSB: lsbE, Line: 1}
	default:
		switch g.rng.Intn(3) {
		case 0:
			return &SysFunc{Name: "$time", Line: 1}
		case 1:
			return &SysFunc{Name: "$random", Line: 1}
		default:
			return &SysFunc{Name: "$clog2", Args: []Expr{g.gen(depth - 1)}, Line: 1}
		}
	}
}

// evalBoth evaluates ex on the tree evaluator and on the VM from
// identical simulator state and returns both outcomes.
func evalBoth(t *testing.T, s *Simulator, ex Expr) (treeV Value, treeErr error, vmV Value, vmErr error) {
	t.Helper()
	ev := evaluator{sim: s, scope: nil}

	rng := s.rngState
	treeV, treeErr = ev.eval(ex)

	lw := getLowerer(s.design, nil, true)
	lw.expr(ex, 0)
	lw.emit(opEnd, 0, 0, 0, 0, 0)
	lw.finish()
	prog := lw.prog
	putLowerer(lw)

	s.rngState = rng // both sides see the same $random stream
	regs := make([]Value, prog.numRegs)
	_, vmErr = vmRun(s, prog, regs, nil, &ev, 0)
	if vmErr == nil && prog.numRegs > 0 {
		vmV = regs[0]
	}
	return treeV, treeErr, vmV, vmErr
}

func TestVMMatchesTreeEvaluatorOnRandomExprs(t *testing.T) {
	d := propDesign(t)
	rng := rand.New(rand.NewSource(20260729))
	g := &exprGen{rng: rng, d: d}

	const trees = 5000
	for i := 0; i < trees; i++ {
		s := NewSimulator(d, SimOptions{Seed: uint64(i)})
		// Randomize every signal word, including memories.
		for _, sig := range d.Signals {
			words := s.words(sig.ID)
			for w := range words {
				words[w] = randValue(rng, sig.Width)
			}
		}
		s.now = uint64(rng.Intn(1 << 20))

		ex := g.gen(4)
		treeV, treeErr, vmV, vmErr := evalBoth(t, s, ex)
		switch {
		case (treeErr == nil) != (vmErr == nil):
			t.Fatalf("tree %d: error divergence\n tree: %v (val %s)\n   vm: %v (val %s)",
				i, treeErr, treeV, vmErr, vmV)
		case treeErr != nil:
			if treeErr.Error() != vmErr.Error() {
				t.Fatalf("tree %d: diagnostics diverge\n tree: %v\n   vm: %v", i, treeErr, vmErr)
			}
		case treeV != vmV:
			t.Fatalf("tree %d: values diverge\n tree: %s (bits %#x unk %#x w %d)\n   vm: %s (bits %#x unk %#x w %d)",
				i, treeV, treeV.Bits, treeV.Unknown, treeV.Width,
				vmV, vmV.Bits, vmV.Unknown, vmV.Width)
		}
	}
}

// TestVMHelpersMatchApply pins the out-of-loop helpers the continuous-
// assign fast paths use (vmBinary/vmUnary) to the canonical applyBinary/
// applyUnary semantics over random operand pairs.
func TestVMHelpersMatchApply(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		x := randValue(rng, 1+rng.Intn(64))
		y := randValue(rng, 1+rng.Intn(64))
		for opStr, opc := range binaryOps {
			want, err := applyBinary(opStr, x, y)
			if err != nil {
				t.Fatalf("applyBinary(%q) errored: %v", opStr, err)
			}
			if got := vmBinary(opc, x, y); got != want {
				t.Fatalf("vmBinary(%q, %s, %s) = %s, applyBinary = %s", opStr, x, y, got, want)
			}
		}
		for opStr, opc := range unaryOps {
			want, err := applyUnary(opStr, x)
			if err != nil {
				t.Fatalf("applyUnary(%q) errored: %v", opStr, err)
			}
			if got := vmUnary(opc, x); got != want {
				t.Fatalf("vmUnary(%q, %s) = %s, applyUnary = %s", opStr, x, got, want)
			}
		}
	}
}

// TestSelfDependentConcatAssignReentry pins the register-file isolation
// of re-entrant continuous assigns: a multi-store concat assign whose
// own first store's t=0 propagation wave re-evaluates the same assign
// must behave exactly like the tree kernel's per-entry locals — the
// nested evaluation may not clobber the outer frame's still-live RHS
// registers. The $random stream is the sensitive observable: the tree
// kernel's stale-slice store triggers two extra evaluation waves (each
// drawing one $random from the masked term), so a later draw in the
// initial block lands on a different stream position if the VM skips
// them. Expected bytes captured from the pre-VM kernel at Seed 7.
func TestSelfDependentConcatAssignReentry(t *testing.T) {
	src := `module tb;
  wire [1:0] y;
  wire z;
  reg [31:0] r;
  assign {y, z} = {2'b01, y[1]} ^ ($random & 32'h0);
  initial begin #1 r = $random; #1 $finish; end
endmodule`
	cd, err := Compile(src, "tb")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cd.Run(SimOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeErr != nil || !res.Finished || res.EndTime != 2 {
		t.Fatalf("run diverged: %+v", res)
	}
	want := "tb.r=32'b11111011100010111001111111101000\ntb.y=2'b01\ntb.z=1'b0\n"
	if got := FormatSignals(res, "tb."); got != want {
		t.Fatalf("finals diverged from the tree kernel:\n got %q\nwant %q", got, want)
	}
}

// withTierConfig runs fn under a forced tiered-VM configuration,
// restoring the defaults afterwards. Programs compiled inside fn carry
// the configuration permanently (fusion and superinstruction synthesis
// happen at lowering), so fn must compile everything it runs.
func withTierConfig(fusion, super, twoState bool, fn func()) {
	oldF, oldS, oldT := enableFusion, enableSuper, enableTwoState
	enableFusion, enableSuper, enableTwoState = fusion, super, twoState
	defer func() { enableFusion, enableSuper, enableTwoState = oldF, oldS, oldT }()
	fn()
}

// genTierSource builds one random self-contained testbench whose hot
// paths land on every tier surface: straight-line always bodies (Tier A
// statement templates), constant-seeded then $random-perturbed counters
// (Tier B promotion and fallback), a small continuous-assign cone, an
// uninitialized register so X actually flows through fused arithmetic,
// and interleaved $display so the output stream pins evaluation order.
func genTierSource(rng *rand.Rand) string {
	var b strings.Builder
	ops := []string{"+", "-", "*", "&", "|", "^"}
	b.WriteString("module tb;\n")
	b.WriteString("  reg clk, rst;\n")
	b.WriteString("  reg [7:0] a;\n")
	b.WriteString("  reg [15:0] c0, c1;\n")
	b.WriteString("  reg [31:0] acc, x, y, i;\n")
	b.WriteString("  wire [31:0] w0, w1;\n")
	b.WriteString("  assign w0 = x ^ y;\n")
	fmt.Fprintf(&b, "  assign w1 = w0 %s acc;\n", ops[rng.Intn(3)])
	b.WriteString("  always #1 clk = ~clk;\n")
	b.WriteString("  always @(posedge clk)\n")
	b.WriteString("    if (rst) begin c0 <= 0; c1 <= 0; end\n")
	b.WriteString("    else begin\n")
	fmt.Fprintf(&b, "      c0 <= c0 + %d;\n", 1+rng.Intn(7))
	fmt.Fprintf(&b, "      c1 <= c1 %s c0;\n", ops[rng.Intn(len(ops))])
	b.WriteString("    end\n")
	b.WriteString("  initial begin\n")
	b.WriteString("    clk = 0; rst = 1; a = 1; acc = 0;\n")
	fmt.Fprintf(&b, "    x = %d;\n", rng.Intn(1<<16))
	// y stays uninitialized here: the w0/w1 cone and any fused block
	// reading y must take the X path until the loop assigns it.
	b.WriteString("    #4 rst = 0;\n")
	n := 32 + rng.Intn(96)
	fmt.Fprintf(&b, "    for (i = 0; i < %d; i = i + 1) begin\n", n)
	if rng.Intn(2) == 0 {
		b.WriteString("      if (i == 9) y = $random;\n")
	} else {
		b.WriteString("      if (i == 3) y = x + 1;\n")
	}
	// A run of random straight-line statements: the fusion candidates.
	for s := 0; s < 3+rng.Intn(6); s++ {
		dst := []string{"acc", "x", "a"}[rng.Intn(3)]
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "      %s = %s %s %d;\n", dst, dst, ops[rng.Intn(len(ops))], 1+rng.Intn(255))
		case 1:
			src := []string{"acc", "x", "y", "i"}[rng.Intn(4)]
			fmt.Fprintf(&b, "      %s = %s %s %s;\n", dst, dst, ops[rng.Intn(len(ops))], src)
		case 2:
			src := []string{"acc", "x", "y"}[rng.Intn(3)]
			fmt.Fprintf(&b, "      %s = ~%s;\n", dst, src)
		default:
			fmt.Fprintf(&b, "      %s = $random;\n", dst)
		}
	}
	b.WriteString("      #2 ;\n")
	fmt.Fprintf(&b, "      if (i %% %d == 0) $display(\"i=%%d acc=%%h w1=%%h c1=%%h\", i, acc, w1, c1);\n", 8+rng.Intn(24))
	b.WriteString("    end\n")
	b.WriteString("    $display(\"end acc=%h x=%h y=%h w0=%h w1=%h c0=%h c1=%h\", acc, x, y, w0, w1, c0, c1);\n")
	b.WriteString("    $finish;\n")
	b.WriteString("  end\n")
	b.WriteString("endmodule\n")
	return b.String()
}

// tierFingerprint compiles src fresh (so the active tier configuration
// is baked into the programs) and renders everything observable about
// the run as one string.
func tierFingerprint(t *testing.T, src string, seed uint64) (string, VMStats) {
	t.Helper()
	cd, err := Compile(src, "tb")
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	res, err := cd.Run(SimOptions{Seed: seed})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	rt := ""
	if res.RuntimeErr != nil {
		rt = res.RuntimeErr.Error()
	}
	return fmt.Sprintf("out=%q checks=%d fails=%d fin=%v to=%v end=%d rt=%q finals=%q",
		res.Output, res.Checks, res.Failures, res.Finished, res.TimedOut,
		res.EndTime, rt, FormatSignals(res, "tb.")), res.VM
}

// TestTierConfigsAreObservationallyIdentical is the tiered-VM soundness
// property: for random testbenches, every kill-switch configuration —
// superinstructions off, two-state specialization off, the whole
// peephole off — must produce a byte-identical simulation to the
// default fully-tiered engine: same output stream, same $random draw
// order, same final signal state, same termination.
func TestTierConfigsAreObservationallyIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	configs := []struct {
		name                    string
		fusion, super, twoState bool
	}{
		{"noSuper", true, false, false},
		{"noTwoState", true, true, false},
		{"noFusion", false, false, false},
	}
	const sources = 25
	var cover VMStats
	for sIdx := 0; sIdx < sources; sIdx++ {
		src := genTierSource(rng)
		seed := uint64(rng.Intn(1 << 30))
		var want string
		withTierConfig(true, true, true, func() {
			var vm VMStats
			want, vm = tierFingerprint(t, src, seed)
			cover = cover.Add(vm)
		})
		for _, cfg := range configs {
			var got string
			withTierConfig(cfg.fusion, cfg.super, cfg.twoState, func() {
				got, _ = tierFingerprint(t, src, seed)
			})
			if got != want {
				t.Fatalf("source %d: config %s diverged\n want %s\n  got %s\nsource:\n%s",
					sIdx, cfg.name, want, got, src)
			}
		}
	}
	// The property is only meaningful if the corpus actually drove the
	// tiers: superinstructions synthesized, both the Tier A and the
	// specialized Tier B variants dispatched, signals promoted.
	if cover.SuperBlocks == 0 || cover.TierAOps == 0 || cover.TierBOps == 0 || cover.Promotions == 0 {
		t.Fatalf("tier coverage vacuous over corpus: %s", cover)
	}
}
