package verilog

import (
	"fmt"
	"strconv"
)

// This file is the run side of the bytecode execution engine: a single
// register-machine dispatch loop shared by behavioral processes (their
// runner carries the resumable pc, register file and watch entry) and
// continuous assignments (no runner: straight-line evaluate-and-store
// programs on a per-assign scratch region of the simulator's pooled
// register slab). Suspension is a plain pc: a delay or event wait stores
// the resume position on the runner and returns, so the PR 3 dispatch
// model carries over with an integer where the continuation stack was.
//
// Two-state execution is the fast path throughout: every value opcode
// checks the operand Unknown masks once and runs pure uint64 arithmetic
// when no X is present, falling into the shared 4-state routines in
// value.go otherwise. (A static "this process never sees X" proof is
// unsound in this kernel — all state starts at X before reset — so the
// specialization is a per-dispatch branch, which predicts perfectly in
// post-reset steady state.)

// vmStatus is the outcome of one vmRun call.
type vmStatus int

const (
	vmEnd     vmStatus = iota // program complete (initial body / cont assign)
	vmSuspend                 // armed a delay or event wait; pc saved on the runner
	vmFinish                  // $finish/$stop executed
	vmErr                     // runtime diagnostic (or budget exhaustion)
)

// vmRun executes prog from pc until it ends, suspends, finishes, or
// fails. r is nil for continuous-assign programs (which never contain
// process-only opcodes); ev is the tree evaluator used by fallback
// opcodes and overflow diagnostics. Errors from a process context are
// wrapped with the raising instruction's statement line exactly like the
// tree kernel wrapped statement execution; final diagnostics (already
// positioned) and continuous-assign errors pass through raw for the
// caller to wrap.
func vmRun(s *Simulator, prog *Program, regs []Value, r *runner, ev *evaluator, pc int) (vmStatus, error) {
	code := prog.code
	maxSteps := s.opts.MaxSteps
	fail := func(ins *Instr, err error) (vmStatus, error) {
		if r != nil {
			err = fmt.Errorf("line %d: %w", ins.Line, err)
		}
		return vmErr, err
	}
	for {
		ins := &code[pc]
	again:
		s.nGeneric++ // generic dispatch count (VMStats); opSuper re-books below
		switch ins.Op {
		case opStep:
			s.steps++
			if s.steps > maxSteps {
				return vmErr, errBudget
			}
			pc++

		case opJump:
			pc = int(ins.A)

		case opBranchFalse:
			if !regs[ins.A].IsTrue() {
				pc = int(ins.B)
			} else {
				pc++
			}

		case opBranchTrue:
			if regs[ins.A].IsTrue() {
				pc = int(ins.B)
			} else {
				pc++
			}

		case opEnd:
			return vmEnd, nil

		case opAlwaysWait:
			pr := r.proc
			if pr.star && len(r.sens) == 0 {
				return vmErr, fmt.Errorf("verilog: always @* block %s reads no signals", pr.name)
			}
			r.await(r.sens)
			r.pc = 0
			return vmSuspend, nil

		case opFinish:
			return vmFinish, nil

		case opError:
			err := prog.errs[ins.B]
			if ins.A == 1 {
				return vmErr, err
			}
			return fail(ins, err)

		case opCaseBr:
			if caseMatch(regs[ins.A], regs[ins.B], ins.D != 0) {
				pc = int(ins.C)
			} else {
				pc++
			}

		case opConst:
			regs[ins.A] = prog.consts[ins.B]
			pc++

		case opLoadSig:
			regs[ins.A] = s.store[s.design.wordOffset[ins.B]]
			pc++

		case opLoadMem:
			sig := s.design.Signals[ins.B]
			idx := regs[ins.C]
			if !idx.IsFullyKnown() {
				regs[ins.A] = AllX(sig.Width)
			} else if w := int(idx.Uint()); w < 0 || w >= sig.Words {
				regs[ins.A] = AllX(sig.Width)
			} else {
				regs[ins.A] = s.words(sig.ID)[w]
			}
			pc++

		case opTime:
			regs[ins.A] = NewValue(s.now, 64)
			pc++

		case opRandom:
			regs[ins.A] = NewValue(s.random()&0xFFFFFFFF, 32)
			pc++

		case opClog2:
			v := regs[ins.A]
			if !v.IsFullyKnown() {
				regs[ins.A] = AllX(32)
			} else {
				x := v.Uint()
				n := 0
				// Capped at 64 like the tree evaluator: an unbounded
				// shift spins forever for x > 2^63.
				for n < 64 && (uint64(1)<<uint(n)) < x {
					n++
				}
				regs[ins.A] = NewValue(uint64(n), 32)
			}
			pc++

		// --- unary ------------------------------------------------------
		case opNot:
			x := regs[ins.A]
			regs[ins.A] = Not(x, x.Width)
			pc++
		case opNeg:
			x := regs[ins.A]
			regs[ins.A] = Sub(NewValue(0, x.Width), x, x.Width)
			pc++
		case opLogNot:
			regs[ins.A] = LogicalNot(regs[ins.A])
			pc++
		case opRedAnd:
			regs[ins.A] = ReduceAnd(regs[ins.A])
			pc++
		case opRedOr:
			regs[ins.A] = ReduceOr(regs[ins.A])
			pc++
		case opRedXor:
			regs[ins.A] = ReduceXor(regs[ins.A])
			pc++
		case opRedNand:
			regs[ins.A] = LogicalNot(ReduceAnd(regs[ins.A]))
			pc++
		case opRedNor:
			regs[ins.A] = LogicalNot(ReduceOr(regs[ins.A]))
			pc++
		case opRedXnor:
			regs[ins.A] = LogicalNot(ReduceXor(regs[ins.A]))
			pc++

		// --- binary -----------------------------------------------------
		// Register values are invariantly masked to their width, so the
		// Resize calls applyBinary made are identities here and the
		// two-state paths reduce to single uint64 operations.
		case opAdd:
			x, y := regs[ins.A], regs[ins.B]
			w := max(x.Width, y.Width)
			if w < 64 {
				w++
			}
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(w)
			} else {
				regs[ins.A] = NewValue(x.Bits+y.Bits, w)
			}
			pc++
		case opSub:
			x, y := regs[ins.A], regs[ins.B]
			w := max(x.Width, y.Width)
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(w)
			} else {
				regs[ins.A] = NewValue(x.Bits-y.Bits, w)
			}
			pc++
		case opMul:
			x, y := regs[ins.A], regs[ins.B]
			w := x.Width + y.Width
			if w > 64 {
				w = 64
			}
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(w)
			} else {
				regs[ins.A] = NewValue(x.Bits*y.Bits, w)
			}
			pc++
		case opDiv:
			x, y := regs[ins.A], regs[ins.B]
			w := max(x.Width, y.Width)
			if x.Unknown|y.Unknown != 0 || y.Bits == 0 {
				regs[ins.A] = AllX(w)
			} else {
				regs[ins.A] = NewValue(x.Bits/y.Bits, w)
			}
			pc++
		case opMod:
			x, y := regs[ins.A], regs[ins.B]
			w := max(x.Width, y.Width)
			if x.Unknown|y.Unknown != 0 || y.Bits == 0 {
				regs[ins.A] = AllX(w)
			} else {
				regs[ins.A] = NewValue(x.Bits%y.Bits, w)
			}
			pc++
		case opAnd:
			x, y := regs[ins.A], regs[ins.B]
			regs[ins.A] = And(x, y, max(x.Width, y.Width))
			pc++
		case opOr:
			x, y := regs[ins.A], regs[ins.B]
			regs[ins.A] = Or(x, y, max(x.Width, y.Width))
			pc++
		case opXor:
			x, y := regs[ins.A], regs[ins.B]
			regs[ins.A] = Xor(x, y, max(x.Width, y.Width))
			pc++
		case opXnor:
			x, y := regs[ins.A], regs[ins.B]
			w := max(x.Width, y.Width)
			regs[ins.A] = Not(Xor(x, y, w), w)
			pc++
		case opNand:
			x, y := regs[ins.A], regs[ins.B]
			w := max(x.Width, y.Width)
			regs[ins.A] = Not(And(x, y, w), w)
			pc++
		case opNor:
			x, y := regs[ins.A], regs[ins.B]
			w := max(x.Width, y.Width)
			regs[ins.A] = Not(Or(x, y, w), w)
			pc++
		case opShl:
			x, y := regs[ins.A], regs[ins.B]
			regs[ins.A] = Shl(x, y, x.Width)
			pc++
		case opShr:
			x, y := regs[ins.A], regs[ins.B]
			regs[ins.A] = Shr(x, y, x.Width)
			pc++
		case opEq:
			x, y := regs[ins.A], regs[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(x.Bits == y.Bits)
			}
			pc++
		case opNe:
			x, y := regs[ins.A], regs[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(x.Bits != y.Bits)
			}
			pc++
		case opCaseEq:
			regs[ins.A] = cmpBool(regs[ins.A].Equal(regs[ins.B]))
			pc++
		case opCaseNe:
			regs[ins.A] = cmpBool(!regs[ins.A].Equal(regs[ins.B]))
			pc++
		case opLt:
			x, y := regs[ins.A], regs[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(x.Bits < y.Bits)
			}
			pc++
		case opGt:
			x, y := regs[ins.A], regs[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(y.Bits < x.Bits)
			}
			pc++
		case opLe:
			x, y := regs[ins.A], regs[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(!(y.Bits < x.Bits))
			}
			pc++
		case opGe:
			x, y := regs[ins.A], regs[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(!(x.Bits < y.Bits))
			}
			pc++
		case opLogAnd:
			regs[ins.A] = LogicalAnd(regs[ins.A], regs[ins.B])
			pc++
		case opLogOr:
			regs[ins.A] = LogicalOr(regs[ins.A], regs[ins.B])
			pc++

		// --- binary, constant RHS ---------------------------------------
		case opAddK:
			x, y := regs[ins.A], prog.consts[ins.B]
			w := max(x.Width, y.Width)
			if w < 64 {
				w++
			}
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(w)
			} else {
				regs[ins.A] = NewValue(x.Bits+y.Bits, w)
			}
			pc++
		case opSubK:
			x, y := regs[ins.A], prog.consts[ins.B]
			w := max(x.Width, y.Width)
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(w)
			} else {
				regs[ins.A] = NewValue(x.Bits-y.Bits, w)
			}
			pc++
		case opMulK:
			x, y := regs[ins.A], prog.consts[ins.B]
			w := x.Width + y.Width
			if w > 64 {
				w = 64
			}
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(w)
			} else {
				regs[ins.A] = NewValue(x.Bits*y.Bits, w)
			}
			pc++
		case opAndK:
			x, y := regs[ins.A], prog.consts[ins.B]
			regs[ins.A] = And(x, y, max(x.Width, y.Width))
			pc++
		case opOrK:
			x, y := regs[ins.A], prog.consts[ins.B]
			regs[ins.A] = Or(x, y, max(x.Width, y.Width))
			pc++
		case opXorK:
			x, y := regs[ins.A], prog.consts[ins.B]
			regs[ins.A] = Xor(x, y, max(x.Width, y.Width))
			pc++
		case opShlK:
			x := regs[ins.A]
			regs[ins.A] = Shl(x, prog.consts[ins.B], x.Width)
			pc++
		case opShrK:
			x := regs[ins.A]
			regs[ins.A] = Shr(x, prog.consts[ins.B], x.Width)
			pc++
		case opEqK:
			x, y := regs[ins.A], prog.consts[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(x.Bits == y.Bits)
			}
			pc++
		case opNeK:
			x, y := regs[ins.A], prog.consts[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(x.Bits != y.Bits)
			}
			pc++
		case opLtK:
			x, y := regs[ins.A], prog.consts[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(x.Bits < y.Bits)
			}
			pc++
		case opGtK:
			x, y := regs[ins.A], prog.consts[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(y.Bits < x.Bits)
			}
			pc++
		case opLeK:
			x, y := regs[ins.A], prog.consts[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(!(y.Bits < x.Bits))
			}
			pc++
		case opGeK:
			x, y := regs[ins.A], prog.consts[ins.B]
			if x.Unknown|y.Unknown != 0 {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = cmpBool(!(x.Bits < y.Bits))
			}
			pc++

		// --- compound expressions ----------------------------------------
		case opTernBranch:
			c := regs[ins.A]
			var mode uint64
			switch {
			case !c.IsFullyKnown():
				mode = 2
			case c.IsTrue():
				mode = 1
			}
			regs[ins.B] = Value{Bits: mode}
			if mode == 0 {
				pc = int(ins.C)
			} else {
				pc++
			}

		case opTernMid:
			if regs[ins.B].Bits == 1 {
				pc = int(ins.C)
			} else {
				pc++
			}

		case opTernEnd:
			if regs[ins.B].Bits == 2 {
				regs[ins.A] = AllX(max(regs[ins.A].Width, regs[ins.C].Width))
			} else {
				regs[ins.A] = regs[ins.C]
			}
			pc++

		case opConcatZero:
			regs[ins.A] = Value{}
			pc++

		case opConcatAcc:
			v := regs[ins.B]
			out := regs[ins.A]
			if out.Width+v.Width > 64 {
				cc := prog.fbExprs[ins.C].(*Concat)
				return fail(ins, fmt.Errorf("verilog: concatenation width %d exceeds 64", concatWidth(ev, cc)))
			}
			m := maskFor(v.Width)
			out.Bits = out.Bits<<uint(v.Width) | v.Bits&m
			out.Unknown = out.Unknown<<uint(v.Width) | v.Unknown&m
			out.Width += v.Width
			regs[ins.A] = out
			pc++

		case opRepCheck:
			if !regs[ins.A].IsFullyKnown() {
				return fail(ins, fmt.Errorf("replication count is unknown"))
			}
			pc++

		case opReplicate:
			cnt := regs[ins.B]
			x := regs[ins.C]
			k := int(cnt.Uint())
			if k <= 0 || x.Width <= 0 || k > 64/x.Width {
				return fail(ins, fmt.Errorf("replication {%d{...}} of width %d unsupported", k, x.Width))
			}
			m := maskFor(x.Width)
			var out Value
			for i := 0; i < k; i++ {
				out.Bits = out.Bits<<uint(x.Width) | x.Bits&m
				out.Unknown = out.Unknown<<uint(x.Width) | x.Unknown&m
				out.Width += x.Width
			}
			regs[ins.A] = out
			pc++

		case opBitSel:
			x, idx := regs[ins.A], regs[ins.B]
			if !idx.IsFullyKnown() {
				regs[ins.A] = AllX(1)
			} else if i := int(idx.Uint()); i < 0 || i >= x.Width {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = x.Bit(i)
			}
			pc++

		case opBitSelK:
			x := regs[ins.A]
			if i := int(ins.C); i < 0 || i >= x.Width {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = x.Bit(i)
			}
			pc++

		case opPartSelK:
			x := regs[ins.A]
			w := int(ins.D)
			m := maskFor(w)
			regs[ins.A] = Value{
				Bits:    (x.Bits >> uint(ins.C)) & m,
				Unknown: (x.Unknown >> uint(ins.C)) & m,
				Width:   w,
			}
			pc++

		case opPartSel:
			msbV, lsbV := regs[ins.B], regs[ins.C]
			if !msbV.IsFullyKnown() || !lsbV.IsFullyKnown() {
				return fail(ins, fmt.Errorf("part-select bounds are unknown at line %d", ins.D))
			}
			msb, lsb := int(msbV.Uint()), int(lsbV.Uint())
			if msb < lsb || msb-lsb+1 > 64 {
				return fail(ins, fmt.Errorf("bad part-select [%d:%d] at line %d", msb, lsb, ins.D))
			}
			x := regs[ins.A]
			w := msb - lsb + 1
			m := maskFor(w)
			regs[ins.A] = Value{
				Bits:    (x.Bits >> uint(lsb)) & m,
				Unknown: (x.Unknown >> uint(lsb)) & m,
				Width:   w,
			}
			pc++

		// --- stores -----------------------------------------------------
		case opStoreSig, opStoreSigNB:
			w := int(ins.C)
			v := regs[ins.A].Resize(w)
			sig := SignalID(ins.B)
			s.probeLine = ins.Line // probe attribution; dead store when off
			if ins.Op == opStoreSigNB {
				s.nba = append(s.nba, nbaUpdate{sig: sig, mask: maskFor(w), value: v, line: ins.Line})
			} else {
				// C is always the declared width, so this is a full-width
				// word-0 store: the specialized commit applies.
				s.commitFull(sig, s.design.wordOffset[sig], v)
			}
			pc++

		case opStoreMem, opStoreMemNB:
			idx := regs[ins.C]
			if idx.IsFullyKnown() {
				i := int(idx.Uint())
				w := int(ins.D)
				v := regs[ins.A].Resize(w)
				sig := SignalID(ins.B)
				s.probeLine = ins.Line
				if ins.Op == opStoreMemNB {
					s.nba = append(s.nba, nbaUpdate{sig: sig, word: i, mask: maskFor(w), value: v, line: ins.Line})
				} else {
					s.commitWrite(sig, i, maskFor(w), v)
				}
			}
			pc++

		case opStoreBit, opStoreBitNB:
			idx := regs[ins.C]
			if idx.IsFullyKnown() {
				i := int(idx.Uint())
				w := int(ins.D)
				if i >= 0 && i < w {
					v := regs[ins.A]
					shifted := Value{Bits: (v.Bits & 1) << uint(i), Unknown: (v.Unknown & 1) << uint(i), Width: w}
					sig := SignalID(ins.B)
					s.probeLine = ins.Line
					if ins.Op == opStoreBitNB {
						s.nba = append(s.nba, nbaUpdate{sig: sig, mask: uint64(1) << uint(i), value: shifted, line: ins.Line})
					} else {
						s.commitWrite(sig, 0, uint64(1)<<uint(i), shifted)
					}
				}
			}
			pc++

		case opStorePartK, opStorePartKNB:
			lsb, w := int(ins.C), int(ins.D)
			sig := s.design.Signals[ins.B]
			v := regs[ins.A]
			mask := maskFor(w) << uint(lsb)
			shifted := Value{
				Bits:    (v.Bits & maskFor(w)) << uint(lsb),
				Unknown: (v.Unknown & maskFor(w)) << uint(lsb),
				Width:   sig.Width,
			}
			s.probeLine = ins.Line
			if ins.Op == opStorePartKNB {
				s.nba = append(s.nba, nbaUpdate{sig: sig.ID, mask: mask, value: shifted, line: ins.Line})
			} else {
				s.commitWrite(sig.ID, 0, mask, shifted)
			}
			pc++

		case opStorePart, opStorePartNB:
			// The tree kernel never required known bounds on the write
			// side: Uint() of a partially-unknown bound folds the X bits
			// away. Kept bit-for-bit.
			msb, lsb := int(regs[ins.C].Uint()), int(regs[ins.D].Uint())
			sig := s.design.Signals[ins.B]
			if msb < lsb || lsb < 0 || msb >= sig.Width {
				return fail(ins, fmt.Errorf("part-select [%d:%d] out of range for %q", msb, lsb, sig.Name))
			}
			w := msb - lsb + 1
			v := regs[ins.A]
			mask := maskFor(w) << uint(lsb)
			shifted := Value{
				Bits:    (v.Bits & maskFor(w)) << uint(lsb),
				Unknown: (v.Unknown & maskFor(w)) << uint(lsb),
				Width:   sig.Width,
			}
			s.probeLine = ins.Line
			if ins.Op == opStorePartNB {
				s.nba = append(s.nba, nbaUpdate{sig: sig.ID, mask: mask, value: shifted, line: ins.Line})
			} else {
				s.commitWrite(sig.ID, 0, mask, shifted)
			}
			pc++

		case opSlice:
			src := regs[ins.B]
			m := maskFor(int(ins.D))
			regs[ins.A] = Value{
				Bits:    (src.Bits >> uint(ins.C)) & m,
				Unknown: (src.Unknown >> uint(ins.C)) & m,
				Width:   int(ins.D),
			}
			pc++

		// --- suspension points and loops --------------------------------
		case opDelay:
			amt := regs[ins.A]
			if !amt.IsFullyKnown() {
				return fail(ins, fmt.Errorf("delay amount is unknown"))
			}
			d := amt.Uint()
			if d == 0 {
				d = 1 // #0 rounds up: the subset has no inactive region
			}
			r.pc = pc + 1
			s.schedule(r, s.now+d)
			return vmSuspend, nil

		case opWaitEvent:
			r.await(prog.sens[ins.A])
			r.pc = pc + 1
			return vmSuspend, nil

		case opWaitArm:
			r.await(prog.sens[ins.A])
			r.pc = int(ins.B)
			return vmSuspend, nil

		case opRepeatInit:
			cnt := regs[ins.A]
			if !cnt.IsFullyKnown() {
				return fail(ins, fmt.Errorf("repeat count is unknown"))
			}
			regs[ins.B] = Value{Bits: cnt.Uint()}
			pc++

		case opRepeatLoop:
			if regs[ins.A].Bits == 0 {
				pc = int(ins.B)
			} else {
				regs[ins.A].Bits--
				pc++
			}

		// --- system tasks -----------------------------------------------
		case opDisplay:
			r.renderDisplay(&prog.disp[ins.A], regs)
			pc++

		case opCheck:
			s.checks++
			if !regs[ins.A].IsTrue() {
				s.failures++
				if s.out.Len() < maxSimOutput {
					b := appendCheckFailed(r.scratch[:0], s.now, ins.Line)
					b = append(b, '\n')
					s.out.Write(b)
					r.scratch = b[:0]
				}
			}
			pc++

		case opCheckEq:
			a, b := regs[ins.A], regs[ins.B]
			s.checks++
			w := max(a.Width, b.Width)
			ra, rb := a.Resize(w), b.Resize(w)
			if !ra.Equal(rb) {
				s.failures++
				if s.out.Len() < maxSimOutput {
					buf := appendCheckFailed(r.scratch[:0], s.now, ins.Line)
					buf = append(buf, ": got "...)
					buf = ra.appendString(buf)
					buf = append(buf, ", want "...)
					buf = rb.appendString(buf)
					buf = append(buf, '\n')
					s.out.Write(buf)
					r.scratch = buf[:0]
				}
			}
			pc++

		// --- fallbacks --------------------------------------------------
		case opFallbackStmt:
			if err := r.execFallback(prog.fbStmts[ins.A]); err != nil {
				return vmErr, err // already positioned (or errFinish)
			}
			pc++

		case opFallbackExpr:
			v, err := ev.eval(prog.fbExprs[ins.B])
			if err != nil {
				return fail(ins, err)
			}
			regs[ins.A] = v
			pc++

		// --- peephole fusions (see fusePairs) ---------------------------
		case opStepConst:
			s.steps++
			if s.steps > maxSteps {
				return vmErr, errBudget
			}
			regs[ins.A] = prog.consts[ins.B]
			pc += 2

		case opStepLoadSig:
			s.steps++
			if s.steps > maxSteps {
				return vmErr, errBudget
			}
			regs[ins.A] = s.store[s.design.wordOffset[ins.B]]
			pc += 2

		case opLoadSig2:
			wo := s.design.wordOffset
			regs[ins.A] = s.store[wo[ins.B]]
			regs[ins.C] = s.store[wo[ins.D]]
			pc += 2

		case opStoreSigEnd:
			w := int(ins.C)
			s.probeLine = ins.Line
			s.commitFull(SignalID(ins.B), s.design.wordOffset[ins.B], regs[ins.A].Resize(w))
			return vmEnd, nil

		case opLoadSigBitK:
			x := s.store[s.design.wordOffset[ins.B]]
			if i := int(ins.C); i < 0 || i >= x.Width {
				regs[ins.A] = AllX(1)
			} else {
				regs[ins.A] = x.Bit(i)
			}
			pc += 2

		case opStepConstStore:
			s.steps++
			if s.steps > maxSteps {
				return vmErr, errBudget
			}
			w := int(ins.C)
			s.probeLine = ins.Line
			s.commitFull(SignalID(ins.B), s.design.wordOffset[ins.B], prog.consts[ins.A].Resize(w))
			pc += 3

		case opStepCopy:
			s.steps++
			if s.steps > maxSteps {
				return vmErr, errBudget
			}
			w := int(ins.C)
			v := s.store[s.design.wordOffset[ins.A]]
			s.probeLine = ins.Line
			s.commitFull(SignalID(ins.B), s.design.wordOffset[ins.B], v.Resize(w))
			pc += 3

		case opStepCopyNB:
			s.steps++
			if s.steps > maxSteps {
				return vmErr, errBudget
			}
			w := int(ins.C)
			v := s.store[s.design.wordOffset[ins.A]]
			s.nba = append(s.nba, nbaUpdate{sig: SignalID(ins.B), mask: maskFor(w), value: v.Resize(w), line: ins.Line})
			pc += 3

		case opBrCmpK:
			x, y := regs[ins.A], prog.consts[ins.B]
			t := false
			if x.Unknown|y.Unknown == 0 {
				switch ins.D {
				case cmpLt:
					t = x.Bits < y.Bits
				case cmpGt:
					t = y.Bits < x.Bits
				case cmpLe:
					t = !(y.Bits < x.Bits)
				case cmpGe:
					t = !(x.Bits < y.Bits)
				case cmpEq:
					t = x.Bits == y.Bits
				default:
					t = x.Bits != y.Bits
				}
			}
			if t {
				pc += 2
			} else {
				pc = int(ins.C)
			}

		// --- Tier A/B superinstructions (see super.go) ------------------
		case opSuper:
			sb := &prog.super[ins.A]
			if s.probe != nil {
				// Tracing: superinstruction closures commit without per-
				// statement line attribution, so re-dispatch the block's
				// preserved head instruction and walk the live interior
				// slots (left in place by synthBlock) through the generic
				// switch. Same semantics, exact probe lines.
				s.nGeneric--
				ins = &sb.head
				goto again
			}
			fns := sb.fns
			if sb.two != nil && s.twoStateGate(sb) {
				fns = sb.two
				s.nTierB += uint64(sb.n)
			} else {
				s.nTierA += uint64(sb.n)
			}
			s.nGeneric-- // covered ops are booked in their tier, not as generic
			for i := range fns {
				if err := fns[i](s, regs, r, ev); err != nil {
					// Closures wrap diagnostics with their own statement
					// line (and return errBudget raw), matching fail().
					return vmErr, err
				}
			}
			pc = int(sb.end)

		default:
			return vmErr, fmt.Errorf("verilog: corrupt bytecode at pc %d (op %d)", pc, ins.Op)
		}
	}
}

// vmBinary computes one binary value opcode outside the dispatch loop —
// the continuous-assign fast paths use it so `assign z = x op y` never
// enters vmRun. The per-op bodies are copies of the vmRun cases; keep
// them in sync (the property test cross-checks both against the tree
// evaluator). K-variant opcodes alias their base semantics with y bound
// to the program constant.
func vmBinary(op OpCode, x, y Value) Value {
	switch op {
	case opAdd, opAddK:
		w := max(x.Width, y.Width)
		if w < 64 {
			w++
		}
		if x.Unknown|y.Unknown != 0 {
			return AllX(w)
		}
		return NewValue(x.Bits+y.Bits, w)
	case opSub, opSubK:
		w := max(x.Width, y.Width)
		if x.Unknown|y.Unknown != 0 {
			return AllX(w)
		}
		return NewValue(x.Bits-y.Bits, w)
	case opMul, opMulK:
		w := x.Width + y.Width
		if w > 64 {
			w = 64
		}
		if x.Unknown|y.Unknown != 0 {
			return AllX(w)
		}
		return NewValue(x.Bits*y.Bits, w)
	case opDiv:
		w := max(x.Width, y.Width)
		if x.Unknown|y.Unknown != 0 || y.Bits == 0 {
			return AllX(w)
		}
		return NewValue(x.Bits/y.Bits, w)
	case opMod:
		w := max(x.Width, y.Width)
		if x.Unknown|y.Unknown != 0 || y.Bits == 0 {
			return AllX(w)
		}
		return NewValue(x.Bits%y.Bits, w)
	case opAnd, opAndK:
		return And(x, y, max(x.Width, y.Width))
	case opOr, opOrK:
		return Or(x, y, max(x.Width, y.Width))
	case opXor, opXorK:
		return Xor(x, y, max(x.Width, y.Width))
	case opXnor:
		w := max(x.Width, y.Width)
		return Not(Xor(x, y, w), w)
	case opNand:
		w := max(x.Width, y.Width)
		return Not(And(x, y, w), w)
	case opNor:
		w := max(x.Width, y.Width)
		return Not(Or(x, y, w), w)
	case opShl, opShlK:
		return Shl(x, y, x.Width)
	case opShr, opShrK:
		return Shr(x, y, x.Width)
	case opEq, opEqK:
		if x.Unknown|y.Unknown != 0 {
			return AllX(1)
		}
		return cmpBool(x.Bits == y.Bits)
	case opNe, opNeK:
		if x.Unknown|y.Unknown != 0 {
			return AllX(1)
		}
		return cmpBool(x.Bits != y.Bits)
	case opCaseEq:
		return cmpBool(x.Equal(y))
	case opCaseNe:
		return cmpBool(!x.Equal(y))
	case opLt, opLtK:
		if x.Unknown|y.Unknown != 0 {
			return AllX(1)
		}
		return cmpBool(x.Bits < y.Bits)
	case opGt, opGtK:
		if x.Unknown|y.Unknown != 0 {
			return AllX(1)
		}
		return cmpBool(y.Bits < x.Bits)
	case opLe, opLeK:
		if x.Unknown|y.Unknown != 0 {
			return AllX(1)
		}
		return cmpBool(!(y.Bits < x.Bits))
	case opGe, opGeK:
		if x.Unknown|y.Unknown != 0 {
			return AllX(1)
		}
		return cmpBool(!(x.Bits < y.Bits))
	case opLogAnd:
		return LogicalAnd(x, y)
	default: // opLogOr
		return LogicalOr(x, y)
	}
}

// vmUnary computes one unary value opcode outside the dispatch loop.
func vmUnary(op OpCode, x Value) Value {
	switch op {
	case opNot:
		return Not(x, x.Width)
	case opNeg:
		return Sub(NewValue(0, x.Width), x, x.Width)
	case opLogNot:
		return LogicalNot(x)
	case opRedAnd:
		return ReduceAnd(x)
	case opRedOr:
		return ReduceOr(x)
	case opRedXor:
		return ReduceXor(x)
	case opRedNand:
		return LogicalNot(ReduceAnd(x))
	case opRedNor:
		return LogicalNot(ReduceOr(x))
	default: // opRedXnor
		return LogicalNot(ReduceXor(x))
	}
}

// appendCheckFailed appends the shared "CHECK FAILED at time T (line L)"
// prefix; the allocation-free replacement for the old Fprintf, which
// dominated runs of failing candidates.
func appendCheckFailed(b []byte, now uint64, line int32) []byte {
	b = append(b, "CHECK FAILED at time "...)
	b = strconv.AppendUint(b, now, 10)
	b = append(b, " (line "...)
	b = strconv.AppendInt(b, int64(line), 10)
	b = append(b, ')')
	return b
}

// renderDisplay renders a compiled $display into the simulator output,
// reusing the runner's scratch buffer so steady-state printing never
// allocates.
func (r *runner) renderDisplay(d *dispDesc, regs []Value) {
	b := r.scratch[:0]
	for i := range d.segs {
		seg := &d.segs[i]
		switch {
		case seg.verb == 'm':
			b = append(b, r.proc.name...)
		case seg.reg >= 0:
			v := regs[seg.reg]
			switch seg.verb {
			case 'o':
				if v.IsFullyKnown() {
					b = strconv.AppendUint(b, v.Uint(), 8)
				} else {
					b = append(b, 'x')
				}
			case 'c':
				b = append(b, byte(v.Uint()))
			default:
				b = appendRadix(b, v, seg.verb)
			}
		default:
			b = append(b, seg.lit...)
		}
	}
	s := r.sim
	if s.out.Len() < maxSimOutput {
		s.out.Write(b)
		if !d.noEOL {
			s.out.WriteByte('\n')
		}
	}
	r.scratch = b[:0]
}

// execFallback tree-executes one statement with the exact semantics the
// old kernel had; used for the rare shapes the lowering does not encode.
// Returned errors are fully positioned (or are errFinish).
func (r *runner) execFallback(st Stmt) error {
	switch n := st.(type) {
	case *Assign:
		if s := r.sim; s.probe != nil {
			s.probeLine = int32(n.Line)
		}
		rhs, err := r.ev.eval(n.RHS)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		if err := r.ev.write(n.LHS, rhs, true, n.NonBlocking); err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		return nil
	case *SysCall:
		return r.execSysCall(n)
	default:
		return fmt.Errorf("unsupported statement %T", st)
	}
}
