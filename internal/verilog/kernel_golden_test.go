package verilog_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/verilog"
)

// The kernel-equivalence contract: the heap-scheduled, coroutine-free
// interpreter kernel must be observationally identical to the seed's
// goroutine-per-process kernel. The fixtures under testdata were captured
// by running every benchset problem's reference DUT against its full
// testbench across ten seeds on the pre-rewrite kernel; any drift in
// Output, the final-signal snapshot, or EndTime is a kernel regression,
// not a fixture update.
//
// Regenerate (only when semantics change deliberately, e.g. a documented
// fidelity fix) with: go test ./internal/verilog -run KernelGolden -update

var updateGolden = flag.Bool("update", false, "rewrite the kernel golden fixtures")

const goldenSeeds = 10

// goldenRun is one recorded simulation outcome.
type goldenRun struct {
	Output   string `json:"output"`
	Signals  string `json:"signals"` // FormatSignals(res, "") — Final + FinalMem
	EndTime  uint64 `json:"end_time"`
	Checks   int    `json:"checks"`
	Failures int    `json:"failures"`
	Finished bool   `json:"finished"`
	TimedOut bool   `json:"timed_out"`
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "kernel_golden.json")
}

func runGolden(t *testing.T, p *benchset.Problem, seed uint64) goldenRun {
	t.Helper()
	res, err := verilog.RunTestbench(p.Reference, p.Testbench(), "tb", verilog.SimOptions{Seed: seed})
	if err != nil {
		t.Fatalf("%s seed %d: %v", p.ID, seed, err)
	}
	if res.RuntimeErr != nil {
		t.Fatalf("%s seed %d: runtime error %v", p.ID, seed, res.RuntimeErr)
	}
	return goldenRun{
		Output:   res.Output,
		Signals:  verilog.FormatSignals(res, ""),
		EndTime:  res.EndTime,
		Checks:   res.Checks,
		Failures: res.Failures,
		Finished: res.Finished,
		TimedOut: res.TimedOut,
	}
}

func TestKernelGoldenEquivalence(t *testing.T) {
	got := map[string][]goldenRun{}
	for _, p := range benchset.Suite() {
		runs := make([]goldenRun, 0, goldenSeeds)
		for seed := uint64(1); seed <= goldenSeeds; seed++ {
			runs = append(runs, runGolden(t, p, seed))
		}
		// Determinism inside one kernel: the same seed must reproduce the
		// same bytes, or golden comparison is meaningless.
		again := runGolden(t, p, 1)
		if !reflect.DeepEqual(again, runs[0]) {
			t.Fatalf("%s: same-seed rerun diverged", p.ID)
		}
		got[p.ID] = runs
	}

	path := goldenPath(t)
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s: %d problems x %d seeds", path, len(got), goldenSeeds)
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update to create): %v", err)
	}
	want := map[string][]goldenRun{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("corrupt golden fixtures: %v", err)
	}
	if len(want) != len(got) {
		t.Errorf("fixture covers %d problems, suite has %d (run -update after adding problems)", len(want), len(got))
	}
	for id, runs := range got {
		wantRuns, ok := want[id]
		if !ok {
			t.Errorf("%s: no fixture (run -update after adding problems)", id)
			continue
		}
		if len(wantRuns) != len(runs) {
			t.Errorf("%s: fixture records %d runs, suite produced %d (run -update after changing goldenSeeds)",
				id, len(wantRuns), len(runs))
		}
		for i, run := range runs {
			if i >= len(wantRuns) {
				break
			}
			if run != wantRuns[i] {
				t.Errorf("%s seed %d diverged from the recorded kernel:\n got: %+v\nwant: %+v",
					id, i+1, diffSummary(run, wantRuns[i]), wantRuns[i])
			}
		}
	}
}

// TestKernelGoldenEquivalenceParallelCones re-runs the golden suite
// with Tier C forced to multiple cone workers, against the SAME
// committed fixtures as the serial run: parallel combinational-cone
// evaluation must be byte-identical to the recorded kernel regardless
// of the worker count. No -update path here on purpose — a divergence
// is a Tier C determinism bug, never a fixture refresh.
func TestKernelGoldenEquivalenceParallelCones(t *testing.T) {
	defer verilog.SetConeWorkersForTest(4)()

	blob, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatalf("missing golden fixtures: %v", err)
	}
	want := map[string][]goldenRun{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("corrupt golden fixtures: %v", err)
	}
	for _, p := range benchset.Suite() {
		wantRuns, ok := want[p.ID]
		if !ok {
			t.Errorf("%s: no fixture", p.ID)
			continue
		}
		for seed := uint64(1); seed <= goldenSeeds && int(seed) <= len(wantRuns); seed++ {
			if run := runGolden(t, p, seed); run != wantRuns[seed-1] {
				t.Errorf("%s seed %d diverged under parallel cones:\n got: %+v",
					p.ID, seed, diffSummary(run, wantRuns[seed-1]))
			}
		}
	}
}

// diffSummary trims the noisy equal fields so failures point at the drift.
func diffSummary(got, want goldenRun) string {
	var parts []string
	if got.Output != want.Output {
		parts = append(parts, fmt.Sprintf("Output %q != %q", got.Output, want.Output))
	}
	if got.Signals != want.Signals {
		parts = append(parts, fmt.Sprintf("Signals %q != %q", got.Signals, want.Signals))
	}
	if got.EndTime != want.EndTime {
		parts = append(parts, fmt.Sprintf("EndTime %d != %d", got.EndTime, want.EndTime))
	}
	if got.Checks != want.Checks || got.Failures != want.Failures {
		parts = append(parts, fmt.Sprintf("checks %d/%d != %d/%d", got.Checks, got.Failures, want.Checks, want.Failures))
	}
	if got.Finished != want.Finished || got.TimedOut != want.TimedOut {
		parts = append(parts, fmt.Sprintf("finished/timedout %v/%v != %v/%v", got.Finished, got.TimedOut, want.Finished, want.TimedOut))
	}
	if len(parts) == 0 {
		return "(equal)"
	}
	return fmt.Sprint(parts)
}
