package verilog

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"sync"
	"unsafe"
)

// This file is the compile-once half of the compile-once/run-many split.
// Every framework above the simulator scores many near-identical candidate
// sources against a handful of fixed testbenches; historically each score
// re-lexed, re-parsed and re-elaborated the full concatenated source. A
// CompiledDesign freezes the expensive front-end work into an immutable
// artifact that any number of Simulators — including concurrent ones —
// can instantiate cheaply with fresh signal state.

// CompiledDesign is an immutable lex→parse→elaborate artifact. It is safe
// for concurrent use: simulation state (signal values, event queues, RNG)
// lives entirely in the per-run Simulator, never in the design.
type CompiledDesign struct {
	// Design is the elaborated, flattened design. Read-only after Compile.
	Design *Design
	// Top is the top module the design was elaborated under.
	Top string
	// Hash is the content hash of (sources, top): the cache identity used
	// by the simfarm design and result caches.
	Hash string
}

// Compile performs the full front end once: lex→parse→elaborate src under
// the named top module. The returned artifact is immutable; run it any
// number of times with Run or NewSimulator.
func Compile(src, top string) (*CompiledDesign, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ElaborateParsed(top, DesignHash(top, src), f)
}

// CompileSources compiles a design split over several already-parsed or
// raw sources (typically DUT + testbench). Sources are parsed separately —
// so a cached parse of either half can be reused — and their module lists
// are merged in order, preserving the first-match module resolution the
// old concatenated path had.
func CompileSources(top string, srcs ...string) (*CompiledDesign, error) {
	files := make([]*SourceFile, len(srcs))
	for i, src := range srcs {
		f, err := Parse(src)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	return ElaborateParsed(top, DesignHash(top, srcs...), MergeSources(files...))
}

// MergeSources combines parsed files into one module namespace. Module
// lookup is first-match, so earlier files shadow later ones exactly like
// textual concatenation did.
func MergeSources(files ...*SourceFile) *SourceFile {
	n := 0
	for _, f := range files {
		n += len(f.Modules)
	}
	merged := &SourceFile{Modules: make([]*Module, 0, n)}
	for _, f := range files {
		merged.Modules = append(merged.Modules, f.Modules...)
	}
	return merged
}

// ElaborateParsed elaborates an already-parsed file into a CompiledDesign
// with the given cache identity. Callers that cache parses (simfarm) use
// this to skip re-parsing entirely.
func ElaborateParsed(top, hash string, f *SourceFile) (*CompiledDesign, error) {
	d, err := Elaborate(f, top)
	if err != nil {
		return nil, err
	}
	return &CompiledDesign{Design: d, Top: top, Hash: hash}, nil
}

// DesignHash is the canonical content identity of a compiled design: the
// top module name over the per-source content hashes, order-sensitive.
// Hashing hashes (rather than the raw texts) lets cache layers memoize
// each source's hash and re-key cheaply; every compile path — direct
// Compile/CompileSources and the simfarm design cache — derives Hash
// this same way, so one logical design never splits into two result-
// cache identities.
func DesignHash(top string, srcs ...string) string {
	hs := make([]string, len(srcs))
	for i, src := range srcs {
		hs[i] = HashSources("", src)
	}
	return HashSources(top, hs...)
}

// HashSources is the raw hashing primitive: the tag plus every part,
// order-sensitive. Design identities are built from it via DesignHash.
func HashSources(top string, srcs ...string) string {
	h := sha256.New()
	hashString(h, top)
	for _, src := range srcs {
		h.Write([]byte{0})
		hashString(h, src)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashString feeds s to h without the full []byte(s) copy io.WriteString
// makes for writers lacking WriteString — candidate sources run to
// kilobytes and are hashed on every cache probe. The unsafe view is sound
// because sha256's Write only reads its input.
func hashString(h hash.Hash, s string) {
	if len(s) == 0 {
		return
	}
	h.Write(unsafe.Slice(unsafe.StringData(s), len(s)))
}

// Run instantiates a fresh Simulator over the compiled design and executes
// it. Each call gets independent signal state and RNG seeding, so repeated
// and concurrent runs are bit-identical to a freshly compiled serial run.
func (cd *CompiledDesign) Run(opts SimOptions) (*SimResult, error) {
	return NewSimulator(cd.Design, opts).Run()
}

// TestbenchCompiler produces a compiled DUT+testbench pair. The simfarm
// package installs a caching implementation at init time so that the
// legacy RunTestbench entry point stops re-parsing sources the farm has
// already seen; without an installed compiler the direct path is used.
type TestbenchCompiler func(dutSrc, tbSrc, tbTop string) (*CompiledDesign, error)

var (
	tbCompilerMu sync.RWMutex
	tbCompiler   TestbenchCompiler
)

// SetTestbenchCompiler installs the shared compile cache used by
// RunTestbench. Passing nil restores the direct, uncached path.
func SetTestbenchCompiler(c TestbenchCompiler) {
	tbCompilerMu.Lock()
	tbCompiler = c
	tbCompilerMu.Unlock()
}

// compileTestbench resolves a DUT+TB pair through the installed cache, or
// compiles directly when none is installed.
func compileTestbench(dutSrc, tbSrc, tbTop string) (*CompiledDesign, error) {
	tbCompilerMu.RLock()
	c := tbCompiler
	tbCompilerMu.RUnlock()
	if c != nil {
		return c(dutSrc, tbSrc, tbTop)
	}
	return CompileSources(tbTop, dutSrc, tbSrc)
}
