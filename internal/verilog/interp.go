package verilog

import (
	"errors"
	"fmt"
)

// This file is the process engine. PR 3 made each process an explicit
// resumable interpreter over the bound AST (a continuation stack of
// statement frames); this PR compiles the AST away: every process body is
// lowered once to a flat bytecode program (bytecode.go), and a runner is
// now just that program plus a register file and a resume pc. A scheduler
// dispatch is a method call into the VM loop (vm.go); a suspension
// (delay, event wait) records an integer pc instead of a frame stack.
// Statement semantics, step accounting, and wake ordering remain
// bit-identical to the seed kernel (pinned by the golden fixtures in
// testdata/kernel_golden.json).

// procStatus is what a runner resume reports back to the scheduler.
type procStatus int

const (
	procSuspended procStatus = iota + 1 // armed a delay or event wait
	procEnded                           // body completed (initial): never resume again
	procFinished                        // $finish/$fatal executed
	procErrored                         // runtime diagnostic or budget exhaustion
)

// runner executes one behavioral process on the VM.
type runner struct {
	sim   *Simulator
	proc  *process
	scope scope
	ev    evaluator // retained tree evaluator, used by fallback opcodes

	prog *Program
	regs []Value // register file: a slice of the simulator's pooled slab
	pc   int     // resume position within prog.code

	started bool
	sens    []resolvedSens // process-level sensitivity (always blocks)
	done    bool
	watch   watchEntry
	scratch []byte // reusable $display formatting buffer
}

// resolvedSens is a sensitivity item bound to a flattened signal.
type resolvedSens struct {
	sig  SignalID
	edge EdgeKind
}

// activate performs the first-dispatch work of the process kinds: initial
// and @*/timing-only always blocks run their body immediately; a
// sensitivity-listed always block resolves its list and waits first.
func (r *runner) activate() (procStatus, error) {
	pr := r.proc
	switch {
	case pr.kind == procInitial:
		return 0, nil // run from pc 0
	case pr.star:
		sens := make([]resolvedSens, 0, len(pr.reads))
		seen := map[SignalID]bool{}
		for _, sig := range pr.reads {
			if !seen[sig] {
				seen[sig] = true
				sens = append(sens, resolvedSens{sig: sig, edge: EdgeAny})
			}
		}
		r.sens = sens
		return 0, nil // @* runs once at activation
	case len(pr.sens) > 0:
		sens, err := resolveSensIn(r.scope, pr.sens)
		if err != nil {
			return 0, err
		}
		r.sens = sens
		r.await(sens)
		return procSuspended, nil
	default:
		// always <body> with internal timing control.
		if !r.prog.hasTiming {
			return 0, fmt.Errorf("verilog: always block %s has no sensitivity or timing control", pr.name)
		}
		return 0, nil
	}
}

// resume runs the process from its last suspension point until it
// suspends again, completes, or stops the simulation. On procSuspended
// the runner has already armed its wake condition (a timed event on the
// scheduler heap, or watcher registrations). The first opcode executed
// after any wake is the body's budget charge, so MaxSteps accounting
// lands exactly where the tree kernel charged its continuation pushes.
func (r *runner) resume() (procStatus, error) {
	if !r.started {
		r.started = true
		st, err := r.activate()
		if err != nil {
			return r.classify(err)
		}
		if st == procSuspended {
			return procSuspended, nil
		}
	}
	status, err := vmRun(r.sim, r.prog, r.regs, r, &r.ev, r.pc)
	switch status {
	case vmSuspend:
		return procSuspended, nil
	case vmFinish:
		return procFinished, nil
	case vmErr:
		return r.classify(err)
	default: // vmEnd: only initial bodies run off the end of their program
		return procEnded, nil
	}
}

// classify maps interpreter errors to scheduler-visible outcomes.
func (r *runner) classify(err error) (procStatus, error) {
	if errors.Is(err, errFinish) {
		return procFinished, nil
	}
	return procErrored, err
}

// watcherSweepMin is the smallest watcher-list length that triggers an
// arm-time stale-ref compaction (see Simulator.watchSweep).
const watcherSweepMin = 16

// await arms the runner's reusable watch entry on the given sensitivity
// list. Bumping the generation invalidates any references still sitting
// in watcher lists from earlier waits, so re-arming never allocates.
// Lists that reach their sweep threshold are compacted here, amortized
// O(1) per arm: each sweep resets the threshold to double the live count,
// so a list is only rescanned after it has doubled again.
func (r *runner) await(sens []resolvedSens) {
	w := &r.watch
	w.gen++
	w.fired = false
	w.sens = sens
	s := r.sim
	for _, it := range sens {
		l := s.watchers[it.sig]
		if len(l) >= int(s.watchSweep[it.sig]) {
			kept := l[:0]
			for _, ref := range l {
				if ref.gen == ref.w.gen && !ref.w.fired && !ref.w.r.done {
					kept = append(kept, ref)
				}
			}
			l = kept
			s.watchSweep[it.sig] = int32(max(watcherSweepMin, 2*len(l)))
		}
		s.watchers[it.sig] = append(l, watchRef{w: w, gen: w.gen})
	}
}

// containsTiming reports whether a statement subtree contains a delay or
// event control (used at lowering time to reject zero-delay infinite
// always loops and forever bodies).
func containsTiming(st Stmt) bool {
	switch n := st.(type) {
	case *DelayStmt, *EventStmt, *WaitStmt:
		return true
	case *Block:
		for _, c := range n.Stmts {
			if containsTiming(c) {
				return true
			}
		}
	case *IfStmt:
		return containsTiming(n.Then) || (n.Else != nil && containsTiming(n.Else))
	case *CaseStmt:
		for _, it := range n.Items {
			if containsTiming(it.Body) {
				return true
			}
		}
	case *ForStmt:
		return containsTiming(n.Body)
	case *WhileStmt:
		return containsTiming(n.Body)
	case *RepeatStmt:
		return containsTiming(n.Body)
	case *ForeverStmt:
		return containsTiming(n.Body)
	}
	return false
}
