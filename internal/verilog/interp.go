package verilog

import (
	"errors"
	"fmt"
)

// This file is the coroutine-free process engine. The seed kernel ran one
// goroutine per behavioral process and paid two unbuffered channel
// handshakes plus a Go-scheduler round-trip per dispatch; here each
// process is a runner — an explicit resumable interpreter whose
// continuation stack records exactly where execution suspended (a delay,
// an event wait), so a scheduler dispatch is a plain method call. The
// statement semantics, step accounting, and wake ordering are
// bit-identical to the seed kernel (pinned by the golden fixtures in
// testdata/kernel_golden.json).

// procStatus is what a runner resume reports back to the scheduler.
type procStatus int

const (
	procSuspended procStatus = iota + 1 // armed a delay or event wait
	procEnded                           // body completed (initial): never resume again
	procFinished                        // $finish/$fatal executed
	procErrored                         // runtime diagnostic or budget exhaustion
)

// frame is one activation on a runner's continuation stack: the
// statement, a resume point within it, and loop state. The pc meanings
// are per statement kind — Block: next child index; For: 0 init, 1 test,
// 2 step-after-body; Delay/Event: 1 after the suspension has fired;
// Repeat/Forever: 1 after one-time setup.
type frame struct {
	st Stmt
	pc int
	n  uint64 // RepeatStmt: iterations remaining
}

// runner executes one behavioral process as an explicit interpreter.
type runner struct {
	sim   *Simulator
	proc  *process
	scope scope
	ev    evaluator

	stack    []frame
	started  bool
	awaiting bool // top-level always wait armed; push body on next resume
	sens     []resolvedSens
	done     bool
	watch    watchEntry
	scratch  []byte // reusable $display formatting buffer
}

// resolvedSens is a sensitivity item bound to a flattened signal.
type resolvedSens struct {
	sig  SignalID
	edge EdgeKind
}

// push charges the statement against the shared step budget and enters
// it. The seed kernel charged on exec entry; a pushed frame is always
// processed before anything else runs, so the accounting is identical.
func (r *runner) push(st Stmt) error {
	r.sim.steps++
	if r.sim.steps > r.sim.opts.MaxSteps {
		return errBudget
	}
	r.stack = append(r.stack, frame{st: st})
	return nil
}

func (r *runner) pop() { r.stack = r.stack[:len(r.stack)-1] }

// activate performs the first-dispatch work of the process kinds: initial
// and @*/timing-only always blocks run their body immediately; a
// sensitivity-listed always block resolves its list and waits first.
func (r *runner) activate() (procStatus, error) {
	pr := r.proc
	switch {
	case pr.kind == procInitial:
		return 0, r.push(pr.body)
	case pr.star:
		sens := make([]resolvedSens, 0, len(pr.reads))
		seen := map[SignalID]bool{}
		for _, sig := range pr.reads {
			if !seen[sig] {
				seen[sig] = true
				sens = append(sens, resolvedSens{sig: sig, edge: EdgeAny})
			}
		}
		r.sens = sens
		return 0, r.push(pr.body) // @* runs once at activation
	case len(pr.sens) > 0:
		sens, err := r.resolveSens(pr.sens)
		if err != nil {
			return 0, err
		}
		r.sens = sens
		r.await(sens)
		r.awaiting = true
		return procSuspended, nil
	default:
		// always <body> with internal timing control.
		if !containsTiming(pr.body) {
			return 0, fmt.Errorf("verilog: always block %s has no sensitivity or timing control", pr.name)
		}
		return 0, r.push(pr.body)
	}
}

// resume runs the process from its last suspension point until it
// suspends again, completes, or stops the simulation. On procSuspended
// the runner has already armed its wake condition (a timed event on the
// scheduler heap, or watcher registrations).
func (r *runner) resume() (procStatus, error) {
	if !r.started {
		r.started = true
		st, err := r.activate()
		if err != nil {
			return r.classify(err)
		}
		if st == procSuspended {
			return procSuspended, nil
		}
	}
	if r.awaiting {
		// Woken from the top-level always wait: run the body.
		r.awaiting = false
		if err := r.push(r.proc.body); err != nil {
			return r.classify(err)
		}
	}
	for {
		if len(r.stack) == 0 {
			pr := r.proc
			switch {
			case pr.kind == procInitial:
				return procEnded, nil
			case pr.star:
				if len(r.sens) == 0 {
					return procErrored, fmt.Errorf("verilog: always @* block %s reads no signals", pr.name)
				}
				r.await(r.sens)
				r.awaiting = true
				return procSuspended, nil
			case len(pr.sens) > 0:
				r.await(r.sens)
				r.awaiting = true
				return procSuspended, nil
			default:
				if err := r.push(pr.body); err != nil {
					return r.classify(err)
				}
			}
		}
		suspended, err := r.stepFrame()
		if err != nil {
			return r.classify(err)
		}
		if suspended {
			return procSuspended, nil
		}
	}
}

// classify maps interpreter errors to scheduler-visible outcomes.
func (r *runner) classify(err error) (procStatus, error) {
	if errors.Is(err, errFinish) {
		return procFinished, nil
	}
	return procErrored, err
}

// stepFrame executes the top continuation frame until it pops, pushes a
// child, or suspends. suspended=true means the wake condition is armed.
func (r *runner) stepFrame() (suspended bool, err error) {
	f := &r.stack[len(r.stack)-1]
	ev := &r.ev
	switch n := f.st.(type) {
	case nil, *NullStmt:
		r.pop()
		return false, nil

	case *Block:
		if f.pc < len(n.Stmts) {
			st := n.Stmts[f.pc]
			f.pc++
			return false, r.push(st)
		}
		r.pop()
		return false, nil

	case *Assign:
		rhs, err := ev.eval(n.RHS)
		if err != nil {
			return false, fmt.Errorf("line %d: %w", n.Line, err)
		}
		if err := ev.write(n.LHS, rhs, true, n.NonBlocking); err != nil {
			return false, fmt.Errorf("line %d: %w", n.Line, err)
		}
		r.pop()
		return false, nil

	case *IfStmt:
		c, err := ev.eval(n.Cond)
		if err != nil {
			return false, fmt.Errorf("line %d: %w", n.Line, err)
		}
		r.pop()
		if c.IsTrue() {
			return false, r.push(n.Then)
		}
		if n.Else != nil {
			return false, r.push(n.Else)
		}
		return false, nil

	case *CaseStmt:
		subj, err := ev.eval(n.Subject)
		if err != nil {
			return false, fmt.Errorf("line %d: %w", n.Line, err)
		}
		var deflt *CaseItem
		for i := range n.Items {
			item := &n.Items[i]
			if item.IsDefault {
				deflt = item
				continue
			}
			for _, le := range item.Exprs {
				lv, err := ev.eval(le)
				if err != nil {
					return false, fmt.Errorf("line %d: %w", n.Line, err)
				}
				if caseMatch(subj, lv, n.IsCasez) {
					r.pop()
					return false, r.push(item.Body)
				}
			}
		}
		r.pop()
		if deflt != nil {
			return false, r.push(deflt.Body)
		}
		return false, nil

	case *ForStmt:
		switch f.pc {
		case 0:
			f.pc = 1
			return false, r.push(n.Init)
		case 2: // body completed: run the step, then retest
			f.pc = 1
			return false, r.push(n.Step)
		default: // 1: test
			c, err := ev.eval(n.Cond)
			if err != nil {
				return false, fmt.Errorf("line %d: %w", n.Line, err)
			}
			if !c.IsTrue() {
				r.pop()
				return false, nil
			}
			f.pc = 2
			return false, r.push(n.Body)
		}

	case *WhileStmt:
		c, err := ev.eval(n.Cond)
		if err != nil {
			return false, fmt.Errorf("line %d: %w", n.Line, err)
		}
		if !c.IsTrue() {
			r.pop()
			return false, nil
		}
		return false, r.push(n.Body)

	case *RepeatStmt:
		if f.pc == 0 {
			cnt, err := ev.eval(n.Count)
			if err != nil {
				return false, fmt.Errorf("line %d: %w", n.Line, err)
			}
			if !cnt.IsFullyKnown() {
				return false, fmt.Errorf("line %d: repeat count is unknown", n.Line)
			}
			f.pc = 1
			f.n = cnt.Uint()
		}
		if f.n == 0 {
			r.pop()
			return false, nil
		}
		f.n--
		return false, r.push(n.Body)

	case *ForeverStmt:
		if f.pc == 0 {
			if !containsTiming(n.Body) {
				return false, fmt.Errorf("line %d: forever loop without timing control", n.Line)
			}
			f.pc = 1
		}
		return false, r.push(n.Body)

	case *DelayStmt:
		if f.pc == 1 { // the delay elapsed
			r.pop()
			if n.Body != nil {
				return false, r.push(n.Body)
			}
			return false, nil
		}
		amt, err := ev.eval(n.Amount)
		if err != nil {
			return false, fmt.Errorf("line %d: %w", n.Line, err)
		}
		if !amt.IsFullyKnown() {
			return false, fmt.Errorf("line %d: delay amount is unknown", n.Line)
		}
		d := amt.Uint()
		if d == 0 {
			d = 1 // #0 rounds up: the subset has no inactive region
		}
		f.pc = 1
		r.sim.schedule(r, r.sim.now+d)
		return true, nil

	case *EventStmt:
		if f.pc == 1 { // the sensitivity fired
			r.pop()
			if n.Body != nil {
				return false, r.push(n.Body)
			}
			return false, nil
		}
		if n.Star {
			return false, fmt.Errorf("line %d: statement-level @(*) is not supported", n.Line)
		}
		sens, err := r.resolveSens(n.Sens)
		if err != nil {
			return false, fmt.Errorf("line %d: %w", n.Line, err)
		}
		f.pc = 1
		r.await(sens)
		return true, nil

	case *WaitStmt:
		// Re-entered (pc unchanged) on every wake until the condition
		// holds; only the initial push charged the budget, like the seed.
		c, err := ev.eval(n.Cond)
		if err != nil {
			return false, fmt.Errorf("line %d: %w", n.Line, err)
		}
		if c.IsTrue() {
			r.pop()
			return false, nil
		}
		reads := readSet(n.Cond, r.scope, nil)
		if len(reads) == 0 {
			return false, fmt.Errorf("line %d: wait condition reads no signals", n.Line)
		}
		sens := make([]resolvedSens, 0, len(reads))
		for _, sg := range reads {
			sens = append(sens, resolvedSens{sig: sg, edge: EdgeAny})
		}
		r.await(sens)
		return true, nil

	case *SysCall:
		if err := r.execSysCall(n); err != nil {
			return false, err
		}
		r.pop()
		return false, nil

	default:
		return false, fmt.Errorf("unsupported statement %T", f.st)
	}
}

// watcherSweepMin is the smallest watcher-list length that triggers an
// arm-time stale-ref compaction (see Simulator.watchSweep).
const watcherSweepMin = 16

// await arms the runner's reusable watch entry on the given sensitivity
// list. Bumping the generation invalidates any references still sitting
// in watcher lists from earlier waits, so re-arming never allocates.
// Lists that reach their sweep threshold are compacted here, amortized
// O(1) per arm: each sweep resets the threshold to double the live count,
// so a list is only rescanned after it has doubled again.
func (r *runner) await(sens []resolvedSens) {
	w := &r.watch
	w.gen++
	w.fired = false
	w.sens = sens
	s := r.sim
	for _, it := range sens {
		l := s.watchers[it.sig]
		if len(l) >= int(s.watchSweep[it.sig]) {
			kept := l[:0]
			for _, ref := range l {
				if ref.gen == ref.w.gen && !ref.w.fired && !ref.w.r.done {
					kept = append(kept, ref)
				}
			}
			l = kept
			s.watchSweep[it.sig] = int32(max(watcherSweepMin, 2*len(l)))
		}
		s.watchers[it.sig] = append(l, watchRef{w: w, gen: w.gen})
	}
}

// resolveSens binds sensitivity names to signals.
func (r *runner) resolveSens(items []SensItem) ([]resolvedSens, error) {
	out := make([]resolvedSens, 0, len(items))
	for _, it := range items {
		ent, ok := r.scope[it.Signal]
		if !ok || ent.isParam {
			return nil, fmt.Errorf("verilog: sensitivity references unknown signal %q", it.Signal)
		}
		out = append(out, resolvedSens{sig: ent.sig, edge: it.Edge})
	}
	return out, nil
}

// containsTiming reports whether a statement subtree contains a delay or
// event control (used to reject zero-delay infinite always loops).
func containsTiming(st Stmt) bool {
	switch n := st.(type) {
	case *DelayStmt, *EventStmt, *WaitStmt:
		return true
	case *Block:
		for _, c := range n.Stmts {
			if containsTiming(c) {
				return true
			}
		}
	case *IfStmt:
		return containsTiming(n.Then) || (n.Else != nil && containsTiming(n.Else))
	case *CaseStmt:
		for _, it := range n.Items {
			if containsTiming(it.Body) {
				return true
			}
		}
	case *ForStmt:
		return containsTiming(n.Body)
	case *WhileStmt:
		return containsTiming(n.Body)
	case *RepeatStmt:
		return containsTiming(n.Body)
	case *ForeverStmt:
		return containsTiming(n.Body)
	}
	return false
}
