package verilog

import (
	"fmt"
	"sort"
)

// ElabError is a positioned elaboration error (unknown module, bad width,
// unresolved name); like ParseError it becomes LLM feedback upstream, and
// it shares the same Pos type as ParseError and vlint.Diagnostic.
type ElabError struct {
	Pos Pos
	Msg string
}

func (e *ElabError) Error() string {
	return fmt.Sprintf("elaboration error at line %s: %s", e.Pos, e.Msg)
}

// SignalID indexes a flattened design signal.
type SignalID int

// Signal is one flattened net or variable of the elaborated design.
type Signal struct {
	ID    SignalID
	Name  string // hierarchical, e.g. "tb.dut.sum"
	Width int
	IsReg bool
	Words int // > 1 for memories (reg [7:0] m [0:N-1])
}

// scopeEntry resolves a local identifier: either a signal or an
// elaboration-time constant (parameter/genvar).
type scopeEntry struct {
	sig     SignalID
	isParam bool
	param   Value
}

// scope maps a module instance's local names to flattened entities.
type scope map[string]scopeEntry

// contAssign is a flattened continuous assignment.
type contAssign struct {
	lhs   Expr
	rhs   Expr
	scope scope
	// scopeID numbers the owning instance scope; assigns sharing an ID
	// share the identical scope map. The simulator uses it to skip
	// reinstalling the resident evaluator's scope (a heap pointer write,
	// hence a GC write barrier) between evaluations in the same instance.
	scopeID int32
	reads   []SignalID
	line    int
	// prog is the compiled evaluate-and-store program (bytecode.go); nil
	// for the rare lvalue shapes that stay on the tree evaluator.
	prog *Program
	// fast short-circuits the pervasive simple shapes (`assign dst = src`
	// port connections, `assign z = x op y`, `assign z = x op K`,
	// `assign z = op x`) to direct computation without entering the VM
	// dispatch loop; fast.kind == caFastNone runs the full program.
	fast caFast
}

// caFast describes a specialized continuous-assign shape.
type caFast struct {
	kind     uint8
	op       OpCode   // caFastBin/BinK/Un: the value opcode
	a, b     SignalID // source signals (b unused for copy/unary/K shapes)
	k        Value    // caFastBinK: the constant RHS
	dst      SignalID
	dstWidth int
	// Store offsets of a, b and dst, resolved once in finalizeLayout so
	// the hot evaluation path (caFastValue/commitFull) does no
	// wordOffset lookups. Offsets are per-design, and so is caFast.
	aOff, bOff, dstOff int32
}

// caFast kinds.
const (
	caFastNone  uint8 = iota
	caFastCopy        // dst = a
	caFastBin         // dst = a op b
	caFastBinK        // dst = a op k
	caFastUn          // dst = op a
	caFastConst       // dst = k
	caFastBitK        // dst = bit k.Bits of a
)

// procKind distinguishes process flavors.
type procKind int

const (
	procAlways procKind = iota + 1
	procInitial
)

// process is a flattened behavioral process (always or initial block).
type process struct {
	kind   procKind
	sens   []SensItem // resolved against scope at activation
	star   bool
	body   Stmt
	scope  scope
	name   string
	line   int
	reads  []SignalID  // inferred sensitivity for @* blocks
	bcache *boundCache // bound-body + compiled-program memo shared across designs
	prog   *Program    // the body lowered to VM bytecode (bytecode.go)
}

// Design is a fully elaborated, flattened design ready for simulation.
type Design struct {
	Top     string
	Signals []*Signal
	assigns []*contAssign
	procs   []*process
	byName  map[string]SignalID

	// Run-time layout, computed once at elaboration and shared by every
	// Simulator over this design (the compile-once/run-many split):
	// sigAssigns[id] lists the continuous assignments that read signal id
	// (in assign order, duplicates preserved — delta accounting matches
	// the per-run map the seed kernel built); wordOffset[id]/totalWords
	// pack every signal's words into one backing array so a fresh
	// Simulator is a single allocation, not one per signal. wordOffset has
	// a trailing sentinel: a signal's word count is the offset delta.
	sigAssigns [][]int32
	wordOffset []int32
	totalWords int

	// Register-file layout for the VM: every process's registers pack
	// into one per-run slab (procRegOff/procRegTotal) and every compiled
	// continuous assignment gets a disjoint scratch region of a
	// per-Simulator slab (caRegOff/caRegTotal — disjoint so a store's
	// propagation wave re-entering another assign's program can never
	// clobber live registers). Both are computed once here; a fresh
	// Simulator allocates two slices, not one buffer per program.
	procRegOff   []int32
	procRegTotal int
	caRegOff     []int32
	caRegTotal   int

	// parSweep[id] marks signals whose dependent-assign batch is safe
	// for the Tier C parallel sweep: the batch is large (>= coneParMin),
	// every member is a specialized fast shape (pure store reads, no
	// $random, no VM entry), and no member reads any member's
	// destination — so evaluating all members from the pre-sweep store
	// and committing in wave-list order is byte-identical to the
	// sequential sweep.
	parSweep []bool

	// Static tiered-VM counts summed over all compiled programs:
	// superinstructions synthesized and fusion candidates skipped at
	// branch-target boundaries (see VMStats).
	nSuper    int
	nFuseSkip int
}

// finalizeLayout computes the shared run-time layout; called once at the
// end of elaboration, after which the design is immutable. It also binds
// every process body and continuous assignment (see bind.go), so the
// simulator's hot path never resolves names through scope maps.
func (d *Design) finalizeLayout() {
	var bd binder
	for _, ca := range d.assigns {
		ca.lhs = bd.expr(ca.lhs, ca.scope)
		ca.rhs = bd.expr(ca.rhs, ca.scope)
	}
	for _, pr := range d.procs {
		pr.body = bindCached(pr.bcache, pr.body, pr.scope, &bd)
	}
	// Lower every process body and continuous assignment to VM bytecode
	// (bytecode.go). Process programs are memoized alongside their bound
	// body variant, so the testbench shared by a whole candidate batch is
	// lowered once, not once per design; the scope-equality that keys the
	// memo guarantees every SignalID a cached program mentions refers to
	// an identically-shaped signal in every design that reuses it.
	d.procRegOff = make([]int32, len(d.procs)+1)
	total := 0
	for i, pr := range d.procs {
		pr.prog = programCached(pr.bcache, pr, d)
		d.procRegOff[i] = int32(total)
		total += pr.prog.numRegs
	}
	d.procRegOff[len(d.procs)] = int32(total)
	d.procRegTotal = total
	d.caRegOff = make([]int32, len(d.assigns)+1)
	total = 0
	for i, ca := range d.assigns {
		// Simple shapes classify straight off the bound AST and skip
		// program construction entirely; everything else lowers, with a
		// second chance to specialize off the compiled shape.
		if f, ok := classifyCAFastAST(ca, d); ok {
			ca.fast = f
		} else {
			ca.prog = lowerContAssign(ca, d)
			ca.fast = classifyCAFast(ca.prog)
		}
		d.caRegOff[i] = int32(total)
		if ca.prog != nil {
			total += ca.prog.numRegs
		}
	}
	d.caRegOff[len(d.assigns)] = int32(total)
	d.caRegTotal = total
	d.sigAssigns = make([][]int32, len(d.Signals))
	for i, ca := range d.assigns {
		for _, sig := range ca.reads {
			d.sigAssigns[sig] = append(d.sigAssigns[sig], int32(i))
		}
	}
	d.wordOffset = make([]int32, len(d.Signals)+1)
	total = 0
	for i, sig := range d.Signals {
		d.wordOffset[i] = int32(total)
		total += sig.Words
	}
	d.wordOffset[len(d.Signals)] = int32(total)
	d.totalWords = total
	// Resolve the fast-shape store offsets now that the layout exists.
	for _, ca := range d.assigns {
		if f := &ca.fast; f.kind != caFastNone {
			f.aOff = d.wordOffset[f.a]
			f.bOff = d.wordOffset[f.b]
			f.dstOff = d.wordOffset[f.dst]
		}
	}
	d.markParSweeps()
	// Sum the static superinstruction counts (shared programs count once
	// per design that uses them — the stats describe this design's
	// compiled form, not unique program objects).
	for _, pr := range d.procs {
		d.nSuper += int(pr.prog.nSuper)
		d.nFuseSkip += int(pr.prog.nFuseSkip)
	}
	for _, ca := range d.assigns {
		if ca.prog != nil {
			d.nSuper += int(ca.prog.nSuper)
			d.nFuseSkip += int(ca.prog.nFuseSkip)
		}
	}
}

// markParSweeps proves Tier C eligibility per fan-out signal: a batch
// qualifies when it is at least coneParMin assigns, every member is a
// specialized fast shape, and no member reads any member's destination
// (including its own). Under those conditions every member's inputs are
// fixed for the whole sweep, so parallel evaluation from the pre-sweep
// store followed by in-order commits reproduces the sequential sweep
// exactly.
func (d *Design) markParSweeps() {
	d.parSweep = make([]bool, len(d.Signals))
	var isDst []bool // scratch, reused across batches
	for sig, list := range d.sigAssigns {
		if len(list) < coneParMin {
			continue
		}
		if isDst == nil {
			isDst = make([]bool, len(d.Signals))
		}
		ok := true
		for _, idx := range list {
			if d.assigns[idx].fast.kind == caFastNone {
				ok = false
				break
			}
			isDst[d.assigns[idx].fast.dst] = true
		}
		if ok {
			// Check the fast shapes' true inputs, not ca.reads: reads
			// lists every identifier in the assign including its own
			// LHS (so a destination change re-triggers evaluation),
			// which would veto every batch. The specialized shapes read
			// exactly a (and b for the two-operand kind).
			for _, idx := range list {
				f := &d.assigns[idx].fast
				if f.kind != caFastConst && isDst[f.a] {
					ok = false
					break
				}
				if f.kind == caFastBin && isDst[f.b] {
					ok = false
					break
				}
			}
		}
		for _, idx := range list { // reset scratch
			isDst[d.assigns[idx].fast.dst] = false
		}
		d.parSweep[sig] = ok
	}
}

// SignalByName returns the flattened signal with the given hierarchical
// name (e.g. "tb.dut.sum"), or false.
func (d *Design) SignalByName(name string) (*Signal, bool) {
	id, ok := d.byName[name]
	if !ok {
		return nil, false
	}
	return d.Signals[id], true
}

// SignalNames returns all hierarchical signal names, sorted.
func (d *Design) SignalNames() []string {
	names := make([]string, 0, len(d.byName))
	for n := range d.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// elaborator carries state while flattening.
type elaborator struct {
	file    *SourceFile
	design  *Design
	depth   int
	caSlab  []contAssign // slab backing for the flattened assigns
	idSlab  []Ident      // slab backing for port-connection references
	nScopes int32        // instance scopes created so far (assigns scopeIDs)
}

const maxElabDepth = 64

// Elaborate flattens the hierarchy under the named top module.
func Elaborate(file *SourceFile, top string) (*Design, error) {
	mod := file.FindModule(top)
	if mod == nil {
		return nil, &ElabError{Msg: fmt.Sprintf("top module %q not found", top)}
	}
	e := &elaborator{
		file:   file,
		design: &Design{Top: top, byName: map[string]SignalID{}},
	}
	if err := e.instantiate(mod, top, nil, nil); err != nil {
		return nil, err
	}
	e.design.finalizeLayout()
	return e.design, nil
}

// newSignal registers a flattened signal.
func (e *elaborator) newSignal(name string, width int, isReg bool, words int) (SignalID, error) {
	if width <= 0 || width > 64 {
		return 0, &ElabError{Msg: fmt.Sprintf("signal %q has unsupported width %d (subset: 1..64)", name, width)}
	}
	if _, dup := e.design.byName[name]; dup {
		return 0, &ElabError{Msg: fmt.Sprintf("duplicate signal %q", name)}
	}
	id := SignalID(len(e.design.Signals))
	e.design.Signals = append(e.design.Signals, &Signal{ID: id, Name: name, Width: width, IsReg: isReg, Words: words})
	e.design.byName[name] = id
	return id, nil
}

// paramScope is the constant-only view of a scope used by evalConst.
type paramScope map[string]Value

// evalConst evaluates an elaboration-time constant expression.
func evalConst(ex Expr, params paramScope) (Value, error) {
	switch n := ex.(type) {
	case *Number:
		return n.Val, nil
	case *Ident:
		if v, ok := params[n.Name]; ok {
			return v, nil
		}
		return Value{}, &ElabError{Pos: Pos{Line: n.Line}, Msg: fmt.Sprintf("identifier %q is not a constant", n.Name)}
	case *Unary:
		x, err := evalConst(n.X, params)
		if err != nil {
			return Value{}, err
		}
		return applyUnary(n.Op, x)
	case *Binary:
		x, err := evalConst(n.X, params)
		if err != nil {
			return Value{}, err
		}
		y, err := evalConst(n.Y, params)
		if err != nil {
			return Value{}, err
		}
		return applyBinary(n.Op, x, y)
	case *Ternary:
		c, err := evalConst(n.Cond, params)
		if err != nil {
			return Value{}, err
		}
		if c.IsTrue() {
			return evalConst(n.Then, params)
		}
		return evalConst(n.Else, params)
	default:
		return Value{}, &ElabError{Msg: fmt.Sprintf("unsupported constant expression %T", ex)}
	}
}

// constParams extracts the parameter-only entries of a scope.
func (s scope) constParams() paramScope {
	ps := paramScope{}
	for name, ent := range s {
		if ent.isParam {
			ps[name] = ent.param
		}
	}
	return ps
}

// instantiate flattens module mod under hierarchical path, with port
// connections conns evaluated in the parent scope parentScope (nil for top).
func (e *elaborator) instantiate(mod *Module, path string, inst *Instance, parentScope scope) error {
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > maxElabDepth {
		return &ElabError{Msg: fmt.Sprintf("instantiation depth exceeds %d (recursive hierarchy?)", maxElabDepth)}
	}

	sc := scope{}
	sid := e.nScopes
	e.nScopes++

	// 1. Resolve parameters: defaults, then overrides.
	overrides := map[string]Expr{}
	if inst != nil {
		for i, ex := range inst.ParamOrder {
			nonLocal := nonLocalParams(mod)
			if i >= len(nonLocal) {
				return &ElabError{Pos: Pos{Line: inst.Line}, Msg: fmt.Sprintf("too many positional parameters for %q", mod.Name)}
			}
			overrides[nonLocal[i].Name] = ex
		}
		for name, ex := range inst.ParamNamed {
			overrides[name] = ex
		}
	}
	// ps tracks the constant-only view of sc incrementally, so the width
	// evaluations below reuse one map instead of rebuilding it per port
	// and per declaration (a measurable cost when batch-compiling
	// hundreds of candidate designs).
	ps := paramScope{}
	var parentPS paramScope
	for _, prm := range mod.Params {
		var v Value
		var err error
		if ov, ok := overrides[prm.Name]; ok && !prm.IsLocal {
			if parentPS == nil {
				parentPS = parentScope.constParams()
			}
			v, err = evalConst(ov, parentPS)
		} else {
			v, err = evalConst(prm.Default, ps)
		}
		if err != nil {
			return fmt.Errorf("parameter %s.%s: %w", mod.Name, prm.Name, err)
		}
		sc[prm.Name] = scopeEntry{isParam: true, param: v}
		ps[prm.Name] = v
	}

	// 2. Declare port signals.
	for _, port := range mod.Ports {
		if port.Dir == 0 {
			return &ElabError{Pos: Pos{Line: port.Line}, Msg: fmt.Sprintf("port %q of %q has no direction", port.Name, mod.Name)}
		}
		if port.Dir == DirInout {
			return &ElabError{Pos: Pos{Line: port.Line}, Msg: "inout ports are not supported by the subset"}
		}
		w := 1
		if port.Width != nil {
			msb, err := evalConst(port.Width, ps)
			if err != nil {
				return err
			}
			w = int(msb.Uint()) + 1
		}
		id, err := e.newSignal(path+"."+port.Name, w, port.IsReg, 1)
		if err != nil {
			return err
		}
		sc[port.Name] = scopeEntry{sig: id}
	}

	// 3. Declare body nets/regs (first pass so forward references resolve).
	for _, item := range mod.Items {
		decl, ok := item.(*NetDecl)
		if !ok {
			continue
		}
		if _, exists := sc[decl.Name]; exists {
			// Port redeclared as wire/reg in body: keep port signal but
			// honor an explicit reg flag.
			continue
		}
		w := 1
		if decl.Width != nil {
			msb, err := evalConst(decl.Width, ps)
			if err != nil {
				return err
			}
			w = int(msb.Uint()) + 1
		}
		words := 1
		if decl.ArrayHi != nil {
			hi, err := evalConst(decl.ArrayHi, ps)
			if err != nil {
				return err
			}
			words = int(hi.Uint()) + 1
			if words <= 0 || words > 1<<20 {
				return &ElabError{Pos: Pos{Line: decl.Line}, Msg: fmt.Sprintf("memory %q has unsupported word count %d", decl.Name, words)}
			}
		}
		id, err := e.newSignal(path+"."+decl.Name, w, decl.IsReg, words)
		if err != nil {
			return err
		}
		sc[decl.Name] = scopeEntry{sig: id}
	}

	// 4. Port connections become continuous assignments.
	if inst != nil {
		conns := map[string]Expr{}
		if len(inst.ConnOrder) > 0 {
			if len(inst.ConnOrder) > len(mod.Ports) {
				return &ElabError{Pos: Pos{Line: inst.Line}, Msg: fmt.Sprintf("too many positional connections for %q", mod.Name)}
			}
			for i, ex := range inst.ConnOrder {
				conns[mod.Ports[i].Name] = ex
			}
		} else {
			for name, ex := range inst.Conns {
				found := false
				for _, port := range mod.Ports {
					if port.Name == name {
						found = true
						break
					}
				}
				if !found {
					return &ElabError{Pos: Pos{Line: inst.Line}, Msg: fmt.Sprintf("module %q has no port %q", mod.Name, name)}
				}
				conns[name] = ex
			}
		}
		for _, port := range mod.Ports {
			ex, connected := conns[port.Name]
			if !connected || ex == nil {
				continue // dangling port
			}
			portRef := alloc(&e.idSlab, Ident{Name: port.Name})
			switch port.Dir {
			case DirInput:
				e.design.assigns = append(e.design.assigns, alloc(&e.caSlab, contAssign{
					lhs: portRef, rhs: scopedExpr{ex, parentScope}, scope: sc, scopeID: sid, line: inst.Line,
				}))
			case DirOutput:
				e.design.assigns = append(e.design.assigns, alloc(&e.caSlab, contAssign{
					lhs: scopedExpr{ex, parentScope}, rhs: portRef, scope: sc, scopeID: sid, line: inst.Line,
				}))
			}
		}
	}

	// 5. Remaining items.
	for _, item := range mod.Items {
		switch it := item.(type) {
		case *NetDecl:
			if it.Init != nil {
				e.design.assigns = append(e.design.assigns, alloc(&e.caSlab, contAssign{
					lhs: alloc(&e.idSlab, Ident{Name: it.Name}), rhs: it.Init, scope: sc, scopeID: sid, line: it.Line,
				}))
			}
		case *ContAssign:
			e.design.assigns = append(e.design.assigns, alloc(&e.caSlab, contAssign{lhs: it.LHS, rhs: it.RHS, scope: sc, scopeID: sid, line: it.Line}))
		case *AlwaysBlock:
			e.design.procs = append(e.design.procs, &process{
				kind: procAlways, sens: it.Sens, star: it.Star, body: it.Body, scope: sc,
				name: fmt.Sprintf("%s.always@%d", path, it.Line), line: it.Line, bcache: &it.bound,
			})
		case *InitialBlock:
			e.design.procs = append(e.design.procs, &process{
				kind: procInitial, body: it.Body, scope: sc,
				name: fmt.Sprintf("%s.initial@%d", path, it.Line), line: it.Line, bcache: &it.bound,
			})
		case *Instance:
			child := e.file.FindModule(it.ModuleName)
			if child == nil {
				return &ElabError{Pos: Pos{Line: it.Line}, Msg: fmt.Sprintf("unknown module %q", it.ModuleName)}
			}
			if err := e.instantiate(child, path+"."+it.Name, it, sc); err != nil {
				return err
			}
		}
	}

	// 6. Resolve read sets for @* processes and continuous assigns.
	for _, ca := range e.design.assigns {
		if ca.reads == nil {
			ca.reads = readSet(ca.rhs, ca.scope, nil)
			ca.reads = readSet(ca.lhs, ca.scope, ca.reads) // index exprs on LHS
		}
	}
	for _, pr := range e.design.procs {
		if pr.kind == procAlways && pr.star && pr.reads == nil {
			pr.reads = stmtReadSet(pr.body, pr.scope, nil)
		}
	}
	return nil
}

func nonLocalParams(m *Module) []*Param {
	var out []*Param
	for _, p := range m.Params {
		if !p.IsLocal {
			out = append(out, p)
		}
	}
	return out
}

// scopedExpr wraps an expression that must be evaluated in a different
// scope than its containing construct (used for port connections, which
// reference parent-scope names).
type scopedExpr struct {
	Expr  Expr
	Scope scope
}

func (scopedExpr) expr() {}

// readSet appends the signal IDs read by ex to acc.
func readSet(ex Expr, sc scope, acc []SignalID) []SignalID {
	switch n := ex.(type) {
	case nil:
		return acc
	case *Ident:
		if ent, ok := sc[n.Name]; ok && !ent.isParam {
			acc = append(acc, ent.sig)
		}
		return acc
	case *boundRef:
		return append(acc, n.sig)
	case *Number, *StringLit, *boundParam:
		return acc
	case *Unary:
		return readSet(n.X, sc, acc)
	case *Binary:
		return readSet(n.Y, sc, readSet(n.X, sc, acc))
	case *Ternary:
		return readSet(n.Else, sc, readSet(n.Then, sc, readSet(n.Cond, sc, acc)))
	case *Concat:
		for _, part := range n.Parts {
			acc = readSet(part, sc, acc)
		}
		return acc
	case *Repeat:
		return readSet(n.X, sc, readSet(n.Count, sc, acc))
	case *Index:
		return readSet(n.Idx, sc, readSet(n.X, sc, acc))
	case *PartSelect:
		return readSet(n.LSB, sc, readSet(n.MSB, sc, readSet(n.X, sc, acc)))
	case *SysFunc:
		for _, a := range n.Args {
			acc = readSet(a, sc, acc)
		}
		return acc
	case scopedExpr:
		return readSet(n.Expr, n.Scope, acc)
	default:
		return acc
	}
}

// stmtReadSet computes the inferred @* sensitivity of a statement.
func stmtReadSet(st Stmt, sc scope, acc []SignalID) []SignalID {
	switch n := st.(type) {
	case nil:
		return acc
	case *Block:
		for _, s := range n.Stmts {
			acc = stmtReadSet(s, sc, acc)
		}
		return acc
	case *Assign:
		acc = readSet(n.RHS, sc, acc)
		// Index expressions on the LHS are reads too.
		if idx, ok := n.LHS.(*Index); ok {
			acc = readSet(idx.Idx, sc, acc)
		}
		return acc
	case *IfStmt:
		return stmtReadSet(n.Else, sc, stmtReadSet(n.Then, sc, readSet(n.Cond, sc, acc)))
	case *CaseStmt:
		acc = readSet(n.Subject, sc, acc)
		for _, item := range n.Items {
			for _, e := range item.Exprs {
				acc = readSet(e, sc, acc)
			}
			acc = stmtReadSet(item.Body, sc, acc)
		}
		return acc
	case *ForStmt:
		acc = readSet(n.Cond, sc, acc)
		return stmtReadSet(n.Body, sc, acc)
	case *WhileStmt:
		return stmtReadSet(n.Body, sc, readSet(n.Cond, sc, acc))
	case *RepeatStmt:
		return stmtReadSet(n.Body, sc, readSet(n.Count, sc, acc))
	case *DelayStmt:
		return stmtReadSet(n.Body, sc, acc)
	case *EventStmt:
		return stmtReadSet(n.Body, sc, acc)
	case *SysCall:
		for _, a := range n.Args {
			acc = readSet(a, sc, acc)
		}
		return acc
	default:
		return acc
	}
}

// applyUnary evaluates a unary operator on a value.
func applyUnary(op string, x Value) (Value, error) {
	switch op {
	case "~":
		return Not(x, x.Width), nil
	case "!":
		return LogicalNot(x), nil
	case "-":
		return Sub(NewValue(0, x.Width), x, x.Width), nil
	case "&":
		return ReduceAnd(x), nil
	case "|":
		return ReduceOr(x), nil
	case "^":
		return ReduceXor(x), nil
	case "~&":
		return LogicalNot(ReduceAnd(x)), nil
	case "~|":
		return LogicalNot(ReduceOr(x)), nil
	case "~^", "^~":
		return LogicalNot(ReduceXor(x)), nil
	default:
		return Value{}, fmt.Errorf("verilog: unsupported unary operator %q", op)
	}
}

// applyBinary evaluates a binary operator. Addition widens by one bit and
// multiplication sums operand widths (capped at 64): this approximates
// Verilog's context-determined widths so that carry/overflow bits survive
// into concatenation LHSs like {cout, sum} = a + b + cin. Assignments
// truncate to the target width, preserving modular semantics.
func applyBinary(op string, x, y Value) (Value, error) {
	w := max(x.Width, y.Width)
	switch op {
	case "+":
		grown := w
		if grown < 64 {
			grown++
		}
		return Add(x.Resize(grown), y.Resize(grown), grown), nil
	case "-":
		return Sub(x.Resize(w), y.Resize(w), w), nil
	case "*":
		grown := x.Width + y.Width
		if grown > 64 {
			grown = 64
		}
		return Mul(x.Resize(grown), y.Resize(grown), grown), nil
	case "/":
		return Div(x.Resize(w), y.Resize(w), w), nil
	case "%":
		return Mod(x.Resize(w), y.Resize(w), w), nil
	case "&":
		return And(x.Resize(w), y.Resize(w), w), nil
	case "|":
		return Or(x.Resize(w), y.Resize(w), w), nil
	case "^":
		return Xor(x.Resize(w), y.Resize(w), w), nil
	case "~^", "^~":
		return Not(Xor(x.Resize(w), y.Resize(w), w), w), nil
	case "~&":
		return Not(And(x.Resize(w), y.Resize(w), w), w), nil
	case "~|":
		return Not(Or(x.Resize(w), y.Resize(w), w), w), nil
	case "<<", "<<<":
		return Shl(x, y, x.Width), nil
	case ">>", ">>>":
		return Shr(x, y, x.Width), nil
	case "==":
		return Eq(x.Resize(w), y.Resize(w)), nil
	case "!=":
		return LogicalNot(Eq(x.Resize(w), y.Resize(w))), nil
	case "===":
		return CaseEq(x.Resize(w), y.Resize(w)), nil
	case "!==":
		return LogicalNot(CaseEq(x.Resize(w), y.Resize(w))), nil
	case "<":
		return Lt(x.Resize(w), y.Resize(w)), nil
	case ">":
		return Lt(y.Resize(w), x.Resize(w)), nil
	case "<=":
		return LogicalNot(Lt(y.Resize(w), x.Resize(w))), nil
	case ">=":
		return LogicalNot(Lt(x.Resize(w), y.Resize(w))), nil
	case "&&":
		return LogicalAnd(x, y), nil
	case "||":
		return LogicalOr(x, y), nil
	default:
		return Value{}, fmt.Errorf("verilog: unsupported binary operator %q", op)
	}
}
