package verilog

import (
	"fmt"
	"strconv"
)

// evaluator is the retained tree-walking expression evaluator. Since the
// bytecode VM took over the hot path (bytecode.go, vm.go), it serves
// three roles only: the executor behind the VM's exact-semantics
// fallback opcodes (statements whose legacy error topology is not worth
// encoding, like $error/$fatal), the continuous-assign path for lvalue
// shapes too rare to lower, and the reference semantics the VM is
// property-tested against (vm_prop_test.go).
type evaluator struct {
	sim   *Simulator
	scope scope
}

// resolveSignal resolves an identifier expression (possibly scope-wrapped)
// to a signal, unwrapping port-connection scope switches.
func (ev *evaluator) resolveSignal(ex Expr) (*Signal, scope, error) {
	switch n := ex.(type) {
	case *boundRef:
		return ev.sim.design.Signals[n.sig], ev.scope, nil
	case *boundParam:
		return nil, nil, fmt.Errorf("%q is a parameter, not a signal", n.name)
	case *Ident:
		ent, ok := ev.scope[n.Name]
		if !ok {
			return nil, nil, fmt.Errorf("unknown identifier %q", n.Name)
		}
		if ent.isParam {
			return nil, nil, fmt.Errorf("%q is a parameter, not a signal", n.Name)
		}
		return ev.sim.design.Signals[ent.sig], ev.scope, nil
	case scopedExpr:
		sub := &evaluator{sim: ev.sim, scope: n.Scope}
		return sub.resolveSignal(n.Expr)
	default:
		return nil, nil, fmt.Errorf("expected signal reference, got %T", ex)
	}
}

// eval computes the value of an expression.
func (ev *evaluator) eval(ex Expr) (Value, error) {
	switch n := ex.(type) {
	case *Number:
		return n.Val, nil

	case *boundRef:
		sig := ev.sim.design.Signals[n.sig]
		if sig.Words > 1 {
			return Value{}, fmt.Errorf("memory %q used without an index at line %d", n.name, n.line)
		}
		return ev.sim.val(n.sig), nil

	case *boundParam:
		return n.val, nil

	case *Ident:
		ent, ok := ev.scope[n.Name]
		if !ok {
			return Value{}, fmt.Errorf("unknown identifier %q at line %d", n.Name, n.Line)
		}
		if ent.isParam {
			return ent.param, nil
		}
		sig := ev.sim.design.Signals[ent.sig]
		if sig.Words > 1 {
			return Value{}, fmt.Errorf("memory %q used without an index at line %d", n.Name, n.Line)
		}
		return ev.sim.val(ent.sig), nil

	case scopedExpr:
		sub := &evaluator{sim: ev.sim, scope: n.Scope}
		return sub.eval(n.Expr)

	case *StringLit:
		return Value{}, fmt.Errorf("string literal %q used in value context", n.Text)

	case *Unary:
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		return applyUnary(n.Op, x)

	case *Binary:
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		y, err := ev.eval(n.Y)
		if err != nil {
			return Value{}, err
		}
		return applyBinary(n.Op, x, y)

	case *Ternary:
		c, err := ev.eval(n.Cond)
		if err != nil {
			return Value{}, err
		}
		if !c.IsFullyKnown() {
			t, err := ev.eval(n.Then)
			if err != nil {
				return Value{}, err
			}
			e, err := ev.eval(n.Else)
			if err != nil {
				return Value{}, err
			}
			return AllX(max(t.Width, e.Width)), nil
		}
		if c.IsTrue() {
			return ev.eval(n.Then)
		}
		return ev.eval(n.Else)

	case *Concat:
		// Single left-to-right pass: {a, b, ...} shifts the accumulator
		// left by each part's width. Allocation-free ConcatValues.
		var out Value
		for _, p := range n.Parts {
			v, err := ev.eval(p)
			if err != nil {
				return Value{}, err
			}
			if out.Width+v.Width > 64 {
				return Value{}, fmt.Errorf("verilog: concatenation width %d exceeds 64", concatWidth(ev, n))
			}
			m := maskFor(v.Width)
			out.Bits = out.Bits<<uint(v.Width) | v.Bits&m
			out.Unknown = out.Unknown<<uint(v.Width) | v.Unknown&m
			out.Width += v.Width
		}
		return out, nil

	case *Repeat:
		cnt, err := ev.eval(n.Count)
		if err != nil {
			return Value{}, err
		}
		if !cnt.IsFullyKnown() {
			return Value{}, fmt.Errorf("replication count is unknown")
		}
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		k := int(cnt.Uint())
		// Guard without the k*x.Width product: a huge count (e.g. a 64-bit
		// literal) overflows int and would slip past, spinning the loop
		// below for 2^58 iterations on untrusted candidate source.
		if k <= 0 || x.Width <= 0 || k > 64/x.Width {
			return Value{}, fmt.Errorf("replication {%d{...}} of width %d unsupported", k, x.Width)
		}
		// Same allocation-free shift accumulator as Concat above.
		m := maskFor(x.Width)
		var out Value
		for i := 0; i < k; i++ {
			out.Bits = out.Bits<<uint(x.Width) | x.Bits&m
			out.Unknown = out.Unknown<<uint(x.Width) | x.Unknown&m
			out.Width += x.Width
		}
		return out, nil

	case *Index:
		// Memory word read?
		if sig, _, err := ev.resolveSignal(n.X); err == nil && sig.Words > 1 {
			idx, err := ev.eval(n.Idx)
			if err != nil {
				return Value{}, err
			}
			if !idx.IsFullyKnown() {
				return AllX(sig.Width), nil
			}
			w := int(idx.Uint())
			if w < 0 || w >= sig.Words {
				return AllX(sig.Width), nil
			}
			return ev.sim.words(sig.ID)[w], nil
		}
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		idx, err := ev.eval(n.Idx)
		if err != nil {
			return Value{}, err
		}
		if !idx.IsFullyKnown() {
			return AllX(1), nil
		}
		i := int(idx.Uint())
		if i < 0 || i >= x.Width {
			return AllX(1), nil
		}
		return x.Bit(i), nil

	case *PartSelect:
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		msbV, err := ev.eval(n.MSB)
		if err != nil {
			return Value{}, err
		}
		lsbV, err := ev.eval(n.LSB)
		if err != nil {
			return Value{}, err
		}
		if !msbV.IsFullyKnown() || !lsbV.IsFullyKnown() {
			return Value{}, fmt.Errorf("part-select bounds are unknown at line %d", n.Line)
		}
		msb, lsb := int(msbV.Uint()), int(lsbV.Uint())
		if msb < lsb || msb-lsb+1 > 64 {
			return Value{}, fmt.Errorf("bad part-select [%d:%d] at line %d", msb, lsb, n.Line)
		}
		w := msb - lsb + 1
		return Value{
			Bits:    (x.Bits >> uint(lsb)) & maskFor(w),
			Unknown: (x.Unknown >> uint(lsb)) & maskFor(w),
			Width:   w,
		}, nil

	case *SysFunc:
		switch n.Name {
		case "$time", "$stime", "$realtime":
			return NewValue(ev.sim.now, 64), nil
		case "$random", "$urandom":
			return NewValue(ev.sim.random()&0xFFFFFFFF, 32), nil
		case "$clog2":
			if len(n.Args) != 1 {
				return Value{}, fmt.Errorf("$clog2 takes one argument")
			}
			v, err := ev.eval(n.Args[0])
			if err != nil {
				return Value{}, err
			}
			if !v.IsFullyKnown() {
				return AllX(32), nil
			}
			x := v.Uint()
			n := 0
			// Cap at 64: for x > 2^63 the shift would overflow to zero
			// and spin forever (the answer is exactly 64 there).
			for n < 64 && (uint64(1)<<uint(n)) < x {
				n++
			}
			return NewValue(uint64(n), 32), nil
		default:
			return Value{}, fmt.Errorf("unsupported system function %s at line %d", n.Name, n.Line)
		}

	default:
		return Value{}, fmt.Errorf("unsupported expression %T", ex)
	}
}

// lvalueWidth returns the bit width an lvalue expression covers.
func (ev *evaluator) lvalueWidth(lhs Expr) (int, error) {
	switch n := lhs.(type) {
	case *Ident, scopedExpr, *boundRef, *boundParam:
		sig, _, err := ev.resolveSignal(n)
		if err != nil {
			return 0, err
		}
		return sig.Width, nil
	case *Index:
		if sig, _, err := ev.resolveSignal(n.X); err == nil && sig.Words > 1 {
			return sig.Width, nil
		}
		return 1, nil
	case *PartSelect:
		msbV, err := ev.eval(n.MSB)
		if err != nil {
			return 0, err
		}
		lsbV, err := ev.eval(n.LSB)
		if err != nil {
			return 0, err
		}
		return int(msbV.Uint()) - int(lsbV.Uint()) + 1, nil
	case *Concat:
		total := 0
		for _, p := range n.Parts {
			w, err := ev.lvalueWidth(p)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	default:
		return 0, fmt.Errorf("invalid lvalue %T", lhs)
	}
}

// writeLValue stores v into the lvalue. procedural selects the
// reg-only legality rule; nonBlocking defers the commit to the NBA region.
func (ev *evaluator) writeLValue(lhs Expr, v Value, procedural bool, _ []SignalID) error {
	return ev.write(lhs, v, procedural, false)
}

func (ev *evaluator) write(lhs Expr, v Value, procedural, nonBlocking bool) error {
	switch n := lhs.(type) {
	case scopedExpr:
		sub := &evaluator{sim: ev.sim, scope: n.Scope}
		return sub.write(n.Expr, v, procedural, nonBlocking)

	case *Ident, *boundRef, *boundParam:
		sig, _, err := ev.resolveSignal(n)
		if err != nil {
			return err
		}
		if err := checkWriteLegality(sig, procedural); err != nil {
			return err
		}
		if sig.Words > 1 {
			return fmt.Errorf("memory %q assigned without an index", sig.Name)
		}
		ev.commit(sig, 0, maskFor(sig.Width), v.Resize(sig.Width), nonBlocking)
		return nil

	case *Index:
		sig, outerScope, err := ev.resolveSignal(n.X)
		if err != nil {
			return err
		}
		if err := checkWriteLegality(sig, procedural); err != nil {
			return err
		}
		idxEv := ev
		if _, ok := n.X.(scopedExpr); ok {
			idxEv = &evaluator{sim: ev.sim, scope: outerScope}
		}
		idx, err := idxEv.eval(n.Idx)
		if err != nil {
			return err
		}
		if !idx.IsFullyKnown() {
			return nil // write to unknown index: dropped
		}
		i := int(idx.Uint())
		if sig.Words > 1 {
			ev.commit(sig, i, maskFor(sig.Width), v.Resize(sig.Width), nonBlocking)
			return nil
		}
		if i < 0 || i >= sig.Width {
			return nil
		}
		shifted := Value{Bits: (v.Bits & 1) << uint(i), Unknown: (v.Unknown & 1) << uint(i), Width: sig.Width}
		ev.commit(sig, 0, uint64(1)<<uint(i), shifted, nonBlocking)
		return nil

	case *PartSelect:
		sig, _, err := ev.resolveSignal(n.X)
		if err != nil {
			return err
		}
		if err := checkWriteLegality(sig, procedural); err != nil {
			return err
		}
		msbV, err := ev.eval(n.MSB)
		if err != nil {
			return err
		}
		lsbV, err := ev.eval(n.LSB)
		if err != nil {
			return err
		}
		msb, lsb := int(msbV.Uint()), int(lsbV.Uint())
		if msb < lsb || lsb < 0 || msb >= sig.Width {
			return fmt.Errorf("part-select [%d:%d] out of range for %q", msb, lsb, sig.Name)
		}
		w := msb - lsb + 1
		mask := maskFor(w) << uint(lsb)
		shifted := Value{
			Bits:    (v.Bits & maskFor(w)) << uint(lsb),
			Unknown: (v.Unknown & maskFor(w)) << uint(lsb),
			Width:   sig.Width,
		}
		ev.commit(sig, 0, mask, shifted, nonBlocking)
		return nil

	case *Concat:
		// Split v across the parts, MSB-first.
		total, err := ev.lvalueWidth(n)
		if err != nil {
			return err
		}
		shift := total
		for _, p := range n.Parts {
			w, err := ev.lvalueWidth(p)
			if err != nil {
				return err
			}
			shift -= w
			slice := Value{
				Bits:    (v.Bits >> uint(shift)) & maskFor(w),
				Unknown: (v.Unknown >> uint(shift)) & maskFor(w),
				Width:   w,
			}
			if err := ev.write(p, slice, procedural, nonBlocking); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("invalid assignment target %T", lhs)
	}
}

// checkWriteLegality enforces the reg/wire assignment rules: procedural
// code writes regs, continuous assigns drive wires.
func checkWriteLegality(sig *Signal, procedural bool) error {
	if procedural && !sig.IsReg {
		return fmt.Errorf("procedural assignment to wire %q (declare it reg)", sig.Name)
	}
	if !procedural && sig.IsReg {
		return fmt.Errorf("continuous assignment to reg %q (declare it wire)", sig.Name)
	}
	return nil
}

// commit routes a masked write either immediately or to the NBA region.
func (ev *evaluator) commit(sig *Signal, word int, mask uint64, v Value, nonBlocking bool) {
	if nonBlocking {
		ev.sim.nba = append(ev.sim.nba, nbaUpdate{sig: sig.ID, word: word, mask: mask, value: v, line: ev.sim.probeLine})
		return
	}
	ev.sim.commitWrite(sig.ID, word, mask, v)
}

// --- statement execution (runner side) ----------------------------------
//
// Statement control flow lives in interp.go: the runner is an explicit
// resumable interpreter over Stmt, so delays and event waits suspend by
// recording a continuation frame instead of parking a goroutine. The
// helpers below are the leaf executions it shares: system tasks and
// $display formatting, which never suspend.

// caseMatch compares a case subject with one label; casez treats unknown
// label bits as wildcards.
func caseMatch(subj, label Value, casez bool) bool {
	w := max(subj.Width, label.Width)
	s, l := subj.Resize(w), label.Resize(w)
	if casez {
		care := ^l.Unknown & maskFor(w)
		return (s.Bits^l.Bits)&care&^s.Unknown == 0 && s.Unknown&care == 0
	}
	return s.Equal(l)
}

const maxSimOutput = 1 << 20

// execSysCall dispatches system tasks.
func (r *runner) execSysCall(n *SysCall) error {
	ev := &r.ev
	s := r.sim
	switch n.Name {
	case "$display", "$write", "$strobe", "$monitor":
		text, err := r.formatCall(n)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		if s.out.Len() < maxSimOutput {
			s.out.Write(text)
			if n.Name != "$write" {
				s.out.WriteByte('\n')
			}
		}
		return nil

	case "$finish", "$stop":
		return errFinish

	case "$error", "$fatal":
		s.failures++
		text, err := r.formatCall(n)
		if err != nil {
			text = []byte("(unformattable $error message)")
		}
		if s.out.Len() < maxSimOutput {
			fmt.Fprintf(&s.out, "ERROR at time %d: %s\n", s.now, text)
		}
		if n.Name == "$fatal" {
			return errFinish
		}
		return nil

	case "$check_eq":
		if len(n.Args) < 2 {
			return fmt.Errorf("line %d: $check_eq needs (actual, expected)", n.Line)
		}
		a, err := ev.eval(n.Args[0])
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		b, err := ev.eval(n.Args[1])
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		s.checks++
		w := max(a.Width, b.Width)
		if !a.Resize(w).Equal(b.Resize(w)) {
			s.failures++
			if s.out.Len() < maxSimOutput {
				fmt.Fprintf(&s.out, "CHECK FAILED at time %d (line %d): got %s, want %s\n",
					s.now, n.Line, a.Resize(w), b.Resize(w))
			}
		}
		return nil

	case "$check":
		if len(n.Args) < 1 {
			return fmt.Errorf("line %d: $check needs a condition", n.Line)
		}
		c, err := ev.eval(n.Args[0])
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		s.checks++
		if !c.IsTrue() {
			s.failures++
			if s.out.Len() < maxSimOutput {
				fmt.Fprintf(&s.out, "CHECK FAILED at time %d (line %d)\n", s.now, n.Line)
			}
		}
		return nil

	case "$dumpfile", "$dumpvars", "$timeformat", "$readmemh", "$readmemb":
		return nil // accepted and ignored by the subset

	default:
		return fmt.Errorf("line %d: unsupported system task %s", n.Line, n.Name)
	}
}

// formatCall renders $display-style arguments into the runner's scratch
// buffer; the returned slice is only valid until the next format call.
func (r *runner) formatCall(n *SysCall) ([]byte, error) {
	// No args: empty line.
	if len(n.Args) == 0 {
		return nil, nil
	}
	// Format-string style if the first arg is a string literal. Delegate
	// before claiming the scratch buffer: formatString grows the same
	// scratch, and restoring our stale pre-growth slice here would throw
	// away its larger backing array on every call.
	if first, ok := n.Args[0].(*StringLit); ok {
		return r.formatString(first.Text, n.Args[1:])
	}
	ev := &r.ev
	b := r.scratch[:0]
	defer func() { r.scratch = b[:0] }()
	// Otherwise: space-separated decimal values.
	for i, a := range n.Args {
		if i > 0 {
			b = append(b, ' ')
		}
		if sl, ok := a.(*StringLit); ok {
			b = append(b, sl.Text...)
			continue
		}
		v, err := ev.eval(a)
		if err != nil {
			return nil, err
		}
		b = appendRadix(b, v, 'd')
	}
	return b, nil
}

// formatString implements the $display verb subset: %d %h %x %b %o %s %c
// %t %0d %m and %%. Output goes to the runner's scratch buffer; the
// returned slice is only valid until the next format call.
func (r *runner) formatString(format string, args []Expr) ([]byte, error) {
	ev := &r.ev
	b := r.scratch[:0]
	defer func() { r.scratch = b[:0] }()
	ai := 0
	nextVal := func() (Value, error) {
		if ai >= len(args) {
			return Value{}, fmt.Errorf("format string %q has more verbs than arguments", format)
		}
		a := args[ai]
		ai++
		if _, ok := a.(*StringLit); ok {
			return Value{}, fmt.Errorf("string argument where value expected in %q", format)
		}
		return ev.eval(a)
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b = append(b, c)
			continue
		}
		i++
		if i >= len(format) {
			b = append(b, '%')
			break
		}
		// Skip width/zero flags: %0d, %2d ...
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			b = append(b, '%')
		case 'd', 'D':
			v, err := nextVal()
			if err != nil {
				return nil, err
			}
			b = appendRadix(b, v, 'd')
		case 'h', 'H', 'x', 'X':
			v, err := nextVal()
			if err != nil {
				return nil, err
			}
			b = appendRadix(b, v, 'h')
		case 'b', 'B':
			v, err := nextVal()
			if err != nil {
				return nil, err
			}
			b = appendRadix(b, v, 'b')
		case 'o', 'O':
			v, err := nextVal()
			if err != nil {
				return nil, err
			}
			if v.IsFullyKnown() {
				b = strconv.AppendUint(b, v.Uint(), 8)
			} else {
				b = append(b, 'x')
			}
		case 't', 'T':
			v, err := nextVal()
			if err != nil {
				return nil, err
			}
			b = appendRadix(b, v, 'd')
		case 'c':
			v, err := nextVal()
			if err != nil {
				return nil, err
			}
			b = append(b, byte(v.Uint()))
		case 's':
			if ai < len(args) {
				if sl, ok := args[ai].(*StringLit); ok {
					ai++
					b = append(b, sl.Text...)
					break
				}
			}
			v, err := nextVal()
			if err != nil {
				return nil, err
			}
			b = appendRadix(b, v, 'd')
		case 'm':
			b = append(b, r.proc.name...)
		default:
			b = append(b, '%')
			b = append(b, format[i])
		}
	}
	return b, nil
}

// concatWidth sums a concatenation's part widths for the over-64
// diagnostic (evaluation errors inside count as zero; the width text is
// advisory only).
func concatWidth(ev *evaluator, n *Concat) int {
	total := 0
	for _, p := range n.Parts {
		if v, err := ev.eval(p); err == nil {
			total += v.Width
		}
	}
	return total
}
