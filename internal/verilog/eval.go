package verilog

import (
	"fmt"
	"strings"
)

// evaluator computes expression values against the simulator state. It is
// used both by the scheduler (continuous assigns) and by process runners.
type evaluator struct {
	sim   *Simulator
	scope scope
}

// resolveSignal resolves an identifier expression (possibly scope-wrapped)
// to a signal, unwrapping port-connection scope switches.
func (ev *evaluator) resolveSignal(ex Expr) (*Signal, scope, error) {
	switch n := ex.(type) {
	case *Ident:
		ent, ok := ev.scope[n.Name]
		if !ok {
			return nil, nil, fmt.Errorf("unknown identifier %q", n.Name)
		}
		if ent.isParam {
			return nil, nil, fmt.Errorf("%q is a parameter, not a signal", n.Name)
		}
		return ev.sim.design.Signals[ent.sig], ev.scope, nil
	case scopedExpr:
		sub := &evaluator{sim: ev.sim, scope: n.Scope}
		return sub.resolveSignal(n.Expr)
	default:
		return nil, nil, fmt.Errorf("expected signal reference, got %T", ex)
	}
}

// eval computes the value of an expression.
func (ev *evaluator) eval(ex Expr) (Value, error) {
	switch n := ex.(type) {
	case *Number:
		return n.Val, nil

	case *Ident:
		ent, ok := ev.scope[n.Name]
		if !ok {
			return Value{}, fmt.Errorf("unknown identifier %q at line %d", n.Name, n.Line)
		}
		if ent.isParam {
			return ent.param, nil
		}
		sig := ev.sim.design.Signals[ent.sig]
		if sig.Words > 1 {
			return Value{}, fmt.Errorf("memory %q used without an index at line %d", n.Name, n.Line)
		}
		return ev.sim.vals[ent.sig][0], nil

	case scopedExpr:
		sub := &evaluator{sim: ev.sim, scope: n.Scope}
		return sub.eval(n.Expr)

	case *StringLit:
		return Value{}, fmt.Errorf("string literal %q used in value context", n.Text)

	case *Unary:
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		return applyUnary(n.Op, x)

	case *Binary:
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		y, err := ev.eval(n.Y)
		if err != nil {
			return Value{}, err
		}
		return applyBinary(n.Op, x, y)

	case *Ternary:
		c, err := ev.eval(n.Cond)
		if err != nil {
			return Value{}, err
		}
		if !c.IsFullyKnown() {
			t, err := ev.eval(n.Then)
			if err != nil {
				return Value{}, err
			}
			e, err := ev.eval(n.Else)
			if err != nil {
				return Value{}, err
			}
			return AllX(max(t.Width, e.Width)), nil
		}
		if c.IsTrue() {
			return ev.eval(n.Then)
		}
		return ev.eval(n.Else)

	case *Concat:
		parts := make([]Value, 0, len(n.Parts))
		for _, p := range n.Parts {
			v, err := ev.eval(p)
			if err != nil {
				return Value{}, err
			}
			parts = append(parts, v)
		}
		return ConcatValues(parts...)

	case *Repeat:
		cnt, err := ev.eval(n.Count)
		if err != nil {
			return Value{}, err
		}
		if !cnt.IsFullyKnown() {
			return Value{}, fmt.Errorf("replication count is unknown")
		}
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		k := int(cnt.Uint())
		if k <= 0 || k*x.Width > 64 {
			return Value{}, fmt.Errorf("replication {%d{...}} of width %d unsupported", k, x.Width)
		}
		parts := make([]Value, k)
		for i := range parts {
			parts[i] = x
		}
		return ConcatValues(parts...)

	case *Index:
		// Memory word read?
		if sig, _, err := ev.resolveSignal(n.X); err == nil && sig.Words > 1 {
			idx, err := ev.eval(n.Idx)
			if err != nil {
				return Value{}, err
			}
			if !idx.IsFullyKnown() {
				return AllX(sig.Width), nil
			}
			w := int(idx.Uint())
			if w < 0 || w >= sig.Words {
				return AllX(sig.Width), nil
			}
			return ev.sim.vals[sig.ID][w], nil
		}
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		idx, err := ev.eval(n.Idx)
		if err != nil {
			return Value{}, err
		}
		if !idx.IsFullyKnown() {
			return AllX(1), nil
		}
		i := int(idx.Uint())
		if i < 0 || i >= x.Width {
			return AllX(1), nil
		}
		return x.Bit(i), nil

	case *PartSelect:
		x, err := ev.eval(n.X)
		if err != nil {
			return Value{}, err
		}
		msbV, err := ev.eval(n.MSB)
		if err != nil {
			return Value{}, err
		}
		lsbV, err := ev.eval(n.LSB)
		if err != nil {
			return Value{}, err
		}
		if !msbV.IsFullyKnown() || !lsbV.IsFullyKnown() {
			return Value{}, fmt.Errorf("part-select bounds are unknown at line %d", n.Line)
		}
		msb, lsb := int(msbV.Uint()), int(lsbV.Uint())
		if msb < lsb || msb-lsb+1 > 64 {
			return Value{}, fmt.Errorf("bad part-select [%d:%d] at line %d", msb, lsb, n.Line)
		}
		w := msb - lsb + 1
		return Value{
			Bits:    (x.Bits >> uint(lsb)) & maskFor(w),
			Unknown: (x.Unknown >> uint(lsb)) & maskFor(w),
			Width:   w,
		}, nil

	case *SysFunc:
		switch n.Name {
		case "$time", "$stime", "$realtime":
			return NewValue(ev.sim.now, 64), nil
		case "$random", "$urandom":
			return NewValue(ev.sim.random()&0xFFFFFFFF, 32), nil
		case "$clog2":
			if len(n.Args) != 1 {
				return Value{}, fmt.Errorf("$clog2 takes one argument")
			}
			v, err := ev.eval(n.Args[0])
			if err != nil {
				return Value{}, err
			}
			if !v.IsFullyKnown() {
				return AllX(32), nil
			}
			x := v.Uint()
			n := 0
			for (uint64(1) << uint(n)) < x {
				n++
			}
			return NewValue(uint64(n), 32), nil
		default:
			return Value{}, fmt.Errorf("unsupported system function %s at line %d", n.Name, n.Line)
		}

	default:
		return Value{}, fmt.Errorf("unsupported expression %T", ex)
	}
}

// lvalueWidth returns the bit width an lvalue expression covers.
func (ev *evaluator) lvalueWidth(lhs Expr) (int, error) {
	switch n := lhs.(type) {
	case *Ident, scopedExpr:
		sig, _, err := ev.resolveSignal(n)
		if err != nil {
			return 0, err
		}
		return sig.Width, nil
	case *Index:
		if sig, _, err := ev.resolveSignal(n.X); err == nil && sig.Words > 1 {
			return sig.Width, nil
		}
		return 1, nil
	case *PartSelect:
		msbV, err := ev.eval(n.MSB)
		if err != nil {
			return 0, err
		}
		lsbV, err := ev.eval(n.LSB)
		if err != nil {
			return 0, err
		}
		return int(msbV.Uint()) - int(lsbV.Uint()) + 1, nil
	case *Concat:
		total := 0
		for _, p := range n.Parts {
			w, err := ev.lvalueWidth(p)
			if err != nil {
				return 0, err
			}
			total += w
		}
		return total, nil
	default:
		return 0, fmt.Errorf("invalid lvalue %T", lhs)
	}
}

// writeLValue stores v into the lvalue. procedural selects the
// reg-only legality rule; nonBlocking defers the commit to the NBA region.
func (ev *evaluator) writeLValue(lhs Expr, v Value, procedural bool, _ []SignalID) error {
	return ev.write(lhs, v, procedural, false)
}

func (ev *evaluator) write(lhs Expr, v Value, procedural, nonBlocking bool) error {
	switch n := lhs.(type) {
	case scopedExpr:
		sub := &evaluator{sim: ev.sim, scope: n.Scope}
		return sub.write(n.Expr, v, procedural, nonBlocking)

	case *Ident:
		sig, _, err := ev.resolveSignal(n)
		if err != nil {
			return err
		}
		if err := checkWriteLegality(sig, procedural); err != nil {
			return err
		}
		if sig.Words > 1 {
			return fmt.Errorf("memory %q assigned without an index", sig.Name)
		}
		ev.commit(sig, 0, maskFor(sig.Width), v.Resize(sig.Width), nonBlocking)
		return nil

	case *Index:
		sig, outerScope, err := ev.resolveSignal(n.X)
		if err != nil {
			return err
		}
		if err := checkWriteLegality(sig, procedural); err != nil {
			return err
		}
		idxEv := ev
		if _, ok := n.X.(scopedExpr); ok {
			idxEv = &evaluator{sim: ev.sim, scope: outerScope}
		}
		idx, err := idxEv.eval(n.Idx)
		if err != nil {
			return err
		}
		if !idx.IsFullyKnown() {
			return nil // write to unknown index: dropped
		}
		i := int(idx.Uint())
		if sig.Words > 1 {
			ev.commit(sig, i, maskFor(sig.Width), v.Resize(sig.Width), nonBlocking)
			return nil
		}
		if i < 0 || i >= sig.Width {
			return nil
		}
		shifted := Value{Bits: (v.Bits & 1) << uint(i), Unknown: (v.Unknown & 1) << uint(i), Width: sig.Width}
		ev.commit(sig, 0, uint64(1)<<uint(i), shifted, nonBlocking)
		return nil

	case *PartSelect:
		sig, _, err := ev.resolveSignal(n.X)
		if err != nil {
			return err
		}
		if err := checkWriteLegality(sig, procedural); err != nil {
			return err
		}
		msbV, err := ev.eval(n.MSB)
		if err != nil {
			return err
		}
		lsbV, err := ev.eval(n.LSB)
		if err != nil {
			return err
		}
		msb, lsb := int(msbV.Uint()), int(lsbV.Uint())
		if msb < lsb || lsb < 0 || msb >= sig.Width {
			return fmt.Errorf("part-select [%d:%d] out of range for %q", msb, lsb, sig.Name)
		}
		w := msb - lsb + 1
		mask := maskFor(w) << uint(lsb)
		shifted := Value{
			Bits:    (v.Bits & maskFor(w)) << uint(lsb),
			Unknown: (v.Unknown & maskFor(w)) << uint(lsb),
			Width:   sig.Width,
		}
		ev.commit(sig, 0, mask, shifted, nonBlocking)
		return nil

	case *Concat:
		// Split v across the parts, MSB-first.
		total, err := ev.lvalueWidth(n)
		if err != nil {
			return err
		}
		shift := total
		for _, p := range n.Parts {
			w, err := ev.lvalueWidth(p)
			if err != nil {
				return err
			}
			shift -= w
			slice := Value{
				Bits:    (v.Bits >> uint(shift)) & maskFor(w),
				Unknown: (v.Unknown >> uint(shift)) & maskFor(w),
				Width:   w,
			}
			if err := ev.write(p, slice, procedural, nonBlocking); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("invalid assignment target %T", lhs)
	}
}

// checkWriteLegality enforces the reg/wire assignment rules: procedural
// code writes regs, continuous assigns drive wires.
func checkWriteLegality(sig *Signal, procedural bool) error {
	if procedural && !sig.IsReg {
		return fmt.Errorf("procedural assignment to wire %q (declare it reg)", sig.Name)
	}
	if !procedural && sig.IsReg {
		return fmt.Errorf("continuous assignment to reg %q (declare it wire)", sig.Name)
	}
	return nil
}

// commit routes a masked write either immediately or to the NBA region.
func (ev *evaluator) commit(sig *Signal, word int, mask uint64, v Value, nonBlocking bool) {
	if nonBlocking {
		ev.sim.nba = append(ev.sim.nba, nbaUpdate{sig: sig.ID, word: word, mask: mask, value: v})
		return
	}
	ev.sim.commitWrite(sig.ID, word, mask, v)
}

// --- statement execution (runner side) ----------------------------------

// exec runs one statement; it returns errFinish for $finish, errBudget on
// step exhaustion, or a runtime diagnostic.
func (r *runner) exec(st Stmt) error {
	if err := r.step(); err != nil {
		return err
	}
	ev := &evaluator{sim: r.sim, scope: r.scope}
	switch n := st.(type) {
	case nil, *NullStmt:
		return nil

	case *Block:
		for _, s := range n.Stmts {
			if err := r.exec(s); err != nil {
				return err
			}
		}
		return nil

	case *Assign:
		rhs, err := ev.eval(n.RHS)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		if err := ev.write(n.LHS, rhs, true, n.NonBlocking); err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		return nil

	case *IfStmt:
		c, err := ev.eval(n.Cond)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		if c.IsTrue() {
			return r.exec(n.Then)
		}
		if n.Else != nil {
			return r.exec(n.Else)
		}
		return nil

	case *CaseStmt:
		subj, err := ev.eval(n.Subject)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		var deflt *CaseItem
		for i := range n.Items {
			item := &n.Items[i]
			if item.IsDefault {
				deflt = item
				continue
			}
			for _, le := range item.Exprs {
				lv, err := ev.eval(le)
				if err != nil {
					return fmt.Errorf("line %d: %w", n.Line, err)
				}
				if caseMatch(subj, lv, n.IsCasez) {
					return r.exec(item.Body)
				}
			}
		}
		if deflt != nil {
			return r.exec(deflt.Body)
		}
		return nil

	case *ForStmt:
		if err := r.exec(n.Init); err != nil {
			return err
		}
		for {
			c, err := ev.eval(n.Cond)
			if err != nil {
				return fmt.Errorf("line %d: %w", n.Line, err)
			}
			if !c.IsTrue() {
				return nil
			}
			if err := r.exec(n.Body); err != nil {
				return err
			}
			if err := r.exec(n.Step); err != nil {
				return err
			}
		}

	case *WhileStmt:
		for {
			c, err := ev.eval(n.Cond)
			if err != nil {
				return fmt.Errorf("line %d: %w", n.Line, err)
			}
			if !c.IsTrue() {
				return nil
			}
			if err := r.exec(n.Body); err != nil {
				return err
			}
		}

	case *RepeatStmt:
		cnt, err := ev.eval(n.Count)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		if !cnt.IsFullyKnown() {
			return fmt.Errorf("line %d: repeat count is unknown", n.Line)
		}
		for i := uint64(0); i < cnt.Uint(); i++ {
			if err := r.exec(n.Body); err != nil {
				return err
			}
		}
		return nil

	case *ForeverStmt:
		if !containsTiming(n.Body) {
			return fmt.Errorf("line %d: forever loop without timing control", n.Line)
		}
		for {
			if err := r.exec(n.Body); err != nil {
				return err
			}
		}

	case *DelayStmt:
		amt, err := ev.eval(n.Amount)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		if !amt.IsFullyKnown() {
			return fmt.Errorf("line %d: delay amount is unknown", n.Line)
		}
		d := amt.Uint()
		if d == 0 {
			d = 1 // #0 rounds up: the subset has no inactive region
		}
		r.yield(yieldReq{kind: yieldDelay, delay: d})
		if n.Body != nil {
			return r.exec(n.Body)
		}
		return nil

	case *EventStmt:
		if n.Star {
			return fmt.Errorf("line %d: statement-level @(*) is not supported", n.Line)
		}
		sens, err := r.resolveSens(n.Sens)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		r.yield(yieldReq{kind: yieldEvent, sens: sens})
		if n.Body != nil {
			return r.exec(n.Body)
		}
		return nil

	case *WaitStmt:
		for {
			c, err := ev.eval(n.Cond)
			if err != nil {
				return fmt.Errorf("line %d: %w", n.Line, err)
			}
			if c.IsTrue() {
				return nil
			}
			reads := readSet(n.Cond, r.scope, nil)
			if len(reads) == 0 {
				return fmt.Errorf("line %d: wait condition reads no signals", n.Line)
			}
			sens := make([]resolvedSens, 0, len(reads))
			for _, s := range reads {
				sens = append(sens, resolvedSens{sig: s, edge: EdgeAny})
			}
			r.yield(yieldReq{kind: yieldEvent, sens: sens})
		}

	case *SysCall:
		return r.execSysCall(n)

	default:
		return fmt.Errorf("unsupported statement %T", st)
	}
}

// caseMatch compares a case subject with one label; casez treats unknown
// label bits as wildcards.
func caseMatch(subj, label Value, casez bool) bool {
	w := max(subj.Width, label.Width)
	s, l := subj.Resize(w), label.Resize(w)
	if casez {
		care := ^l.Unknown & maskFor(w)
		return (s.Bits^l.Bits)&care&^s.Unknown == 0 && s.Unknown&care == 0
	}
	return s.Equal(l)
}

const maxSimOutput = 1 << 20

// execSysCall dispatches system tasks.
func (r *runner) execSysCall(n *SysCall) error {
	ev := &evaluator{sim: r.sim, scope: r.scope}
	s := r.sim
	switch n.Name {
	case "$display", "$write", "$strobe", "$monitor":
		text, err := r.formatCall(n)
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		if s.out.Len() < maxSimOutput {
			s.out.WriteString(text)
			if n.Name != "$write" {
				s.out.WriteByte('\n')
			}
		}
		return nil

	case "$finish", "$stop":
		return errFinish

	case "$error", "$fatal":
		s.failures++
		text, err := r.formatCall(n)
		if err != nil {
			text = "(unformattable $error message)"
		}
		if s.out.Len() < maxSimOutput {
			fmt.Fprintf(&s.out, "ERROR at time %d: %s\n", s.now, text)
		}
		if n.Name == "$fatal" {
			return errFinish
		}
		return nil

	case "$check_eq":
		if len(n.Args) < 2 {
			return fmt.Errorf("line %d: $check_eq needs (actual, expected)", n.Line)
		}
		a, err := ev.eval(n.Args[0])
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		b, err := ev.eval(n.Args[1])
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		s.checks++
		w := max(a.Width, b.Width)
		if !a.Resize(w).Equal(b.Resize(w)) {
			s.failures++
			if s.out.Len() < maxSimOutput {
				fmt.Fprintf(&s.out, "CHECK FAILED at time %d (line %d): got %s, want %s\n",
					s.now, n.Line, a.Resize(w), b.Resize(w))
			}
		}
		return nil

	case "$check":
		if len(n.Args) < 1 {
			return fmt.Errorf("line %d: $check needs a condition", n.Line)
		}
		c, err := ev.eval(n.Args[0])
		if err != nil {
			return fmt.Errorf("line %d: %w", n.Line, err)
		}
		s.checks++
		if !c.IsTrue() {
			s.failures++
			if s.out.Len() < maxSimOutput {
				fmt.Fprintf(&s.out, "CHECK FAILED at time %d (line %d)\n", s.now, n.Line)
			}
		}
		return nil

	case "$dumpfile", "$dumpvars", "$timeformat", "$readmemh", "$readmemb":
		return nil // accepted and ignored by the subset

	default:
		return fmt.Errorf("line %d: unsupported system task %s", n.Line, n.Name)
	}
}

// formatCall renders $display-style arguments.
func (r *runner) formatCall(n *SysCall) (string, error) {
	ev := &evaluator{sim: r.sim, scope: r.scope}
	// No args: empty line.
	if len(n.Args) == 0 {
		return "", nil
	}
	// Format-string style if the first arg is a string literal.
	if first, ok := n.Args[0].(*StringLit); ok {
		return r.formatString(first.Text, n.Args[1:])
	}
	// Otherwise: space-separated decimal values.
	var parts []string
	for _, a := range n.Args {
		if sl, ok := a.(*StringLit); ok {
			parts = append(parts, sl.Text)
			continue
		}
		v, err := ev.eval(a)
		if err != nil {
			return "", err
		}
		parts = append(parts, v.FormatRadix('d'))
	}
	return strings.Join(parts, " "), nil
}

// formatString implements the $display verb subset: %d %h %x %b %o %s %c
// %t %0d %m and %%.
func (r *runner) formatString(format string, args []Expr) (string, error) {
	ev := &evaluator{sim: r.sim, scope: r.scope}
	var b strings.Builder
	ai := 0
	nextVal := func() (Value, error) {
		if ai >= len(args) {
			return Value{}, fmt.Errorf("format string %q has more verbs than arguments", format)
		}
		a := args[ai]
		ai++
		if _, ok := a.(*StringLit); ok {
			return Value{}, fmt.Errorf("string argument where value expected in %q", format)
		}
		return ev.eval(a)
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(format) {
			b.WriteByte('%')
			break
		}
		// Skip width/zero flags: %0d, %2d ...
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			b.WriteByte('%')
		case 'd', 'D':
			v, err := nextVal()
			if err != nil {
				return "", err
			}
			b.WriteString(v.FormatRadix('d'))
		case 'h', 'H', 'x', 'X':
			v, err := nextVal()
			if err != nil {
				return "", err
			}
			b.WriteString(v.FormatRadix('h'))
		case 'b', 'B':
			v, err := nextVal()
			if err != nil {
				return "", err
			}
			b.WriteString(v.FormatRadix('b'))
		case 'o', 'O':
			v, err := nextVal()
			if err != nil {
				return "", err
			}
			if v.IsFullyKnown() {
				fmt.Fprintf(&b, "%o", v.Uint())
			} else {
				b.WriteByte('x')
			}
		case 't', 'T':
			v, err := nextVal()
			if err != nil {
				return "", err
			}
			b.WriteString(v.FormatRadix('d'))
		case 'c':
			v, err := nextVal()
			if err != nil {
				return "", err
			}
			b.WriteByte(byte(v.Uint()))
		case 's':
			if ai < len(args) {
				if sl, ok := args[ai].(*StringLit); ok {
					ai++
					b.WriteString(sl.Text)
					break
				}
			}
			v, err := nextVal()
			if err != nil {
				return "", err
			}
			b.WriteString(v.FormatRadix('d'))
		case 'm':
			b.WriteString(r.ps.proc.name)
		default:
			b.WriteByte('%')
			b.WriteByte(format[i])
		}
	}
	return b.String(), nil
}
