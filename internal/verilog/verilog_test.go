package verilog

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll("module m; wire [3:0] a = 4'b1010; endmodule // c\n/* block */")
	if err != nil {
		t.Fatalf("lexAll: %v", err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	want := []string{"module", "m", ";", "wire", "[", "3", ":", "0", "]", "a", "=", "4'b1010", ";", "endmodule", ""}
	if len(texts) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		"/* unterminated",
		"4'q1010",
	}
	for _, src := range cases {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) succeeded, want error", src)
		}
	}
}

func TestParseNumberLiteral(t *testing.T) {
	cases := []struct {
		text  string
		width int
		bits  uint64
	}{
		{"4'b1010", 4, 10},
		{"8'hff", 8, 255},
		{"12'd100", 12, 100},
		{"42", 32, 42},
		{"16'h1_0", 16, 16}, // underscores removed at lexing; direct parse here
	}
	for _, c := range cases {
		v, err := parseNumberLiteral(strings.ReplaceAll(c.text, "_", ""))
		if err != nil {
			t.Errorf("parseNumberLiteral(%s): %v", c.text, err)
			continue
		}
		if v.Width != c.width || v.Uint() != c.bits || !v.IsFullyKnown() {
			t.Errorf("parseNumberLiteral(%s) = %v, want width %d bits %d", c.text, v, c.width, c.bits)
		}
	}
	v, err := parseNumberLiteral("4'b10xx")
	if err != nil {
		t.Fatalf("x literal: %v", err)
	}
	if v.Unknown != 0b0011 || v.Bits != 0b1000 {
		t.Errorf("4'b10xx = %v", v)
	}
}

func TestValueOps(t *testing.T) {
	a := NewValue(0b1100, 4)
	b := NewValue(0b1010, 4)
	if got := And(a, b, 4).Uint(); got != 0b1000 {
		t.Errorf("And = %b", got)
	}
	if got := Or(a, b, 4).Uint(); got != 0b1110 {
		t.Errorf("Or = %b", got)
	}
	if got := Xor(a, b, 4).Uint(); got != 0b0110 {
		t.Errorf("Xor = %b", got)
	}
	if got := Add(a, b, 4).Uint(); got != 0b0110 { // 12+10=22 mod 16 = 6
		t.Errorf("Add = %b", got)
	}
	if Div(a, NewValue(0, 4), 4).IsFullyKnown() {
		t.Errorf("Div by zero should be X")
	}
	// X-aware AND: 0 & x == 0, 1 & x == x.
	x := Value{Unknown: 0b1111, Width: 4}
	r := And(NewValue(0b0101, 4), x, 4)
	if r.Unknown != 0b0101 {
		t.Errorf("And with x: unknown = %04b, want 0101", r.Unknown)
	}
	// X-aware OR: 1 | x == 1.
	r = Or(NewValue(0b0101, 4), x, 4)
	if r.Unknown != 0b1010 || r.Bits != 0b0101 {
		t.Errorf("Or with x: %v", r)
	}
}

func TestValuePropertiesQuick(t *testing.T) {
	// Addition over fully-known values matches uint64 arithmetic mod 2^w.
	addOK := func(a, b uint64) bool {
		const w = 16
		va, vb := NewValue(a, w), NewValue(b, w)
		return Add(va, vb, w).Uint() == (a+b)&maskFor(w)
	}
	if err := quick.Check(addOK, nil); err != nil {
		t.Error(err)
	}
	// Concat then part-select round-trips.
	rt := func(a, b uint64) bool {
		va, vb := NewValue(a, 16), NewValue(b, 16)
		cc, err := ConcatValues(va, vb)
		if err != nil {
			return false
		}
		hi := Value{Bits: cc.Bits >> 16, Unknown: cc.Unknown >> 16, Width: 16}
		lo := cc.Resize(16)
		return hi.Uint() == va.Uint() && lo.Uint() == vb.Uint()
	}
	if err := quick.Check(rt, nil); err != nil {
		t.Error(err)
	}
	// De Morgan on known values: ~(a&b) == ~a | ~b.
	dm := func(a, b uint64) bool {
		const w = 32
		va, vb := NewValue(a, w), NewValue(b, w)
		lhs := Not(And(va, vb, w), w)
		rhs := Or(Not(va, w), Not(vb, w), w)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(dm, nil); err != nil {
		t.Error(err)
	}
}

func TestParseModuleANSIAndNonANSI(t *testing.T) {
	ansi := `
module adder(input [3:0] a, input [3:0] b, output [4:0] sum);
  assign sum = a + b;
endmodule`
	f, err := Parse(ansi)
	if err != nil {
		t.Fatalf("Parse(ansi): %v", err)
	}
	m := f.FindModule("adder")
	if m == nil || len(m.Ports) != 3 {
		t.Fatalf("adder ports = %v", m)
	}
	if m.Ports[2].Dir != DirOutput {
		t.Errorf("sum direction = %v", m.Ports[2].Dir)
	}

	nonANSI := `
module adder(a, b, sum);
  input [3:0] a, b;
  output [4:0] sum;
  assign sum = a + b;
endmodule`
	f, err = Parse(nonANSI)
	if err != nil {
		t.Fatalf("Parse(nonANSI): %v", err)
	}
	m = f.FindModule("adder")
	if m.Ports[0].Dir != DirInput || m.Ports[2].Dir != DirOutput {
		t.Errorf("non-ANSI directions wrong: %+v", m.Ports)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                             // no modules
		"module m(; endmodule",         // bad port list
		"module m(); asign x = 1;",     // bad keyword, missing endmodule
		"module m(); wire w endmodule", // missing semicolon
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSimCombinationalAdder(t *testing.T) {
	src := `
module adder(input [3:0] a, input [3:0] b, input cin, output [3:0] sum, output cout);
  assign {cout, sum} = a + b + cin;
endmodule

module tb;
  reg [3:0] a, b;
  reg cin;
  wire [3:0] sum;
  wire cout;
  adder dut(.a(a), .b(b), .cin(cin), .sum(sum), .cout(cout));
  integer i;
  initial begin
    for (i = 0; i < 16; i = i + 1) begin
      a = i; b = 15 - i; cin = i[0];
      #1;
      $check_eq({cout, sum}, a + b + cin);
    end
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if res.RuntimeErr != nil {
		t.Fatalf("runtime: %v\n%s", res.RuntimeErr, res.Output)
	}
	if !res.Finished || res.Checks != 16 || res.Failures != 0 {
		t.Fatalf("checks=%d failures=%d finished=%v\n%s", res.Checks, res.Failures, res.Finished, res.Output)
	}
}

func TestSimSequentialCounter(t *testing.T) {
	src := `
module counter(input clk, input rst, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule

module tb;
  reg clk, rst;
  wire [7:0] q;
  counter dut(.clk(clk), .rst(rst), .q(q));
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1;
    #12 rst = 0;
    #100;
    $check_eq(q, 10);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if res.RuntimeErr != nil {
		t.Fatalf("runtime: %v\n%s", res.RuntimeErr, res.Output)
	}
	if !res.Passed() {
		t.Fatalf("counter failed: checks=%d failures=%d\n%s", res.Checks, res.Failures, res.Output)
	}
}

func TestSimNonBlockingSwap(t *testing.T) {
	// The classic NBA swap: both registers exchange values on one edge.
	src := `
module tb;
  reg clk;
  reg [3:0] x, y;
  always @(posedge clk) begin
    x <= y;
    y <= x;
  end
  initial begin
    clk = 0; x = 3; y = 9;
    #1 clk = 1;
    #1;
    $check_eq(x, 9);
    $check_eq(y, 3);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("NBA swap failed:\n%s", res.Output)
	}
}

func TestSimAlwaysStarMux(t *testing.T) {
	src := `
module mux4(input [1:0] sel, input [7:0] a, b, c, d, output reg [7:0] y);
  always @(*) begin
    case (sel)
      2'd0: y = a;
      2'd1: y = b;
      2'd2: y = c;
      default: y = d;
    endcase
  end
endmodule

module tb;
  reg [1:0] sel;
  reg [7:0] a, b, c, d;
  wire [7:0] y;
  mux4 dut(.sel(sel), .a(a), .b(b), .c(c), .d(d), .y(y));
  initial begin
    a = 8'h11; b = 8'h22; c = 8'h33; d = 8'h44;
    sel = 0; #1 $check_eq(y, 8'h11);
    sel = 1; #1 $check_eq(y, 8'h22);
    sel = 2; #1 $check_eq(y, 8'h33);
    sel = 3; #1 $check_eq(y, 8'h44);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("mux4 failed: %d/%d\n%s", res.Failures, res.Checks, res.Output)
	}
}

func TestSimParameterOverride(t *testing.T) {
	src := `
module ffd #(parameter W = 4) (input clk, input [W-1:0] d, output reg [W-1:0] q);
  always @(posedge clk) q <= d;
endmodule

module tb;
  reg clk;
  reg [7:0] d;
  wire [7:0] q;
  ffd #(.W(8)) dut(.clk(clk), .d(d), .q(q));
  initial begin
    clk = 0; d = 8'hA5;
    #1 clk = 1;
    #1 $check_eq(q, 8'hA5);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("parameter override failed:\n%s", res.Output)
	}
}

func TestSimMemory(t *testing.T) {
	src := `
module tb;
  reg [7:0] mem [0:15];
  integer i;
  initial begin
    for (i = 0; i < 16; i = i + 1)
      mem[i] = i * 3;
    for (i = 0; i < 16; i = i + 1)
      $check_eq(mem[i], i * 3);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() || res.Checks != 16 {
		t.Fatalf("memory test: checks=%d failures=%d\n%s", res.Checks, res.Failures, res.Output)
	}
}

func TestSimDisplayFormats(t *testing.T) {
	src := `
module tb;
  reg [7:0] v;
  initial begin
    v = 8'hA5;
    $display("dec=%d hex=%h bin=%b", v, v, v);
    $display("time=%t", $time);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !strings.Contains(res.Output, "dec=165 hex=a5 bin=10100101") {
		t.Errorf("display output = %q", res.Output)
	}
}

func TestSimXPropagation(t *testing.T) {
	// Uninitialized reg reads as X; adding to it stays X.
	src := `
module tb;
  reg [3:0] a;
  reg [3:0] b;
  initial begin
    b = a + 1;
    if (b === 4'bxxxx) $display("XPROP OK");
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !strings.Contains(res.Output, "XPROP OK") {
		t.Errorf("x-propagation broken:\n%s", res.Output)
	}
}

func TestSimProceduralAssignToWireFails(t *testing.T) {
	src := `
module tb;
  wire w;
  initial begin
    w = 1;
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if res.RuntimeErr == nil || !strings.Contains(res.RuntimeErr.Error(), "wire") {
		t.Errorf("expected wire-assignment diagnostic, got %v", res.RuntimeErr)
	}
}

func TestSimCombinationalLoopDetected(t *testing.T) {
	// An inverting loop with all-X values legitimately settles at X; the
	// oscillation only starts once a known value enters the ring.
	src := `
module tb;
  reg en;
  wire a;
  assign a = en ? ~a : 1'b0;
  initial begin
    en = 0;
    #1 en = 1;
    #10 $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{MaxDeltas: 100})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if res.RuntimeErr == nil || !strings.Contains(res.RuntimeErr.Error(), "loop") {
		t.Errorf("expected combinational-loop diagnostic, got %v", res.RuntimeErr)
	}
}

func TestSimMissingFinishTimesOut(t *testing.T) {
	src := `
module tb;
  reg clk;
  always #5 clk = ~clk;
  initial clk = 0;
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{MaxTime: 1000})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.TimedOut {
		t.Errorf("expected timeout, got %+v", res)
	}
}

func TestSimHierarchyTwoLevels(t *testing.T) {
	src := `
module half_adder(input a, b, output s, c);
  assign s = a ^ b;
  assign c = a & b;
endmodule

module full_adder(input a, b, cin, output s, cout);
  wire s1, c1, c2;
  half_adder ha1(.a(a), .b(b), .s(s1), .c(c1));
  half_adder ha2(.a(s1), .b(cin), .s(s), .c(c2));
  assign cout = c1 | c2;
endmodule

module tb;
  reg a, b, cin;
  wire s, cout;
  full_adder dut(.a(a), .b(b), .cin(cin), .s(s), .cout(cout));
  integer i;
  initial begin
    for (i = 0; i < 8; i = i + 1) begin
      {a, b, cin} = i;
      #1 $check_eq({cout, s}, a + b + cin);
    end
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() || res.Checks != 8 {
		t.Fatalf("hierarchy: checks=%d failures=%d\n%s", res.Checks, res.Failures, res.Output)
	}
}

func TestSimFSMSequenceDetector(t *testing.T) {
	// Detect "101" on a serial input, Moore-style.
	src := `
module det101(input clk, rst, din, output reg found);
  reg [1:0] st;
  localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2;
  always @(posedge clk) begin
    if (rst) begin st <= S0; found <= 0; end
    else begin
      found <= 0;
      case (st)
        S0: st <= din ? S1 : S0;
        S1: st <= din ? S1 : S2;
        S2: begin
          if (din) begin found <= 1; st <= S1; end
          else st <= S0;
        end
        default: st <= S0;
      endcase
    end
  end
endmodule

module tb;
  reg clk, rst, din;
  wire found;
  det101 dut(.clk(clk), .rst(rst), .din(din), .found(found));
  reg [7:0] pattern;
  integer i, hits;
  always #5 clk = ~clk;
  initial begin
    clk = 0; rst = 1; din = 0; hits = 0;
    pattern = 8'b10110101;
    @(negedge clk) rst = 0;
    for (i = 8; i > 0; i = i - 1) begin
      din = pattern[i-1];
      @(negedge clk);
      if (found) hits = hits + 1;
    end
    @(negedge clk);
    if (found) hits = hits + 1;
    $check_eq(hits, 3);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("fsm: checks=%d failures=%d\n%s", res.Checks, res.Failures, res.Output)
	}
}

func TestSimForLoopIntegerNegative(t *testing.T) {
	// "i >= 0" with integer decrement relies on unsigned wraparound
	// comparison; the loop above uses i = i - 1 down to 0. Specifically
	// check that a countdown terminates (i becomes 2^32-1 and fails < 8).
	src := `
module tb;
  integer i;
  integer n;
  initial begin
    n = 0;
    for (i = 7; i >= 0 && i < 8; i = i - 1)
      n = n + 1;
    $check_eq(n, 8);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("countdown loop: %s", res.Output)
	}
}

func TestElaborateErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		top  string
	}{
		{"missing top", "module m(); endmodule", "nope"},
		{"unknown module", "module m(); foo f(.x(1)); endmodule", "m"},
		{"bad port", `
module a(input x); endmodule
module m(); wire w; a i(.y(w)); endmodule`, "m"},
		{"width too large", "module m(input [99:0] a); endmodule", "m"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := Elaborate(f, c.top); err == nil {
				t.Errorf("Elaborate succeeded, want error")
			}
		})
	}
}

func TestRunTestbenchSeparateSources(t *testing.T) {
	dut := `
module inv(input a, output y);
  assign y = ~a;
endmodule`
	tb := `
module tb;
  reg a;
  wire y;
  inv dut(.a(a), .y(y));
  initial begin
    a = 0; #1 $check_eq(y, 1);
    a = 1; #1 $check_eq(y, 0);
    $finish;
  end
endmodule`
	res, err := RunTestbench(dut, tb, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("RunTestbench: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("inv failed:\n%s", res.Output)
	}
}

func TestSimWaitStatement(t *testing.T) {
	src := `
module tb;
  reg flag;
  reg done;
  initial begin
    flag = 0; done = 0;
    #20 flag = 1;
  end
  initial begin
    wait (flag);
    done = 1;
    $check_eq($time >= 20, 1);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("wait: %s", res.Output)
	}
}

func TestSimShiftRegisterConcat(t *testing.T) {
	src := `
module shreg(input clk, input din, output reg [3:0] q);
  always @(posedge clk) q <= {q[2:0], din};
endmodule

module tb;
  reg clk, din;
  wire [3:0] q;
  shreg dut(.clk(clk), .din(din), .q(q));
  initial begin
    clk = 0; din = 1;
    #1 clk = 1; #1 clk = 0;
    din = 0;
    #1 clk = 1; #1 clk = 0;
    din = 1;
    #1 clk = 1; #1 clk = 0;
    $check_eq(q[2:0], 3'b101);
    $finish;
  end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("shift register: %s", res.Output)
	}
}

func TestFormatSignals(t *testing.T) {
	src := `
module tb;
  reg [3:0] a;
  initial begin a = 5; #1 $finish; end
endmodule`
	res, err := CompileAndRun(src, "tb", SimOptions{})
	if err != nil {
		t.Fatalf("CompileAndRun: %v", err)
	}
	out := FormatSignals(res, "tb.")
	if !strings.Contains(out, "tb.a=4'b0101") {
		t.Errorf("FormatSignals = %q", out)
	}
}
