package verilog

import "sync"

// Elaboration-time name binding: after flattening, every process body and
// continuous assignment is rewritten into a bound copy whose identifier
// nodes carry their resolved SignalID (or inlined parameter value), and
// whose scopedExpr wrappers are dissolved. The simulator then never
// touches a scope map on the hot path — the seed kernel paid a string-map
// lookup per identifier per evaluation, every iteration of every
// testbench loop. Names that do not resolve are left as plain Idents so
// the runtime diagnostic (and its timing) is unchanged: binding is a pure
// optimization, never a semantic filter.
//
// Bound trees are per-instance copies; the parser's shared AST stays
// untouched, so designs remain safe for concurrent simulation. Copies are
// slab-allocated (see alloc) — one designs's bound nodes live in a
// handful of arrays instead of thousands of individual heap objects,
// which keeps cache-cold batch compiles off the allocator's hot path.

// boundRef is an identifier resolved to a flattened signal.
type boundRef struct {
	sig  SignalID
	name string
	line int
}

// boundParam is an identifier resolved to an elaboration-time constant.
type boundParam struct {
	name string
	val  Value
	line int
}

func (*boundRef) expr()   {}
func (*boundParam) expr() {}

// boundCache memoizes the scope-bound copies of one parsed process body.
// A parsed module is elaborated under many designs (every candidate pairs
// with the same testbench), and a body's bound form depends only on the
// scope contents — for a testbench those are identical across candidates,
// so all of them share one bound tree instead of re-binding (and the GC
// re-scanning) a copy each.
type boundCache struct {
	mu       sync.Mutex
	variants []boundVariant
}

// boundVariant is one (scope contents -> bound body) memo entry. The
// lowered Program rides along: it depends only on the bound body, the
// scope, and signal metadata the scope pins (see programCached), so all
// designs that share the bound body share its bytecode too.
type boundVariant struct {
	sc   scope
	body Stmt
	prog *Program
}

// maxBoundVariants bounds per-node memo growth; bodies elaborated under
// more distinct scopes than this fall back to fresh binds.
const maxBoundVariants = 8

// scopeEqual reports whether two scopes resolve every name identically.
func scopeEqual(a, b scope) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av != bv {
			return false
		}
	}
	return true
}

// bindCached returns the memoized bound copy of body under sc, binding
// and recording it on first use. Safe for concurrent elaboration.
func bindCached(c *boundCache, body Stmt, sc scope, bd *binder) Stmt {
	if c == nil {
		return bd.stmt(body, sc)
	}
	c.mu.Lock()
	for _, v := range c.variants {
		if scopeEqual(v.sc, sc) {
			c.mu.Unlock()
			return v.body
		}
	}
	c.mu.Unlock()
	bound := bd.stmt(body, sc) // bind outside the lock
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.variants {
		if scopeEqual(v.sc, sc) {
			return v.body // a concurrent binder won; keep one canonical copy
		}
	}
	if len(c.variants) < maxBoundVariants {
		c.variants = append(c.variants, boundVariant{sc: sc, body: bound})
	}
	return bound
}

// programCached returns the memoized lowered Program of pr's bound body,
// lowering and recording it on first use. The memo is sound across
// designs: a variant hit means the scope maps every name to the same
// SignalID, which (signals being declared in a fixed order from one
// shared parse) pins the width/words/reg-ness of every signal the
// program can mention — so the bytecode, which bakes those in, is
// identical no matter which design lowered it first. Safe for concurrent
// elaboration.
func programCached(c *boundCache, pr *process, d *Design) *Program {
	lower := func() *Program {
		return lowerProcess(pr.body, pr.scope, d, pr.kind, pr.star, len(pr.sens) > 0)
	}
	if c == nil {
		return lower()
	}
	c.mu.Lock()
	for i := range c.variants {
		v := &c.variants[i]
		if v.body == pr.body && v.prog != nil {
			c.mu.Unlock()
			return v.prog
		}
	}
	c.mu.Unlock()
	prog := lower() // lower outside the lock
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.variants {
		v := &c.variants[i]
		if v.body == pr.body {
			if v.prog == nil {
				v.prog = prog
			}
			return v.prog // keep one canonical program per variant
		}
	}
	return prog // body came from an overflowed cache: use the fresh program
}

// alloc appends v to a slab and returns its address. A full slab is
// retired in place (the nodes already handed out keep referencing it) and
// a larger fresh slab takes over — no copying, ~log(n) allocations total.
func alloc[T any](slabp *[]T, v T) *T {
	s := *slabp
	if len(s) == cap(s) {
		n := 2 * cap(s)
		if n < 32 {
			n = 32
		}
		s = make([]T, 0, n)
	}
	s = append(s, v)
	*slabp = s
	return &s[len(s)-1]
}

// binder carries the slabs for one design's bound trees.
type binder struct {
	refs    []boundRef
	params  []boundParam
	unary   []Unary
	binary  []Binary
	ternary []Ternary
	concat  []Concat
	repeatE []Repeat
	index   []Index
	parts   []PartSelect
	sysfns  []SysFunc
	exprs   []Expr // flattened Parts/Args/Exprs backing
	stmts   []Stmt // flattened Block.Stmts backing
	assign  []Assign
	ifs     []IfStmt
	cases   []CaseStmt
	items   []CaseItem
	fors    []ForStmt
	whiles  []WhileStmt
	repeatS []RepeatStmt
	forever []ForeverStmt
	delays  []DelayStmt
	events  []EventStmt
	waits   []WaitStmt
	calls   []SysCall
	blocks  []Block
}

// reserve claims k contiguous slots in a slab and returns the slab plus
// the span's start index. The span is reserved before any recursive
// binding fills it, so nested lists claim disjoint regions.
func reserve[T any](slabp *[]T, k int) ([]T, int) {
	s := *slabp
	if cap(s)-len(s) < k {
		c := 2 * cap(s)
		if c < 64 {
			c = 64
		}
		for c < k {
			c *= 2
		}
		s = make([]T, 0, c)
	}
	start := len(s)
	s = s[: start+k : cap(s)]
	*slabp = s
	return s, start
}

// exprList binds a slice of expressions into the shared expr slab.
func (b *binder) exprList(list []Expr, sc scope) []Expr {
	if len(list) == 0 {
		return nil
	}
	slab, start := reserve(&b.exprs, len(list))
	for i, e := range list {
		slab[start+i] = b.expr(e, sc)
	}
	return slab[start : start+len(list) : start+len(list)]
}

// expr returns a bound copy of ex with identifiers resolved against sc.
func (b *binder) expr(ex Expr, sc scope) Expr {
	switch n := ex.(type) {
	case nil:
		return nil
	case *Ident:
		if ent, ok := sc[n.Name]; ok {
			if ent.isParam {
				return alloc(&b.params, boundParam{name: n.Name, val: ent.param, line: n.Line})
			}
			return alloc(&b.refs, boundRef{sig: ent.sig, name: n.Name, line: n.Line})
		}
		return n // unresolved: keep the runtime "unknown identifier" path
	case scopedExpr:
		return b.expr(n.Expr, n.Scope)
	case *Number, *StringLit:
		return n
	case *Unary:
		return alloc(&b.unary, Unary{Op: n.Op, X: b.expr(n.X, sc)})
	case *Binary:
		return alloc(&b.binary, Binary{Op: n.Op, X: b.expr(n.X, sc), Y: b.expr(n.Y, sc)})
	case *Ternary:
		return alloc(&b.ternary, Ternary{Cond: b.expr(n.Cond, sc), Then: b.expr(n.Then, sc), Else: b.expr(n.Else, sc)})
	case *Concat:
		return alloc(&b.concat, Concat{Parts: b.exprList(n.Parts, sc)})
	case *Repeat:
		return alloc(&b.repeatE, Repeat{Count: b.expr(n.Count, sc), X: b.expr(n.X, sc)})
	case *Index:
		return alloc(&b.index, Index{X: b.expr(n.X, sc), Idx: b.expr(n.Idx, sc), Line: n.Line})
	case *PartSelect:
		return alloc(&b.parts, PartSelect{X: b.expr(n.X, sc), MSB: b.expr(n.MSB, sc), LSB: b.expr(n.LSB, sc), Line: n.Line})
	case *SysFunc:
		return alloc(&b.sysfns, SysFunc{Name: n.Name, Args: b.exprList(n.Args, sc), Line: n.Line})
	default:
		return ex
	}
}

// assign binds the halves of an assignment (also used for for-loop
// init/step clauses, which the parser types as *Assign).
func (b *binder) assignStmt(a *Assign, sc scope) *Assign {
	if a == nil {
		return nil
	}
	return alloc(&b.assign, Assign{LHS: b.expr(a.LHS, sc), RHS: b.expr(a.RHS, sc), NonBlocking: a.NonBlocking, Line: a.Line})
}

// stmt returns a bound copy of st with every embedded expression bound.
// Sensitivity lists stay name-based: they resolve when a wait is armed,
// preserving the seed kernel's runtime diagnostics for bad lists.
func (b *binder) stmt(st Stmt, sc scope) Stmt {
	switch n := st.(type) {
	case nil:
		return nil
	case *NullStmt:
		return n
	case *Block:
		slab, start := reserve(&b.stmts, len(n.Stmts))
		for i, s := range n.Stmts {
			slab[start+i] = b.stmt(s, sc)
		}
		return alloc(&b.blocks, Block{Stmts: slab[start : start+len(n.Stmts) : start+len(n.Stmts)]})
	case *Assign:
		return b.assignStmt(n, sc)
	case *IfStmt:
		return alloc(&b.ifs, IfStmt{Cond: b.expr(n.Cond, sc), Then: b.stmt(n.Then, sc), Else: b.stmt(n.Else, sc), Line: n.Line})
	case *CaseStmt:
		islab, start := reserve(&b.items, len(n.Items))
		for i, it := range n.Items {
			islab[start+i] = CaseItem{Exprs: b.exprList(it.Exprs, sc), Body: b.stmt(it.Body, sc), IsDefault: it.IsDefault}
		}
		items := islab[start : start+len(n.Items) : start+len(n.Items)]
		return alloc(&b.cases, CaseStmt{Subject: b.expr(n.Subject, sc), Items: items, IsCasez: n.IsCasez, Line: n.Line})
	case *ForStmt:
		return alloc(&b.fors, ForStmt{
			Init: b.assignStmt(n.Init, sc),
			Cond: b.expr(n.Cond, sc),
			Step: b.assignStmt(n.Step, sc),
			Body: b.stmt(n.Body, sc),
			Line: n.Line,
		})
	case *WhileStmt:
		return alloc(&b.whiles, WhileStmt{Cond: b.expr(n.Cond, sc), Body: b.stmt(n.Body, sc), Line: n.Line})
	case *RepeatStmt:
		return alloc(&b.repeatS, RepeatStmt{Count: b.expr(n.Count, sc), Body: b.stmt(n.Body, sc), Line: n.Line})
	case *ForeverStmt:
		return alloc(&b.forever, ForeverStmt{Body: b.stmt(n.Body, sc), Line: n.Line})
	case *DelayStmt:
		return alloc(&b.delays, DelayStmt{Amount: b.expr(n.Amount, sc), Body: b.stmt(n.Body, sc), Line: n.Line})
	case *EventStmt:
		return alloc(&b.events, EventStmt{Sens: n.Sens, Star: n.Star, Body: b.stmt(n.Body, sc), Line: n.Line})
	case *WaitStmt:
		return alloc(&b.waits, WaitStmt{Cond: b.expr(n.Cond, sc), Line: n.Line})
	case *SysCall:
		return alloc(&b.calls, SysCall{Name: n.Name, Args: b.exprList(n.Args, sc), Str: n.Str, Line: n.Line})
	default:
		return st
	}
}
