package verilog

import (
	"fmt"
	"strings"
)

// ParseError is a positioned syntax error; the AutoChip-style loops feed
// its message back to the (simulated) LLM as compiler feedback. It
// carries the same Pos type as ElabError and vlint.Diagnostic, so compile
// errors and lint findings format identically in reports and prompts.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("syntax error at %s: %s", e.Pos, e.Msg)
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int

	// Node arena: the hottest AST node kinds are slab-allocated (same
	// alloc helper the binder uses), so parsing a multi-thousand-vector
	// unrolled testbench performs dozens of slab allocations instead of
	// one heap object per node. Nodes stay alive exactly as long as the
	// parsed file, so grouping their lifetimes is free.
	idents  []Ident
	numbers []Number
	strs    []StringLit
	assigns []Assign
	calls   []SysCall
	binarys []Binary
	unarys  []Unary
	indexes []Index
	blocks  []Block
	ifs     []IfStmt
	delays  []DelayStmt
	events  []EventStmt

	argScratch []Expr // reused per system-call argument list
	exprSlab   []Expr // exact-size backing spans for those lists
}

// Parse parses Verilog source into a SourceFile.
func Parse(src string) (*SourceFile, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	// The AST references token *text* (substrings of src), never the token
	// structs, so the slice itself is garbage the moment parsing ends —
	// recycle it instead of re-growing one per candidate score.
	defer putTokenSlice(toks)
	p := &parser{toks: toks}
	f := &SourceFile{}
	for !p.atEOF() {
		if !p.atKeyword("module") {
			return nil, p.errorf("expected 'module', got %q", p.cur().text)
		}
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		f.Modules = append(f.Modules, m)
	}
	if len(f.Modules) == 0 {
		return nil, &ParseError{Pos{Line: 1, Col: 1}, "no modules in source"}
	}
	return f, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) peekTok(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atOp(op string) bool {
	t := &p.toks[p.pos]
	return t.kind == tokOp && t.text == op
}

func (p *parser) atKeyword(kw string) bool {
	t := &p.toks[p.pos]
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptOp(op string) bool {
	if p.atOp(op) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, got %q", op, p.cur().text)
	}
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %q, got %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Pos: Pos{Line: t.line, Col: t.col}, Msg: fmt.Sprintf(format, args...)}
}

// parseModule parses one module ... endmodule.
func (p *parser) parseModule() (*Module, error) {
	line := p.cur().line
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name, Line: line}

	// Optional #(parameter ...) header.
	if p.atOp("#") {
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		for {
			p.acceptKeyword("parameter")
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			def, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &Param{Name: pname, Default: def})
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}

	// Port list: ANSI or plain names.
	if p.acceptOp("(") {
		if !p.atOp(")") {
			if err := p.parsePortList(m); err != nil {
				return nil, err
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}

	for !p.atKeyword("endmodule") {
		if p.atEOF() {
			return nil, p.errorf("unexpected end of source inside module %q", m.Name)
		}
		if err := p.parseModuleItem(m); err != nil {
			return nil, err
		}
	}
	p.advance() // endmodule
	return m, nil
}

// parsePortList handles both ANSI-style typed ports and bare name lists.
func (p *parser) parsePortList(m *Module) error {
	// Carry direction/width/reg across comma-separated groups.
	var (
		dir   PortDir
		width Expr
		isReg bool
		typed bool
	)
	for {
		if p.atKeyword("input") || p.atKeyword("output") || p.atKeyword("inout") {
			switch p.advance().text {
			case "input":
				dir = DirInput
			case "output":
				dir = DirOutput
			default:
				dir = DirInout
			}
			typed = true
			isReg = p.acceptKeyword("reg")
			p.acceptKeyword("wire")
			p.acceptKeyword("signed")
			width = nil
			if p.atOp("[") {
				var err error
				width, err = p.parseRangeMSB()
				if err != nil {
					return err
				}
			}
		}
		line := p.cur().line
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if typed {
			m.Ports = append(m.Ports, &Port{Name: name, Dir: dir, Width: width, IsReg: isReg, Line: line})
		} else {
			// Non-ANSI: record name now, direction comes from body decls.
			m.Ports = append(m.Ports, &Port{Name: name, Line: line})
		}
		if !p.acceptOp(",") {
			return nil
		}
	}
}

// parseRangeMSB parses "[msb:lsb]" and returns the MSB expression; the
// subset requires lsb == 0 which is checked at elaboration.
func (p *parser) parseRangeMSB() (Expr, error) {
	if err := p.expectOp("["); err != nil {
		return nil, err
	}
	msb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(":"); err != nil {
		return nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if n, ok := lsb.(*Number); !ok || n.Val.Uint() != 0 {
		return nil, p.errorf("subset requires [msb:0] declarations")
	}
	if err := p.expectOp("]"); err != nil {
		return nil, err
	}
	return msb, nil
}

// parseModuleItem parses one item inside a module body.
func (p *parser) parseModuleItem(m *Module) error {
	t := p.cur()
	switch {
	case p.atKeyword("parameter") || p.atKeyword("localparam"):
		isLocal := t.text == "localparam"
		p.advance()
		for {
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectOp("="); err != nil {
				return err
			}
			def, err := p.parseExpr()
			if err != nil {
				return err
			}
			m.Params = append(m.Params, &Param{Name: name, Default: def, IsLocal: isLocal})
			if !p.acceptOp(",") {
				break
			}
		}
		return p.expectOp(";")

	case p.atKeyword("input") || p.atKeyword("output") || p.atKeyword("inout"):
		// Non-ANSI port direction declaration in body.
		var dir PortDir
		switch p.advance().text {
		case "input":
			dir = DirInput
		case "output":
			dir = DirOutput
		default:
			dir = DirInout
		}
		isReg := p.acceptKeyword("reg")
		p.acceptKeyword("wire")
		p.acceptKeyword("signed")
		var width Expr
		if p.atOp("[") {
			var err error
			width, err = p.parseRangeMSB()
			if err != nil {
				return err
			}
		}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			found := false
			for _, port := range m.Ports {
				if port.Name == name {
					port.Dir = dir
					port.Width = width
					port.IsReg = isReg
					found = true
					break
				}
			}
			if !found {
				return p.errorf("direction declared for %q which is not in the port list", name)
			}
			if !p.acceptOp(",") {
				break
			}
		}
		return p.expectOp(";")

	case p.atKeyword("wire") || p.atKeyword("reg") || p.atKeyword("integer"):
		kw := p.advance().text
		isReg := kw != "wire"
		p.acceptKeyword("signed")
		var width Expr
		if kw == "integer" {
			width = alloc(&p.numbers, Number{Val: NewValue(31, 32)})
		} else if p.atOp("[") {
			var err error
			width, err = p.parseRangeMSB()
			if err != nil {
				return err
			}
		}
		for {
			line := p.cur().line
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			decl := &NetDecl{Name: name, IsReg: isReg, Width: width, Line: line}
			if p.atOp("[") { // memory: reg [7:0] mem [0:255];
				p.advance()
				lo, err := p.parseExpr()
				if err != nil {
					return err
				}
				if err := p.expectOp(":"); err != nil {
					return err
				}
				hi, err := p.parseExpr()
				if err != nil {
					return err
				}
				if err := p.expectOp("]"); err != nil {
					return err
				}
				if n, ok := lo.(*Number); ok && n.Val.Uint() == 0 {
					decl.ArrayHi = hi
				} else {
					decl.ArrayHi = lo // [hi:0] form
				}
			}
			if p.acceptOp("=") {
				init, err := p.parseExpr()
				if err != nil {
					return err
				}
				decl.Init = init
			}
			m.Items = append(m.Items, decl)
			if !p.acceptOp(",") {
				break
			}
		}
		return p.expectOp(";")

	case p.atKeyword("assign"):
		p.advance()
		for {
			line := p.cur().line
			lhs, err := p.parseExpr()
			if err != nil {
				return err
			}
			if err := p.expectOp("="); err != nil {
				return err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return err
			}
			m.Items = append(m.Items, &ContAssign{LHS: lhs, RHS: rhs, Line: line})
			if !p.acceptOp(",") {
				break
			}
		}
		return p.expectOp(";")

	case p.atKeyword("always"):
		line := t.line
		p.advance()
		blk := &AlwaysBlock{Line: line}
		if p.atOp("@") {
			p.advance()
			sens, star, err := p.parseSensList()
			if err != nil {
				return err
			}
			blk.Sens, blk.Star = sens, star
		}
		body, err := p.parseStmt()
		if err != nil {
			return err
		}
		blk.Body = body
		m.Items = append(m.Items, blk)
		return nil

	case p.atKeyword("initial"):
		line := t.line
		p.advance()
		body, err := p.parseStmt()
		if err != nil {
			return err
		}
		m.Items = append(m.Items, &InitialBlock{Body: body, Line: line})
		return nil

	case t.kind == tokIdent:
		return p.parseInstance(m)

	default:
		return p.errorf("unexpected token %q in module body", t.text)
	}
}

// parseSensList parses "(posedge a or negedge b)" / "(*)" / "*" / "(a or b)"
// or a bare single item "@(posedge clk)" style after '@' was consumed.
func (p *parser) parseSensList() ([]SensItem, bool, error) {
	if p.acceptOp("*") {
		return nil, true, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, false, err
	}
	if p.acceptOp("*") {
		if err := p.expectOp(")"); err != nil {
			return nil, false, err
		}
		return nil, true, nil
	}
	var items []SensItem
	for {
		edge := EdgeAny
		if p.acceptKeyword("posedge") {
			edge = EdgePos
		} else if p.acceptKeyword("negedge") {
			edge = EdgeNeg
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, false, err
		}
		items = append(items, SensItem{Edge: edge, Signal: name})
		if p.acceptKeyword("or") || p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, false, err
	}
	return items, false, nil
}

// parseInstance parses "modname [#(params)] instname (conns);".
func (p *parser) parseInstance(m *Module) error {
	line := p.cur().line
	modName, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst := &Instance{ModuleName: modName, Line: line, ParamNamed: map[string]Expr{}, Conns: map[string]Expr{}}
	if p.acceptOp("#") {
		if err := p.expectOp("("); err != nil {
			return err
		}
		for !p.atOp(")") {
			if p.acceptOp(".") {
				pname, err := p.expectIdent()
				if err != nil {
					return err
				}
				if err := p.expectOp("("); err != nil {
					return err
				}
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				if err := p.expectOp(")"); err != nil {
					return err
				}
				inst.ParamNamed[pname] = e
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				inst.ParamOrder = append(inst.ParamOrder, e)
			}
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return err
		}
	}
	instName, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst.Name = instName
	if err := p.expectOp("("); err != nil {
		return err
	}
	for !p.atOp(")") {
		if p.acceptOp(".") {
			pname, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectOp("("); err != nil {
				return err
			}
			var e Expr
			if !p.atOp(")") {
				e, err = p.parseExpr()
				if err != nil {
					return err
				}
			}
			if err := p.expectOp(")"); err != nil {
				return err
			}
			inst.Conns[pname] = e
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			inst.ConnOrder = append(inst.ConnOrder, e)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return err
	}
	if err := p.expectOp(";"); err != nil {
		return err
	}
	m.Items = append(m.Items, inst)
	return nil
}

// --- statements --------------------------------------------------------

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atKeyword("begin"):
		p.advance()
		// Optional block label: begin : name
		if p.acceptOp(":") {
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
		}
		blk := alloc(&p.blocks, Block{})
		for !p.atKeyword("end") {
			if p.atEOF() {
				return nil, p.errorf("unterminated begin/end block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			blk.Stmts = append(blk.Stmts, s)
		}
		p.advance()
		return blk, nil

	case p.atKeyword("if"):
		line := t.line
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := alloc(&p.ifs, IfStmt{Cond: cond, Then: then, Line: line})
		if p.acceptKeyword("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.atKeyword("case") || p.atKeyword("casez"):
		return p.parseCase()

	case p.atKeyword("for"):
		line := t.line
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		ini, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(";"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(";"); err != nil {
			return nil, err
		}
		step, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: ini, Cond: cond, Step: step, Body: body, Line: line}, nil

	case p.atKeyword("while"):
		line := t.line
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil

	case p.atKeyword("repeat"):
		line := t.line
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &RepeatStmt{Count: n, Body: body, Line: line}, nil

	case p.atKeyword("forever"):
		line := t.line
		p.advance()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForeverStmt{Body: body, Line: line}, nil

	case p.atKeyword("wait"):
		line := t.line
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.acceptOp(";")
		return &WaitStmt{Cond: cond, Line: line}, nil

	case p.atOp("#"):
		line := t.line
		p.advance()
		amt, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if p.acceptOp(";") {
			return alloc(&p.delays, DelayStmt{Amount: amt, Line: line}), nil
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return alloc(&p.delays, DelayStmt{Amount: amt, Body: body, Line: line}), nil

	case p.atOp("@"):
		line := t.line
		p.advance()
		sens, star, err := p.parseSensList()
		if err != nil {
			return nil, err
		}
		if p.acceptOp(";") {
			return alloc(&p.events, EventStmt{Sens: sens, Star: star, Line: line}), nil
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return alloc(&p.events, EventStmt{Sens: sens, Star: star, Body: body, Line: line}), nil

	case t.kind == tokSysID:
		return p.parseSysCall()

	case p.atOp(";"):
		p.advance()
		return &NullStmt{}, nil

	default:
		// assignment statement
		asn, err := p.parseSimpleAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(";"); err != nil {
			return nil, err
		}
		return asn, nil
	}
}

// parseSimpleAssign parses "lvalue = expr" or "lvalue <= expr" (no
// semicolon). The LHS is parsed as a postfix expression, not a full
// expression: that is what makes "q <= q + 1" an assignment rather than a
// less-equal comparison.
func (p *parser) parseSimpleAssign() (*Assign, error) {
	line := p.cur().line
	lhs, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptOp("="):
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return alloc(&p.assigns, Assign{LHS: lhs, RHS: rhs, Line: line}), nil
	case p.acceptOp("<="):
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return alloc(&p.assigns, Assign{LHS: lhs, RHS: rhs, NonBlocking: true, Line: line}), nil
	default:
		return nil, p.errorf("expected '=' or '<=' in assignment, got %q", p.cur().text)
	}
}

func (p *parser) parseCase() (Stmt, error) {
	line := p.cur().line
	isZ := p.cur().text == "casez"
	p.advance()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	st := &CaseStmt{Subject: subj, IsCasez: isZ, Line: line}
	for !p.atKeyword("endcase") {
		if p.atEOF() {
			return nil, p.errorf("unterminated case statement")
		}
		var item CaseItem
		if p.acceptKeyword("default") {
			item.IsDefault = true
			p.acceptOp(":")
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Exprs = append(item.Exprs, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		item.Body = body
		st.Items = append(st.Items, item)
	}
	p.advance()
	return st, nil
}

func (p *parser) parseSysCall() (Stmt, error) {
	t := p.advance()
	sc := alloc(&p.calls, SysCall{Name: t.text, Line: t.line})
	if p.acceptOp("(") {
		// Collect into a reused scratch, then claim an exact-size span of
		// the shared expr slab: testbenches carry thousands of $display/
		// $check_eq calls, and per-call argument-slice growth was a
		// measurable share of parse allocations.
		args := p.argScratch[:0]
		for !p.atOp(")") {
			if p.cur().kind == tokString {
				s := p.advance()
				if sc.Str == "" {
					sc.Str = s.text
				}
				args = append(args, alloc(&p.strs, StringLit{Text: s.text, Line: s.line}))
			} else {
				e, err := p.parseExpr()
				if err != nil {
					p.argScratch = args[:0]
					return nil, err
				}
				args = append(args, e)
			}
			if !p.acceptOp(",") {
				break
			}
		}
		if len(args) > 0 {
			slab, start := reserve(&p.exprSlab, len(args))
			copy(slab[start:start+len(args)], args)
			sc.Args = slab[start : start+len(args) : start+len(args)]
		}
		p.argScratch = args[:0]
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	return sc, nil
}

// --- expressions -------------------------------------------------------

// binary precedence levels, lowest first. "?:" handled above this table.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|", "~|"},
	{"^", "~^", "^~"},
	{"&", "~&"},
	{"==", "!=", "===", "!=="},
	{"<", "<=", ">", ">="},
	{"<<", ">>", "<<<", ">>>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseExpr() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.acceptOp("?") {
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(":"); err != nil {
			return nil, err
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Ternary{Cond: cond, Then: then, Else: els}, nil
	}
	return cond, nil
}

// opPrecLevel maps each binary operator to its precedence level, so the
// descent does one map probe per level instead of comparing the token
// against every operator string of the level.
var opPrecLevel = func() map[string]int {
	m := make(map[string]int)
	for lvl, ops := range precLevels {
		for _, op := range ops {
			m[op] = lvl
		}
	}
	return m
}()

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := &p.toks[p.pos]
		if t.kind != tokOp {
			return lhs, nil
		}
		lvl, ok := opPrecLevel[t.text]
		if !ok || lvl != level {
			return lhs, nil
		}
		matched := t.text
		p.advance()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = alloc(&p.binarys, Binary{Op: matched, X: lhs, Y: rhs})
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.toks[p.pos].kind != tokOp {
		return p.parsePostfix() // idents/numbers skip the operator scan
	}
	for _, op := range []string{"~&", "~|", "~^", "^~", "!", "~", "-", "+", "&", "|", "^"} {
		if p.atOp(op) {
			p.advance()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if op == "+" {
				return x, nil
			}
			return alloc(&p.unarys, Unary{Op: op, X: x}), nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atOp("[") {
		line := p.cur().line
		p.advance()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.acceptOp(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("]"); err != nil {
				return nil, err
			}
			e = &PartSelect{X: e, MSB: first, LSB: lsb, Line: line}
			continue
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		e = alloc(&p.indexes, Index{X: e, Idx: first, Line: line})
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		v, err := parseNumberLiteral(t.text)
		if err != nil {
			return nil, &ParseError{Pos{Line: t.line, Col: t.col}, err.Error()}
		}
		return alloc(&p.numbers, Number{Val: v, Line: t.line}), nil

	case t.kind == tokIdent:
		p.advance()
		return alloc(&p.idents, Ident{Name: t.text, Line: t.line}), nil

	case t.kind == tokString:
		p.advance()
		return alloc(&p.strs, StringLit{Text: t.text, Line: t.line}), nil

	case t.kind == tokSysID:
		p.advance()
		sf := &SysFunc{Name: t.text, Line: t.line}
		if p.acceptOp("(") {
			for !p.atOp(")") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				sf.Args = append(sf.Args, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		return sf, nil

	case p.atOp("("):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil

	case p.atOp("{"):
		p.advance()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.atOp("{") {
			// replication {n{expr}}
			p.advance()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("}"); err != nil {
				return nil, err
			}
			if err := p.expectOp("}"); err != nil {
				return nil, err
			}
			return &Repeat{Count: first, X: inner}, nil
		}
		cc := &Concat{Parts: []Expr{first}}
		for p.acceptOp(",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cc.Parts = append(cc.Parts, e)
		}
		if err := p.expectOp("}"); err != nil {
			return nil, err
		}
		return cc, nil

	default:
		return nil, p.errorf("unexpected token %q in expression", t.text)
	}
}

// MustParse parses src and panics on error; for tests and embedded fixtures.
func MustParse(src string) *SourceFile {
	f, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("verilog.MustParse: %v\nsource:\n%s", err, firstLines(src, 10)))
	}
	return f
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
