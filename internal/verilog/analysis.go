package verilog

// Read-only introspection over an elaborated Design for static analysis
// (internal/vlint). The views expose the flattened continuous
// assignments, the behavioral processes, and the bound identifier leaves
// of their trees — the same structures the simulator executes — without
// giving callers a way to mutate the immutable compiled design. Lint
// therefore reasons about exactly the design the simulator would run,
// after parameter resolution, hierarchy flattening and name binding.

// DesignAssign is the read-only view of one flattened continuous
// assignment (an `assign`, a wire initializer, or a synthesized port
// connection). LHS/RHS are bound trees: identifier leaves are opaque
// bound nodes, decoded with BoundRef / BoundConst.
type DesignAssign struct {
	LHS, RHS Expr
	Line     int
}

// NumAssigns returns the number of flattened continuous assignments.
func (d *Design) NumAssigns() int { return len(d.assigns) }

// AssignAt returns the i-th flattened continuous assignment.
func (d *Design) AssignAt(i int) DesignAssign {
	ca := d.assigns[i]
	return DesignAssign{LHS: ca.lhs, RHS: ca.rhs, Line: ca.line}
}

// DesignProcess is the read-only view of one flattened behavioral
// process. Body is the bound tree. SensSigs resolves each sensitivity
// item's signal name in the process's instance scope (-1 when the name
// does not resolve — the simulator's runtime diagnostic then owns it).
type DesignProcess struct {
	Always   bool // always block (vs initial)
	Star     bool // @* / @(*) inferred sensitivity
	Sens     []SensItem
	SensSigs []SignalID
	Body     Stmt
	Line     int
	Name     string // hierarchical, e.g. "top.always@12"
}

// NumProcesses returns the number of flattened behavioral processes.
func (d *Design) NumProcesses() int { return len(d.procs) }

// ProcessAt returns the i-th flattened process.
func (d *Design) ProcessAt(i int) DesignProcess {
	pr := d.procs[i]
	p := DesignProcess{
		Always: pr.kind == procAlways, Star: pr.star,
		Sens: pr.sens, Body: pr.body, Line: pr.line, Name: pr.name,
	}
	if len(pr.sens) > 0 {
		p.SensSigs = make([]SignalID, len(pr.sens))
		for i, s := range pr.sens {
			p.SensSigs[i] = -1
			if ent, ok := pr.scope[s.Signal]; ok && !ent.isParam {
				p.SensSigs[i] = ent.sig
			}
		}
	}
	return p
}

// BoundRef decodes a bound identifier leaf: the flattened signal it
// resolves to and its source position. ok is false for every other node
// (including identifiers that never resolved — those stay plain *Ident
// and carry the simulator's runtime diagnostic).
func BoundRef(ex Expr) (sig SignalID, pos Pos, ok bool) {
	if r, isRef := ex.(*boundRef); isRef {
		return r.sig, Pos{Line: r.line}, true
	}
	return 0, Pos{}, false
}

// BoundConst decodes a compile-time-constant leaf: a literal or an
// identifier bound to a parameter value. ok is false otherwise.
func BoundConst(ex Expr) (Value, bool) {
	switch n := ex.(type) {
	case *Number:
		return n.Val, true
	case *boundParam:
		return n.val, true
	}
	return Value{}, false
}
