package verilog

// This file defines the abstract syntax tree produced by the parser. The
// tree is deliberately plain (no interning, no position-heavy nodes): the
// frameworks built on top re-parse candidate sources frequently and care
// about construction speed and simplicity.

// SourceFile is one parsed Verilog source: an ordered list of modules.
type SourceFile struct {
	Modules []*Module
}

// FindModule returns the module with the given name, or nil.
func (f *SourceFile) FindModule(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// PortDir is the direction of a module port.
type PortDir int

// Port directions.
const (
	DirInput PortDir = iota + 1
	DirOutput
	DirInout
)

// Port is one declared module port.
type Port struct {
	Name  string
	Dir   PortDir
	Width Expr // MSB expression of [msb:0]; nil means scalar
	IsReg bool
	Line  int
}

// Param is a module parameter or localparam with its default value.
type Param struct {
	Name    string
	Default Expr
	IsLocal bool
}

// Module is a parsed module declaration.
type Module struct {
	Name   string
	Ports  []*Port
	Params []*Param
	Items  []Item
	Line   int
}

// Item is a module-level item: declaration, assign, always, initial,
// or instance.
type Item interface{ item() }

// NetDecl declares wires or regs (one name per decl after parsing).
type NetDecl struct {
	Name    string
	IsReg   bool
	Width   Expr // MSB of [msb:0]; nil = scalar
	ArrayHi Expr // non-nil for memories: name [0:ArrayHi] or [ArrayHi:0]
	Init    Expr // optional initializer (wire x = expr)
	Line    int
}

// ContAssign is a continuous assignment: assign lhs = rhs.
type ContAssign struct {
	LHS  Expr // Ident, Index, PartSelect or Concat of those
	RHS  Expr
	Line int
}

// AlwaysBlock is an always block with its sensitivity list.
type AlwaysBlock struct {
	Sens  []SensItem // empty means always @* (inferred) or always #... loop
	Star  bool       // @* or @(*)
	Body  Stmt
	Line  int
	bound boundCache // scope-bound body variants, shared across designs
}

// InitialBlock is an initial process.
type InitialBlock struct {
	Body  Stmt
	Line  int
	bound boundCache // scope-bound body variants, shared across designs
}

// Instance is a module instantiation.
type Instance struct {
	ModuleName string
	Name       string
	ParamOrder []Expr          // positional #(...) overrides
	ParamNamed map[string]Expr // named #(.P(expr)) overrides
	Conns      map[string]Expr // named .port(expr) connections
	ConnOrder  []Expr          // positional connections (exclusive with Conns)
	Line       int
}

func (*NetDecl) item()      {}
func (*ContAssign) item()   {}
func (*AlwaysBlock) item()  {}
func (*InitialBlock) item() {}
func (*Instance) item()     {}

// EdgeKind is the edge specifier of a sensitivity item.
type EdgeKind int

// Edge kinds.
const (
	EdgeAny EdgeKind = iota + 1 // level-sensitive (no edge keyword)
	EdgePos
	EdgeNeg
)

// SensItem is one entry of a sensitivity list.
type SensItem struct {
	Edge   EdgeKind
	Signal string
}

// Stmt is a behavioral statement.
type Stmt interface{ stmt() }

// Block is a begin/end statement sequence.
type Block struct {
	Stmts []Stmt
}

// Assign is a blocking (=) or non-blocking (<=) assignment.
type Assign struct {
	LHS         Expr
	RHS         Expr
	NonBlocking bool
	Line        int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// CaseItem is one arm of a case statement.
type CaseItem struct {
	Exprs     []Expr // empty for default
	Body      Stmt
	IsDefault bool
}

// CaseStmt is case/casez (casez treats x/z label bits as wildcards).
type CaseStmt struct {
	Subject Expr
	Items   []CaseItem
	IsCasez bool
	Line    int
}

// ForStmt is the C-style for loop used in testbenches and generate-free RTL.
type ForStmt struct {
	Init *Assign
	Cond Expr
	Step *Assign
	Body Stmt
	Line int
}

// WhileStmt loops while the condition holds.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
}

// RepeatStmt executes the body N times.
type RepeatStmt struct {
	Count Expr
	Body  Stmt
	Line  int
}

// ForeverStmt loops forever (used with internal delays).
type ForeverStmt struct {
	Body Stmt
	Line int
}

// DelayStmt suspends the process for Amount time units, then runs Body
// (Body may be nil for a bare "#10;").
type DelayStmt struct {
	Amount Expr
	Body   Stmt
	Line   int
}

// EventStmt suspends the process until the sensitivity fires: @(posedge clk) body.
type EventStmt struct {
	Sens []SensItem
	Star bool
	Body Stmt // may be nil
	Line int
}

// WaitStmt suspends until the condition is true: wait (expr);
type WaitStmt struct {
	Cond Expr
	Line int
}

// SysCall is a system-task invocation statement ($display, $finish, ...).
type SysCall struct {
	Name string
	Args []Expr
	Str  string // first string literal argument, if any (format string)
	Line int
}

// NullStmt is an empty statement (bare semicolon).
type NullStmt struct{}

func (*Block) stmt()       {}
func (*Assign) stmt()      {}
func (*IfStmt) stmt()      {}
func (*CaseStmt) stmt()    {}
func (*ForStmt) stmt()     {}
func (*WhileStmt) stmt()   {}
func (*RepeatStmt) stmt()  {}
func (*ForeverStmt) stmt() {}
func (*DelayStmt) stmt()   {}
func (*EventStmt) stmt()   {}
func (*WaitStmt) stmt()    {}
func (*SysCall) stmt()     {}
func (*NullStmt) stmt()    {}

// Expr is an expression node.
type Expr interface{ expr() }

// Ident is a signal, parameter or genvar reference.
type Ident struct {
	Name string
	Line int
}

// Number is a literal.
type Number struct {
	Val  Value
	Line int
}

// StringLit is a string literal (only valid as a $display argument).
type StringLit struct {
	Text string
	Line int
}

// Unary is a prefix operator: ~ ! - & | ^ ~& ~| ~^.
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator.
type Binary struct {
	Op   string
	X, Y Expr
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
}

// Concat is {a, b, c}.
type Concat struct {
	Parts []Expr
}

// Repeat is {n{expr}}.
type Repeat struct {
	Count Expr
	X     Expr
}

// Index is name[expr]: bit select or memory word select.
type Index struct {
	X    Expr
	Idx  Expr
	Line int
}

// PartSelect is name[msb:lsb] with constant bounds.
type PartSelect struct {
	X        Expr
	MSB, LSB Expr
	Line     int
}

// SysFunc is a system-function call in expression position ($time, $random).
type SysFunc struct {
	Name string
	Args []Expr
	Line int
}

func (*Ident) expr()      {}
func (*Number) expr()     {}
func (*StringLit) expr()  {}
func (*Unary) expr()      {}
func (*Binary) expr()     {}
func (*Ternary) expr()    {}
func (*Concat) expr()     {}
func (*Repeat) expr()     {}
func (*Index) expr()      {}
func (*PartSelect) expr() {}
func (*SysFunc) expr()    {}
