package verilog

// Commit-time signal probes: the trace-capture layer of the cross-level
// debugger (internal/xdebug). A probe observes every committed store —
// the exact transitions the event kernel acts on — carrying the
// simulation time, the signal, the committed word value and the source
// line of the committing statement, resolved from the bytecode debug
// info (Instr.Line) or the continuous assign's recorded position.
//
// Zero-overhead-when-off contract: with no probe attached the only
// additions to the hot paths are a nil check per commit and a dead int32
// store per VM store opcode; the kernel golden suite stays byte-identical
// and BenchmarkKernelProbeOff guards the cost. Soundness note: probes
// observe *transitions*, not values — a commit that leaves the word
// unchanged is filtered before the probe fires (exactly as it is
// filtered before propagation), so consumers must carry values forward
// between events. That filtering is also why attaching a probe cannot
// perturb results: the probe runs strictly after the slot write and
// mutates no simulator state.

// ProbeFunc observes one committed signal transition. t is the
// simulation time, word the store word index (0 for all scalar/vector
// signals), line the 1-based source line of the committing statement (0
// when the committing site carries no position), and v the new word
// value after the masked merge.
type ProbeFunc func(t uint64, sig SignalID, word int, line int32, v Value)

// SetProbe attaches (or, with nil, detaches) a commit probe. Must be
// called before Run. Attaching a probe forces serial combinational-cone
// evaluation: the Tier C parallel sweep commits its replayed values
// without per-assign line attribution, and the serial path is the one
// whose commit order the golden suite pins down.
func (s *Simulator) SetProbe(p ProbeFunc) {
	s.probe = p
	if p != nil {
		s.coneWorkers = 1
	}
}
