// Package verilog implements the Verilog-subset frontend and event-driven
// simulator that substitutes for Icarus Verilog in the reproduction: a
// lexer, a recursive-descent parser, an elaborator that flattens module
// hierarchies, and a delta-cycle simulator with testbench system tasks
// ($display, $finish, $error, $check_eq).
//
// The subset covers what the paper's case studies exercise: modules with
// parameters, wire/reg declarations up to 64 bits, continuous assignments,
// always blocks (edge- and level-sensitive), initial blocks with delays,
// if/case/for statements, blocking and non-blocking assignment, and the
// usual expression operators including concatenation, replication,
// bit/part selects and reductions.
package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a 4-state-lite Verilog value of up to 64 bits: each bit is
// either known (0/1 in Bits) or unknown (the corresponding bit of Unknown
// is set, in which case the Bits bit is ignored). Z is folded into X,
// which is sufficient for the frameworks built on top (none of the case
// studies use tristate buses).
type Value struct {
	Bits    uint64
	Unknown uint64
	Width   int
}

// maskFor returns a mask with the low w bits set.
func maskFor(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// NewValue returns a fully-known value of the given width.
func NewValue(bits uint64, width int) Value {
	return Value{Bits: bits & maskFor(width), Width: width}
}

// AllX returns a fully-unknown value of the given width.
func AllX(width int) Value {
	return Value{Unknown: maskFor(width), Width: width}
}

// IsFullyKnown reports whether no bit of v is X.
func (v Value) IsFullyKnown() bool { return v.Unknown == 0 }

// Uint returns the known bits; callers should check IsFullyKnown first.
func (v Value) Uint() uint64 { return v.Bits & maskFor(v.Width) }

// Equal reports exact 4-state equality (the === operator).
func (v Value) Equal(w Value) bool {
	if v.Unknown|w.Unknown == 0 {
		// Two-state fast path: every bit known, compare bits directly.
		return (v.Bits^w.Bits)&maskFor(max(v.Width, w.Width)) == 0
	}
	m := maskFor(max(v.Width, w.Width))
	if (v.Unknown^w.Unknown)&m != 0 {
		return false
	}
	known := ^v.Unknown & m
	return (v.Bits^w.Bits)&known == 0
}

// Resize truncates or zero-extends v to width w.
func (v Value) Resize(w int) Value {
	m := maskFor(w)
	return Value{Bits: v.Bits & m, Unknown: v.Unknown & m, Width: w}
}

// Bit returns the single-bit value at position i (0 or X).
func (v Value) Bit(i int) Value {
	if i < 0 || i >= 64 {
		return AllX(1)
	}
	return Value{Bits: (v.Bits >> uint(i)) & 1, Unknown: (v.Unknown >> uint(i)) & 1, Width: 1}
}

// IsTrue reports whether the value is known and non-zero (condition truth).
func (v Value) IsTrue() bool {
	m := maskFor(v.Width)
	// A condition is true if any known bit is 1. Unknown-only values are
	// not true (Verilog: x is neither true nor false; we treat as false).
	return v.Bits&^v.Unknown&m != 0
}

// String renders the value in Verilog binary-literal style for logs.
func (v Value) String() string {
	return string(v.appendString(nil))
}

// appendString appends the String rendering to b without the fmt
// machinery; the simulator's check-failure and final-signal formatting
// paths run it on reused scratch so steady-state logging never allocates.
func (v Value) appendString(b []byte) []byte {
	b = strconv.AppendInt(b, int64(v.Width), 10)
	b = append(b, '\'', 'b')
	for i := v.Width - 1; i >= 0; i-- {
		switch {
		case v.Unknown>>uint(i)&1 == 1:
			b = append(b, 'x')
		case v.Bits>>uint(i)&1 == 1:
			b = append(b, '1')
		default:
			b = append(b, '0')
		}
	}
	return b
}

// FormatRadix renders the value for $display verbs: 'd, 'h, 'b.
func (v Value) FormatRadix(radix byte) string {
	return string(appendRadix(nil, v, radix))
}

// appendRadix appends the $display rendering of v to b; the allocation-
// free core behind FormatRadix and the simulator's formatting scratch.
func appendRadix(b []byte, v Value, radix byte) []byte {
	if !v.IsFullyKnown() {
		if radix == 'b' {
			for i := v.Width - 1; i >= 0; i-- {
				switch {
				case v.Unknown>>uint(i)&1 == 1:
					b = append(b, 'x')
				case v.Bits>>uint(i)&1 == 1:
					b = append(b, '1')
				default:
					b = append(b, '0')
				}
			}
			return b
		}
		return append(b, 'x')
	}
	switch radix {
	case 'h':
		return strconv.AppendUint(b, v.Uint(), 16)
	case 'b':
		return strconv.AppendUint(b, v.Uint(), 2)
	default:
		return strconv.AppendUint(b, v.Uint(), 10)
	}
}

// hexDigits renders the value as fixed-width hex, one character per
// nibble; a nibble containing any unknown bit prints as 'x'.
func (v Value) hexDigits() string {
	n := (v.Width + 3) / 4
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		sh := uint(4 * (n - 1 - i))
		if v.Unknown>>sh&0xF != 0 {
			buf[i] = 'x'
			continue
		}
		buf[i] = "0123456789abcdef"[v.Bits>>sh&0xF]
	}
	return string(buf)
}

// FormatWords renders a multi-word signal (a memory, or a wide bus stored
// as a word array) as a stable MSW-first hex string, e.g. a 128-bit value
// held in two 64-bit words prints as "2x64'h<word1>_<word0>". Nibbles
// containing unknown bits print as 'x'.
func FormatWords(words []Value, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d'h", len(words), width)
	for i := len(words) - 1; i >= 0; i-- {
		if i < len(words)-1 {
			b.WriteByte('_')
		}
		b.WriteString(words[i].hexDigits())
	}
	return b.String()
}

// --- arithmetic and logic over values ---------------------------------

// anyX reports whether any operand has an unknown bit inside its width.
func anyX(vs ...Value) bool {
	for _, v := range vs {
		if v.Unknown&maskFor(v.Width) != 0 {
			return true
		}
	}
	return false
}

// Add returns a + b at width w.
func Add(a, b Value, w int) Value {
	if anyX(a, b) {
		return AllX(w)
	}
	return NewValue(a.Uint()+b.Uint(), w)
}

// Sub returns a - b at width w.
func Sub(a, b Value, w int) Value {
	if anyX(a, b) {
		return AllX(w)
	}
	return NewValue(a.Uint()-b.Uint(), w)
}

// Mul returns a * b at width w.
func Mul(a, b Value, w int) Value {
	if anyX(a, b) {
		return AllX(w)
	}
	return NewValue(a.Uint()*b.Uint(), w)
}

// Div returns a / b at width w; division by zero yields X as in Verilog.
func Div(a, b Value, w int) Value {
	if anyX(a, b) || b.Uint() == 0 {
		return AllX(w)
	}
	return NewValue(a.Uint()/b.Uint(), w)
}

// Mod returns a % b at width w; modulo by zero yields X.
func Mod(a, b Value, w int) Value {
	if anyX(a, b) || b.Uint() == 0 {
		return AllX(w)
	}
	return NewValue(a.Uint()%b.Uint(), w)
}

// And returns per-bit a & b with per-bit X propagation: 0 & x == 0.
func And(a, b Value, w int) Value {
	if a.Unknown|b.Unknown == 0 {
		return Value{Bits: a.Bits & b.Bits & maskFor(w), Width: w}
	}
	m := maskFor(w)
	knownZeroA := ^a.Bits & ^a.Unknown
	knownZeroB := ^b.Bits & ^b.Unknown
	unknown := (a.Unknown | b.Unknown) &^ (knownZeroA | knownZeroB) & m
	bits := a.Bits & b.Bits & m &^ unknown
	return Value{Bits: bits, Unknown: unknown, Width: w}
}

// Or returns per-bit a | b with per-bit X propagation: 1 | x == 1.
func Or(a, b Value, w int) Value {
	if a.Unknown|b.Unknown == 0 {
		return Value{Bits: (a.Bits | b.Bits) & maskFor(w), Width: w}
	}
	m := maskFor(w)
	knownOneA := a.Bits & ^a.Unknown
	knownOneB := b.Bits & ^b.Unknown
	unknown := (a.Unknown | b.Unknown) &^ (knownOneA | knownOneB) & m
	bits := (a.Bits | b.Bits) & m &^ unknown
	return Value{Bits: bits, Unknown: unknown, Width: w}
}

// Xor returns per-bit a ^ b; any X in, X out for that bit.
func Xor(a, b Value, w int) Value {
	if a.Unknown|b.Unknown == 0 {
		return Value{Bits: (a.Bits ^ b.Bits) & maskFor(w), Width: w}
	}
	m := maskFor(w)
	unknown := (a.Unknown | b.Unknown) & m
	bits := (a.Bits ^ b.Bits) & m &^ unknown
	return Value{Bits: bits, Unknown: unknown, Width: w}
}

// Not returns per-bit ~a at width w.
func Not(a Value, w int) Value {
	if a.Unknown == 0 {
		return Value{Bits: ^a.Bits & maskFor(w), Width: w}
	}
	m := maskFor(w)
	unknown := a.Unknown & m
	bits := ^a.Bits & m &^ unknown
	return Value{Bits: bits, Unknown: unknown, Width: w}
}

// Shl returns a << b truncated to width w.
func Shl(a, b Value, w int) Value {
	if anyX(b) {
		return AllX(w)
	}
	sh := b.Uint()
	if sh >= 64 {
		return NewValue(0, w)
	}
	m := maskFor(w)
	if a.Unknown == 0 {
		return Value{Bits: (a.Bits << sh) & m, Width: w}
	}
	return Value{Bits: (a.Bits << sh) & m &^ (a.Unknown << sh), Unknown: (a.Unknown << sh) & m, Width: w}
}

// Shr returns logical a >> b at width w.
func Shr(a, b Value, w int) Value {
	if anyX(b) {
		return AllX(w)
	}
	sh := b.Uint()
	if sh >= 64 {
		return NewValue(0, w)
	}
	am := maskFor(a.Width)
	m := maskFor(w)
	if a.Unknown == 0 {
		return Value{Bits: (a.Bits & am) >> sh & m, Width: w}
	}
	bits := (a.Bits & am) >> sh
	unknown := (a.Unknown & am) >> sh
	return Value{Bits: bits & m &^ unknown, Unknown: unknown & m, Width: w}
}

// cmpBool builds the 1-bit result of a comparison.
func cmpBool(ok bool) Value {
	if ok {
		return NewValue(1, 1)
	}
	return NewValue(0, 1)
}

// Eq returns the 1-bit logical-equality a == b (X if any operand bit X).
func Eq(a, b Value) Value {
	if anyX(a, b) {
		return AllX(1)
	}
	return cmpBool(a.Uint() == b.Uint())
}

// Lt returns the unsigned 1-bit a < b.
func Lt(a, b Value) Value {
	if anyX(a, b) {
		return AllX(1)
	}
	return cmpBool(a.Uint() < b.Uint())
}

// CaseEq returns the 1-bit 4-state equality a === b.
func CaseEq(a, b Value) Value {
	return cmpBool(a.Equal(b))
}

// LogicalAnd returns the 1-bit a && b.
func LogicalAnd(a, b Value) Value {
	at, bt := a.IsTrue(), b.IsTrue()
	aKnownFalse := a.IsFullyKnown() && !at
	bKnownFalse := b.IsFullyKnown() && !bt
	switch {
	case aKnownFalse || bKnownFalse:
		return NewValue(0, 1)
	case anyX(a, b):
		return AllX(1)
	default:
		return cmpBool(at && bt)
	}
}

// LogicalOr returns the 1-bit a || b.
func LogicalOr(a, b Value) Value {
	switch {
	case a.IsTrue() || b.IsTrue():
		return NewValue(1, 1)
	case anyX(a, b):
		return AllX(1)
	default:
		return NewValue(0, 1)
	}
}

// LogicalNot returns the 1-bit !a.
func LogicalNot(a Value) Value {
	if anyX(a) && !a.IsTrue() {
		return AllX(1)
	}
	return cmpBool(!a.IsTrue())
}

// ReduceAnd returns the 1-bit &a.
func ReduceAnd(a Value) Value {
	m := maskFor(a.Width)
	if ^a.Bits & ^a.Unknown & m != 0 {
		return NewValue(0, 1) // some known-0 bit
	}
	if a.Unknown&m != 0 {
		return AllX(1)
	}
	return NewValue(1, 1)
}

// ReduceOr returns the 1-bit |a.
func ReduceOr(a Value) Value {
	m := maskFor(a.Width)
	if a.Bits & ^a.Unknown & m != 0 {
		return NewValue(1, 1)
	}
	if a.Unknown&m != 0 {
		return AllX(1)
	}
	return NewValue(0, 1)
}

// ReduceXor returns the 1-bit ^a.
func ReduceXor(a Value) Value {
	m := maskFor(a.Width)
	if a.Unknown&m != 0 {
		return AllX(1)
	}
	x := a.Bits & m
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return NewValue(x&1, 1)
}

// ConcatValues joins values MSB-first (Verilog {a, b, ...}); the total width must
// not exceed 64.
func ConcatValues(parts ...Value) (Value, error) {
	total := 0
	for _, p := range parts {
		total += p.Width
	}
	if total > 64 {
		return Value{}, fmt.Errorf("verilog: concatenation width %d exceeds 64", total)
	}
	var out Value
	out.Width = total
	shift := total
	for _, p := range parts {
		shift -= p.Width
		m := maskFor(p.Width)
		out.Bits |= (p.Bits & m) << uint(shift)
		out.Unknown |= (p.Unknown & m) << uint(shift)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
