package verilog

import (
	"fmt"
	"runtime"
)

// Tiered-VM kill switches. Each tier is independently disableable so
// property tests can force a configuration off and assert byte-identical
// results against the default; they are read at compile time (fusion,
// superinstruction synthesis) or simulator construction (workers), so
// toggling between compiles is safe. Not intended for production use.
var (
	// enableFusion gates the finish-time peephole (pair/triple fusion).
	enableFusion = true
	// enableSuper gates Tier A superinstruction block synthesis.
	enableSuper = true
	// enableTwoState gates Tier B two-state specialized block variants.
	enableTwoState = true
	// coneWorkersOverride forces the Tier C worker count when > 0.
	coneWorkersOverride = 0
)

// SetConeWorkersForTest forces the Tier C worker count; the returned
// func restores the previous setting. Exported for the external golden
// tests, which must prove simulation output is byte-identical with
// parallel cone evaluation enabled (workers > 1) — the Tier C
// determinism contract, checked against the same committed fixtures as
// the serial run.
func SetConeWorkersForTest(n int) (restore func()) {
	old := coneWorkersOverride
	coneWorkersOverride = n
	return func() { coneWorkersOverride = old }
}

// coneWorkerCount is the Tier C worker bound for a new simulator.
func coneWorkerCount() int {
	if n := coneWorkersOverride; n > 0 {
		return n
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}

// VMStats reports tiered-VM coverage: for one run on SimResult.VM, or
// summed across a batch in simfarm.FarmStats. Op counts are dispatch
// units — one executed instruction of the underlying program — so the
// Tier A/B vs Generic split shows where dispatch time actually goes.
type VMStats struct {
	// SuperBlocks counts superinstructions synthesized across the
	// design's compiled programs (static, per design).
	SuperBlocks int64
	// FuseSkipped counts fusion candidates dropped because a branch
	// target split them (static, per design) — the peephole's
	// previously silent truncation, now observable.
	FuseSkipped int64
	// TierAOps counts instructions executed inside general
	// superinstruction closures.
	TierAOps int64
	// TierBOps counts instructions executed inside two-state
	// specialized closures.
	TierBOps int64
	// GenericOps counts instructions dispatched by the generic
	// switch loop.
	GenericOps int64
	// Promotions counts signals promoted to proven-two-state.
	Promotions int64
}

// Add accumulates o into v and returns the sum.
func (v VMStats) Add(o VMStats) VMStats {
	v.SuperBlocks += o.SuperBlocks
	v.FuseSkipped += o.FuseSkipped
	v.TierAOps += o.TierAOps
	v.TierBOps += o.TierBOps
	v.GenericOps += o.GenericOps
	v.Promotions += o.Promotions
	return v
}

// Sub returns v minus o, field-wise — the traffic between two snapshots.
func (v VMStats) Sub(o VMStats) VMStats {
	v.SuperBlocks -= o.SuperBlocks
	v.FuseSkipped -= o.FuseSkipped
	v.TierAOps -= o.TierAOps
	v.TierBOps -= o.TierBOps
	v.GenericOps -= o.GenericOps
	v.Promotions -= o.Promotions
	return v
}

// String renders the stats as a single diagnostic line, with the tier
// split as a share of all dispatched instructions.
func (v VMStats) String() string {
	total := v.TierAOps + v.TierBOps + v.GenericOps
	pct := func(n int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	return fmt.Sprintf(
		"superblocks=%d fuse_skipped=%d dispatch: tierA=%d (%.1f%%) tierB=%d (%.1f%%) generic=%d (%.1f%%) promotions=%d",
		v.SuperBlocks, v.FuseSkipped,
		v.TierAOps, pct(v.TierAOps),
		v.TierBOps, pct(v.TierBOps),
		v.GenericOps, pct(v.GenericOps),
		v.Promotions)
}
