package verilog

import "strconv"

// Pos is the one source-position type shared by every positioned
// diagnostic the front end produces: parser errors, elaboration errors
// and the static-analysis findings built on top (internal/vlint). Tools
// that mix compile errors and lint findings in one report can therefore
// sort and render them uniformly. File is empty for the single-source
// candidate flows; Col is zero where only a line is known.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col, omitting the empty
// parts: "adder.v:12:3", "12:3", or just "12".
func (p Pos) String() string {
	s := strconv.Itoa(p.Line)
	if p.Col > 0 {
		s += ":" + strconv.Itoa(p.Col)
	}
	if p.File != "" {
		s = p.File + ":" + s
	}
	return s
}

// Before orders positions by file, then line, then column — the render
// order for mixed diagnostic lists.
func (p Pos) Before(q Pos) bool {
	if p.File != q.File {
		return p.File < q.File
	}
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}
