package verilog

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber // possibly sized: 4'b1010, 8'hff, 12, 'd7
	tokString
	tokKeyword
	tokOp    // operator or punctuation
	tokSysID // $display etc.
)

// token is one lexical token with source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string { return fmt.Sprintf("%s@%d:%d", t.text, t.line, t.col) }

var verilogKeywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "integer": true,
	"assign": true, "always": true, "initial": true, "begin": true,
	"end": true, "if": true, "else": true, "case": true, "casez": true,
	"endcase": true, "default": true, "for": true, "while": true,
	"posedge": true, "negedge": true, "or": true, "parameter": true,
	"localparam": true, "genvar": true, "generate": true, "endgenerate": true,
	"function": true, "endfunction": true, "signed": true, "repeat": true,
	"forever": true, "wait": true,
}

// lexError is a positioned lexical error.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.line, e.col, e.msg)
}

// lexer turns Verilog source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace and comments; it returns an error only for
// unterminated block comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &lexError{startLine, startCol, "unterminated block comment"}
			}
		case c == '`':
			// Compiler directives (`timescale, `define without args) are
			// skipped to end of line: the subset ignores them.
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Byte-class tables: the lexer is on the compile path of every candidate
// score, so character classification is a table load, not a unicode call.
var identStartTab, identPartTab, digitTab [256]bool

func init() {
	for c := 0; c < 256; c++ {
		b := byte(c)
		letter := (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
		digit := b >= '0' && b <= '9'
		identStartTab[c] = letter || b == '_'
		identPartTab[c] = letter || digit || b == '_' || b == '$'
		digitTab[c] = digit
	}
}

func isIdentStart(c byte) bool { return identStartTab[c] }

func isIdentPart(c byte) bool { return identPartTab[c] }

// matchMultiOp recognizes a multi-character operator at the front of s,
// dispatching on the first byte (the seed scanned a 17-entry prefix list
// per operator token). Returned strings are canonical constants.
func matchMultiOp(s string) string {
	if len(s) < 2 {
		return ""
	}
	switch s[0] {
	case '=':
		if len(s) >= 3 && s[1] == '=' && s[2] == '=' {
			return "==="
		}
		if s[1] == '=' {
			return "=="
		}
	case '!':
		if len(s) >= 3 && s[1] == '=' && s[2] == '=' {
			return "!=="
		}
		if s[1] == '=' {
			return "!="
		}
	case '<':
		if len(s) >= 3 && s[1] == '<' && s[2] == '<' {
			return "<<<"
		}
		if s[1] == '=' {
			return "<="
		}
		if s[1] == '<' {
			return "<<"
		}
	case '>':
		if len(s) >= 3 && s[1] == '>' && s[2] == '>' {
			return ">>>"
		}
		if s[1] == '=' {
			return ">="
		}
		if s[1] == '>' {
			return ">>"
		}
	case '&':
		if s[1] == '&' {
			return "&&"
		}
	case '|':
		if s[1] == '|' {
			return "||"
		}
	case '~':
		switch s[1] {
		case '&':
			return "~&"
		case '|':
			return "~|"
		case '^':
			return "~^"
		}
	case '^':
		if s[1] == '~' {
			return "^~"
		}
	case '+':
		if s[1] == ':' {
			return "+:"
		}
	case '-':
		if s[1] == ':' {
			return "-:"
		}
	}
	return ""
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, text: "", line: l.line, col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.peek()

	switch {
	case isIdentStart(c):
		// Identifiers contain no newlines: scan then bump pos/col once.
		start := l.pos
		end := start
		for end < len(l.src) && identPartTab[l.src[end]] {
			end++
		}
		l.col += end - l.pos
		l.pos = end
		text := l.src[start:l.pos]
		kind := tokIdent
		if verilogKeywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: startLine, col: startCol}, nil

	case c == '$':
		start := l.pos // include the '$': the text is a source substring, not a concat
		l.advance()
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		if start+1 == l.pos {
			return token{}, &lexError{startLine, startCol, "stray '$'"}
		}
		return token{kind: tokSysID, text: l.src[start:l.pos], line: startLine, col: startCol}, nil

	case digitTab[c] || c == '\'':
		return l.lexNumber(startLine, startCol)

	case c == '"':
		l.advance()
		var b strings.Builder
		for l.pos < len(l.src) && l.peek() != '"' {
			ch := l.advance()
			if ch == '\\' && l.pos < len(l.src) {
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					b.WriteByte(esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		if l.pos >= len(l.src) {
			return token{}, &lexError{startLine, startCol, "unterminated string"}
		}
		l.advance() // closing quote
		return token{kind: tokString, text: b.String(), line: startLine, col: startCol}, nil

	default:
		if op := matchMultiOp(l.src[l.pos:]); op != "" {
			l.pos += len(op)
			l.col += len(op)
			return token{kind: tokOp, text: op, line: startLine, col: startCol}, nil
		}
		l.advance()
		return token{kind: tokOp, text: opText(c), line: startLine, col: startCol}, nil
	}
}

// lexNumber handles plain decimals and sized/based literals. The token text
// is normalized to "<width>'<base><digits>" or a plain decimal string.
func (l *lexer) lexNumber(startLine, startCol int) (token, error) {
	start := l.pos
	sizeUnderscore := false
	for l.pos < len(l.src) && (digitTab[l.peek()] || l.peek() == '_') {
		if l.peek() == '_' {
			sizeUnderscore = true
		}
		l.advance()
	}
	sizeEnd := l.pos
	if l.pos < len(l.src) && l.peek() == '\'' {
		l.advance()
		if l.pos >= len(l.src) {
			return token{}, &lexError{startLine, startCol, "truncated based literal"}
		}
		signed := false
		base := l.advance()
		if base == 's' || base == 'S' { // signed marker, skip
			signed = true
			if l.pos >= len(l.src) {
				return token{}, &lexError{startLine, startCol, "truncated based literal"}
			}
			base = l.advance()
		}
		switch base {
		case 'b', 'B', 'h', 'H', 'd', 'D', 'o', 'O':
		default:
			return token{}, &lexError{startLine, startCol, fmt.Sprintf("bad number base %q", base)}
		}
		dstart := l.pos
		clean := !sizeUnderscore && !signed && base >= 'a'
		for l.pos < len(l.src) {
			ch := l.peek()
			if ch == '_' || ch == 'x' || ch == 'X' || ch == 'z' || ch == 'Z' || ch == '?' ||
				isHexDigit(ch) {
				if ch == '_' || (ch >= 'A' && ch <= 'Z') {
					clean = false
				}
				l.advance()
				continue
			}
			break
		}
		if l.pos == dstart {
			return token{}, &lexError{startLine, startCol, "based literal has no digits"}
		}
		// Canonical-form fast path: most literals (8'h3f, 16'd2000) are
		// already lowercase with no underscores or sign marker, so the
		// token text is a plain source substring — no allocation. The
		// slow path normalizes exactly as before.
		if clean {
			return token{kind: tokNumber, text: l.src[start:l.pos], line: startLine, col: startCol}, nil
		}
		sizeText := strings.ReplaceAll(l.src[start:sizeEnd], "_", "")
		digits := strings.ReplaceAll(l.src[dstart:l.pos], "_", "")
		if digits == "" {
			return token{}, &lexError{startLine, startCol, "based literal has no digits"}
		}
		text := sizeText + "'" + strings.ToLower(string(base)) + strings.ToLower(digits)
		return token{kind: tokNumber, text: text, line: startLine, col: startCol}, nil
	}
	sizeText := l.src[start:sizeEnd]
	if sizeUnderscore {
		sizeText = strings.ReplaceAll(sizeText, "_", "")
	}
	if sizeText == "" {
		return token{}, &lexError{startLine, startCol, "malformed number"}
	}
	return token{kind: tokNumber, text: sizeText, line: startLine, col: startCol}, nil
}

func isHexDigit(c byte) bool {
	return digitTab[c] || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// opText returns the single-character operator token text without
// allocating a fresh string per occurrence. Index in the int domain:
// for c == 0xFF the byte-typed c+1 would wrap to 0.
func opText(c byte) string {
	return singleOps[int(c) : int(c)+1]
}

// singleOps indexes every byte value to a stable one-character string.
var singleOps = func() string {
	b := make([]byte, 256)
	for i := range b {
		b[i] = byte(i)
	}
	return string(b)
}()

// parseNumberLiteral converts normalized number text to a Value. Unsized
// literals get width 32. x/z digits produce unknown bits.
func parseNumberLiteral(text string) (Value, error) {
	apos := strings.IndexByte(text, '\'')
	if apos < 0 {
		n, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("verilog: bad number %q: %w", text, err)
		}
		return NewValue(n, 32), nil
	}
	width := 32
	if apos > 0 {
		w, err := strconv.Atoi(text[:apos])
		if err != nil || w <= 0 || w > 64 {
			return Value{}, fmt.Errorf("verilog: bad literal width in %q", text)
		}
		width = w
	}
	base := text[apos+1]
	digits := text[apos+2:]
	var bitsPer int
	switch base {
	case 'b':
		bitsPer = 1
	case 'o':
		bitsPer = 3
	case 'h':
		bitsPer = 4
	case 'd':
		clean := strings.Map(func(r rune) rune {
			if r == 'x' || r == 'z' || r == '?' {
				return -1
			}
			return r
		}, digits)
		if clean != digits {
			return AllX(width), nil
		}
		n, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("verilog: bad decimal literal %q: %w", text, err)
		}
		return NewValue(n, width), nil
	}
	var v Value
	v.Width = width
	for i := 0; i < len(digits); i++ {
		v.Bits <<= uint(bitsPer)
		v.Unknown <<= uint(bitsPer)
		d := digits[i]
		switch {
		case d == 'x' || d == 'z' || d == '?':
			v.Unknown |= maskFor(bitsPer)
		default:
			n, err := strconv.ParseUint(string(d), 16, 8)
			if err != nil || n >= uint64(1)<<uint(bitsPer) {
				return Value{}, fmt.Errorf("verilog: digit %q invalid for base in %q", d, text)
			}
			v.Bits |= n
		}
	}
	v.Bits &= maskFor(width)
	v.Unknown &= maskFor(width)
	return v, nil
}

// tokenSlices recycles lexAll buffers: token slices die with their parse
// (the AST keeps only text substrings), and candidate scoring parses
// thousands of sources per batch.
var tokenSlices = sync.Pool{New: func() any { return []token(nil) }}

func putTokenSlice(toks []token) {
	if cap(toks) == 0 {
		return
	}
	// Zero the written entries so pooled slices don't pin substrings of a
	// large previously-parsed source while recycling for small ones.
	// [len, cap) is already zero: fresh slices come zeroed from make and
	// every earlier recycle cleared what it wrote.
	clear(toks)
	tokenSlices.Put(toks[:0]) //nolint:staticcheck // slice header boxing is fine here
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	toks := tokenSlices.Get().([]token)
	if cap(toks) < len(src)/4+16 {
		// Pre-size for ~4 source bytes per token: one allocation even on
		// large testbenches.
		toks = make([]token, 0, len(src)/4+16)
	}
	for {
		t, err := lx.next()
		if err != nil {
			putTokenSlice(toks)
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
