package verilog

import (
	"runtime"
	"testing"
	"time"
)

// Kernel-level goroutine hygiene: the rewritten simulator is coroutine-
// free, so a run spawns no goroutines at all — not merely "joins them on
// exit" like the seed's goroutine-per-process kernel. These are the
// simfarm goroutine-leak guards extended down into the kernel.

// manyProcSrc has eight behavioral processes; under the seed kernel a run
// held eight parked goroutines alive for its whole duration.
const manyProcSrc = `
module tb;
  reg clk;
  reg [7:0] a, b, c, d;
  always #1 clk = ~clk;
  always @(posedge clk) a <= a + 1;
  always @(posedge clk) b <= b + 2;
  always @(negedge clk) c <= c + 3;
  always @(*) d = a ^ b;
  initial begin a = 0; b = 0; c = 0; end
  initial clk = 0;
  initial begin
    #5000;
    $check_eq(a, b / 2);
    $finish;
  end
endmodule`

// TestKernelSpawnsNoGoroutines samples the goroutine count while a
// multi-process simulation is executing: it must never rise above the
// baseline plus the one test goroutine driving the run.
func TestKernelSpawnsNoGoroutines(t *testing.T) {
	cd, err := Compile(manyProcSrc, "tb")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	baseline := runtime.NumGoroutine()

	started := make(chan struct{})
	done := make(chan *SimResult)
	go func() {
		close(started)
		var last *SimResult
		for i := 0; i < 50; i++ {
			res, err := cd.Run(SimOptions{})
			if err != nil {
				t.Errorf("Run: %v", err)
				break
			}
			last = res
		}
		done <- last
	}()

	<-started
	peak := runtime.NumGoroutine()
	for {
		select {
		case res := <-done:
			if res == nil || !res.Finished {
				t.Fatalf("simulation did not finish: %+v", res)
			}
			if peak > baseline+1 {
				t.Errorf("goroutines peaked at %d during simulation (baseline %d + 1 driver): kernel spawned per-process goroutines", peak, baseline)
			}
			return
		default:
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
		}
	}
}

// TestKernelLeaksNoGoroutines is the leak half: after many runs the count
// returns to the baseline (the simfarm cancel tests' guard, kernel-side).
func TestKernelLeaksNoGoroutines(t *testing.T) {
	cd, err := Compile(manyProcSrc, "tb")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		if _, err := cd.Run(SimOptions{}); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}
