package edaserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"llm4eda/eda"
	"llm4eda/internal/faultinject"
	"llm4eda/internal/obs"
	"llm4eda/internal/simfarm"
)

// maxSpecBytes bounds a submitted spec body; Source payloads are at most
// kernels, not repositories.
const maxSpecBytes = 4 << 20

// JobStatus is the wire form of one job, shared by every job endpoint
// and by the SSE terminal "end" event. Report carries the eda.Report in
// the shared wire encoding ((*eda.Report).JSON) once the job produced
// one — including the partial report of a failed or cancelled run.
type JobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Cached  bool   `json:"cached,omitempty"`
	Error   string `json:"error,omitempty"`
	Created string `json:"created"` // RFC 3339 UTC
	// EventsDropped counts events evicted from the job's replay ring —
	// history an SSE subscriber arriving (or resuming) late can no
	// longer replay. Slow-subscriber loss made visible instead of silent.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// QueueWaitMS is the enqueue→worker-pop wait. Zero until the job is
	// popped (and forever for a job answered from the report cache at
	// submission, which never queues).
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// Phases is the job's span breakdown: every canonical phase
	// (queue_wait, lint_screen, compile, sim, store_write) plus any the
	// pipeline added, in flow order. N counts recordings folded into a
	// phase — 0 means the phase never ran (a cached hit reports sim with
	// N == 0 and 0 ms, not a missing row); sim accumulates N recordings
	// across candidate rounds.
	Phases []PhaseStatus `json:"phases,omitempty"`

	Report json.RawMessage `json:"report,omitempty"`
}

// PhaseStatus is one row of a job's span breakdown.
type PhaseStatus struct {
	Phase string  `json:"phase"`
	MS    float64 `json:"ms"`
	N     int     `json:"n"`
}

// StatsReply is the wire form of /v1/stats.
type StatsReply struct {
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining,omitempty"`
	// JobStates counts retained jobs by state.
	JobStates map[string]int `json:"job_states"`
	Submitted uint64         `json:"submitted"`
	Completed uint64         `json:"completed"`
	Failed    uint64         `json:"failed"`
	Cancelled uint64         `json:"cancelled"`
	Rejected  uint64         `json:"rejected"`
	// Panics counts pipeline panics recovered into failed jobs (the
	// farm's own recovered worker panics are under Farm.Panics).
	Panics uint64 `json:"panics,omitempty"`
	// WatchdogKills counts jobs cancelled for event staleness.
	WatchdogKills uint64 `json:"watchdog_kills,omitempty"`
	// Retries counts transient-failure retries absorbed inside completed
	// runs' candidate loops.
	Retries uint64 `json:"retries,omitempty"`
	// StoreFails counts report-store writes that failed (fault-injected).
	StoreFails uint64 `json:"store_fails,omitempty"`
	// EventsDropped sums replay-ring evictions over retained jobs.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// QueueWaitP50MS/P99MS summarize the enqueue→worker-pop wait
	// distribution over finished jobs (from the queue_wait phase
	// histogram — the early-warning signal before the queue fills and
	// submissions start bouncing with 429).
	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	// ReportCache is the cross-request report store's traffic.
	ReportCache ReportCacheStats `json:"report_cache"`
	// Farm is the shared simulation farm's per-layer traffic; its Results
	// hits are the cross-request design/simulation reuse the service
	// exists to exploit.
	Farm simfarm.FarmStats `json:"farm"`
}

// ReportCacheStats is the report store's corner of /v1/stats.
type ReportCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Len    int    `json:"len"`
}

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorReply{Error: fmt.Sprintf(format, args...)})
}

// status snapshots the job's wire form. Lock order: jb.mu, then the
// broadcaster's own lock inside droppedCount — never the reverse.
func (jb *job) status() JobStatus {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	spans := jb.spans.Snapshot()
	phases := make([]PhaseStatus, len(spans))
	for i, sp := range spans {
		phases[i] = PhaseStatus{Phase: sp.Phase, MS: float64(sp.Dur) / 1e6, N: sp.N}
	}
	return JobStatus{
		ID:            jb.id,
		State:         jb.state,
		Cached:        jb.cached,
		Error:         jb.errDetail,
		Created:       jb.created.Format("2006-01-02T15:04:05.000Z07:00"),
		EventsDropped: jb.events.droppedCount(),
		QueueWaitMS:   float64(jb.queueWait) / 1e6,
		Phases:        phases,
		Report:        jb.reportJSON,
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec eda.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	spec = s.opts.Registry.Normalize(spec)
	if err := spec.ValidateIn(s.opts.Registry); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := contentKey(spec)
	jb := s.newJob(spec, key)
	s.submitted.Add(1)
	jb.events.Emit(eda.Event{Kind: eda.EventNote, Framework: spec.Framework,
		Detail: "job " + jb.id + " queued"})

	// Submission-time dedup: an identical completed run answers
	// immediately, without consuming queue capacity.
	if e, ok := s.store.get(key); ok {
		s.log.Debug("job answered from report cache", "job", jb.id, "key", key)
		s.completeFromCache(jb, e)
		writeJSON(w, http.StatusOK, jb.status())
		return
	}
	if err := s.enqueue(jb); err != nil {
		s.unregister(jb)
		s.rejected.Add(1)
		s.log.Warn("job rejected", "job", jb.id, "framework", spec.Framework, "err", err)
		if errors.Is(err, errDraining) {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full, retry later")
		return
	}
	s.log.Debug("job queued", "job", jb.id, "framework", spec.Framework, "key", key)
	writeJSON(w, http.StatusAccepted, jb.status())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	jb.mu.Lock()
	switch jb.state {
	case stateQueued:
		// The worker that eventually pops this job sees a non-queued
		// state and skips it; its QueueDepth reservation is returned now,
		// not when the worker drains past the corpse. The cancel ends the
		// job's queue wait — the time it sat queued is real wait.
		s.releaseSlotLocked(jb)
		if !jb.enqueued.IsZero() {
			jb.queueWait = time.Since(jb.enqueued)
			jb.spans.Record(obs.PhaseQueueWait, jb.queueWait)
		}
		jb.finishLocked(stateCancelled, nil, false, "cancelled by client before start")
		jb.mu.Unlock()
		s.cancelled.Add(1)
		s.jobFinished(jb, stateCancelled, false)
		jb.events.Emit(eda.Event{Kind: eda.EventNote, Framework: jb.spec.Framework,
			Detail: "job cancelled before start"})
		jb.events.close()
	case stateRunning:
		jb.userCancel = true // so a racing watchdog cannot re-label this
		cancel := jb.cancel
		jb.mu.Unlock()
		if cancel != nil {
			cancel() // the worker finalizes state when eda.Run returns
		}
	default:
		jb.mu.Unlock() // already terminal: cancellation is a no-op
	}
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	states := map[string]int{}
	var eventsDropped uint64
	s.mu.Lock()
	for _, jb := range s.jobs {
		jb.mu.Lock()
		states[jb.state]++
		jb.mu.Unlock()
		eventsDropped += jb.events.droppedCount()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatsReply{
		Workers:        len(s.shards),
		QueueDepth:     s.queueDepth(),
		Draining:       s.isDraining(),
		JobStates:      states,
		Submitted:      s.submitted.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		Cancelled:      s.cancelled.Load(),
		Rejected:       s.rejected.Load(),
		Panics:         s.panics.Load(),
		WatchdogKills:  s.watchdogKills.Load(),
		Retries:        s.retries.Load(),
		StoreFails:     s.storeFails.Load(),
		EventsDropped:  eventsDropped,
		QueueWaitP50MS: s.metrics.queueWaitQuantileMS(0.5),
		QueueWaitP99MS: s.metrics.queueWaitQuantileMS(0.99),
		ReportCache: ReportCacheStats{
			Hits:   s.store.hits.Load(),
			Misses: s.store.miss.Load(),
			Len:    s.store.len(),
		},
		Farm: s.opts.Farm.Stats(),
	})
}

// handleEvents streams the job's event history and live tail as
// Server-Sent Events: one "id: <seq>" + "event: <kind>" + "data:
// <event JSON>" frame per core event, closed by a terminal "event: end"
// frame whose data is the job's final JobStatus (which now carries the
// dropped-event count). Clients arriving after completion get the full
// replay and the end frame immediately.
//
// Resume: a client reconnecting after a broken stream sends the last
// sequence number it saw — the standard Last-Event-ID header, or an
// `after` query parameter for hand-driven curl — and the replay starts
// just past it. History already evicted from the ring is announced in
// a comment frame rather than silently skipped.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		fmt.Sscanf(v, "%d", &after)
	}
	if v := r.URL.Query().Get("after"); v != "" {
		fmt.Sscanf(v, "%d", &after)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, missed, ch, cancelSub := jb.events.subscribe(after, 256)
	defer cancelSub()
	if missed > 0 {
		fmt.Fprintf(w, ": %d earlier events evicted from the replay buffer\n\n", missed)
	}
	for _, ne := range replay {
		if !s.writeFrame(w, r, ne) {
			return
		}
	}
	fl.Flush()
	if ch == nil {
		writeSSEEnd(w, jb)
		fl.Flush()
		return
	}
	ctx := r.Context()
	for {
		select {
		case ne, open := <-ch:
			if !open {
				writeSSEEnd(w, jb)
				fl.Flush()
				return
			}
			if !s.writeFrame(w, r, ne) {
				return
			}
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// writeFrame writes one SSE event frame, or aborts the stream (false)
// when the injected SSE fault drops the connection — the chaos stand-in
// for a proxy reset, exercising the client's reconnect-with-resume.
func (s *Server) writeFrame(w io.Writer, r *http.Request, ne numbered) bool {
	if s.opts.Faults != nil {
		if ferr := s.opts.Faults.Fire(r.Context(), faultinject.PointServerSSE); ferr != nil {
			return false
		}
	}
	writeSSE(w, ne)
	return true
}

func writeSSE(w io.Writer, ne numbered) {
	b, err := json.Marshal(ne.ev)
	if err != nil {
		return // core events always marshal; belt and braces
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ne.seq, ne.ev.Kind, b)
}

func writeSSEEnd(w io.Writer, jb *job) {
	b, err := json.Marshal(jb.status())
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: end\ndata: %s\n\n", b)
}
