package edaserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"llm4eda/eda"
	"llm4eda/internal/simfarm"
)

// maxSpecBytes bounds a submitted spec body; Source payloads are at most
// kernels, not repositories.
const maxSpecBytes = 4 << 20

// JobStatus is the wire form of one job, shared by every job endpoint
// and by the SSE terminal "end" event. Report carries the eda.Report in
// the shared wire encoding ((*eda.Report).JSON) once the job produced
// one — including the partial report of a failed or cancelled run.
type JobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Cached  bool   `json:"cached,omitempty"`
	Error   string `json:"error,omitempty"`
	Created string `json:"created"` // RFC 3339 UTC

	Report json.RawMessage `json:"report,omitempty"`
}

// StatsReply is the wire form of /v1/stats.
type StatsReply struct {
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining,omitempty"`
	// JobStates counts retained jobs by state.
	JobStates map[string]int `json:"job_states"`
	Submitted uint64         `json:"submitted"`
	Completed uint64         `json:"completed"`
	Failed    uint64         `json:"failed"`
	Cancelled uint64         `json:"cancelled"`
	Rejected  uint64         `json:"rejected"`
	// ReportCache is the cross-request report store's traffic.
	ReportCache ReportCacheStats `json:"report_cache"`
	// Farm is the shared simulation farm's per-layer traffic; its Results
	// hits are the cross-request design/simulation reuse the service
	// exists to exploit.
	Farm simfarm.FarmStats `json:"farm"`
}

// ReportCacheStats is the report store's corner of /v1/stats.
type ReportCacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Len    int    `json:"len"`
}

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorReply{Error: fmt.Sprintf(format, args...)})
}

// status snapshots the job's wire form.
func (jb *job) status() JobStatus {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return JobStatus{
		ID:      jb.id,
		State:   jb.state,
		Cached:  jb.cached,
		Error:   jb.errDetail,
		Created: jb.created.Format("2006-01-02T15:04:05.000Z07:00"),
		Report:  jb.reportJSON,
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec eda.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	spec = s.opts.Registry.Normalize(spec)
	if err := spec.ValidateIn(s.opts.Registry); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := contentKey(spec)
	jb := s.newJob(spec, key)
	s.submitted.Add(1)
	jb.events.Emit(eda.Event{Kind: eda.EventNote, Framework: spec.Framework,
		Detail: "job " + jb.id + " queued"})

	// Submission-time dedup: an identical completed run answers
	// immediately, without consuming queue capacity.
	if e, ok := s.store.get(key); ok {
		s.completeFromCache(jb, e)
		writeJSON(w, http.StatusOK, jb.status())
		return
	}
	if err := s.enqueue(jb); err != nil {
		s.unregister(jb)
		s.rejected.Add(1)
		if errors.Is(err, errDraining) {
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "job queue full, retry later")
		return
	}
	writeJSON(w, http.StatusAccepted, jb.status())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	jb.mu.Lock()
	switch jb.state {
	case stateQueued:
		// The worker that eventually pops this job sees a non-queued
		// state and skips it; its QueueDepth reservation is returned now,
		// not when the worker drains past the corpse.
		s.releaseSlotLocked(jb)
		jb.finishLocked(stateCancelled, nil, false, "cancelled by client before start")
		jb.mu.Unlock()
		s.cancelled.Add(1)
		jb.events.Emit(eda.Event{Kind: eda.EventNote, Framework: jb.spec.Framework,
			Detail: "job cancelled before start"})
		jb.events.close()
	case stateRunning:
		cancel := jb.cancel
		jb.mu.Unlock()
		if cancel != nil {
			cancel() // the worker finalizes state when eda.Run returns
		}
	default:
		jb.mu.Unlock() // already terminal: cancellation is a no-op
	}
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	states := map[string]int{}
	s.mu.Lock()
	for _, jb := range s.jobs {
		jb.mu.Lock()
		states[jb.state]++
		jb.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatsReply{
		Workers:    len(s.shards),
		QueueDepth: s.queueDepth(),
		Draining:   s.isDraining(),
		JobStates:  states,
		Submitted:  s.submitted.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Cancelled:  s.cancelled.Load(),
		Rejected:   s.rejected.Load(),
		ReportCache: ReportCacheStats{
			Hits:   s.store.hits.Load(),
			Misses: s.store.miss.Load(),
			Len:    s.store.len(),
		},
		Farm: s.opts.Farm.Stats(),
	})
}

// handleEvents streams the job's event history and live tail as
// Server-Sent Events: one "event: <kind>" + "data: <event JSON>" frame
// per core event, closed by a terminal "event: end" frame whose data is
// the job's final JobStatus. Clients arriving after completion get the
// full replay and the end frame immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, dropped, ch, cancelSub := jb.events.subscribe(256)
	defer cancelSub()
	if dropped > 0 {
		fmt.Fprintf(w, ": %d earlier events evicted from the replay buffer\n\n", dropped)
	}
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	if ch == nil {
		writeSSEEnd(w, jb)
		fl.Flush()
		return
	}
	ctx := r.Context()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				writeSSEEnd(w, jb)
				fl.Flush()
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

func writeSSE(w io.Writer, ev eda.Event) {
	b, err := json.Marshal(ev)
	if err != nil {
		return // core events always marshal; belt and braces
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, b)
}

func writeSSEEnd(w io.Writer, jb *job) {
	b, err := json.Marshal(jb.status())
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: end\ndata: %s\n\n", b)
}
