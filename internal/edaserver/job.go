package edaserver

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"llm4eda/eda"
	"llm4eda/internal/obs"
)

// Job states. queued and running are live; done, failed and cancelled are
// terminal.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// job is one submitted run moving through the queue.
type job struct {
	id      string
	key     string // content key of the normalized spec
	spec    eda.Spec
	created time.Time
	events  *broadcaster
	// spans is the job's phase-duration recorder, pre-seeded with the
	// canonical phases (obs.JobPhases) so a terminal breakdown always
	// lists all of them — a cached hit reports sim == 0, not a missing
	// row. It rides the job context into eda.Run and the farm.
	spans *obs.Spans

	mu         sync.Mutex
	state      string
	cached     bool   // report served from the report store
	errDetail  string // terminal failure/cancellation detail
	reportJSON []byte // shared wire-format report bytes (possibly partial)
	cancel     func() // cancels the running job's context
	// enqueued is when the job landed on its shard; queueWait is the
	// enqueue→worker-pop wait, fixed by whichever of the worker's pop
	// and a queued-state cancel ends the wait. A job answered from the
	// report cache at submission never queued: both stay zero.
	enqueued  time.Time
	queueWait time.Duration
	// queuedSlot marks that this job holds one unit of the server's
	// global QueueDepth reservation. Exactly one of the worker's pop and
	// a queued-state cancel releases it (guarded by mu), so a cancelled
	// job waiting in a shard channel stops counting against the bound
	// immediately instead of until a worker drains past it.
	queuedSlot bool
	// wedged marks that the watchdog cancelled this job for event
	// staleness; set before the cancel so the worker can tell a watchdog
	// kill (terminal failed) from a client cancel (terminal cancelled).
	wedged    bool
	wedgeIdle time.Duration
	// userCancel marks a DELETE on a running job, so a cancellation that
	// races the watchdog still finishes as the client-requested cancel.
	userCancel bool
}

// finishLocked moves the job to a terminal state. Callers hold jb.mu.
func (jb *job) finishLocked(state string, reportJSON []byte, cached bool, errDetail string) {
	jb.state = state
	jb.reportJSON = reportJSON
	jb.cached = cached
	jb.errDetail = errDetail
	jb.cancel = nil
}

// terminal reports whether the job has reached a final state.
func (jb *job) terminal() bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	switch jb.state {
	case stateDone, stateFailed, stateCancelled:
		return true
	}
	return false
}

// shardOf maps a content key onto a queue shard. Same key, same shard:
// identical specs keep submission order, which is what makes the worker's
// pop-time report-store check deterministic for concurrent duplicates.
func shardOf(key string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// numbered pairs one event with its position in the job's stream.
// Sequence numbers are 1-based, assigned at Emit, and stable across
// ring eviction — they are what lets an SSE client resume a broken
// stream with Last-Event-ID instead of re-reading (or losing) history.
type numbered struct {
	seq uint64
	ev  eda.Event
}

// broadcaster is one job's event channel: a bounded replay ring feeding
// any number of SSE subscribers. It implements eda.Sink, so eda.Run
// streams straight into it from worker and pipeline goroutines; Emit
// never blocks (a slow subscriber drops events rather than stalling the
// run). The ring grows geometrically up to capMax and is trimmed to the
// events actually emitted when the stream closes, so a quiet job (a
// cache hit emits two events) never pins a full-size buffer and finished
// jobs retain only their real history.
type broadcaster struct {
	// lastEmit is the wall-clock of the most recent Emit (unix nanos) —
	// the staleness clock the per-job watchdog polls without taking the
	// broadcaster lock.
	lastEmit atomic.Int64

	mu      sync.Mutex
	ring    []numbered
	capMax  int
	start   int    // index of the oldest retained event
	n       int    // retained events
	total   uint64 // events ever emitted; the newest event's seq
	subs    map[int]chan numbered
	nextSub int
	closed  bool
}

func newBroadcaster(history int) *broadcaster {
	return &broadcaster{
		capMax: history,
		subs:   make(map[int]chan numbered),
	}
}

// touch resets the staleness clock; Emit does it implicitly, the worker
// does it explicitly when the job starts running.
func (b *broadcaster) touch() {
	b.lastEmit.Store(time.Now().UnixNano())
}

// idle returns how long ago the last event was emitted (or touch called).
func (b *broadcaster) idle() time.Duration {
	return time.Duration(time.Now().UnixNano() - b.lastEmit.Load())
}

// Emit records the event in the replay ring (growing it up to capMax,
// then evicting the oldest) and forwards it to every live subscriber
// without blocking.
func (b *broadcaster) Emit(ev eda.Event) {
	b.touch()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if b.n == len(b.ring) && len(b.ring) < b.capMax {
		grown := len(b.ring) * 2
		if grown == 0 {
			grown = 16
		}
		if grown > b.capMax {
			grown = b.capMax
		}
		b.ring = b.copyOut(grown)
		b.start = 0
	}
	b.total++
	ne := numbered{seq: b.total, ev: ev}
	if b.n < len(b.ring) {
		b.ring[(b.start+b.n)%len(b.ring)] = ne
		b.n++
	} else {
		b.ring[b.start] = ne
		b.start = (b.start + 1) % len(b.ring)
	}
	for _, ch := range b.subs {
		select {
		case ch <- ne:
		default: // slow subscriber: drop rather than stall the run
		}
	}
}

// copyOut returns the retained events in order in a slice of len size
// (size >= b.n). Callers hold b.mu.
func (b *broadcaster) copyOut(size int) []numbered {
	out := make([]numbered, size)
	for i := 0; i < b.n; i++ {
		out[i] = b.ring[(b.start+i)%len(b.ring)]
	}
	return out
}

// droppedCount reports how many events the ring has evicted: every
// emitted event is either retained or was evicted, so the count is
// total minus retained. Slow-subscriber channel drops are a per-
// subscriber affair and not counted here — the replay ring is the
// ground truth a resuming subscriber reads from.
func (b *broadcaster) droppedCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - uint64(b.n)
}

// subscribe returns the retained history after sequence number `after`
// (0 = from the beginning), how many of the requested events the ring
// already evicted, and a live channel that closes when the job
// finishes. The replay snapshot and the registration happen under one
// lock, so no event falls between them. On an already-finished job the
// channel is nil. cancel detaches the subscriber (idempotent).
func (b *broadcaster) subscribe(after uint64, buf int) (replay []numbered, missed uint64, ch chan numbered, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	oldest := b.total - uint64(b.n) + 1 // seq of the oldest retained event
	from := after + 1
	if from < oldest {
		missed = oldest - from
		from = oldest
	}
	if b.total >= from {
		replay = make([]numbered, 0, b.total-from+1)
		for i := int(from - oldest); i < b.n; i++ {
			replay = append(replay, b.ring[(b.start+i)%len(b.ring)])
		}
	}
	if b.closed {
		return replay, missed, nil, func() {}
	}
	id := b.nextSub
	b.nextSub++
	ch = make(chan numbered, buf)
	b.subs[id] = ch
	return replay, missed, ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(ch)
		}
	}
}

// close marks the stream complete, releases every subscriber and trims
// the replay ring to the events actually emitted (the job table retains
// finished jobs, so spare ring capacity would otherwise be pinned until
// eviction). Safe to call more than once.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
	if b.n < len(b.ring) {
		b.ring = b.copyOut(b.n)
		b.start = 0
	}
}
