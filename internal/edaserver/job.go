package edaserver

import (
	"hash/fnv"
	"sync"
	"time"

	"llm4eda/eda"
)

// Job states. queued and running are live; done, failed and cancelled are
// terminal.
const (
	stateQueued    = "queued"
	stateRunning   = "running"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// job is one submitted run moving through the queue.
type job struct {
	id      string
	key     string // content key of the normalized spec
	spec    eda.Spec
	created time.Time
	events  *broadcaster

	mu         sync.Mutex
	state      string
	cached     bool   // report served from the report store
	errDetail  string // terminal failure/cancellation detail
	reportJSON []byte // shared wire-format report bytes (possibly partial)
	cancel     func() // cancels the running job's context
	// queuedSlot marks that this job holds one unit of the server's
	// global QueueDepth reservation. Exactly one of the worker's pop and
	// a queued-state cancel releases it (guarded by mu), so a cancelled
	// job waiting in a shard channel stops counting against the bound
	// immediately instead of until a worker drains past it.
	queuedSlot bool
}

// finishLocked moves the job to a terminal state. Callers hold jb.mu.
func (jb *job) finishLocked(state string, reportJSON []byte, cached bool, errDetail string) {
	jb.state = state
	jb.reportJSON = reportJSON
	jb.cached = cached
	jb.errDetail = errDetail
	jb.cancel = nil
}

// terminal reports whether the job has reached a final state.
func (jb *job) terminal() bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	switch jb.state {
	case stateDone, stateFailed, stateCancelled:
		return true
	}
	return false
}

// shardOf maps a content key onto a queue shard. Same key, same shard:
// identical specs keep submission order, which is what makes the worker's
// pop-time report-store check deterministic for concurrent duplicates.
func shardOf(key string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// broadcaster is one job's event channel: a bounded replay ring feeding
// any number of SSE subscribers. It implements eda.Sink, so eda.Run
// streams straight into it from worker and pipeline goroutines; Emit
// never blocks (a slow subscriber drops events rather than stalling the
// run). The ring grows geometrically up to capMax and is trimmed to the
// events actually emitted when the stream closes, so a quiet job (a
// cache hit emits two events) never pins a full-size buffer and finished
// jobs retain only their real history.
type broadcaster struct {
	mu      sync.Mutex
	ring    []eda.Event
	capMax  int
	start   int // index of the oldest retained event
	n       int // retained events
	dropped uint64
	subs    map[int]chan eda.Event
	nextSub int
	closed  bool
}

func newBroadcaster(history int) *broadcaster {
	return &broadcaster{
		capMax: history,
		subs:   make(map[int]chan eda.Event),
	}
}

// Emit records the event in the replay ring (growing it up to capMax,
// then evicting the oldest) and forwards it to every live subscriber
// without blocking.
func (b *broadcaster) Emit(ev eda.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if b.n == len(b.ring) && len(b.ring) < b.capMax {
		grown := len(b.ring) * 2
		if grown == 0 {
			grown = 16
		}
		if grown > b.capMax {
			grown = b.capMax
		}
		b.ring = b.copyOut(grown)
		b.start = 0
	}
	if b.n < len(b.ring) {
		b.ring[(b.start+b.n)%len(b.ring)] = ev
		b.n++
	} else {
		b.ring[b.start] = ev
		b.start = (b.start + 1) % len(b.ring)
		b.dropped++
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall the run
		}
	}
}

// copyOut returns the retained events in order in a slice of len size
// (size >= b.n). Callers hold b.mu.
func (b *broadcaster) copyOut(size int) []eda.Event {
	out := make([]eda.Event, size)
	for i := 0; i < b.n; i++ {
		out[i] = b.ring[(b.start+i)%len(b.ring)]
	}
	return out
}

// subscribe returns the retained history, how many earlier events the
// ring already evicted, and a live channel that closes when the job
// finishes. The replay snapshot and the registration happen under one
// lock, so no event falls between them. On an already-finished job the
// channel is nil. cancel detaches the subscriber (idempotent).
func (b *broadcaster) subscribe(buf int) (replay []eda.Event, dropped uint64, ch chan eda.Event, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = make([]eda.Event, 0, b.n)
	for i := 0; i < b.n; i++ {
		replay = append(replay, b.ring[(b.start+i)%len(b.ring)])
	}
	if b.closed {
		return replay, b.dropped, nil, func() {}
	}
	id := b.nextSub
	b.nextSub++
	ch = make(chan eda.Event, buf)
	b.subs[id] = ch
	return replay, b.dropped, ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(ch)
		}
	}
}

// close marks the stream complete, releases every subscriber and trims
// the replay ring to the events actually emitted (the job table retains
// finished jobs, so spare ring capacity would otherwise be pinned until
// eviction). Safe to call more than once.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, ch := range b.subs {
		delete(b.subs, id)
		close(ch)
	}
	if b.n < len(b.ring) {
		b.ring = b.copyOut(b.n)
		b.start = 0
	}
}
