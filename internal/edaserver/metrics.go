package edaserver

import (
	"bytes"
	"io"
	"net/http"
	"sort"
	"strings"

	"llm4eda/internal/obs"
	"llm4eda/internal/simfarm"
)

// serverMetrics is the server's corner of the obs registry: the latency
// histograms that record as jobs move (everything else — counters the
// server already keeps as atomics, farm/VM/fault stats owned by other
// packages — is harvested live at scrape time by handleMetrics, so no
// state is kept twice).
type serverMetrics struct {
	reg *obs.Registry
	// jobDur is submit-to-terminal latency across all jobs.
	jobDur *obs.Histogram
	// phases maps the canonical phases (plus pipeline) to their
	// aggregate histograms, pre-resolved so the per-job terminal fold is
	// a map read, not a registry lookup.
	phases map[string]*obs.Histogram
}

const phaseFamily = "llm4eda_job_phase_seconds"
const phaseHelp = "Per-phase latency breakdown of finished jobs (phases that ran; a cached hit records no sim)."

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		jobDur: reg.Histogram("llm4eda_job_duration_seconds",
			"Submit-to-terminal job latency."),
		phases: make(map[string]*obs.Histogram),
	}
	for _, p := range append(obs.JobPhases(), obs.PhasePipeline) {
		m.phases[p] = reg.Histogram(phaseFamily, phaseHelp, "phase", p)
	}
	return m
}

// phase returns the aggregate histogram of one phase, falling back to a
// registry lookup for non-canonical phases a pipeline may record.
func (m *serverMetrics) phase(name string) *obs.Histogram {
	if h, ok := m.phases[name]; ok {
		return h
	}
	return m.reg.Histogram(phaseFamily, phaseHelp, "phase", name)
}

// queueWaitQuantile reads the aggregate queue-wait distribution (for
// /v1/stats, in milliseconds).
func (m *serverMetrics) queueWaitQuantileMS(q float64) float64 {
	return float64(m.phases[obs.PhaseQueueWait].Quantile(q)) / 1e6
}

// handleMetrics serves GET /v1/metrics: the full telemetry surface in
// Prometheus text exposition format — the registry's histograms plus
// every counter harvested live from the server, the report store, the
// farm (cache layers, lint screen, VM dispatch tiers) and the fault
// injector. One scrape answers "what is this service doing": job flow,
// latency distributions, queue pressure, cache economics, chaos damage.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer
	s.metrics.reg.Expose(&b)
	s.harvestMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}

func (s *Server) harvestMetrics(w io.Writer) {
	// Job flow.
	obs.WriteFamily(w, "llm4eda_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.",
		obs.KindCounter, obs.Sample{Value: float64(s.submitted.Load())})
	obs.WriteFamily(w, "llm4eda_jobs_finished_total", "Jobs reaching a terminal state, by state.",
		obs.KindCounter,
		obs.Sample{Labels: []string{"state", stateDone}, Value: float64(s.completed.Load())},
		obs.Sample{Labels: []string{"state", stateFailed}, Value: float64(s.failed.Load())},
		obs.Sample{Labels: []string{"state", stateCancelled}, Value: float64(s.cancelled.Load())})
	obs.WriteFamily(w, "llm4eda_jobs_rejected_total", "Submissions rejected by queue backpressure or drain.",
		obs.KindCounter, obs.Sample{Value: float64(s.rejected.Load())})

	// Queue and job-table pressure.
	states := map[string]int{}
	var eventsDropped uint64
	s.mu.Lock()
	for _, jb := range s.jobs {
		jb.mu.Lock()
		states[jb.state]++
		jb.mu.Unlock()
		eventsDropped += jb.events.droppedCount()
	}
	s.mu.Unlock()
	stateSamples := make([]obs.Sample, 0, 5)
	for _, st := range []string{stateQueued, stateRunning, stateDone, stateFailed, stateCancelled} {
		stateSamples = append(stateSamples, obs.Sample{Labels: []string{"state", st}, Value: float64(states[st])})
	}
	obs.WriteFamily(w, "llm4eda_jobs", "Jobs retained in the job table, by state.",
		obs.KindGauge, stateSamples...)
	obs.WriteFamily(w, "llm4eda_queue_depth", "Jobs accepted onto the queue but not yet started.",
		obs.KindGauge, obs.Sample{Value: float64(s.queueDepth())})
	obs.WriteFamily(w, "llm4eda_workers", "Queue shards, each drained by one worker.",
		obs.KindGauge, obs.Sample{Value: float64(len(s.shards))})
	draining := 0.0
	if s.isDraining() {
		draining = 1
	}
	obs.WriteFamily(w, "llm4eda_draining", "1 while the server is draining (intake rejected).",
		obs.KindGauge, obs.Sample{Value: draining})

	// Resilience counters.
	obs.WriteFamily(w, "llm4eda_panics_total", "Pipeline panics recovered into failed jobs.",
		obs.KindCounter, obs.Sample{Value: float64(s.panics.Load())})
	obs.WriteFamily(w, "llm4eda_watchdog_kills_total", "Jobs cancelled by the staleness watchdog.",
		obs.KindCounter, obs.Sample{Value: float64(s.watchdogKills.Load())})
	obs.WriteFamily(w, "llm4eda_transient_retries_total", "Transient-failure retries absorbed inside candidate loops.",
		obs.KindCounter, obs.Sample{Value: float64(s.retries.Load())})
	obs.WriteFamily(w, "llm4eda_store_fails_total", "Report-store writes dropped (fault-injected).",
		obs.KindCounter, obs.Sample{Value: float64(s.storeFails.Load())})
	obs.WriteFamily(w, "llm4eda_events_dropped_total", "SSE replay-ring evictions summed over retained jobs.",
		obs.KindCounter, obs.Sample{Value: float64(eventsDropped)})

	// Report store (cross-request dedup layer).
	obs.WriteFamily(w, "llm4eda_report_cache_hits_total", "Report-store hits (submit-time and pop-time dedup).",
		obs.KindCounter, obs.Sample{Value: float64(s.store.hits.Load())})
	obs.WriteFamily(w, "llm4eda_report_cache_misses_total", "Report-store misses.",
		obs.KindCounter, obs.Sample{Value: float64(s.store.miss.Load())})
	obs.WriteFamily(w, "llm4eda_report_cache_entries", "Reports retained in the store.",
		obs.KindGauge, obs.Sample{Value: float64(s.store.len())})

	// Farm cache layers, lint screen, recovered worker panics.
	fs := s.opts.Farm.Stats()
	layers := []struct {
		name string
		st   simfarm.Stats
	}{
		{"parse", fs.Parses},
		{"design", fs.Designs},
		{"result", fs.Results},
		{"lint", fs.Lints},
	}
	kinds := []struct {
		suffix, help string
		get          func(simfarm.Stats) float64
	}{
		{"hits_total", "Farm cache hits, by layer.", func(st simfarm.Stats) float64 { return float64(st.Hits) }},
		{"misses_total", "Farm cache misses, by layer.", func(st simfarm.Stats) float64 { return float64(st.Misses) }},
		{"evictions_total", "Farm cache evictions, by layer.", func(st simfarm.Stats) float64 { return float64(st.Evictions) }},
		{"computes_total", "Farm cache value constructions (singleflight-deduplicated), by layer.", func(st simfarm.Stats) float64 { return float64(st.Computes) }},
	}
	for _, k := range kinds {
		samples := make([]obs.Sample, 0, len(layers))
		for _, l := range layers {
			samples = append(samples, obs.Sample{Labels: []string{"layer", l.name}, Value: k.get(l.st)})
		}
		obs.WriteFamily(w, "llm4eda_farm_"+k.suffix, k.help, obs.KindCounter, samples...)
	}
	entrySamples := make([]obs.Sample, 0, len(layers))
	for _, l := range layers {
		entrySamples = append(entrySamples, obs.Sample{Labels: []string{"layer", l.name}, Value: float64(l.st.Len)})
	}
	obs.WriteFamily(w, "llm4eda_farm_entries", "Farm cache entries retained, by layer.",
		obs.KindGauge, entrySamples...)
	obs.WriteFamily(w, "llm4eda_farm_lint_rejects_total", "Candidates rejected by pre-simulation lint screening.",
		obs.KindCounter, obs.Sample{Value: float64(fs.LintRejects)})
	obs.WriteFamily(w, "llm4eda_farm_panics_total", "Farm worker panics recovered into job results.",
		obs.KindCounter, obs.Sample{Value: float64(fs.Panics)})

	// Tiered-VM dispatch coverage (previously only visible via -vmstats).
	obs.WriteFamily(w, "llm4eda_vm_ops_total", "VM bytecode operations executed, by dispatch tier.",
		obs.KindCounter,
		obs.Sample{Labels: []string{"tier", "a"}, Value: float64(fs.VM.TierAOps)},
		obs.Sample{Labels: []string{"tier", "b"}, Value: float64(fs.VM.TierBOps)},
		obs.Sample{Labels: []string{"tier", "generic"}, Value: float64(fs.VM.GenericOps)})
	obs.WriteFamily(w, "llm4eda_vm_superblocks", "Superinstruction blocks formed across compiled designs.",
		obs.KindGauge, obs.Sample{Value: float64(fs.VM.SuperBlocks)})
	obs.WriteFamily(w, "llm4eda_vm_fuse_skipped_total", "Fusion candidates skipped by the superblock builder.",
		obs.KindCounter, obs.Sample{Value: float64(fs.VM.FuseSkipped)})
	obs.WriteFamily(w, "llm4eda_vm_promotions_total", "Two-state specialization promotions.",
		obs.KindCounter, obs.Sample{Value: float64(fs.VM.Promotions)})

	// Fault injector firings, one sample per armed point/kind. Only
	// present when chaos is armed — a production scrape carries no fault
	// family at all.
	if s.opts.Faults != nil {
		fired := s.opts.Faults.Stats()
		keys := make([]string, 0, len(fired))
		for k := range fired {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		samples := make([]obs.Sample, 0, len(keys))
		for _, k := range keys {
			point, kind, _ := strings.Cut(k, "/")
			samples = append(samples, obs.Sample{
				Labels: []string{"point", point, "kind", kind},
				Value:  float64(fired[k]),
			})
		}
		obs.WriteFamily(w, "llm4eda_faults_fired_total", "Injected fault firings, by hook point and kind.",
			obs.KindCounter, samples...)
	}
}
