package edaserver_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llm4eda/eda"
	"llm4eda/eda/client"
	"llm4eda/internal/edaserver"
	"llm4eda/internal/faultinject"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/testutil"
)

// chaosPlan is the seeded fault mix TestChaosSurvival runs under: every
// fault class the framework knows, spread over every hook layer —
// pipeline panics, farm worker panics, transient flakes, wedged stages,
// slow simulations, SSE disconnects and report-store write failures.
func chaosPlan() faultinject.Plan {
	return faultinject.Plan{
		Seed: 0xC0FFEE,
		Faults: []faultinject.Fault{
			{Point: faultinject.PointServerJob, Kind: faultinject.KindPanic, Every: 9},
			{Point: faultinject.PointEDAProblem, Kind: faultinject.KindError, Every: 6},
			{Point: faultinject.PointEDAProblem, Kind: faultinject.KindWedge, Every: 11, Max: 2},
			{Point: faultinject.PointFarmJob, Kind: faultinject.KindPanic, Every: 25, Max: 3},
			{Point: faultinject.PointFarmJob, Kind: faultinject.KindDelay, Every: 23, Delay: 5 * time.Millisecond},
			{Point: faultinject.PointServerSSE, Kind: faultinject.KindDrop, Every: 25},
			{Point: faultinject.PointServerStore, Kind: faultinject.KindDrop, Every: 3},
		},
	}
}

// chaosOutcome is one accepted job's terminal observation.
type chaosOutcome struct {
	key    string // spec identity (framework/problem/seed/k)
	state  string
	cached bool
	report []byte
}

// TestChaosSurvival is the acceptance scenario behind `make chaos-test`:
// mixed realistic traffic — hot duplicates, cold uniques, cancellations,
// live SSE subscribers — against the seeded fault plan above. The
// service must absorb every injected failure: all accepted jobs reach a
// terminal state, the process keeps answering, cached reports stay
// byte-consistent with the run that produced them, the resilience
// counters in /v1/stats account for the injected faults, and shutdown
// restores the goroutine baseline. `-short` (the CI chaos-smoke) runs
// the same storm at reduced scale.
func TestChaosSurvival(t *testing.T) {
	nJobs := 160
	if testing.Short() {
		nJobs = 48
	}
	baseline := runtime.NumGoroutine()

	in := faultinject.New(chaosPlan())
	// eda.Run executes on the process-default farm regardless of
	// Options.Farm, so the farm-layer hook arms there — and MUST be
	// cleared before the test returns.
	simfarm.Default().SetFaults(in)
	defer simfarm.Default().SetFaults(nil)
	farmBase := simfarm.Default().Stats()

	srv := edaserver.New(edaserver.Options{
		Workers:    4,
		QueueDepth: 64,
		Watchdog:   200 * time.Millisecond,
		Faults:     in,
	})
	ts := httptest.NewServer(srv)
	var transports []*http.Transport
	newChaosClient := func() *client.Client {
		tr := &http.Transport{}
		transports = append(transports, tr)
		return client.New(ts.URL,
			client.WithHTTPClient(&http.Client{Transport: tr}),
			client.WithPollInterval(5*time.Millisecond),
			client.WithRetry(3, 5*time.Millisecond),
			client.WithSSEReconnect(8))
	}
	clients := make([]*client.Client, 4)
	for i := range clients {
		clients[i] = newChaosClient()
	}
	defer func() {
		for _, tr := range transports {
			tr.CloseIdleConnections()
		}
	}()

	// Traffic shape, index-driven so the mix is deterministic: every
	// third submission is one of two hot specs (cache traffic), the rest
	// are cold uniques across three problems; every 7th job is cancelled
	// right after submission; every 5th gets a live SSE subscriber.
	problems := []string{"mux4", "adder4", "counter8"}
	trafficSpec := func(i int) eda.Spec {
		if i%3 == 0 {
			return eda.Spec{Framework: "vrank", Problem: "mux4",
				Run: eda.RunSpec{Seed: uint64(1 + i%2)}, Params: map[string]float64{"k": 2}}
		}
		return eda.Spec{Framework: "vrank", Problem: problems[i%len(problems)],
			Run: eda.RunSpec{Seed: uint64(1000 + i)}, Params: map[string]float64{"k": 2}}
	}

	ctx, cancelAll := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancelAll()

	var mu sync.Mutex
	var outcomes []chaosOutcome
	var rejected, streamsOK, streamsFailed atomic.Int64
	var wg, sseWG sync.WaitGroup
	const submitters = 16
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w%len(clients)]
			for i := w; i < nJobs; i += submitters {
				spec := trafficSpec(i)
				job, err := cl.Submit(ctx, spec)
				if err != nil {
					if client.IsQueueFull(err) {
						rejected.Add(1)
						continue
					}
					t.Errorf("job %d submit: %v", i, err)
					continue
				}
				if i%7 == 3 {
					if _, err := cl.Cancel(ctx, job.ID); err != nil {
						t.Errorf("job %d cancel: %v", i, err)
					}
				}
				if i%5 == 1 {
					sseWG.Add(1)
					go func(id string) {
						defer sseWG.Done()
						if _, err := cl.Events(ctx, id, eda.SinkFunc(func(eda.Event) {})); err != nil {
							streamsFailed.Add(1)
						} else {
							streamsOK.Add(1)
						}
					}(job.ID)
				}
				final, err := cl.Wait(ctx, job.ID)
				if err != nil {
					t.Errorf("job %d (%s) never reached a terminal state: %v", i, job.ID, err)
					continue
				}
				mu.Lock()
				outcomes = append(outcomes, chaosOutcome{
					key: fmt.Sprintf("%s/%s/%d/%v", spec.Framework, spec.Problem,
						spec.Run.Seed, spec.Params["k"]),
					state:  final.State,
					cached: final.Cached,
					report: final.Report,
				})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	sseWG.Wait()

	// The process survived: the API still answers.
	st, err := clients[0].Stats(ctx)
	if err != nil {
		t.Fatalf("stats after the storm: %v", err)
	}
	t.Logf("chaos: %d accepted, %d rejected, faults fired: %s", len(outcomes), rejected.Load(), in)
	t.Logf("chaos: stats %+v", *st)
	t.Logf("chaos: sse streams ok=%d failed=%d", streamsOK.Load(), streamsFailed.Load())

	// Every accepted job is terminal.
	for _, o := range outcomes {
		switch o.state {
		case "done", "failed", "cancelled":
		default:
			t.Errorf("job with key %s left non-terminal: %q", o.key, o.state)
		}
	}
	if len(outcomes)+int(rejected.Load()) != nJobs {
		t.Errorf("accounted jobs %d + rejected %d != submitted %d",
			len(outcomes), rejected.Load(), nJobs)
	}

	// The injected faults actually landed, and the resilience counters
	// account for them.
	fired := in.Stats()
	classes := map[faultinject.Kind]bool{}
	for _, f := range chaosPlan().Faults {
		if fired[string(f.Point)+"/"+string(f.Kind)] > 0 {
			classes[f.Kind] = true
		}
	}
	if len(classes) < 4 {
		t.Errorf("only %d fault classes fired (%v); the storm was too gentle: %s", len(classes), classes, in)
	}
	if st.Panics < 1 {
		t.Error("no recovered pipeline panics in /v1/stats")
	}
	if st.WatchdogKills < 1 {
		t.Error("no watchdog kills in /v1/stats despite wedge faults")
	}
	if st.Retries < 1 {
		t.Error("no absorbed transient retries in /v1/stats despite error faults")
	}
	if st.StoreFails < 1 {
		t.Error("no store write failures in /v1/stats despite store faults")
	}
	if farmPanics := st.Farm.Panics - farmBase.Panics; farmPanics < 1 {
		t.Error("no recovered farm worker panics in /v1/stats")
	}
	if streamsOK.Load() == 0 {
		t.Error("no SSE subscriber survived the storm")
	}

	// Report-cache byte consistency: within one spec identity, every
	// cached reply must be byte-identical, and must match some run that
	// actually computed it (recomputes after a dropped store write embed
	// fresh timings, so "some", not "every").
	byKey := map[string][]chaosOutcome{}
	for _, o := range outcomes {
		if o.state == "done" {
			byKey[o.key] = append(byKey[o.key], o)
		}
	}
	for key, group := range byKey {
		var cached, computed [][]byte
		for _, o := range group {
			if o.cached {
				cached = append(cached, o.report)
			} else {
				computed = append(computed, o.report)
			}
		}
		if len(cached) > 0 {
			for _, c := range cached[1:] {
				if !bytes.Equal(c, cached[0]) {
					t.Errorf("%s: cached replies diverge", key)
				}
			}
			match := false
			for _, c := range computed {
				if bytes.Equal(c, cached[0]) {
					match = true
					break
				}
			}
			if !match {
				t.Errorf("%s: cached reply matches none of the %d computed reports", key, len(computed))
			}
		}
	}

	// Orderly end: drain, close, and the goroutine count comes home.
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer sdCancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		t.Fatalf("Shutdown after the storm: %v", err)
	}
	ts.Close()
	for _, tr := range transports {
		tr.CloseIdleConnections()
	}
	testutil.CheckNoGoroutineLeak(t, baseline)
}
