package edaserver_test

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"llm4eda/eda"
	"llm4eda/eda/client"
	"llm4eda/internal/core"
	"llm4eda/internal/edaserver"
	"llm4eda/internal/faultinject"
)

// TestWorkerPanicIsolation: an injected panic inside the pipeline stack
// costs exactly one failed job — the panic value and a stack land in the
// job's error, the process and the worker survive, and the next job on
// the same worker runs clean.
func TestWorkerPanicIsolation(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
		{Point: faultinject.PointServerJob, Kind: faultinject.KindPanic, Every: 1, Max: 1},
	}})
	h := newHarness(t, edaserver.Options{Workers: 1, Faults: in})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, quickSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, h.c, job.ID, "failed")
	if !strings.Contains(final.Error, "panic") {
		t.Errorf("panicked job error = %q, want a panic detail", final.Error)
	}

	// The worker that recovered the panic is still serving.
	next, err := h.c.Submit(ctx, quickSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	if done := waitState(t, h.c, next.ID, "done"); done.Error != "" {
		t.Errorf("post-panic job error: %s", done.Error)
	}
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Panics != 1 || st.Failed != 1 || st.Completed != 1 {
		t.Errorf("stats panics=%d failed=%d completed=%d, want 1/1/1", st.Panics, st.Failed, st.Completed)
	}
}

// TestLeaderPanicFollowerCleanFailure: two concurrent submissions of the
// same spec serialize on one shard. The leader's pipeline panics; the
// follower must neither hang nor inherit the panic — it runs on its own
// and completes clean. (The farm-level singleflight unwind contract this
// rides on is pinned in simfarm's own suite; this is the service-level
// proof.) Run under -race via make test-race.
func TestLeaderPanicFollowerCleanFailure(t *testing.T) {
	reg := eda.NewRegistry()
	var calls atomic.Int32
	if err := reg.Register(eda.Pipeline{
		Name: "once-explosive",
		Run: func(ctx context.Context, spec eda.Spec) (*eda.Report, error) {
			if calls.Add(1) == 1 {
				panic("leader detonated")
			}
			return &eda.Report{OK: true, Summary: "follower fine"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, edaserver.Options{Workers: 2, Registry: reg})
	c2 := h.newClient(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	spec := eda.Spec{Framework: "once-explosive"}
	var jobs [2]*client.Job
	var errs [2]error
	var wg sync.WaitGroup
	for i, cl := range []*client.Client{h.c, c2} {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			job, err := cl.Submit(ctx, spec)
			if err == nil {
				job, err = cl.Wait(ctx, job.ID)
			}
			jobs[i], errs[i] = job, err
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d hung or errored: %v", i, err)
		}
	}
	var panicked, clean int
	for _, job := range jobs {
		switch job.State {
		case "failed":
			panicked++
			if !strings.Contains(job.Error, "panic") || !strings.Contains(job.Error, "leader detonated") {
				t.Errorf("failed job error = %q, want the recovered panic", job.Error)
			}
		case "done":
			clean++
			if job.Error != "" {
				t.Errorf("clean job carries error %q", job.Error)
			}
		default:
			t.Errorf("job %s in non-terminal state %q", job.ID, job.State)
		}
	}
	if panicked != 1 || clean != 1 {
		t.Fatalf("panicked=%d clean=%d, want exactly one of each", panicked, clean)
	}
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Panics != 1 {
		t.Errorf("stats panics = %d, want 1", st.Panics)
	}
}

// TestWatchdogKillsWedgedJob: a pipeline that goes silent past the
// staleness window is cancelled by the watchdog and finishes failed with
// the structured wedge detail — not "cancelled", nobody asked it to stop.
func TestWatchdogKillsWedgedJob(t *testing.T) {
	reg, _ := blockingRegistry(t) // never released: only the watchdog ends it
	h := newHarness(t, edaserver.Options{Workers: 1, Registry: reg, Watchdog: 80 * time.Millisecond})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, eda.Spec{Framework: "block"})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, h.c, job.ID, "failed")
	if !strings.Contains(final.Error, "watchdog") || !strings.Contains(final.Error, "wedged") {
		t.Errorf("wedged job error = %q, want the watchdog detail", final.Error)
	}
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.WatchdogKills != 1 || st.Failed != 1 || st.Cancelled != 0 {
		t.Errorf("stats watchdog_kills=%d failed=%d cancelled=%d, want 1/1/0",
			st.WatchdogKills, st.Failed, st.Cancelled)
	}
}

// TestWatchdogSparesChattyJob: steady event emission resets the
// staleness clock, so a job that runs longer than the window but never
// goes quiet is left alone.
func TestWatchdogSparesChattyJob(t *testing.T) {
	reg := eda.NewRegistry()
	if err := reg.Register(eda.Pipeline{
		Name: "chatty",
		Run: func(ctx context.Context, spec eda.Spec) (*eda.Report, error) {
			for i := 0; i < 6; i++ {
				core.Emit(ctx, core.Event{Kind: core.EventNote, Framework: "chatty",
					Detail: fmt.Sprintf("beat %d", i)})
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(30 * time.Millisecond):
				}
			}
			return &eda.Report{OK: true, Summary: "kept talking"}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, edaserver.Options{Workers: 1, Registry: reg, Watchdog: 100 * time.Millisecond})

	job, err := h.c.Submit(context.Background(), eda.Spec{Framework: "chatty"})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitState(t, h.c, job.ID, "done"); final.Error != "" {
		t.Errorf("chatty job error: %s", final.Error)
	}
	st, err := h.c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.WatchdogKills != 0 {
		t.Errorf("watchdog killed a live job %d times", st.WatchdogKills)
	}
}

// TestUserCancelBeatsWatchdog: a client DELETE on a wedged job still
// finishes "cancelled" even when the watchdog is also closing in — the
// explicit request wins the race.
func TestUserCancelBeatsWatchdog(t *testing.T) {
	reg, _ := blockingRegistry(t)
	h := newHarness(t, edaserver.Options{Workers: 1, Registry: reg, Watchdog: 10 * time.Second})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, eda.Spec{Framework: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, job.ID, "running")
	if _, err := h.c.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, h.c, job.ID, "cancelled")
	if strings.Contains(final.Error, "watchdog") {
		t.Errorf("user cancel relabelled as a watchdog kill: %q", final.Error)
	}
}

// TestSSEResumeAfterDisconnect: the injected SSE fault drops the stream
// mid-replay; the reconnecting client resumes via Last-Event-ID and
// still observes the identical event sequence a clean subscriber sees.
func TestSSEResumeAfterDisconnect(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
		{Point: faultinject.PointServerSSE, Kind: faultinject.KindDrop, Every: 4, Max: 1},
	}})
	h := newHarness(t, edaserver.Options{Workers: 1, Faults: in})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, quickSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, job.ID, "done")

	collect := func() ([]eda.Event, *client.Job) {
		t.Helper()
		var mu sync.Mutex
		var evs []eda.Event
		final, err := h.c.Events(ctx, job.ID, eda.SinkFunc(func(ev eda.Event) {
			mu.Lock()
			evs = append(evs, ev)
			mu.Unlock()
		}))
		if err != nil {
			t.Fatalf("Events: %v", err)
		}
		return evs, final
	}
	// First subscription eats the drop fault and must reconnect-resume.
	faulted, final := collect()
	if final.State != "done" {
		t.Errorf("end frame state = %q", final.State)
	}
	if got := in.Stats()["server.sse/drop"]; got != 1 {
		t.Fatalf("sse drop fault fired %d times, want 1 (job emitted too few events?)", got)
	}
	// Second subscription is clean (Max exhausted): the ground truth.
	clean, _ := collect()
	if len(faulted) != len(clean) {
		t.Fatalf("resumed stream delivered %d events, clean stream %d", len(faulted), len(clean))
	}
	for i := range clean {
		if faulted[i].Kind != clean[i].Kind || faulted[i].Detail != clean[i].Detail {
			t.Errorf("event %d diverges across resume: %+v vs %+v", i, faulted[i], clean[i])
		}
	}
}

// TestSSEAfterQueryReplay: the `after` query parameter (the curl-side
// twin of Last-Event-ID) starts the replay just past the given sequence
// number.
func TestSSEAfterQueryReplay(t *testing.T) {
	h := newHarness(t, edaserver.Options{Workers: 1})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, quickSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, job.ID, "done")

	resp, err := http.Get(h.ts.URL + "/v1/jobs/" + job.ID + "/events?after=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ids []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "id:") {
			ids = append(ids, strings.TrimSpace(strings.TrimPrefix(sc.Text(), "id:")))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || ids[0] != "3" {
		t.Errorf("replay after=2 starts at ids %v, want first id 3", ids)
	}
}

// TestDroppedEventsSurfaced: a replay ring smaller than the run's event
// count must evict — and the eviction count must be visible on the job
// status, in /v1/stats, and on the SSE end frame, with the replay
// holding exactly the retained tail.
func TestDroppedEventsSurfaced(t *testing.T) {
	const history = 4
	h := newHarness(t, edaserver.Options{Workers: 1, EventHistory: history})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, quickSpec(41))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, h.c, job.ID, "done")
	if final.EventsDropped == 0 {
		t.Fatalf("job status reports no dropped events despite history %d", history)
	}
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsDropped != final.EventsDropped {
		t.Errorf("stats events_dropped = %d, job reports %d", st.EventsDropped, final.EventsDropped)
	}
	var n atomic.Int64
	endFrame, err := h.c.Events(ctx, job.ID, eda.SinkFunc(func(eda.Event) { n.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != history {
		t.Errorf("late subscriber replayed %d events, want the retained %d", n.Load(), history)
	}
	if endFrame.EventsDropped != final.EventsDropped {
		t.Errorf("end frame events_dropped = %d, want %d", endFrame.EventsDropped, final.EventsDropped)
	}
}

// TestStoreWriteFaultRecompute: a dropped report-store write costs one
// recomputation, never a wrong answer — the resubmission runs fresh,
// and once the store write goes through, the third submission is served
// from cache again.
func TestStoreWriteFaultRecompute(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Faults: []faultinject.Fault{
		{Point: faultinject.PointServerStore, Kind: faultinject.KindDrop, Every: 1, Max: 1},
	}})
	h := newHarness(t, edaserver.Options{Workers: 1, Faults: in})
	ctx := context.Background()

	first, err := h.c.Submit(ctx, quickSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, first.ID, "done")

	second, err := h.c.Submit(ctx, quickSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("second submission served from a store whose write was dropped")
	}
	waitState(t, h.c, second.ID, "done")

	third, err := h.c.Submit(ctx, quickSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || third.State != "done" {
		t.Errorf("third submission cached=%v state=%q, want immediate cached done", third.Cached, third.State)
	}
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreFails != 1 {
		t.Errorf("stats store_fails = %d, want 1", st.StoreFails)
	}
	if st.Completed != 3 {
		t.Errorf("completed = %d, want 3", st.Completed)
	}
}
