package edaserver_test

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"llm4eda/eda"
	"llm4eda/eda/client"
	"llm4eda/internal/edaserver"
	"llm4eda/internal/testutil"
)

// scrapeMetrics fetches /v1/metrics raw and returns the body plus a
// value lookup map keyed by the full sample name (labels included).
func scrapeMetrics(t *testing.T, baseURL string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape: content type %q, want text/plain exposition", ct)
	}
	vals := map[string]float64{}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line)
		body.WriteByte('\n')
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("scrape: malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("scrape: non-numeric value in %q: %v", line, err)
		}
		vals[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	return body.String(), vals
}

// TestMetricsScrapeFormat runs real traffic (a fresh job and a cached
// resubmission) and then asserts GET /v1/metrics is well-formed
// Prometheus text exposition covering the acceptance surface: job
// counters, phase latency summaries with p50/p99, queue depth and wait,
// report-cache and farm layers, VM tiers and resilience counters.
func TestMetricsScrapeFormat(t *testing.T) {
	defer testutil.GoroutineGuard(t)
	h := newHarness(t, edaserver.Options{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	first, err := h.c.Submit(ctx, quickSpec(700))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if first, err = h.c.Wait(ctx, first.ID); err != nil || first.State != "done" {
		t.Fatalf("first job: state=%v err=%v", first.State, err)
	}
	second, err := h.c.Submit(ctx, quickSpec(700))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if second, err = h.c.Wait(ctx, second.ID); err != nil || !second.Cached {
		t.Fatalf("resubmission not served cached: state=%v cached=%v err=%v",
			second.State, second.Cached, err)
	}

	body, vals := scrapeMetrics(t, h.ts.URL)

	// Structural validity: every sample line parses, every family has
	// exactly one HELP and one TYPE line, TYPE precedes its samples.
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.-]+$`)
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			fam := strings.Fields(line)[2]
			if typed[fam] {
				t.Errorf("duplicate TYPE line for family %s", fam)
			}
			typed[fam] = true
		case strings.HasPrefix(line, "# HELP "), line == "":
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("malformed sample line %q", line)
				continue
			}
			fam := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				fam = line[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(fam, "_sum"), "_count")
			if !typed[fam] && !typed[base] {
				t.Errorf("sample %q appears before its TYPE line", line)
			}
		}
	}

	// Job counters: two submissions, two done (one cached).
	if got := vals["llm4eda_jobs_submitted_total"]; got != 2 {
		t.Errorf("jobs_submitted_total = %v, want 2", got)
	}
	if got := vals[`llm4eda_jobs_finished_total{state="done"}`]; got != 2 {
		t.Errorf(`jobs_finished_total{state="done"} = %v, want 2`, got)
	}
	if got := vals["llm4eda_job_duration_seconds_count"]; got != 2 {
		t.Errorf("job_duration_seconds_count = %v, want 2", got)
	}

	// Phase latency summaries with p50 and p99 quantiles. The fresh run
	// simulated, so the sim phase has one recording with nonzero time.
	for _, q := range []string{"0.5", "0.99"} {
		name := fmt.Sprintf(`llm4eda_job_phase_seconds{phase="sim",quantile=%q}`, q)
		if v, ok := vals[name]; !ok || v <= 0 {
			t.Errorf("%s = %v (present=%v), want > 0", name, v, ok)
		}
	}
	if got := vals[`llm4eda_job_phase_seconds_count{phase="sim"}`]; got != 1 {
		t.Errorf("sim phase count = %v, want 1 (cached job must not fold a zero sim)", got)
	}
	// Both jobs waited in the queue (the cached one was answered at
	// submit time and never queued — only the first folds a queue wait).
	if got := vals[`llm4eda_job_phase_seconds_count{phase="queue_wait"}`]; got != 1 {
		t.Errorf("queue_wait phase count = %v, want 1", got)
	}

	// Queue gauges and farm/VM/cache families exist.
	for _, name := range []string{
		"llm4eda_queue_depth",
		"llm4eda_workers",
		`llm4eda_jobs{state="done"}`,
		`llm4eda_farm_hits_total{layer="result"}`,
		`llm4eda_farm_entries{layer="design"}`,
		`llm4eda_vm_ops_total{tier="a"}`,
		"llm4eda_vm_superblocks",
		"llm4eda_panics_total",
		"llm4eda_watchdog_kills_total",
		"llm4eda_transient_retries_total",
		"llm4eda_events_dropped_total",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("exposition lacks %s", name)
		}
	}
	if got := vals[`llm4eda_jobs{state="done"}`]; got != 2 {
		t.Errorf(`jobs{state="done"} gauge = %v, want 2`, got)
	}
	// Report cache saw the resubmission: at least the submit-time hit.
	if got := vals["llm4eda_report_cache_hits_total"]; got < 1 {
		t.Errorf("report_cache_hits_total = %v, want >= 1", got)
	}
	// The VM executed real bytecode for the fresh run.
	tierOps := vals[`llm4eda_vm_ops_total{tier="a"}`] +
		vals[`llm4eda_vm_ops_total{tier="b"}`] +
		vals[`llm4eda_vm_ops_total{tier="generic"}`]
	if tierOps <= 0 {
		t.Errorf("vm_ops_total summed over tiers = %v, want > 0", tierOps)
	}
	// No chaos armed: the fault family must be absent entirely.
	if strings.Contains(body, "llm4eda_faults_fired_total") {
		t.Errorf("fault family present without an injector")
	}
}

// TestSpanBreakdownCompleteness checks the per-job phase contract:
// every terminal job reports all five canonical phases in flow order; a
// fresh run shows nonzero compile+sim, and a cached resubmission shows
// every phase present with zero sim time and zero recordings.
func TestSpanBreakdownCompleteness(t *testing.T) {
	defer testutil.GoroutineGuard(t)
	h := newHarness(t, edaserver.Options{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	wantPhases := []string{"queue_wait", "lint_screen", "compile", "sim", "store_write"}
	checkPhases := func(t *testing.T, jb *client.Job) map[string]client.Phase {
		t.Helper()
		got := map[string]client.Phase{}
		for _, p := range jb.Phases {
			got[p.Phase] = p
		}
		for i, want := range wantPhases {
			if _, ok := got[want]; !ok {
				t.Errorf("job %s (%s) breakdown lacks phase %s: %+v", jb.ID, jb.State, want, jb.Phases)
				continue
			}
			if i < len(jb.Phases) && jb.Phases[i].Phase != want {
				t.Errorf("job %s phase[%d] = %s, want %s (flow order)", jb.ID, i, jb.Phases[i].Phase, want)
			}
		}
		return got
	}

	fresh, err := h.c.Submit(ctx, quickSpec(701))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if fresh, err = h.c.Wait(ctx, fresh.ID); err != nil || fresh.State != "done" {
		t.Fatalf("fresh job: state=%v err=%v", fresh.State, err)
	}
	ph := checkPhases(t, fresh)
	if ph["sim"].N == 0 || ph["sim"].MS <= 0 {
		t.Errorf("fresh run sim phase = %+v, want recorded nonzero time", ph["sim"])
	}
	if ph["compile"].N == 0 {
		t.Errorf("fresh run compile phase = %+v, want recorded", ph["compile"])
	}
	if ph["store_write"].N != 1 {
		t.Errorf("fresh run store_write N = %d, want 1", ph["store_write"].N)
	}
	if ph["queue_wait"].N != 1 {
		t.Errorf("fresh run queue_wait N = %d, want 1", ph["queue_wait"].N)
	}
	// vrank runs candidates through the pipeline; the eda.Run wrapper
	// adds its own pipeline span on top of the canonical five.
	if pp, ok := ph["pipeline"]; !ok || pp.MS <= 0 {
		t.Errorf("fresh run lacks a pipeline span: %+v", fresh.Phases)
	}

	cached, err := h.c.Submit(ctx, quickSpec(701))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if cached, err = h.c.Wait(ctx, cached.ID); err != nil || !cached.Cached {
		t.Fatalf("resubmission not cached: state=%v cached=%v err=%v", cached.State, cached.Cached, err)
	}
	cph := checkPhases(t, cached)
	if cph["sim"].N != 0 || cph["sim"].MS != 0 {
		t.Errorf("cached job sim phase = %+v, want zero time and zero recordings", cph["sim"])
	}
	if cached.QueueWaitMS != 0 {
		t.Errorf("cached-at-submit job queue_wait_ms = %v, want 0 (never queued)", cached.QueueWaitMS)
	}

	// The terminal SSE end frame carries the same breakdown.
	resp, err := http.Get(h.ts.URL + "/v1/jobs/" + fresh.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	var sawEndPhases bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"phases"`) &&
			strings.Contains(line, `"queue_wait"`) {
			sawEndPhases = true
		}
	}
	if !sawEndPhases {
		t.Errorf("SSE stream's end frame carried no phase breakdown")
	}
}

// TestQueueWaitSurfaced saturates a one-worker server so the second job
// measurably queues, then checks the wait surfaces per job and in the
// /v1/stats percentiles.
func TestQueueWaitSurfaced(t *testing.T) {
	defer testutil.GoroutineGuard(t)
	reg, release := blockingRegistry(t)
	h := newHarness(t, edaserver.Options{Workers: 1, QueueDepth: 8, Registry: reg})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	blockSpec := func(seed uint64) eda.Spec {
		return eda.Spec{Framework: "block", Run: eda.RunSpec{Seed: seed}}
	}
	first, err := h.c.Submit(ctx, blockSpec(1))
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	second, err := h.c.Submit(ctx, blockSpec(2))
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // let the second job sit queued
	close(release)
	for _, id := range []string{first.ID, second.ID} {
		if _, err := h.c.Wait(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
	fin, err := h.c.Get(ctx, second.ID)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if fin.QueueWaitMS < 40 {
		t.Errorf("second job queue_wait_ms = %v, want >= 40 (sat behind the blocked worker)", fin.QueueWaitMS)
	}
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.QueueWaitP99MS <= 0 {
		t.Errorf("stats queue_wait_p99_ms = %v, want > 0", st.QueueWaitP99MS)
	}
	if st.QueueWaitP50MS > st.QueueWaitP99MS {
		t.Errorf("queue wait p50 %v > p99 %v", st.QueueWaitP50MS, st.QueueWaitP99MS)
	}
}
