// Package edaserver turns the one-shot eda front door into a long-running
// JSON service: the queued, shareable, streamable job layer the paper's
// Fig. 6 agent-as-a-service vision needs in front of the compute
// substrate. One Server embeds an eda.Registry and exposes
//
//	POST   /v1/jobs             validate an eda.Spec, enqueue it
//	GET    /v1/jobs/{id}        job status + the final eda.Report
//	DELETE /v1/jobs/{id}        cancel (queued jobs never start;
//	                            running jobs get their context cancelled)
//	GET    /v1/jobs/{id}/events stream the run's core events as SSE
//	GET    /v1/stats            queue depth, job counters, report-cache
//	                            and simfarm cache traffic
//
// Jobs land on a bounded queue sharded by the spec's content key, so
// identical specs serialize on one worker in submission order while
// distinct specs run in parallel; a full queue (the bound is global
// across shards) rejects with 429 and Retry-After (backpressure, never
// unbounded buffering). Every job runs
// through eda.Run against the one process-wide simfarm.Farm, so identical
// candidate designs compiled by different requests hit the design/result
// caches across requests; on top of that sits an LRU-bounded
// content-addressed report store — resubmitting a spec that normalizes
// identically (same framework, seed, tier, payload and params; Workers
// and Deadline are scheduling knobs, not result inputs) returns the
// cached report verbatim, checked both at submission and again when the
// job reaches a worker. Shutdown stops intake (503), lets in-flight jobs
// drain, fails queued-but-unstarted jobs as cancelled, and force-cancels
// the stragglers only when the caller's context expires.
package edaserver

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"llm4eda/eda"
	"llm4eda/internal/simfarm"
)

// Options configure one Server. Zero values select defaults sized for a
// single-host deployment.
type Options struct {
	// Workers is the number of queue shards, each drained by one worker
	// goroutine (default GOMAXPROCS). A job's shard is chosen by its
	// spec's content key, so identical specs keep submission order.
	Workers int
	// QueueDepth bounds queued-but-unstarted jobs across all shards
	// (default 64). Submissions beyond it are rejected with 429.
	QueueDepth int
	// ReportCap bounds the content-addressed report store (default 256).
	ReportCap int
	// JobCap bounds the job table; the oldest finished jobs are evicted
	// past it (default 4096). Evicted job ids answer 404.
	JobCap int
	// EventHistory bounds each job's event replay ring (default 4096);
	// an SSE subscriber arriving late replays at most this many events.
	EventHistory int
	// Registry resolves frameworks (default eda.DefaultRegistry()).
	Registry *eda.Registry
	// Farm is the shared simulation-cache farm surfaced by /v1/stats
	// (default simfarm.Default(), the same farm eda.Run executes on).
	Farm *simfarm.Farm
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.ReportCap <= 0 {
		o.ReportCap = 256
	}
	if o.JobCap <= 0 {
		o.JobCap = 4096
	}
	if o.EventHistory <= 0 {
		o.EventHistory = 4096
	}
	if o.Registry == nil {
		o.Registry = eda.DefaultRegistry()
	}
	if o.Farm == nil {
		o.Farm = simfarm.Default()
	}
	return o
}

// Server is the HTTP job service. Create one with New, mount it anywhere
// (it implements http.Handler), and stop it with Shutdown.
type Server struct {
	opts Options
	mux  *http.ServeMux

	// baseCtx parents every job context; baseCancel is the force-cancel
	// lever of a timed-out Shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// intakeMu orders submissions against drain: enqueue sends under
	// RLock after checking draining, Shutdown flips draining and closes
	// the shard channels under Lock, so no send can race a close.
	intakeMu sync.RWMutex
	draining bool
	shards   []chan *job
	wg       sync.WaitGroup

	// queued counts jobs accepted onto the shards but not yet popped by
	// a worker — the global QueueDepth bound and the /v1/stats depth.
	queued atomic.Int64

	// mu guards the job table. Lock ordering: mu before job.mu.
	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for finished-job eviction
	seq   uint64

	store *reportStore

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	rejected  atomic.Uint64
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		jobs:  make(map[string]*job),
		store: newReportStore(opts.ReportCap),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// Every shard can buffer the full global bound: the bound itself is
	// enforced by the queued counter, so a hot content key (all jobs on
	// one shard) still gets the whole advertised QueueDepth.
	s.shards = make([]chan *job, opts.Workers)
	for i := range s.shards {
		s.shards[i] = make(chan *job, opts.QueueDepth)
		s.wg.Add(1)
		go s.worker(s.shards[i])
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the /v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: intake stops (submissions answer 503),
// queued-but-unstarted jobs finish as cancelled without running, and
// in-flight jobs run to completion. When ctx expires first, the in-flight
// jobs' contexts are cancelled — eda.Run returns within one simulation
// job — and Shutdown still waits for the workers before returning
// ctx.Err(). A drained server returns nil and stays mounted: reads keep
// working, writes stay rejected.
func (s *Server) Shutdown(ctx context.Context) error {
	s.intakeMu.Lock()
	first := !s.draining
	s.draining = true
	if first {
		for _, sh := range s.shards {
			close(sh)
		}
	}
	s.intakeMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

func (s *Server) isDraining() bool {
	s.intakeMu.RLock()
	defer s.intakeMu.RUnlock()
	return s.draining
}

var (
	errQueueFull = errors.New("edaserver: job queue full")
	errDraining  = errors.New("edaserver: server is shutting down")
)

// enqueue places a queued job on its content-key shard without blocking.
// The QueueDepth bound is global across shards (reserve-then-send on the
// queued counter); each shard channel is sized to hold the full bound,
// so the select's default arm is unreachable in practice and exists only
// as a safety net.
func (s *Server) enqueue(jb *job) error {
	s.intakeMu.RLock()
	defer s.intakeMu.RUnlock()
	if s.draining {
		return errDraining
	}
	if s.queued.Add(1) > int64(s.opts.QueueDepth) {
		s.queued.Add(-1)
		return errQueueFull
	}
	// Mark the reservation before the send: once the job is in the
	// channel a worker may pop it at any moment and must find the slot
	// marked so it releases exactly once.
	jb.mu.Lock()
	jb.queuedSlot = true
	jb.mu.Unlock()
	select {
	case s.shards[shardOf(jb.key, len(s.shards))] <- jb:
		return nil
	default:
		jb.mu.Lock()
		jb.queuedSlot = false
		jb.mu.Unlock()
		s.queued.Add(-1)
		return errQueueFull
	}
}

// releaseSlotLocked returns the job's QueueDepth reservation, once.
// Callers hold jb.mu.
func (s *Server) releaseSlotLocked(jb *job) {
	if jb.queuedSlot {
		jb.queuedSlot = false
		s.queued.Add(-1)
	}
}

func (s *Server) worker(ch chan *job) {
	defer s.wg.Done()
	for jb := range ch {
		s.runJob(jb)
	}
}

// runJob drives one popped job to a terminal state.
func (s *Server) runJob(jb *job) {
	jb.mu.Lock()
	s.releaseSlotLocked(jb)
	if jb.state != stateQueued {
		// Cancelled while queued; the cancel path already finalized it.
		jb.mu.Unlock()
		return
	}
	if s.isDraining() {
		jb.finishLocked(stateCancelled, nil, false, "server shut down before the job started")
		jb.mu.Unlock()
		s.cancelled.Add(1)
		jb.events.Emit(eda.Event{Kind: eda.EventNote, Framework: jb.spec.Framework,
			Detail: "job cancelled: server shutting down"})
		jb.events.close()
		return
	}
	// Pop-time dedup: an identical job queued ahead of us (same content
	// key, therefore same shard) may have completed while we waited.
	if e, ok := s.store.peek(jb.key); ok {
		jb.mu.Unlock()
		s.completeFromCache(jb, e)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	jb.cancel = cancel
	jb.state = stateRunning
	jb.mu.Unlock()

	report, err := eda.Run(ctx, jb.spec, eda.WithRegistry(s.opts.Registry), eda.WithSink(jb.events))
	cancel()

	var reportJSON []byte
	var reportOK bool
	if report != nil {
		reportOK = report.OK
		if b, jerr := report.JSON(); jerr == nil {
			reportJSON = b
		} else if err == nil {
			err = fmt.Errorf("edaserver: report encoding failed: %w", jerr)
		}
	}
	jb.mu.Lock()
	switch {
	case err == nil && reportJSON != nil:
		jb.finishLocked(stateDone, reportJSON, false, "")
		jb.mu.Unlock()
		s.store.add(jb.key, &reportEntry{json: reportJSON, ok: reportOK, summary: report.Summary})
		s.completed.Add(1)
	case errors.Is(err, context.Canceled):
		// Client DELETE or forced shutdown; a partial report still
		// travels with the terminal status when the pipeline made one.
		jb.finishLocked(stateCancelled, reportJSON, false, err.Error())
		jb.mu.Unlock()
		s.cancelled.Add(1)
	default:
		detail := "pipeline returned no report"
		if err != nil {
			detail = err.Error()
		}
		jb.finishLocked(stateFailed, reportJSON, false, detail)
		jb.mu.Unlock()
		s.failed.Add(1)
	}
	jb.events.close()
}

// completeFromCache finishes a job with a stored report: the same bytes
// the original run produced, so concurrent identical submissions observe
// byte-identical reports.
func (s *Server) completeFromCache(jb *job, e *reportEntry) {
	jb.mu.Lock()
	if jb.state != stateQueued {
		// A cancel won the race between the store probe and completion;
		// leave the terminal state it set.
		jb.mu.Unlock()
		return
	}
	jb.finishLocked(stateDone, e.json, true, "")
	jb.mu.Unlock()
	s.completed.Add(1)
	jb.events.Emit(eda.Event{Kind: eda.EventNote, Framework: jb.spec.Framework,
		Detail: "report served from the cross-request report cache"})
	jb.events.Emit(eda.Event{Kind: eda.EventRunEnd, Framework: jb.spec.Framework,
		OK: e.ok, Detail: e.summary})
	jb.events.close()
}

// newJob registers a fresh queued job, evicting the oldest finished jobs
// past JobCap.
func (s *Server) newJob(spec eda.Spec, key string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	jb := &job{
		id:      fmt.Sprintf("j%08d", s.seq),
		key:     key,
		spec:    spec,
		created: time.Now().UTC(),
		state:   stateQueued,
		events:  newBroadcaster(s.opts.EventHistory),
	}
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	if len(s.jobs) > s.opts.JobCap {
		kept := s.order[:0]
		for _, id := range s.order {
			old := s.jobs[id]
			if old == nil {
				continue // unregistered (rejected submission): drop the stale id
			}
			if len(s.jobs) > s.opts.JobCap && old.terminal() {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	return jb
}

// unregister drops a job that never made it onto the queue. Rejected
// submissions are the most recent registrations, so the backward scan
// of the order slice finds them in O(1) typically.
func (s *Server) unregister(jb *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, jb.id)
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == jb.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// queueDepth reports the queued-but-unstarted jobs across all shards.
func (s *Server) queueDepth() int {
	if n := s.queued.Load(); n > 0 {
		return int(n)
	}
	return 0
}
