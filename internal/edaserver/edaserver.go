// Package edaserver turns the one-shot eda front door into a long-running
// JSON service: the queued, shareable, streamable job layer the paper's
// Fig. 6 agent-as-a-service vision needs in front of the compute
// substrate. One Server embeds an eda.Registry and exposes
//
//	POST   /v1/jobs             validate an eda.Spec, enqueue it
//	GET    /v1/jobs/{id}        job status + the final eda.Report
//	DELETE /v1/jobs/{id}        cancel (queued jobs never start;
//	                            running jobs get their context cancelled)
//	GET    /v1/jobs/{id}/events stream the run's core events as SSE
//	GET    /v1/stats            queue depth, job counters, report-cache
//	                            and simfarm cache traffic
//
// Jobs land on a bounded queue sharded by the spec's content key, so
// identical specs serialize on one worker in submission order while
// distinct specs run in parallel; a full queue (the bound is global
// across shards) rejects with 429 and Retry-After (backpressure, never
// unbounded buffering). Every job runs
// through eda.Run against the one process-wide simfarm.Farm, so identical
// candidate designs compiled by different requests hit the design/result
// caches across requests; on top of that sits an LRU-bounded
// content-addressed report store — resubmitting a spec that normalizes
// identically (same framework, seed, tier, payload and params; Workers
// and Deadline are scheduling knobs, not result inputs) returns the
// cached report verbatim, checked both at submission and again when the
// job reaches a worker. Shutdown stops intake (503), lets in-flight jobs
// drain, fails queued-but-unstarted jobs as cancelled, and force-cancels
// the stragglers only when the caller's context expires.
package edaserver

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"llm4eda/eda"
	"llm4eda/internal/core"
	"llm4eda/internal/faultinject"
	"llm4eda/internal/obs"
	"llm4eda/internal/simfarm"
)

// Options configure one Server. Zero values select defaults sized for a
// single-host deployment.
type Options struct {
	// Workers is the number of queue shards, each drained by one worker
	// goroutine (default GOMAXPROCS). A job's shard is chosen by its
	// spec's content key, so identical specs keep submission order.
	Workers int
	// QueueDepth bounds queued-but-unstarted jobs across all shards
	// (default 64). Submissions beyond it are rejected with 429.
	QueueDepth int
	// ReportCap bounds the content-addressed report store (default 256).
	ReportCap int
	// JobCap bounds the job table; the oldest finished jobs are evicted
	// past it (default 4096). Evicted job ids answer 404.
	JobCap int
	// EventHistory bounds each job's event replay ring (default 4096);
	// an SSE subscriber arriving late replays at most this many events.
	EventHistory int
	// Registry resolves frameworks (default eda.DefaultRegistry()).
	Registry *eda.Registry
	// Farm is the shared simulation-cache farm surfaced by /v1/stats
	// (default simfarm.Default(), the same farm eda.Run executes on).
	Farm *simfarm.Farm
	// Watchdog, when positive, arms a per-job staleness watchdog: a
	// running job that emits no event for longer than this window is
	// declared wedged and cancelled, finishing failed with a *WedgeError
	// detail. 0 disables (the default — pipelines may legitimately go
	// quiet for long stretches at full experiment scale).
	Watchdog time.Duration
	// Faults is the chaos-test injector, fired at the server.job,
	// server.sse and server.store hook points and carried into each
	// job's context for the layers below. Nil in production: every hook
	// is a nil check and nothing else.
	Faults *faultinject.Injector
	// Metrics is the telemetry registry behind GET /v1/metrics — the
	// job-latency and per-phase histograms record into it, and the
	// scrape handler harvests everything else (server counters, farm
	// and VM stats, fault counters) live. Default: a fresh registry per
	// server; pass one to aggregate several servers into one scrape.
	Metrics *obs.Registry
	// Log receives structured job-lifecycle logs, every record carrying
	// the job id for correlation. Default: discard.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.ReportCap <= 0 {
		o.ReportCap = 256
	}
	if o.JobCap <= 0 {
		o.JobCap = 4096
	}
	if o.EventHistory <= 0 {
		o.EventHistory = 4096
	}
	if o.Registry == nil {
		o.Registry = eda.DefaultRegistry()
	}
	if o.Farm == nil {
		o.Farm = simfarm.Default()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Log == nil {
		o.Log = slog.New(slog.DiscardHandler)
	}
	return o
}

// Server is the HTTP job service. Create one with New, mount it anywhere
// (it implements http.Handler), and stop it with Shutdown.
type Server struct {
	opts Options
	mux  *http.ServeMux

	// baseCtx parents every job context; baseCancel is the force-cancel
	// lever of a timed-out Shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// intakeMu orders submissions against drain: enqueue sends under
	// RLock after checking draining, Shutdown flips draining and closes
	// the shard channels under Lock, so no send can race a close.
	intakeMu sync.RWMutex
	draining bool
	shards   []chan *job
	wg       sync.WaitGroup

	// queued counts jobs accepted onto the shards but not yet popped by
	// a worker — the global QueueDepth bound and the /v1/stats depth.
	queued atomic.Int64

	// mu guards the job table. Lock ordering: mu before job.mu.
	mu    sync.Mutex
	jobs  map[string]*job
	order []string // submission order, for finished-job eviction
	seq   uint64

	store *reportStore

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	rejected  atomic.Uint64

	// Resilience counters (all surfaced by /v1/stats): pipeline panics
	// recovered into failed jobs, watchdog kills of wedged jobs,
	// transient-failure retries harvested from completed reports, and
	// report-store writes that failed (injected — the in-memory store
	// itself cannot fail, but the hook models a remote store tier).
	panics        atomic.Uint64
	watchdogKills atomic.Uint64
	retries       atomic.Uint64
	storeFails    atomic.Uint64

	// metrics holds the latency histograms (job duration, per-phase
	// breakdown) that fold in at each job's terminal transition; log is
	// the structured job-lifecycle logger. Both always non-nil.
	metrics *serverMetrics
	log     *slog.Logger
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		jobs:    make(map[string]*job),
		store:   newReportStore(opts.ReportCap),
		metrics: newServerMetrics(opts.Metrics),
		log:     opts.Log,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// Every shard can buffer the full global bound: the bound itself is
	// enforced by the queued counter, so a hot content key (all jobs on
	// one shard) still gets the whole advertised QueueDepth.
	s.shards = make([]chan *job, opts.Workers)
	for i := range s.shards {
		s.shards[i] = make(chan *job, opts.QueueDepth)
		s.wg.Add(1)
		go s.worker(s.shards[i])
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return s
}

// ServeHTTP dispatches to the /v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: intake stops (submissions answer 503),
// queued-but-unstarted jobs finish as cancelled without running, and
// in-flight jobs run to completion. When ctx expires first, the in-flight
// jobs' contexts are cancelled — eda.Run returns within one simulation
// job — and Shutdown still waits for the workers before returning
// ctx.Err(). A drained server returns nil and stays mounted: reads keep
// working, writes stay rejected.
func (s *Server) Shutdown(ctx context.Context) error {
	s.intakeMu.Lock()
	first := !s.draining
	s.draining = true
	if first {
		for _, sh := range s.shards {
			close(sh)
		}
	}
	s.intakeMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

func (s *Server) isDraining() bool {
	s.intakeMu.RLock()
	defer s.intakeMu.RUnlock()
	return s.draining
}

var (
	errQueueFull = errors.New("edaserver: job queue full")
	errDraining  = errors.New("edaserver: server is shutting down")
)

// enqueue places a queued job on its content-key shard without blocking.
// The QueueDepth bound is global across shards (reserve-then-send on the
// queued counter); each shard channel is sized to hold the full bound,
// so the select's default arm is unreachable in practice and exists only
// as a safety net.
func (s *Server) enqueue(jb *job) error {
	s.intakeMu.RLock()
	defer s.intakeMu.RUnlock()
	if s.draining {
		return errDraining
	}
	if s.queued.Add(1) > int64(s.opts.QueueDepth) {
		s.queued.Add(-1)
		return errQueueFull
	}
	// Mark the reservation before the send: once the job is in the
	// channel a worker may pop it at any moment and must find the slot
	// marked so it releases exactly once. The same stamp starts the
	// queue-wait clock the pop (or a queued-state cancel) stops.
	jb.mu.Lock()
	jb.queuedSlot = true
	jb.enqueued = time.Now()
	jb.mu.Unlock()
	select {
	case s.shards[shardOf(jb.key, len(s.shards))] <- jb:
		return nil
	default:
		jb.mu.Lock()
		jb.queuedSlot = false
		jb.mu.Unlock()
		s.queued.Add(-1)
		return errQueueFull
	}
}

// releaseSlotLocked returns the job's QueueDepth reservation, once.
// Callers hold jb.mu.
func (s *Server) releaseSlotLocked(jb *job) {
	if jb.queuedSlot {
		jb.queuedSlot = false
		s.queued.Add(-1)
	}
}

func (s *Server) worker(ch chan *job) {
	defer s.wg.Done()
	for jb := range ch {
		s.runJob(jb)
	}
}

// runJob drives one popped job to a terminal state.
func (s *Server) runJob(jb *job) {
	jb.mu.Lock()
	s.releaseSlotLocked(jb)
	if jb.state != stateQueued {
		// Cancelled while queued; the cancel path already finalized it.
		jb.mu.Unlock()
		return
	}
	// The pop ends the queue wait (lock order: jb.mu, then the spans
	// lock inside Record — same direction as status()).
	jb.queueWait = time.Since(jb.enqueued)
	jb.spans.Record(obs.PhaseQueueWait, jb.queueWait)
	if s.isDraining() {
		jb.finishLocked(stateCancelled, nil, false, "server shut down before the job started")
		jb.mu.Unlock()
		s.cancelled.Add(1)
		s.jobFinished(jb, stateCancelled, false)
		jb.events.Emit(eda.Event{Kind: eda.EventNote, Framework: jb.spec.Framework,
			Detail: "job cancelled: server shutting down"})
		jb.events.close()
		return
	}
	// Pop-time dedup: an identical job queued ahead of us (same content
	// key, therefore same shard) may have completed while we waited.
	if e, ok := s.store.peek(jb.key); ok {
		jb.mu.Unlock()
		s.completeFromCache(jb, e)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	ctx = faultinject.With(ctx, s.opts.Faults)
	ctx = obs.WithSpans(ctx, jb.spans)
	jb.cancel = cancel
	jb.state = stateRunning
	jb.mu.Unlock()
	s.log.Debug("job started", "job", jb.id, "framework", jb.spec.Framework,
		"queue_wait", jb.queueWait)

	var wdStop chan struct{}
	if s.opts.Watchdog > 0 {
		jb.events.touch() // the staleness clock starts at job start
		wdStop = make(chan struct{})
		go s.watchdog(jb, cancel, wdStop)
	}
	report, err := s.runPipeline(ctx, jb)
	if wdStop != nil {
		close(wdStop)
	}
	cancel()

	var reportJSON []byte
	var reportOK bool
	if report != nil {
		reportOK = report.OK
		if b, jerr := report.JSON(); jerr == nil {
			reportJSON = b
		} else if err == nil {
			err = fmt.Errorf("edaserver: report encoding failed: %w", jerr)
		}
		// Transient failures the candidate loops absorbed surface as a
		// report metric; fold them into the server-wide counter.
		if n, ok := report.Metrics[eda.MetricTransientRetries]; ok && n > 0 {
			s.retries.Add(uint64(n))
		}
	}
	jb.mu.Lock()
	wedged, wedgeIdle, userCancel := jb.wedged, jb.wedgeIdle, jb.userCancel
	switch {
	case err == nil && reportJSON != nil:
		jb.finishLocked(stateDone, reportJSON, false, "")
		jb.mu.Unlock()
		// The store write is part of the job's span breakdown, so it
		// happens before the terminal fold into the aggregate histograms.
		s.storeReport(jb, &reportEntry{json: reportJSON, ok: reportOK, summary: report.Summary})
		s.completed.Add(1)
		s.jobFinished(jb, stateDone, false)
	case errors.Is(err, context.Canceled) && userCancel:
		// The client's DELETE wins even when the watchdog raced it.
		jb.finishLocked(stateCancelled, reportJSON, false, err.Error())
		jb.mu.Unlock()
		s.cancelled.Add(1)
		s.jobFinished(jb, stateCancelled, false)
	case wedged && err != nil:
		// The watchdog cancelled a stalled run: terminally failed, with
		// the structured staleness detail, not "cancelled" — nobody asked
		// for this job to stop, it stopped responding.
		werr := &WedgeError{Idle: wedgeIdle, Window: s.opts.Watchdog}
		jb.finishLocked(stateFailed, reportJSON, false, werr.Error())
		jb.mu.Unlock()
		s.failed.Add(1)
		s.watchdogKills.Add(1)
		s.log.Warn("watchdog killed wedged job", "job", jb.id, "idle", wedgeIdle)
		s.jobFinished(jb, stateFailed, false)
	case errors.Is(err, context.Canceled):
		// Client DELETE or forced shutdown; a partial report still
		// travels with the terminal status when the pipeline made one.
		jb.finishLocked(stateCancelled, reportJSON, false, err.Error())
		jb.mu.Unlock()
		s.cancelled.Add(1)
		s.jobFinished(jb, stateCancelled, false)
	default:
		detail := "pipeline returned no report"
		if err != nil {
			detail = err.Error()
		}
		jb.finishLocked(stateFailed, reportJSON, false, detail)
		jb.mu.Unlock()
		s.failed.Add(1)
		s.jobFinished(jb, stateFailed, false)
	}
	jb.events.close()
}

// runPipeline executes the job's spec with panic isolation: a panic
// anywhere in the pipeline stack — a kernel bug on a pathological
// candidate, or the injected fault standing in for one — is recovered
// into a *core.PanicError carrying the (truncated) stack, so one bad
// job costs one failed report, never the process.
func (s *Server) runPipeline(ctx context.Context, jb *job) (report *eda.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.log.Error("pipeline panic recovered", "job", jb.id, "panic", fmt.Sprint(r))
			stack := debug.Stack()
			if len(stack) > maxPanicStack {
				stack = stack[:maxPanicStack]
			}
			report, err = nil, &core.PanicError{Val: r, Stack: stack}
		}
	}()
	if s.opts.Faults != nil {
		if ferr := s.opts.Faults.Fire(ctx, faultinject.PointServerJob); ferr != nil {
			return nil, ferr
		}
	}
	return eda.Run(ctx, jb.spec, eda.WithRegistry(s.opts.Registry), eda.WithSink(jb.events))
}

// maxPanicStack bounds the stack carried into a terminal report.
const maxPanicStack = 8 << 10

// jobFinished folds one terminal job into the aggregate telemetry:
// submit-to-terminal latency into the job-duration histogram, each
// phase that actually ran into its per-phase histogram (pre-seeded
// zero rows stay per-job detail — folding them would pull every
// aggregate's percentiles toward zero), and one structured log line.
// Called exactly once per job, after its terminal transition.
func (s *Server) jobFinished(jb *job, state string, cached bool) {
	elapsed := time.Since(jb.created)
	s.metrics.jobDur.Record(elapsed)
	for _, sp := range jb.spans.Snapshot() {
		if sp.N > 0 {
			s.metrics.phase(sp.Phase).Record(sp.Dur)
		}
	}
	s.log.Info("job finished", "job", jb.id, "state", state, "cached", cached,
		"elapsed", elapsed, "queue_wait", jb.spans.Get(obs.PhaseQueueWait).Dur,
		"sim", jb.spans.Get(obs.PhaseSim).Dur)
}

// storeReport adds a finished report to the cross-request store, unless
// the injected store fault drops the write (modelling a failed write to
// a remote report tier). A dropped write only costs recomputation on
// the next identical submission — never correctness. The write (fault
// hook included — an injected delay is store latency) is the job's
// store_write phase.
func (s *Server) storeReport(jb *job, e *reportEntry) {
	start := time.Now()
	defer jb.spans.Since(obs.PhaseStoreWrite, start)
	if s.opts.Faults != nil {
		if ferr := s.opts.Faults.Fire(nil, faultinject.PointServerStore); ferr != nil {
			s.storeFails.Add(1)
			s.log.Warn("report-store write failed", "job", jb.id, "err", ferr)
			return
		}
	}
	s.store.add(jb.key, e)
}

// WedgeError is the structured terminal detail of a watchdog kill: the
// job emitted no event for longer than the staleness window.
type WedgeError struct {
	// Idle is how long the job had been silent when the watchdog fired.
	Idle time.Duration
	// Window is the configured staleness window (Options.Watchdog).
	Window time.Duration
}

func (e *WedgeError) Error() string {
	return fmt.Sprintf("watchdog: job wedged — no event emitted for %v (staleness window %v)",
		e.Idle.Round(time.Millisecond), e.Window)
}

// watchdog polls the job's staleness clock (the broadcaster's lastEmit,
// an atomic — no locks on the poll) and, when the job has been silent
// past the window, marks it wedged and cancels its context. The worker
// observes the wedged mark when eda.Run returns and finishes the job
// failed with a *WedgeError detail. stop ends the watchdog when the job
// finishes on its own.
func (s *Server) watchdog(jb *job, cancel context.CancelFunc, stop <-chan struct{}) {
	window := s.opts.Watchdog
	probe := window / 8
	if probe < 5*time.Millisecond {
		probe = 5 * time.Millisecond
	}
	t := time.NewTicker(probe)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			idle := jb.events.idle()
			if idle < window {
				continue
			}
			jb.mu.Lock()
			if jb.state != stateRunning {
				jb.mu.Unlock()
				return
			}
			jb.wedged, jb.wedgeIdle = true, idle
			jb.mu.Unlock()
			cancel()
			return
		}
	}
}

// completeFromCache finishes a job with a stored report: the same bytes
// the original run produced, so concurrent identical submissions observe
// byte-identical reports.
func (s *Server) completeFromCache(jb *job, e *reportEntry) {
	jb.mu.Lock()
	if jb.state != stateQueued {
		// A cancel won the race between the store probe and completion;
		// leave the terminal state it set.
		jb.mu.Unlock()
		return
	}
	jb.finishLocked(stateDone, e.json, true, "")
	jb.mu.Unlock()
	s.completed.Add(1)
	s.jobFinished(jb, stateDone, true)
	jb.events.Emit(eda.Event{Kind: eda.EventNote, Framework: jb.spec.Framework,
		Detail: "report served from the cross-request report cache"})
	jb.events.Emit(eda.Event{Kind: eda.EventRunEnd, Framework: jb.spec.Framework,
		OK: e.ok, Detail: e.summary})
	jb.events.close()
}

// newJob registers a fresh queued job, evicting the oldest finished jobs
// past JobCap.
func (s *Server) newJob(spec eda.Spec, key string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	jb := &job{
		id:      fmt.Sprintf("j%08d", s.seq),
		key:     key,
		spec:    spec,
		created: time.Now().UTC(),
		state:   stateQueued,
		events:  newBroadcaster(s.opts.EventHistory),
		spans:   obs.NewSpans(obs.JobPhases()...),
	}
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	if len(s.jobs) > s.opts.JobCap {
		kept := s.order[:0]
		for _, id := range s.order {
			old := s.jobs[id]
			if old == nil {
				continue // unregistered (rejected submission): drop the stale id
			}
			if len(s.jobs) > s.opts.JobCap && old.terminal() {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	return jb
}

// unregister drops a job that never made it onto the queue. Rejected
// submissions are the most recent registrations, so the backward scan
// of the order slice finds them in O(1) typically.
func (s *Server) unregister(jb *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, jb.id)
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == jb.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// queueDepth reports the queued-but-unstarted jobs across all shards.
func (s *Server) queueDepth() int {
	if n := s.queued.Load(); n > 0 {
		return int(n)
	}
	return 0
}
