package edaserver

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"llm4eda/eda"
)

// contentKey derives the content address of a normalized spec: every
// field that determines the run's deterministic outcome — framework,
// seed, tier, payload and params — and nothing that is pure scheduling
// (Workers changes wall clock only, the engine pins bit-identical results
// across worker counts; Deadline only decides whether the run finishes).
// Specs must already be registry-normalized so defaulted and explicit
// tiers/seeds share one address.
func contentKey(spec eda.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%s\x00%s\x00%s\x00%s\x00",
		spec.Framework, spec.Run.Seed, spec.Run.Tier, spec.Problem, spec.Kernel, spec.Source)
	for _, v := range spec.Vectors {
		fmt.Fprintf(h, "v%v\x00", v)
	}
	keys := make([]string, 0, len(spec.Params))
	for k := range spec.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "p%s=%g\x00", k, spec.Params[k])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// reportEntry is one stored outcome: the shared wire bytes plus the two
// fields the cached-completion path needs to synthesize its run-end
// event without re-decoding the report.
type reportEntry struct {
	json    []byte
	ok      bool
	summary string
}

// reportStore is the LRU-bounded content-addressed report cache behind
// same-spec resubmission. Only cleanly completed runs are stored; entries
// are immutable and handed back by pointer.
type reportStore struct {
	mu   sync.Mutex
	cap  int
	m    map[string]*list.Element
	ll   *list.List // front = most recently used
	hits atomic.Uint64
	miss atomic.Uint64
}

type storeEntry struct {
	key string
	val *reportEntry
}

func newReportStore(capacity int) *reportStore {
	if capacity <= 0 {
		capacity = 1
	}
	return &reportStore{
		cap: capacity,
		m:   make(map[string]*list.Element),
		ll:  list.New(),
	}
}

func (s *reportStore) get(key string) (*reportEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		s.miss.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

// peek is the worker's pop-time re-probe: a real serve counts as a hit,
// but an absence records no second miss — the submit-time get already
// counted this job's miss, and double-counting would halve the hit rate
// /v1/stats reports.
func (s *reportStore) peek(key string) (*reportEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.hits.Add(1)
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

func (s *reportStore) add(key string, e *reportEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*storeEntry).val = e
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&storeEntry{key: key, val: e})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*storeEntry).key)
	}
}

func (s *reportStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
