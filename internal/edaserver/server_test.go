package edaserver_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"llm4eda/eda"
	"llm4eda/eda/client"
	"llm4eda/internal/core"
	"llm4eda/internal/edaserver"
	"llm4eda/internal/testutil"
)

// quickSpec is the fast real workload the end-to-end tests submit: a
// vrank self-consistency run over one small problem, a few milliseconds
// of simulation through the shared farm.
func quickSpec(seed uint64) eda.Spec {
	return eda.Spec{
		Framework: "vrank",
		Problem:   "mux4",
		Run:       eda.RunSpec{Seed: seed},
		Params:    map[string]float64{"k": 3},
	}
}

// testHarness stands up a server over httptest plus a typed client whose
// transport is torn down with the test (so the goroutine leak checks see
// a quiet process afterwards).
type testHarness struct {
	srv *edaserver.Server
	ts  *httptest.Server
	c   *client.Client
}

func newHarness(t *testing.T, opts edaserver.Options) *testHarness {
	t.Helper()
	srv := edaserver.New(opts)
	ts := httptest.NewServer(srv)
	tr := &http.Transport{}
	// Retries off: these tests assert on the raw 429/503 contract, so the
	// client must surface the first backpressure reply, not absorb it.
	c := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithPollInterval(5*time.Millisecond),
		client.WithRetry(0, 0))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		ts.Close()
		tr.CloseIdleConnections()
	})
	return &testHarness{srv: srv, ts: ts, c: c}
}

// newClient builds an additional independent client against the harness.
func (h *testHarness) newClient(t *testing.T) *client.Client {
	t.Helper()
	tr := &http.Transport{}
	t.Cleanup(tr.CloseIdleConnections)
	return client.New(h.ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithPollInterval(5*time.Millisecond),
		client.WithRetry(0, 0))
}

// blockingRegistry registers a "block" pipeline that emits one note event
// and then parks until released or cancelled — the controllable workload
// behind the queue, cancellation and shutdown tests.
func blockingRegistry(t *testing.T) (*eda.Registry, chan struct{}) {
	t.Helper()
	reg := eda.NewRegistry()
	release := make(chan struct{})
	err := reg.Register(eda.Pipeline{
		Name: "block",
		Run: func(ctx context.Context, spec eda.Spec) (*eda.Report, error) {
			core.Emit(ctx, core.Event{Kind: core.EventNote, Framework: "block", Detail: "parked"})
			select {
			case <-release:
				return &eda.Report{OK: true, Summary: "released"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg, release
}

// waitState polls until the job reaches state or the deadline passes.
func waitState(t *testing.T, c *client.Client, id, state string) *client.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		job, err := c.Get(context.Background(), id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if job.State == state {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, job.State, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEndToEndConcurrentClients is the acceptance scenario: two clients
// submit the same quick-scale spec concurrently; both must receive
// byte-identical reports, /v1/stats must show the cross-request cache
// hit, the SSE stream must deliver start/progress/done, and shutdown
// must drain without leaking goroutines.
func TestEndToEndConcurrentClients(t *testing.T) {
	baseline := runtime.NumGoroutine()
	h := newHarness(t, edaserver.Options{Workers: 4})
	c2 := h.newClient(t)
	ctx := context.Background()

	spec := quickSpec(1)
	var jobs [2]*client.Job
	var errs [2]error
	var wg sync.WaitGroup
	for i, cl := range []*client.Client{h.c, c2} {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			job, err := cl.Submit(ctx, spec)
			if err == nil {
				job, err = cl.Wait(ctx, job.ID)
			}
			jobs[i], errs[i] = job, err
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if jobs[i].State != "done" {
			t.Fatalf("client %d job %s finished %q: %s", i, jobs[i].ID, jobs[i].State, jobs[i].Error)
		}
	}
	if jobs[0].ID == jobs[1].ID {
		t.Fatalf("both clients got the same job id %s", jobs[0].ID)
	}
	if !bytes.Equal(jobs[0].Report, jobs[1].Report) {
		t.Errorf("concurrent identical submissions returned different reports:\n%s\nvs\n%s",
			jobs[0].Report, jobs[1].Report)
	}
	report, err := jobs[0].DecodeReport()
	if err != nil {
		t.Fatal(err)
	}
	if report.Framework != "vrank" || !report.OK {
		t.Errorf("report = %+v", report)
	}

	// One of the two identical jobs must have been served from the
	// content-addressed report store, and the farm's result layer must
	// have seen hits (bench reuse inside the run at minimum).
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReportCache.Hits < 1 {
		t.Errorf("report cache hits = %d, want >= 1: %+v", st.ReportCache.Hits, st)
	}
	if st.Farm.Results.Hits == 0 {
		t.Error("no simulation result-cache hits recorded in /v1/stats")
	}
	if st.Completed != 2 {
		t.Errorf("completed = %d, want 2", st.Completed)
	}

	// The executed (non-cached) job's SSE stream replays the full run:
	// start, at least one progress event, done, then the end frame.
	execJob := jobs[0]
	if execJob.Cached {
		execJob = jobs[1]
	}
	sink := eda.NewCountingSink()
	final, err := h.c.Events(ctx, execJob.ID, sink)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if final.State != "done" {
		t.Errorf("end frame state = %q", final.State)
	}
	if n := sink.Count(eda.EventRunStart); n != 1 {
		t.Errorf("run-start events = %d, want 1", n)
	}
	if n := sink.Count(eda.EventRunEnd); n != 1 {
		t.Errorf("run-end events = %d, want 1", n)
	}
	if progress := sink.Total() - sink.Count(eda.EventRunStart) - sink.Count(eda.EventRunEnd); progress < 1 {
		t.Errorf("no progress events between start and done (total %d)", sink.Total())
	}

	// Drain and leak-check. Cleanup will shut down again (idempotent);
	// doing it explicitly here keeps the leak check inside the test body.
	ctxSD, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctxSD); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	h.ts.Close()
	testutil.CheckNoGoroutineLeak(t, baseline)
}

// TestCachedResubmission pins the submit-time dedup path: a spec
// resubmitted after completion answers done+cached immediately with the
// original bytes, and its event stream explains the cache hit.
func TestCachedResubmission(t *testing.T) {
	h := newHarness(t, edaserver.Options{Workers: 2})
	ctx := context.Background()

	first, err := h.c.Submit(ctx, quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	first, err = h.c.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	again, err := h.c.Submit(ctx, quickSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if again.State != "done" || !again.Cached {
		t.Fatalf("resubmission state=%q cached=%v, want immediate cached done", again.State, again.Cached)
	}
	if !bytes.Equal(first.Report, again.Report) {
		t.Error("cached report differs from the original")
	}
	// A different seed is a different content address.
	other, err := h.c.Submit(ctx, quickSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("distinct seed dedup'd against the wrong report")
	}
	if _, err := h.c.Wait(ctx, other.ID); err != nil {
		t.Fatal(err)
	}
	sink := eda.NewCountingSink()
	if _, err := h.c.Events(ctx, again.ID, sink); err != nil {
		t.Fatal(err)
	}
	if sink.Count(eda.EventRunEnd) != 1 || sink.Count(eda.EventNote) < 1 {
		t.Errorf("cached job stream lacks note+run-end: %d notes, %d run-ends",
			sink.Count(eda.EventNote), sink.Count(eda.EventRunEnd))
	}
}

// TestBackpressure fills a one-worker, depth-one queue and asserts the
// 429 + Retry-After contract, then drains and verifies the queued job
// still ran.
func TestBackpressure(t *testing.T) {
	reg, release := blockingRegistry(t)
	h := newHarness(t, edaserver.Options{Workers: 1, QueueDepth: 1, Registry: reg})
	ctx := context.Background()

	blockSpec := func(seed uint64) eda.Spec {
		return eda.Spec{Framework: "block", Run: eda.RunSpec{Seed: seed}}
	}
	running, err := h.c.Submit(ctx, blockSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, running.ID, "running")
	queued, err := h.c.Submit(ctx, blockSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if queued.State != "queued" {
		t.Fatalf("second job state = %q, want queued", queued.State)
	}
	_, err = h.c.Submit(ctx, blockSpec(3))
	if !client.IsQueueFull(err) {
		t.Fatalf("third submit err = %v, want 429 queue-full", err)
	}
	var ae *client.APIError
	if errors.As(err, &ae) && ae.RetryAfter <= 0 {
		t.Errorf("429 reply carries no Retry-After hint: %+v", ae)
	}
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 || st.QueueDepth != 1 {
		t.Errorf("stats rejected=%d queue_depth=%d, want 1/1", st.Rejected, st.QueueDepth)
	}

	close(release) // both blocked runs return
	if job := waitState(t, h.c, running.ID, "done"); job.Error != "" {
		t.Errorf("first job error: %s", job.Error)
	}
	waitState(t, h.c, queued.ID, "done")
}

// TestCancelQueued cancels a job before a worker reaches it: it must
// never run and the worker must skip it cleanly when popped.
func TestCancelQueued(t *testing.T) {
	reg, release := blockingRegistry(t)
	h := newHarness(t, edaserver.Options{Workers: 1, QueueDepth: 2, Registry: reg})
	ctx := context.Background()

	running, err := h.c.Submit(ctx, eda.Spec{Framework: "block", Run: eda.RunSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, running.ID, "running")
	queued, err := h.c.Submit(ctx, eda.Spec{Framework: "block", Run: eda.RunSpec{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, err := h.c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.State != "cancelled" {
		t.Fatalf("queued cancel state = %q", cancelled.State)
	}
	// The cancelled job's QueueDepth reservation is returned immediately
	// (not when a worker drains past the corpse), so the full queue is
	// usable again while the first job still runs.
	st, err := h.c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueueDepth != 0 {
		t.Errorf("queue depth after cancelling the only queued job = %d, want 0", st.QueueDepth)
	}
	refill, err := h.c.Submit(ctx, eda.Spec{Framework: "block", Run: eda.RunSpec{Seed: 3}})
	if err != nil {
		t.Fatalf("queue slot not reusable after cancel: %v", err)
	}
	close(release)
	waitState(t, h.c, refill.ID, "done")
	waitState(t, h.c, running.ID, "done")
	// The skipped job must still read cancelled after the worker drained
	// past it, and cancelling it again stays a no-op.
	if job := waitState(t, h.c, queued.ID, "cancelled"); job.Report != nil {
		t.Error("cancelled-before-start job carries a report")
	}
	if again, err := h.c.Cancel(ctx, queued.ID); err != nil || again.State != "cancelled" {
		t.Errorf("repeat cancel: %v %+v", err, again)
	}
}

// TestCancelRunning cancels an in-flight job: its context must fire and
// the job must finish cancelled, promptly.
func TestCancelRunning(t *testing.T) {
	reg, _ := blockingRegistry(t)
	h := newHarness(t, edaserver.Options{Workers: 1, Registry: reg})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, eda.Spec{Framework: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, job.ID, "running")
	if _, err := h.c.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, h.c, job.ID, "cancelled")
	if !strings.Contains(final.Error, "cancel") {
		t.Errorf("cancelled job error = %q", final.Error)
	}
}

// TestSSELiveStream subscribes while the job is parked and asserts
// events arrive live (not only as replay), then sees the end frame after
// release.
func TestSSELiveStream(t *testing.T) {
	reg, release := blockingRegistry(t)
	h := newHarness(t, edaserver.Options{Workers: 1, Registry: reg})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, eda.Spec{Framework: "block"})
	if err != nil {
		t.Fatal(err)
	}
	type got struct {
		final *client.Job
		err   error
	}
	seen := make(chan eda.Event, 64)
	done := make(chan got, 1)
	go func() {
		final, err := h.c.Events(ctx, job.ID, eda.SinkFunc(func(ev eda.Event) { seen <- ev }))
		done <- got{final, err}
	}()
	// Live delivery: the parked pipeline has already emitted run-start
	// and its note; they must reach the subscriber while the job runs.
	deadline := time.After(10 * time.Second)
	var kinds []eda.EventKind
	for len(kinds) < 2 {
		select {
		case ev := <-seen:
			kinds = append(kinds, ev.Kind)
		case <-deadline:
			t.Fatalf("no live events before release; saw %v", kinds)
		}
	}
	close(release)
	g := <-done
	if g.err != nil {
		t.Fatalf("Events: %v", g.err)
	}
	if g.final.State != "done" {
		t.Errorf("end frame state = %q", g.final.State)
	}
}

// TestShutdownDrains: during drain, new submissions answer 503, the
// in-flight job finishes, queued jobs come back cancelled, and Shutdown
// returns nil once quiet.
func TestShutdownDrains(t *testing.T) {
	reg, release := blockingRegistry(t)
	h := newHarness(t, edaserver.Options{Workers: 1, QueueDepth: 2, Registry: reg})
	ctx := context.Background()

	running, err := h.c.Submit(ctx, eda.Spec{Framework: "block", Run: eda.RunSpec{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, running.ID, "running")
	queued, err := h.c.Submit(ctx, eda.Spec{Framework: "block", Run: eda.RunSpec{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}

	sdErr := make(chan error, 1)
	go func() {
		ctxSD, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		sdErr <- h.srv.Shutdown(ctxSD)
	}()
	// Draining flips synchronously with the shard-channel close; poll
	// stats until visible, then probe the intake.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := h.c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, err = h.c.Submit(ctx, eda.Spec{Framework: "block", Run: eda.RunSpec{Seed: 3}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain err = %v, want 503", err)
	}

	close(release)
	if err := <-sdErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Reads still work on the drained server.
	if job := waitState(t, h.c, running.ID, "done"); job.Error != "" {
		t.Errorf("drained in-flight job error: %s", job.Error)
	}
	waitState(t, h.c, queued.ID, "cancelled")
}

// TestShutdownForcedCancel: a drain whose budget expires force-cancels
// the in-flight job but still waits for the workers to unwind.
func TestShutdownForcedCancel(t *testing.T) {
	reg, _ := blockingRegistry(t) // never released
	h := newHarness(t, edaserver.Options{Workers: 1, Registry: reg})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, eda.Spec{Framework: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, h.c, job.ID, "running")
	ctxSD, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := h.srv.Shutdown(ctxSD); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	waitState(t, h.c, job.ID, "cancelled")
}

// TestSubmitValidation covers the 400 paths: malformed JSON, unknown
// fields, and specs the registry rejects.
func TestSubmitValidation(t *testing.T) {
	h := newHarness(t, edaserver.Options{Workers: 1})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(h.ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for name, body := range map[string]string{
		"malformed":         `{"framework": `,
		"unknown field":     `{"framework": "vrank", "probelm": "mux4"}`,
		"unknown framework": `{"framework": "quantum"}`,
		"unknown param":     `{"framework": "vrank", "params": {"depth": 2}}`,
		"bad payload":       `{"framework": "slt", "problem": "adder4"}`,
	} {
		resp := post(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	// Nothing above may have consumed queue capacity or minted jobs.
	st, err := h.c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 0 || st.QueueDepth != 0 || len(st.JobStates) != 0 {
		t.Errorf("rejected specs left residue: %+v", st)
	}
}

// TestUnknownJob covers the 404 paths on every job endpoint.
func TestUnknownJob(t *testing.T) {
	h := newHarness(t, edaserver.Options{Workers: 1})
	ctx := context.Background()
	assert404 := func(err error, what string) {
		t.Helper()
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
			t.Errorf("%s: err = %v, want 404", what, err)
		}
	}
	_, err := h.c.Get(ctx, "j99999999")
	assert404(err, "Get")
	_, err = h.c.Cancel(ctx, "j99999999")
	assert404(err, "Cancel")
	_, err = h.c.Events(ctx, "j99999999", nil)
	assert404(err, "Events")
}

// TestFailedRunSurfacesError: a pipeline failure lands the job in
// "failed" with the error preserved, and failed runs are never cached —
// resubmission runs again.
func TestFailedRunSurfacesError(t *testing.T) {
	reg := eda.NewRegistry()
	var calls int32
	mu := sync.Mutex{}
	if err := reg.Register(eda.Pipeline{
		Name: "broken",
		Run: func(ctx context.Context, spec eda.Spec) (*eda.Report, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return nil, fmt.Errorf("substrate exploded")
		},
	}); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, edaserver.Options{Workers: 1, Registry: reg})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		job, err := h.c.Submit(ctx, eda.Spec{Framework: "broken"})
		if err != nil {
			t.Fatal(err)
		}
		job, err = h.c.Wait(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if job.State != "failed" || !strings.Contains(job.Error, "substrate exploded") {
			t.Fatalf("attempt %d: state=%q error=%q", i, job.State, job.Error)
		}
		if job.Cached {
			t.Error("failed run served from cache")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Errorf("broken pipeline ran %d times, want 2 (failures must not cache)", calls)
	}
}

// TestDeadlineFailsJob: a spec deadline that fires mid-run lands the job
// in failed (not cancelled — nobody asked for it to stop) with the
// partial report attached when the pipeline produced one.
func TestDeadlineFailsJob(t *testing.T) {
	reg, _ := blockingRegistry(t) // never released: only the deadline ends it
	h := newHarness(t, edaserver.Options{Workers: 1, Registry: reg})
	ctx := context.Background()

	job, err := h.c.Submit(ctx, eda.Spec{
		Framework: "block",
		Run:       eda.RunSpec{Deadline: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, h.c, job.ID, "failed")
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("deadline failure error = %q", final.Error)
	}
}
