package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestEveryExperimentProducesRows is the integration smoke test for the
// whole harness: each experiment must run at quick scale, produce rows and
// carry no failure findings.
func TestEveryExperimentProducesRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	r := Runner{Scale: ScaleQuick, Seed: 2}
	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := r.ByID(context.Background(), id)
			if err != nil {
				t.Fatalf("ByID: %v", err)
			}
			if len(exp.Rows) == 0 {
				t.Fatalf("no rows: %s", exp.Render())
			}
			for _, f := range exp.Findings {
				if strings.Contains(f, "failed") {
					t.Errorf("failure finding: %s", f)
				}
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	r := Runner{Scale: ScaleQuick, Seed: 1}
	if _, err := r.ByID(context.Background(), "E99"); err == nil {
		t.Error("expected error for unknown id")
	}
}

// TestHeadlineShapes verifies the reproduction-critical orderings on the
// quick-scale artifacts.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := Runner{Scale: ScaleQuick, Seed: 7}

	// E6: GP's final best must exceed the LLM loop's final best.
	e6, err := r.ByID(context.Background(), "E6")
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	var llmBest, gpBest float64
	for _, row := range e6.Rows {
		if row.Series == "best-watts" && row.X == 0 {
			llmBest = row.Y
		}
		if row.Series == "best-watts" && row.X == 1 {
			gpBest = row.Y
		}
	}
	if gpBest <= llmBest {
		t.Errorf("E6 ordering lost: gp %.3f <= llm %.3f", gpBest, llmBest)
	}
	if llmBest < 4.2 || gpBest > 6.5 {
		t.Errorf("E6 out of band: llm %.3f gp %.3f", llmBest, gpBest)
	}

	// E9: self-consistency >= first sample.
	e9, err := r.ByID(context.Background(), "E9")
	if err != nil {
		t.Fatalf("E9: %v", err)
	}
	var first, chosen, oracle float64
	for _, row := range e9.Rows {
		switch row.Series {
		case "first-sample":
			first = row.Y
		case "self-consistency":
			chosen = row.Y
		case "oracle-pass@k":
			oracle = row.Y
		}
	}
	if chosen < first {
		t.Errorf("E9 ordering lost: chosen %.2f < first %.2f", chosen, first)
	}
	if oracle < chosen {
		t.Errorf("E9 oracle %.2f below chosen %.2f", oracle, chosen)
	}

	// E10: LLM rewrites shrink area.
	e10, err := r.ByID(context.Background(), "E10")
	if err != nil {
		t.Fatalf("E10: %v", err)
	}
	for _, row := range e10.Rows {
		if strings.HasPrefix(row.Series, "area:") && row.Y > 1.0001 {
			t.Errorf("E10 rewrite grew area: %s = %.3f", row.Series, row.Y)
		}
	}
}
