package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestGoldenQuickScaleRows locks the E1–E11 quick-scale output to the
// fixture captured immediately before the eda front-door redesign: the
// experiment rows must stay byte-identical, so API work can never
// silently change scientific results. Regenerate the fixture (only after
// an intentional result change) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGoldenQuickScaleRows
var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

func TestGoldenQuickScaleRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale sweep")
	}
	const fixture = "testdata/golden_quick_seed1.txt"
	r := Runner{Scale: ScaleQuick, Seed: 1}
	var b strings.Builder
	for _, exp := range r.All(context.Background()) {
		fmt.Fprintln(&b, exp.Render())
	}
	got := b.String()

	if updateGolden {
		if err := os.WriteFile(fixture, []byte(got), 0o644); err != nil {
			t.Fatalf("update fixture: %v", err)
		}
		t.Logf("fixture rewritten: %s", fixture)
		return
	}

	wantBytes, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("golden mismatch at line %d:\n  want: %s\n  got:  %s",
				i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("golden length mismatch: want %d lines, got %d", len(wantLines), len(gotLines))
}
