// Package experiments regenerates every evaluation artifact of the paper:
// each figure's pipeline and each in-text quantitative claim becomes a
// deterministic experiment producing the same rows/series the paper
// reports. The benchmark harness (bench_test.go) and the CLI
// (cmd/llm4eda exp) both call into this package; EXPERIMENTS.md records
// paper-vs-measured for each entry.
package experiments

import (
	"context"
	"fmt"

	"llm4eda/internal/agent"
	"llm4eda/internal/autochip"
	"llm4eda/internal/benchset"
	"llm4eda/internal/boom"
	"llm4eda/internal/core"
	"llm4eda/internal/gp"
	"llm4eda/internal/hlstest"
	"llm4eda/internal/lintrepair"
	"llm4eda/internal/llm"
	"llm4eda/internal/rag"
	"llm4eda/internal/repair"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/slt"
	"llm4eda/internal/synth"
	"llm4eda/internal/verilog"
	"llm4eda/internal/vlint"
	"llm4eda/internal/vrank"
	"llm4eda/internal/xdebug"
)

// Scale selects experiment budgets.
type Scale int

// Budget scales: Quick for CI benches, Full for the recorded results.
const (
	ScaleQuick Scale = iota + 1
	ScaleFull
)

// Runner executes experiments at a given scale with a fixed seed.
type Runner struct {
	Scale Scale
	Seed  uint64
}

// pick returns quick or full depending on the runner's scale.
func (r Runner) pick(quick, full int) int {
	if r.Scale == ScaleFull {
		return full
	}
	return quick
}

// IDs lists every experiment identifier in run order.
func IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
}

// All runs every experiment in order. A cancelled ctx stops between
// experiments (and inside the framework loops each one drives).
func (r Runner) All(ctx context.Context) []*core.Experiment {
	var out []*core.Experiment
	for _, id := range IDs() {
		if ctx.Err() != nil {
			return out
		}
		exp, _ := r.ByID(ctx, id)
		out = append(out, exp)
	}
	return out
}

// ByID runs a single experiment ("E1".."E12").
func (r Runner) ByID(ctx context.Context, id string) (*core.Experiment, error) {
	switch id {
	case "E1":
		return r.E1Fig1FullFlow(ctx), nil
	case "E2":
		return r.E2Fig2HLSRepair(ctx), nil
	case "E3":
		return r.E3Fig3Discrepancy(ctx), nil
	case "E4":
		return r.E4Fig4AutoChip(ctx), nil
	case "E5":
		return r.E5Sec4StructuredFlow(ctx), nil
	case "E6":
		return r.E6Fig5SLTvsGP(ctx), nil
	case "E7":
		return r.E7Fig6Agent(ctx), nil
	case "E8":
		return r.E8Sec5Ablations(ctx), nil
	case "E9":
		return r.E9Sec2VRank(ctx), nil
	case "E10":
		return r.E10Sec2LLSM(ctx), nil
	case "E11":
		return r.E11Sec6CrossLevelDebug(ctx), nil
	case "E12":
		return r.E12LintScreening(ctx), nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (E1..E12)", id)
	}
}

// E1Fig1FullFlow walks one design through every Fig. 1 stage and reports
// the flow trace (stage -> LLM task -> outcome).
func (r Runner) E1Fig1FullFlow(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E1", Artifact: "Fig. 1 — chip design flow with LLM touchpoints"}
	a, err := agent.New(agent.Config{Model: llm.NewSimModel(llm.TierFrontier, r.Seed)})
	if err != nil {
		exp.AddFinding("setup failed: %v", err)
		return exp
	}
	report, err := a.RunProblem(ctx, benchset.ByID("adder4"))
	if err != nil {
		exp.AddFinding("flow failed: %v", err)
		return exp
	}
	for i, s := range report.Stages {
		ok := 0.0
		if s.OK {
			ok = 1
		}
		exp.AddRow("stage:"+s.Stage.String(), float64(i), ok, s.Task+" — "+s.Detail)
	}
	exp.AddFinding("final verdict: %s; synthesized PPA: %s", report.Verdict, report.Final)
	return exp
}

// E2Fig2HLSRepair reproduces the Fig. 2 flow over the repair suite:
// success rate per model tier with and without RAG, plus the stage-4 PPA
// movement.
func (r Runner) E2Fig2HLSRepair(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E2", Artifact: "Fig. 2 — automated C/C++ repair for HLS"}
	seeds := r.pick(2, 6)
	kernels := repair.BenchKernels()
	var latBefore, latAfter float64
	var optRuns int

	for _, tier := range []llm.Tier{llm.TierMedium, llm.TierFrontier} {
		for _, useRAG := range []bool{false, true} {
			succ, total := 0, 0
			for seed := 0; seed < seeds; seed++ {
				cfg := repair.Config{Model: llm.NewSimModel(tier, r.Seed+uint64(seed)*101)}
				if useRAG {
					cfg.Library = rag.DefaultCorrectionLibrary()
				}
				fw := repair.New(cfg)
				for _, k := range kernels {
					out, err := fw.Repair(ctx, k.Source, k.Kernel, k.Vectors)
					total++
					if err == nil && out.Success {
						succ++
						if out.PPABefore.LatencyCyc > 0 {
							latBefore += float64(out.PPABefore.LatencyCyc)
							latAfter += float64(out.PPAAfter.LatencyCyc)
							optRuns++
						}
					}
				}
			}
			series := fmt.Sprintf("%s/rag=%v", tier, useRAG)
			exp.AddRow(series, boolTo01(useRAG), float64(succ)/float64(total),
				fmt.Sprintf("%d/%d kernels repaired+equivalent", succ, total))
		}
	}
	if optRuns > 0 {
		exp.AddRow("ppa-opt latency", latBefore/float64(optRuns), latAfter/float64(optRuns),
			"mean latency cycles before(x) vs after(y) stage-4 pragma optimization")
	}
	exp.AddFinding("RAG templates lift repair success at both tiers; stage 4 reduces mean latency")
	return exp
}

// E3Fig3Discrepancy reproduces the Fig. 3 tester: guided vs blind input
// generation at equal hardware-simulation budgets.
func (r Runner) E3Fig3Discrepancy(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E3", Artifact: "Fig. 3 — behavioral discrepancy testing for HLS"}
	kernel := `
int scale(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 4; i++) {
        acc = acc + a * b + i;
    }
    return acc;
}`
	seeds := r.pick(2, 5)
	for _, guided := range []bool{false, true} {
		var disc, sims, skipped int
		for s := 0; s < seeds; s++ {
			cfg := hlstest.Config{
				RunSpec:      core.RunSpec{Seed: r.Seed + uint64(s)*17},
				WidthBits:    16,
				SimBudget:    20,
				UseSpectra:   guided,
				UseFilter:    guided,
				UseReasoning: guided,
			}
			if guided {
				cfg.Model = llm.NewSimModel(llm.TierLarge, r.Seed+uint64(s)*17)
			}
			res, err := hlstest.Run(ctx, kernel, "", "scale", [][]int64{{1, 1}, {2, 3}}, cfg)
			if err != nil {
				exp.AddFinding("run failed: %v", err)
				return exp
			}
			disc += len(res.Discrepancies)
			sims += res.SimsRun
			skipped += res.SimsSkipped
		}
		name := "blind-mutation"
		if guided {
			name = "llm-guided+filter"
		}
		exp.AddRow(name, float64(sims), float64(disc),
			fmt.Sprintf("discrepancies per %d HW sims (%d redundant sims skipped)", sims, skipped))
	}
	exp.AddFinding("guided campaign reaches a higher discrepancy yield per hardware simulation")
	return exp
}

// E4Fig4AutoChip reproduces the AutoChip evaluation: pass rate per model
// tier under feedback-depth vs candidate-breadth at equal budget.
func (r Runner) E4Fig4AutoChip(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E4", Artifact: "Fig. 4 + §IV — AutoChip tree search vs feedback"}
	seeds := r.pick(1, 3)
	var problems []*benchset.Problem
	for _, p := range benchset.Suite() {
		if p.Difficulty >= 3 {
			problems = append(problems, p)
		}
	}
	configs := []struct {
		name     string
		k, depth int
	}{
		{"sampling(k=6,d=1)", 6, 1},
		{"feedback(k=1,d=6)", 1, 6},
		{"tree(k=3,d=2)", 3, 2},
	}
	for _, tier := range llm.AllTiers() {
		for ci, cfg := range configs {
			solved, total := 0, 0
			for s := 0; s < seeds; s++ {
				for _, p := range problems {
					res, err := autochip.Run(ctx, p, autochip.Options{
						Model: llm.NewSimModel(tier, r.Seed+uint64(s)*271+7),
						K:     cfg.k, Depth: cfg.depth,
					})
					if err != nil {
						exp.AddFinding("run failed: %v", err)
						return exp
					}
					total++
					if res.Solved {
						solved++
					}
				}
			}
			exp.AddRow(fmt.Sprintf("%s/%s", tier, cfg.name), float64(ci),
				float64(solved)/float64(total),
				fmt.Sprintf("%d/%d hard problems solved", solved, total))
		}
	}
	exp.AddFinding("only the most capable tier gains significantly from feedback over candidate sampling (paper §IV)")
	return exp
}

// E5Sec4StructuredFlow reproduces the 8-design structured conversational
// flow study: fraction of designs needing no human feedback.
func (r Runner) E5Sec4StructuredFlow(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E5", Artifact: "§IV [10] — structured flow, 8 designs, human feedback"}
	seeds := r.pick(2, 5)
	for _, tier := range []llm.Tier{llm.TierMedium, llm.TierLarge} {
		noHuman, solved, total := 0, 0, 0
		for s := 0; s < seeds; s++ {
			model := llm.NewSimModel(tier, r.Seed+uint64(s)*53)
			for _, p := range benchset.EightDesignSet() {
				res, err := autochip.StructuredFlow(ctx, p, model, 8, verilog.SimOptions{})
				if err != nil {
					exp.AddFinding("run failed: %v", err)
					return exp
				}
				total++
				if res.Solved {
					solved++
					if res.HumanInterventions == 0 {
						noHuman++
					}
				}
			}
		}
		exp.AddRow(tier.String()+"/no-human", 0, float64(noHuman)/float64(total),
			fmt.Sprintf("%d/%d runs needed no human feedback (%d solved)", noHuman, total, solved))
	}
	exp.AddFinding("the stronger tier needs human feedback markedly less often (paper: half of the GPT-4 runs needed none)")
	return exp
}

// E6Fig5SLTvsGP reproduces the §V headline numbers: the LLM loop (24 h ->
// 2021 snippets, best 5.042 W) vs GP (39 h, best 5.682 W, Δ0.640 W),
// rescaled to evaluation budgets.
func (r Runner) E6Fig5SLTvsGP(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E6", Artifact: "Fig. 5 + §V — SLT power maximization: LLM loop vs GP"}
	llmEvals := r.pick(120, 400)
	gpEvals := llmEvals * 13 / 8 // 39 h / 24 h budget ratio
	bopts := boom.RunOptions{MaxInsts: 400_000}

	llmRes, err := slt.Run(ctx, slt.Config{
		Model:             llm.NewSimModel(llm.TierLarge, r.Seed+11),
		UseSCoT:           true,
		AdaptiveTemp:      true,
		DiversityPressure: true,
		MaxEvals:          llmEvals,
		Boom:              bopts,
		RunSpec:           core.RunSpec{Seed: r.Seed + 11},
	})
	if err != nil {
		exp.AddFinding("llm run failed: %v", err)
		return exp
	}
	gpRes, _ := gp.Run(ctx, gp.Config{RunSpec: core.RunSpec{Seed: r.Seed + 11}, MaxEvals: gpEvals, Boom: bopts})

	sample := func(tr []float64, series string) {
		step := len(tr) / 10
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(tr); i += step {
			exp.AddRow(series, float64(i), tr[i], "")
		}
		exp.AddRow(series, float64(len(tr)-1), tr[len(tr)-1], "final")
	}
	sample(llmRes.Trajectory, "llm-loop")
	sample(gpRes.Trajectory, "genetic-programming")
	gap := gpRes.Best.Score - llmRes.Best.Score
	exp.AddRow("best-watts", 0, llmRes.Best.Score, fmt.Sprintf("LLM loop after %d snippets (%d compile failures)", llmRes.Evals, llmRes.CompileFails))
	exp.AddRow("best-watts", 1, gpRes.Best.Score, fmt.Sprintf("GP after %d evaluations", gpRes.Evals))
	exp.AddFinding("GP beats the LLM loop by %.3f W given the longer budget (paper: 0.640 W); the LLM loop saturates earlier", gap)
	return exp
}

// E7Fig6Agent reproduces the Fig. 6 vision as a working session: the agent
// drives a mixed suite end to end.
func (r Runner) E7Fig6Agent(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E7", Artifact: "Fig. 6 — intelligent EDA agent, unified full flow"}
	a, err := agent.New(agent.Config{Model: llm.NewSimModel(llm.TierFrontier, r.Seed+23)})
	if err != nil {
		exp.AddFinding("setup failed: %v", err)
		return exp
	}
	ids := []string{"adder4", "mux4", "counter8", "det101", "lfsr8"}
	pass := 0
	for i, id := range ids {
		report, err := a.RunProblem(ctx, benchset.ByID(id))
		if err != nil {
			exp.AddFinding("%s failed: %v", id, err)
			continue
		}
		ok := 0.0
		if report.Verdict.Pass() {
			ok = 1
			pass++
		}
		exp.AddRow("design:"+id, float64(i), ok,
			fmt.Sprintf("%d stages, final %s", len(report.Stages), report.Final))
	}
	exp.AddFinding("agent completed %d/%d designs end-to-end (spec -> verified netlist PPA)", pass, len(ids))
	return exp
}

// E8Sec5Ablations isolates the §V design choices: temperature adaptation
// and Levenshtein diversity pressure. The budget is deliberately short of
// saturation (the mechanisms are about convergence, not the space
// ceiling); each arm reports mean best watts plus the mean evaluations
// needed to cross a fixed quality threshold.
func (r Runner) E8Sec5Ablations(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E8", Artifact: "§V design choices — temperature adaptation and pool diversity"}
	evals := r.pick(40, 60)
	const threshold = 5.35 // watts: near the LLM space's ceiling
	bopts := boom.RunOptions{MaxInsts: 400_000}
	arms := []struct {
		name      string
		adaptive  bool
		diversity bool
	}{
		{"adaptive+diversity", true, true},
		{"fixed-temp+diversity", false, true},
		{"adaptive+no-diversity", true, false},
		{"fixed-temp+no-diversity", false, false},
	}
	seeds := r.pick(3, 8)
	for i, arm := range arms {
		var best float64
		var toThreshold, reached int
		for s := 0; s < seeds; s++ {
			res, err := slt.Run(ctx, slt.Config{
				Model:             llm.NewSimModel(llm.TierLarge, r.Seed+uint64(s)*97+3),
				UseSCoT:           true,
				AdaptiveTemp:      arm.adaptive,
				DiversityPressure: arm.diversity,
				MaxEvals:          evals,
				Boom:              bopts,
				RunSpec:           core.RunSpec{Seed: r.Seed + uint64(s)*97 + 3},
			})
			if err != nil {
				exp.AddFinding("arm %s failed: %v", arm.name, err)
				return exp
			}
			best += res.Best.Score
			for e, w := range res.Trajectory {
				if w >= threshold {
					toThreshold += e + 1
					reached++
					break
				}
			}
		}
		detail := fmt.Sprintf("mean best watts over %d seeds, %d evals", seeds, evals)
		if reached > 0 {
			detail += fmt.Sprintf("; %.1f evals to %.2f W (%d/%d runs reached it)",
				float64(toThreshold)/float64(reached), threshold, reached, seeds)
		}
		exp.AddRow(arm.name, float64(i), best/float64(seeds), detail)
	}
	exp.AddFinding("short-budget comparison: the mechanisms change convergence speed toward the space ceiling rather than the ceiling itself")
	return exp
}

// E9Sec2VRank reproduces VRank-style self-consistency selection.
func (r Runner) E9Sec2VRank(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E9", Artifact: "§II VRank — self-consistency candidate selection"}
	ids := []string{"alu8", "mux4", "enc8to3", "barrel8", "satadd8", "popcount8"}
	seeds := r.pick(3, 8)
	chosen, first, oracle, total := 0, 0, 0, 0
	for _, id := range ids {
		p := benchset.ByID(id)
		for s := 0; s < seeds; s++ {
			res, err := vrank.Rank(ctx, p, vrank.Options{
				Model: llm.NewSimModel(llm.TierMedium, r.Seed+uint64(s)*31+1), K: 7,
			})
			if err != nil {
				exp.AddFinding("rank failed: %v", err)
				return exp
			}
			total++
			if res.ChosenPasses {
				chosen++
			}
			if res.FirstPasses {
				first++
			}
			if res.AnyPasses {
				oracle++
			}
		}
	}
	exp.AddRow("first-sample", 0, float64(first)/float64(total), "naive baseline")
	exp.AddRow("self-consistency", 1, float64(chosen)/float64(total), "largest simulation-output cluster")
	exp.AddRow("oracle-pass@k", 2, float64(oracle)/float64(total), "upper bound within k samples")
	exp.AddFinding("consistency clustering recovers a large fraction of the pass@k headroom without an oracle")
	return exp
}

// llsmDesigns carry strength-reduction headroom for the LLSM experiment.
var llsmDesigns = []struct{ name, src string }{
	{"scaler", `module scaler(input [7:0] a, input [7:0] b, output [15:0] y);
  assign y = (a * 4) + (b * 8) + (a * 2);
endmodule`},
	{"blend", `module blend(input [7:0] a, input [7:0] b, output [15:0] y);
  wire [15:0] t;
  assign t = (a * 16) + b;
  assign y = (t / 2) + (b * 4);
endmodule`},
	{"accum", `module accum(input clk, input [7:0] d, output reg [15:0] acc);
  always @(posedge clk) acc <= acc + d * 2;
endmodule`},
}

// E10Sec2LLSM reproduces the LLSM-style synthesis assist: QoR with vs
// without LLM-suggested rewrites.
func (r Runner) E10Sec2LLSM(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E10", Artifact: "§II LLSM — LLM-assisted logic synthesis QoR"}
	model := llm.NewSimModel(llm.TierFrontier, r.Seed+41)
	var baseTotal, llmTotal float64
	for i, d := range llsmDesigns {
		base, err := synth.SynthesizeRTL(d.src, d.name, synth.Options{})
		if err != nil {
			exp.AddFinding("%s baseline failed: %v", d.name, err)
			return exp
		}
		resp, err := model.Generate(llm.Request{
			System: llm.SystemVerilogDesigner,
			Prompt: llm.BuildSynthHintPrompt(d.src),
			Task:   llm.SynthRewrite{RTL: d.src},
		})
		if err != nil {
			exp.AddFinding("%s rewrite failed: %v", d.name, err)
			return exp
		}
		after, err := synth.SynthesizeRTL(resp.Text, d.name, synth.Options{})
		if err != nil {
			after = base // unparsable rewrite: keep baseline
		}
		exp.AddRow("area:"+d.name, float64(i), after.Gates/base.Gates,
			fmt.Sprintf("gates %.0f -> %.0f", base.Gates, after.Gates))
		baseTotal += base.Gates
		llmTotal += after.Gates
	}
	exp.AddFinding("LLM rewrites cut total area to %.0f%% of baseline across the suite",
		100*llmTotal/baseTotal)
	return exp
}

// E11Sec6CrossLevelDebug evaluates the §VI cross-level debugger: first,
// mutation-corpus localization accuracy (does the first divergent
// statement match the injected fault line?); then guided-repair
// convergence of one mutant per problem under the round budget.
func (r Runner) E11Sec6CrossLevelDebug(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E11", Artifact: "§VI — cross-level RTL debugging: trace alignment, localization, guided repair"}
	var problems []*benchset.Problem
	for _, p := range benchset.Suite() {
		if p.CModel != "" && len(p.Ports) > 0 {
			problems = append(problems, p)
		}
	}
	vectors := r.pick(16, 32)

	// Localization accuracy over the deterministic mutation corpus.
	divergent, hits := 0, 0
	for i, p := range problems {
		h, err := xdebug.NewHarness(p, "", vectors)
		if err != nil {
			exp.AddFinding("%s: harness failed: %v", p.ID, err)
			return exp
		}
		pd, ph := 0, 0
		for _, m := range xdebug.Mutants(p.Reference) {
			if ctx.Err() != nil {
				return exp
			}
			diag := h.Diagnose(m.Source)
			if diag == nil {
				continue
			}
			pd++
			if diag.SuspectLine == m.Line {
				ph++
			}
		}
		divergent += pd
		hits += ph
		if pd > 0 {
			exp.AddRow("localize:"+p.ID, float64(i), float64(ph)/float64(pd),
				fmt.Sprintf("%d/%d divergent mutants localized to the injected line", ph, pd))
		}
	}

	// Guided-repair convergence: the first mutant of each problem, under
	// the default round budget.
	model := llm.NewSimModel(llm.TierFrontier, r.Seed+67)
	converged, attempted, rounds := 0, 0, 0
	for _, p := range problems {
		ms := xdebug.Mutants(p.Reference)
		if len(ms) == 0 {
			continue
		}
		res, err := xdebug.Debug(ctx, p, ms[0].Source, xdebug.Options{
			RunSpec: core.RunSpec{Seed: r.Seed + 67}, Model: model,
			Rounds: 6, Vectors: vectors,
		})
		if err != nil {
			exp.AddFinding("%s: debug failed: %v", p.ID, err)
			return exp
		}
		attempted++
		rounds += len(res.Rounds)
		if res.Converged {
			converged++
		}
	}
	exp.AddRow("localization-accuracy", 0, ratio(hits, divergent),
		fmt.Sprintf("%d/%d divergent mutants", hits, divergent))
	exp.AddRow("repair-convergence", 1, ratio(converged, attempted),
		fmt.Sprintf("%d/%d mutants back to trace-identical RTL, %.1f rounds mean", converged, attempted,
			float64(rounds)/float64(max(attempted, 1))))
	exp.AddFinding("first-divergence localization hits the injected fault on %.0f%% of mutants; guided repair converges %d/%d within budget",
		100*ratio(hits, divergent), converged, attempted)
	return exp
}

// E12LintScreening evaluates the static lint engine: detection rate over
// the lint-mutant corpus (with the clean-reference dual), lint-guided
// repair convergence, and the pre-simulation compute savings of
// screening — the same loop run twice on fresh farms, screen on vs off,
// comparing design elaborations + simulations actually performed.
func (r Runner) E12LintScreening(ctx context.Context) *core.Experiment {
	exp := &core.Experiment{ID: "E12", Artifact: "static lint engine: mutant detection, lint-guided repair, pre-simulation screening savings"}
	suite := benchset.Suite()

	// Detection over the deterministic lint-mutant corpus, plus the
	// false-positive dual: every reference must screen clean.
	total, detected, errTotal, errDetected, cleanRefs := 0, 0, 0, 0, 0
	for _, p := range suite {
		if ctx.Err() != nil {
			return exp
		}
		if diags, err := vlint.LintSource(p.Reference, p.TopModule); err == nil && !vlint.HasErrors(diags) {
			cleanRefs++
		}
		for _, m := range vlint.Mutants(p.Reference) {
			diags, err := vlint.LintSource(m.Source, p.TopModule)
			if err != nil {
				continue
			}
			total++
			hit := false
			for _, d := range diags {
				if d.Rule == m.WantRule {
					hit = true
					break
				}
			}
			if hit {
				detected++
			}
			if m.IsErrorClass() {
				errTotal++
				if hit && vlint.HasErrors(diags) {
					errDetected++
				}
			}
		}
	}
	exp.AddRow("mutant-detection", 0, ratio(detected, total),
		fmt.Sprintf("%d/%d lint mutants flagged with the planted rule", detected, total))
	exp.AddRow("error-class-detection", 1, ratio(errDetected, errTotal),
		fmt.Sprintf("%d/%d error-class mutants rejected by the screen", errDetected, errTotal))
	exp.AddRow("clean-references", 2, ratio(cleanRefs, len(suite)),
		fmt.Sprintf("%d/%d references screen clean (no false rejects)", cleanRefs, len(suite)))

	// Lint-guided repair over one error-class mutant per problem, run as
	// two arms on fresh farms: screening on (lint report as feedback)
	// and off (the control pays compile+simulate for every broken
	// candidate). Farm computes = design elaborations + simulations.
	limit := r.pick(8, len(suite))
	arm := func(screen bool) (converged, attempted, rounds int, rejects int64, computes uint64, failed bool) {
		model := llm.NewSimModel(llm.TierFrontier, r.Seed+89)
		farm := simfarm.New(simfarm.Options{})
		for _, p := range suite {
			if attempted >= limit || ctx.Err() != nil {
				break
			}
			var start string
			for _, m := range vlint.Mutants(p.Reference) {
				if m.IsErrorClass() {
					start = m.Source
					break
				}
			}
			if start == "" {
				continue
			}
			res, err := lintrepair.Run(ctx, p, start, lintrepair.Options{
				RunSpec: core.RunSpec{Seed: r.Seed + 89}, Model: model,
				Rounds: 6, Screen: screen, Farm: farm,
			})
			if err != nil {
				exp.AddFinding("%s: lint repair failed: %v", p.ID, err)
				failed = true
				return
			}
			attempted++
			rounds += len(res.Rounds)
			if res.Converged {
				converged++
			}
		}
		st := farm.Stats()
		return converged, attempted, rounds, st.LintRejects,
			st.Designs.Computes + st.Results.Computes, false
	}
	converged, attempted, rounds, rejects, onComputes, failed := arm(true)
	if failed {
		return exp
	}
	_, _, _, _, offComputes, failed := arm(false)
	if failed {
		return exp
	}
	exp.AddRow("repair-convergence", 3, ratio(converged, attempted),
		fmt.Sprintf("%d/%d lint mutants repaired to passing RTL, %.1f rounds mean", converged, attempted,
			float64(rounds)/float64(max(attempted, 1))))
	exp.AddRow("screen-savings", 4, ratio(int(offComputes-onComputes), int(max(int(offComputes), 1))),
		fmt.Sprintf("%d rejects cut farm computes %d -> %d", rejects, offComputes, onComputes))
	exp.AddFinding("screen detects %d/%d error-class lint mutants with %d/%d references clean; lint-guided repair converges %d/%d, and screening cuts farm computes %d -> %d",
		errDetected, errTotal, cleanRefs, len(suite), converged, attempted, offComputes, onComputes)
	return exp
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
