// Package synth implements the logic-synthesis substrate: it maps Verilog
// RTL onto a NAND2-equivalent gate estimate with critical-path and power
// models, plus light optimization passes (constant folding, common
// subexpression sharing). It supplies the gate-level PPA numbers used by
// the repair framework's stage 4 and the LLSM-style synthesis-assist
// experiment (deliberately, it performs no automatic strength reduction —
// that is the rewrite the LLM contributes).
package synth

import (
	"fmt"
	"math"
	"strings"

	"llm4eda/internal/core"
	"llm4eda/internal/verilog"
)

// Options parameterize synthesis.
type Options struct {
	// OptLevel 0 = literal mapping; 1 = constant folding + CSE (default 1).
	OptLevel int
	// ClockMHz for dynamic power (default 100).
	ClockMHz float64
	// ToggleRate is the average switching activity (default 0.15).
	ToggleRate float64
}

func (o Options) withDefaults() Options {
	if o.ClockMHz == 0 {
		o.ClockMHz = 100
	}
	if o.ToggleRate == 0 {
		o.ToggleRate = 0.15
	}
	return o
}

// Result is the synthesis report for one top module (hierarchy included).
type Result struct {
	Top      string
	Gates    float64
	Regs     int
	MemBits  int
	DelayNS  float64
	PowerMW  float64
	OpCounts map[string]int
	// FoldedOps and SharedOps count optimization effects (OptLevel >= 1).
	FoldedOps int
	SharedOps int
}

// PPA folds the result into the shared triple.
func (r *Result) PPA() core.PPA {
	return core.PPA{AreaGates: r.Gates, DelayNS: r.DelayNS, PowerMW: r.PowerMW}
}

// String summarizes the report.
func (r *Result) String() string {
	return fmt.Sprintf("synth(%s): %.0f gates, %d regs, %d membits, %.2f ns, %.2f mW",
		r.Top, r.Gates, r.Regs, r.MemBits, r.DelayNS, r.PowerMW)
}

// SynthesizeRTL parses the source and estimates PPA for the top module,
// recursing through instantiated modules.
func SynthesizeRTL(src, top string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	file, err := verilog.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	s := &synthesizer{file: file, opts: opts, res: &Result{Top: top, OpCounts: map[string]int{}}}
	if err := s.module(top, 0); err != nil {
		return nil, err
	}
	r := s.res
	// Register and memory area.
	r.Gates += float64(r.Regs) * 7
	r.Gates += float64(r.MemBits) * 1.5
	if r.DelayNS < 0.5 {
		r.DelayNS = 0.5
	}
	r.PowerMW = r.Gates*opts.ToggleRate*opts.ClockMHz*0.000012 + r.Gates*0.00045
	return r, nil
}

type synthesizer struct {
	file *verilog.SourceFile
	opts Options
	res  *Result
}

const maxSynthDepth = 32

// module accumulates one module's cost (and its children's).
func (s *synthesizer) module(name string, depth int) error {
	if depth > maxSynthDepth {
		return fmt.Errorf("synth: hierarchy deeper than %d (recursive instantiation?)", maxSynthDepth)
	}
	mod := s.file.FindModule(name)
	if mod == nil {
		return fmt.Errorf("synth: module %q not found", name)
	}

	widths := map[string]int{}
	for _, p := range mod.Ports {
		widths[p.Name] = exprWidth(p.Width)
		if p.IsReg {
			s.res.Regs += exprWidth(p.Width)
		}
	}

	seenExpr := map[string]bool{} // CSE across the module
	w := &walker{s: s, widths: widths, seen: seenExpr}

	for _, item := range mod.Items {
		switch it := item.(type) {
		case *verilog.NetDecl:
			wd := exprWidth(it.Width)
			widths[it.Name] = wd
			if it.ArrayHi != nil {
				words := exprWidth(it.ArrayHi) // msb+1 words
				s.res.MemBits += words * wd
			} else if it.IsReg {
				s.res.Regs += wd
			}
			if it.Init != nil {
				w.expr(it.Init, wd)
			}
		case *verilog.ContAssign:
			wd := w.lhsWidth(it.LHS)
			d := w.expr(it.RHS, wd)
			if d > s.res.DelayNS {
				s.res.DelayNS = d
			}
		case *verilog.AlwaysBlock:
			d := w.stmt(it.Body)
			if d > s.res.DelayNS {
				s.res.DelayNS = d
			}
		case *verilog.InitialBlock:
			// Testbench-only constructs: no hardware.
		case *verilog.Instance:
			if err := s.module(it.ModuleName, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// exprWidth evaluates a constant width expression (msb) to width; unknown
// forms default to 1/32 heuristics.
func exprWidth(e verilog.Expr) int {
	switch n := e.(type) {
	case nil:
		return 1
	case *verilog.Number:
		return int(n.Val.Uint()) + 1
	case *verilog.Binary:
		// e.g. W-1 with parameter W: guess 32.
		return 32
	default:
		return 32
	}
}

// walker accumulates gate cost and returns combinational depth (ns).
type walker struct {
	s      *synthesizer
	widths map[string]int
	seen   map[string]bool
}

func (w *walker) width(e verilog.Expr) int {
	switch n := e.(type) {
	case *verilog.Ident:
		if wd, ok := w.widths[n.Name]; ok {
			return wd
		}
		return 32
	case *verilog.Number:
		return n.Val.Width
	case *verilog.Index:
		return 1
	case *verilog.PartSelect:
		return 8
	case *verilog.Concat:
		total := 0
		for _, p := range n.Parts {
			total += w.width(p)
		}
		return total
	case *verilog.Binary:
		return max(w.width(n.X), w.width(n.Y))
	case *verilog.Ternary:
		return max(w.width(n.Then), w.width(n.Else))
	case *verilog.Unary:
		return w.width(n.X)
	default:
		return 32
	}
}

// gateCost tabulates NAND2-equivalents and delay for an operator at width n.
func gateCost(op string, n float64) (float64, float64) {
	switch op {
	case "+", "-":
		return 9 * n, 0.05*n + 0.4
	case "*":
		return 5.5 * n * n, 0.12*n + 1.2
	case "/", "%":
		return 18 * n * n, 0.5*n + 3
	case "<<", ">>", "<<<", ">>>":
		return 3 * n * math.Log2(n+2), 0.8
	case "&", "|", "^", "~^", "^~", "~&", "~|":
		return n, 0.15
	case "<", "<=", ">", ">=", "==", "!=", "===", "!==":
		return 3 * n, 0.04*n + 0.3
	case "&&", "||":
		return 2, 0.1
	default:
		return n, 0.3
	}
}

// isConst reports whether an expression is a literal (after folding).
func isConst(e verilog.Expr) bool {
	switch n := e.(type) {
	case *verilog.Number:
		return true
	case *verilog.Unary:
		return isConst(n.X)
	case *verilog.Binary:
		return isConst(n.X) && isConst(n.Y)
	default:
		return false
	}
}

// key renders a canonical string for CSE matching.
func exprKey(e verilog.Expr) string {
	switch n := e.(type) {
	case *verilog.Ident:
		return n.Name
	case *verilog.Number:
		return n.Val.String()
	case *verilog.Unary:
		return n.Op + "(" + exprKey(n.X) + ")"
	case *verilog.Binary:
		return "(" + exprKey(n.X) + n.Op + exprKey(n.Y) + ")"
	case *verilog.Ternary:
		return "(" + exprKey(n.Cond) + "?" + exprKey(n.Then) + ":" + exprKey(n.Else) + ")"
	case *verilog.Index:
		return exprKey(n.X) + "[" + exprKey(n.Idx) + "]"
	case *verilog.PartSelect:
		return exprKey(n.X) + "[" + exprKey(n.MSB) + ":" + exprKey(n.LSB) + "]"
	case *verilog.Concat:
		parts := make([]string, len(n.Parts))
		for i, p := range n.Parts {
			parts[i] = exprKey(p)
		}
		return "{" + strings.Join(parts, ",") + "}"
	case *verilog.Repeat:
		return "{" + exprKey(n.Count) + "{" + exprKey(n.X) + "}}"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// expr charges gates for one expression tree and returns its depth in ns.
func (w *walker) expr(e verilog.Expr, targetWidth int) float64 {
	switch n := e.(type) {
	case nil, *verilog.Ident, *verilog.Number, *verilog.StringLit:
		return 0
	case *verilog.Unary:
		d := w.expr(n.X, targetWidth)
		gates, dly := gateCost(n.Op, float64(w.width(n.X)))
		if n.Op == "~" || n.Op == "!" {
			gates = float64(w.width(n.X)) * 0.5
		}
		w.charge(n, n.Op, gates)
		return d + dly
	case *verilog.Binary:
		wd := float64(max(w.width(n.X), w.width(n.Y)))
		dx := w.expr(n.X, targetWidth)
		dy := w.expr(n.Y, targetWidth)
		if dy > dx {
			dx = dy
		}
		if w.s.opts.OptLevel >= 1 && isConst(n.X) && isConst(n.Y) {
			w.s.res.FoldedOps++
			return 0
		}
		gates, dly := gateCost(n.Op, wd)
		// Shifts by a constant are wiring, not gates.
		if (n.Op == "<<" || n.Op == ">>" || n.Op == "<<<" || n.Op == ">>>") && isConst(n.Y) {
			gates, dly = 0, 0
		}
		w.charge(n, n.Op, gates)
		return dx + dly
	case *verilog.Ternary:
		wd := float64(targetWidth)
		d := w.expr(n.Cond, 1)
		dt := w.expr(n.Then, targetWidth)
		de := w.expr(n.Else, targetWidth)
		if de > dt {
			dt = de
		}
		w.charge(n, "mux", 3*wd)
		return d + dt + 0.25
	case *verilog.Concat:
		var dmax float64
		for _, p := range n.Parts {
			if d := w.expr(p, w.width(p)); d > dmax {
				dmax = d
			}
		}
		return dmax
	case *verilog.Repeat:
		return w.expr(n.X, w.width(n.X))
	case *verilog.Index:
		d := w.expr(n.Idx, 8)
		w.charge(n, "select", 2*float64(w.width(n.X))/8+2)
		return d + 0.5
	case *verilog.PartSelect:
		return w.expr(n.X, targetWidth)
	case *verilog.SysFunc:
		return 0
	default:
		return 0
	}
}

// charge adds gates for an operator instance unless CSE already paid for
// an identical expression.
func (w *walker) charge(e verilog.Expr, op string, gates float64) {
	if w.s.opts.OptLevel >= 1 {
		k := exprKey(e)
		if w.seen[k] {
			w.s.res.SharedOps++
			return
		}
		w.seen[k] = true
	}
	w.s.res.OpCounts[op]++
	w.s.res.Gates += gates
}

// stmt charges behavioral statements (always-block bodies) and returns the
// worst combinational depth.
func (w *walker) stmt(st verilog.Stmt) float64 {
	switch n := st.(type) {
	case nil:
		return 0
	case *verilog.Block:
		var dmax float64
		for _, s := range n.Stmts {
			if d := w.stmt(s); d > dmax {
				dmax = d
			}
		}
		return dmax
	case *verilog.Assign:
		wd := w.lhsWidth(n.LHS)
		return w.expr(n.RHS, wd)
	case *verilog.IfStmt:
		d := w.expr(n.Cond, 1)
		w.charge(n.Cond, "mux", 3) // enable mux share
		dt := w.stmt(n.Then)
		de := w.stmt(n.Else)
		if de > dt {
			dt = de
		}
		return d + dt + 0.25
	case *verilog.CaseStmt:
		d := w.expr(n.Subject, w.width(n.Subject))
		var dmax float64
		for _, item := range n.Items {
			for _, le := range item.Exprs {
				w.expr(le, w.width(n.Subject))
				w.charge(le, "cmp", 3*float64(w.width(n.Subject)))
			}
			if dd := w.stmt(item.Body); dd > dmax {
				dmax = dd
			}
		}
		return d + dmax + 0.4
	case *verilog.ForStmt:
		// Synthesizable for loops unroll; charge body × trip estimate.
		return w.stmt(n.Body) * 4
	case *verilog.DelayStmt:
		return w.stmt(n.Body)
	case *verilog.EventStmt:
		return w.stmt(n.Body)
	default:
		return 0
	}
}

func (w *walker) lhsWidth(e verilog.Expr) int { return w.width(e) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
