package synth

import (
	"testing"

	"llm4eda/internal/benchset"
)

func TestSynthesizeAdder(t *testing.T) {
	p := benchset.ByID("adder4")
	r, err := SynthesizeRTL(p.Reference, p.TopModule, Options{})
	if err != nil {
		t.Fatalf("SynthesizeRTL: %v", err)
	}
	if r.Gates <= 0 || r.DelayNS <= 0 || r.PowerMW <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
}

func TestMultiplierCostsMoreThanAdder(t *testing.T) {
	add := benchset.ByID("adder4")
	mul := benchset.ByID("mult4")
	ra, err := SynthesizeRTL(add.Reference, add.TopModule, Options{})
	if err != nil {
		t.Fatalf("adder: %v", err)
	}
	rm, err := SynthesizeRTL(mul.Reference, mul.TopModule, Options{})
	if err != nil {
		t.Fatalf("mult: %v", err)
	}
	if rm.Gates <= ra.Gates {
		t.Errorf("multiplier gates %.0f <= adder %.0f", rm.Gates, ra.Gates)
	}
	if rm.DelayNS <= ra.DelayNS {
		t.Errorf("multiplier delay %.2f <= adder %.2f", rm.DelayNS, ra.DelayNS)
	}
}

func TestSequentialCountsRegs(t *testing.T) {
	p := benchset.ByID("counter8")
	r, err := SynthesizeRTL(p.Reference, p.TopModule, Options{})
	if err != nil {
		t.Fatalf("SynthesizeRTL: %v", err)
	}
	if r.Regs < 8 {
		t.Errorf("counter8 has %d reg bits, want >= 8", r.Regs)
	}
}

func TestStrengthReductionVisible(t *testing.T) {
	// The multiplier-by-constant version must cost more than the shift
	// version: this is the headroom the LLM rewrite (LLSM experiment)
	// exploits.
	mulSrc := `module m(input [7:0] a, output [7:0] y);
  assign y = (a * 4);
endmodule`
	shiftSrc := `module m(input [7:0] a, output [7:0] y);
  assign y = (a << 2);
endmodule`
	rm, err := SynthesizeRTL(mulSrc, "m", Options{})
	if err != nil {
		t.Fatalf("mul: %v", err)
	}
	rs, err := SynthesizeRTL(shiftSrc, "m", Options{})
	if err != nil {
		t.Fatalf("shift: %v", err)
	}
	if rm.Gates <= rs.Gates {
		t.Errorf("mul-by-const gates %.0f <= shift gates %.0f", rm.Gates, rs.Gates)
	}
}

func TestOptLevelFoldsAndShares(t *testing.T) {
	src := `module m(input [7:0] a, output [7:0] y, output [7:0] z);
  assign y = (a + 8'd3) + (2 + 5);
  assign z = (a + 8'd3) + 1;
endmodule`
	r0, err := SynthesizeRTL(src, "m", Options{OptLevel: 0, ClockMHz: 100, ToggleRate: 0.15})
	if err != nil {
		t.Fatalf("opt0: %v", err)
	}
	r1, err := SynthesizeRTL(src, "m", Options{OptLevel: 1})
	if err != nil {
		t.Fatalf("opt1: %v", err)
	}
	if r1.Gates >= r0.Gates {
		t.Errorf("opt1 gates %.0f >= opt0 %.0f", r1.Gates, r0.Gates)
	}
	if r1.FoldedOps == 0 {
		t.Error("constant folding never fired")
	}
	if r1.SharedOps == 0 {
		t.Error("CSE never fired")
	}
}

func TestHierarchyIncluded(t *testing.T) {
	src := `
module leaf(input [7:0] a, output [7:0] y);
  assign y = a * 3;
endmodule
module top(input [7:0] a, output [7:0] y);
  wire [7:0] t;
  leaf l1(.a(a), .y(t));
  leaf l2(.a(t), .y(y));
endmodule`
	rt, err := SynthesizeRTL(src, "top", Options{OptLevel: 0})
	if err != nil {
		t.Fatalf("top: %v", err)
	}
	rl, err := SynthesizeRTL(src, "leaf", Options{OptLevel: 0})
	if err != nil {
		t.Fatalf("leaf: %v", err)
	}
	if rt.Gates < 2*rl.Gates*0.9 {
		t.Errorf("hierarchy not accumulated: top %.0f vs leaf %.0f", rt.Gates, rl.Gates)
	}
}

func TestUnknownModule(t *testing.T) {
	if _, err := SynthesizeRTL("module m(); endmodule", "nope", Options{}); err == nil {
		t.Error("expected unknown-module error")
	}
	if _, err := SynthesizeRTL("not verilog", "m", Options{}); err == nil {
		t.Error("expected parse error")
	}
}

func TestAllBenchmarkReferencesSynthesize(t *testing.T) {
	for _, p := range benchset.Suite() {
		p := p
		t.Run(p.ID, func(t *testing.T) {
			r, err := SynthesizeRTL(p.Reference, p.TopModule, Options{})
			if err != nil {
				t.Fatalf("SynthesizeRTL: %v", err)
			}
			if r.Gates <= 0 {
				t.Errorf("zero gates for %s", p.ID)
			}
		})
	}
}
