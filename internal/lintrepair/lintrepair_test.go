package lintrepair

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/vlint"
)

// errorMutant returns an error-class lint mutant of the problem's
// reference, or nil when the reference admits none.
func errorMutant(p *benchset.Problem) *vlint.Mutant {
	for _, m := range vlint.Mutants(p.Reference) {
		if m.IsErrorClass() {
			mm := m
			return &mm
		}
	}
	return nil
}

// The full loop: an error-class mutant is rejected by the screen on
// round 1, the lint report drives repair, and the repaired candidate
// passes the reference testbench.
func TestRepairLoopConverges(t *testing.T) {
	p := benchset.ByID("alu8")
	m := errorMutant(p)
	if m == nil {
		t.Fatal("alu8 reference admits no error-class lint mutant")
	}
	farm := simfarm.New(simfarm.Options{})
	res, err := Run(context.Background(), p, m.Source, Options{
		Model:  llm.NewSimModel(llm.TierFrontier, 7),
		Rounds: 8,
		Screen: true,
		Farm:   farm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Errorf("screen did not reject the %s mutant on round 1", m.Class)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds", len(res.Rounds))
	}
	if !res.Rounds[0].Rejected || res.Rounds[0].Errors == 0 {
		t.Errorf("round 1 = %+v, want rejected with >0 error findings", res.Rounds[0])
	}
	if !res.Rounds[len(res.Rounds)-1].TBPassed {
		t.Error("final round did not pass the testbench")
	}
	if res.TokensOut == 0 {
		t.Error("no repair tokens accounted")
	}
	if got := farm.Stats().LintRejects; got == 0 {
		t.Error("farm counted no lint rejects")
	}
}

// Screening economics, isolated to one round: a rejected candidate must
// cost the farm no design elaboration and no simulation, while the
// screening-off control pays for both. Fresh farms per arm so neither
// serves the other's cache.
func TestScreeningSavesComputes(t *testing.T) {
	p := benchset.ByID("alu8")
	m := errorMutant(p)
	if m == nil {
		t.Fatal("no error-class mutant")
	}
	costOf := func(screen bool) uint64 {
		farm := simfarm.New(simfarm.Options{})
		if _, err := Run(context.Background(), p, m.Source, Options{
			Screen: screen,
			Farm:   farm,
		}); err != nil {
			t.Fatal(err)
		}
		st := farm.Stats()
		return st.Designs.Computes + st.Results.Computes
	}
	on, off := costOf(true), costOf(false)
	if on >= off {
		t.Errorf("screening on cost %d computes, off cost %d; want strictly fewer", on, off)
	}
	if on != 0 {
		t.Errorf("rejected candidate still cost %d farm computes", on)
	}
}

// The lint report reaches the model as feedback with the "lint:" marker
// that routes it to the high-rate syntactic-repair path.
func TestLintFeedbackRouting(t *testing.T) {
	p := benchset.ByID("and4")
	src := "module and4(input [3:0] a, output y);\n" +
		"  assign y = &a;\n  assign y = 1'b0;\nendmodule\n"
	farm := simfarm.New(simfarm.Options{})
	res, err := Run(context.Background(), p, src, Options{Screen: true, Farm: farm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || !res.Detected {
		t.Fatalf("multi-driven candidate: detected=%v converged=%v", res.Detected, res.Converged)
	}
	rej, lintErr := farm.Lint(src, p.TopModule)
	if lintErr != nil {
		t.Fatal(lintErr)
	}
	if !strings.Contains(strings.ToLower(vlint.Format(rej)), "lint:") {
		t.Errorf("lint report %q lacks the lint: routing marker", vlint.Format(rej))
	}
	prompt := llm.BuildLintRepairPrompt(p.Spec, src, vlint.Format(rej))
	if !strings.Contains(prompt, "line numbers refer to the RTL above") {
		t.Error("repair prompt does not anchor line numbers to the candidate")
	}
}

// A clean candidate sails through the screen and converges in one round
// with zero lint rejects — screening must be invisible to good RTL.
func TestCleanCandidatePasses(t *testing.T) {
	p := benchset.ByID("and4")
	farm := simfarm.New(simfarm.Options{})
	res, err := Run(context.Background(), p, p.Reference, Options{Screen: true, Farm: farm})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Detected || len(res.Rounds) != 1 {
		t.Fatalf("reference candidate: %+v", res)
	}
	if got := farm.Stats().LintRejects; got != 0 {
		t.Errorf("reference candidate produced %d lint rejects", got)
	}
}
