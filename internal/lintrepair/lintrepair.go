// Package lintrepair is the lint-guided repair loop (scenario E12): the
// static-analysis dual of the dynamic repair frameworks. Each round a
// candidate goes to the simulation farm with pre-simulation screening
// enabled; a candidate with error-severity lint findings is rejected
// before any VM compile or simulation, and the formatted lint report —
// source-line-attributed, like a compiler error — becomes the repair
// feedback. Candidates that pass the screen simulate normally, and
// functional failures fall back to ordinary testbench feedback. The
// farm's stats delta exposes the economics: with screening on, broken
// candidates cost a lint pass (cached by content) instead of a
// compile+simulate pair.
package lintrepair

import (
	"context"
	"errors"
	"fmt"

	"llm4eda/internal/benchset"
	"llm4eda/internal/core"
	"llm4eda/internal/llm"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/verilog"
	"llm4eda/internal/vlint"
)

// Options configure one lint-repair session.
type Options struct {
	RunSpec core.RunSpec
	// Model powers repair; nil runs a single screen-only round.
	Model llm.Model
	// Rounds bounds the loop (default 6).
	Rounds int
	// Screen enables pre-simulation lint screening. Disabling it keeps
	// the identical loop but pays a compile+simulation for every broken
	// candidate — the control arm of the E12 cost comparison.
	Screen bool
	// Temperature for repair generations.
	Temperature float64
	// Farm overrides the simulation farm (default: the shared farm).
	// The cost comparison uses two fresh farms so neither arm serves
	// the other's cached results.
	Farm *simfarm.Farm
}

// Round records one iteration.
type Round struct {
	N int
	// Rejected: screening stopped the candidate (error-severity lints).
	Rejected bool
	// Errors counts the error-severity findings the round saw.
	Errors int
	// TBPassed is the testbench verdict (always false when Rejected).
	TBPassed bool
	// Repaired marks that a repair generation followed this round.
	Repaired bool
}

// Result is one full session.
type Result struct {
	Problem string
	// Detected: the first round's screen rejected the initial candidate.
	Detected bool
	// Converged: the final candidate passes the reference testbench.
	Converged bool
	Rounds    []Round
	// Final is the last candidate.
	Final     string
	TokensIn  int
	TokensOut int
}

// Run drives the loop on one candidate until the testbench passes or
// the round budget expires.
func Run(ctx context.Context, p *benchset.Problem, candidate string, opts Options) (*Result, error) {
	opts.RunSpec = opts.RunSpec.WithDefaults()
	farm := opts.Farm
	if farm == nil {
		farm = simfarm.Default()
	}
	total := opts.Rounds
	if total <= 0 {
		total = 6
	}
	if opts.Model == nil {
		total = 1
	}
	sink := core.SinkOf(ctx)
	res := &Result{Problem: p.ID, Final: candidate}
	for round := 1; round <= total; round++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		sink.Emit(core.Event{Kind: core.EventPhaseStart, Framework: "lint",
			Phase: "round", Seq: round, Total: total})

		jobs, err := farm.RunManyCtx(ctx, []simfarm.Job{{
			DUT: candidate, TB: p.Testbench(), Top: "tb",
			DUTTop: p.TopModule, Lint: opts.Screen,
			Opts: verilog.SimOptions{Seed: opts.RunSpec.Seed},
		}}, 1)
		if err != nil {
			return res, err
		}
		out := jobs[0]

		r := Round{N: round}
		var feedback string
		var rej *vlint.RejectError
		switch {
		case errors.As(out.Err, &rej):
			r.Rejected = true
			r.Errors = len(rej.Diags)
			if round == 1 {
				res.Detected = true
			}
			feedback = rej.Error()
		case out.Err != nil:
			feedback = out.Err.Error()
		case out.Res.RuntimeErr != nil:
			feedback = fmt.Sprintf("simulation fault: %v", out.Res.RuntimeErr)
		case !out.Res.Passed():
			feedback = fmt.Sprintf("testbench failed: %d of %d checks failed (timed out=%v)",
				out.Res.Failures, out.Res.Checks, out.Res.TimedOut)
		default:
			r.TBPassed = true
		}

		ev := core.Event{Kind: core.EventCandidate, Framework: "lint",
			Phase: "screen", Seq: round, Total: total, OK: r.TBPassed}
		if r.TBPassed {
			ev.Detail = fmt.Sprintf("%s: clean — testbench passed", p.ID)
		} else if r.Rejected {
			ev.Detail = fmt.Sprintf("%s: rejected before simulation (%d lint errors)", p.ID, r.Errors)
		} else {
			ev.Detail = fmt.Sprintf("%s: %s", p.ID, head(feedback, 160))
		}
		sink.Emit(ev)

		if r.TBPassed {
			res.Converged = true
			res.Rounds = append(res.Rounds, r)
			sink.Emit(core.Event{Kind: core.EventPhaseEnd, Framework: "lint",
				Phase: "round", Seq: round, Total: total, OK: true})
			return res, nil
		}

		if opts.Model != nil && round < total {
			prompt := llm.BuildFeedbackPrompt(p.Spec, candidate, feedback)
			if r.Rejected {
				prompt = llm.BuildLintRepairPrompt(p.Spec, candidate, vlint.Format(rej.Diags))
			}
			resp, gerr := opts.Model.Generate(llm.Request{
				System: llm.SystemVerilogDesigner,
				Prompt: prompt,
				Task: llm.VerilogGen{
					ProblemID: p.ID, Spec: p.Spec,
					Reference: p.Reference, Difficulty: p.Difficulty,
					PrevAttempt: candidate, Feedback: feedback,
				},
				Temperature: opts.Temperature,
			})
			if gerr != nil {
				res.Rounds = append(res.Rounds, r)
				return res, gerr
			}
			res.TokensIn += resp.TokensIn
			res.TokensOut += resp.TokensOut
			sink.Emit(core.Event{Kind: core.EventLLMCall, Framework: "lint",
				Phase: "verilog-gen", Seq: round, TokensIn: resp.TokensIn, TokensOut: resp.TokensOut})
			candidate = resp.Text
			res.Final = candidate
			r.Repaired = true
		}
		res.Rounds = append(res.Rounds, r)
		sink.Emit(core.Event{Kind: core.EventPhaseEnd, Framework: "lint",
			Phase: "round", Seq: round, Total: total})
	}
	return res, nil
}

func head(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
