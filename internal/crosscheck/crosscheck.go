// Package crosscheck implements the paper's §VI future-work direction
// "High-Level Guided RTL Debugging": because LLMs are far more reliable
// at untimed behavioral models (C) than at HDL, a generated C model can
// serve as a reference for cross-level comparison — RTL simulation
// outputs are checked against high-level execution on shared stimuli,
// catching functional errors in generated HDL without a hand-written
// testbench.
//
// The checker supports the suite's combinational problems: it drives the
// candidate's ports with deterministic stimulus vectors in a generated
// bench, executes the C model on the same vectors through the chdl
// interpreter, and reports every disagreement with its input vector —
// localized evidence a debugging loop can feed back to the model.
package crosscheck

import (
	"context"
	"fmt"
	"strings"

	"llm4eda/internal/benchset"
	"llm4eda/internal/chdl"
	"llm4eda/internal/core"
	"llm4eda/internal/llm"
	"llm4eda/internal/simfarm"
	"llm4eda/internal/verilog"
)

// Mismatch is one cross-level disagreement.
type Mismatch struct {
	// Inputs maps input port names to the driven values.
	Inputs map[string]uint64
	// Port is the disagreeing output.
	Port string
	RTL  uint64
	// RTLKnown is false when the RTL output carried X bits.
	RTLKnown bool
	HighLvl  int64
}

// Result reports one cross-level validation.
type Result struct {
	// Vectors is the number of stimulus vectors compared.
	Vectors int
	// Mismatches lists every disagreement (empty = cross-level clean).
	Mismatches []Mismatch
	// CModel is the behavioral model used (generated or provided).
	CModel string
}

// Clean reports whether RTL and the high-level model agreed everywhere.
func (r *Result) Clean() bool { return len(r.Mismatches) == 0 }

// GenerateModel asks the LLM for an untimed C model of the problem. The
// paper's premise is that this generation is far more reliable than HDL
// generation; the simulated model reflects that (difficulty is treated as
// minimal for untimed C).
func GenerateModel(model llm.Model, p *benchset.Problem) (string, error) {
	if p.CModel == "" {
		return "", fmt.Errorf("crosscheck: problem %q has no behavioral reference", p.ID)
	}
	resp, err := model.Generate(llm.Request{
		System: llm.SystemHLSExpert,
		Prompt: "Write an untimed C model of this specification, one function per output:\n\n" + p.Spec,
		Task:   llm.CModelGen{Spec: p.Spec, Reference: p.CModel},
	})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// refHarness is the candidate-independent half of a validation: the
// parsed C model's expected outputs on every stimulus vector, plus the
// generated bench all candidates share. Building it once and fanning
// candidates out over it is the compile-once/run-many shape — the
// high-level reference is "solved" a single time per problem.
type refHarness struct {
	inputs, outputs []benchset.Port
	vectors         []map[string]uint64
	bench           string
	// want[vi][oi] is the C model's masked expected value.
	want [][]int64
}

// buildHarness parses the C model, generates stimuli and precomputes the
// expected output table.
func buildHarness(p *benchset.Problem, cModel string, nVectors int) (*refHarness, error) {
	if len(p.Ports) == 0 {
		return nil, fmt.Errorf("crosscheck: problem %q is not combinational", p.ID)
	}
	if nVectors <= 0 {
		nVectors = 32
	}
	prog, err := chdl.ParseC(cModel)
	if err != nil {
		return nil, fmt.Errorf("crosscheck: C model does not parse: %w", err)
	}

	h := &refHarness{}
	for _, port := range p.Ports {
		if port.IsInput {
			h.inputs = append(h.inputs, port)
		} else {
			h.outputs = append(h.outputs, port)
		}
	}
	for _, out := range h.outputs {
		if prog.FindFunc(out.Name) == nil {
			return nil, fmt.Errorf("crosscheck: C model lacks a function for output %q", out.Name)
		}
	}

	h.vectors = stimuli(h.inputs, nVectors)
	h.bench = buildBench(p.TopModule, h.inputs, h.outputs, h.vectors)
	h.want = make([][]int64, len(h.vectors))
	for vi, vec := range h.vectors {
		args := make([]int64, len(h.inputs))
		for i, in := range h.inputs {
			args[i] = int64(vec[in.Name])
		}
		h.want[vi] = make([]int64, len(h.outputs))
		for oi, out := range h.outputs {
			interp, err := chdl.NewInterp(prog, chdl.InterpOptions{})
			if err != nil {
				return nil, err
			}
			want, err := interp.CallInts(out.Name, args...)
			if err != nil {
				return nil, fmt.Errorf("crosscheck: C model failed on %v: %w", args, err)
			}
			h.want[vi][oi] = want & int64(maskBits(out.Width))
		}
	}
	return h, nil
}

// check compares one candidate's simulation outcome against the expected
// table.
func (h *refHarness) check(cModel string, sim *verilog.SimResult, simErr error) (*Result, error) {
	if simErr != nil {
		return nil, fmt.Errorf("crosscheck: candidate does not compile: %w", simErr)
	}
	if sim.RuntimeErr != nil {
		return nil, fmt.Errorf("crosscheck: candidate simulation failed: %w", sim.RuntimeErr)
	}
	rtlVals, err := parseBenchOutput(sim.Output, len(h.vectors), h.outputs)
	if err != nil {
		return nil, err
	}
	res := &Result{Vectors: len(h.vectors), CModel: cModel}
	for vi, vec := range h.vectors {
		for oi, out := range h.outputs {
			got := rtlVals[vi][oi]
			known := got.IsFullyKnown()
			if !known || int64(got.Uint()) != h.want[vi][oi] {
				res.Mismatches = append(res.Mismatches, Mismatch{
					Inputs:   vec,
					Port:     out.Name,
					RTL:      got.Uint(),
					RTLKnown: known,
					HighLvl:  h.want[vi][oi],
				})
			}
		}
	}
	return res, nil
}

// Validate cross-checks an RTL candidate against a C behavioral model on
// deterministic stimulus vectors. nVectors bounds the stimuli (default 32).
func Validate(ctx context.Context, candidate string, p *benchset.Problem, cModel string, nVectors int) (*Result, error) {
	batch, err := ValidateBatch(ctx, []string{candidate}, p, cModel, nVectors, 1)
	if err != nil {
		return nil, err
	}
	return batch[0].Res, batch[0].Err
}

// BatchItem is one candidate's outcome within a ValidateBatch call.
type BatchItem struct {
	Res *Result
	// Err carries per-candidate failures (compile error, simulation
	// fault); harness-level failures abort the whole batch instead.
	Err error
}

// ValidateBatch cross-checks many RTL candidates against one C behavioral
// model. The model's expected-output table is computed once, the shared
// stimulus bench is compiled once, and the candidates simulate through
// simfarm.RunManyCtx (workers <= 0 selects GOMAXPROCS). Results are in
// candidate order and match serial Validate calls, with one ordering
// caveat: C-model failures are harness-level and surface before any
// candidate is compiled. A cancelled ctx aborts the batch within one
// simulation and returns ctx.Err(); per-candidate verdicts stream to the
// context's event sink.
func ValidateBatch(ctx context.Context, candidates []string, p *benchset.Problem, cModel string, nVectors, workers int) ([]BatchItem, error) {
	h, err := buildHarness(p, cModel, nVectors)
	if err != nil {
		return nil, err
	}
	sink := core.SinkOf(ctx)
	jobs := make([]simfarm.Job, len(candidates))
	for i, cand := range candidates {
		jobs[i] = simfarm.Job{DUT: cand, TB: h.bench, Top: "xtb",
			DUTTop: p.TopModule, Lint: true, Opts: verilog.SimOptions{}}
	}
	results, err := simfarm.RunManyCtx(ctx, jobs, workers)
	if err != nil {
		return nil, err
	}
	items := make([]BatchItem, len(candidates))
	for i, r := range results {
		items[i].Res, items[i].Err = h.check(cModel, r.Res, r.Err)
		ev := core.Event{
			Kind: core.EventCandidate, Framework: "crosscheck", Phase: p.ID,
			Seq: i + 1, Total: len(candidates),
		}
		if items[i].Err != nil {
			ev.Detail = items[i].Err.Error()
		} else {
			ev.OK = items[i].Res.Clean()
			ev.Detail = fmt.Sprintf("%d mismatches over %d vectors",
				len(items[i].Res.Mismatches), items[i].Res.Vectors)
		}
		sink.Emit(ev)
	}
	return items, nil
}

// stimuli produces deterministic corner-plus-random vectors.
func stimuli(inputs []benchset.Port, n int) []map[string]uint64 {
	var out []map[string]uint64
	state := uint64(0xC0FFEE12345678)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	// Corners first: all zeros, all ones, alternating.
	corners := []func(w int) uint64{
		func(int) uint64 { return 0 },
		func(w int) uint64 { return maskBits(w) },
		func(w int) uint64 { return 0x5555555555555555 & maskBits(w) },
		func(w int) uint64 { return 1 },
	}
	for _, c := range corners {
		vec := map[string]uint64{}
		for _, in := range inputs {
			vec[in.Name] = c(in.Width)
		}
		out = append(out, vec)
	}
	for len(out) < n {
		vec := map[string]uint64{}
		for _, in := range inputs {
			vec[in.Name] = next() & maskBits(in.Width)
		}
		out = append(out, vec)
	}
	return out
}

// buildBench emits the stimulus bench printing "XCHK <v> <port> <%b>".
func buildBench(top string, inputs, outputs []benchset.Port, vectors []map[string]uint64) string {
	var b strings.Builder
	b.WriteString("module xtb;\n")
	var conns []string
	for _, in := range inputs {
		if in.Width > 1 {
			fmt.Fprintf(&b, "  reg [%d:0] %s;\n", in.Width-1, in.Name)
		} else {
			fmt.Fprintf(&b, "  reg %s;\n", in.Name)
		}
		conns = append(conns, fmt.Sprintf(".%s(%s)", in.Name, in.Name))
	}
	for _, out := range outputs {
		if out.Width > 1 {
			fmt.Fprintf(&b, "  wire [%d:0] %s;\n", out.Width-1, out.Name)
		} else {
			fmt.Fprintf(&b, "  wire %s;\n", out.Name)
		}
		conns = append(conns, fmt.Sprintf(".%s(%s)", out.Name, out.Name))
	}
	fmt.Fprintf(&b, "  %s dut(%s);\n", top, strings.Join(conns, ", "))
	b.WriteString("  initial begin\n")
	for vi, vec := range vectors {
		for _, in := range inputs {
			fmt.Fprintf(&b, "    %s = %d'd%d;\n", in.Name, in.Width, vec[in.Name])
		}
		b.WriteString("    #1;\n")
		for _, out := range outputs {
			fmt.Fprintf(&b, "    $display(\"XCHK %d %s %%b\", %s);\n", vi, out.Name, out.Name)
		}
	}
	b.WriteString("    $finish;\n  end\nendmodule\n")
	return b.String()
}

// parseBenchOutput recovers per-vector, per-output values.
func parseBenchOutput(out string, nVectors int, outputs []benchset.Port) ([][]verilog.Value, error) {
	vals := make([][]verilog.Value, nVectors)
	for i := range vals {
		vals[i] = make([]verilog.Value, len(outputs))
		for j, o := range outputs {
			vals[i][j] = verilog.AllX(o.Width)
		}
	}
	outIdx := map[string]int{}
	for j, o := range outputs {
		outIdx[o.Name] = j
	}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "XCHK" {
			continue
		}
		vi := atoi(fields[1])
		j, ok := outIdx[fields[2]]
		if vi < 0 || vi >= nVectors || !ok {
			continue
		}
		v, err := parseBinary(fields[3], outputs[j].Width)
		if err != nil {
			return nil, err
		}
		vals[vi][j] = v
	}
	return vals, nil
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// parseBinary reads a %b-formatted value (possibly with x bits).
func parseBinary(s string, width int) (verilog.Value, error) {
	var v verilog.Value
	v.Width = width
	for _, c := range s {
		v.Bits <<= 1
		v.Unknown <<= 1
		switch c {
		case '0':
		case '1':
			v.Bits |= 1
		case 'x', 'z':
			v.Unknown |= 1
		default:
			return verilog.Value{}, fmt.Errorf("crosscheck: bad binary output %q", s)
		}
	}
	return v, nil
}

func maskBits(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
