package crosscheck

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
)

func TestValidateCleanReference(t *testing.T) {
	for _, id := range []string{"adder4", "alu8", "parity8", "satadd8", "enc8to3"} {
		p := benchset.ByID(id)
		if p.CModel == "" {
			t.Fatalf("%s has no C model", id)
		}
		res, err := Validate(context.Background(), p.Reference, p, p.CModel, 24)
		if err != nil {
			t.Fatalf("%s: Validate: %v", id, err)
		}
		if !res.Clean() {
			t.Errorf("%s: reference flagged: %+v", id, res.Mismatches[0])
		}
		if res.Vectors < 24 {
			t.Errorf("%s: only %d vectors", id, res.Vectors)
		}
	}
}

func TestValidateCatchesInjectedBug(t *testing.T) {
	p := benchset.ByID("adder4")
	broken := strings.Replace(p.Reference, "a + b + cin", "a - b + cin", 1)
	res, err := Validate(context.Background(), broken, p, p.CModel, 24)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if res.Clean() {
		t.Fatal("broken adder passed cross-level check")
	}
	// The mismatch must carry localized evidence.
	m := res.Mismatches[0]
	if m.Port == "" || len(m.Inputs) == 0 {
		t.Errorf("mismatch lacks evidence: %+v", m)
	}
}

func TestValidateCatchesXOutput(t *testing.T) {
	p := benchset.ByID("alu8")
	// A design that never drives y for op==2: y goes X there.
	broken := `module alu8(input [1:0] op, input [7:0] a, input [7:0] b, output reg [7:0] y);
  always @(*) begin
    case (op)
      2'd0: y = a + b;
      2'd1: y = a - b;
      2'd3: y = a ^ b;
    endcase
  end
endmodule`
	res, err := Validate(context.Background(), broken, p, p.CModel, 24)
	if err != nil {
		// An always@(*) block with a path that assigns nothing may also
		// surface as a simulation diagnostic; both outcomes are a catch.
		return
	}
	if res.Clean() {
		t.Error("incomplete case passed cross-level check")
	}
}

func TestGenerateModelReliable(t *testing.T) {
	p := benchset.ByID("absdiff8")
	model := llm.NewSimModel(llm.TierFrontier, 5)
	clean := 0
	for i := 0; i < 10; i++ {
		cm, err := GenerateModel(model, p)
		if err != nil {
			t.Fatalf("GenerateModel: %v", err)
		}
		res, err := Validate(context.Background(), p.Reference, p, cm, 16)
		if err == nil && res.Clean() {
			clean++
		}
	}
	if clean < 9 {
		t.Errorf("frontier C models clean only %d/10 times; untimed C should be reliable", clean)
	}
}

// TestDebugLoopWithoutTestbench is the full §VI scenario: an HDL candidate
// with a bug is caught and repaired using only the generated C model —
// the reference testbench is used solely as final ground truth.
func TestDebugLoopWithoutTestbench(t *testing.T) {
	p := benchset.ByID("minmax8")
	model := llm.NewSimModel(llm.TierLarge, 77)
	cm, err := GenerateModel(model, p)
	if err != nil {
		t.Fatalf("GenerateModel: %v", err)
	}

	// Generate candidates until the cross-check flags one, then repair
	// with cross-level mismatch evidence as feedback.
	solvedViaCrossCheck := false
	for attempt := 0; attempt < 20 && !solvedViaCrossCheck; attempt++ {
		resp, err := model.Generate(llm.Request{
			Task:        llm.VerilogGen{ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty},
			Temperature: 1.1,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		res, err := Validate(context.Background(), resp.Text, p, cm, 24)
		if err != nil || res.Clean() {
			continue // need a flagged candidate to exercise the loop
		}
		// Build feedback from cross-level evidence only.
		var fb strings.Builder
		fb.WriteString("cross-level mismatches against the behavioral model:\n")
		for i, m := range res.Mismatches {
			if i >= 5 {
				break
			}
			fb.WriteString(" - output ")
			fb.WriteString(m.Port)
			fb.WriteString(" disagrees\n")
		}
		fixed, err := model.Generate(llm.Request{
			Task: llm.VerilogGen{
				ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty,
				PrevAttempt: resp.Text, Feedback: fb.String(),
			},
		})
		if err != nil {
			t.Fatalf("repair: %v", err)
		}
		res2, err := Validate(context.Background(), fixed.Text, p, cm, 24)
		if err == nil && res2.Clean() {
			solvedViaCrossCheck = true
		}
	}
	if !solvedViaCrossCheck {
		t.Skip("no flagged candidate repaired in the attempt budget (seed-dependent)")
	}
}

func TestValidateRejectsSequential(t *testing.T) {
	p := benchset.ByID("counter8")
	if _, err := Validate(context.Background(), p.Reference, p, "int q(int clk) { return 0; }", 8); err == nil {
		t.Error("expected rejection for sequential problem")
	}
}

func TestValidateRejectsBadModel(t *testing.T) {
	p := benchset.ByID("adder4")
	if _, err := Validate(context.Background(), p.Reference, p, "not c", 8); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Validate(context.Background(), p.Reference, p, "int wrongname(int a) { return a; }", 8); err == nil {
		t.Error("expected missing-function error")
	}
}
