// Package isa defines the RV32-like instruction set the reproduction uses
// as its processor substrate, plus a compiler from the chdl C subset and a
// tiny assembler. The SLT case study (paper §V) compiles generated C
// snippets to this ISA and runs them on the boom timing/power model.
//
// The machine is word-addressed (one cell per address, like chdl's memory
// model) and abstract: branch/jump targets are instruction indices, not
// byte offsets. That removes encoding concerns while preserving everything
// the microarchitectural model cares about: instruction classes, register
// dependencies, memory addresses and branch behavior.
package isa

import "fmt"

// Op enumerates the instruction opcodes.
type Op int

// Opcodes. The set mirrors RV32IM plus a HALT pseudo-op.
const (
	OpAdd Op = iota + 1
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu
	OpMul
	OpMulh
	OpDiv
	OpRem
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui
	OpLw
	OpSw
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal
	OpJalr
	OpHalt
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpMul: "mul", OpMulh: "mulh", OpDiv: "div", OpRem: "rem",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti",
	OpLui: "lui", OpLw: "lw", OpSw: "sw",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJal: "jal", OpJalr: "jalr", OpHalt: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// FUClass identifies which functional unit executes an instruction; the
// boom power model charges energy per class.
type FUClass int

// Functional-unit classes.
const (
	FUALU FUClass = iota + 1
	FUMul
	FUDiv
	FULoad
	FUStore
	FUBranch
)

// String returns the class name.
func (c FUClass) String() string {
	switch c {
	case FUALU:
		return "alu"
	case FUMul:
		return "mul"
	case FUDiv:
		return "div"
	case FULoad:
		return "load"
	case FUStore:
		return "store"
	case FUBranch:
		return "branch"
	default:
		return fmt.Sprintf("fu(%d)", int(c))
	}
}

// Class maps an opcode to its functional unit.
func (o Op) Class() FUClass {
	switch o {
	case OpMul, OpMulh:
		return FUMul
	case OpDiv, OpRem:
		return FUDiv
	case OpLw:
		return FULoad
	case OpSw:
		return FUStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJal, OpJalr:
		return FUBranch
	default:
		return FUALU
	}
}

// IsBranch reports conditional branches (not jumps).
func (o Op) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	default:
		return false
	}
}

// Inst is one instruction. Rd/Rs1/Rs2 are register indices (0..31, x0
// hard-wired to zero). Imm is the immediate or, for branches/JAL, the
// absolute target instruction index.
type Inst struct {
	Op  Op
	Rd  int
	Rs1 int
	Rs2 int
	Imm int64
}

// String renders the instruction in assembly-like form.
func (i Inst) String() string {
	switch {
	case i.Op == OpHalt:
		return "halt"
	case i.Op == OpJal:
		return fmt.Sprintf("jal x%d, %d", i.Rd, i.Imm)
	case i.Op == OpJalr:
		return fmt.Sprintf("jalr x%d, x%d, %d", i.Rd, i.Rs1, i.Imm)
	case i.Op.IsBranch():
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op == OpLw:
		return fmt.Sprintf("lw x%d, %d(x%d)", i.Rd, i.Imm, i.Rs1)
	case i.Op == OpSw:
		return fmt.Sprintf("sw x%d, %d(x%d)", i.Rs2, i.Imm, i.Rs1)
	case i.Op == OpLui:
		return fmt.Sprintf("lui x%d, %d", i.Rd, i.Imm)
	case isImmOp(i.Op):
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s x%d, x%d, x%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

func isImmOp(o Op) bool {
	switch o {
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti:
		return true
	default:
		return false
	}
}

// Register-convention indices.
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
	RegGP   = 3
	RegA0   = 10
)

// Program is a compiled unit: instructions, entry points per function, and
// the number of words reserved for globals (placed at address 0; the
// stack grows down from MemWords).
type Program struct {
	Insts       []Inst
	Entry       map[string]int
	GlobalWords int
	// Start is the bootstrap index (sets up sp/gp, calls main entry, halts).
	Start int
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	out := ""
	rev := map[int]string{}
	for name, idx := range p.Entry {
		rev[idx] = name
	}
	for i, ins := range p.Insts {
		if name, ok := rev[i]; ok {
			out += fmt.Sprintf("%s:\n", name)
		}
		out += fmt.Sprintf("  %4d: %s\n", i, ins)
	}
	return out
}
