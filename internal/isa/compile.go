package isa

import (
	"fmt"

	"llm4eda/internal/chdl"
)

// CompileError is a positioned compilation failure. In the SLT loop a
// non-compiling snippet scores zero, exactly as in the paper.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("isa compile error at line %d: %s", e.Line, e.Msg)
}

// temp registers available for expression evaluation (t0-t6 in RV terms).
var tempRegs = []int{5, 6, 7, 28, 29, 30, 31}

// Compile lowers a chdl program to the abstract RV32-like ISA. The entry
// function becomes the bootstrap target; all functions are compiled so
// calls between them work. Pointers and dynamic memory are unsupported
// (the SLT snippet grammar never produces them); such programs fail with
// a CompileError, which the optimization loop scores as zero.
func Compile(prog *chdl.Program, entry string) (*Program, error) {
	if prog.FindFunc(entry) == nil {
		return nil, &CompileError{Msg: fmt.Sprintf("entry function %q not defined", entry)}
	}
	c := &compiler{
		prog:    prog,
		out:     &Program{Entry: map[string]int{}},
		globals: map[string]globalInfo{},
	}
	// Lay out globals.
	for _, g := range prog.Globals {
		if err := c.layoutGlobal(g); err != nil {
			return nil, err
		}
	}
	// Bootstrap: initialize globals, call entry, halt. Target patched later.
	for _, g := range prog.Globals {
		if err := c.emitGlobalInit(g); err != nil {
			return nil, err
		}
	}
	callIdx := len(c.out.Insts)
	c.emit(Inst{Op: OpJal, Rd: RegRA, Imm: 0})
	c.emit(Inst{Op: OpHalt})

	for _, fn := range prog.Funcs {
		if err := c.compileFunc(fn); err != nil {
			return nil, err
		}
	}
	entryIdx, ok := c.out.Entry[entry]
	if !ok {
		return nil, &CompileError{Msg: fmt.Sprintf("entry %q did not compile", entry)}
	}
	c.out.Insts[callIdx].Imm = int64(entryIdx)
	for _, cp := range c.callFix {
		target, ok := c.out.Entry[cp.name]
		if !ok {
			return nil, &CompileError{Msg: fmt.Sprintf("call to unknown function %q", cp.name)}
		}
		c.out.Insts[cp.idx].Imm = int64(target)
	}
	c.out.Start = 0
	c.out.GlobalWords = c.globalTop
	return c.out, nil
}

type globalInfo struct {
	off     int
	size    int
	isArray bool
}

type localInfo struct {
	off     int // sp-relative cell offset
	size    int // 1 for scalars, N for arrays
	isArray bool
}

type compiler struct {
	prog      *chdl.Program
	out       *Program
	globals   map[string]globalInfo
	globalTop int

	// per-function state
	fn        *chdl.FuncDecl
	scopes    []map[string]localInfo
	frameSize int
	tempInUse map[int]bool
	nextSlot  int
	breakFix  [][]int // stacks of instruction indices to patch
	contFix   [][]int
	epilogFix []int
	callFix   []callPatch
}

// callPatch records a call site whose target entry is resolved after all
// functions have been compiled (forward references).
type callPatch struct {
	idx  int
	name string
}

func (c *compiler) emit(i Inst) int {
	c.out.Insts = append(c.out.Insts, i)
	return len(c.out.Insts) - 1
}

func (c *compiler) layoutGlobal(g *chdl.VarDecl) error {
	size := 1
	if g.Type.Kind == chdl.KindArray {
		size = g.Type.ArrayLen
		if size < 0 {
			size = len(g.InitList)
		}
		if size <= 0 {
			return &CompileError{Line: g.Line, Msg: fmt.Sprintf("global array %q has no static size", g.Name)}
		}
	}
	if g.Type.Kind == chdl.KindPtr {
		return &CompileError{Line: g.Line, Msg: fmt.Sprintf("global pointer %q unsupported by the ISA backend", g.Name)}
	}
	c.globals[g.Name] = globalInfo{off: c.globalTop, size: size, isArray: g.Type.Kind == chdl.KindArray}
	c.globalTop += size
	return nil
}

func (c *compiler) emitGlobalInit(g *chdl.VarDecl) error {
	info := c.globals[g.Name]
	initCell := func(off int, val int64) {
		if val == 0 {
			return // memory starts zeroed
		}
		c.emit(Inst{Op: OpAddi, Rd: tempRegs[0], Rs1: RegZero, Imm: val})
		c.emit(Inst{Op: OpSw, Rs1: RegGP, Rs2: tempRegs[0], Imm: int64(off)})
	}
	if g.Init != nil {
		lit, ok := g.Init.(*chdl.IntLit)
		if !ok {
			return &CompileError{Line: g.Line, Msg: fmt.Sprintf("global %q needs a constant initializer", g.Name)}
		}
		initCell(info.off, lit.Val)
	}
	for i, e := range g.InitList {
		lit, ok := e.(*chdl.IntLit)
		if !ok {
			return &CompileError{Line: g.Line, Msg: fmt.Sprintf("global %q needs constant initializers", g.Name)}
		}
		initCell(info.off+i, lit.Val)
	}
	return nil
}

// frameLayout pre-walks a function body to size its stack frame.
func frameLayout(fn *chdl.FuncDecl) (int, error) {
	size := 1 // slot 0: saved ra
	var walk func(st chdl.Stmt) error
	count := func(d *chdl.VarDecl) error {
		switch d.Type.Kind {
		case chdl.KindPtr:
			return &CompileError{Line: d.Line, Msg: fmt.Sprintf("pointer variable %q unsupported by the ISA backend", d.Name)}
		case chdl.KindArray:
			n := d.Type.ArrayLen
			if n < 0 {
				n = len(d.InitList)
			}
			if n <= 0 {
				return &CompileError{Line: d.Line, Msg: fmt.Sprintf("array %q has no static size", d.Name)}
			}
			if d.Type.Elem.Kind == chdl.KindArray {
				return &CompileError{Line: d.Line, Msg: "multi-dimensional arrays unsupported by the ISA backend"}
			}
			size += n
		default:
			size++
		}
		return nil
	}
	walk = func(st chdl.Stmt) error {
		switch n := st.(type) {
		case *chdl.BlockStmt:
			for _, s := range n.Stmts {
				if err := walk(s); err != nil {
					return err
				}
			}
		case *chdl.DeclStmt:
			for _, d := range n.Decls {
				if err := count(d); err != nil {
					return err
				}
			}
		case *chdl.IfStmt:
			if err := walk(n.Then); err != nil {
				return err
			}
			if n.Else != nil {
				return walk(n.Else)
			}
		case *chdl.ForStmt:
			if n.Init != nil {
				if err := walk(n.Init); err != nil {
					return err
				}
			}
			return walk(n.Body)
		case *chdl.WhileStmt:
			return walk(n.Body)
		case *chdl.DoStmt:
			return walk(n.Body)
		}
		return nil
	}
	for range fn.Params {
		size++
	}
	if err := walk(fn.Body); err != nil {
		return 0, err
	}
	return size, nil
}

func (c *compiler) compileFunc(fn *chdl.FuncDecl) error {
	frame, err := frameLayout(fn)
	if err != nil {
		return err
	}
	c.fn = fn
	c.frameSize = frame
	c.scopes = []map[string]localInfo{{}}
	c.tempInUse = map[int]bool{}
	c.epilogFix = nil
	c.out.Entry[fn.Name] = len(c.out.Insts)

	// Prologue.
	c.emit(Inst{Op: OpAddi, Rd: RegSP, Rs1: RegSP, Imm: -int64(frame)})
	c.emit(Inst{Op: OpSw, Rs1: RegSP, Rs2: RegRA, Imm: 0})
	next := 1
	for i, prm := range fn.Params {
		if prm.Type.Kind == chdl.KindPtr || prm.Type.Kind == chdl.KindArray {
			return &CompileError{Line: prm.Line, Msg: fmt.Sprintf("pointer/array parameter %q unsupported by the ISA backend", prm.Name)}
		}
		if i >= 8 {
			return &CompileError{Line: fn.Line, Msg: "more than 8 parameters unsupported"}
		}
		c.scopes[0][prm.Name] = localInfo{off: next, size: 1}
		c.emit(Inst{Op: OpSw, Rs1: RegSP, Rs2: RegA0 + i, Imm: int64(next)})
		next++
	}
	c.nextSlot = next

	if err := c.stmt(fn.Body); err != nil {
		return err
	}
	// Fall-through return (void or missing return): a0 = 0.
	c.emit(Inst{Op: OpAddi, Rd: RegA0, Rs1: RegZero, Imm: 0})
	epi := len(c.out.Insts)
	for _, idx := range c.epilogFix {
		c.out.Insts[idx].Imm = int64(epi)
	}
	c.emit(Inst{Op: OpLw, Rd: RegRA, Rs1: RegSP, Imm: 0})
	c.emit(Inst{Op: OpAddi, Rd: RegSP, Rs1: RegSP, Imm: int64(frame)})
	c.emit(Inst{Op: OpJalr, Rd: RegZero, Rs1: RegRA, Imm: 0})
	return nil
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, map[string]localInfo{}) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) lookupLocal(name string) (localInfo, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if li, ok := c.scopes[i][name]; ok {
			return li, true
		}
	}
	return localInfo{}, false
}

func (c *compiler) allocTemp(line int) (int, error) {
	for _, r := range tempRegs {
		if !c.tempInUse[r] {
			c.tempInUse[r] = true
			return r, nil
		}
	}
	return 0, &CompileError{Line: line, Msg: "expression too deep for the register allocator"}
}

func (c *compiler) freeTemp(r int) { delete(c.tempInUse, r) }

// --- statements -----------------------------------------------------------

func (c *compiler) stmt(st chdl.Stmt) error {
	switch n := st.(type) {
	case nil, *chdl.PragmaStmt:
		return nil

	case *chdl.BlockStmt:
		c.pushScope()
		defer c.popScope()
		for _, s := range n.Stmts {
			if err := c.stmt(s); err != nil {
				return err
			}
		}
		return nil

	case *chdl.DeclStmt:
		for _, d := range n.Decls {
			if err := c.declLocal(d); err != nil {
				return err
			}
		}
		return nil

	case *chdl.ExprStmt:
		r, err := c.expr(n.X)
		if err != nil {
			return err
		}
		c.freeTemp(r)
		return nil

	case *chdl.IfStmt:
		cond, err := c.expr(n.Cond)
		if err != nil {
			return err
		}
		br := c.emit(Inst{Op: OpBeq, Rs1: cond, Rs2: RegZero}) // to else/end
		c.freeTemp(cond)
		if err := c.stmt(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			jmp := c.emit(Inst{Op: OpJal, Rd: RegZero})
			c.out.Insts[br].Imm = int64(len(c.out.Insts))
			if err := c.stmt(n.Else); err != nil {
				return err
			}
			c.out.Insts[jmp].Imm = int64(len(c.out.Insts))
		} else {
			c.out.Insts[br].Imm = int64(len(c.out.Insts))
		}
		return nil

	case *chdl.ForStmt:
		c.pushScope()
		defer c.popScope()
		if n.Init != nil {
			if err := c.stmt(n.Init); err != nil {
				return err
			}
		}
		head := len(c.out.Insts)
		var exitBr int = -1
		if n.Cond != nil {
			cond, err := c.expr(n.Cond)
			if err != nil {
				return err
			}
			exitBr = c.emit(Inst{Op: OpBeq, Rs1: cond, Rs2: RegZero})
			c.freeTemp(cond)
		}
		c.breakFix = append(c.breakFix, nil)
		c.contFix = append(c.contFix, nil)
		if err := c.stmt(n.Body); err != nil {
			return err
		}
		contTarget := len(c.out.Insts)
		if n.Post != nil {
			r, err := c.expr(n.Post)
			if err != nil {
				return err
			}
			c.freeTemp(r)
		}
		c.emit(Inst{Op: OpJal, Rd: RegZero, Imm: int64(head)})
		end := len(c.out.Insts)
		if exitBr >= 0 {
			c.out.Insts[exitBr].Imm = int64(end)
		}
		c.patchLoop(end, contTarget)
		return nil

	case *chdl.WhileStmt:
		head := len(c.out.Insts)
		cond, err := c.expr(n.Cond)
		if err != nil {
			return err
		}
		exitBr := c.emit(Inst{Op: OpBeq, Rs1: cond, Rs2: RegZero})
		c.freeTemp(cond)
		c.breakFix = append(c.breakFix, nil)
		c.contFix = append(c.contFix, nil)
		if err := c.stmt(n.Body); err != nil {
			return err
		}
		c.emit(Inst{Op: OpJal, Rd: RegZero, Imm: int64(head)})
		end := len(c.out.Insts)
		c.out.Insts[exitBr].Imm = int64(end)
		c.patchLoop(end, head)
		return nil

	case *chdl.DoStmt:
		head := len(c.out.Insts)
		c.breakFix = append(c.breakFix, nil)
		c.contFix = append(c.contFix, nil)
		if err := c.stmt(n.Body); err != nil {
			return err
		}
		contTarget := len(c.out.Insts)
		cond, err := c.expr(n.Cond)
		if err != nil {
			return err
		}
		c.emit(Inst{Op: OpBne, Rs1: cond, Rs2: RegZero, Imm: int64(head)})
		c.freeTemp(cond)
		end := len(c.out.Insts)
		c.patchLoop(end, contTarget)
		return nil

	case *chdl.ReturnStmt:
		if n.X != nil {
			r, err := c.expr(n.X)
			if err != nil {
				return err
			}
			c.emit(Inst{Op: OpAdd, Rd: RegA0, Rs1: r, Rs2: RegZero})
			c.freeTemp(r)
		} else {
			c.emit(Inst{Op: OpAddi, Rd: RegA0, Rs1: RegZero, Imm: 0})
		}
		c.epilogFix = append(c.epilogFix, c.emit(Inst{Op: OpJal, Rd: RegZero}))
		return nil

	case *chdl.BreakStmt:
		if len(c.breakFix) == 0 {
			return &CompileError{Line: n.Line, Msg: "break outside loop"}
		}
		idx := c.emit(Inst{Op: OpJal, Rd: RegZero})
		c.breakFix[len(c.breakFix)-1] = append(c.breakFix[len(c.breakFix)-1], idx)
		return nil

	case *chdl.ContinueStmt:
		if len(c.contFix) == 0 {
			return &CompileError{Line: n.Line, Msg: "continue outside loop"}
		}
		idx := c.emit(Inst{Op: OpJal, Rd: RegZero})
		c.contFix[len(c.contFix)-1] = append(c.contFix[len(c.contFix)-1], idx)
		return nil

	default:
		return &CompileError{Msg: fmt.Sprintf("unsupported statement %T", st)}
	}
}

// patchLoop resolves break/continue jumps for the innermost loop.
func (c *compiler) patchLoop(breakTo, contTo int) {
	for _, idx := range c.breakFix[len(c.breakFix)-1] {
		c.out.Insts[idx].Imm = int64(breakTo)
	}
	for _, idx := range c.contFix[len(c.contFix)-1] {
		c.out.Insts[idx].Imm = int64(contTo)
	}
	c.breakFix = c.breakFix[:len(c.breakFix)-1]
	c.contFix = c.contFix[:len(c.contFix)-1]
}

func (c *compiler) declLocal(d *chdl.VarDecl) error {
	switch d.Type.Kind {
	case chdl.KindPtr:
		return &CompileError{Line: d.Line, Msg: fmt.Sprintf("pointer variable %q unsupported by the ISA backend", d.Name)}
	case chdl.KindArray:
		n := d.Type.ArrayLen
		if n < 0 {
			n = len(d.InitList)
		}
		li := localInfo{off: c.nextSlot, size: n, isArray: true}
		c.nextSlot += n
		c.scopes[len(c.scopes)-1][d.Name] = li
		for i, e := range d.InitList {
			r, err := c.expr(e)
			if err != nil {
				return err
			}
			c.emit(Inst{Op: OpSw, Rs1: RegSP, Rs2: r, Imm: int64(li.off + i)})
			c.freeTemp(r)
		}
		return nil
	default:
		li := localInfo{off: c.nextSlot, size: 1}
		c.nextSlot++
		c.scopes[len(c.scopes)-1][d.Name] = li
		if d.Init != nil {
			r, err := c.expr(d.Init)
			if err != nil {
				return err
			}
			c.emit(Inst{Op: OpSw, Rs1: RegSP, Rs2: r, Imm: int64(li.off)})
			c.freeTemp(r)
		} else {
			c.emit(Inst{Op: OpSw, Rs1: RegSP, Rs2: RegZero, Imm: int64(li.off)})
		}
		return nil
	}
}
