package isa

import (
	"testing"
	"testing/quick"

	"llm4eda/internal/chdl"
)

func compileC(t *testing.T, src, entry string) *Program {
	t.Helper()
	prog, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("ParseC: %v", err)
	}
	p, err := Compile(prog, entry)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// runISA is a minimal in-order functional executor used to validate the
// compiler independently of the boom timing model.
func runISA(t *testing.T, p *Program, maxSteps int) int32 {
	t.Helper()
	v, err := Interpret(p, maxSteps)
	if err != nil {
		t.Fatalf("Interpret: %v", err)
	}
	return v
}

func TestCompileArithmetic(t *testing.T) {
	src := `
int calc(int a, int b) {
    int x = a * b + 7;
    x = x ^ (a << 2);
    x = x - (b >> 1);
    return x;
}
int main() { return calc(9, 5); }`
	p := compileC(t, src, "main")
	want := func(a, b int32) int32 {
		x := a*b + 7
		x = x ^ (a << 2)
		x = x - (b >> 1)
		return x
	}(9, 5)
	if got := runISA(t, p, 100000); got != want {
		t.Errorf("calc = %d, want %d", got, want)
	}
}

func TestCompileLoopsAndArrays(t *testing.T) {
	src := `
int main() {
    int a[16];
    for (int i = 0; i < 16; i++) a[i] = i * i;
    int total = 0;
    for (int i = 0; i < 16; i++) total += a[i];
    return total;
}`
	p := compileC(t, src, "main")
	if got := runISA(t, p, 1000000); got != 1240 {
		t.Errorf("sum of squares = %d, want 1240", got)
	}
}

func TestCompileRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`
	p := compileC(t, src, "main")
	if got := runISA(t, p, 10_000_000); got != 144 {
		t.Errorf("fib(12) = %d, want 144", got)
	}
}

func TestCompileGlobals(t *testing.T) {
	src := `
int lut[4] = {3, 1, 4, 1};
int scale = 10;
int main() {
    int total = 0;
    for (int i = 0; i < 4; i++) total += lut[i] * scale;
    return total;
}`
	p := compileC(t, src, "main")
	if got := runISA(t, p, 100000); got != 90 {
		t.Errorf("globals = %d, want 90", got)
	}
}

func TestCompileShortCircuit(t *testing.T) {
	src := `
int main() {
    int hits = 0;
    for (int i = 0; i < 10; i++) {
        if (i > 2 && i < 7) hits++;
        if (i == 0 || i == 9) hits += 10;
    }
    return hits;
}`
	p := compileC(t, src, "main")
	if got := runISA(t, p, 100000); got != 24 {
		t.Errorf("short-circuit = %d, want 24", got)
	}
}

func TestCompileBreakContinue(t *testing.T) {
	src := `
int main() {
    int total = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        total += i;
    }
    return total;
}`
	p := compileC(t, src, "main")
	if got := runISA(t, p, 100000); got != 1+3+5+7+9 {
		t.Errorf("break/continue = %d, want 25", got)
	}
}

func TestCompileWhileDo(t *testing.T) {
	src := `
int main() {
    int n = 100;
    int steps = 0;
    while (n > 1) {
        if (n % 2 == 0) n /= 2;
        else n = 3 * n + 1;
        steps++;
    }
    do { steps += 1000; } while (0);
    return steps;
}`
	p := compileC(t, src, "main")
	if got := runISA(t, p, 1000000); got != 25+1000 {
		t.Errorf("while/do = %d, want 1025", got)
	}
}

func TestCompileRejectsPointers(t *testing.T) {
	src := `
int main() {
    int *p = 0;
    return 0;
}`
	prog, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("ParseC: %v", err)
	}
	if _, err := Compile(prog, "main"); err == nil {
		t.Error("expected pointer compile error")
	}
}

func TestCompileRejectsMalloc(t *testing.T) {
	src := `int main() { int x = malloc(4); return x; }`
	prog, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("ParseC: %v", err)
	}
	if _, err := Compile(prog, "main"); err == nil {
		t.Error("expected malloc compile error")
	}
}

// TestCompilerMatchesInterpreter cross-checks ISA execution against the
// chdl interpreter on a randomized arithmetic kernel: the property that
// grounds the whole SLT substrate.
func TestCompilerMatchesInterpreter(t *testing.T) {
	src := `
int kernel(int a, int b, int c) {
    int acc = 0;
    int buf[8];
    for (int i = 0; i < 8; i++) buf[i] = (a + i) * (b - i);
    for (int i = 0; i < 8; i++) {
        if (buf[i] % 3 == 0) acc += buf[i] / (c | 1);
        else acc ^= buf[i] << (i & 3);
    }
    while (acc > 1000000) acc /= 7;
    return acc;
}`
	cprog, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("ParseC: %v", err)
	}
	iprog, err := Compile(cprog, "kernel")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	check := func(a, b, c int16) bool {
		in, err := chdl.NewInterp(cprog, chdl.InterpOptions{})
		if err != nil {
			return false
		}
		want, err := in.CallInts("kernel", int64(a), int64(b), int64(c))
		if err != nil {
			return false
		}
		got, err := InterpretArgs(iprog, "kernel", 10_000_000, int32(a), int32(b), int32(c))
		if err != nil {
			return false
		}
		return int64(got) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleStable(t *testing.T) {
	src := `int main() { return 1 + 2; }`
	p := compileC(t, src, "main")
	d := p.Disassemble()
	if d == "" {
		t.Error("empty disassembly")
	}
}
