package isa

import (
	"fmt"

	"llm4eda/internal/chdl"
)

// expr generates code computing e into a freshly allocated temp register,
// which the caller must free.
func (c *compiler) expr(e chdl.Expr) (int, error) {
	switch n := e.(type) {
	case *chdl.IntLit:
		r, err := c.allocTemp(n.Line)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpAddi, Rd: r, Rs1: RegZero, Imm: n.Val})
		return r, nil

	case *chdl.VarRef:
		r, err := c.allocTemp(n.Line)
		if err != nil {
			return 0, err
		}
		if li, ok := c.lookupLocal(n.Name); ok {
			if li.isArray {
				c.emit(Inst{Op: OpAddi, Rd: r, Rs1: RegSP, Imm: int64(li.off)})
			} else {
				c.emit(Inst{Op: OpLw, Rd: r, Rs1: RegSP, Imm: int64(li.off)})
			}
			return r, nil
		}
		if gi, ok := c.globals[n.Name]; ok {
			if gi.isArray {
				c.emit(Inst{Op: OpAddi, Rd: r, Rs1: RegGP, Imm: int64(gi.off)})
			} else {
				c.emit(Inst{Op: OpLw, Rd: r, Rs1: RegGP, Imm: int64(gi.off)})
			}
			return r, nil
		}
		c.freeTemp(r)
		return 0, &CompileError{Line: n.Line, Msg: fmt.Sprintf("undefined variable %q", n.Name)}

	case *chdl.IndexExpr:
		addr, err := c.address(n)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpLw, Rd: addr, Rs1: addr, Imm: 0})
		return addr, nil

	case *chdl.AssignExpr:
		return c.assign(n)

	case *chdl.BinExpr:
		return c.binary(n)

	case *chdl.UnExpr:
		return c.unary(n)

	case *chdl.PostfixExpr:
		// Evaluate to old value, then increment storage.
		old, err := c.expr(n.X)
		if err != nil {
			return 0, err
		}
		delta := int64(1)
		if n.Op == "--" {
			delta = -1
		}
		nv, err := c.allocTemp(n.Line)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpAddi, Rd: nv, Rs1: old, Imm: delta})
		if err := c.store(n.X, nv, n.Line); err != nil {
			return 0, err
		}
		c.freeTemp(nv)
		return old, nil

	case *chdl.CondExpr:
		res, err := c.allocTemp(n.Line)
		if err != nil {
			return 0, err
		}
		cond, err := c.expr(n.Cond)
		if err != nil {
			return 0, err
		}
		br := c.emit(Inst{Op: OpBeq, Rs1: cond, Rs2: RegZero})
		c.freeTemp(cond)
		rt, err := c.expr(n.Then)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpAdd, Rd: res, Rs1: rt, Rs2: RegZero})
		c.freeTemp(rt)
		jmp := c.emit(Inst{Op: OpJal, Rd: RegZero})
		c.out.Insts[br].Imm = int64(len(c.out.Insts))
		re, err := c.expr(n.Else)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpAdd, Rd: res, Rs1: re, Rs2: RegZero})
		c.freeTemp(re)
		c.out.Insts[jmp].Imm = int64(len(c.out.Insts))
		return res, nil

	case *chdl.CallExpr:
		return c.callExpr(n)

	case *chdl.CastExpr:
		r, err := c.expr(n.X)
		if err != nil {
			return 0, err
		}
		if n.To.Kind == chdl.KindChar {
			c.emit(Inst{Op: OpSlli, Rd: r, Rs1: r, Imm: 24})
			c.emit(Inst{Op: OpSrai, Rd: r, Rs1: r, Imm: 24})
		}
		return r, nil

	case *chdl.SizeofExpr:
		r, err := c.allocTemp(n.Line)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpAddi, Rd: r, Rs1: RegZero, Imm: 1})
		return r, nil

	default:
		return 0, &CompileError{Msg: fmt.Sprintf("unsupported expression %T", e)}
	}
}

// address computes the cell address of an index expression into a temp.
func (c *compiler) address(n *chdl.IndexExpr) (int, error) {
	vr, ok := n.X.(*chdl.VarRef)
	if !ok {
		return 0, &CompileError{Line: n.Line, Msg: "only direct array indexing is supported by the ISA backend"}
	}
	base, err := c.allocTemp(n.Line)
	if err != nil {
		return 0, err
	}
	if li, ok := c.lookupLocal(vr.Name); ok && li.isArray {
		c.emit(Inst{Op: OpAddi, Rd: base, Rs1: RegSP, Imm: int64(li.off)})
	} else if gi, ok := c.globals[vr.Name]; ok && gi.isArray {
		c.emit(Inst{Op: OpAddi, Rd: base, Rs1: RegGP, Imm: int64(gi.off)})
	} else {
		c.freeTemp(base)
		return 0, &CompileError{Line: n.Line, Msg: fmt.Sprintf("%q is not an array", vr.Name)}
	}
	idx, err := c.expr(n.Idx)
	if err != nil {
		return 0, err
	}
	c.emit(Inst{Op: OpAdd, Rd: base, Rs1: base, Rs2: idx})
	c.freeTemp(idx)
	return base, nil
}

// store writes register val into the storage the lvalue designates.
func (c *compiler) store(lhs chdl.Expr, val int, line int) error {
	switch n := lhs.(type) {
	case *chdl.VarRef:
		if li, ok := c.lookupLocal(n.Name); ok && !li.isArray {
			c.emit(Inst{Op: OpSw, Rs1: RegSP, Rs2: val, Imm: int64(li.off)})
			return nil
		}
		if gi, ok := c.globals[n.Name]; ok && !gi.isArray {
			c.emit(Inst{Op: OpSw, Rs1: RegGP, Rs2: val, Imm: int64(gi.off)})
			return nil
		}
		return &CompileError{Line: line, Msg: fmt.Sprintf("cannot assign to %q", n.Name)}
	case *chdl.IndexExpr:
		addr, err := c.address(n)
		if err != nil {
			return err
		}
		c.emit(Inst{Op: OpSw, Rs1: addr, Rs2: val, Imm: 0})
		c.freeTemp(addr)
		return nil
	default:
		return &CompileError{Line: line, Msg: fmt.Sprintf("unsupported assignment target %T", lhs)}
	}
}

var isaBinOps = map[string]Op{
	"+": OpAdd, "-": OpSub, "&": OpAnd, "|": OpOr, "^": OpXor,
	"<<": OpSll, ">>": OpSra, "*": OpMul, "/": OpDiv, "%": OpRem,
}

func (c *compiler) assign(n *chdl.AssignExpr) (int, error) {
	if n.Op == "=" {
		r, err := c.expr(n.RHS)
		if err != nil {
			return 0, err
		}
		if err := c.store(n.LHS, r, n.Line); err != nil {
			return 0, err
		}
		return r, nil
	}
	// Compound: load, op, store.
	base := n.Op[:len(n.Op)-1]
	op, ok := isaBinOps[base]
	if !ok {
		return 0, &CompileError{Line: n.Line, Msg: fmt.Sprintf("unsupported compound assignment %q", n.Op)}
	}
	cur, err := c.expr(n.LHS)
	if err != nil {
		return 0, err
	}
	rhs, err := c.expr(n.RHS)
	if err != nil {
		return 0, err
	}
	c.emit(Inst{Op: op, Rd: cur, Rs1: cur, Rs2: rhs})
	c.freeTemp(rhs)
	if err := c.store(n.LHS, cur, n.Line); err != nil {
		return 0, err
	}
	return cur, nil
}

func (c *compiler) binary(n *chdl.BinExpr) (int, error) {
	switch n.Op {
	case "&&", "||":
		return c.shortCircuit(n)
	}
	if op, ok := isaBinOps[n.Op]; ok {
		x, err := c.expr(n.X)
		if err != nil {
			return 0, err
		}
		y, err := c.expr(n.Y)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: op, Rd: x, Rs1: x, Rs2: y})
		c.freeTemp(y)
		return x, nil
	}
	// Comparisons.
	x, err := c.expr(n.X)
	if err != nil {
		return 0, err
	}
	y, err := c.expr(n.Y)
	if err != nil {
		return 0, err
	}
	switch n.Op {
	case "<":
		c.emit(Inst{Op: OpSlt, Rd: x, Rs1: x, Rs2: y})
	case ">":
		c.emit(Inst{Op: OpSlt, Rd: x, Rs1: y, Rs2: x})
	case "<=":
		c.emit(Inst{Op: OpSlt, Rd: x, Rs1: y, Rs2: x})
		c.emit(Inst{Op: OpXori, Rd: x, Rs1: x, Imm: 1})
	case ">=":
		c.emit(Inst{Op: OpSlt, Rd: x, Rs1: x, Rs2: y})
		c.emit(Inst{Op: OpXori, Rd: x, Rs1: x, Imm: 1})
	case "==":
		c.emit(Inst{Op: OpXor, Rd: x, Rs1: x, Rs2: y})
		c.emit(Inst{Op: OpSltu, Rd: x, Rs1: RegZero, Rs2: x})
		c.emit(Inst{Op: OpXori, Rd: x, Rs1: x, Imm: 1})
	case "!=":
		c.emit(Inst{Op: OpXor, Rd: x, Rs1: x, Rs2: y})
		c.emit(Inst{Op: OpSltu, Rd: x, Rs1: RegZero, Rs2: x})
	default:
		c.freeTemp(x)
		c.freeTemp(y)
		return 0, &CompileError{Line: n.Line, Msg: fmt.Sprintf("unsupported operator %q", n.Op)}
	}
	c.freeTemp(y)
	return x, nil
}

func (c *compiler) shortCircuit(n *chdl.BinExpr) (int, error) {
	res, err := c.allocTemp(n.Line)
	if err != nil {
		return 0, err
	}
	x, err := c.expr(n.X)
	if err != nil {
		return 0, err
	}
	var br int
	if n.Op == "&&" {
		br = c.emit(Inst{Op: OpBeq, Rs1: x, Rs2: RegZero}) // x false -> result 0
	} else {
		br = c.emit(Inst{Op: OpBne, Rs1: x, Rs2: RegZero}) // x true -> result 1
	}
	c.freeTemp(x)
	y, err := c.expr(n.Y)
	if err != nil {
		return 0, err
	}
	c.emit(Inst{Op: OpSltu, Rd: res, Rs1: RegZero, Rs2: y}) // normalize y
	c.freeTemp(y)
	jmp := c.emit(Inst{Op: OpJal, Rd: RegZero})
	c.out.Insts[br].Imm = int64(len(c.out.Insts))
	short := int64(0)
	if n.Op == "||" {
		short = 1
	}
	c.emit(Inst{Op: OpAddi, Rd: res, Rs1: RegZero, Imm: short})
	c.out.Insts[jmp].Imm = int64(len(c.out.Insts))
	return res, nil
}

func (c *compiler) unary(n *chdl.UnExpr) (int, error) {
	switch n.Op {
	case "-":
		x, err := c.expr(n.X)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpSub, Rd: x, Rs1: RegZero, Rs2: x})
		return x, nil
	case "~":
		x, err := c.expr(n.X)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpXori, Rd: x, Rs1: x, Imm: -1})
		return x, nil
	case "!":
		x, err := c.expr(n.X)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpSltu, Rd: x, Rs1: RegZero, Rs2: x})
		c.emit(Inst{Op: OpXori, Rd: x, Rs1: x, Imm: 1})
		return x, nil
	case "++", "--":
		cur, err := c.expr(n.X)
		if err != nil {
			return 0, err
		}
		delta := int64(1)
		if n.Op == "--" {
			delta = -1
		}
		c.emit(Inst{Op: OpAddi, Rd: cur, Rs1: cur, Imm: delta})
		if err := c.store(n.X, cur, n.Line); err != nil {
			return 0, err
		}
		return cur, nil
	case "*", "&":
		return 0, &CompileError{Line: n.Line, Msg: "pointers unsupported by the ISA backend"}
	default:
		return 0, &CompileError{Line: n.Line, Msg: fmt.Sprintf("unsupported unary %q", n.Op)}
	}
}

func (c *compiler) callExpr(n *chdl.CallExpr) (int, error) {
	switch n.Name {
	case "abs", "labs":
		if len(n.Args) != 1 {
			return 0, &CompileError{Line: n.Line, Msg: "abs takes one argument"}
		}
		x, err := c.expr(n.Args[0])
		if err != nil {
			return 0, err
		}
		// if x >= 0 skip negate
		br := c.emit(Inst{Op: OpBge, Rs1: x, Rs2: RegZero})
		c.emit(Inst{Op: OpSub, Rd: x, Rs1: RegZero, Rs2: x})
		c.out.Insts[br].Imm = int64(len(c.out.Insts))
		return x, nil

	case "printf", "puts", "putchar", "srand", "assert":
		// Evaluated for side effects of the arguments only; the processor
		// model has no console.
		for _, a := range n.Args {
			r, err := c.expr(a)
			if err != nil {
				return 0, err
			}
			c.freeTemp(r)
		}
		r, err := c.allocTemp(n.Line)
		if err != nil {
			return 0, err
		}
		c.emit(Inst{Op: OpAddi, Rd: r, Rs1: RegZero, Imm: 0})
		return r, nil

	case "malloc", "calloc", "free", "rand", "memset", "memcpy", "exit":
		return 0, &CompileError{Line: n.Line, Msg: fmt.Sprintf("builtin %q unsupported by the ISA backend", n.Name)}
	}

	fn := c.prog.FindFunc(n.Name)
	if fn == nil {
		return 0, &CompileError{Line: n.Line, Msg: fmt.Sprintf("call to undefined function %q", n.Name)}
	}
	if len(n.Args) != len(fn.Params) {
		return 0, &CompileError{Line: n.Line, Msg: fmt.Sprintf("%s expects %d args, got %d", n.Name, len(fn.Params), len(n.Args))}
	}
	if len(n.Args) > 8 {
		return 0, &CompileError{Line: n.Line, Msg: "more than 8 arguments unsupported"}
	}

	// Evaluate arguments into temps.
	var argRegs []int
	for _, a := range n.Args {
		r, err := c.expr(a)
		if err != nil {
			return 0, err
		}
		argRegs = append(argRegs, r)
	}
	// Spill live temps that are not argument registers.
	isArg := map[int]bool{}
	for _, r := range argRegs {
		isArg[r] = true
	}
	var save []int
	for _, r := range tempRegs {
		if c.tempInUse[r] && !isArg[r] {
			save = append(save, r)
		}
	}
	if len(save) > 0 {
		c.emit(Inst{Op: OpAddi, Rd: RegSP, Rs1: RegSP, Imm: -int64(len(save))})
		for i, r := range save {
			c.emit(Inst{Op: OpSw, Rs1: RegSP, Rs2: r, Imm: int64(i)})
		}
	}
	// Move arguments into a0..a7 and release the temps.
	for i, r := range argRegs {
		c.emit(Inst{Op: OpAdd, Rd: RegA0 + i, Rs1: r, Rs2: RegZero})
		c.freeTemp(r)
	}
	c.callFix = append(c.callFix, callPatch{idx: c.emit(Inst{Op: OpJal, Rd: RegRA}), name: n.Name})
	// Restore spilled temps.
	if len(save) > 0 {
		for i, r := range save {
			c.emit(Inst{Op: OpLw, Rd: r, Rs1: RegSP, Imm: int64(i)})
		}
		c.emit(Inst{Op: OpAddi, Rd: RegSP, Rs1: RegSP, Imm: int64(len(save))})
	}
	res, err := c.allocTemp(n.Line)
	if err != nil {
		return 0, err
	}
	c.emit(Inst{Op: OpAdd, Rd: res, Rs1: RegA0, Rs2: RegZero})
	return res, nil
}
