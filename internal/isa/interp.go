package isa

import (
	"errors"
	"fmt"
)

// ErrISAStepLimit reports that functional interpretation exceeded its
// step budget.
var ErrISAStepLimit = errors.New("isa: step limit exceeded")

const interpMemWords = 1 << 20

// Interpret runs the program functionally (no timing) from its bootstrap
// and returns a0 at HALT. It validates compiled code independently of the
// boom microarchitectural model.
func Interpret(p *Program, maxSteps int) (int32, error) {
	return interpret(p, p.Start, nil, maxSteps)
}

// InterpretArgs calls a specific function entry with register arguments
// (a0..a7) and returns a0 when it returns to the synthetic halt frame.
func InterpretArgs(p *Program, fn string, maxSteps int, args ...int32) (int32, error) {
	entry, ok := p.Entry[fn]
	if !ok {
		return 0, fmt.Errorf("isa: unknown function %q", fn)
	}
	if len(args) > 8 {
		return 0, fmt.Errorf("isa: more than 8 arguments")
	}
	return interpret(p, entry, args, maxSteps)
}

func interpret(p *Program, startPC int, args []int32, maxSteps int) (int32, error) {
	var regs [32]int32
	mem := make([]int32, interpMemWords)
	regs[RegSP] = int32(interpMemWords - 1)
	pc := startPC

	// Run bootstrap global initializers when entering a raw function so
	// that globals hold their declared values.
	if args != nil {
		for i := 0; i < len(p.Insts); i++ {
			in := p.Insts[i]
			if in.Op == OpJal && in.Rd == RegRA {
				break // end of the init prologue
			}
			switch in.Op {
			case OpAddi:
				if in.Rd != 0 {
					regs[in.Rd] = regs[in.Rs1] + int32(in.Imm)
				}
			case OpSw:
				addr := regs[in.Rs1] + int32(in.Imm)
				if addr >= 0 && int(addr) < len(mem) {
					mem[addr] = regs[in.Rs2]
				}
			}
		}
		for i, a := range args {
			regs[RegA0+i] = a
		}
		// Return address: a synthetic halt cell (the instruction after the
		// bootstrap call is HALT).
		haltIdx := -1
		for i, in := range p.Insts {
			if in.Op == OpHalt {
				haltIdx = i
				break
			}
		}
		if haltIdx < 0 {
			return 0, fmt.Errorf("isa: program has no halt")
		}
		regs[RegRA] = int32(haltIdx)
		pc = startPC
	}

	for steps := 0; steps < maxSteps; steps++ {
		if pc < 0 || pc >= len(p.Insts) {
			return 0, fmt.Errorf("isa: pc %d out of range", pc)
		}
		in := p.Insts[pc]
		next := pc + 1
		wr := func(v int32) {
			if in.Rd != 0 {
				regs[in.Rd] = v
			}
		}
		switch in.Op {
		case OpHalt:
			return regs[RegA0], nil
		case OpAdd:
			wr(regs[in.Rs1] + regs[in.Rs2])
		case OpSub:
			wr(regs[in.Rs1] - regs[in.Rs2])
		case OpAnd:
			wr(regs[in.Rs1] & regs[in.Rs2])
		case OpOr:
			wr(regs[in.Rs1] | regs[in.Rs2])
		case OpXor:
			wr(regs[in.Rs1] ^ regs[in.Rs2])
		case OpSll:
			wr(regs[in.Rs1] << (uint32(regs[in.Rs2]) & 31))
		case OpSrl:
			wr(int32(uint32(regs[in.Rs1]) >> (uint32(regs[in.Rs2]) & 31)))
		case OpSra:
			wr(regs[in.Rs1] >> (uint32(regs[in.Rs2]) & 31))
		case OpSlt:
			wr(b2i(regs[in.Rs1] < regs[in.Rs2]))
		case OpSltu:
			wr(b2i(uint32(regs[in.Rs1]) < uint32(regs[in.Rs2])))
		case OpMul:
			wr(int32(int64(regs[in.Rs1]) * int64(regs[in.Rs2])))
		case OpMulh:
			wr(int32((int64(regs[in.Rs1]) * int64(regs[in.Rs2])) >> 32))
		case OpDiv:
			a, b := regs[in.Rs1], regs[in.Rs2]
			switch {
			case b == 0:
				wr(-1)
			case a == -1<<31 && b == -1:
				wr(a)
			default:
				wr(a / b)
			}
		case OpRem:
			a, b := regs[in.Rs1], regs[in.Rs2]
			switch {
			case b == 0:
				wr(a)
			case a == -1<<31 && b == -1:
				wr(0)
			default:
				wr(a % b)
			}
		case OpAddi:
			wr(regs[in.Rs1] + int32(in.Imm))
		case OpAndi:
			wr(regs[in.Rs1] & int32(in.Imm))
		case OpOri:
			wr(regs[in.Rs1] | int32(in.Imm))
		case OpXori:
			wr(regs[in.Rs1] ^ int32(in.Imm))
		case OpSlli:
			wr(regs[in.Rs1] << (uint32(in.Imm) & 31))
		case OpSrli:
			wr(int32(uint32(regs[in.Rs1]) >> (uint32(in.Imm) & 31)))
		case OpSrai:
			wr(regs[in.Rs1] >> (uint32(in.Imm) & 31))
		case OpSlti:
			wr(b2i(regs[in.Rs1] < int32(in.Imm)))
		case OpLui:
			wr(int32(in.Imm) << 12)
		case OpLw:
			addr := regs[in.Rs1] + int32(in.Imm)
			if addr < 0 || int(addr) >= len(mem) {
				return 0, fmt.Errorf("isa: load address %d out of range at pc %d", addr, pc)
			}
			wr(mem[addr])
		case OpSw:
			addr := regs[in.Rs1] + int32(in.Imm)
			if addr < 0 || int(addr) >= len(mem) {
				return 0, fmt.Errorf("isa: store address %d out of range at pc %d", addr, pc)
			}
			mem[addr] = regs[in.Rs2]
		case OpBeq:
			if regs[in.Rs1] == regs[in.Rs2] {
				next = int(in.Imm)
			}
		case OpBne:
			if regs[in.Rs1] != regs[in.Rs2] {
				next = int(in.Imm)
			}
		case OpBlt:
			if regs[in.Rs1] < regs[in.Rs2] {
				next = int(in.Imm)
			}
		case OpBge:
			if regs[in.Rs1] >= regs[in.Rs2] {
				next = int(in.Imm)
			}
		case OpBltu:
			if uint32(regs[in.Rs1]) < uint32(regs[in.Rs2]) {
				next = int(in.Imm)
			}
		case OpBgeu:
			if uint32(regs[in.Rs1]) >= uint32(regs[in.Rs2]) {
				next = int(in.Imm)
			}
		case OpJal:
			wr(int32(pc + 1))
			next = int(in.Imm)
		case OpJalr:
			t := int(regs[in.Rs1]) + int(in.Imm)
			wr(int32(pc + 1))
			next = t
		default:
			return 0, fmt.Errorf("isa: illegal opcode %v at pc %d", in.Op, pc)
		}
		pc = next
	}
	return 0, ErrISAStepLimit
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
