package repair

// The repair benchmark suite: C kernels with real HLS incompatibilities of
// the classes the paper's Fig. 2 flow targets. Every kernel runs correctly
// under CPU execution (the chdl interpreter) but is rejected by the HLS
// frontend until repaired. Vectors stay in the non-negative domain where
// the unsigned RTL datapath and C semantics agree, as a real co-simulation
// setup would arrange.

// BenchKernel is one entry of the repair suite.
type BenchKernel struct {
	ID     string
	Source string
	// Kernel is the function to synthesize.
	Kernel string
	// Vectors are equivalence-check inputs.
	Vectors [][]int64
	// Classes lists the incompatibility kinds present (for reporting).
	Classes []string
}

// BenchKernels returns the suite.
func BenchKernels() []BenchKernel {
	return []BenchKernel{
		{
			ID:     "malloc_sum",
			Kernel: "sum_dyn",
			Source: `
int sum_dyn(int n) {
    int *buf = (int*)malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) {
        buf[i] = i * 2 + 1;
    }
    int total = 0;
    for (int i = 0; i < n; i++) {
        total = total + buf[i];
    }
    free(buf);
    return total;
}`,
			Vectors: [][]int64{{4}, {10}, {32}, {100}},
			Classes: []string{"dynamic-memory"},
		},
		{
			ID:     "while_collatz",
			Kernel: "collatz",
			Source: `
int collatz(int n) {
    int steps = 0;
    while (n > 1) {
        if (n % 2 == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        steps = steps + 1;
    }
    return steps;
}`,
			Vectors: [][]int64{{1}, {6}, {27}, {97}},
			Classes: []string{"unbounded-loop"},
		},
		{
			ID:     "recursive_triangle",
			Kernel: "triangle",
			Source: `
int triangle(int n) {
    if (n <= 0) return 0;
    return triangle(n - 1) + n;
}`,
			Vectors: [][]int64{{0}, {5}, {12}, {40}},
			Classes: []string{"recursion"},
		},
		{
			ID:     "printf_kernel",
			Kernel: "checksum",
			Source: `
int checksum(int seed) {
    int acc = seed;
    int i = 0;
    while (i < 16) {
        acc = acc * 31 + i;
        acc = acc % 65521;
        printf("step %d: %d\n", i, acc);
        i = i + 1;
    }
    return acc;
}`,
			Vectors: [][]int64{{1}, {7}, {1000}},
			Classes: []string{"io-in-kernel", "unbounded-loop"},
		},
		{
			ID:     "malloc_while_mix",
			Kernel: "histmax",
			Source: `
int histmax(int n) {
    int *hist = (int*)malloc(16 * sizeof(int));
    for (int i = 0; i < 16; i++) {
        hist[i] = 0;
    }
    int x = n;
    while (x > 0) {
        hist[x % 16] = hist[x % 16] + 1;
        x = x / 2;
    }
    int best = 0;
    for (int i = 0; i < 16; i++) {
        if (hist[i] > best) {
            best = hist[i];
        }
    }
    free(hist);
    return best;
}`,
			Vectors: [][]int64{{1}, {100}, {65535}, {1000000}},
			Classes: []string{"dynamic-memory", "unbounded-loop"},
		},
		{
			ID:     "do_while_gcd",
			Kernel: "gcdsum",
			Source: `
int gcdsum(int a, int b) {
    do {
        if (a > b) {
            a = a - b;
        } else if (b > a) {
            b = b - a;
        } else {
            break;
        }
    } while (a != b);
    return a + b;
}`,
			Vectors: [][]int64{{12, 18}, {7, 7}, {100, 75}, {13, 5}},
			Classes: []string{"unbounded-loop"},
		},
	}
}
