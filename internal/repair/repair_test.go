package repair

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/chdl"
	"llm4eda/internal/hls"
	"llm4eda/internal/llm"
	"llm4eda/internal/rag"
)

func frontierFramework(seed uint64) *Framework {
	return New(Config{
		Model:   llm.NewSimModel(llm.TierFrontier, seed),
		Library: rag.DefaultCorrectionLibrary(),
	})
}

func TestSuiteKernelsAreBrokenButRunnable(t *testing.T) {
	for _, k := range BenchKernels() {
		k := k
		t.Run(k.ID, func(t *testing.T) {
			prog, err := chdl.ParseC(k.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// Runs on "CPU".
			in, _ := chdl.NewInterp(prog, chdl.InterpOptions{})
			if _, err := in.CallInts(k.Kernel, k.Vectors[0]...); err != nil {
				t.Fatalf("original does not run: %v", err)
			}
			// Rejected by HLS.
			if _, err := hls.Synthesize(prog, k.Kernel, hls.Options{}); err == nil {
				t.Fatalf("kernel %s unexpectedly synthesizes before repair", k.ID)
			}
		})
	}
}

func TestRepairMallocSum(t *testing.T) {
	k := BenchKernels()[0]
	out, err := frontierFramework(1).Repair(context.Background(), k.Source, k.Kernel, k.Vectors)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !out.Success {
		t.Fatalf("repair failed: %+v", out.Stages)
	}
	if strings.Contains(out.RepairedSource, "malloc") {
		t.Errorf("repaired source still has malloc:\n%s", out.RepairedSource)
	}
	if out.Mismatches != 0 {
		t.Errorf("equivalence mismatches: %d", out.Mismatches)
	}
}

func TestRepairFullSuiteWithRAG(t *testing.T) {
	fw := frontierFramework(7)
	succ := 0
	for _, k := range BenchKernels() {
		out, err := fw.Repair(context.Background(), k.Source, k.Kernel, k.Vectors)
		if err != nil {
			t.Errorf("%s: %v", k.ID, err)
			continue
		}
		if out.Success {
			succ++
		} else {
			t.Logf("%s failed: %+v", k.ID, out.Stages)
		}
	}
	if succ < len(BenchKernels())-1 {
		t.Errorf("frontier+RAG repaired only %d/%d kernels", succ, len(BenchKernels()))
	}
}

func TestRAGAblationHelpsWeakModels(t *testing.T) {
	// Over the suite and several seeds, RAG must repair at least as many
	// kernels as the no-RAG arm for a medium model (usually strictly more:
	// template bounds prevent undersized static arrays).
	successes := func(withRAG bool) int {
		total := 0
		for seed := uint64(0); seed < 6; seed++ {
			cfg := Config{Model: llm.NewSimModel(llm.TierMedium, seed)}
			if withRAG {
				cfg.Library = rag.DefaultCorrectionLibrary()
			}
			fw := New(cfg)
			for _, k := range BenchKernels() {
				out, err := fw.Repair(context.Background(), k.Source, k.Kernel, k.Vectors)
				if err == nil && out.Success {
					total++
				}
			}
		}
		return total
	}
	with := successes(true)
	without := successes(false)
	if with < without {
		t.Errorf("RAG arm repaired %d, no-RAG %d; retrieval should not hurt", with, without)
	}
	if with == 0 {
		t.Error("RAG arm repaired nothing")
	}
}

func TestStageLogsComplete(t *testing.T) {
	k := BenchKernels()[1] // while_collatz
	out, err := frontierFramework(3).Repair(context.Background(), k.Source, k.Kernel, k.Vectors)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	var stages []string
	for _, s := range out.Stages {
		stages = append(stages, s.Stage)
	}
	joined := strings.Join(stages, ",")
	for _, want := range []string{"preprocessing", "repair", "equivalence"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing stage %q in %v", want, stages)
		}
	}
	if len(out.ActualErrors) == 0 {
		t.Error("no actual errors recorded for a broken kernel")
	}
}

func TestPPAOptimizationRuns(t *testing.T) {
	k := BenchKernels()[0]
	out, err := frontierFramework(5).Repair(context.Background(), k.Source, k.Kernel, k.Vectors)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !out.Success {
		t.Skip("repair itself failed for this seed")
	}
	if out.PPABefore.LatencyCyc == 0 {
		t.Error("PPABefore not recorded")
	}
	if out.Optimized && out.PPAAfter.LatencyCyc >= out.PPABefore.LatencyCyc {
		t.Errorf("optimization claimed but latency %d >= %d",
			out.PPAAfter.LatencyCyc, out.PPABefore.LatencyCyc)
	}
}
