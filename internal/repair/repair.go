// Package repair implements the paper's Fig. 2 case study: automated
// C/C++ program repair for HLS with LLMs. The four stages map one-to-one
// onto the figure:
//
//  1. Preprocessing — the HLS frontend reports actual errors; the LLM
//     flags additional potential errors.
//  2. Repair with RAG — correction templates retrieved from the library
//     are injected into the repair prompt; the loop iterates until the
//     kernel synthesizes or the budget is exhausted.
//  3. Equivalence verification — C-RTL co-simulation compares the
//     repaired kernel's RTL against the original program's CPU execution.
//  4. PPA optimization — the LLM adjusts pragmas toward the reported
//     bottleneck; the result is kept only if it remains equivalent and
//     improves the PPA score.
package repair

import (
	"context"
	"fmt"
	"strings"

	"llm4eda/internal/chdl"
	"llm4eda/internal/core"
	"llm4eda/internal/hls"
	"llm4eda/internal/llm"
	"llm4eda/internal/rag"
)

// Config parameterizes the framework.
type Config struct {
	// RunSpec carries the shared execution envelope (seed, tier, workers,
	// deadline).
	core.RunSpec
	Model llm.Model
	// Library is the correction-template library; nil disables RAG (the
	// ablation arm of experiment E2).
	Library *rag.Library
	// MaxIterations bounds the repair loop (default 4).
	MaxIterations int
	// TemplatesPerQuery is the retrieval depth (default 3).
	TemplatesPerQuery int
	// HLSOptions configures the synthesis backend.
	HLSOptions hls.Options
}

func (c Config) withDefaults() Config {
	if c.MaxIterations == 0 {
		c.MaxIterations = 4
	}
	if c.TemplatesPerQuery == 0 {
		c.TemplatesPerQuery = 3
	}
	return c
}

// StageLog records one stage's outcome for the report.
type StageLog struct {
	Stage  string
	Detail string
	OK     bool
}

// Outcome is the full framework result for one kernel.
type Outcome struct {
	// Success means the kernel synthesizes and is equivalent to the
	// original on every vector.
	Success bool
	// RepairedSource is the final HLS-C program.
	RepairedSource string
	// Iterations is the number of repair-loop rounds used.
	Iterations int
	// ActualErrors and PotentialErrors are the stage-1 findings.
	ActualErrors    []string
	PotentialErrors []string
	// EquivalenceVectors / Mismatches summarize stage 3.
	EquivalenceVectors int
	Mismatches         int
	// PPABefore/PPAAfter bracket stage 4 (zero if it did not run).
	PPABefore core.PPA
	PPAAfter  core.PPA
	Optimized bool
	Stages    []StageLog
}

// Framework runs the four-stage flow.
type Framework struct {
	cfg Config
}

// New builds a framework instance.
func New(cfg Config) *Framework {
	return &Framework{cfg: cfg.withDefaults()}
}

// Repair runs the full flow on one kernel source. kernel names the
// function to synthesize; vectors are the equivalence-check inputs
// (one slice per invocation, arguments in order). ctx is checked between
// repair iterations and stages; stage outcomes stream to the context's
// event sink.
func (f *Framework) Repair(ctx context.Context, source, kernel string, vectors [][]int64) (*Outcome, error) {
	cfg := f.cfg
	sink := core.SinkOf(ctx)
	out := &Outcome{RepairedSource: source}
	log := func(stage, detail string, ok bool) {
		out.Stages = append(out.Stages, StageLog{Stage: stage, Detail: detail, OK: ok})
		sink.Emit(core.Event{
			Kind: core.EventPhaseEnd, Framework: "repair", Phase: stage,
			OK: ok, Detail: detail,
		})
	}

	// Reference ("CPU") results for the original program, computed once.
	origProg, err := chdl.ParseC(source)
	if err != nil {
		return nil, fmt.Errorf("repair: original program does not parse: %w", err)
	}
	refResults := make([]int64, len(vectors))
	for i, vec := range vectors {
		in, err := chdl.NewInterp(origProg, chdl.InterpOptions{})
		if err != nil {
			return nil, err
		}
		r, err := in.CallInts(kernel, vec...)
		if err != nil {
			return nil, fmt.Errorf("repair: original program fails on vector %v: %w", vec, err)
		}
		refResults[i] = r
	}

	// Stage 1: preprocessing.
	out.ActualErrors = hls.Diagnostics(source)
	var advisory []string
	for _, issue := range chdl.Analyze(origProg) {
		if !issue.Kind.Blocking() {
			advisory = append(advisory, issue.String())
		}
	}
	resp, err := cfg.Model.Generate(llm.Request{
		System: llm.SystemHLSExpert,
		Prompt: "List potential HLS problems beyond the compiler report.\n\n" + source,
		Task:   llm.PotentialErrors{Source: source, KnownIssues: advisory},
	})
	if err == nil && resp.Text != "" {
		out.PotentialErrors = strings.Split(resp.Text, "\n")
	}
	log("preprocessing", fmt.Sprintf("%d actual, %d potential errors",
		len(out.ActualErrors), len(out.PotentialErrors)), true)

	// Stage 2: iterative repair with RAG.
	current := source
	var design *hls.Design
	var repairedProg *chdl.Program
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		prog, err := chdl.ParseC(current)
		if err == nil {
			design, err = hls.Synthesize(prog, kernel, cfg.HLSOptions)
			if err == nil {
				repairedProg = prog
				out.Iterations = iter
				break
			}
		}
		diags := hls.Diagnostics(current)
		diags = append(diags, out.PotentialErrors...)
		var templates []string
		if cfg.Library != nil {
			for _, hit := range cfg.Library.Retrieve(strings.Join(diags, "\n"), cfg.TemplatesPerQuery) {
				templates = append(templates, hit.Template.Body)
			}
		}
		resp, err := cfg.Model.Generate(llm.Request{
			System: llm.SystemHLSExpert,
			Prompt: llm.BuildRepairPrompt(current, diags, templates),
			Task:   llm.CRepair{Source: current, Diagnostics: diags, Templates: templates},
		})
		if err != nil {
			log("repair", fmt.Sprintf("iteration %d: model failure: %v", iter+1, err), false)
			return out, nil
		}
		current = resp.Text
		out.Iterations = iter + 1
	}
	out.RepairedSource = current
	if design == nil {
		// One last try with whatever the loop produced.
		if prog, err := chdl.ParseC(current); err == nil {
			if d, err := hls.Synthesize(prog, kernel, cfg.HLSOptions); err == nil {
				design, repairedProg = d, prog
			}
		}
	}
	if design == nil {
		log("repair", fmt.Sprintf("kernel still not synthesizable after %d iterations", out.Iterations), false)
		return out, nil
	}
	log("repair", fmt.Sprintf("synthesizable after %d iterations (%d states)", out.Iterations, design.States), true)

	// Stage 3: equivalence verification against the ORIGINAL program.
	results, err := hls.CoSimulate(design, repairedProg, kernel, vectors)
	if err != nil {
		log("equivalence", fmt.Sprintf("co-simulation failed: %v", err), false)
		return out, nil
	}
	out.EquivalenceVectors = len(results)
	for i, r := range results {
		if !r.RTLValid || r.RTL != refResults[i] {
			out.Mismatches++
		}
	}
	equiv := out.Mismatches == 0
	log("equivalence", fmt.Sprintf("%d/%d vectors match original CPU execution",
		out.EquivalenceVectors-out.Mismatches, out.EquivalenceVectors), equiv)
	if !equiv {
		return out, nil
	}
	out.PPABefore = design.PPA
	out.Success = true

	// Stage 4: PPA optimization.
	bottleneck := "latency"
	if design.PPA.AreaGates > 50_000 {
		bottleneck = "area"
	}
	resp, err = cfg.Model.Generate(llm.Request{
		System: llm.SystemHLSExpert,
		Prompt: llm.BuildPragmaPrompt(current, bottleneck),
		Task:   llm.PragmaOpt{Source: current, Bottleneck: bottleneck},
	})
	if err != nil {
		log("ppa-optimization", fmt.Sprintf("model failure: %v", err), false)
		out.PPAAfter = out.PPABefore
		return out, nil
	}
	optProg, err := chdl.ParseC(resp.Text)
	if err != nil {
		log("ppa-optimization", "optimized source does not parse; keeping baseline", false)
		out.PPAAfter = out.PPABefore
		return out, nil
	}
	optDesign, err := hls.Synthesize(optProg, kernel, cfg.HLSOptions)
	if err != nil {
		log("ppa-optimization", "optimized source does not synthesize; keeping baseline", false)
		out.PPAAfter = out.PPABefore
		return out, nil
	}
	optResults, err := hls.CoSimulate(optDesign, optProg, kernel, vectors)
	stillEquiv := err == nil
	if stillEquiv {
		for i, r := range optResults {
			if !r.RTLValid || r.RTL != refResults[i] {
				stillEquiv = false
				break
			}
		}
	}
	improved := optDesign.PPA.LatencyCyc < design.PPA.LatencyCyc ||
		(bottleneck == "area" && optDesign.PPA.AreaGates < design.PPA.AreaGates)
	if stillEquiv && improved {
		out.PPAAfter = optDesign.PPA
		out.RepairedSource = resp.Text
		out.Optimized = true
		log("ppa-optimization", fmt.Sprintf("latency %d -> %d cycles",
			design.PPA.LatencyCyc, optDesign.PPA.LatencyCyc), true)
	} else {
		out.PPAAfter = out.PPABefore
		log("ppa-optimization", "no safe improvement found; keeping baseline", true)
	}
	return out, nil
}
