package hlstest

import (
	"context"
	"strings"
	"testing"

	"llm4eda/internal/chdl"
	"llm4eda/internal/core"
	"llm4eda/internal/llm"
)

// overflowKernel has a genuine 16-bit-vs-C discrepancy: the product
// overflows a narrow FPGA datapath for large inputs.
const overflowKernel = `
int scale(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 4; i++) {
        acc = acc + a * b + i;
    }
    return acc;
}`

const cTestbench = `
int scale(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 4; i++) {
        acc = acc + a * b + i;
    }
    return acc;
}
int main() {
    int *ref = (int*)malloc(4 * sizeof(int));
    for (int t = 0; t < 4; t++) {
        ref[t] = scale(t, t + 1);
        printf("case %d -> %d\n", t, ref[t]);
    }
    free(ref);
    return 0;
}`

func TestBackwardSlice(t *testing.T) {
	src := `
int f(int a, int b, int c) {
    int unused = c * 99;
    int x = a + 1;
    int y = 0;
    if (b > 3) {
        y = x * 2;
    }
    return y;
}`
	prog, err := chdl.ParseC(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	vars := BackwardSlice(prog.FindFunc("f"))
	joined := strings.Join(vars, ",")
	for _, want := range []string{"a", "b", "x", "y"} {
		if !strings.Contains(joined, want) {
			t.Errorf("slice missing %q: %v", want, vars)
		}
	}
	for _, dontWant := range []string{"unused", "c"} {
		for _, v := range vars {
			if v == dontWant {
				t.Errorf("slice includes irrelevant %q: %v", dontWant, vars)
			}
		}
	}
}

func TestFindsOverflowDiscrepancy(t *testing.T) {
	cfg := Config{
		RunSpec:      core.RunSpec{Seed: 5},
		Model:        llm.NewSimModel(llm.TierLarge, 5),
		WidthBits:    16,
		SimBudget:    30,
		UseSpectra:   true,
		UseFilter:    true,
		UseReasoning: true,
	}
	res, err := Run(context.Background(), overflowKernel, cTestbench, "scale", [][]int64{{1, 2}, {3, 4}}, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Discrepancies) == 0 {
		t.Fatalf("no discrepancies found; result: %+v", res)
	}
	if res.AdaptedTB == "" {
		t.Error("testbench adaptation produced nothing")
	}
	if strings.Contains(res.AdaptedTB, "printf") || strings.Contains(res.AdaptedTB, "malloc") {
		t.Errorf("adapted testbench still has unsupported constructs:\n%s", res.AdaptedTB)
	}
	if len(res.KeyVariables) == 0 {
		t.Error("no key variables from slicing")
	}
}

func TestFilterSkipsRedundantSims(t *testing.T) {
	cfg := Config{
		RunSpec:    core.RunSpec{Seed: 9},
		WidthBits:  16,
		SimBudget:  25,
		UseSpectra: false, // expand everything so duplicates arise
		UseFilter:  true,
	}
	res, err := Run(context.Background(), overflowKernel, "", "scale", [][]int64{{1, 2}}, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SimsSkipped == 0 {
		t.Errorf("filter never skipped a simulation: %+v", res)
	}
}

func TestGuidedMoreEfficientPerSimulation(t *testing.T) {
	// The framework's value proposition (paper Fig. 3) is efficiency:
	// discrepancies found per expensive hardware simulation. The guided
	// campaign (spectra + filter + reasoning) must beat blind mutation on
	// that ratio, while spending far fewer simulations.
	run := func(guided bool) (found, sims int) {
		cfg := Config{
			RunSpec:      core.RunSpec{Seed: 31},
			WidthBits:    16,
			SimBudget:    20,
			UseSpectra:   guided,
			UseFilter:    guided,
			UseReasoning: guided,
		}
		if guided {
			cfg.Model = llm.NewSimModel(llm.TierLarge, 31)
		}
		res, err := Run(context.Background(), overflowKernel, "", "scale", [][]int64{{1, 1}, {2, 3}}, cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return len(res.Discrepancies), res.SimsRun
	}
	gFound, gSims := run(true)
	bFound, bSims := run(false)
	if gFound == 0 {
		t.Fatal("guided campaign found nothing")
	}
	gRate := float64(gFound) / float64(gSims)
	bRate := float64(bFound) / float64(bSims)
	if gRate <= bRate {
		t.Errorf("guided hit rate %.2f (%d/%d) <= blind %.2f (%d/%d)",
			gRate, gFound, gSims, bRate, bFound, bSims)
	}
	if gSims >= bSims {
		t.Errorf("guided used %d sims, blind %d; filtering saved nothing", gSims, bSims)
	}
}

func TestRejectsUnsynthesizableKernel(t *testing.T) {
	src := `
int f(int n) {
    int *p = (int*)malloc(n);
    free(p);
    return n;
}`
	if _, err := Run(context.Background(), src, "", "f", nil, Config{}); err == nil {
		t.Error("expected synthesizability error")
	}
}
