// Package hlstest implements the paper's Fig. 3 case study: efficient
// testing of behavioral discrepancies between a kernel's CPU execution and
// its FPGA (RTL) deployment. The five stages map onto the figure:
//
//  1. Testbench modification — the LLM strips HLS-unsupported constructs
//     from the C testbench.
//  2. Code instrumentation — backward slicing from the return value finds
//     the key variables, which the interpreter then traces.
//  3. Spectra monitoring — branch counts and key-variable traces hash into
//     an execution spectrum per input.
//  4. Test input generation — dynamic mutation (bit/byte/element, breadth)
//     plus an LLM reasoning chain proposing boundary inputs (depth).
//  5. Redundancy filtering — inputs whose spectrum was already exercised
//     skip the expensive hardware simulation.
package hlstest

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"llm4eda/internal/chdl"
	"llm4eda/internal/core"
	"llm4eda/internal/hls"
	"llm4eda/internal/llm"
)

// Config parameterizes a testing campaign.
type Config struct {
	// RunSpec carries the shared execution envelope; Seed fixes the
	// mutation stream.
	core.RunSpec
	Model llm.Model
	// WidthBits is the RTL datapath width; narrow widths are the paper's
	// "customized bit widths in FPGA deployment" discrepancy source.
	WidthBits int
	// SimBudget bounds hardware (RTL) simulations (default 40).
	SimBudget int
	// MaxInputs bounds total CPU-side evaluations, so a campaign whose
	// filter skips everything still terminates (default 50x SimBudget).
	MaxInputs int
	// UseSpectra enables spectra-guided mutation scheduling (ablation).
	UseSpectra bool
	// UseFilter enables redundancy filtering (ablation).
	UseFilter bool
	// UseReasoning enables the LLM boundary-value reasoning chain.
	UseReasoning bool
}

func (c Config) withDefaults() Config {
	if c.SimBudget == 0 {
		c.SimBudget = 40
	}
	if c.WidthBits == 0 {
		c.WidthBits = 16
	}
	if c.MaxInputs == 0 {
		c.MaxInputs = 50 * c.SimBudget
	}
	return c
}

// Discrepancy is one confirmed CPU-vs-RTL behavioral divergence.
type Discrepancy struct {
	Inputs []int64
	CPU    int64
	RTL    int64
}

// Result summarizes a campaign.
type Result struct {
	KeyVariables    []string
	AdaptedTB       string
	Discrepancies   []Discrepancy
	SimsRun         int
	SimsSkipped     int
	InputsGenerated int
}

// Run executes the campaign on one kernel. tbSource is the original C
// testbench (may be empty); seeds are the initial input vectors. ctx is
// checked between inputs; confirmed discrepancies stream to the context's
// event sink.
func Run(ctx context.Context, source, tbSource, kernel string, seeds [][]int64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sink := core.SinkOf(ctx)
	res := &Result{}

	// Stage 1: testbench adaptation.
	if tbSource != "" && cfg.Model != nil {
		resp, err := cfg.Model.Generate(llm.Request{
			System: llm.SystemHLSExpert,
			Prompt: "Adapt this C testbench so the HLS tool can compile it.\n\n" + tbSource,
			Task:   llm.TBAdapt{Source: tbSource},
		})
		if err == nil {
			res.AdaptedTB = resp.Text
		}
	}

	prog, err := chdl.ParseC(source)
	if err != nil {
		return nil, fmt.Errorf("hlstest: kernel does not parse: %w", err)
	}
	fn := prog.FindFunc(kernel)
	if fn == nil {
		return nil, fmt.Errorf("hlstest: kernel %q not found", kernel)
	}
	design, err := hls.Synthesize(prog, kernel, hls.Options{WidthBits: cfg.WidthBits})
	if err != nil {
		return nil, fmt.Errorf("hlstest: kernel must be synthesizable first: %w", err)
	}

	// Stage 2: backward slicing.
	res.KeyVariables = BackwardSlice(fn)

	rng := newRNG(cfg.Seed)
	queue := make([][]int64, 0, len(seeds))
	for _, s := range seeds {
		queue = append(queue, append([]int64(nil), s...))
	}
	if len(queue) == 0 {
		queue = append(queue, make([]int64, len(fn.Params)))
	}

	// Stage 4 (depth): reasoning-chain boundary inputs derived from the
	// customized width.
	if cfg.UseReasoning {
		queue = append(queue, boundaryInputs(len(fn.Params), cfg.WidthBits)...)
	}

	spectraSeen := map[uint64]bool{}
	tried := map[string]bool{}

	for len(queue) > 0 && res.SimsRun < cfg.SimBudget && res.InputsGenerated < cfg.MaxInputs {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		vec := queue[0]
		queue = queue[1:]
		key := vecKey(vec)
		if tried[key] {
			continue
		}
		tried[key] = true
		res.InputsGenerated++

		// Stage 3: CPU execution with spectra monitoring.
		spec, cpu, cpuErr := runWithSpectra(prog, kernel, res.KeyVariables, vec, cfg.WidthBits)
		if cpuErr != nil {
			continue // invalid input for the kernel; skip
		}
		fresh := !spectraSeen[spec]
		spectraSeen[spec] = true

		// Stage 5: redundancy filtering.
		if cfg.UseFilter && !fresh {
			res.SimsSkipped++
		} else {
			res.SimsRun++
			sims, err := hls.CoSimulate(design, prog, kernel, [][]int64{vec})
			if err == nil && len(sims) == 1 && sims[0].RTLValid {
				if sims[0].RTL != cpu {
					res.Discrepancies = append(res.Discrepancies, Discrepancy{
						Inputs: append([]int64(nil), vec...), CPU: cpu, RTL: sims[0].RTL,
					})
					sink.Emit(core.Event{
						Kind: core.EventCandidate, Framework: "hlstest", Phase: "discrepancy",
						Seq: len(res.Discrepancies), OK: true,
						Detail: fmt.Sprintf("inputs=%v cpu=%d rtl=%d", vec, cpu, sims[0].RTL),
					})
				}
			}
		}

		// Stage 4 (breadth): dynamic mutation. Spectra-guided mode only
		// expands inputs that reached new spectra; the unguided mode
		// expands everything.
		if !cfg.UseSpectra || fresh {
			queue = append(queue, mutate(rng, vec, cfg.WidthBits)...)
		}
	}
	return res, nil
}

// BackwardSlice returns the variables that (transitively) feed the
// function's return values, including control dependences.
func BackwardSlice(fn *chdl.FuncDecl) []string {
	// Collect direct dependences: target -> read set, plus control reads.
	deps := map[string]map[string]bool{}
	addDep := func(dst string, srcs map[string]bool) {
		if deps[dst] == nil {
			deps[dst] = map[string]bool{}
		}
		for s := range srcs {
			deps[dst][s] = true
		}
	}
	want := map[string]bool{}

	var exprReads func(e chdl.Expr, acc map[string]bool)
	exprReads = func(e chdl.Expr, acc map[string]bool) {
		switch n := e.(type) {
		case nil:
		case *chdl.VarRef:
			acc[n.Name] = true
		case *chdl.BinExpr:
			exprReads(n.X, acc)
			exprReads(n.Y, acc)
		case *chdl.UnExpr:
			exprReads(n.X, acc)
		case *chdl.PostfixExpr:
			exprReads(n.X, acc)
		case *chdl.AssignExpr:
			exprReads(n.RHS, acc)
			if ix, ok := n.LHS.(*chdl.IndexExpr); ok {
				exprReads(ix.Idx, acc)
			}
		case *chdl.CondExpr:
			exprReads(n.Cond, acc)
			exprReads(n.Then, acc)
			exprReads(n.Else, acc)
		case *chdl.IndexExpr:
			exprReads(n.X, acc)
			exprReads(n.Idx, acc)
		case *chdl.CallExpr:
			for _, a := range n.Args {
				exprReads(a, acc)
			}
		case *chdl.CastExpr:
			exprReads(n.X, acc)
		}
	}

	assignTarget := func(e chdl.Expr) string {
		switch n := e.(type) {
		case *chdl.VarRef:
			return n.Name
		case *chdl.IndexExpr:
			if vr, ok := n.X.(*chdl.VarRef); ok {
				return vr.Name
			}
		}
		return ""
	}

	var walk func(st chdl.Stmt, ctrl map[string]bool)
	collectAssigns := func(e chdl.Expr, ctrl map[string]bool) {
		if asn, ok := e.(*chdl.AssignExpr); ok {
			dst := assignTarget(asn.LHS)
			if dst == "" {
				return
			}
			reads := map[string]bool{}
			exprReads(asn.RHS, reads)
			if asn.Op != "=" {
				exprReads(asn.LHS, reads)
			}
			for c := range ctrl {
				reads[c] = true
			}
			addDep(dst, reads)
		}
		if pf, ok := e.(*chdl.PostfixExpr); ok {
			dst := assignTarget(pf.X)
			if dst != "" {
				reads := map[string]bool{dst: true}
				for c := range ctrl {
					reads[c] = true
				}
				addDep(dst, reads)
			}
		}
	}
	walk = func(st chdl.Stmt, ctrl map[string]bool) {
		switch n := st.(type) {
		case nil:
		case *chdl.BlockStmt:
			for _, s := range n.Stmts {
				walk(s, ctrl)
			}
		case *chdl.DeclStmt:
			for _, d := range n.Decls {
				reads := map[string]bool{}
				exprReads(d.Init, reads)
				for _, e := range d.InitList {
					exprReads(e, reads)
				}
				for c := range ctrl {
					reads[c] = true
				}
				addDep(d.Name, reads)
			}
		case *chdl.ExprStmt:
			collectAssigns(n.X, ctrl)
		case *chdl.IfStmt:
			sub := cloneSet(ctrl)
			exprReads(n.Cond, sub)
			walk(n.Then, sub)
			walk(n.Else, sub)
		case *chdl.ForStmt:
			sub := cloneSet(ctrl)
			exprReads(n.Cond, sub)
			if n.Init != nil {
				walk(n.Init, ctrl)
			}
			if n.Post != nil {
				collectAssigns(n.Post, sub)
			}
			walk(n.Body, sub)
		case *chdl.WhileStmt:
			sub := cloneSet(ctrl)
			exprReads(n.Cond, sub)
			walk(n.Body, sub)
		case *chdl.DoStmt:
			sub := cloneSet(ctrl)
			exprReads(n.Cond, sub)
			walk(n.Body, sub)
		case *chdl.ReturnStmt:
			reads := map[string]bool{}
			exprReads(n.X, reads)
			for c := range ctrl {
				reads[c] = true
			}
			for r := range reads {
				want[r] = true
			}
		}
	}
	walk(fn.Body, map[string]bool{})

	// Fixpoint closure.
	changed := true
	for changed {
		changed = false
		for v := range want {
			for d := range deps[v] {
				if !want[d] {
					want[d] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(want))
	for v := range want {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// runWithSpectra executes the kernel on the CPU model, collecting the
// execution spectrum: branch counts plus coarse per-variable features
// (sign mix and the magnitude bucket relative to the deployment width).
// Spectra are deliberately coarse — they classify executions by behavioral
// shape, so that inputs exercising the same shape can skip the expensive
// hardware simulation (stage 5), while width-boundary-crossing inputs land
// in fresh buckets and do get simulated.
func runWithSpectra(prog *chdl.Program, kernel string, keyVars []string, vec []int64, width int) (uint64, int64, error) {
	in, err := chdl.NewInterp(prog, chdl.InterpOptions{})
	if err != nil {
		return 0, 0, err
	}
	type feature struct {
		count   uint64
		maxAbs  uint64
		sawNeg  bool
		sawZero bool
	}
	feats := map[string]*feature{}
	in.TraceVars = map[string]bool{}
	for _, v := range keyVars {
		in.TraceVars[v] = true
		feats[v] = &feature{}
	}
	in.Trace = func(line int, name string, v int64) {
		f := feats[name]
		if f == nil {
			return
		}
		f.count++
		abs := uint64(v)
		if v < 0 {
			f.sawNeg = true
			abs = uint64(-v)
		}
		if v == 0 {
			f.sawZero = true
		}
		if abs > f.maxAbs {
			f.maxAbs = abs
		}
	}
	ret, err := in.CallInts(kernel, vec...)
	if err != nil {
		return 0, 0, err
	}
	h := fnv.New64a()
	// Branch spectrum, stable order.
	lines := make([]int, 0, len(in.BranchCount))
	for l := range in.BranchCount {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	for _, l := range lines {
		var buf [8]byte
		put64(&buf, uint64(l)<<40|uint64(in.BranchCount[l]))
		_, _ = h.Write(buf[:])
	}
	// Variable features, stable order.
	half := uint64(1) << uint(width-1)
	full := uint64(1) << uint(width)
	names := make([]string, 0, len(feats))
	for n := range feats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := feats[n]
		bucket := uint64(0)
		switch {
		case f.maxAbs < half:
			bucket = 0
		case f.maxAbs < full:
			bucket = 1
		case f.maxAbs < full<<8:
			bucket = 2
		default:
			bucket = 3
		}
		var enc uint64 = bucket
		if f.sawNeg {
			enc |= 1 << 8
		}
		if f.sawZero {
			enc |= 1 << 9
		}
		enc |= f.count << 16 // trip-count shape
		var buf [8]byte
		put64(&buf, enc)
		_, _ = h.Write(buf[:])
		_, _ = h.Write([]byte(n))
	}
	return h.Sum64(), ret, nil
}

func put64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// mutate produces bit-, byte- and element-level variants of an input
// vector (the paper's P1/P2/P3 mutation dimensions).
func mutate(r *rng, vec []int64, width int) [][]int64 {
	if len(vec) == 0 {
		return nil
	}
	var out [][]int64
	clone := func() []int64 { return append([]int64(nil), vec...) }
	// P1: bit mutation.
	for k := 0; k < 2; k++ {
		m := clone()
		i := r.intn(len(m))
		m[i] ^= 1 << uint(r.intn(width+2))
		out = append(out, m)
	}
	// P2: byte mutation.
	m := clone()
	i := r.intn(len(m))
	m[i] ^= int64(r.intn(256)) << uint(8*r.intn(width/8+1))
	out = append(out, m)
	// P3: element mutation (replace / scale).
	m = clone()
	i = r.intn(len(m))
	switch r.intn(3) {
	case 0:
		m[i] = int64(r.intn(1 << uint(width)))
	case 1:
		m[i] *= 2
	default:
		m[i] = m[i]/2 + 1
	}
	out = append(out, m)
	return out
}

// boundaryInputs proposes width-aware boundary vectors: the reasoning
// chain a real LLM produces from "the FPGA build uses W-bit integers".
func boundaryInputs(arity, width int) [][]int64 {
	half := int64(1) << uint(width-1)
	full := int64(1) << uint(width)
	vals := []int64{half - 1, half, half + 1, full - 1, full, 3 * half / 2, 0, 1}
	var out [][]int64
	for _, v := range vals {
		vec := make([]int64, arity)
		for i := range vec {
			vec[i] = v
		}
		out = append(out, vec)
	}
	return out
}

func vecKey(vec []int64) string {
	out := ""
	for _, v := range vec {
		out += fmt.Sprintf("%d,", v)
	}
	return out
}

type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
