// Package core defines the shared vocabulary of the llm4eda reproduction:
// designs, reports, PPA metrics and experiment records that the framework
// packages (repair, autochip, slt, agent, ...) exchange with one another
// and with the benchmark harness.
//
// The package is deliberately dependency-free so that every substrate and
// framework package can import it without cycles.
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Stage identifies a step of the chip design flow shown in Fig. 1 of the
// paper. Stages are ordered: a Report produced by the agent walks them in
// sequence.
type Stage int

// Design-flow stages, in flow order.
const (
	StageSpecification Stage = iota + 1
	StageHDLGeneration
	StageTestbench
	StageSimulation
	StageDebugging
	StageSynthesis
	StagePPAOptimization
	StagePhysical
)

var stageNames = map[Stage]string{
	StageSpecification:   "specification",
	StageHDLGeneration:   "hdl-generation",
	StageTestbench:       "testbench",
	StageSimulation:      "simulation",
	StageDebugging:       "debugging",
	StageSynthesis:       "synthesis",
	StagePPAOptimization: "ppa-optimization",
	StagePhysical:        "physical",
}

// String returns the canonical lower-case name of the stage.
func (s Stage) String() string {
	if n, ok := stageNames[s]; ok {
		return n
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Language identifies the textual representation of a design artifact.
type Language int

// Supported artifact languages.
const (
	LangVerilog Language = iota + 1
	LangC
	LangAssembly
	LangNaturalLanguage
)

// String returns the canonical name of the language.
func (l Language) String() string {
	switch l {
	case LangVerilog:
		return "verilog"
	case LangC:
		return "c"
	case LangAssembly:
		return "assembly"
	case LangNaturalLanguage:
		return "natural-language"
	default:
		return fmt.Sprintf("language(%d)", int(l))
	}
}

// Design is a single design artifact moving through the flow: a natural-
// language spec, an HDL module, a C kernel, or an assembly listing.
type Design struct {
	// Name is a short identifier, e.g. "cla_adder4".
	Name string
	// Language of Source.
	Language Language
	// Source is the full text of the artifact.
	Source string
	// TopModule names the top-level unit when Language is LangVerilog.
	TopModule string
}

// Validate reports whether the design carries the minimum information
// required by the flow.
func (d *Design) Validate() error {
	if d.Name == "" {
		return errors.New("core: design name must not be empty")
	}
	if d.Source == "" {
		return fmt.Errorf("core: design %q has empty source", d.Name)
	}
	if d.Language == LangVerilog && d.TopModule == "" {
		return fmt.Errorf("core: verilog design %q must name a top module", d.Name)
	}
	return nil
}

// PPA captures the power/performance/area triple reported by the synthesis
// and HLS substrates. Units are deliberately technology-neutral: area in
// equivalent NAND2 gates, delay in nanoseconds of critical path, power in
// milliwatts at the reference clock.
type PPA struct {
	AreaGates  float64
	DelayNS    float64
	PowerMW    float64
	LatencyCyc int // end-to-end cycles for sequential designs; 0 if purely combinational
}

// Better reports whether p dominates q under the simple lexicographic
// objective used by the repair framework's stage 4 (power, then area, then
// delay); lower is better on all axes.
func (p PPA) Better(q PPA) bool {
	if p.PowerMW != q.PowerMW {
		return p.PowerMW < q.PowerMW
	}
	if p.AreaGates != q.AreaGates {
		return p.AreaGates < q.AreaGates
	}
	return p.DelayNS < q.DelayNS
}

// Score folds the triple into a single quality-of-results scalar in (0, 1];
// larger is better. The weights mirror the repair framework's optimization
// priorities (latency and power dominate).
func (p PPA) Score() float64 {
	den := 1 + 0.5*p.PowerMW/10 + 0.3*p.AreaGates/1000 + 0.2*p.DelayNS/10
	return 1 / den
}

// String renders the triple compactly for reports.
func (p PPA) String() string {
	return fmt.Sprintf("area=%.0fg delay=%.2fns power=%.2fmW latency=%dcyc",
		p.AreaGates, p.DelayNS, p.PowerMW, p.LatencyCyc)
}

// Verdict is the outcome of evaluating a candidate against a testbench or
// an equivalence check.
type Verdict struct {
	// Compiled is false when the candidate failed to parse/elaborate.
	Compiled bool
	// Checks is the number of testbench checks executed.
	Checks int
	// Failures is the number of failed checks.
	Failures int
	// Log carries tool output (compile errors, simulation messages).
	Log string
}

// Pass reports whether the candidate compiled and passed every check.
func (v Verdict) Pass() bool {
	return v.Compiled && v.Checks > 0 && v.Failures == 0
}

// PassFraction returns the fraction of checks that passed, in [0, 1].
// Non-compiling candidates score 0; compiling candidates with no checks
// score 0 as well (an empty testbench proves nothing).
func (v Verdict) PassFraction() float64 {
	if !v.Compiled || v.Checks == 0 {
		return 0
	}
	return float64(v.Checks-v.Failures) / float64(v.Checks)
}

// String renders the verdict for logs.
func (v Verdict) String() string {
	if !v.Compiled {
		return "verdict(compile-error)"
	}
	return fmt.Sprintf("verdict(%d/%d checks pass)", v.Checks-v.Failures, v.Checks)
}

// StageRecord is one row of a flow Report: which stage ran, which LLM task
// the paper maps onto it, and what happened.
type StageRecord struct {
	Stage    Stage
	Task     string // e.g. "code generation", "testbench generation"
	Detail   string
	Duration time.Duration
	OK       bool
}

// Report is the unified multi-stage record produced by the agent (Fig. 6):
// a design's journey through the full flow.
type Report struct {
	Design  Design
	Stages  []StageRecord
	Final   PPA
	Verdict Verdict
}

// Append adds a stage record to the report.
func (r *Report) Append(rec StageRecord) {
	r.Stages = append(r.Stages, rec)
}

// OK reports whether every recorded stage succeeded.
func (r *Report) OK() bool {
	for _, s := range r.Stages {
		if !s.OK {
			return false
		}
	}
	return len(r.Stages) > 0
}

// Render formats the report as an aligned text table for CLI output.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s (%s)\n", r.Design.Name, r.Design.Language)
	for _, s := range r.Stages {
		status := "ok"
		if !s.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-18s %-24s %-6s %s\n", s.Stage, s.Task, status, s.Detail)
	}
	fmt.Fprintf(&b, "  final: %s, %s\n", r.Final, r.Verdict)
	return b.String()
}

// ExperimentRow is one printed row of a reproduced table/figure series.
type ExperimentRow struct {
	Series string
	X      float64
	Y      float64
	Note   string
}

// Experiment collects the rows regenerated for one paper artifact
// (figure or in-text table) plus free-form headline findings.
type Experiment struct {
	ID       string // e.g. "E4"
	Artifact string // e.g. "Fig. 4 + Sec. IV AutoChip"
	Rows     []ExperimentRow
	Findings []string
}

// AddRow appends one (series, x, y) sample.
func (e *Experiment) AddRow(series string, x, y float64, note string) {
	e.Rows = append(e.Rows, ExperimentRow{Series: series, X: x, Y: y, Note: note})
}

// AddFinding records a headline observation for EXPERIMENTS.md.
func (e *Experiment) AddFinding(format string, args ...any) {
	e.Findings = append(e.Findings, fmt.Sprintf(format, args...))
}

// Render prints the experiment in the fixed-width layout used by the
// benchmark harness, one row per sample.
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment %s — %s\n", e.ID, e.Artifact)
	for _, r := range e.Rows {
		fmt.Fprintf(&b, "  %-28s x=%-10.4g y=%-10.4g %s\n", r.Series, r.X, r.Y, r.Note)
	}
	for _, f := range e.Findings {
		fmt.Fprintf(&b, "  * %s\n", f)
	}
	return b.String()
}
