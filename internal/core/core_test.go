package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStageAndLanguageNames(t *testing.T) {
	if StageSynthesis.String() != "synthesis" || StageHDLGeneration.String() != "hdl-generation" {
		t.Error("stage names wrong")
	}
	if LangVerilog.String() != "verilog" || LangC.String() != "c" {
		t.Error("language names wrong")
	}
	if !strings.Contains(Stage(99).String(), "99") {
		t.Error("unknown stage formatting")
	}
}

func TestDesignValidate(t *testing.T) {
	cases := []struct {
		d  Design
		ok bool
	}{
		{Design{Name: "x", Language: LangC, Source: "int f(){}"}, true},
		{Design{Name: "", Language: LangC, Source: "s"}, false},
		{Design{Name: "x", Language: LangC, Source: ""}, false},
		{Design{Name: "x", Language: LangVerilog, Source: "module m; endmodule"}, false}, // no top
		{Design{Name: "x", Language: LangVerilog, Source: "module m; endmodule", TopModule: "m"}, true},
	}
	for i, c := range cases {
		err := c.d.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestVerdict(t *testing.T) {
	v := Verdict{Compiled: true, Checks: 10, Failures: 0}
	if !v.Pass() || v.PassFraction() != 1 {
		t.Errorf("pass verdict broken: %+v", v)
	}
	v = Verdict{Compiled: true, Checks: 10, Failures: 3}
	if v.Pass() || v.PassFraction() != 0.7 {
		t.Errorf("partial verdict broken: %v", v.PassFraction())
	}
	v = Verdict{Compiled: false}
	if v.Pass() || v.PassFraction() != 0 {
		t.Error("non-compiled verdict broken")
	}
	v = Verdict{Compiled: true, Checks: 0}
	if v.Pass() {
		t.Error("zero-check verdict must not pass")
	}
}

func TestPassFractionBoundsQuick(t *testing.T) {
	f := func(checks, failures uint8) bool {
		c := int(checks)
		fl := int(failures)
		if fl > c {
			fl = c
		}
		v := Verdict{Compiled: true, Checks: c, Failures: fl}
		p := v.PassFraction()
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPPABetterAndScore(t *testing.T) {
	a := PPA{PowerMW: 5, AreaGates: 100, DelayNS: 2}
	b := PPA{PowerMW: 6, AreaGates: 50, DelayNS: 1}
	if !a.Better(b) {
		t.Error("lower power must dominate")
	}
	c := PPA{PowerMW: 5, AreaGates: 90, DelayNS: 9}
	if !c.Better(a) {
		t.Error("equal power, lower area must dominate")
	}
	if a.Score() <= 0 || a.Score() > 1 {
		t.Errorf("score out of range: %f", a.Score())
	}
	// Strictly worse PPA has strictly lower score.
	worse := PPA{PowerMW: 50, AreaGates: 10000, DelayNS: 100}
	if worse.Score() >= a.Score() {
		t.Error("score not monotone")
	}
}

func TestReportRender(t *testing.T) {
	r := Report{Design: Design{Name: "demo", Language: LangVerilog}}
	r.Append(StageRecord{Stage: StageSimulation, Task: "verify", Detail: "10/10", OK: true})
	r.Append(StageRecord{Stage: StageSynthesis, Task: "synth", Detail: "120 gates", OK: true})
	if !r.OK() {
		t.Error("all-ok report reports failure")
	}
	r.Append(StageRecord{Stage: StagePhysical, Task: "route", Detail: "congestion", OK: false})
	if r.OK() {
		t.Error("failed stage not reflected")
	}
	out := r.Render()
	for _, want := range []string{"demo", "simulation", "synthesis", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentRender(t *testing.T) {
	e := Experiment{ID: "E0", Artifact: "test artifact"}
	e.AddRow("series-a", 1, 2, "note")
	e.AddFinding("finding %d", 42)
	out := e.Render()
	for _, want := range []string{"E0", "series-a", "finding 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment render missing %q:\n%s", want, out)
		}
	}
}
