package core

import (
	"errors"
	"fmt"
)

// PanicError is a recovered panic converted into an ordinary error:
// the serving layers (edaserver's job runner, simfarm's workers)
// recover so one bad candidate cannot take down the process, and wrap
// what they caught in a PanicError so the panic value and stack still
// reach the terminal report instead of vanishing.
type PanicError struct {
	// Val is the value the panic carried.
	Val any
	// Stack is the recovering goroutine's stack (runtime/debug.Stack),
	// possibly truncated by the layer that caught it.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Val)
}

// IsTransient reports whether err classifies itself as transient — a
// failure worth one cheap retry (an injected flake, a momentarily
// overloaded substrate) rather than a property of the candidate or the
// spec. The classification contract is structural: any error in the
// chain exposing `Transient() bool` decides. Panics, validation
// failures and cancellations never classify as transient.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
