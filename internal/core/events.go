package core

import (
	"context"
	"fmt"
)

// EventKind classifies run events.
type EventKind int

// Event kinds emitted by the frameworks and the engine.
const (
	// EventRunStart/EventRunEnd bracket one front-door run.
	EventRunStart EventKind = iota + 1
	EventRunEnd
	// EventPhaseStart/EventPhaseEnd bracket a framework phase (a repair
	// stage, an autochip round, an agent flow stage, ...).
	EventPhaseStart
	EventPhaseEnd
	// EventCandidate reports one scored candidate (design, snippet,
	// kernel, input vector).
	EventCandidate
	// EventLLMCall reports one model invocation with its token counts.
	EventLLMCall
	// EventCache reports one cache layer's traffic counters.
	EventCache
	// EventNote carries free-form progress text.
	EventNote
)

// String names the kind for progress printers.
func (k EventKind) String() string {
	switch k {
	case EventRunStart:
		return "run-start"
	case EventRunEnd:
		return "run-end"
	case EventPhaseStart:
		return "phase-start"
	case EventPhaseEnd:
		return "phase-end"
	case EventCandidate:
		return "candidate"
	case EventLLMCall:
		return "llm-call"
	case EventCache:
		return "cache"
	case EventNote:
		return "note"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one progress report flowing from a run to its Sink. Fields
// beyond Kind/Framework are kind-specific; unused ones are zero.
type Event struct {
	Kind      EventKind
	Framework string
	// Phase names the framework phase (EventPhase*), the cache layer
	// (EventCache) or the model task (EventLLMCall).
	Phase string
	// Seq/Total position the event within its loop (candidate i of n,
	// round r of d); Total may be 0 when open-ended.
	Seq   int
	Total int
	// Score is the candidate's scalar quality (pass fraction, watts, ...).
	Score float64
	// OK marks phase/candidate success.
	OK bool
	// Detail carries free-form context (verdicts, tool feedback heads).
	Detail string
	// TokensIn/TokensOut report model usage (EventLLMCall).
	TokensIn, TokensOut int
	// Hits/Misses/Evictions are cache counters (EventCache).
	Hits, Misses, Evictions uint64
}

// Sink receives run events. Implementations must be safe for concurrent
// use: batch evaluation emits from worker goroutines.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// nopSink drops events; SinkOf returns it when the context carries none,
// so emit sites never branch.
type nopSink struct{}

func (nopSink) Emit(Event) {}

type sinkKey struct{}

// WithSink returns a context that carries sink; every framework run under
// that context streams its events there.
func WithSink(ctx context.Context, sink Sink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, sink)
}

// SinkOf returns the context's sink, or a no-op sink when none is set.
func SinkOf(ctx context.Context) Sink {
	if s, ok := ctx.Value(sinkKey{}).(Sink); ok && s != nil {
		return s
	}
	return nopSink{}
}

// Emit sends one event to the context's sink (a no-op without one).
func Emit(ctx context.Context, ev Event) {
	SinkOf(ctx).Emit(ev)
}
