package core

import (
	"context"
	"encoding/json"
	"fmt"
)

// EventKind classifies run events.
type EventKind int

// Event kinds emitted by the frameworks and the engine.
const (
	// EventRunStart/EventRunEnd bracket one front-door run.
	EventRunStart EventKind = iota + 1
	EventRunEnd
	// EventPhaseStart/EventPhaseEnd bracket a framework phase (a repair
	// stage, an autochip round, an agent flow stage, ...).
	EventPhaseStart
	EventPhaseEnd
	// EventCandidate reports one scored candidate (design, snippet,
	// kernel, input vector).
	EventCandidate
	// EventLLMCall reports one model invocation with its token counts.
	EventLLMCall
	// EventCache reports one cache layer's traffic counters.
	EventCache
	// EventNote carries free-form progress text.
	EventNote
)

// String names the kind for progress printers.
func (k EventKind) String() string {
	switch k {
	case EventRunStart:
		return "run-start"
	case EventRunEnd:
		return "run-end"
	case EventPhaseStart:
		return "phase-start"
	case EventPhaseEnd:
		return "phase-end"
	case EventCandidate:
		return "candidate"
	case EventLLMCall:
		return "llm-call"
	case EventCache:
		return "cache"
	case EventNote:
		return "note"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// KindFromString inverts String for the canonical kinds; unknown names
// map to 0 (an invalid kind) with ok=false.
func KindFromString(s string) (EventKind, bool) {
	for k := EventRunStart; k <= EventNote; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON encodes the kind as its canonical name, so an event stream
// on the wire reads "run-start", not an ordinal that would silently shift
// if kinds were ever reordered.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a canonical kind name (the eda/client package
// round-trips server-sent events through this).
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	kind, ok := KindFromString(s)
	if !ok {
		return fmt.Errorf("core: unknown event kind %q", s)
	}
	*k = kind
	return nil
}

// Event is one progress report flowing from a run to its Sink. Fields
// beyond Kind/Framework are kind-specific; unused ones are zero. The json
// tags fix the wire form the eda service layer streams as server-sent
// events.
type Event struct {
	Kind      EventKind `json:"kind"`
	Framework string    `json:"framework,omitempty"`
	// Phase names the framework phase (EventPhase*), the cache layer
	// (EventCache) or the model task (EventLLMCall).
	Phase string `json:"phase,omitempty"`
	// Seq/Total position the event within its loop (candidate i of n,
	// round r of d); Total may be 0 when open-ended.
	Seq   int `json:"seq,omitempty"`
	Total int `json:"total,omitempty"`
	// Score is the candidate's scalar quality (pass fraction, watts, ...).
	Score float64 `json:"score,omitempty"`
	// OK marks phase/candidate success.
	OK bool `json:"ok,omitempty"`
	// Detail carries free-form context (verdicts, tool feedback heads).
	Detail string `json:"detail,omitempty"`
	// TokensIn/TokensOut report model usage (EventLLMCall).
	TokensIn  int `json:"tokens_in,omitempty"`
	TokensOut int `json:"tokens_out,omitempty"`
	// Hits/Misses/Evictions are cache counters (EventCache).
	Hits      uint64 `json:"hits,omitempty"`
	Misses    uint64 `json:"misses,omitempty"`
	Evictions uint64 `json:"evictions,omitempty"`
}

// Sink receives run events. Implementations must be safe for concurrent
// use: batch evaluation emits from worker goroutines.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// nopSink drops events; SinkOf returns it when the context carries none,
// so emit sites never branch.
type nopSink struct{}

func (nopSink) Emit(Event) {}

type sinkKey struct{}

// WithSink returns a context that carries sink; every framework run under
// that context streams its events there.
func WithSink(ctx context.Context, sink Sink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, sink)
}

// SinkOf returns the context's sink, or a no-op sink when none is set.
func SinkOf(ctx context.Context) Sink {
	if s, ok := ctx.Value(sinkKey{}).(Sink); ok && s != nil {
		return s
	}
	return nopSink{}
}

// Emit sends one event to the context's sink (a no-op without one).
func Emit(ctx context.Context, ev Event) {
	SinkOf(ctx).Emit(ev)
}
