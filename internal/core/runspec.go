package core

import (
	"fmt"
	"strings"
	"time"
)

// Tier names accepted by RunSpec.Validate. The llm package maps them onto
// its simulated model families; core only fixes the vocabulary so that
// every framework validates tiers identically.
const (
	TierNameSmall    = "small"
	TierNameMedium   = "medium"
	TierNameLarge    = "large"
	TierNameFrontier = "frontier"
)

// TierNames lists the accepted tier names, weakest first.
func TierNames() []string {
	return []string{TierNameSmall, TierNameMedium, TierNameLarge, TierNameFrontier}
}

// RunSpec is the execution envelope shared by every framework's
// Options/Config struct: who the model is (Tier), how randomness is fixed
// (Seed), how wide batch evaluation fans out (Workers) and how long the
// run may take (Deadline). Frameworks embed it so defaults and validation
// live in one place instead of eight.
// The json tags fix the wire form used by the eda service layer; Deadline
// travels as integer nanoseconds (Go duration units).
type RunSpec struct {
	// Seed fixes every pseudo-random stream of the run (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Tier names the model capability class ("small", "medium", "large",
	// "frontier"); empty selects the framework's default.
	Tier string `json:"tier,omitempty"`
	// Workers bounds batch-evaluation concurrency; 0 selects GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Deadline bounds the whole run's wall clock; 0 means no limit. The
	// eda layer derives a context timeout from it.
	Deadline time.Duration `json:"deadline,omitempty"`
}

// WithDefaults fills zero values with the shared defaults and normalizes
// the tier name (tiers are case-insensitive, as the CLI always was).
func (s RunSpec) WithDefaults() RunSpec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	s.Tier = strings.ToLower(s.Tier)
	if s.Tier == "" {
		s.Tier = TierNameFrontier
	}
	return s
}

// Validate rejects specs no framework can execute.
func (s RunSpec) Validate() error {
	if s.Workers < 0 {
		return fmt.Errorf("core: RunSpec.Workers must be >= 0, got %d", s.Workers)
	}
	if s.Deadline < 0 {
		return fmt.Errorf("core: RunSpec.Deadline must be >= 0, got %v", s.Deadline)
	}
	if s.Tier != "" {
		ok := false
		for _, n := range TierNames() {
			if strings.EqualFold(s.Tier, n) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("core: unknown tier %q (small|medium|large|frontier)", s.Tier)
		}
	}
	return nil
}
