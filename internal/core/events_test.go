package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestSinkContextPlumbing(t *testing.T) {
	var got []Event
	ctx := WithSink(context.Background(), SinkFunc(func(ev Event) {
		got = append(got, ev)
	}))
	Emit(ctx, Event{Kind: EventPhaseStart, Framework: "x"})
	SinkOf(ctx).Emit(Event{Kind: EventPhaseEnd, Framework: "x"})
	if len(got) != 2 || got[0].Kind != EventPhaseStart || got[1].Kind != EventPhaseEnd {
		t.Fatalf("events = %+v", got)
	}
}

func TestSinkOfWithoutSinkIsNoop(t *testing.T) {
	// Must not panic and must swallow the event.
	Emit(context.Background(), Event{Kind: EventNote})
	if s := SinkOf(context.Background()); s == nil {
		t.Fatal("SinkOf returned nil")
	}
	// Nil sink attaches nothing.
	ctx := WithSink(context.Background(), nil)
	Emit(ctx, Event{Kind: EventNote})
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventRunStart, EventRunEnd, EventPhaseStart, EventPhaseEnd,
		EventCandidate, EventLLMCall, EventCache, EventNote}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "event(99)" {
		t.Errorf("unknown kind renders %q", EventKind(99).String())
	}
}

func TestRunSpecValidate(t *testing.T) {
	good := []RunSpec{
		{},
		{Seed: 5, Tier: "small", Workers: 4, Deadline: time.Second},
		{Tier: "frontier"},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec %+v rejected: %v", s, err)
		}
	}
	bad := []RunSpec{
		{Workers: -1},
		{Deadline: -time.Second},
		{Tier: "gpt9"},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid spec %+v accepted", s)
		}
	}
	d := RunSpec{}.WithDefaults()
	if d.Seed != 1 || d.Tier != TierNameFrontier || d.Workers != 0 || d.Deadline != 0 {
		t.Errorf("defaults = %+v", d)
	}
	// Defaults preserve explicit values.
	e := RunSpec{Seed: 9, Tier: "small", Workers: 2, Deadline: time.Minute}.WithDefaults()
	if e.Seed != 9 || e.Tier != "small" || e.Workers != 2 || e.Deadline != time.Minute {
		t.Errorf("explicit values clobbered: %+v", e)
	}
}

// TestEventJSONRoundTrip pins the wire form the service layer streams:
// kinds travel as canonical names and every field survives the trip.
func TestEventJSONRoundTrip(t *testing.T) {
	for k := EventRunStart; k <= EventNote; k++ {
		ev := Event{Kind: k, Framework: "fw", Phase: "p", Seq: 2, Total: 5,
			Score: 0.5, OK: true, Detail: "d", TokensIn: 3, TokensOut: 4,
			Hits: 6, Misses: 7, Evictions: 8}
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !bytes.Contains(b, []byte(`"kind":"`+k.String()+`"`)) {
			t.Errorf("%v: kind not encoded by name: %s", k, b)
		}
		var back Event
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if back != ev {
			t.Errorf("round trip lost fields: %+v vs %+v", back, ev)
		}
	}
	if _, ok := KindFromString("run-start"); !ok {
		t.Error("KindFromString rejects a canonical name")
	}
	if _, ok := KindFromString("nope"); ok {
		t.Error("KindFromString accepts an unknown name")
	}
	var k EventKind
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Error("unknown kind name decoded without error")
	}
}
