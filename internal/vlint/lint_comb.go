package vlint

import "llm4eda/internal/verilog"

// Combinational dataflow analysis: one walk per combinational always
// block computes, per path join, which signals MUST be assigned on
// every path and which MAY be assigned on some path. A signal that may
// be assigned but is not must-assigned keeps its old value on the
// missing paths — an inferred latch, which is error-severity: the
// design is sequential where it claims to be combinational, and
// simulation timing diverges from the synthesized netlist.
//
// The same walk records external reads (signals read before this block
// must-assigns them); those become the block's dependency-graph edges
// for the combinational-loop SCC check.

// flowState is the per-path dataflow state. must/may map to the source
// line of the first relevant assignment; ext maps externally-read
// signals to the line of the first read.
type flowState struct {
	must map[verilog.SignalID]int
	may  map[verilog.SignalID]int
	ext  map[verilog.SignalID]int
}

func newFlowState() *flowState {
	return &flowState{
		must: map[verilog.SignalID]int{},
		may:  map[verilog.SignalID]int{},
		ext:  map[verilog.SignalID]int{},
	}
}

func (st *flowState) clone() *flowState {
	c := newFlowState()
	for k, v := range st.must {
		c.must[k] = v
	}
	for k, v := range st.may {
		c.may[k] = v
	}
	for k, v := range st.ext {
		c.ext[k] = v
	}
	return c
}

// mergeBranches folds the states of alternative paths back into st:
// must-assigned only if every branch must-assigns, may/ext if any does.
func (st *flowState) mergeBranches(branches []*flowState) {
	if len(branches) == 0 {
		return
	}
	for sig, line := range branches[0].must {
		if _, already := st.must[sig]; already {
			continue
		}
		all := true
		for _, b := range branches[1:] {
			if _, ok := b.must[sig]; !ok {
				all = false
				break
			}
		}
		if all {
			st.must[sig] = line
		}
	}
	for _, b := range branches {
		for sig, line := range b.may {
			if _, ok := st.may[sig]; !ok {
				st.may[sig] = line
			}
		}
		for sig, line := range b.ext {
			if _, ok := st.ext[sig]; !ok {
				st.ext[sig] = line
			}
		}
	}
}

// mergeMayOnly folds a path that may execute zero times (loop bodies,
// timing-control bodies): nothing it assigns is guaranteed.
func (st *flowState) mergeMayOnly(b *flowState) {
	for sig, line := range b.may {
		if _, ok := st.may[sig]; !ok {
			st.may[sig] = line
		}
	}
	for sig, line := range b.ext {
		if _, ok := st.ext[sig]; !ok {
			st.ext[sig] = line
		}
	}
}

// combWalk drives the dataflow walk for one combinational always block.
type combWalk struct {
	lt        *linter
	saidConst bool
	saidNB    bool
}

// checkComb analyzes one combinational always block: latch inference,
// nonblocking-style check, loop edges, and the read/driver census.
func (lt *linter) checkComb(p verilog.DesignProcess) {
	w := &combWalk{lt: lt}
	st := newFlowState()
	w.stmt(p.Body, st)

	for sig, line := range st.may {
		lt.driven[sig] = true
		lt.drivers[sig] = append(lt.drivers[sig], driver{kind: drvProc, line: line})
		// Dependency edges: everything this block reads externally (a
		// value produced outside the block, or read before the block
		// overwrites it — including the block's own output, a real
		// read-before-write cycle) feeds everything it may assign.
		for src := range st.ext {
			lt.addEdge(src, sig, line)
		}
		if _, ok := st.must[sig]; !ok {
			lt.addDiag(RuleLatch, SevError, line, lt.sigName(sig),
				"%q is not assigned on every path through this combinational block: latch inferred", lt.sigName(sig))
		}
	}
}

// reads marks every signal read by ex as externally read unless this
// path already must-assigned it (an internally produced value).
func (w *combWalk) reads(ex verilog.Expr, st *flowState) {
	w.lt.scratch = w.lt.exprReads(ex, false, w.lt.scratch[:0])
	for _, r := range w.lt.scratch {
		w.lt.markRead(r.sig, r.line)
		if _, internal := st.must[r.sig]; internal {
			continue
		}
		if _, ok := st.ext[r.sig]; !ok {
			st.ext[r.sig] = r.line
		}
	}
}

func (w *combWalk) assign(a *verilog.Assign, st *flowState, loopClause bool) {
	if a == nil {
		return
	}
	w.reads(a.RHS, st)
	targets, reads := w.lt.lhsTargets(a.LHS, a.Line, w.lt.scratchT[:0], w.lt.scratch[:0])
	for _, r := range reads {
		w.lt.markRead(r.sig, r.line)
		if _, internal := st.must[r.sig]; internal {
			continue
		}
		if _, ok := st.ext[r.sig]; !ok {
			st.ext[r.sig] = r.line
		}
	}
	name := ""
	for _, t := range targets {
		if name == "" {
			name = w.lt.sigName(t.sig)
		}
		if _, ok := st.may[t.sig]; !ok {
			st.may[t.sig] = a.Line
		}
		// Partial writes count as must: bitwise assembly of a bus across
		// arms is common and per-bit coverage tracking is out of scope,
		// so the latch rule stays conservative (no false positives).
		if _, ok := st.must[t.sig]; !ok {
			st.must[t.sig] = a.Line
		}
		if a.NonBlocking && !loopClause && !w.saidNB {
			w.saidNB = true
			w.lt.addDiag(RuleNBComb, SevWarning, a.Line, name,
				"nonblocking assignment to %q in a combinational block (use =)", name)
		}
	}
	w.lt.checkWidth(a.LHS, a.RHS, a.Line, name)
	w.lt.scratchT = targets[:0]
}

func (w *combWalk) constCond(cond verilog.Expr, line int) {
	if _, isNum := cond.(*verilog.Number); isNum && !w.saidConst {
		w.saidConst = true
		w.lt.addDiag(RuleConstCond, SevWarning, line, "",
			"condition is a literal constant: branch is always the same")
	}
}

func (w *combWalk) stmt(s verilog.Stmt, st *flowState) {
	switch n := s.(type) {
	case *verilog.Block:
		for _, sub := range n.Stmts {
			w.stmt(sub, st)
		}
	case *verilog.Assign:
		w.assign(n, st, false)
	case *verilog.IfStmt:
		w.constCond(n.Cond, n.Line)
		w.reads(n.Cond, st)
		thenSt, elseSt := st.clone(), st.clone()
		w.stmt(n.Then, thenSt)
		if n.Else != nil {
			w.stmt(n.Else, elseSt)
		}
		st.mergeBranches([]*flowState{thenSt, elseSt})
	case *verilog.CaseStmt:
		w.reads(n.Subject, st)
		branches := make([]*flowState, 0, len(n.Items)+1)
		hasDefault := false
		for _, it := range n.Items {
			if it.IsDefault {
				hasDefault = true
			}
			for _, e := range it.Exprs {
				w.reads(e, st)
			}
			b := st.clone()
			w.stmt(it.Body, b)
			branches = append(branches, b)
		}
		if !hasDefault && !w.fullCoverage(n) {
			// The no-arm-taken path keeps every value: an empty branch.
			branches = append(branches, st.clone())
		}
		st.mergeBranches(branches)
	case *verilog.ForStmt:
		w.assign(n.Init, st, true)
		w.reads(n.Cond, st)
		body := st.clone()
		w.stmt(n.Body, body)
		w.assign(n.Step, body, true)
		st.mergeMayOnly(body)
	case *verilog.WhileStmt:
		w.constCond(n.Cond, n.Line)
		w.reads(n.Cond, st)
		body := st.clone()
		w.stmt(n.Body, body)
		st.mergeMayOnly(body)
	case *verilog.RepeatStmt:
		w.reads(n.Count, st)
		body := st.clone()
		w.stmt(n.Body, body)
		st.mergeMayOnly(body)
	case *verilog.ForeverStmt:
		body := st.clone()
		w.stmt(n.Body, body)
		st.mergeMayOnly(body)
	case *verilog.DelayStmt:
		w.reads(n.Amount, st)
		body := st.clone()
		w.stmt(n.Body, body)
		st.mergeMayOnly(body)
	case *verilog.EventStmt:
		body := st.clone()
		w.stmt(n.Body, body)
		st.mergeMayOnly(body)
	case *verilog.WaitStmt:
		w.reads(n.Cond, st)
	case *verilog.SysCall:
		for _, a := range n.Args {
			w.reads(a, st)
		}
	}
}

// fullCoverage reports whether a case without a default still covers
// every subject value: all labels are fully known constants and the
// distinct label values exhaust the subject's 2^w space (w capped so
// the count stays cheap). Casez wildcard labels contain x/z bits and
// are never fully known, so they land on the conservative side.
func (w *combWalk) fullCoverage(n *verilog.CaseStmt) bool {
	sw := w.lt.widthOf(n.Subject)
	if sw <= 0 || sw > 16 {
		return false
	}
	seen := map[uint64]bool{}
	for _, it := range n.Items {
		for _, e := range it.Exprs {
			v, ok := verilog.BoundConst(e)
			if !ok || !v.IsFullyKnown() {
				return false
			}
			seen[v.Resize(sw).Uint()] = true
		}
	}
	return len(seen) == 1<<uint(sw)
}
