package vlint

import (
	"fmt"
	"strings"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/llm"
	"llm4eda/internal/verilog"
)

// TestCleanCorpus is the false-positive gate: every benchset reference
// design and every simulated-LLM candidate over them must produce zero
// error-severity findings. Error severity is the screening threshold —
// a false positive here would reject a working candidate before it ever
// reaches the simulator.
func TestCleanCorpus(t *testing.T) {
	suite := benchset.Suite()
	if len(suite) != 26 {
		t.Fatalf("benchset has %d problems, the gate expects 26", len(suite))
	}
	for _, p := range suite {
		diags, err := LintSource(p.Reference, p.TopModule)
		if err != nil {
			t.Errorf("%s: reference does not compile: %v", p.ID, err)
			continue
		}
		if errs := Errors(diags); len(errs) > 0 {
			t.Errorf("%s: reference has error-severity findings:\n%s", p.ID, Format(errs))
		}
	}

	// Simulated-LLM candidates: every tier, a few seeds per problem. The
	// mutators model functional and syntax bugs, neither of which is
	// lint-error territory — a candidate that compiles must pass the
	// error-severity screen so E1..E11 dynamics are unchanged by default
	// screening.
	tiers := []llm.Tier{llm.TierSmall, llm.TierMedium, llm.TierFrontier}
	checked, skippedCompile := 0, 0
	for _, p := range suite {
		for _, tier := range tiers {
			for seed := uint64(1); seed <= 3; seed++ {
				m := llm.NewSimModel(tier, seed*1000+uint64(p.Difficulty))
				resp, err := m.Generate(llm.Request{Task: llm.VerilogGen{
					ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty,
				}})
				if err != nil {
					t.Fatalf("%s: sim model: %v", p.ID, err)
				}
				diags, err := LintSource(resp.Text, p.TopModule)
				if err != nil {
					skippedCompile++ // syntax-class candidate: screening falls through
					continue
				}
				checked++
				if errs := Errors(diags); len(errs) > 0 {
					t.Errorf("%s/%s/seed%d: candidate has error findings:\n%s\n--- candidate:\n%s",
						p.ID, tier, seed, Format(errs), resp.Text)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no candidate compiled; gate vacuous")
	}
	t.Logf("clean-corpus gate: %d references, %d candidates linted, %d non-compiling skipped",
		len(suite), checked, skippedCompile)
}

// TestMutantDetectionRate is the ground-truth gate: over every
// lint-class mutant of every reference design, the expected rule must
// fire in >= 90% of cases (and in 100% of error-class cases, which are
// what screening rejects).
func TestMutantDetectionRate(t *testing.T) {
	var total, detected, errTotal, errDetected int
	perClass := map[string][2]int{}
	for _, p := range benchset.Suite() {
		for _, m := range Mutants(p.Reference) {
			diags, err := LintSource(m.Source, p.TopModule)
			if err != nil {
				t.Errorf("%s: %s mutant at line %d no longer compiles: %v", p.ID, m.Class, m.Line, err)
				continue
			}
			total++
			hit := hasRule(diags, m.WantRule)
			c := perClass[m.Class]
			c[1]++
			if hit {
				c[0]++
				detected++
			}
			perClass[m.Class] = c
			if m.IsErrorClass() {
				errTotal++
				if hit && HasErrors(diags) {
					errDetected++
				}
			}
			if !hit {
				t.Logf("missed: %s %s line %d (%s), findings:\n%s", p.ID, m.Class, m.Line, m.Detail, Format(diags))
			}
		}
	}
	if total == 0 {
		t.Fatal("no mutants generated; gate vacuous")
	}
	var classes []string
	for c, v := range perClass {
		classes = append(classes, fmt.Sprintf("%s %d/%d", c, v[0], v[1]))
	}
	t.Logf("mutant detection: %d/%d overall, %d/%d error-class [%s]",
		detected, total, errDetected, errTotal, strings.Join(classes, ", "))
	if rate := float64(detected) / float64(total); rate < 0.9 {
		t.Errorf("detection rate %.1f%% < 90%% gate", 100*rate)
	}
	if errTotal == 0 {
		t.Error("no error-class mutants generated")
	} else if errDetected != errTotal {
		t.Errorf("error-class detection %d/%d: screening would miss broken RTL", errDetected, errTotal)
	}
}

// TestMutantsLineLocal pins the contract the repair model depends on:
// a mutant has the same number of lines as its origin and differs on
// exactly the reported line.
func TestMutantsLineLocal(t *testing.T) {
	for _, p := range benchset.Suite() {
		orig := strings.Split(p.Reference, "\n")
		for _, m := range Mutants(p.Reference) {
			got := strings.Split(m.Source, "\n")
			if len(got) != len(orig) {
				t.Fatalf("%s: %s mutant changed line count %d -> %d", p.ID, m.Class, len(orig), len(got))
			}
			for i := range got {
				if got[i] != orig[i] && i+1 != m.Line {
					t.Fatalf("%s: %s mutant reported line %d but changed line %d", p.ID, m.Class, m.Line, i+1)
				}
			}
			if got[m.Line-1] == orig[m.Line-1] {
				t.Fatalf("%s: %s mutant reported line %d unchanged", p.ID, m.Class, m.Line)
			}
		}
	}
}

// TestLintIsReadOnly guards the screening fast path: linting must not
// mutate the design (the same elaborated design may be simulated after
// a lint pass, or linted concurrently from two farm workers).
func TestLintIsReadOnly(t *testing.T) {
	p := benchset.ByID("mux4")
	if p == nil {
		t.Fatal("mux4 problem missing")
	}
	f, err := verilog.Parse(p.Reference)
	if err != nil {
		t.Fatal(err)
	}
	d, err := verilog.Elaborate(f, p.TopModule)
	if err != nil {
		t.Fatal(err)
	}
	first := Format(Lint(f, d))
	second := Format(Lint(f, d))
	if first != second {
		t.Fatalf("lint not idempotent over one design:\n%s\n---\n%s", first, second)
	}
}
