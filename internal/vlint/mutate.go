package vlint

import (
	"fmt"
	"strings"

	"llm4eda/internal/verilog"
)

// Lint-class mutation corpus: parse-guided, line-local text surgery that
// plants exactly the defect families the lint rules claim to catch.
// Every mutant replaces one source line (keeping the line count, so the
// simulated LLM's line-level repair model applies) and is re-validated
// to parse and elaborate — a mutant that breaks compilation is a syntax
// mutant, not a lint mutant, and is dropped. Detection expectations are
// structural (the generator only plants a defect where the rule's
// trigger conditions provably hold), so the detection-rate gate
// exercises the real analysis rather than a tautology.

// Mutant is one lint-class mutation of a source.
type Mutant struct {
	Class    string // dup-driver, comb-loop, drop-case-arm, width-narrow, width-widen, blocking-swap, nonblocking-swap
	Line     int    // 1-based line that was rewritten
	Detail   string
	WantRule string // lint rule expected to fire on the mutant
	Source   string // full mutated source, same line count as the input
}

// IsErrorClass reports whether the planted defect is error-severity
// (and therefore screenable); the repair experiment uses these.
func (m Mutant) IsErrorClass() bool {
	switch m.WantRule {
	case RuleMultiDriver, RuleCombLoop, RuleLatch:
		return true
	}
	return false
}

// Mutants generates every applicable lint-class mutant of src. Returns
// nil if src does not parse.
func Mutants(src string) []Mutant {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil
	}
	lines := strings.Split(src, "\n")
	g := &mutgen{src: src, lines: lines}
	for _, m := range f.Modules {
		g.module(m)
	}
	return g.out
}

type declInfo struct {
	msb  int // constant MSB of [msb:0]; -1 for scalar or non-constant
	line int
}

type mutgen struct {
	src   string
	lines []string
	out   []Mutant
}

// line returns the 1-based source line, or "" when out of range.
func (g *mutgen) line(n int) string {
	if n < 1 || n > len(g.lines) {
		return ""
	}
	return g.lines[n-1]
}

// emit validates the mutant (must still parse and elaborate under the
// mutated module's top) and appends it.
func (g *mutgen) emit(top string, lineNo int, newLine, class, wantRule, detail string) {
	if g.line(lineNo) == "" {
		return
	}
	mut := make([]string, len(g.lines))
	copy(mut, g.lines)
	mut[lineNo-1] = newLine
	src := strings.Join(mut, "\n")
	f, err := verilog.Parse(src)
	if err != nil {
		return
	}
	if _, err := verilog.Elaborate(f, top); err != nil {
		return
	}
	g.out = append(g.out, Mutant{Class: class, Line: lineNo, Detail: detail, WantRule: wantRule, Source: src})
}

func isWordChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// assignEq returns the index of the assignment '=' in a statement line
// (skipping ==, !=, <= and >= comparison operators), or -1.
func assignEq(s string) int {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '=':
			if i+1 < len(s) && s[i+1] == '=' {
				i++ // ==, skip both
				continue
			}
			if i > 0 && (s[i-1] == '<' || s[i-1] == '>' || s[i-1] == '!' || s[i-1] == '=') {
				continue
			}
			return i
		}
	}
	return -1
}

// rewriteDeclWidth rewrites the "[msb:0] name" fragment of a
// declaration line to a new MSB. The name is part of the pattern, so a
// header declaring several ports on one line stays unambiguous.
func rewriteDeclWidth(line, name string, oldMsb, newMsb int) (string, bool) {
	pat := fmt.Sprintf("[%d:0] %s", oldMsb, name)
	idx := strings.Index(line, pat)
	if idx < 0 {
		return "", false
	}
	end := idx + len(pat)
	if end < len(line) && isWordChar(line[end]) {
		return "", false
	}
	return line[:idx] + fmt.Sprintf("[%d:0] %s", newMsb, name) + line[end:], true
}

// numberMSB extracts the constant MSB of a width expression, or -1.
func numberMSB(ex verilog.Expr) int {
	n, ok := ex.(*verilog.Number)
	if !ok || !n.Val.IsFullyKnown() {
		return -1
	}
	return int(n.Val.Uint())
}

func (g *mutgen) module(m *verilog.Module) {
	decls := map[string]declInfo{}
	inputs := map[string]bool{}
	for _, p := range m.Ports {
		msb := -1
		if p.Width != nil {
			msb = numberMSB(p.Width)
		}
		decls[p.Name] = declInfo{msb: msb, line: p.Line}
		if p.Dir == verilog.DirInput {
			inputs[p.Name] = true
		}
	}
	for _, it := range m.Items {
		if d, ok := it.(*verilog.NetDecl); ok && d.ArrayHi == nil {
			msb := -1
			if d.Width != nil {
				msb = numberMSB(d.Width)
			}
			decls[d.Name] = declInfo{msb: msb, line: d.Line}
		}
	}

	for _, it := range m.Items {
		switch n := it.(type) {
		case *verilog.ContAssign:
			g.contAssign(m, n, decls)
		case *verilog.AlwaysBlock:
			if hasEdgeSens(n.Sens) {
				g.clockedAlways(m, n)
			} else if n.Star || len(n.Sens) > 0 {
				g.combAlways(m, n, decls)
			}
		}
	}
}

// contAssign plants dup-driver, comb-loop and width mutants at
// `assign <ident> = <rhs>;` sites.
func (g *mutgen) contAssign(m *verilog.Module, ca *verilog.ContAssign, decls map[string]declInfo) {
	lhs, ok := ca.LHS.(*verilog.Ident)
	if !ok {
		return
	}
	line := g.line(ca.Line)
	trimmed := strings.TrimRight(line, " \t")
	if !strings.Contains(line, "assign") || !strings.HasSuffix(trimmed, ";") {
		return
	}

	// dup-driver: a second whole-signal continuous driver on the same line.
	g.emit(m.Name, ca.Line, trimmed+" assign "+lhs.Name+" = 1'b0;",
		"dup-driver", RuleMultiDriver,
		fmt.Sprintf("second continuous driver of %q", lhs.Name))

	// comb-loop: feed the target back into its own right-hand side.
	if eq, semi := assignEq(line), strings.LastIndex(trimmed, ";"); eq >= 0 && eq < semi {
		rhs := strings.TrimSpace(line[eq+1 : semi])
		if !containsWord(rhs, lhs.Name) {
			g.emit(m.Name, ca.Line,
				line[:eq+1]+" ("+rhs+") ^ "+lhs.Name+";"+line[semi+1:],
				"comb-loop", RuleCombLoop,
				fmt.Sprintf("%q fed back into its own driver", lhs.Name))
		}
	}

	// Width mutants need a width-transparent RHS so the rule's width
	// computation is structural: a plain identifier or a bitwise
	// combination of identifiers, all declared the same width as the LHS.
	lw := decls[lhs.Name].msb
	operands := bitwiseOperands(ca.RHS)
	if lw < 1 || operands == nil {
		return
	}
	sameWidth := true
	for _, op := range operands {
		if op == lhs.Name || decls[op].msb != lw {
			sameWidth = false
			break
		}
	}
	if !sameWidth {
		return
	}
	if nl, ok := rewriteDeclWidth(g.line(decls[lhs.Name].line), lhs.Name, lw, lw-1); ok {
		g.emit(m.Name, decls[lhs.Name].line, nl, "width-narrow", RuleWidthTrunc,
			fmt.Sprintf("target %q narrowed to %d bits", lhs.Name, lw))
	}
	src := operands[0]
	if lw+2 <= 63 && inputsOnly(operands, decls) {
		if nl, ok := rewriteDeclWidth(g.line(decls[src].line), src, lw, lw+1); ok {
			g.emit(m.Name, decls[src].line, nl, "width-widen", RuleWidthTrunc,
				fmt.Sprintf("source %q widened to %d bits", src, lw+2))
		}
	}
}

// inputsOnly reports whether decls knows every operand's line (the
// widen mutant rewrites a declaration, so it must exist and be found).
func inputsOnly(ops []string, decls map[string]declInfo) bool {
	for _, op := range ops {
		if decls[op].line == 0 {
			return false
		}
	}
	return true
}

// bitwiseOperands returns the identifier operands of a width-transparent
// RHS (an identifier, ~identifier, or a &/|/^ tree of identifiers), or
// nil when the shape is anything else (arithmetic, selects, concats).
func bitwiseOperands(ex verilog.Expr) []string {
	switch n := ex.(type) {
	case *verilog.Ident:
		return []string{n.Name}
	case *verilog.Unary:
		if n.Op == "~" {
			return bitwiseOperands(n.X)
		}
	case *verilog.Binary:
		switch n.Op {
		case "&", "|", "^":
			a, b := bitwiseOperands(n.X), bitwiseOperands(n.Y)
			if a != nil && b != nil {
				return append(a, b...)
			}
		}
	}
	return nil
}

// containsWord reports whether name occurs in s as a whole identifier.
func containsWord(s, name string) bool {
	for idx := strings.Index(s, name); idx >= 0; {
		end := idx + len(name)
		if (idx == 0 || !isWordChar(s[idx-1])) && (end == len(s) || !isWordChar(s[end])) {
			return true
		}
		next := strings.Index(s[idx+1:], name)
		if next < 0 {
			return false
		}
		idx += 1 + next
	}
	return false
}

// clockedAlways plants blocking-swap mutants: one nonblocking
// assignment rewritten to blocking inside an edge-triggered block.
func (g *mutgen) clockedAlways(m *verilog.Module, ab *verilog.AlwaysBlock) {
	for _, a := range stmtAssigns(ab.Body) {
		if !a.NonBlocking {
			continue
		}
		line := g.line(a.Line)
		if strings.Count(line, "<=") != 1 {
			continue // a comparison shares the line: surgery would be ambiguous
		}
		g.emit(m.Name, a.Line, strings.Replace(line, "<=", "=", 1),
			"blocking-swap", RuleBlockingSeq, "nonblocking assignment made blocking in clocked block")
	}
}

// combAlways plants nonblocking-swap and drop-case-arm mutants inside a
// combinational always block.
func (g *mutgen) combAlways(m *verilog.Module, ab *verilog.AlwaysBlock, decls map[string]declInfo) {
	for _, a := range stmtAssigns(ab.Body) {
		if a.NonBlocking {
			continue
		}
		line := g.line(a.Line)
		eq := assignEq(line)
		if eq < 0 || strings.Contains(line, "<=") {
			continue
		}
		g.emit(m.Name, a.Line, line[:eq]+"<="+line[eq+1:],
			"nonblocking-swap", RuleNBComb, "blocking assignment made nonblocking in combinational block")
	}

	// drop-case-arm: blank the default arm of a case whose explicit arms
	// do not already cover the whole subject space — the uncovered paths
	// then latch the target.
	cs := firstCase(ab.Body)
	if cs == nil {
		return
	}
	var defAssign *verilog.Assign
	hasDefault := false
	labels := map[uint64]bool{}
	covered := -1
	if subj, ok := cs.Subject.(*verilog.Ident); ok {
		if di, found := decls[subj.Name]; found {
			if di.msb >= 0 && di.msb < 16 {
				covered = 1 << uint(di.msb+1)
			} else if di.msb == -1 {
				covered = 2 // scalar subject
			}
		}
	}
	for _, it := range cs.Items {
		if it.IsDefault {
			hasDefault = true
			defAssign, _ = it.Body.(*verilog.Assign)
			continue
		}
		for _, e := range it.Exprs {
			if n, ok := e.(*verilog.Number); ok && n.Val.IsFullyKnown() {
				labels[n.Val.Uint()] = true
			} else {
				covered = -1 // non-constant label: coverage unknown, stay safe
			}
		}
	}
	// Only plant where the remaining arms provably under-cover the
	// subject — otherwise the mutant would not latch and the detection
	// gate would (rightly) count it as a miss.
	if !hasDefault || defAssign == nil || covered <= 0 || len(labels) >= covered {
		return
	}
	line := g.line(defAssign.Line)
	idx := strings.Index(line, "default")
	if idx < 0 {
		return
	}
	detail := "default case arm emptied"
	if lhs, ok := defAssign.LHS.(*verilog.Ident); ok {
		detail = fmt.Sprintf("default case arm for %q emptied", lhs.Name)
	}
	g.emit(m.Name, defAssign.Line, line[:idx]+"default: ;", "drop-case-arm", RuleLatch, detail)
}

// firstCase returns the case statement if it is the block's first (or
// only) statement — the shape where dropping the default provably
// latches (no unconditional assignment precedes it).
func firstCase(s verilog.Stmt) *verilog.CaseStmt {
	switch n := s.(type) {
	case *verilog.CaseStmt:
		return n
	case *verilog.Block:
		if len(n.Stmts) > 0 {
			if cs, ok := n.Stmts[0].(*verilog.CaseStmt); ok {
				return cs
			}
		}
	}
	return nil
}

// stmtAssigns collects every statement-position assignment in a body
// (for-loop init/step clauses excluded: blocking loop bookkeeping is
// idiomatic even in clocked blocks).
func stmtAssigns(s verilog.Stmt) []*verilog.Assign {
	var out []*verilog.Assign
	var walk func(verilog.Stmt)
	walk = func(s verilog.Stmt) {
		switch n := s.(type) {
		case *verilog.Block:
			for _, st := range n.Stmts {
				walk(st)
			}
		case *verilog.Assign:
			out = append(out, n)
		case *verilog.IfStmt:
			walk(n.Then)
			walk(n.Else)
		case *verilog.CaseStmt:
			for _, it := range n.Items {
				walk(it.Body)
			}
		case *verilog.ForStmt:
			walk(n.Body)
		case *verilog.WhileStmt:
			walk(n.Body)
		case *verilog.RepeatStmt:
			walk(n.Body)
		case *verilog.ForeverStmt:
			walk(n.Body)
		case *verilog.DelayStmt:
			walk(n.Body)
		case *verilog.EventStmt:
			walk(n.Body)
		}
	}
	walk(s)
	return out
}
