package vlint

import (
	"sort"
	"strings"

	"llm4eda/internal/verilog"
)

// Whole-design rules that run after the per-assign/per-process census:
// driver conflicts, combinational-loop SCCs, and undriven/unused
// signals.

// checkDrivers flags conflicting drivers. A conflict requires a
// whole-signal continuous driver on one side: two whole continuous
// assignments, a whole continuous assignment plus a partial one, or a
// continuous assignment (whole or partial) fighting an always process.
// Partial+partial (bit-sliced bus assembly) and process+process are
// deliberately not flagged — per-bit overlap tracking is out of scope
// and the conservative side of a screening rule is silence.
func (lt *linter) checkDrivers() {
	for id := range lt.drivers {
		ds := lt.drivers[id]
		if len(ds) < 2 {
			continue
		}
		var contWhole, contPart, proc int
		line := 0
		for _, d := range ds {
			switch d.kind {
			case drvContWhole:
				contWhole++
			case drvContPart:
				contPart++
			case drvProc:
				proc++
			}
			if line == 0 || (d.line > 0 && d.line < line) {
				line = d.line
			}
		}
		cont := contWhole + contPart
		conflict := contWhole >= 2 ||
			(contWhole >= 1 && contPart >= 1) ||
			(cont >= 1 && proc >= 1)
		if !conflict {
			continue
		}
		name := lt.sigName(verilog.SignalID(id))
		lt.addDiag(RuleMultiDriver, SevError, line, name,
			"%q has %d conflicting drivers (%d continuous, %d process)", name, len(ds), cont, proc)
	}
}

// checkCombLoops runs Tarjan's SCC over the combinational dependency
// graph (continuous assignments and combinational always blocks; clocked
// blocks contribute no edges — a register legally closes a feedback
// path). Every non-trivial SCC, including a self-edge, is a zero-delay
// cycle: the simulator would chase it to its delta limit, so this is
// error-severity and worth rejecting before a simulation is spent.
func (lt *linter) checkCombLoops() {
	n := len(lt.d.Signals)
	index := make([]int, n) // 0 = unvisited; else order+1
	low := make([]int, n)
	onStack := make([]bool, n)
	var stack []int32
	next := 0

	var sccs [][]int32
	var connect func(v int32)
	connect = func(v int32) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, v)
		onStack[v] = true
		for wSig := range lt.adj[verilog.SignalID(v)] {
			w := int32(wSig)
			if index[w] == 0 {
				connect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int32
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == 0 {
			connect(int32(v))
		}
	}

	for _, comp := range sccs {
		if len(comp) == 1 {
			v := verilog.SignalID(comp[0])
			if _, self := lt.adj[v][v]; !self {
				continue
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		names := make([]string, 0, len(comp)+1)
		line := 0
		inComp := map[verilog.SignalID]bool{}
		for _, v := range comp {
			inComp[verilog.SignalID(v)] = true
		}
		for _, v := range comp {
			names = append(names, lt.sigName(verilog.SignalID(v)))
			for to, l := range lt.adj[verilog.SignalID(v)] {
				if inComp[to] && (line == 0 || (l > 0 && l < line)) {
					line = l
				}
			}
		}
		names = append(names, names[0]) // close the cycle in the report
		lt.addDiag(RuleCombLoop, SevError, line, lt.sigName(verilog.SignalID(comp[0])),
			"combinational loop: %s", strings.Join(names, " -> "))
	}
}

// checkUndrivenUnused flags signals read but never driven (top-level
// inputs are driven by the environment and exempt) and signals never
// read (top-level outputs are observed by the environment and exempt).
// Both are warnings: an undriven read yields X rather than breaking the
// simulation, and dead signals cost nothing but attention.
func (lt *linter) checkUndrivenUnused() {
	for id, s := range lt.d.Signals {
		dir := lt.portDir[id]
		if rl := lt.readLine[id]; rl != 0 && !lt.driven[id] && dir != verilog.DirInput && dir != verilog.DirInout {
			lt.addDiag(RuleUndriven, SevWarning, rl, s.Name,
				"%q is read but never driven (always X)", s.Name)
		}
		if lt.readLine[id] == 0 && dir != verilog.DirOutput && dir != verilog.DirInout {
			lt.addDiag(RuleUnused, SevWarning, 0, s.Name, "%q is never read", s.Name)
		}
	}
}
