package vlint

import (
	"strings"
	"testing"
)

// lintOf lints src with the given top and fails the test on compile errors.
func lintOf(t *testing.T, src, top string) []Diagnostic {
	t.Helper()
	diags, err := LintSource(src, top)
	if err != nil {
		t.Fatalf("LintSource(%s): %v", top, err)
	}
	return diags
}

func hasRule(diags []Diagnostic, rule string) bool {
	for _, d := range diags {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

func ruleDiag(diags []Diagnostic, rule string) (Diagnostic, bool) {
	for _, d := range diags {
		if d.Rule == rule {
			return d, true
		}
	}
	return Diagnostic{}, false
}

func TestMultiDriver(t *testing.T) {
	src := `module m(input a, input b, output y);
  assign y = a;
  assign y = b;
endmodule
`
	diags := lintOf(t, src, "m")
	d, ok := ruleDiag(diags, RuleMultiDriver)
	if !ok {
		t.Fatalf("no multi-driver finding in:\n%s", Format(diags))
	}
	if d.Sev != SevError {
		t.Errorf("multi-driver severity = %v, want error", d.Sev)
	}
	if d.Signal != "m.y" {
		t.Errorf("multi-driver signal = %q, want m.y", d.Signal)
	}
}

func TestMultiDriverContVsProc(t *testing.T) {
	src := `module m(input a, input clk, output reg y);
  always @(posedge clk) y <= a;
endmodule

module wrap(input a, input clk, output y);
  m u(.a(a), .clk(clk), .y(y));
  assign y = 1'b0;
endmodule
`
	diags := lintOf(t, src, "wrap")
	if !hasRule(diags, RuleMultiDriver) {
		t.Fatalf("cont+proc conflict through a port not flagged:\n%s", Format(diags))
	}
}

func TestMultiDriverPartialPartialNotFlagged(t *testing.T) {
	src := `module m(input a, input b, output [1:0] y);
  assign y[0] = a;
  assign y[1] = b;
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleMultiDriver) {
		t.Fatalf("bit-sliced assembly falsely flagged:\n%s", Format(diags))
	}
}

func TestCombLoop(t *testing.T) {
	src := `module m(input a, output y);
  assign y = a ^ y;
endmodule
`
	d, ok := ruleDiag(lintOf(t, src, "m"), RuleCombLoop)
	if !ok {
		t.Fatal("self-feeding assign not flagged as comb-loop")
	}
	if d.Sev != SevError {
		t.Errorf("comb-loop severity = %v, want error", d.Sev)
	}
	if !strings.Contains(d.Msg, "m.y") {
		t.Errorf("loop report %q does not name m.y", d.Msg)
	}
}

func TestCombLoopTwoAssigns(t *testing.T) {
	src := `module m(input a, output x, output y);
  assign x = a & y;
  assign y = x | a;
endmodule
`
	if !hasRule(lintOf(t, src, "m"), RuleCombLoop) {
		t.Fatal("two-assign cycle not flagged")
	}
}

func TestRegisterBreaksLoop(t *testing.T) {
	src := `module m(input clk, input a, output reg q, output y);
  assign y = q ^ a;
  always @(posedge clk) q <= y;
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleCombLoop) {
		t.Fatalf("clocked feedback falsely flagged as comb loop:\n%s", Format(diags))
	}
}

func TestPartialSelfAssignNotLoop(t *testing.T) {
	src := `module m(input a, output [1:0] y);
  assign y[0] = a;
  assign y[1] = y[0];
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleCombLoop) {
		t.Fatalf("bit-to-bit copy falsely flagged as loop:\n%s", Format(diags))
	}
}

func TestInferredLatch(t *testing.T) {
	src := `module m(input c, input a, output reg y);
  always @(*) begin
    if (c) y = a;
  end
endmodule
`
	d, ok := ruleDiag(lintOf(t, src, "m"), RuleLatch)
	if !ok {
		t.Fatal("if-without-else in comb always not flagged as latch")
	}
	if d.Sev != SevError || d.Signal != "m.y" {
		t.Errorf("latch finding = %+v, want error on m.y", d)
	}
}

func TestNoLatchWithElse(t *testing.T) {
	src := `module m(input c, input a, input b, output reg y);
  always @(*) begin
    if (c) y = a;
    else y = b;
  end
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleLatch) {
		t.Fatalf("complete if/else falsely flagged:\n%s", Format(diags))
	}
}

func TestNoLatchWithPreAssign(t *testing.T) {
	src := `module m(input c, input a, output reg y);
  always @(*) begin
    y = 1'b0;
    if (c) y = a;
  end
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleLatch) {
		t.Fatalf("default-then-override falsely flagged:\n%s", Format(diags))
	}
}

func TestLatchFromDroppedDefault(t *testing.T) {
	src := `module m(input [1:0] s, input a, input b, output reg y);
  always @(*) begin
    case (s)
      2'd0: y = a;
      2'd1: y = b;
    endcase
  end
endmodule
`
	if !hasRule(lintOf(t, src, "m"), RuleLatch) {
		t.Fatal("under-covered case without default not flagged as latch")
	}
}

func TestNoLatchFullConstantCoverage(t *testing.T) {
	src := `module m(input s, input a, input b, output reg y);
  always @(*) begin
    case (s)
      1'b0: y = a;
      1'b1: y = b;
    endcase
  end
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleLatch) {
		t.Fatalf("exhaustive constant case falsely flagged:\n%s", Format(diags))
	}
}

func TestNoLatchWithDefault(t *testing.T) {
	src := `module m(input [1:0] s, input a, output reg y);
  always @(*) begin
    case (s)
      2'd0: y = a;
      default: y = 1'b0;
    endcase
  end
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleLatch) {
		t.Fatalf("case with default falsely flagged:\n%s", Format(diags))
	}
}

func TestWidthTruncation(t *testing.T) {
	src := `module m(input [7:0] a, input [7:0] b, output [3:0] y);
  assign y = a & b;
endmodule
`
	d, ok := ruleDiag(lintOf(t, src, "m"), RuleWidthTrunc)
	if !ok {
		t.Fatal("8-bit -> 4-bit truncation not flagged")
	}
	if d.Sev != SevWarning {
		t.Errorf("width-trunc severity = %v, want warning", d.Sev)
	}
}

func TestWidthArithmeticExempt(t *testing.T) {
	src := `module m(input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a + b;
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleWidthTrunc) {
		t.Fatalf("modular arithmetic falsely flagged for carry growth:\n%s", Format(diags))
	}
}

func TestWidthWideningNotFlagged(t *testing.T) {
	src := `module m(input [3:0] a, output [7:0] y);
  assign y = a;
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleWidthTrunc) {
		t.Fatalf("zero extension falsely flagged:\n%s", Format(diags))
	}
}

func TestUndrivenRead(t *testing.T) {
	src := `module m(input a, output y);
  wire ghost;
  assign y = a & ghost;
endmodule
`
	d, ok := ruleDiag(lintOf(t, src, "m"), RuleUndriven)
	if !ok {
		t.Fatal("read of undriven wire not flagged")
	}
	if d.Signal != "m.ghost" {
		t.Errorf("undriven signal = %q, want m.ghost", d.Signal)
	}
}

func TestInputPortNotUndriven(t *testing.T) {
	src := `module m(input a, output y);
  assign y = a;
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleUndriven) {
		t.Fatalf("top-level input falsely flagged as undriven:\n%s", Format(diags))
	}
}

func TestUnusedSignal(t *testing.T) {
	src := `module m(input a, output y);
  wire dead;
  assign dead = ~a;
  assign y = a;
endmodule
`
	d, ok := ruleDiag(lintOf(t, src, "m"), RuleUnused)
	if !ok {
		t.Fatal("never-read wire not flagged as unused")
	}
	if d.Signal != "m.dead" {
		t.Errorf("unused signal = %q, want m.dead", d.Signal)
	}
}

func TestOutputPortNotUnused(t *testing.T) {
	src := `module m(input a, output y);
  assign y = a;
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleUnused) {
		t.Fatalf("top-level output falsely flagged as unused:\n%s", Format(diags))
	}
}

func TestBlockingInClockedBlock(t *testing.T) {
	src := `module m(input clk, input d, output reg q);
  always @(posedge clk) begin
    q = d;
  end
endmodule
`
	if !hasRule(lintOf(t, src, "m"), RuleBlockingSeq) {
		t.Fatal("blocking assign in clocked block not flagged")
	}
}

func TestNonblockingInCombBlock(t *testing.T) {
	src := `module m(input a, input b, output reg y);
  always @(*) begin
    y <= a & b;
  end
endmodule
`
	if !hasRule(lintOf(t, src, "m"), RuleNBComb) {
		t.Fatal("nonblocking assign in comb block not flagged")
	}
}

func TestConstCondition(t *testing.T) {
	src := `module m(input clk, input d, output reg q);
  always @(posedge clk) begin
    if (1'b0) q <= 1'b0;
    else q <= d;
  end
endmodule
`
	if !hasRule(lintOf(t, src, "m"), RuleConstCond) {
		t.Fatal("literal-constant condition not flagged")
	}
}

func TestParamConditionExempt(t *testing.T) {
	src := `module m(input clk, input d, output reg q);
  parameter USE_RST = 1;
  always @(posedge clk) begin
    if (USE_RST) q <= d;
    else q <= ~d;
  end
endmodule
`
	if diags := lintOf(t, src, "m"); hasRule(diags, RuleConstCond) {
		t.Fatalf("parameter condition falsely flagged:\n%s", Format(diags))
	}
}

func TestDiagnosticStringStartsWithLint(t *testing.T) {
	src := `module m(input a, output y);
  assign y = a;
  assign y = 1'b1;
endmodule
`
	diags := lintOf(t, src, "m")
	for _, d := range diags {
		if !strings.HasPrefix(d.String(), "lint: ") {
			t.Errorf("diagnostic %q does not start with the lint: routing prefix", d.String())
		}
	}
	errs := Errors(diags)
	if len(errs) == 0 || !HasErrors(diags) {
		t.Fatal("expected error-severity findings")
	}
	re := &RejectError{Top: "m", Diags: errs}
	if !strings.Contains(re.Error(), "lint: error") {
		t.Errorf("RejectError text lacks embedded diagnostics: %q", re.Error())
	}
}

func TestLintSourcePropagatesCompileErrors(t *testing.T) {
	if _, err := LintSource("module m(; endmodule", "m"); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := LintSource("module m(input a, output y); assign y = a; endmodule", "nope"); err == nil {
		t.Fatal("want elaboration error for missing top")
	}
}
