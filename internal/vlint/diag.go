// Package vlint is a static RTL lint engine over elaborated designs.
// It walks the same bound trees the simulator executes (via the verilog
// package's analysis views), so every finding is reported against the
// flattened, parameter-resolved design — no separate semantic model to
// drift out of sync with the simulator. Findings are structured
// Diagnostics with severities and source positions; error-severity
// findings are sound rejection evidence (the design is broken RTL by
// construction: conflicting drivers, a combinational cycle, an inferred
// latch in a combinational block), while warnings flag style and width
// hazards that simulate fine but usually hide bugs.
//
// The engine feeds three layers: simfarm screens candidates before
// spending a compile+simulation on them (Farm.LintRejects), the
// simulated-LLM loop receives diagnostics as repair feedback (scenario
// E12, llm.BuildLintRepairPrompt), and the mutation corpus in mutate.go
// provides lint-class ground truth for the detection-rate gate.
package vlint

import (
	"fmt"
	"sort"
	"strings"

	"llm4eda/internal/verilog"
)

// Severity classifies a finding. Error-severity findings identify RTL
// that is structurally broken regardless of stimulus; screening rejects
// on errors only, never on warnings.
type Severity int

// Severities.
const (
	SevWarning Severity = iota + 1
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Rule identifiers. Kept short and stable: they appear in prompts, in
// experiment tables and in the mutant detection gate.
const (
	RuleMultiDriver = "multi-driver"     // error: conflicting continuous/process drivers
	RuleCombLoop    = "comb-loop"        // error: cycle in the combinational dependency graph
	RuleLatch       = "inferred-latch"   // error: incomplete if/case in combinational always
	RuleWidthTrunc  = "width-trunc"      // warning: RHS wider than assignment target
	RuleUndriven    = "undriven"         // warning: signal read but never driven
	RuleUnused      = "unused"           // warning: signal never read
	RuleBlockingSeq = "blocking-in-seq"  // warning: blocking assign in a clocked block
	RuleNBComb      = "nonblocking-comb" // warning: nonblocking assign in a combinational block
	RuleConstCond   = "const-cond"       // warning: literal-constant condition (dead branch)
)

// Diagnostic is one structured lint finding.
type Diagnostic struct {
	Rule   string
	Sev    Severity
	Pos    verilog.Pos
	Signal string // hierarchical signal name, "" when not signal-specific
	Msg    string
}

// String renders the finding in the fixed "lint:" form shared by repair
// prompts and farm rejection errors (the simulated LLM routes feedback
// containing "lint:" to its line-repair behavior).
func (d Diagnostic) String() string {
	if d.Pos.Line == 0 && d.Pos.File == "" {
		return fmt.Sprintf("lint: %s [%s]: %s", d.Sev, d.Rule, d.Msg)
	}
	return fmt.Sprintf("lint: %s [%s] line %s: %s", d.Sev, d.Rule, d.Pos, d.Msg)
}

// Format renders diagnostics one per line, in position order.
func Format(diags []Diagnostic) string {
	var b strings.Builder
	for i, d := range diags {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.String())
	}
	return b.String()
}

// HasErrors reports whether any finding is error-severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity findings.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// sortDiags orders findings by position, then rule, then signal — the
// stable render order for reports and golden tests.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos != b.Pos {
			return a.Pos.Before(b.Pos)
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Signal < b.Signal
	})
}

// RejectError is the error a lint-screening farm returns for a
// candidate with error-severity findings: the candidate was rejected
// statically, before any VM compile or simulation. Its text embeds the
// formatted diagnostics, so frameworks that surface farm errors as
// repair feedback hand the LLM the lint report for free.
type RejectError struct {
	Top   string
	Diags []Diagnostic // the error-severity findings that caused rejection
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("lint rejected %s: %d error finding(s)\n%s", e.Top, len(e.Diags), Format(e.Diags))
}
