package vlint

import (
	"fmt"

	"llm4eda/internal/verilog"
)

// Lint runs every rule over an elaborated design and returns the
// findings in position order. file must be the source the design was
// elaborated from (it supplies the top module's port directions, which
// decide what counts as externally driven/observed).
func Lint(file *verilog.SourceFile, d *verilog.Design) []Diagnostic {
	lt := newLinter(file, d)
	for i := 0; i < d.NumAssigns(); i++ {
		lt.checkAssign(d.AssignAt(i))
	}
	for i := 0; i < d.NumProcesses(); i++ {
		lt.checkProcess(d.ProcessAt(i))
	}
	lt.checkDrivers()
	lt.checkCombLoops()
	lt.checkUndrivenUnused()
	sortDiags(lt.diags)
	return lt.diags
}

// LintSource parses and elaborates src standalone under the given top
// module and lints the result. Parse or elaboration failure is returned
// as-is — a source that does not compile is not lintable, and screening
// callers fall through to the simulator's own diagnostics.
func LintSource(src, top string) ([]Diagnostic, error) {
	f, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	d, err := verilog.Elaborate(f, top)
	if err != nil {
		return nil, err
	}
	return Lint(f, d), nil
}

// readRef is one signal read site; partial marks reads through a bit or
// part select (used to suppress same-signal false loops like
// `assign x[0] = x[1]`).
type readRef struct {
	sig     verilog.SignalID
	line    int
	partial bool
}

// target is one assignment destination; whole marks full-signal writes.
type target struct {
	sig   verilog.SignalID
	line  int
	whole bool
}

type driverKind int

const (
	drvContWhole driverKind = iota + 1
	drvContPart
	drvProc
)

type driver struct {
	kind driverKind
	line int
}

type linter struct {
	f     *verilog.SourceFile
	d     *verilog.Design
	diags []Diagnostic

	readLine []int // first-read source line per signal; 0 = never read
	driven   []bool
	drivers  [][]driver // per signal, continuous + always-process drivers
	portDir  []verilog.PortDir

	// combinational dependency edges (read signal -> driven signal),
	// deduplicated; edgeLine remembers one source line per edge for the
	// loop report.
	adj      map[verilog.SignalID]map[verilog.SignalID]int
	scratch  []readRef
	scratchT []target
}

func newLinter(f *verilog.SourceFile, d *verilog.Design) *linter {
	n := len(d.Signals)
	lt := &linter{
		f: f, d: d,
		readLine: make([]int, n),
		driven:   make([]bool, n),
		drivers:  make([][]driver, n),
		portDir:  make([]verilog.PortDir, n),
		adj:      map[verilog.SignalID]map[verilog.SignalID]int{},
	}
	if mod := f.FindModule(d.Top); mod != nil {
		for _, p := range mod.Ports {
			if sig, ok := d.SignalByName(d.Top + "." + p.Name); ok {
				lt.portDir[sig.ID] = p.Dir
			}
		}
	}
	return lt
}

func (lt *linter) addDiag(rule string, sev Severity, line int, sig string, format string, args ...any) {
	lt.diags = append(lt.diags, Diagnostic{
		Rule: rule, Sev: sev, Pos: verilog.Pos{Line: line}, Signal: sig,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (lt *linter) sigName(id verilog.SignalID) string { return lt.d.Signals[id].Name }

func (lt *linter) markRead(sig verilog.SignalID, line int) {
	if lt.readLine[sig] == 0 || (line > 0 && line < lt.readLine[sig]) {
		lt.readLine[sig] = line
	}
}

func (lt *linter) addEdge(from, to verilog.SignalID, line int) {
	m := lt.adj[from]
	if m == nil {
		m = map[verilog.SignalID]int{}
		lt.adj[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = line
	}
}

// exprReads appends every bound signal read in ex to out. partial is
// inherited by reads under an index or part select of that signal;
// index expressions themselves are whole reads.
func (lt *linter) exprReads(ex verilog.Expr, partial bool, out []readRef) []readRef {
	if sig, pos, ok := verilog.BoundRef(ex); ok {
		return append(out, readRef{sig: sig, line: pos.Line, partial: partial})
	}
	switch n := ex.(type) {
	case *verilog.Unary:
		out = lt.exprReads(n.X, partial, out)
	case *verilog.Binary:
		out = lt.exprReads(n.X, partial, out)
		out = lt.exprReads(n.Y, partial, out)
	case *verilog.Ternary:
		out = lt.exprReads(n.Cond, partial, out)
		out = lt.exprReads(n.Then, partial, out)
		out = lt.exprReads(n.Else, partial, out)
	case *verilog.Concat:
		for _, p := range n.Parts {
			out = lt.exprReads(p, partial, out)
		}
	case *verilog.Repeat:
		out = lt.exprReads(n.Count, partial, out)
		out = lt.exprReads(n.X, partial, out)
	case *verilog.Index:
		out = lt.exprReads(n.X, true, out)
		out = lt.exprReads(n.Idx, false, out)
	case *verilog.PartSelect:
		out = lt.exprReads(n.X, true, out)
		out = lt.exprReads(n.MSB, false, out)
		out = lt.exprReads(n.LSB, false, out)
	case *verilog.SysFunc:
		for _, a := range n.Args {
			out = lt.exprReads(a, false, out)
		}
	}
	return out
}

// lhsTargets decomposes an assignment destination into driven signals
// (whole or partial) and appends embedded index-expression reads to
// reads. Unresolvable destinations contribute nothing — the simulator's
// runtime diagnostic owns those.
func (lt *linter) lhsTargets(ex verilog.Expr, line int, out []target, reads []readRef) ([]target, []readRef) {
	if sig, pos, ok := verilog.BoundRef(ex); ok {
		l := pos.Line
		if l == 0 {
			l = line
		}
		return append(out, target{sig: sig, line: l, whole: true}), reads
	}
	switch n := ex.(type) {
	case *verilog.Index:
		if sig, pos, ok := verilog.BoundRef(n.X); ok {
			l := pos.Line
			if l == 0 {
				l = line
			}
			out = append(out, target{sig: sig, line: l, whole: false})
		}
		reads = lt.exprReads(n.Idx, false, reads)
	case *verilog.PartSelect:
		if sig, pos, ok := verilog.BoundRef(n.X); ok {
			l := pos.Line
			if l == 0 {
				l = line
			}
			out = append(out, target{sig: sig, line: l, whole: false})
		}
		reads = lt.exprReads(n.MSB, false, reads)
		reads = lt.exprReads(n.LSB, false, reads)
	case *verilog.Concat:
		for _, p := range n.Parts {
			out, reads = lt.lhsTargets(p, line, out, reads)
		}
	}
	return out, reads
}

// widthOf returns the bit width of a width-transparent expression, or
// -1 when the width is unknown or the operator has carry/growth
// semantics (arithmetic), which the width rule deliberately skips.
func (lt *linter) widthOf(ex verilog.Expr) int {
	if sig, _, ok := verilog.BoundRef(ex); ok {
		return lt.d.Signals[sig].Width
	}
	if v, ok := verilog.BoundConst(ex); ok {
		return v.Width
	}
	switch n := ex.(type) {
	case *verilog.Unary:
		switch n.Op {
		case "~", "-":
			return lt.widthOf(n.X)
		case "!", "&", "|", "^", "~&", "~|", "~^":
			return 1
		}
	case *verilog.Binary:
		switch n.Op {
		case "&", "|", "^", "~^", "^~":
			a, b := lt.widthOf(n.X), lt.widthOf(n.Y)
			if a < 0 || b < 0 {
				return -1
			}
			if b > a {
				a = b
			}
			return a
		case "==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||":
			return 1
		case "<<", ">>", ">>>":
			return lt.widthOf(n.X)
		}
	case *verilog.Ternary:
		a, b := lt.widthOf(n.Then), lt.widthOf(n.Else)
		if a < 0 || b < 0 {
			return -1
		}
		if b > a {
			a = b
		}
		return a
	case *verilog.Concat:
		sum := 0
		for _, p := range n.Parts {
			w := lt.widthOf(p)
			if w < 0 {
				return -1
			}
			sum += w
		}
		return sum
	case *verilog.Repeat:
		if c, ok := verilog.BoundConst(n.Count); ok && c.IsFullyKnown() {
			w := lt.widthOf(n.X)
			if w < 0 {
				return -1
			}
			return int(c.Uint()) * w
		}
	case *verilog.Index:
		if sig, _, ok := verilog.BoundRef(n.X); ok && lt.d.Signals[sig].Words > 1 {
			return lt.d.Signals[sig].Width
		}
		return 1
	case *verilog.PartSelect:
		m, okM := verilog.BoundConst(n.MSB)
		l, okL := verilog.BoundConst(n.LSB)
		if okM && okL && m.IsFullyKnown() && l.IsFullyKnown() && m.Uint() >= l.Uint() {
			return int(m.Uint()-l.Uint()) + 1
		}
	}
	return -1
}

// lhsWidthOf returns the width of an assignment destination, or -1.
func (lt *linter) lhsWidthOf(ex verilog.Expr) int {
	if sig, _, ok := verilog.BoundRef(ex); ok {
		return lt.d.Signals[sig].Width
	}
	switch ex.(type) {
	case *verilog.Index, *verilog.PartSelect, *verilog.Concat:
		return lt.widthOf(ex)
	}
	return -1
}

// checkWidth flags a truncating assignment: RHS provably wider than the
// destination. Widening (zero extension) is idiomatic and not flagged,
// and arithmetic RHS widths are unknown by design (see widthOf).
func (lt *linter) checkWidth(lhs, rhs verilog.Expr, line int, sig string) {
	lw, rw := lt.lhsWidthOf(lhs), lt.widthOf(rhs)
	if lw > 0 && rw > 0 && rw > lw {
		lt.addDiag(RuleWidthTrunc, SevWarning, line, sig,
			"%d-bit expression truncated to %d-bit target %q", rw, lw, sig)
	}
}

// checkAssign runs the per-continuous-assignment rules and feeds the
// driver census and the dependency graph. Port connections are
// continuous assignments too, so port width mismatches fall out of the
// same width check.
func (lt *linter) checkAssign(a verilog.DesignAssign) {
	reads := lt.exprReads(a.RHS, false, lt.scratch[:0])
	targets, reads := lt.lhsTargets(a.LHS, a.Line, lt.scratchT[:0], reads)
	for _, r := range reads {
		lt.markRead(r.sig, r.line)
	}
	name := ""
	for _, t := range targets {
		lt.driven[t.sig] = true
		k := drvContPart
		if t.whole {
			k = drvContWhole
		}
		lt.drivers[t.sig] = append(lt.drivers[t.sig], driver{kind: k, line: a.Line})
		if name == "" {
			name = lt.sigName(t.sig)
		}
		for _, r := range reads {
			if r.sig == t.sig && (r.partial || !t.whole) {
				continue // x[0] = x[1] style: not a combinational cycle
			}
			lt.addEdge(r.sig, t.sig, a.Line)
		}
	}
	lt.checkWidth(a.LHS, a.RHS, a.Line, name)
	lt.scratch, lt.scratchT = reads[:0], targets[:0]
}

// hasEdgeSens reports whether the sensitivity list contains an edge
// specifier (the block is clocked).
func hasEdgeSens(sens []verilog.SensItem) bool {
	for _, s := range sens {
		if s.Edge == verilog.EdgePos || s.Edge == verilog.EdgeNeg {
			return true
		}
	}
	return false
}

// checkProcess dispatches one behavioral process: combinational always
// blocks get the full dataflow walk (latch inference + loop edges),
// clocked and initial blocks get the flat census plus style checks.
func (lt *linter) checkProcess(p verilog.DesignProcess) {
	for _, sig := range p.SensSigs {
		if sig >= 0 {
			lt.markRead(sig, p.Line)
		}
	}
	clocked := p.Always && hasEdgeSens(p.Sens)
	comb := p.Always && !clocked && (p.Star || len(p.Sens) > 0)
	if comb {
		lt.checkComb(p)
		return
	}
	w := &flatWalk{lt: lt, proc: p.Always, clocked: clocked}
	w.stmt(p.Body)
}

// flatWalk is the census walker for clocked, initial and free-running
// processes: marks reads and drivers, flags blocking assigns in clocked
// blocks and literal-constant conditions in always blocks. Style
// findings are reported once per process to keep reports short.
type flatWalk struct {
	lt           *linter
	proc         bool // always block (drivers count toward conflicts)
	clocked      bool
	saidBlocking bool
	saidConst    bool
}

func (w *flatWalk) expr(ex verilog.Expr) {
	w.lt.scratch = w.lt.exprReads(ex, false, w.lt.scratch[:0])
	for _, r := range w.lt.scratch {
		w.lt.markRead(r.sig, r.line)
	}
}

func (w *flatWalk) assign(a *verilog.Assign, loopClause bool) {
	if a == nil {
		return
	}
	w.expr(a.RHS)
	targets, reads := w.lt.lhsTargets(a.LHS, a.Line, w.lt.scratchT[:0], w.lt.scratch[:0])
	for _, r := range reads {
		w.lt.markRead(r.sig, r.line)
	}
	name := ""
	for _, t := range targets {
		w.lt.driven[t.sig] = true
		if name == "" {
			name = w.lt.sigName(t.sig)
		}
		if w.proc {
			w.lt.drivers[t.sig] = append(w.lt.drivers[t.sig], driver{kind: drvProc, line: t.line})
		}
		if w.clocked && !a.NonBlocking && !loopClause && !w.saidBlocking {
			w.saidBlocking = true
			w.lt.addDiag(RuleBlockingSeq, SevWarning, a.Line, w.lt.sigName(t.sig),
				"blocking assignment to %q in a clocked block (use <=)", w.lt.sigName(t.sig))
		}
	}
	if w.proc {
		w.lt.checkWidth(a.LHS, a.RHS, a.Line, name)
	}
	w.lt.scratchT = targets[:0]
}

// constCond flags a literal-number condition — a provably dead branch.
// Parameter-valued conditions are deliberately exempt: selecting an
// implementation by parameter is idiomatic, a literal 1'b0 is not.
func (w *flatWalk) constCond(cond verilog.Expr, line int) {
	if _, isNum := cond.(*verilog.Number); isNum && w.proc && !w.saidConst {
		w.saidConst = true
		w.lt.addDiag(RuleConstCond, SevWarning, line, "",
			"condition is a literal constant: branch is always the same")
	}
}

func (w *flatWalk) stmt(s verilog.Stmt) {
	switch n := s.(type) {
	case *verilog.Block:
		for _, st := range n.Stmts {
			w.stmt(st)
		}
	case *verilog.Assign:
		w.assign(n, false)
	case *verilog.IfStmt:
		w.constCond(n.Cond, n.Line)
		w.expr(n.Cond)
		w.stmt(n.Then)
		w.stmt(n.Else)
	case *verilog.CaseStmt:
		w.expr(n.Subject)
		for _, it := range n.Items {
			for _, e := range it.Exprs {
				w.expr(e)
			}
			w.stmt(it.Body)
		}
	case *verilog.ForStmt:
		w.assign(n.Init, true)
		w.expr(n.Cond)
		w.stmt(n.Body)
		w.assign(n.Step, true)
	case *verilog.WhileStmt:
		w.constCond(n.Cond, n.Line)
		w.expr(n.Cond)
		w.stmt(n.Body)
	case *verilog.RepeatStmt:
		w.expr(n.Count)
		w.stmt(n.Body)
	case *verilog.ForeverStmt:
		w.stmt(n.Body)
	case *verilog.DelayStmt:
		w.expr(n.Amount)
		w.stmt(n.Body)
	case *verilog.EventStmt:
		w.stmt(n.Body)
	case *verilog.WaitStmt:
		w.expr(n.Cond)
	case *verilog.SysCall:
		for _, a := range n.Args {
			w.expr(a)
		}
	}
}
