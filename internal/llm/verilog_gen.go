package llm

import (
	"strings"
)

// This file implements the simulated model's Verilog behaviors: candidate
// generation by seeded fault injection into the hidden reference, and
// feedback-driven repair by line-level reversion — the mechanism that
// reproduces the paper's AutoChip dynamics (stronger models exploit tool
// feedback; weaker models mostly benefit from more candidates).

// lineMutator rewrites one line to inject a fault; it returns the mutated
// line and whether it applied.
type lineMutator struct {
	name   string
	syntax bool
	apply  func(r *rng, line string) (string, bool)
}

var verilogMutators = []lineMutator{
	{name: "swap-arith", apply: func(r *rng, l string) (string, bool) {
		return swapOneOf(r, l, []string{" + ", " - "})
	}},
	{name: "swap-bitop", apply: func(r *rng, l string) (string, bool) {
		return swapOneOf(r, l, []string{" & ", " | ", " ^ "})
	}},
	{name: "swap-eq", apply: func(r *rng, l string) (string, bool) {
		if strings.Contains(l, " == ") {
			return strings.Replace(l, " == ", " != ", 1), true
		}
		if strings.Contains(l, " != ") {
			return strings.Replace(l, " != ", " == ", 1), true
		}
		return l, false
	}},
	{name: "flip-edge", apply: func(r *rng, l string) (string, bool) {
		if strings.Contains(l, "posedge") {
			return strings.Replace(l, "posedge", "negedge", 1), true
		}
		return l, false
	}},
	{name: "off-by-one", apply: offByOneLiteral},
	{name: "drop-semicolon", syntax: true, apply: func(r *rng, l string) (string, bool) {
		if i := strings.LastIndexByte(l, ';'); i >= 0 {
			return l[:i] + l[i+1:], true
		}
		return l, false
	}},
	{name: "typo-keyword", syntax: true, apply: func(r *rng, l string) (string, bool) {
		for _, kw := range []string{"assign", "always", "endmodule", "begin"} {
			if strings.Contains(l, kw) {
				return strings.Replace(l, kw, kw[:len(kw)-1], 1), true
			}
		}
		return l, false
	}},
}

// swapOneOf replaces the first present operator with a different one from
// the same family.
func swapOneOf(r *rng, line string, ops []string) (string, bool) {
	present := -1
	for i, op := range ops {
		if strings.Contains(line, op) {
			present = i
			break
		}
	}
	if present < 0 {
		return line, false
	}
	replacement := ops[(present+1+r.intn(len(ops)-1))%len(ops)]
	if replacement == ops[present] {
		replacement = ops[(present+1)%len(ops)]
	}
	return strings.Replace(line, ops[present], replacement, 1), true
}

// offByOneLiteral perturbs the first standalone decimal literal on the line.
func offByOneLiteral(r *rng, line string) (string, bool) {
	for i := 0; i < len(line); i++ {
		if line[i] >= '1' && line[i] <= '9' && (i == 0 || !isWordByte(line[i-1])) && line[i-1] != '\'' {
			j := i
			for j < len(line) && line[j] >= '0' && line[j] <= '9' {
				j++
			}
			if j < len(line) && (line[j] == '\'' || isWordByte(line[j])) {
				continue // part of a sized literal or identifier
			}
			n := 0
			for _, c := range line[i:j] {
				n = n*10 + int(c-'0')
			}
			if r.intn(2) == 0 {
				n++
			} else if n > 0 {
				n--
			}
			return line[:i] + itoa(n) + line[j:], true
		}
	}
	return line, false
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// mutableLines returns the indices of lines worth mutating (those carrying
// behavior, not blank/structural lines).
func mutableLines(lines []string) []int {
	var out []int
	for i, l := range lines {
		t := strings.TrimSpace(l)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		if strings.Contains(t, "assign") || strings.Contains(t, "=") ||
			strings.Contains(t, "always") || strings.Contains(t, "if") ||
			strings.Contains(t, "case") {
			out = append(out, i)
		}
	}
	return out
}

// verilogGen produces a candidate: the reference with 0..4 injected faults,
// or a feedback-driven revision of the previous attempt.
func (m *SimModel) verilogGen(task VerilogGen, temp float64) string {
	if task.PrevAttempt != "" && task.Feedback != "" {
		return m.verilogRepair(task)
	}
	lines := splitLines(task.Reference)
	targets := mutableLines(lines)
	if len(targets) == 0 {
		return task.Reference
	}

	difficulty := task.Difficulty
	if difficulty <= 0 {
		difficulty = 1
	}
	// Fault counts are Poisson-distributed so that P(clean) = e^-lambda:
	// the per-candidate pass probability that drives the pass@k curves.
	lambda := m.prof.faultRate * (float64(difficulty) / 1.5) * (0.5 + temp)
	n := m.poisson(lambda)
	if n > 4 {
		n = 4
	}
	// Syntax fault: one extra mutation from the syntax class.
	syntax := m.rng.float() < m.prof.syntaxRate*(0.5+temp)

	for fault := 0; fault < n; fault++ {
		for attempt := 0; attempt < 12; attempt++ {
			li := targets[m.rng.intn(len(targets))]
			mut := verilogMutators[m.rng.intn(len(verilogMutators)-2)] // functional classes
			if nl, ok := mut.apply(m.rng, lines[li]); ok && nl != lines[li] {
				lines[li] = nl
				break
			}
		}
	}
	if syntax {
		for attempt := 0; attempt < 12; attempt++ {
			li := targets[m.rng.intn(len(targets))]
			mut := verilogMutators[len(verilogMutators)-1-m.rng.intn(2)] // syntax class
			if nl, ok := mut.apply(m.rng, lines[li]); ok && nl != lines[li] {
				lines[li] = nl
				break
			}
		}
	}
	return joinLines(lines)
}

// verilogRepair revises the previous attempt: every line differing from
// the reference is reverted with a probability set by the feedback type
// and the model tier. This is the statistical heart of the "only capable
// models leverage EDA tool feedback" result.
func (m *SimModel) verilogRepair(task VerilogGen) string {
	prev := splitLines(task.PrevAttempt)
	ref := splitLines(task.Reference)
	if len(prev) != len(ref) {
		// Structure diverged (shouldn't happen with line-local faults):
		// regenerate from scratch at low temperature.
		return m.verilogGen(VerilogGen{
			ProblemID: task.ProblemID, Spec: task.Spec, Reference: task.Reference,
			Difficulty: task.Difficulty,
		}, 0.3)
	}
	fb := strings.ToLower(task.Feedback)
	// Lint feedback is line-attributed like compiler errors, so it earns
	// the same (higher) repair rate: the model is pointed at the fault,
	// not left to infer it from a failing waveform.
	syntaxFB := strings.Contains(fb, "syntax error") || strings.Contains(fb, "lex error") ||
		strings.Contains(fb, "elaboration error") || strings.Contains(fb, "lint:")
	p := m.prof.funcRepair
	if syntaxFB {
		p = m.prof.syntaxRepair
	}
	out := make([]string, len(prev))
	for i := range prev {
		out[i] = prev[i]
		if prev[i] != ref[i] && m.rng.float() < p {
			out[i] = ref[i]
		}
	}
	// A weak model occasionally introduces a fresh fault while "fixing".
	if m.rng.float() < m.prof.faultRate*0.15 {
		targets := mutableLines(out)
		if len(targets) > 0 {
			li := targets[m.rng.intn(len(targets))]
			mut := verilogMutators[m.rng.intn(5)] // functional classes only
			if nl, ok := mut.apply(m.rng, out[li]); ok {
				out[li] = nl
			}
		}
	}
	return joinLines(out)
}

// testbenchGen keeps a tier-dependent fraction of the vector blocks:
// coverage loss is the failure mode the paper reports for generated
// testbenches.
func (m *SimModel) testbenchGen(task TestbenchGen) string {
	keep := int(float64(len(task.VectorBlocks))*m.prof.quality + 0.5)
	if keep < 1 && len(task.VectorBlocks) > 0 {
		keep = 1
	}
	var b strings.Builder
	b.WriteString(task.Header)
	for i := 0; i < keep && i < len(task.VectorBlocks); i++ {
		b.WriteString(task.VectorBlocks[i])
	}
	b.WriteString(task.Footer)
	return b.String()
}

// potentialErrors recalls a tier-dependent subset of the canonical issue
// list (stage 1 of the repair flow: "the HLS compiler may not detect all
// errors in one go; an LLM flags the rest").
func (m *SimModel) potentialErrors(task PotentialErrors) string {
	var out []string
	for _, issue := range task.KnownIssues {
		if m.rng.float() < m.prof.recall {
			out = append(out, issue)
		}
	}
	return strings.Join(out, "\n")
}

// cModelGen produces an untimed C behavioral model. LLMs are markedly
// more reliable here than at HDL (the premise of the paper's high-level
// guided debugging direction): the fault probability is an order of
// magnitude below Verilog generation and vanishes for strong tiers.
func (m *SimModel) cModelGen(task CModelGen) string {
	lines := splitLines(task.Reference)
	if m.rng.float() < (1-m.prof.quality)*0.25 {
		targets := mutableLines(lines)
		if len(targets) > 0 {
			li := targets[m.rng.intn(len(targets))]
			if nl, ok := swapOneOf(m.rng, lines[li], []string{" + ", " - "}); ok {
				lines[li] = nl
			}
		}
	}
	return joinLines(lines)
}
