package llm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the simulated model's SLT snippet generation (§V):
// C programs that try to maximize processor power draw. The model works
// in a space of idiomatic code shapes ("genomes"): loop nests over a few
// accumulator chains built from recognizable motifs. That space is
// deliberately a strict subset of what the genetic-programming baseline
// can reach by raw AST mutation — the structural reason the paper's GP
// run ultimately beats the LLM loop while the LLM saturates earlier.
//
// The genome of a previously generated snippet is recovered from its
// header comment, modeling how a real LLM reads the example programs in
// its prompt; temperature controls how far mutations stray from the best
// examples (exploitation vs exploration, as in the paper's
// temperature-adaptation mechanism).

// sltGenome parameterizes one generated snippet. The bounds (two chains,
// unroll up to 2, at most four motifs) delimit the idiomatic-code space a
// language model trained on real software writes in; the GP baseline's
// statement soup is deliberately wider, which is what lets it keep
// climbing after this space is exhausted (paper §V).
type sltGenome struct {
	outer  int   // outer-loop trip count
	chains int   // independent accumulator chains (1..2 in the LLM space)
	motifs []int // motif sequence (ids 0..5), length 1..4
	arrLog int   // log2 of the working array (4..13)
	branch int   // 0 none, 1 predictable, 2 data-dependent
	unroll int   // body replication 1 or 2
}

// motif ids.
const (
	motifALU = iota
	motifMul
	motifMem
	motifDiv
	motifXorShift
	motifBranch
	motifCount
)

func (g sltGenome) clone() sltGenome {
	m := make([]int, len(g.motifs))
	copy(m, g.motifs)
	g.motifs = m
	return g
}

func (g sltGenome) header() string {
	ms := make([]string, len(g.motifs))
	for i, m := range g.motifs {
		ms[i] = strconv.Itoa(m)
	}
	return fmt.Sprintf("// genome o=%d c=%d m=%s a=%d b=%d u=%d",
		g.outer, g.chains, strings.Join(ms, ","), g.arrLog, g.branch, g.unroll)
}

// parseGenome recovers a genome from a generated snippet's header line.
func parseGenome(src string) (sltGenome, bool) {
	line := src
	if i := strings.IndexByte(src, '\n'); i >= 0 {
		line = src[:i]
	}
	if !strings.HasPrefix(line, "// genome ") {
		return sltGenome{}, false
	}
	g := sltGenome{}
	for _, field := range strings.Fields(line[len("// genome "):]) {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			continue
		}
		switch kv[0] {
		case "o":
			g.outer, _ = strconv.Atoi(kv[1])
		case "c":
			g.chains, _ = strconv.Atoi(kv[1])
		case "m":
			for _, ms := range strings.Split(kv[1], ",") {
				v, err := strconv.Atoi(ms)
				if err == nil {
					g.motifs = append(g.motifs, v)
				}
			}
		case "a":
			g.arrLog, _ = strconv.Atoi(kv[1])
		case "b":
			g.branch, _ = strconv.Atoi(kv[1])
		case "u":
			g.unroll, _ = strconv.Atoi(kv[1])
		}
	}
	if g.outer == 0 || g.chains == 0 || len(g.motifs) == 0 {
		return sltGenome{}, false
	}
	return g.normalize(), true
}

// normalize clamps a genome into the LLM-reachable space.
func (g sltGenome) normalize() sltGenome {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	g.outer = clamp(g.outer, 2000, 20000)
	g.chains = clamp(g.chains, 1, 2)
	g.arrLog = clamp(g.arrLog, 4, 13)
	g.branch = clamp(g.branch, 0, 2)
	if g.unroll >= 2 {
		g.unroll = 2
	} else {
		g.unroll = 1
	}
	if len(g.motifs) > 4 {
		g.motifs = g.motifs[:4]
	}
	for i := range g.motifs {
		g.motifs[i] = clamp(g.motifs[i], 0, motifCount-1)
	}
	return g
}

// randomGenome samples the LLM space uniformly-ish.
func (m *SimModel) randomGenome() sltGenome {
	g := sltGenome{
		outer:  2000 + m.rng.intn(18000),
		chains: 1 + m.rng.intn(2),
		arrLog: 4 + m.rng.intn(10),
		branch: m.rng.intn(3),
		unroll: 1 + m.rng.intn(2),
	}
	n := 1 + m.rng.intn(4)
	for i := 0; i < n; i++ {
		g.motifs = append(g.motifs, m.rng.intn(motifCount))
	}
	return g.normalize()
}

// mutateGenome perturbs fields; the count and magnitude grow with
// temperature.
func (m *SimModel) mutateGenome(g sltGenome, temp float64, scot bool) sltGenome {
	g = g.clone()
	fields := 1 + int(temp*2.5)
	for i := 0; i < fields; i++ {
		switch m.rng.intn(6) {
		case 0:
			g.outer += (m.rng.intn(8001) - 4000)
		case 1:
			g.chains += m.rng.intn(3) - 1
		case 2:
			if len(g.motifs) > 0 {
				g.motifs[m.rng.intn(len(g.motifs))] = m.rng.intn(motifCount)
			}
			if m.rng.float() < 0.3*temp && len(g.motifs) < 4 {
				g.motifs = append(g.motifs, m.rng.intn(motifCount))
			}
			if m.rng.float() < 0.2*temp && len(g.motifs) > 1 {
				g.motifs = g.motifs[:len(g.motifs)-1]
			}
		case 3:
			g.arrLog += m.rng.intn(5) - 2
		case 4:
			g.branch = m.rng.intn(3)
		case 5:
			g.unroll *= 2
			if m.rng.intn(2) == 0 {
				g.unroll = 1
			}
		}
	}
	if scot && m.rng.float() < m.prof.quality {
		// Structured reasoning nudges toward power-friendly structure:
		// more chains, compute-dense motifs, L1-resident arrays, no
		// data-dependent branches.
		g.chains = 2
		g.branch = min(g.branch, 1)
		if g.arrLog > 9 {
			g.arrLog = 9
		}
		for i := range g.motifs {
			if g.motifs[i] == motifDiv || g.motifs[i] == motifBranch {
				g.motifs[i] = []int{motifALU, motifMul, motifMem, motifXorShift}[m.rng.intn(4)]
			}
		}
	}
	return g.normalize()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sltGen produces a snippet: exploration (fresh random genome) at high
// temperature, exploitation (mutate a good example) at low temperature.
func (m *SimModel) sltGen(task SLTGen, temp float64) string {
	var g sltGenome
	examples := make([]SLTExample, len(task.Examples))
	copy(examples, task.Examples)
	sort.SliceStable(examples, func(i, j int) bool { return examples[i].Score > examples[j].Score })

	exploreP := 0.15 + 0.55*temp // hotter = more exploration
	if len(examples) == 0 || m.rng.float() < exploreP {
		g = m.randomGenome()
		if len(examples) > 0 && task.UseSCoT {
			g = m.mutateGenome(g, temp, true)
		}
	} else {
		// Prefer the best examples, geometric-ish.
		idx := 0
		for idx < len(examples)-1 && m.rng.float() < 0.4 {
			idx++
		}
		if parsed, ok := parseGenome(examples[idx].Source); ok {
			g = m.mutateGenome(parsed, temp, task.UseSCoT)
		} else {
			g = m.randomGenome()
		}
	}
	src := emitSLT(g)

	// Syntax failure: SCoT substantially reduces malformed output.
	syntaxP := m.prof.syntaxRate * (0.5 + temp)
	if task.UseSCoT {
		syntaxP *= 0.25
	}
	if m.rng.float() < syntaxP {
		// Drop the final closing brace: reliably a parse error.
		if i := strings.LastIndexByte(src, '}'); i >= 0 {
			src = src[:i] + src[i+1:]
		}
	}
	return src
}

// emitSLT renders a genome as a C program in the idiomatic LLM style.
func emitSLT(g sltGenome) string {
	var b strings.Builder
	b.WriteString(g.header())
	b.WriteByte('\n')
	n := 1 << uint(g.arrLog)
	mask := n - 1
	fmt.Fprintf(&b, "int arr[%d];\n", n)
	b.WriteString("int main() {\n")
	fmt.Fprintf(&b, "    for (int i = 0; i < %d; i++) arr[i] = i * 2654435761;\n", n)
	for c := 0; c < g.chains; c++ {
		fmt.Fprintf(&b, "    int acc%d = %d;\n", c, c+1)
	}
	b.WriteString("    int x = 123456789;\n")
	fmt.Fprintf(&b, "    for (int r = 0; r < %d; r++) {\n", g.outer)
	stmt := 0
	for u := 0; u < g.unroll; u++ {
		for mi, motif := range g.motifs {
			v := fmt.Sprintf("acc%d", (u*len(g.motifs)+mi)%g.chains)
			switch motif {
			case motifALU:
				fmt.Fprintf(&b, "        %s = ((%s + r) ^ (%s << 3)) - (r | 1);\n", v, v, v)
			case motifMul:
				fmt.Fprintf(&b, "        %s = %s * 2654435761 + r;\n", v, v)
			case motifMem:
				// Idiomatic code chains the load into the accumulator it
				// indexes with: the load latency lands on the dependence
				// chain (unlike GP's independent streams).
				fmt.Fprintf(&b, "        %s += arr[(%s + r) & %d];\n", v, v, mask)
				fmt.Fprintf(&b, "        arr[(r + %d) & %d] = %s;\n", 31*(stmt+1), mask, v)
			case motifDiv:
				fmt.Fprintf(&b, "        %s = %s / ((r & 7) + 3) + 1000;\n", v, v)
			case motifXorShift:
				fmt.Fprintf(&b, "        %s ^= %s >> 5;\n        %s += %s << 2;\n", v, v, v, v)
			case motifBranch:
				switch g.branch {
				case 2:
					b.WriteString("        x = x * 1103515245 + 12345;\n")
					fmt.Fprintf(&b, "        if ((x >> 16) & 1) { %s += 13; } else { %s -= 7; }\n", v, v)
				case 1:
					fmt.Fprintf(&b, "        if ((r & 15) == 0) { %s += 11; }\n", v)
				default:
					fmt.Fprintf(&b, "        %s += 3;\n", v)
				}
			}
			stmt++
		}
	}
	b.WriteString("    }\n")
	b.WriteString("    int out = x;\n")
	for c := 0; c < g.chains; c++ {
		fmt.Fprintf(&b, "    out += acc%d;\n", c)
	}
	b.WriteString("    return out;\n}\n")
	return b.String()
}
