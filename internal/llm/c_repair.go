package llm

import (
	"fmt"
	"strconv"
	"strings"

	"llm4eda/internal/chdl"
)

// This file implements the simulated model's C-repair behaviors for the
// Fig. 2 HLS repair framework: AST-level rewrites that remove HLS
// incompatibilities. A matching RAG correction template makes the rewrite
// use the safe canonical parameters; without one, weaker models guess
// (e.g. undersized static arrays), which the equivalence-verification
// stage then catches — the dynamic the ablation in experiment E2 measures.

// template knobs extracted from RAG correction templates.
type repairKnobs struct {
	arrayBound   int
	loopBound    int
	hasArrayTmpl bool
	hasLoopTmpl  bool
	hasRecTmpl   bool
}

func parseKnobs(templates []string) repairKnobs {
	k := repairKnobs{arrayBound: 0, loopBound: 0}
	for _, t := range templates {
		low := strings.ToLower(t)
		if strings.Contains(low, "static array") || strings.Contains(low, "malloc") {
			k.hasArrayTmpl = true
			if n := extractInt(low, "bound="); n > 0 {
				k.arrayBound = n
			}
		}
		if strings.Contains(low, "trip count") || strings.Contains(low, "bounded loop") {
			k.hasLoopTmpl = true
			if n := extractInt(low, "bound="); n > 0 {
				k.loopBound = n
			}
		}
		if strings.Contains(low, "iterative") || strings.Contains(low, "recursion") {
			k.hasRecTmpl = true
		}
	}
	return k
}

func extractInt(s, key string) int {
	i := strings.Index(s, key)
	if i < 0 {
		return 0
	}
	j := i + len(key)
	end := j
	for end < len(s) && s[end] >= '0' && s[end] <= '9' {
		end++
	}
	n, err := strconv.Atoi(s[j:end])
	if err != nil {
		return 0
	}
	return n
}

// cRepair rewrites the kernel to remove the diagnosed incompatibilities.
func (m *SimModel) cRepair(task CRepair) (string, error) {
	prog, err := chdl.ParseC(task.Source)
	if err != nil {
		return "", fmt.Errorf("llm: repair input does not parse: %w", err)
	}
	knobs := parseKnobs(task.Templates)

	// Without a template the model guesses bounds; weak models guess
	// small, strong models usually guess generously.
	guessBound := func(templ bool, canonical int) int {
		if templ && canonical > 0 {
			return canonical
		}
		if templ {
			return 1024
		}
		if m.rng.float() < m.prof.quality {
			return 1024
		}
		return 16 // undersized: equivalence check will catch it
	}
	arrayBound := guessBound(knobs.hasArrayTmpl, knobs.arrayBound)
	loopBound := guessBound(knobs.hasLoopTmpl, knobs.loopBound)

	diag := strings.ToLower(strings.Join(task.Diagnostics, "\n"))
	r := &cRewriter{
		model:        m,
		fixMalloc:    strings.Contains(diag, "dynamic-memory"),
		fixLoops:     strings.Contains(diag, "unbounded-loop"),
		fixFloat:     strings.Contains(diag, "floating-point"),
		fixIO:        strings.Contains(diag, "io-in-kernel"),
		fixPtrParam:  strings.Contains(diag, "pointer-parameter") || strings.Contains(diag, "pointer-arithmetic"),
		fixRecursion: strings.Contains(diag, "recursion") && knobs.hasRecTmpl,
		arrayBound:   arrayBound,
		loopBound:    loopBound,
	}
	r.rewriteProgram(prog)
	return chdl.PrintProgram(prog), nil
}

// tbAdapt strips unsupported testbench constructs (Fig. 3 stage 1): I/O
// and dynamic memory are removed unconditionally.
func (m *SimModel) tbAdapt(task TBAdapt) (string, error) {
	prog, err := chdl.ParseC(task.Source)
	if err != nil {
		return "", fmt.Errorf("llm: testbench does not parse: %w", err)
	}
	r := &cRewriter{model: m, fixIO: true, fixMalloc: true, arrayBound: 1024}
	r.rewriteProgram(prog)
	return chdl.PrintProgram(prog), nil
}

// cRewriter walks and transforms the AST in place.
type cRewriter struct {
	model        *SimModel
	fixMalloc    bool
	fixLoops     bool
	fixFloat     bool
	fixIO        bool
	fixPtrParam  bool
	fixRecursion bool
	arrayBound   int
	loopBound    int
}

func (r *cRewriter) rewriteProgram(p *chdl.Program) {
	for _, fn := range p.Funcs {
		if r.fixPtrParam {
			for _, prm := range fn.Params {
				if prm.Type.Kind == chdl.KindPtr {
					prm.Type = &chdl.Type{Kind: chdl.KindArray, Elem: prm.Type.Elem, ArrayLen: r.arrayBound}
				}
			}
		}
		if r.fixFloat {
			for _, prm := range fn.Params {
				retypeFloat(prm.Type)
			}
			retypeFloat(fn.Ret)
		}
		fn.Body = r.rewriteBlock(fn.Body)
		if r.fixRecursion {
			r.rewriteSelfRecursion(fn)
		}
	}
}

func retypeFloat(t *chdl.Type) {
	for t != nil {
		if t.Kind == chdl.KindFloat {
			t.Kind = chdl.KindInt
		}
		t = t.Elem
	}
}

func (r *cRewriter) rewriteBlock(b *chdl.BlockStmt) *chdl.BlockStmt {
	if b == nil {
		return nil
	}
	var out []chdl.Stmt
	for _, st := range b.Stmts {
		ns := r.rewriteStmt(st)
		if ns != nil {
			out = append(out, ns)
		}
	}
	b.Stmts = out
	return b
}

// rewriteStmt returns the replacement statement, or nil to drop it.
func (r *cRewriter) rewriteStmt(st chdl.Stmt) chdl.Stmt {
	switch n := st.(type) {
	case *chdl.BlockStmt:
		return r.rewriteBlock(n)

	case *chdl.DeclStmt:
		var decls []*chdl.VarDecl
		for _, d := range n.Decls {
			if r.fixFloat {
				retypeFloat(d.Type)
			}
			// T *p = (T*)malloc(...)  -->  T p[BOUND];
			if r.fixMalloc && d.Type.Kind == chdl.KindPtr && isMallocInit(d.Init) {
				d.Type = &chdl.Type{Kind: chdl.KindArray, Elem: d.Type.Elem, ArrayLen: r.arrayBound}
				d.Init = nil
			}
			decls = append(decls, d)
		}
		n.Decls = decls
		return n

	case *chdl.ExprStmt:
		if call, ok := n.X.(*chdl.CallExpr); ok {
			if r.fixMalloc && call.Name == "free" {
				return nil
			}
			if r.fixIO && (call.Name == "printf" || call.Name == "puts" || call.Name == "putchar") {
				return nil
			}
		}
		return n

	case *chdl.IfStmt:
		n.Then = r.rewriteStmt(n.Then)
		if n.Else != nil {
			n.Else = r.rewriteStmt(n.Else)
		}
		return n

	case *chdl.ForStmt:
		n.Body = r.rewriteStmt(n.Body)
		return n

	case *chdl.WhileStmt:
		body := r.rewriteStmt(n.Body)
		if !r.fixLoops {
			n.Body = body
			return n
		}
		// while (cond) body  -->  for (int _b = 0; _b < BOUND && cond; _b++) body
		iv := "_b"
		return &chdl.ForStmt{
			Init: &chdl.DeclStmt{Decls: []*chdl.VarDecl{{
				Name: iv, Type: &chdl.Type{Kind: chdl.KindInt},
				Init: &chdl.IntLit{Val: 0},
			}}},
			Cond: &chdl.BinExpr{Op: "&&",
				X: &chdl.BinExpr{Op: "<", X: &chdl.VarRef{Name: iv}, Y: &chdl.IntLit{Val: int64(r.loopBound)}},
				Y: n.Cond,
			},
			Post: &chdl.PostfixExpr{Op: "++", X: &chdl.VarRef{Name: iv}},
			Body: body,
			Line: n.Line,
		}

	case *chdl.DoStmt:
		body := r.rewriteStmt(n.Body)
		if !r.fixLoops {
			n.Body = body
			return n
		}
		// do body while (cond) --> runs at least once under the bound.
		iv := "_b"
		return &chdl.ForStmt{
			Init: &chdl.DeclStmt{Decls: []*chdl.VarDecl{{
				Name: iv, Type: &chdl.Type{Kind: chdl.KindInt},
				Init: &chdl.IntLit{Val: 0},
			}}},
			Cond: &chdl.BinExpr{Op: "&&",
				X: &chdl.BinExpr{Op: "<", X: &chdl.VarRef{Name: iv}, Y: &chdl.IntLit{Val: int64(r.loopBound)}},
				Y: &chdl.BinExpr{Op: "||",
					X: &chdl.BinExpr{Op: "==", X: &chdl.VarRef{Name: iv}, Y: &chdl.IntLit{Val: 0}},
					Y: n.Cond,
				},
			},
			Post: &chdl.PostfixExpr{Op: "++", X: &chdl.VarRef{Name: iv}},
			Body: body,
			Line: n.Line,
		}

	default:
		return st
	}
}

func isMallocInit(e chdl.Expr) bool {
	switch n := e.(type) {
	case *chdl.CallExpr:
		return n.Name == "malloc" || n.Name == "calloc"
	case *chdl.CastExpr:
		return isMallocInit(n.X)
	default:
		return false
	}
}

// rewriteSelfRecursion converts the canonical accumulator recursion
//
//	T f(int n) { if (n <= C) return K; return f(n-1) OP E(n); }
//
// into an iterative loop. The pattern covers the recursion cases in the
// repair benchmark suite; anything else is left untouched (and the
// equivalence check will reject the repair, as a real flow would).
func (r *cRewriter) rewriteSelfRecursion(fn *chdl.FuncDecl) {
	if len(fn.Params) != 1 || len(fn.Body.Stmts) != 2 {
		return
	}
	param := fn.Params[0].Name
	ifSt, ok := fn.Body.Stmts[0].(*chdl.IfStmt)
	if !ok || ifSt.Else != nil {
		return
	}
	baseRet, ok := thenReturn(ifSt.Then)
	if !ok {
		return
	}
	baseLit, ok := baseRet.X.(*chdl.IntLit)
	if !ok {
		return
	}
	cond, ok := ifSt.Cond.(*chdl.BinExpr)
	if !ok || cond.Op != "<=" && cond.Op != "<" {
		return
	}
	condVar, ok := cond.X.(*chdl.VarRef)
	if !ok || condVar.Name != param {
		return
	}
	condLim, ok := cond.Y.(*chdl.IntLit)
	if !ok {
		return
	}
	limit := condLim.Val
	if cond.Op == "<" {
		limit--
	}
	ret, ok := fn.Body.Stmts[1].(*chdl.ReturnStmt)
	if !ok {
		return
	}
	bin, ok := ret.X.(*chdl.BinExpr)
	if !ok {
		return
	}
	var recCall *chdl.CallExpr
	var tail chdl.Expr
	if c, ok := bin.X.(*chdl.CallExpr); ok && c.Name == fn.Name {
		recCall, tail = c, bin.Y
	} else if c, ok := bin.Y.(*chdl.CallExpr); ok && c.Name == fn.Name {
		recCall, tail = c, bin.X
	}
	if recCall == nil || containsCall(tail, fn.Name) {
		return
	}
	// Emit: acc = K; for (i = limit+1; i <= n; i++) acc = acc OP E(i); return acc;
	iv := "_i"
	tailSub := substituteVar(tail, param, &chdl.VarRef{Name: iv})
	fn.Body.Stmts = []chdl.Stmt{
		&chdl.DeclStmt{Decls: []*chdl.VarDecl{{
			Name: "_acc", Type: fn.Ret, Init: &chdl.IntLit{Val: baseLit.Val},
		}}},
		&chdl.ForStmt{
			Init: &chdl.DeclStmt{Decls: []*chdl.VarDecl{{
				Name: iv, Type: &chdl.Type{Kind: chdl.KindInt},
				Init: &chdl.IntLit{Val: limit + 1},
			}}},
			Cond: &chdl.BinExpr{Op: "<=", X: &chdl.VarRef{Name: iv}, Y: &chdl.VarRef{Name: param}},
			Post: &chdl.PostfixExpr{Op: "++", X: &chdl.VarRef{Name: iv}},
			Body: &chdl.BlockStmt{Stmts: []chdl.Stmt{
				&chdl.ExprStmt{X: &chdl.AssignExpr{Op: "=",
					LHS: &chdl.VarRef{Name: "_acc"},
					RHS: &chdl.BinExpr{Op: bin.Op, X: &chdl.VarRef{Name: "_acc"}, Y: tailSub},
				}},
			}},
		},
		&chdl.ReturnStmt{X: &chdl.VarRef{Name: "_acc"}},
	}
}

func thenReturn(st chdl.Stmt) (*chdl.ReturnStmt, bool) {
	switch n := st.(type) {
	case *chdl.ReturnStmt:
		return n, true
	case *chdl.BlockStmt:
		if len(n.Stmts) == 1 {
			return thenReturn(n.Stmts[0])
		}
	}
	return nil, false
}

func containsCall(e chdl.Expr, name string) bool {
	found := false
	walkExpr(e, func(x chdl.Expr) {
		if c, ok := x.(*chdl.CallExpr); ok && c.Name == name {
			found = true
		}
	})
	return found
}

// substituteVar returns a copy of e with every VarRef named from replaced.
func substituteVar(e chdl.Expr, from string, to chdl.Expr) chdl.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *chdl.VarRef:
		if n.Name == from {
			return to
		}
		return n
	case *chdl.IntLit, *chdl.StrLit, *chdl.SizeofExpr:
		return n
	case *chdl.BinExpr:
		return &chdl.BinExpr{Op: n.Op, X: substituteVar(n.X, from, to), Y: substituteVar(n.Y, from, to), Line: n.Line}
	case *chdl.UnExpr:
		return &chdl.UnExpr{Op: n.Op, X: substituteVar(n.X, from, to), Line: n.Line}
	case *chdl.PostfixExpr:
		return &chdl.PostfixExpr{Op: n.Op, X: substituteVar(n.X, from, to), Line: n.Line}
	case *chdl.AssignExpr:
		return &chdl.AssignExpr{Op: n.Op, LHS: substituteVar(n.LHS, from, to), RHS: substituteVar(n.RHS, from, to), Line: n.Line}
	case *chdl.CondExpr:
		return &chdl.CondExpr{Cond: substituteVar(n.Cond, from, to), Then: substituteVar(n.Then, from, to), Else: substituteVar(n.Else, from, to), Line: n.Line}
	case *chdl.IndexExpr:
		return &chdl.IndexExpr{X: substituteVar(n.X, from, to), Idx: substituteVar(n.Idx, from, to), Line: n.Line}
	case *chdl.CallExpr:
		args := make([]chdl.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = substituteVar(a, from, to)
		}
		return &chdl.CallExpr{Name: n.Name, Args: args, Line: n.Line}
	case *chdl.CastExpr:
		return &chdl.CastExpr{To: n.To, X: substituteVar(n.X, from, to), Line: n.Line}
	default:
		return e
	}
}

func walkExpr(e chdl.Expr, f func(chdl.Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch n := e.(type) {
	case *chdl.BinExpr:
		walkExpr(n.X, f)
		walkExpr(n.Y, f)
	case *chdl.UnExpr:
		walkExpr(n.X, f)
	case *chdl.PostfixExpr:
		walkExpr(n.X, f)
	case *chdl.AssignExpr:
		walkExpr(n.LHS, f)
		walkExpr(n.RHS, f)
	case *chdl.CondExpr:
		walkExpr(n.Cond, f)
		walkExpr(n.Then, f)
		walkExpr(n.Else, f)
	case *chdl.IndexExpr:
		walkExpr(n.X, f)
		walkExpr(n.Idx, f)
	case *chdl.CallExpr:
		for _, a := range n.Args {
			walkExpr(a, f)
		}
	case *chdl.CastExpr:
		walkExpr(n.X, f)
	}
}

// pragmaOpt inserts pragmas targeting the reported bottleneck (stage 4 of
// the repair flow). Stronger models choose more aggressive but safe
// factors.
func (m *SimModel) pragmaOpt(task PragmaOpt) (string, error) {
	prog, err := chdl.ParseC(task.Source)
	if err != nil {
		return "", fmt.Errorf("llm: pragma-opt input does not parse: %w", err)
	}
	factor := 2
	if m.prof.quality > 0.6 {
		factor = 4
	}
	for _, fn := range prog.Funcs {
		switch task.Bottleneck {
		case "latency":
			addLoopPragma(fn.Body, &chdl.Pragma{
				Raw: fmt.Sprintf("HLS pipeline II=1"), Directive: "pipeline",
				Args: map[string]string{"ii": "1"},
			})
			addLoopPragma(fn.Body, &chdl.Pragma{
				Raw: fmt.Sprintf("HLS unroll factor=%d", factor), Directive: "unroll",
				Args: map[string]string{"factor": strconv.Itoa(factor)},
			})
		case "area":
			// Remove unroll pragmas: trade latency back for area.
			stripLoopPragmas(fn.Body, "unroll")
		case "power":
			addLoopPragma(fn.Body, &chdl.Pragma{
				Raw: "HLS pipeline II=2", Directive: "pipeline",
				Args: map[string]string{"ii": "2"},
			})
		}
	}
	return chdl.PrintProgram(prog), nil
}

func addLoopPragma(st chdl.Stmt, p *chdl.Pragma) {
	switch n := st.(type) {
	case *chdl.BlockStmt:
		for _, s := range n.Stmts {
			addLoopPragma(s, p)
		}
	case *chdl.ForStmt:
		for _, existing := range n.Pragmas {
			if existing.Directive == p.Directive {
				return
			}
		}
		n.Pragmas = append(n.Pragmas, p)
	}
}

func stripLoopPragmas(st chdl.Stmt, directive string) {
	switch n := st.(type) {
	case *chdl.BlockStmt:
		for _, s := range n.Stmts {
			stripLoopPragmas(s, directive)
		}
	case *chdl.ForStmt:
		var kept []*chdl.Pragma
		for _, p := range n.Pragmas {
			if p.Directive != directive {
				kept = append(kept, p)
			}
		}
		n.Pragmas = kept
		stripLoopPragmas(n.Body, directive)
	}
}

// synthRewrite applies strength-reduction rewrites to RTL text (LLSM-style
// synthesis assist); the model's quality gates how many rewrites it finds.
func (m *SimModel) synthRewrite(task SynthRewrite) string {
	rewrites := []struct{ from, to string }{
		{" * 2)", " << 1)"},
		{" * 4)", " << 2)"},
		{" * 8)", " << 3)"},
		{" * 16)", " << 4)"},
		{" / 2)", " >> 1)"},
		{" / 4)", " >> 2)"},
		{"* 2;", "<< 1;"},
		{"* 4;", "<< 2;"},
		{"/ 2;", ">> 1;"},
	}
	out := task.RTL
	for _, rw := range rewrites {
		if m.rng.float() < m.prof.quality {
			out = strings.ReplaceAll(out, rw.from, rw.to)
		}
	}
	return out
}
