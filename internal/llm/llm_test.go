package llm

import (
	"strings"
	"testing"

	"llm4eda/internal/benchset"
	"llm4eda/internal/chdl"
	"llm4eda/internal/verilog"
)

func TestDeterminism(t *testing.T) {
	p := benchset.ByID("adder4")
	gen := func() string {
		m := NewSimModel(TierLarge, 42)
		resp, err := m.Generate(Request{
			Prompt: BuildDesignPrompt(p.Spec),
			Task: VerilogGen{
				ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty,
			},
			Temperature: 0.7,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		return resp.Text
	}
	if gen() != gen() {
		t.Error("same seed produced different candidates")
	}
}

func TestTierQualityOrdering(t *testing.T) {
	// Over many samples, stronger tiers must pass the testbench more often.
	p := benchset.ByID("alu8")
	passRate := func(tier Tier) float64 {
		m := NewSimModel(tier, 7)
		pass := 0
		const n = 40
		for i := 0; i < n; i++ {
			resp, err := m.Generate(Request{
				Task: VerilogGen{ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty},
			})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			res, err := verilog.RunTestbench(resp.Text, p.Testbench(), "tb", verilog.SimOptions{})
			if err == nil && res.Passed() {
				pass++
			}
		}
		return float64(pass) / n
	}
	small := passRate(TierSmall)
	frontier := passRate(TierFrontier)
	if frontier <= small {
		t.Errorf("frontier pass rate %.2f <= small %.2f", frontier, small)
	}
	if frontier < 0.3 {
		t.Errorf("frontier pass rate %.2f implausibly low", frontier)
	}
}

func TestFeedbackRepairImprovesFrontierMost(t *testing.T) {
	p := benchset.ByID("alu8")
	repaired := func(tier Tier) float64 {
		m := NewSimModel(tier, 99)
		improved := 0
		trials := 0
		for i := 0; i < 60; i++ {
			resp, _ := m.Generate(Request{
				Task:        VerilogGen{ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty},
				Temperature: 1.0,
			})
			res, err := verilog.RunTestbench(resp.Text, p.Testbench(), "tb", verilog.SimOptions{})
			feedback := ""
			if err != nil {
				feedback = err.Error()
			} else if !res.Passed() {
				feedback = res.Output
				if res.RuntimeErr != nil {
					feedback += "\n" + res.RuntimeErr.Error()
				}
			} else {
				continue // already passing; no repair trial
			}
			trials++
			fixed, _ := m.Generate(Request{
				Task: VerilogGen{
					ProblemID: p.ID, Spec: p.Spec, Reference: p.Reference, Difficulty: p.Difficulty,
					PrevAttempt: resp.Text, Feedback: feedback,
				},
			})
			res2, err2 := verilog.RunTestbench(fixed.Text, p.Testbench(), "tb", verilog.SimOptions{})
			if err2 == nil && res2.Passed() {
				improved++
			}
		}
		if trials == 0 {
			return 1
		}
		return float64(improved) / float64(trials)
	}
	weak := repaired(TierSmall)
	strong := repaired(TierFrontier)
	if strong <= weak {
		t.Errorf("frontier repair rate %.2f <= small %.2f; feedback dynamics inverted", strong, weak)
	}
}

func TestTestbenchCoverageLoss(t *testing.T) {
	p := benchset.ByID("counter8")
	m := NewSimModel(TierSmall, 5)
	resp, err := m.Generate(Request{Task: TestbenchGen{
		ProblemID: p.ID, Spec: p.Spec,
		Header: p.TBHeader, VectorBlocks: p.TBBlocks, Footer: p.TBFooter,
	}})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	full := strings.Count(p.Testbench(), "$check_eq")
	got := strings.Count(resp.Text, "$check_eq")
	if got >= full {
		t.Errorf("small-tier testbench has %d checks, full has %d; no coverage loss", got, full)
	}
	if got == 0 {
		t.Error("generated testbench has no checks at all")
	}
}

func TestCRepairMallocWithTemplate(t *testing.T) {
	src := `
int sum_dyn(int n) {
    int *buf = (int*)malloc(n * sizeof(int));
    for (int i = 0; i < n; i++) buf[i] = i + 1;
    int total = 0;
    for (int i = 0; i < n; i++) total += buf[i];
    free(buf);
    return total;
}`
	m := NewSimModel(TierFrontier, 3)
	resp, err := m.Generate(Request{Task: CRepair{
		Source:      src,
		Diagnostics: []string{"sum_dyn:3: [dynamic-memory] malloc allocates unbounded memory"},
		Templates:   []string{"Replace heap allocation with a static array (static array bound=1024)."},
	}})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if strings.Contains(resp.Text, "malloc") || strings.Contains(resp.Text, "free(") {
		t.Errorf("repair kept dynamic memory:\n%s", resp.Text)
	}
	if !strings.Contains(resp.Text, "buf[1024]") {
		t.Errorf("repair did not use template bound:\n%s", resp.Text)
	}
	// The repaired kernel must still run and agree with the original.
	prog, err := chdl.ParseC(resp.Text)
	if err != nil {
		t.Fatalf("repaired source does not parse: %v\n%s", err, resp.Text)
	}
	in, _ := chdl.NewInterp(prog, chdl.InterpOptions{})
	got, err := in.CallInts("sum_dyn", 10)
	if err != nil {
		t.Fatalf("repaired run: %v", err)
	}
	if got != 55 {
		t.Errorf("repaired sum = %d, want 55", got)
	}
}

func TestCRepairRecursionWithTemplate(t *testing.T) {
	src := `
int triangle(int n) {
    if (n <= 0) return 0;
    return triangle(n - 1) + n;
}`
	m := NewSimModel(TierFrontier, 11)
	resp, err := m.Generate(Request{Task: CRepair{
		Source:      src,
		Diagnostics: []string{"triangle:2: [recursion] function is recursive"},
		Templates:   []string{"Convert accumulator recursion to an iterative rewrite of recursion."},
	}})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	prog, err := chdl.ParseC(resp.Text)
	if err != nil {
		t.Fatalf("repaired source does not parse: %v\n%s", err, resp.Text)
	}
	issues := chdl.Analyze(prog)
	for _, is := range issues {
		if is.Kind == chdl.IssueRecursion {
			t.Errorf("recursion not removed:\n%s", resp.Text)
		}
	}
	in, _ := chdl.NewInterp(prog, chdl.InterpOptions{})
	got, err := in.CallInts("triangle", 10)
	if err != nil {
		t.Fatalf("repaired run: %v", err)
	}
	if got != 55 {
		t.Errorf("triangle(10) = %d, want 55", got)
	}
}

func TestSLTGenParsesAndEmbedsGenome(t *testing.T) {
	m := NewSimModel(TierLarge, 21)
	resp, err := m.Generate(Request{
		Task:        SLTGen{UseSCoT: true},
		Temperature: 0.2, // low temperature keeps syntax intact
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if _, ok := parseGenome(resp.Text); !ok {
		t.Fatalf("generated snippet carries no genome header:\n%s", resp.Text)
	}
	if _, err := chdl.ParseC(resp.Text); err != nil {
		t.Fatalf("snippet does not parse: %v\n%s", err, resp.Text)
	}
}

func TestSLTGenMutatesExamples(t *testing.T) {
	m := NewSimModel(TierLarge, 33)
	base := emitSLT(sltGenome{outer: 5000, chains: 2, motifs: []int{motifALU, motifMul}, arrLog: 8, branch: 0, unroll: 2})
	differs := false
	for i := 0; i < 10 && !differs; i++ {
		resp, err := m.Generate(Request{
			Task:        SLTGen{Examples: []SLTExample{{Source: base, Score: 4.9}}, UseSCoT: true},
			Temperature: 0.1,
		})
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		if resp.Text != base {
			differs = true
		}
	}
	if !differs {
		t.Error("low-temperature generation never perturbed the example")
	}
}

func TestSynthRewriteStrengthReduction(t *testing.T) {
	m := NewSimModel(TierFrontier, 8)
	rtl := "module m(input [7:0] a, output [7:0] y);\n  assign y = (a * 4);\nendmodule\n"
	resp, err := m.Generate(Request{Task: SynthRewrite{RTL: rtl}})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !strings.Contains(resp.Text, "<< 2") {
		t.Errorf("frontier model missed strength reduction:\n%s", resp.Text)
	}
}

func TestPotentialErrorRecallScalesWithTier(t *testing.T) {
	issues := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	count := func(tier Tier) int {
		m := NewSimModel(tier, 17)
		total := 0
		for i := 0; i < 20; i++ {
			resp, _ := m.Generate(Request{Task: PotentialErrors{KnownIssues: issues}})
			if resp.Text != "" {
				total += len(strings.Split(resp.Text, "\n"))
			}
		}
		return total
	}
	if count(TierFrontier) <= count(TierSmall) {
		t.Error("potential-error recall does not scale with tier")
	}
}

func TestPromptBuilders(t *testing.T) {
	if !strings.Contains(BuildFeedbackPrompt("spec", "attempt", "errors"), "EDA tool output") {
		t.Error("feedback prompt malformed")
	}
	if !strings.Contains(BuildSCoTPrompt([]SLTExample{{Source: "x", Score: 5}}), "pseudocode") {
		t.Error("SCoT prompt malformed")
	}
	if !strings.Contains(BuildRepairPrompt("src", []string{"d"}, []string{"t"}), "correction templates") {
		t.Error("repair prompt malformed")
	}
}
