package llm

import (
	"fmt"
	"strings"
)

// Prompt builders. The simulated model dispatches on the structured Task,
// but the frameworks still build the full prompt text a production
// deployment would send: the text drives token accounting, appears in
// logs and reports, and documents the prompting methodology of each case
// study (conversational feedback, RAG-augmented repair, SCoT).

// SystemVerilogDesigner is the system prompt for design generation.
const SystemVerilogDesigner = "You are an expert digital design engineer. " +
	"Respond with complete, synthesizable Verilog-2001 inside a single module. " +
	"Do not include explanations outside code comments."

// SystemHLSExpert is the system prompt for the HLS repair flow (Fig. 2).
const SystemHLSExpert = "You are an expert in High-Level Synthesis. " +
	"Rewrite C/C++ programs so Vitis-class HLS tools can synthesize them, " +
	"preserving functional behavior exactly."

// SystemSLT is the system prompt for the SLT program generator (§V).
const SystemSLT = "You write C programs that maximize the power consumption " +
	"of a superscalar out-of-order RISC-V processor. Programs must compile, " +
	"terminate, and avoid undefined behavior."

// BuildDesignPrompt renders the initial conversational design request.
func BuildDesignPrompt(spec string) string {
	return fmt.Sprintf("Design a Verilog module meeting this specification:\n\n%s\n\n"+
		"Return only the Verilog source.", spec)
}

// BuildFeedbackPrompt renders the AutoChip-style iteration prompt: the
// previous attempt plus raw EDA tool output.
func BuildFeedbackPrompt(spec, prevAttempt, toolOutput string) string {
	return fmt.Sprintf("The previous Verilog attempt failed.\n\nSpecification:\n%s\n\n"+
		"Previous attempt:\n```verilog\n%s\n```\n\n"+
		"EDA tool output:\n```\n%s\n```\n\n"+
		"Fix the design. Return only the corrected Verilog source.",
		spec, prevAttempt, toolOutput)
}

// BuildTestbenchPrompt renders the testbench request of the structured
// conversational flow.
func BuildTestbenchPrompt(spec, design string) string {
	return fmt.Sprintf("Write a self-checking Verilog testbench for this design. "+
		"Use $check_eq(actual, expected) for each check and $finish at the end.\n\n"+
		"Specification:\n%s\n\nDesign:\n```verilog\n%s\n```", spec, design)
}

// BuildRepairPrompt renders the RAG-augmented repair request (Fig. 2
// stage 2): diagnostics plus retrieved correction templates.
func BuildRepairPrompt(source string, diagnostics, templates []string) string {
	var b strings.Builder
	b.WriteString("Convert this C program into an HLS-compatible version.\n\n")
	b.WriteString("HLS tool diagnostics:\n")
	for _, d := range diagnostics {
		fmt.Fprintf(&b, "  - %s\n", d)
	}
	if len(templates) > 0 {
		b.WriteString("\nRetrieved correction templates:\n")
		for i, t := range templates {
			fmt.Fprintf(&b, "--- template %d ---\n%s\n", i+1, t)
		}
	}
	fmt.Fprintf(&b, "\nProgram:\n```c\n%s\n```\n\nReturn only the repaired C source.", source)
	return b.String()
}

// BuildTraceRepairPrompt renders the cross-level guided-repair request
// (internal/xdebug): the structured divergence diagnosis — divergent
// variable, expected-vs-actual waveform window, suspect statement —
// plus the current candidate.
func BuildTraceRepairPrompt(spec, candidate, diagnosis string) string {
	return fmt.Sprintf("A cross-level trace comparison against a C behavioral model "+
		"shows this RTL diverging.\n\nSpecification:\n%s\n\n"+
		"Current RTL:\n```verilog\n%s\n```\n\nDiagnosis:\n%s\n\n"+
		"Fix the design. Return only the corrected Verilog source.",
		spec, candidate, diagnosis)
}

// BuildLintRepairPrompt renders the lint-guided repair request (scenario
// E12): the static-analysis report — source-line-attributed diagnostics
// with severities — plus the current candidate. Unlike simulation
// feedback, the report points at the defective lines directly, so the
// prompt asks for targeted edits rather than a rewrite.
func BuildLintRepairPrompt(spec, candidate, report string) string {
	return fmt.Sprintf("A static lint pass rejected this RTL before simulation.\n\n"+
		"Specification:\n%s\n\nCurrent RTL:\n```verilog\n%s\n```\n\n"+
		"Lint report (line numbers refer to the RTL above):\n%s\n\n"+
		"Fix every reported finding with minimal edits to the flagged lines. "+
		"Return only the corrected Verilog source.",
		spec, candidate, report)
}

// BuildSCoTPrompt renders the two-stage structured chain-of-thought prompt
// of the SLT generator: examples with measured power, pseudocode first,
// then code.
func BuildSCoTPrompt(examples []SLTExample) string {
	var b strings.Builder
	b.WriteString("Goal: write a C program that maximizes processor power consumption.\n\n")
	b.WriteString("Step 1 — write pseudocode for a candidate program.\n")
	b.WriteString("Step 2 — convert the pseudocode to C, fixing any errors in it.\n\n")
	if len(examples) > 0 {
		b.WriteString("Example programs with measured power:\n")
		for i, ex := range examples {
			fmt.Fprintf(&b, "--- example %d (%.3f W) ---\n%s\n", i+1, ex.Score, ex.Source)
		}
	}
	b.WriteString("Higher-power examples are better guides; avoid repeating low scorers.\n")
	return b.String()
}

// BuildPragmaPrompt renders the PPA-optimization request (Fig. 2 stage 4).
func BuildPragmaPrompt(source, bottleneck string) string {
	return fmt.Sprintf("The synthesized design's bottleneck is %s. "+
		"Insert HLS pragmas (pipeline, unroll) into the hot loops to improve it without "+
		"changing behavior.\n\n```c\n%s\n```", bottleneck, source)
}

// BuildSynthHintPrompt renders the LLSM-style synthesis-assist request.
func BuildSynthHintPrompt(rtl string) string {
	return fmt.Sprintf("Suggest PPA-friendly rewrites of this RTL (strength reduction, "+
		"sharing). Return the rewritten RTL only.\n\n```verilog\n%s\n```", rtl)
}
