// Package llm implements the simulated large-language-model substrate the
// reproduction uses in place of GPT-3.5/4/4o and Code Llama (the paper's
// models are cloud services; this environment is offline). The simulation
// preserves the statistical interface the case studies depend on:
//
//   - candidates of varying correctness, produced by injecting seeded
//     faults into a hidden reference solution, with fault rates that fall
//     as model capability rises and grow with task difficulty and
//     temperature;
//   - feedback-driven repair, where compiler/simulator output raises the
//     probability that a defective line is fixed, with stronger models
//     exploiting feedback far better (the paper's central AutoChip
//     observation);
//   - structured prompting effects (SCoT) that reduce syntax-level failures;
//   - retrieval-augmented repair, where a matching correction template
//     makes the difference between a correct and a botched C rewrite.
//
// Every model is deterministic given its seed, so experiments reproduce
// bit-for-bit.
package llm

import (
	"fmt"
	"strings"
)

// Tier is a capability class mirroring the model families the paper
// evaluates.
type Tier int

// Capability tiers, weakest first.
const (
	TierSmall    Tier = iota + 1 // Code-Llama-13B-class
	TierMedium                   // GPT-3.5-class
	TierLarge                    // GPT-4-class
	TierFrontier                 // GPT-4o-class
)

// String returns the simulated model family name.
func (t Tier) String() string {
	switch t {
	case TierSmall:
		return "codellama-13b-sim"
	case TierMedium:
		return "gpt-3.5-sim"
	case TierLarge:
		return "gpt-4-sim"
	case TierFrontier:
		return "gpt-4o-sim"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// AllTiers lists the four simulated models, weakest first.
func AllTiers() []Tier {
	return []Tier{TierSmall, TierMedium, TierLarge, TierFrontier}
}

// ParseTier maps a capability-class name ("small", "medium", "large",
// "frontier", case-insensitive — the core.RunSpec tier vocabulary) onto
// its simulated model tier.
func ParseTier(name string) (Tier, error) {
	switch strings.ToLower(name) {
	case "small":
		return TierSmall, nil
	case "medium":
		return TierMedium, nil
	case "large":
		return TierLarge, nil
	case "frontier":
		return TierFrontier, nil
	default:
		return 0, fmt.Errorf("llm: unknown tier %q (small|medium|large|frontier)", name)
	}
}

// profile holds a tier's behavioral parameters.
type profile struct {
	// faultRate is the expected functional faults injected per difficulty
	// unit at temperature 1.
	faultRate float64
	// syntaxRate is the probability of a syntax-level fault per generation.
	syntaxRate float64
	// syntaxRepair is the probability a defective line is reverted when
	// feedback contains a syntax diagnostic.
	syntaxRepair float64
	// funcRepair is the probability a defective line is reverted when
	// feedback reports failing checks.
	funcRepair float64
	// recall is the fraction of advisory issues the model spots when asked
	// for potential errors (repair framework stage 1).
	recall float64
	// quality scales miscellaneous generation quality in [0,1] (testbench
	// coverage, pragma choices, SLT code structure).
	quality float64
}

var profiles = map[Tier]profile{
	TierSmall:    {faultRate: 1.00, syntaxRate: 0.22, syntaxRepair: 0.35, funcRepair: 0.08, recall: 0.30, quality: 0.35},
	TierMedium:   {faultRate: 0.70, syntaxRate: 0.12, syntaxRepair: 0.55, funcRepair: 0.18, recall: 0.50, quality: 0.55},
	TierLarge:    {faultRate: 0.45, syntaxRate: 0.05, syntaxRepair: 0.80, funcRepair: 0.42, recall: 0.75, quality: 0.75},
	TierFrontier: {faultRate: 0.30, syntaxRate: 0.02, syntaxRepair: 0.92, funcRepair: 0.70, recall: 0.90, quality: 0.92},
}

// Request is one model invocation. Prompt carries the full text a real
// deployment would send (built by the prompts helpers); Task carries the
// structured description the simulation dispatches on.
type Request struct {
	System      string
	Prompt      string
	Task        Task
	Temperature float64
}

// Response is the model's reply.
type Response struct {
	Text      string
	TokensIn  int
	TokensOut int
}

// Task is a structured task descriptor; see the concrete types below.
type Task interface{ taskName() string }

// VerilogGen asks for a Verilog module implementing Spec. Reference is the
// hidden ground-truth implementation the simulation perturbs — the stand-in
// for the model's latent knowledge. Feedback/PrevAttempt drive repair.
type VerilogGen struct {
	ProblemID   string
	Spec        string
	Reference   string
	Difficulty  int // 1..5
	PrevAttempt string
	Feedback    string
}

// TestbenchGen asks for a testbench. The reference testbench arrives
// pre-split so the simulation can model coverage loss: weaker models keep
// fewer vector blocks (the paper's "testbenches lacking acceptable test
// coverage").
type TestbenchGen struct {
	ProblemID    string
	Spec         string
	Header       string
	VectorBlocks []string
	Footer       string
}

// PotentialErrors asks the model to flag HLS risks beyond what the
// compiler reported (repair framework stage 1).
type PotentialErrors struct {
	Source      string
	KnownIssues []string // canonical findings; the model recalls a subset
}

// CRepair asks for an HLS-compatible rewrite of a C kernel. Diagnostics
// are HLS tool messages; Templates are RAG-retrieved correction templates
// (their presence gates correct rewrites of the hard cases).
type CRepair struct {
	Source      string
	Diagnostics []string
	Templates   []string
}

// PragmaOpt asks for pragma insertion targeting a PPA bottleneck
// (repair framework stage 4).
type PragmaOpt struct {
	Source     string
	Bottleneck string // "latency" | "area" | "power"
}

// SLTGen asks for a power-maximizing C snippet given scored examples
// (§V optimization loop). UseSCoT selects structured chain-of-thought.
type SLTGen struct {
	Examples []SLTExample
	UseSCoT  bool
}

// SLTExample is one candidate-pool entry shown in the prompt.
type SLTExample struct {
	Source string
	Score  float64 // watts
}

// SynthRewrite asks for PPA-friendly RTL rewrites (LLSM-style assist).
type SynthRewrite struct {
	RTL string
}

// TBAdapt asks for an HLS-compatible testbench rewrite (Fig. 3 stage 1):
// strip unsupported I/O constructs from a C testbench.
type TBAdapt struct {
	Source string
}

// CModelGen asks for an untimed C behavioral model of a specification
// (the §VI "high-level guided RTL debugging" direction). Untimed C is the
// models' strong suit, so the simulated fault rate is far below HDL's.
type CModelGen struct {
	Spec      string
	Reference string
}

func (VerilogGen) taskName() string      { return "verilog-gen" }
func (TestbenchGen) taskName() string    { return "testbench-gen" }
func (PotentialErrors) taskName() string { return "potential-errors" }
func (CRepair) taskName() string         { return "c-repair" }
func (PragmaOpt) taskName() string       { return "pragma-opt" }
func (SLTGen) taskName() string          { return "slt-gen" }
func (SynthRewrite) taskName() string    { return "synth-rewrite" }
func (TBAdapt) taskName() string         { return "tb-adapt" }
func (CModelGen) taskName() string       { return "c-model-gen" }

// Model is the interface every framework programs against; SimModel is the
// offline implementation, and a future cloud-backed implementation would
// satisfy the same contract.
type Model interface {
	Name() string
	Generate(req Request) (Response, error)
}

// SimModel simulates one model of a given tier. Calls mutate an internal
// counter, so a fresh SimModel with the same seed replays exactly.
type SimModel struct {
	tier    Tier
	prof    profile
	rng     *rng
	calls   int
	verbose bool
}

var _ Model = (*SimModel)(nil)

// NewSimModel creates a deterministic simulated model.
func NewSimModel(tier Tier, seed uint64) *SimModel {
	return &SimModel{tier: tier, prof: profiles[tier], rng: newRNG(seed ^ uint64(tier)*0x9E3779B97F4A7C15)}
}

// Name returns the simulated model family name.
func (m *SimModel) Name() string { return m.tier.String() }

// Tier returns the capability tier.
func (m *SimModel) Tier() Tier { return m.tier }

// Generate dispatches on the structured task. The error is non-nil only
// for malformed requests; degenerate generations are still text.
func (m *SimModel) Generate(req Request) (Response, error) {
	m.calls++
	temp := req.Temperature
	if temp <= 0 {
		temp = 0.7
	}
	var text string
	var err error
	switch task := req.Task.(type) {
	case VerilogGen:
		text = m.verilogGen(task, temp)
	case TestbenchGen:
		text = m.testbenchGen(task)
	case PotentialErrors:
		text = m.potentialErrors(task)
	case CRepair:
		text, err = m.cRepair(task)
	case PragmaOpt:
		text, err = m.pragmaOpt(task)
	case SLTGen:
		text = m.sltGen(task, temp)
	case SynthRewrite:
		text = m.synthRewrite(task)
	case TBAdapt:
		text, err = m.tbAdapt(task)
	case CModelGen:
		text = m.cModelGen(task)
	case nil:
		return Response{}, fmt.Errorf("llm: request carries no task")
	default:
		return Response{}, fmt.Errorf("llm: unsupported task %q", req.Task.taskName())
	}
	if err != nil {
		return Response{}, err
	}
	return Response{
		Text:      text,
		TokensIn:  approxTokens(req.System) + approxTokens(req.Prompt),
		TokensOut: approxTokens(text),
	}, nil
}

func approxTokens(s string) int { return (len(s) + 3) / 4 }

// --- deterministic RNG -----------------------------------------------------

type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x853C49E6748FEA9B
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// pick selects one string uniformly.
func (r *rng) pick(xs []string) string {
	return xs[r.intn(len(xs))]
}

// --- small text helpers -----------------------------------------------------

// splitLines keeps line structure stable for the diff-based repair model.
func splitLines(s string) []string { return strings.Split(s, "\n") }

func joinLines(ls []string) string { return strings.Join(ls, "\n") }

// poisson samples a Poisson(lambda) count (Knuth's method; lambda is
// always small here).
func (m *SimModel) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// L = e^-lambda via exp approximation; lambda <= ~6 in practice.
	l := expNeg(lambda)
	k := 0
	p := 1.0
	for {
		p *= m.rng.float()
		if p <= l {
			return k
		}
		k++
		if k > 16 {
			return k
		}
	}
}

// expNeg computes e^-x for x >= 0 without importing math (a 16-term
// series on the reduced argument is exact to float64 noise here).
func expNeg(x float64) float64 {
	// e^-x = (e^-x/2)^2 reduction keeps the series well-conditioned.
	if x > 1 {
		h := expNeg(x / 2)
		return h * h
	}
	term := 1.0
	sum := 1.0
	for i := 1; i <= 16; i++ {
		term *= -x / float64(i)
		sum += term
	}
	return sum
}
