package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fireSeq records, for count calls of point, which calls returned a
// non-nil outcome (panic outcomes recorded as "panic").
func fireSeq(t *testing.T, in *Injector, point string, count int) []string {
	t.Helper()
	out := make([]string, count)
	for i := 0; i < count; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					p, ok := r.(*Panic)
					if !ok {
						t.Fatalf("panic value %T, want *Panic", r)
					}
					if p.Point != point {
						t.Fatalf("panic point %q, want %q", p.Point, point)
					}
					out[i] = "panic"
				}
			}()
			err := in.Fire(context.Background(), point)
			switch {
			case err == nil:
				out[i] = ""
			case errors.Is(err, ErrDropped):
				out[i] = "drop"
			default:
				out[i] = "error"
			}
		}()
	}
	return out
}

func TestDeterministicFiring(t *testing.T) {
	plan := Plan{Seed: 42, Faults: []Fault{
		{Point: "p", Kind: KindError, Every: 3},
	}}
	a := fireSeq(t, New(plan), "p", 30)
	b := fireSeq(t, New(plan), "p", 30)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged across identical plans: %q vs %q", i, a[i], b[i])
		}
		if a[i] == "error" {
			fires++
		}
	}
	if fires != 10 {
		t.Fatalf("every=3 over 30 calls fired %d times, want 10", fires)
	}
	// A different seed shifts the phase for at least some plans.
	c := fireSeq(t, New(Plan{Seed: 43, Faults: plan.Faults}), "p", 30)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	// Phases are mod Every=3, so two seeds can coincide; this only
	// documents that the phase actually depends on the seed in general.
	_ = same
}

func TestMaxBoundsFirings(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Point: "p", Kind: KindError, Every: 2, Max: 2}}})
	seq := fireSeq(t, in, "p", 20)
	fires := 0
	for _, s := range seq {
		if s == "error" {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("max=2 fired %d times", fires)
	}
	if got := in.Stats()["p/error"]; got != 2 {
		t.Fatalf("Stats()[p/error] = %d, want 2", got)
	}
	if in.Total() != 2 {
		t.Fatalf("Total() = %d, want 2", in.Total())
	}
}

func TestKindPanicAndDrop(t *testing.T) {
	in := New(Plan{Faults: []Fault{
		{Point: "a", Kind: KindPanic, Every: 1, Max: 1},
		{Point: "b", Kind: KindDrop, Every: 1, Max: 1},
	}})
	if got := fireSeq(t, in, "a", 2); got[0] != "panic" || got[1] != "" {
		t.Fatalf("panic sequence = %v", got)
	}
	if got := fireSeq(t, in, "b", 2); got[0] != "drop" || got[1] != "" {
		t.Fatalf("drop sequence = %v", got)
	}
}

func TestWedgeUnblocksOnCancel(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Point: "p", Kind: KindWedge, Every: 1, Max: 1}}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.Fire(ctx, "p") }()
	select {
	case err := <-done:
		t.Fatalf("wedge returned before cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("wedge returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wedge did not unblock on cancel")
	}
}

func TestWedgeBoundWithoutCancellableContext(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Point: "p", Kind: KindWedge, Every: 1, Max: 1, Delay: 10 * time.Millisecond}}})
	start := time.Now()
	err := in.Fire(context.Background(), "p")
	if err == nil {
		t.Fatal("bounded wedge returned nil, want transient error")
	}
	var te interface{ Transient() bool }
	if !errors.As(err, &te) || !te.Transient() {
		t.Fatalf("bounded wedge error %v is not transient", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("bounded wedge returned before its bound elapsed")
	}
	// Unbounded wedge on a context that can never cancel fails fast
	// instead of deadlocking the caller.
	in2 := New(Plan{Faults: []Fault{{Point: "p", Kind: KindWedge, Every: 1}}})
	if err := in2.Fire(nil, "p"); err == nil {
		t.Fatal("unbounded wedge with nil context returned nil")
	}
}

func TestDelaySleeps(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Point: "p", Kind: KindDelay, Every: 1, Max: 1, Delay: 15 * time.Millisecond}}})
	start := time.Now()
	if err := in.Fire(context.Background(), "p"); err != nil {
		t.Fatalf("delay returned %v, want nil", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("delay did not sleep")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan([]byte(`{"seed": 7, "faults": [
		{"point": "server.job", "kind": "panic", "every": 9},
		{"point": "eda.problem", "kind": "wedge", "every": 11, "max": 2, "delay_ms": 500}
	]}`))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 7 || len(p.Faults) != 2 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Faults[1].Delay != 500*time.Millisecond {
		t.Fatalf("delay_ms not decoded: %v", p.Faults[1].Delay)
	}
	for _, bad := range []string{
		`{"faults": [{"point": "", "kind": "panic", "every": 1}]}`,
		`{"faults": [{"point": "p", "kind": "nope", "every": 1}]}`,
		`{"faults": [{"point": "p", "kind": "panic", "every": 0}]}`,
		`{"faults": [{"point": "p", "kind": "delay", "every": 1}]}`,
		`{"faults": [{"point": "p", "kind": "panic", "every": 1, "bogus": true}]}`,
	} {
		if _, err := ParsePlan([]byte(bad)); err == nil {
			t.Fatalf("ParsePlan accepted %s", bad)
		}
	}
}

func TestContextCarrier(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("From(empty ctx) != nil")
	}
	if From(nil) != nil {
		t.Fatal("From(nil) != nil")
	}
	in := New(Plan{})
	ctx := With(context.Background(), in)
	if From(ctx) != in {
		t.Fatal("From(With(ctx, in)) != in")
	}
	base := context.Background()
	if With(base, nil) != base {
		t.Fatal("With(ctx, nil) allocated a new context")
	}
}

func TestTransientClassification(t *testing.T) {
	err := error(&Error{Point: "p"})
	var te interface{ Transient() bool }
	if !errors.As(err, &te) || !te.Transient() {
		t.Fatal("*Error must classify as transient")
	}
}

func TestInjectorString(t *testing.T) {
	in := New(Plan{Faults: []Fault{{Point: "p", Kind: KindError, Every: 1, Max: 1}}})
	if in.String() != "no faults fired" {
		t.Fatalf("String before firing = %q", in.String())
	}
	fireSeq(t, in, "p", 1)
	if in.String() != "p/error=1" {
		t.Fatalf("String after firing = %q", in.String())
	}
}
