// Package faultinject is the deterministic fault plan behind `make
// chaos-test`: a seed-driven schedule of worker panics, transient
// errors, wedged stages, slow paths and dropped operations, fired
// through small named hook points in the serving stack (edaserver,
// simfarm, eda).
//
// The contract with production code is strict: a hook point is a single
// nil-guarded call —
//
//	if in := faultinject.From(ctx); in != nil {
//		if err := in.Fire(ctx, faultinject.PointEDAProblem); err != nil { ... }
//	}
//
// — so a server without an injector pays one pointer compare and
// nothing else. cmd/repolint's fault-guard rule enforces the nil guard
// at every call site.
//
// Firing is deterministic: fault f at point p fires on every Every-th
// call of Fire(p), offset by a phase derived from (Plan.Seed, p,
// f.Kind). Two runs with the same plan and the same call sequence
// inject exactly the same faults, which is what makes a chaos run a
// reproducible test instead of a flake generator.
package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind names one failure behavior a fault injects at its point.
type Kind string

const (
	// KindPanic panics with a *Panic value, exercising the recover paths.
	KindPanic Kind = "panic"
	// KindError returns a transient *Error, exercising retry
	// classification.
	KindError Kind = "error"
	// KindWedge blocks until the context is cancelled (or Delay elapses,
	// when set), exercising the watchdog.
	KindWedge Kind = "wedge"
	// KindDelay sleeps Delay before letting the operation proceed,
	// modelling a slow stage or a slow subscriber.
	KindDelay Kind = "delay"
	// KindDrop returns ErrDropped, telling the hook's caller to suppress
	// the guarded operation (drop an SSE frame, skip a store write).
	KindDrop Kind = "drop"
)

// Injection points. Each names the one production call site that fires
// it; a plan targeting an unknown point simply never fires.
const (
	// PointServerJob fires once per job execution in edaserver, before
	// the pipeline runs.
	PointServerJob = "server.job"
	// PointServerSSE fires once per SSE frame about to be written.
	PointServerSSE = "server.sse"
	// PointServerStore fires once per report-store write.
	PointServerStore = "server.store"
	// PointFarmJob fires once per simfarm job (before cache lookup, so
	// every call counts).
	PointFarmJob = "farm.job"
	// PointEDAProblem fires once per candidate-loop problem attempt in
	// eda/pipelines.go.
	PointEDAProblem = "eda.problem"
)

// Fault schedules one kind of failure at one point.
type Fault struct {
	// Point is the injection point name (Point* constants).
	Point string `json:"point"`
	// Kind is the failure behavior.
	Kind Kind `json:"kind"`
	// Every fires the fault on every Every-th call of the point (1 =
	// every call), phase-shifted by the plan seed. Must be >= 1.
	Every int `json:"every"`
	// Max bounds the total number of firings; 0 means unlimited.
	Max int `json:"max,omitempty"`
	// Delay is the sleep for KindDelay, and an optional upper bound on
	// how long KindWedge blocks when the context never cancels.
	Delay time.Duration `json:"delay,omitempty"`
}

// Plan is a reproducible fault schedule: a seed plus the fault list.
type Plan struct {
	Seed   uint64  `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

// Validate rejects malformed faults before they silently never fire.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if f.Point == "" {
			return fmt.Errorf("faultinject: fault %d has no point", i)
		}
		switch f.Kind {
		case KindPanic, KindError, KindWedge, KindDelay, KindDrop:
		default:
			return fmt.Errorf("faultinject: fault %d has unknown kind %q", i, f.Kind)
		}
		if f.Every < 1 {
			return fmt.Errorf("faultinject: fault %d (%s/%s) needs every >= 1", i, f.Point, f.Kind)
		}
		if f.Kind == KindDelay && f.Delay <= 0 {
			return fmt.Errorf("faultinject: fault %d (%s/delay) needs a positive delay", i, f.Point)
		}
	}
	return nil
}

// ParsePlan decodes and validates a JSON plan (the `llm4eda serve
// -faults` payload). Fault delays are written as integer milliseconds
// under "delay_ms" — see Fault.UnmarshalJSON.
func ParsePlan(b []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faultinject: bad plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// faultJSON is the hand-writable wire form: delay in milliseconds.
type faultJSON struct {
	Point   string `json:"point"`
	Kind    Kind   `json:"kind"`
	Every   int    `json:"every"`
	Max     int    `json:"max,omitempty"`
	DelayMS int64  `json:"delay_ms,omitempty"`
}

// MarshalJSON encodes Delay as integer milliseconds ("delay_ms") so
// plans round-trip in a form a human can write on a command line.
func (f Fault) MarshalJSON() ([]byte, error) {
	return json.Marshal(faultJSON{f.Point, f.Kind, f.Every, f.Max, f.Delay.Milliseconds()})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (f *Fault) UnmarshalJSON(b []byte) error {
	var w faultJSON
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	*f = Fault{w.Point, w.Kind, w.Every, w.Max, time.Duration(w.DelayMS) * time.Millisecond}
	return nil
}

// Error is an injected transient failure. It implements the
// Transient() classification contract core.IsTransient checks, so the
// candidate-loop retry path treats it exactly like a real transient
// substrate error.
type Error struct {
	Point string
}

func (e *Error) Error() string {
	return "faultinject: injected transient error at " + e.Point
}

// Transient marks the injected error as retryable.
func (e *Error) Transient() bool { return true }

// Panic is the value injected panics carry, so recover paths (and their
// tests) can tell an injected panic from a real one.
type Panic struct {
	Point string
}

func (p *Panic) String() string {
	return "faultinject: injected panic at " + p.Point
}

// ErrDropped is returned by KindDrop: the hook's caller must suppress
// the guarded operation (skip the frame, skip the write) and carry on.
var ErrDropped = errors.New("faultinject: operation dropped")

// armed is one fault with its firing state.
type armed struct {
	Fault
	phase uint64 // seed-derived offset into the Every cycle
	fired int    // firings so far (bounded by Max)
}

// Injector executes a Plan. Safe for concurrent use; the zero value is
// not usable — construct with New. A nil *Injector never fires (all
// hook points are nil-guarded).
type Injector struct {
	mu    sync.Mutex
	byPt  map[string][]*armed
	calls map[string]uint64
	fired map[string]uint64 // "point/kind" -> firings, for Stats
}

// New arms a plan. The plan is assumed validated (New validates again
// defensively and drops malformed faults).
func New(p Plan) *Injector {
	in := &Injector{
		byPt:  make(map[string][]*armed),
		calls: make(map[string]uint64),
		fired: make(map[string]uint64),
	}
	for _, f := range p.Faults {
		if f.Every < 1 {
			continue
		}
		a := &armed{Fault: f, phase: phaseOf(p.Seed, f.Point, f.Kind) % uint64(f.Every)}
		in.byPt[f.Point] = append(in.byPt[f.Point], a)
	}
	return in
}

// phaseOf derives a deterministic per-fault phase from the plan seed
// via splitmix64 over a cheap string hash, so distinct faults at one
// point fire on interleaved — not identical — call numbers.
func phaseOf(seed uint64, point string, kind Kind) uint64 {
	h := seed
	for _, s := range []string{point, string(kind)} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211 // FNV-1a step
		}
	}
	// splitmix64 finalizer
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Fire counts one call of point and triggers whichever armed fault is
// due, if any. Return values:
//
//   - nil: no fault (or a KindDelay that has finished sleeping) — the
//     caller proceeds normally.
//   - *Error: transient failure — the caller propagates it as the
//     operation's error.
//   - ErrDropped: the caller suppresses the operation and carries on.
//   - ctx.Err(): a KindWedge blocked until cancellation.
//
// KindPanic does not return: it panics with *Panic. At most one fault
// fires per call; when several are due the earliest in plan order wins
// and the others wait for their next cycle.
func (in *Injector) Fire(ctx context.Context, point string) error {
	in.mu.Lock()
	in.calls[point]++
	n := in.calls[point]
	var due *armed
	for _, a := range in.byPt[point] {
		if a.Max > 0 && a.fired >= a.Max {
			continue
		}
		if (n+a.phase)%uint64(a.Every) == 0 {
			due = a
			break
		}
	}
	if due != nil {
		due.fired++
		in.fired[point+"/"+string(due.Kind)]++
	}
	in.mu.Unlock()
	if due == nil {
		return nil
	}

	switch due.Kind {
	case KindPanic:
		panic(&Panic{Point: point})
	case KindError:
		return &Error{Point: point}
	case KindDrop:
		return ErrDropped
	case KindDelay:
		return sleep(ctx, due.Delay)
	case KindWedge:
		return wedge(ctx, due.Delay)
	}
	return nil
}

// sleep waits d, cut short by ctx cancellation.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-t.C:
		return nil
	case <-done:
		return ctx.Err()
	}
}

// wedge blocks until the context cancels; bound, when set, caps the
// block for call sites whose context can never cancel (then the wedge
// degrades to a long delay and returns a transient error so the
// operation still fails visibly).
func wedge(ctx context.Context, bound time.Duration) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var timeout <-chan time.Time
	if bound > 0 {
		t := time.NewTimer(bound)
		defer t.Stop()
		timeout = t.C
	}
	if done == nil && timeout == nil {
		// Unbounded wedge with no cancellable context would deadlock the
		// caller forever; fail fast instead.
		return &Error{Point: "wedge-without-context"}
	}
	select {
	case <-done:
		return ctx.Err()
	case <-timeout:
		return &Error{Point: "wedge-timeout"}
	}
}

// Stats returns the firing counts keyed "point/kind", for /stats
// surfacing and chaos assertions.
func (in *Injector) Stats() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// Total returns the total number of firings across all faults.
func (in *Injector) Total() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var t uint64
	for _, v := range in.fired {
		t += v
	}
	return t
}

// String renders the firing counts in stable order, for logs.
func (in *Injector) String() string {
	st := in.Stats()
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for i, k := range keys {
		if i > 0 {
			b = append(b, ' ')
		}
		b = fmt.Appendf(b, "%s=%d", k, st[k])
	}
	if len(b) == 0 {
		return "no faults fired"
	}
	return string(b)
}

// ctxKey carries the injector through a request context so layers
// beneath edaserver (eda, and transitively the farm-bound work of a
// request) fire the same plan without new plumbing.
type ctxKey struct{}

// With returns a context carrying the injector. With(ctx, nil) returns
// ctx unchanged.
func With(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in)
}

// From returns the context's injector, or nil — the zero-overhead path
// production traffic takes.
func From(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}
