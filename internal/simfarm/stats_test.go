package simfarm

import (
	"sync/atomic"
	"testing"
)

// TestStatsConcurrentWithRunMany hammers Stats() from several goroutines
// while RunMany drives a batch through every cache layer — the exact load
// shape of the edaserver /v1/stats handler polling the shared farm under
// traffic. The race detector (make test-race covers this package) is the
// real assertion; the monotonicity checks pin that lock-free snapshots
// still read sane counter values mid-flight.
func TestStatsConcurrentWithRunMany(t *testing.T) {
	f := New(Options{})
	var stop atomic.Bool
	const pollers = 4
	done := make(chan struct{}, pollers)
	for w := 0; w < pollers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var last FarmStats
			for !stop.Load() {
				s := f.Stats()
				// Counters only grow; Len never goes negative.
				if s.Results.Hits < last.Results.Hits || s.Results.Misses < last.Results.Misses ||
					s.Designs.Computes < last.Designs.Computes {
					t.Errorf("counters went backwards: %+v after %+v", s, last)
					return
				}
				if s.Parses.Len < 0 || s.Designs.Len < 0 || s.Results.Len < 0 {
					t.Errorf("negative cache length: %+v", s)
					return
				}
				last = s
			}
		}()
	}

	// 64 jobs over 16 distinct candidates: plenty of concurrent hits,
	// misses and singleflight computes on every layer.
	jobs := make([]Job, 64)
	for i := range jobs {
		jobs[i] = Job{DUT: tinyDUT(i % 16), TB: tinyTB, Top: "tb"}
	}
	results := f.RunMany(jobs, 8)
	stop.Store(true)
	for w := 0; w < pollers; w++ {
		<-done
	}

	for i, r := range results {
		if !r.Passed() {
			t.Fatalf("job %d failed: %+v", i, r)
		}
	}
	s := f.Stats()
	if s.Results.Computes != 16 {
		t.Errorf("result computes = %d, want 16 (one per distinct candidate)", s.Results.Computes)
	}
	if s.Results.Hits+s.Results.Misses == 0 {
		t.Error("no result-cache traffic recorded")
	}
	if got := s.Results.Len; got != 16 {
		t.Errorf("result cache len = %d, want 16", got)
	}
}
