package simfarm

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"llm4eda/internal/testutil"
	"llm4eda/internal/verilog"
)

// goroutineGuard is the shared leak check: every cancellation path must
// return the goroutine count to its starting level.
func goroutineGuard(t *testing.T) {
	t.Helper()
	testutil.GoroutineGuard(t)
}

func TestMapCtxMatchesMapWhenUncancelled(t *testing.T) {
	goroutineGuard(t)
	a := make([]int, 64)
	b := make([]int, 64)
	Map(len(a), 4, func(i int) { a[i] = i * i })
	if err := MapCtx(context.Background(), len(b), 4, func(i int) { b[i] = i * i }); err != nil {
		t.Fatalf("MapCtx: %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d: Map %d vs MapCtx %d", i, a[i], b[i])
		}
	}
}

// TestMapCtxCancelReturnsWithinOneJob is the core cancellation contract:
// once ctx is cancelled, no new fn calls start, in-flight calls finish,
// and MapCtx returns ctx.Err() within roughly one job's runtime.
func TestMapCtxCancelReturnsWithinOneJob(t *testing.T) {
	goroutineGuard(t)
	const n, workers = 256, 4
	const jobTime = 30 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	firstStarted := make(chan struct{})
	var once atomic.Bool

	done := make(chan error, 1)
	go func() {
		done <- MapCtx(ctx, n, workers, func(i int) {
			calls.Add(1)
			if once.CompareAndSwap(false, true) {
				close(firstStarted)
			}
			time.Sleep(jobTime) // the slow job
		})
	}()

	<-firstStarted
	cancelAt := time.Now()
	cancel()

	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("MapCtx returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("MapCtx did not return after cancellation")
	}
	sinceCancel := time.Since(cancelAt)
	// In-flight jobs (at most `workers`, running concurrently) may finish;
	// nothing new starts. Allow generous scheduler slack.
	if limit := 3*jobTime + 2*time.Second; sinceCancel > limit {
		t.Errorf("returned %v after cancel, want < %v", sinceCancel, limit)
	}
	// Only a small prefix ran: the started jobs plus at most one dispatch
	// per worker that raced the cancellation.
	if got := calls.Load(); got > workers*3 {
		t.Errorf("%d of %d jobs ran after early cancel", got, n)
	}
}

// slowJobs builds a batch whose every job simulates a long testbench
// loop; sources are unique per job so the result cache cannot collapse
// the batch.
func slowJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		dut := fmt.Sprintf("module d%d(output [31:0] y); assign y = %d; endmodule", i, i)
		tb := fmt.Sprintf(`module tb;
  integer i;
  integer acc;
  initial begin
    acc = %d;
    for (i = 0; i < 300000; i = i + 1) acc = acc + i;
    $finish;
  end
endmodule`, i)
		jobs[i] = Job{DUT: dut, TB: tb, Top: "tb", Opts: verilog.SimOptions{}}
	}
	return jobs
}

// TestRunManyCtxCancelMidBatch cancels a farm batch with slow simulation
// jobs mid-flight and asserts the prompt-return contract plus ctx.Err()
// propagation into the unstarted slots.
func TestRunManyCtxCancelMidBatch(t *testing.T) {
	goroutineGuard(t)
	farm := New(Options{})
	jobs := slowJobs(64)

	// Calibrate one job so the timing bound adapts to the machine.
	calStart := time.Now()
	if _, err := farm.RunTestbench(jobs[0].DUT, jobs[0].TB, "tb", jobs[0].Opts); err != nil {
		t.Fatalf("calibration job failed: %v", err)
	}
	jobTime := time.Since(calStart)
	farm.Purge() // forget the calibration result so job 0 re-runs

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(jobTime / 2) // land mid-batch
		cancel()
	}()

	start := time.Now()
	results, err := farm.RunManyCtx(ctx, jobs, 2)
	elapsed := time.Since(start)

	if err != context.Canceled {
		t.Fatalf("RunManyCtx returned %v, want context.Canceled", err)
	}
	// Prompt return: in-flight jobs finish, nothing new starts. Bound by
	// a few job times plus slack rather than the 64-job serial runtime.
	if limit := 6*jobTime + 2*time.Second; elapsed > limit {
		t.Errorf("batch returned after %v (job time %v), want < %v", elapsed, jobTime, limit)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	completed, cancelled := 0, 0
	for _, r := range results {
		switch {
		case r.Err == context.Canceled:
			cancelled++
		case r.Err == nil && r.Res != nil:
			completed++
		default:
			t.Errorf("unexpected result state: %+v", r)
		}
	}
	if cancelled == 0 {
		t.Error("no job carries the cancellation error")
	}
	if completed == len(jobs) {
		t.Error("every job completed despite mid-batch cancel")
	}
	t.Logf("job time %v: %d completed, %d cancelled", jobTime, completed, cancelled)
}

// TestRunManyCtxPreCancelled: an already-dead context does no simulation
// work at all.
func TestRunManyCtxPreCancelled(t *testing.T) {
	goroutineGuard(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	farm := New(Options{})
	results, err := farm.RunManyCtx(ctx, slowJobs(8), 4)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r.Err != context.Canceled || r.Res != nil {
			t.Errorf("job %d ran under a dead context: %+v", i, r)
		}
	}
	if stats := farm.Stats(); stats.Results.Misses != 0 {
		t.Errorf("result cache saw traffic under a dead context: %+v", stats.Results)
	}
}

func TestMapCtxSerialPathChecksContext(t *testing.T) {
	goroutineGuard(t)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := MapCtx(ctx, 100, 1, func(i int) {
		calls++
		if calls == 3 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if calls != 3 {
		t.Errorf("serial path ran %d calls after cancel at 3", calls)
	}
}

func TestEmitStatsDelta(t *testing.T) {
	farm := New(Options{})
	tb := "module tb; initial $finish; endmodule"
	dut := "module d(output y); assign y = 1'b0; endmodule"
	if _, err := farm.RunTestbench(dut, tb, "tb", verilog.SimOptions{}); err != nil {
		t.Fatalf("RunTestbench: %v", err)
	}
	before := farm.Stats()
	// A second identical run is pure cache hits.
	if _, err := farm.RunTestbench(dut, tb, "tb", verilog.SimOptions{}); err != nil {
		t.Fatalf("RunTestbench: %v", err)
	}
	delta := farm.Stats().Delta(before)
	if delta.Results.Hits != 1 || delta.Results.Misses != 0 {
		t.Errorf("result delta = %+v, want exactly one hit", delta.Results)
	}
	if delta.Parses.Misses != 0 || delta.Designs.Misses != 0 {
		t.Errorf("warm rerun missed: %+v", delta)
	}
}
