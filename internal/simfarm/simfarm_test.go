package simfarm

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"llm4eda/internal/verilog"
)

// tinyDUT builds a one-gate inverter whose source text is unique per tag,
// so tests can mint arbitrarily many distinct cache identities.
func tinyDUT(tag int) string {
	return fmt.Sprintf("// candidate %d\nmodule inv(input a, output y);\n  assign y = ~a;\nendmodule\n", tag)
}

const tinyTB = `module tb;
  reg a; wire y;
  inv dut(.a(a), .y(y));
  initial begin
    a = 0; #1; $check_eq(y, 1);
    a = 1; #1; $check_eq(y, 0);
    $finish;
  end
endmodule
`

func TestRunTestbenchPasses(t *testing.T) {
	f := New(Options{})
	res, err := f.RunTestbench(tinyDUT(0), tinyTB, "tb", verilog.SimOptions{})
	if err != nil {
		t.Fatalf("RunTestbench: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("inverter bench failed: %+v", res)
	}
}

func TestCacheHitMissAndResultMemo(t *testing.T) {
	f := New(Options{})
	dut := tinyDUT(1)
	r1, err := f.RunTestbench(dut, tinyTB, "tb", verilog.SimOptions{})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	s := f.Stats()
	if s.Parses.Misses != 2 || s.Parses.Hits != 0 {
		t.Errorf("after cold run: parse stats %+v", s.Parses)
	}
	if s.Designs.Misses != 1 || s.Results.Misses != 1 {
		t.Errorf("after cold run: designs %+v results %+v", s.Designs, s.Results)
	}

	r2, err := f.RunTestbench(dut, tinyTB, "tb", verilog.SimOptions{})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if r2 != r1 {
		t.Error("identical job did not hit the result cache")
	}
	s = f.Stats()
	if s.Results.Hits != 1 {
		t.Errorf("result cache not hit: %+v", s.Results)
	}

	// A new candidate against the same bench re-parses only the candidate.
	if _, err := f.RunTestbench(tinyDUT(2), tinyTB, "tb", verilog.SimOptions{}); err != nil {
		t.Fatalf("third run: %v", err)
	}
	s = f.Stats()
	if s.Parses.Hits != 1 { // the shared bench
		t.Errorf("bench parse not reused: %+v", s.Parses)
	}
	if s.Parses.Misses != 3 { // two DUTs + bench
		t.Errorf("unexpected parse misses: %+v", s.Parses)
	}
}

func TestCompileErrorIsCached(t *testing.T) {
	f := New(Options{})
	broken := "module inv(input a output y); endmodule" // missing comma
	_, err1 := f.RunTestbench(broken, tinyTB, "tb", verilog.SimOptions{})
	_, err2 := f.RunTestbench(broken, tinyTB, "tb", verilog.SimOptions{})
	if err1 == nil || err2 == nil {
		t.Fatal("broken source compiled")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("cached error differs: %v vs %v", err1, err2)
	}
	if s := f.Stats(); s.Designs.Hits != 1 {
		t.Errorf("compile error not served from cache: %+v", s.Designs)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite refresh")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if s := c.snapshot(); s.Evictions != 1 || s.Len != 2 {
		t.Errorf("stats %+v", s)
	}
}

// TestConcurrentFarm hammers one farm from many goroutines with
// overlapping jobs; run under -race this is the concurrency safety net
// for the whole cache hierarchy.
func TestConcurrentFarm(t *testing.T) {
	f := New(Options{ParseCap: 8, DesignCap: 4, ResultCap: 4}) // tiny: force evictions
	const goroutines = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := f.RunTestbench(tinyDUT((g+i)%6), tinyTB, "tb", verilog.SimOptions{})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !res.Passed() {
					errs <- fmt.Errorf("goroutine %d: run failed", g)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := f.Stats()
	if s.Results.Evictions == 0 || s.Designs.Evictions == 0 {
		t.Errorf("tiny caches never evicted: designs %+v results %+v", s.Designs, s.Results)
	}
}

// TestRunManyMatchesSerial is the determinism contract: a parallel batch
// must be bit-identical to the serial, cache-cold loop.
func TestRunManyMatchesSerial(t *testing.T) {
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Job{
			DUT: tinyDUT(i % 5), // includes duplicates
			TB:  tinyTB, Top: "tb",
			Opts: verilog.SimOptions{Seed: uint64(i % 3)},
		})
	}
	// Ground truth: fresh compile + run per job, no caching, no pool.
	want := make([]Result, len(jobs))
	for i, j := range jobs {
		cd, err := verilog.CompileSources(j.Top, j.DUT, j.TB)
		if err != nil {
			want[i] = Result{Err: err}
			continue
		}
		res, err := cd.Run(j.Opts)
		want[i] = Result{Res: res, Err: err}
	}

	got := New(Options{}).RunMany(jobs, 4)
	if len(got) != len(want) {
		t.Fatalf("got %d results", len(got))
	}
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("job %d error mismatch: %v vs %v", i, got[i].Err, want[i].Err)
		}
		g, w := got[i].Res, want[i].Res
		if g.Output != w.Output || g.Checks != w.Checks || g.Failures != w.Failures ||
			g.Finished != w.Finished || g.TimedOut != w.TimedOut || g.EndTime != w.EndTime {
			t.Errorf("job %d diverged: %+v vs %+v", i, g, w)
		}
		if !reflect.DeepEqual(g.Final, w.Final) {
			t.Errorf("job %d final signals diverged", i)
		}
	}
}

func TestRunManyEmptyAndWorkerClamp(t *testing.T) {
	if got := RunMany(nil, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	// More workers than jobs must not deadlock or drop results.
	jobs := []Job{{DUT: tinyDUT(0), TB: tinyTB, Top: "tb"}}
	got := New(Options{}).RunMany(jobs, 64)
	if len(got) != 1 || !got[0].Passed() {
		t.Errorf("single-job batch broken: %+v", got)
	}
}

func TestMapCoversEveryIndexOnce(t *testing.T) {
	const n = 100
	counts := make([]int32, n)
	var mu sync.Mutex
	Map(n, 7, func(i int) {
		mu.Lock()
		counts[i]++
		mu.Unlock()
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	Map(0, 3, func(int) { t.Error("fn called for n=0") })
}

// TestLegacyRunTestbenchUsesFarm verifies the verilog compatibility entry
// point routes through the default farm's caches.
func TestLegacyRunTestbenchUsesFarm(t *testing.T) {
	dut := tinyDUT(991)
	before := Default().Stats()
	if _, err := verilog.RunTestbench(dut, tinyTB, "tb", verilog.SimOptions{}); err != nil {
		t.Fatalf("legacy run: %v", err)
	}
	if _, err := verilog.RunTestbench(dut, tinyTB, "tb", verilog.SimOptions{}); err != nil {
		t.Fatalf("legacy rerun: %v", err)
	}
	after := Default().Stats()
	if after.Designs.Hits <= before.Designs.Hits {
		t.Errorf("legacy RunTestbench re-parsed a cached design: %+v -> %+v",
			before.Designs, after.Designs)
	}
}
