package simfarm

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of one cache's traffic counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	Len                     int
}

// lru is a mutex-guarded, capacity-bounded LRU map. Values are immutable
// artifacts (parsed files, compiled designs, simulation results), so a hit
// hands back the shared pointer; eviction only drops the cache's own
// reference. Concurrent misses on the same key may compute the value
// twice — both computations are deterministic and identical, so the race
// costs duplicated work, never correctness.
type lru struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	ll    *list.List // front = most recently used
	stats Stats
}

// entry is one cached key/value pair.
type entry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	if capacity <= 0 {
		capacity = 1
	}
	return &lru{cap: capacity, m: make(map[string]*list.Element), ll: list.New()}
}

// get returns the cached value and marks it most recently used.
func (c *lru) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// add inserts (or refreshes) a value, evicting the least recently used
// entry when the cache is over capacity.
func (c *lru) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// snapshot returns the current counters.
func (c *lru) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Len = c.ll.Len()
	return s
}

// purge drops every entry but keeps the counters.
func (c *lru) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]*list.Element)
	c.ll.Init()
}
